package sweep

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// cellsTestSpec is a 12-cell grid (3 params × 2 kinds × 2 sizes) used by the
// selection tests.
func cellsTestSpec() Spec {
	return Spec{
		Name:      "cells-test",
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 3, To: 5}},
		Kinds:     []engine.Kind{engine.KindSimulate, engine.KindVerify},
		Sizes:     []Expr{Lit(6), Lit(7)},
		Predicate: &PredicateTemplate{Kind: "counting", Threshold: ParamExpr(0, 0)},
		Options:   Options{Seed: 11, ExactOracle: true},
	}
}

func TestCellsSelectionFiltersWithoutRenumbering(t *testing.T) {
	full, err := cellsTestSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 12 {
		t.Fatalf("grid has %d cells, want 12", len(full))
	}

	spec := cellsTestSpec()
	spec.Cells = []IndexRange{{From: 2, To: 4}, {From: 9, To: 9}}
	sel, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 9}
	if len(sel) != len(want) {
		t.Fatalf("selected %d cells, want %d", len(sel), len(want))
	}
	for i, c := range sel {
		if c.Index != want[i] {
			t.Errorf("cell %d: index %d, want %d", i, c.Index, want[i])
		}
		// The selected cell must be exactly the full grid's cell: same
		// coordinates, same request, same derived seed.
		if !reflect.DeepEqual(c, full[c.Index]) {
			t.Errorf("cell %d differs from its full-grid counterpart:\n sel: %+v\nfull: %+v",
				c.Index, c, full[c.Index])
		}
	}
}

func TestCellsSplitCoversGrid(t *testing.T) {
	full, err := cellsTestSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Split into three disjoint slices; their union must equal the grid.
	splits := [][]IndexRange{
		{{From: 0, To: 3}},
		{{From: 4, To: 4}, {From: 5, To: 7}},
		{{From: 8, To: 11}},
	}
	var merged []Cell
	for _, sel := range splits {
		spec := cellsTestSpec()
		spec.Cells = sel
		part, err := spec.Expand()
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part...)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatalf("split ∪ merge != full grid:\n got %d cells\nwant %d cells", len(merged), len(full))
	}
}

func TestCellsSelectionValidation(t *testing.T) {
	for name, sel := range map[string][]IndexRange{
		"negative":      {{From: -1, To: 2}},
		"inverted":      {{From: 5, To: 3}},
		"past-the-grid": {{From: 0, To: 99}},
	} {
		spec := cellsTestSpec()
		spec.Cells = sel
		if _, err := spec.Expand(); err == nil {
			t.Errorf("%s selection should fail", name)
		}
	}
}

func TestCellsSelectionJSONRoundTrip(t *testing.T) {
	spec := cellsTestSpec()
	spec.Cells = []IndexRange{{From: 1, To: 3}, {From: 8, To: 8}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Cells, spec.Cells) {
		t.Fatalf("cells did not round-trip: %+v", parsed.Cells)
	}
}

func TestRanges(t *testing.T) {
	for _, tc := range []struct {
		in   []int
		want []IndexRange
	}{
		{nil, nil},
		{[]int{3}, []IndexRange{{3, 3}}},
		{[]int{5, 3, 4}, []IndexRange{{3, 5}}},
		{[]int{0, 2, 3, 7, 7, 8}, []IndexRange{{0, 0}, {2, 3}, {7, 8}}},
	} {
		if got := Ranges(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Ranges(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRunSplitEqualsUnsplit executes a sweep whole and as two cells-selected
// halves; the canonical cells and merged canonical summary must be equal —
// the property the cluster dispatcher's determinism rests on.
func TestRunSplitEqualsUnsplit(t *testing.T) {
	eng := engine.New()
	whole, err := Run(context.Background(), eng, cellsTestSpec(), RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	col := NewCollector("cells-test", whole.TotalCells, 2, false)
	for _, sel := range [][]IndexRange{{{From: 0, To: 5}}, {{From: 6, To: 11}}} {
		spec := cellsTestSpec()
		spec.Cells = sel
		part, err := Run(context.Background(), engine.New(), spec, RunOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, cr := range part.Cells {
			col.Add(cr)
		}
	}
	merged := col.Finish(0)

	wj, err := json.Marshal(CanonicalResult(whole))
	if err != nil {
		t.Fatal(err)
	}
	mj, err := json.Marshal(CanonicalResult(merged))
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(mj) {
		t.Fatalf("canonical summaries differ:\nwhole:  %s\nmerged: %s", wj, mj)
	}

	if len(whole.Cells) != len(merged.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(whole.Cells), len(merged.Cells))
	}
	for i := range whole.Cells {
		a, _ := json.Marshal(CanonicalCell(whole.Cells[i]))
		b, _ := json.Marshal(CanonicalCell(merged.Cells[i]))
		if string(a) != string(b) {
			t.Errorf("cell %d differs:\nwhole: %s\nsplit: %s", i, a, b)
		}
	}
}

func TestCanonicalCellZeroesVolatileFields(t *testing.T) {
	cr := CellResult{
		Index:         3,
		Kind:          engine.KindSimulate,
		OK:            true,
		ElapsedMillis: 12.5,
		CacheHit:      true,
		Result:        &engine.Result{Kind: engine.KindSimulate, ElapsedMillis: 9.9, CacheHit: true},
	}
	c := CanonicalCell(cr)
	if c.ElapsedMillis != 0 || c.CacheHit || c.Result.ElapsedMillis != 0 || c.Result.CacheHit {
		t.Errorf("volatile fields survived: %+v", c)
	}
	// The original is untouched (CanonicalCell copies).
	if cr.ElapsedMillis != 12.5 || !cr.Result.CacheHit {
		t.Errorf("original mutated: %+v", cr)
	}
}
