// Package sweep is the scenario-sweep subsystem of the analysis engine: a
// declarative, JSON-round-trippable Spec describes a cartesian grid of
// analysis cells — protocol templates × predicate parameters × population
// sizes × analysis kinds — and a sharded worker pool executes the expanded
// grid against one engine, streaming a CellResult per completed cell and
// aggregating the whole run into a typed Result.
//
// The paper's experiments are inherently parametric (flock-of-birds
// thresholds x ≥ c, remainder and threshold predicates swept over constants
// and population sizes), and the follow-up work studies exactly how these
// quantities scale with the parameter. A sweep turns that workload class
// into one request:
//
//	{
//	  "name":      "flock-threshold-scaling",
//	  "protocols": [{"spec": "flock:{N}"}],
//	  "params":    [{"from": 2, "to": 9}],
//	  "kinds":     ["verify", "simulate"],
//	  "sizes":     ["{N}-1", "{N}", "{N}+1"],
//	  "options":   {"runs": 5, "seed": 7},
//	  "maxCells":  200
//	}
//
// The placeholder {N} ranges over the params axis; it substitutes textually
// into protocol spec strings and arithmetically (with an optional +c, -c or
// *c suffix) into sizes and predicate fields. Expansion is capped twice: by
// the spec's own maxCells (default DefaultMaxCells) and by the package-wide
// AbsoluteMaxCells, so a malformed grid errors out instead of allocating
// without bound.
//
// Execution reuses the engine's machinery end to end: cells share its
// content-hash artifact cache (a sweep over analysis kinds of one protocol
// computes each artifact once), its execution-slot semaphore, and its
// cooperative cancellation — cancelling the sweep context stops in-flight
// cells and skips the rest.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// DefaultMaxCells caps expansion when the spec does not set maxCells.
const DefaultMaxCells = 4096

// AbsoluteMaxCells is the package-wide ceiling on a single sweep's grid,
// whatever the spec asks for.
const AbsoluteMaxCells = 1_000_000

// ErrBadSpec wraps every sweep-spec validation failure. It wraps
// engine.ErrBadRequest, so transports classify bad sweeps as client errors
// (HTTP 400) without special cases.
var ErrBadSpec = fmt.Errorf("sweep: bad spec: %w", engine.ErrBadRequest)

// badSpec builds an ErrBadSpec-wrapped error.
func badSpec(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Param is the placeholder token substituted by each value of the params
// axis in protocol spec strings and Expr fields.
const Param = "{N}"

// Expr is an integer-valued spec field that may depend on the sweep
// parameter: a plain JSON number ("8"), or a string of the form "{N}",
// "{N}+c", "{N}-c" or "{N}*c". The zero Expr evaluates to 0 and uses no
// parameter.
type Expr struct {
	lit     int64
	param   bool
	op      byte // 0, '+', '-', '*'
	operand int64
}

// Lit returns a constant expression.
func Lit(v int64) Expr { return Expr{lit: v} }

// ParamExpr returns the expression {N} op operand (op 0 means plain {N}).
func ParamExpr(op byte, operand int64) Expr {
	return Expr{param: true, op: op, operand: operand}
}

// UsesParam reports whether evaluation reads the sweep parameter.
func (e Expr) UsesParam() bool { return e.param }

// IsZero reports whether the expression is the zero value (unset field).
func (e Expr) IsZero() bool { return e == Expr{} }

// Eval evaluates the expression at the given parameter value.
func (e Expr) Eval(param int64) int64 {
	if !e.param {
		return e.lit
	}
	switch e.op {
	case '+':
		return param + e.operand
	case '-':
		return param - e.operand
	case '*':
		return param * e.operand
	default:
		return param
	}
}

// String renders the expression in its spec syntax.
func (e Expr) String() string {
	if !e.param {
		return strconv.FormatInt(e.lit, 10)
	}
	if e.op == 0 {
		return Param
	}
	return fmt.Sprintf("%s%c%d", Param, e.op, e.operand)
}

// ParseExpr parses the spec syntax of an expression.
func ParseExpr(s string) (Expr, error) {
	t := strings.TrimSpace(s)
	if !strings.Contains(t, Param) {
		v, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return Expr{}, badSpec("expression %q is neither an integer nor a %s form", s, Param)
		}
		return Lit(v), nil
	}
	if !strings.HasPrefix(t, Param) {
		return Expr{}, badSpec("expression %q must start with %s", s, Param)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(t, Param))
	if rest == "" {
		return ParamExpr(0, 0), nil
	}
	op := rest[0]
	if op != '+' && op != '-' && op != '*' {
		return Expr{}, badSpec("expression %q: operator %q not in +, -, *", s, string(op))
	}
	operand, err := strconv.ParseInt(strings.TrimSpace(rest[1:]), 10, 64)
	if err != nil {
		return Expr{}, badSpec("expression %q: bad operand after %q", s, string(op))
	}
	return ParamExpr(op, operand), nil
}

// UnmarshalJSON accepts a JSON number or an expression string.
func (e *Expr) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		parsed, err := ParseExpr(s)
		if err != nil {
			return err
		}
		*e = parsed
		return nil
	}
	var v int64
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("%w: bad expression %s", ErrBadSpec, data)
	}
	*e = Lit(v)
	return nil
}

// MarshalJSON renders constants as numbers and parametric expressions as
// strings, round-tripping losslessly.
func (e Expr) MarshalJSON() ([]byte, error) {
	if !e.param {
		return json.Marshal(e.lit)
	}
	return json.Marshal(e.String())
}

// ParamRange is one entry of the params axis: a single value (a bare JSON
// number) or an inclusive range — arithmetic ({"from":2,"to":10,"step":2})
// or geometric ({"from":2,"to":1024,"mul":2}).
type ParamRange struct {
	// From and To are the inclusive bounds.
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Step is the arithmetic increment (default 1). Exclusive with Mul.
	Step int64 `json:"step,omitempty"`
	// Mul is the geometric multiplier (≥ 2). Exclusive with Step.
	Mul int64 `json:"mul,omitempty"`

	single bool // unmarshalled from a bare number; marshals back to one
}

// UnmarshalJSON accepts a bare number or a range object. Unknown object
// fields are rejected here too — a custom unmarshaller does not inherit
// the outer decoder's DisallowUnknownFields, and a typo like "mull" would
// otherwise silently turn a geometric range into an arithmetic one.
func (r *ParamRange) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if len(data) > 0 && data[0] != '{' {
		var v int64
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("%w: bad param %s", ErrBadSpec, data)
		}
		*r = ParamRange{From: v, To: v, single: true}
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	type plain ParamRange
	var p plain
	if err := dec.Decode(&p); err != nil {
		return fmt.Errorf("%w: bad param range: %v", ErrBadSpec, err)
	}
	*r = ParamRange(p)
	return nil
}

// MarshalJSON renders single values as bare numbers.
func (r ParamRange) MarshalJSON() ([]byte, error) {
	if r.single && r.From == r.To && r.Step == 0 && r.Mul == 0 {
		return json.Marshal(r.From)
	}
	type plain ParamRange
	return json.Marshal(plain(r))
}

// values appends the expansion of the range.
func (r ParamRange) values(out []int64) ([]int64, error) {
	switch {
	case r.Step != 0 && r.Mul != 0:
		return nil, badSpec("param range sets both step and mul")
	case r.To < r.From:
		return nil, badSpec("param range to=%d < from=%d", r.To, r.From)
	case r.Mul != 0:
		if r.Mul < 2 {
			return nil, badSpec("param range needs mul ≥ 2, got %d", r.Mul)
		}
		if r.From < 1 {
			return nil, badSpec("geometric param range needs from ≥ 1, got %d", r.From)
		}
		for v := r.From; v <= r.To; {
			out = append(out, v)
			if len(out) > AbsoluteMaxCells {
				return nil, badSpec("param range expands past %d values", AbsoluteMaxCells)
			}
			if v > r.To/r.Mul {
				break // next multiplication would overflow past To
			}
			v *= r.Mul
		}
		return out, nil
	default:
		step := r.Step
		if step == 0 {
			step = 1
		}
		if step < 0 {
			return nil, badSpec("param range needs step ≥ 1, got %d", step)
		}
		for v := r.From; v <= r.To; v += step {
			out = append(out, v)
			if len(out) > AbsoluteMaxCells {
				return nil, badSpec("param range expands past %d values", AbsoluteMaxCells)
			}
		}
		return out, nil
	}
}

// PredicateTemplate is a predicate spec whose numeric fields may depend on
// the sweep parameter; building it at a parameter value yields the
// engine.PredicateSpec of a verify cell.
type PredicateTemplate struct {
	// Kind is "counting", "mod" or "majority" (engine.PredicateSpec.Kind).
	Kind string `json:"kind"`
	// Threshold, Modulus and Residue are the kind's numeric fields, each a
	// literal or a {N} expression.
	Threshold Expr `json:"threshold,omitzero"`
	Modulus   Expr `json:"modulus,omitzero"`
	Residue   Expr `json:"residue,omitzero"`
}

// UsesParam reports whether any field reads the sweep parameter.
func (t *PredicateTemplate) UsesParam() bool {
	return t != nil && (t.Threshold.UsesParam() || t.Modulus.UsesParam() || t.Residue.UsesParam())
}

// Build instantiates the template at a parameter value.
func (t *PredicateTemplate) Build(param int64) *engine.PredicateSpec {
	if t == nil {
		return nil
	}
	return &engine.PredicateSpec{
		Kind:      t.Kind,
		Threshold: t.Threshold.Eval(param),
		Modulus:   t.Modulus.Eval(param),
		Residue:   t.Residue.Eval(param),
	}
}

// ProtocolAxis is one entry of the protocol axis. Exactly one of Spec and
// Inline must be set, except in protocol-free bounds sweeps (empty protocol
// axis). Per-entry Kinds, Sizes, Inputs and Predicate override the
// spec-level axes, so ragged grids (different sizes per protocol, as in the
// paper's per-threshold tables) need no separate sweeps.
type ProtocolAxis struct {
	// Spec is a registry spec string, optionally containing the {N}
	// placeholder ("flock:{N}") substituted by each value of the params
	// axis.
	Spec string `json:"spec,omitempty"`
	// Inline is an inline JSON protocol (the protocol.Spec interchange
	// format). Inline protocols take no parameter substitution.
	Inline json.RawMessage `json:"inline,omitempty"`
	// Label names the entry in cell results; defaults to the (substituted)
	// spec string, or "inline" for inline protocols.
	Label string `json:"label,omitempty"`
	// Kinds overrides the spec-level kinds axis for this entry.
	Kinds []engine.Kind `json:"kinds,omitempty"`
	// Sizes overrides the spec-level sizes axis for this entry.
	Sizes []Expr `json:"sizes,omitempty"`
	// Inputs lists explicit input multisets for simulate and cover cells —
	// required for protocols with more than one input variable, where a
	// bare population size is ambiguous. When set, it replaces the sizes
	// axis for those kinds.
	Inputs [][]int64 `json:"inputs,omitempty"`
	// Predicate overrides the spec-level predicate template.
	Predicate *PredicateTemplate `json:"predicate,omitempty"`
}

// Options sets the per-cell execution knobs shared by the whole sweep.
type Options struct {
	// Seed seeds randomized cells; every cell derives its own seed from it
	// (seed + index·2654435769), so cells are decorrelated but the sweep is
	// reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Runs > 1 aggregates each simulate cell over that many seeds.
	Runs int `json:"runs,omitempty"`
	// MaxSteps bounds simulated interactions per run (0 = simulator
	// default).
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// ExactOracle switches simulate cells to the exact stable-set oracle
	// (computed once per protocol via the engine cache).
	ExactOracle bool `json:"exactOracle,omitempty"`
	// MinSize is the lower population bound of verify cells (default 2);
	// each verify cell checks every input size in [MinSize, size].
	MinSize int64 `json:"minSize,omitempty"`
	// Limit bounds each configuration graph of verify and cover cells
	// (0 = default).
	Limit int `json:"limit,omitempty"`
	// TimeoutMillis bounds each cell's wall-clock time (0 = no per-cell
	// deadline; the sweep context still applies).
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// FullResults keeps the heavyweight payload fields (simulation traces
	// and final configurations, certificate witnesses, basis vectors) in
	// cell results. By default they are stripped, keeping a million-cell
	// stream lean; summaries (sizes, verdicts, statistics) always remain.
	FullResults bool `json:"fullResults,omitempty"`
}

// Spec is a declarative scenario sweep: the cartesian grid
// protocols × params × kinds × sizes, with explicit expansion caps. It is
// JSON-round-trippable, so sweeps cross process boundaries (POST /v1/sweep)
// losslessly.
type Spec struct {
	// Name labels the sweep in results and logs.
	Name string `json:"name,omitempty"`
	// Protocols is the protocol axis. It may be empty only when every kind
	// is "bounds": then the params axis supplies the state counts.
	Protocols []ProtocolAxis `json:"protocols,omitempty"`
	// Params is the parameter axis substituted for {N}; empty means the
	// sweep is unparametrised.
	Params []ParamRange `json:"params,omitempty"`
	// Kinds is the analysis-kind axis (at least one, unless every entry
	// overrides it).
	Kinds []engine.Kind `json:"kinds,omitempty"`
	// Sizes is the population-size axis consumed by simulate, verify and
	// cover cells; kinds that analyse the protocol as a whole (stable,
	// basis, saturate, certify-*, bounds) ignore it and produce one cell
	// per protocol and parameter.
	Sizes []Expr `json:"sizes,omitempty"`
	// Predicate is the predicate template of verify cells; protocols from
	// the registry default to the predicate they are known to compute.
	Predicate *PredicateTemplate `json:"predicate,omitempty"`
	// Options are the shared per-cell execution knobs.
	Options Options `json:"options,omitzero"`
	// MaxCells caps the expanded grid (default DefaultMaxCells, ceiling
	// AbsoluteMaxCells). Expansion fails loudly when the cross product
	// exceeds it — a sweep never silently truncates its grid.
	MaxCells int `json:"maxCells,omitempty"`
	// Cells, when non-empty, selects a slice of the expanded grid by cell
	// index: only cells whose index falls inside one of the (inclusive)
	// ranges execute. Indices, per-cell seeds and results are exactly those
	// of the full grid — a sweep split into disjoint ranges and re-merged
	// equals the unsplit sweep cell for cell — so grid indices double as
	// resumable cell IDs, and a cluster coordinator can partition one spec
	// across workers and retry any slice elsewhere.
	Cells []IndexRange `json:"cells,omitempty"`
}

// IndexRange selects the inclusive grid-index range [From, To].
type IndexRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Ranges compresses a set of cell indices (any order, duplicates ignored)
// into the minimal sorted list of maximal inclusive ranges — the Spec.Cells
// form of that selection.
func Ranges(indices []int) []IndexRange {
	if len(indices) == 0 {
		return nil
	}
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	var out []IndexRange
	for _, i := range sorted {
		if n := len(out); n > 0 && i <= out[n-1].To+1 {
			if i > out[n-1].To {
				out[n-1].To = i
			}
			continue
		}
		out = append(out, IndexRange{From: i, To: i})
	}
	return out
}

// normalizeRanges validates a cells selection and returns it sorted with
// overlapping and adjacent ranges merged (nil for an empty selection).
func normalizeRanges(rs []IndexRange) ([]IndexRange, error) {
	if len(rs) == 0 {
		return nil, nil
	}
	sorted := append([]IndexRange(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	var out []IndexRange
	for _, r := range sorted {
		switch {
		case r.From < 0:
			return nil, badSpec("cells range [%d, %d] has a negative index", r.From, r.To)
		case r.To < r.From:
			return nil, badSpec("cells range [%d, %d] is inverted", r.From, r.To)
		}
		if n := len(out); n > 0 && r.From <= out[n-1].To+1 {
			if r.To > out[n-1].To {
				out[n-1].To = r.To
			}
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// ParseSpec decodes and validates a JSON sweep spec. Unknown fields are
// rejected, so typos in axis names fail loudly instead of silently
// shrinking the grid.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		if errors.Is(err, ErrBadSpec) {
			return Spec{}, err // already a spec error; don't double-wrap
		}
		return Spec{}, badSpec("decoding: %v", err)
	}
	if dec.More() {
		return Spec{}, badSpec("trailing data after spec document")
	}
	// Validate by walking the whole expansion without retaining it, so a
	// near-cap spec does not hold its grid in memory twice.
	if err := s.expand(func(Cell) {}); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Cell is one expanded grid point: the axis coordinates plus the fully
// built engine request.
type Cell struct {
	// Index is the cell's position in expansion order (stable across runs
	// of the same spec).
	Index int `json:"index"`
	// Protocol is the entry label after parameter substitution.
	Protocol string `json:"protocol,omitempty"`
	// Param is the parameter value, when the cell consumed one.
	Param *int64 `json:"param,omitempty"`
	// Size is the population size (sum of the input multiset for explicit
	// inputs); 0 for kinds that ignore the sizes axis.
	Size int64 `json:"size,omitempty"`
	// Kind is the analysis kind.
	Kind engine.Kind `json:"kind"`
	// Request is the engine request the cell executes.
	Request engine.Request `json:"request"`
}

// needsSize reports whether a kind consumes the sizes axis.
func needsSize(k engine.Kind) bool {
	switch k {
	case engine.KindSimulate, engine.KindVerify, engine.KindCover:
		return true
	default:
		return false
	}
}

// Expand materialises the grid into engine requests, in deterministic
// order: protocol entries × params × kinds × sizes. It validates the whole
// spec and enforces the cell caps; it never panics on malformed input.
func (s Spec) Expand() ([]Cell, error) {
	var cells []Cell
	if err := s.expand(func(c Cell) { cells = append(cells, c) }); err != nil {
		return nil, err
	}
	return cells, nil
}

// expand walks the grid, handing each cell to sink. Validation-only
// callers pass a discarding sink and retain nothing.
func (s Spec) expand(sink func(Cell)) error {
	maxCells := s.MaxCells
	switch {
	case maxCells == 0:
		maxCells = DefaultMaxCells
	case maxCells < 0:
		return badSpec("maxCells %d is negative", maxCells)
	case maxCells > AbsoluteMaxCells:
		return badSpec("maxCells %d exceeds the ceiling %d", maxCells, AbsoluteMaxCells)
	}

	var params []int64
	for _, r := range s.Params {
		var err error
		if params, err = r.values(params); err != nil {
			return err
		}
	}
	if err := validKinds(s.Kinds); err != nil {
		return err
	}
	sel, err := normalizeRanges(s.Cells)
	if err != nil {
		return err
	}

	// emit assigns grid indices, enforces the cap, and derives per-cell
	// seeds for randomized kinds (decorrelated but reproducible). Index
	// assignment and seed derivation always walk the full grid; a cells
	// selection only filters what reaches the sink, so a selected slice is
	// cell-identical to its counterpart in the unselected sweep.
	next := 0
	si := 0
	emit := func(c Cell) error {
		if next >= maxCells {
			return capError(maxCells, s.MaxCells)
		}
		c.Index = next
		next++
		switch c.Kind {
		case engine.KindSimulate, engine.KindCertifyChain, engine.KindCertifyLeaderless:
			c.Request.Seed = s.Options.Seed + uint64(c.Index)*seedStride
		}
		if sel != nil {
			for si < len(sel) && sel[si].To < c.Index {
				si++
			}
			if si >= len(sel) || c.Index < sel[si].From {
				return nil
			}
		}
		sink(c)
		return nil
	}

	// Protocol-free sweeps: only bounds cells, one per parameter.
	if len(s.Protocols) == 0 {
		if err := s.expandProtocolFree(params, emit); err != nil {
			return err
		}
		return checkSelection(sel, next)
	}
	for i, entry := range s.Protocols {
		if err := s.expandEntry(i, entry, params, emit); err != nil {
			return err
		}
	}
	if next == 0 {
		return badSpec("grid is empty (no protocols, params, kinds or sizes produce a cell)")
	}
	return checkSelection(sel, next)
}

// checkSelection rejects a cells selection reaching past the grid, so a
// coordinator addressing stale indices fails loudly instead of silently
// running a truncated slice.
func checkSelection(sel []IndexRange, gridSize int) error {
	if len(sel) == 0 {
		return nil
	}
	if last := sel[len(sel)-1].To; last >= gridSize {
		return badSpec("cells selection ends at index %d but the grid has %d cells", last, gridSize)
	}
	return nil
}

// expandProtocolFree expands a sweep with an empty protocol axis: every
// kind must be bounds, and each parameter value becomes a state count.
func (s Spec) expandProtocolFree(params []int64, emit func(Cell) error) error {
	kinds := s.Kinds
	if len(kinds) == 0 {
		kinds = []engine.Kind{engine.KindBounds}
	}
	for _, k := range kinds {
		if k != engine.KindBounds {
			return badSpec("kind %q needs a protocol axis (only bounds sweeps may omit it)", k)
		}
	}
	if len(params) == 0 {
		return badSpec("protocol-free bounds sweep needs a params axis (the state counts)")
	}
	for _, p := range params {
		p := p
		err := emit(Cell{
			Param: &p,
			Kind:  engine.KindBounds,
			Request: engine.Request{
				Kind:          engine.KindBounds,
				States:        p,
				TimeoutMillis: s.Options.TimeoutMillis,
			},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// expandEntry expands one protocol-axis entry.
func (s Spec) expandEntry(entryIdx int, entry ProtocolAxis, params []int64, emit func(Cell) error) error {
	if entry.Spec != "" && len(entry.Inline) > 0 {
		return badSpec("protocols[%d] sets both spec and inline", entryIdx)
	}
	if entry.Spec == "" && len(entry.Inline) == 0 {
		return badSpec("protocols[%d] sets neither spec nor inline", entryIdx)
	}
	kinds := entry.Kinds
	if len(kinds) == 0 {
		kinds = s.Kinds
	}
	if len(kinds) == 0 {
		return badSpec("protocols[%d] has no kinds (set spec-level kinds or a per-entry override)", entryIdx)
	}
	if err := validKinds(kinds); err != nil {
		return err
	}
	sizes := entry.Sizes
	if len(sizes) == 0 {
		sizes = s.Sizes
	}
	predicate := entry.Predicate
	if predicate == nil {
		predicate = s.Predicate
	}

	usesParam := strings.Contains(entry.Spec, Param) || predicate.UsesParam()
	for _, sz := range sizes {
		usesParam = usesParam || sz.UsesParam()
	}
	entryParams := []*int64{nil}
	switch {
	case usesParam && len(params) == 0:
		return badSpec("protocols[%d] uses %s but the spec has no params axis", entryIdx, Param)
	case usesParam:
		entryParams = entryParams[:0]
		for _, p := range params {
			p := p
			entryParams = append(entryParams, &p)
		}
	}

	// A parametric spec template is a protocol family: declare it on every
	// member cell so the engine's incremental layer can warm-start each
	// parameter's artifacts from the previously analyzed neighbor. (The
	// sweep Param token and the engine's family token are the same "{N}".)
	family := ""
	if strings.Contains(entry.Spec, Param) {
		family = entry.Spec
	}
	for _, param := range entryParams {
		pv := int64(0)
		if param != nil {
			pv = *param
		}
		ref, label, err := entry.resolveRef(pv)
		if err != nil {
			return err
		}
		for _, kind := range kinds {
			cell := Cell{
				Protocol: label,
				Param:    param,
				Kind:     kind,
				Request: engine.Request{
					Kind:          kind,
					Protocol:      ref,
					TimeoutMillis: s.Options.TimeoutMillis,
				},
			}
			if family != "" && param != nil {
				cell.Request.Family = family
				cell.Request.FamilyParam = pv
			}
			if !needsSize(kind) {
				if err := emit(cell); err != nil {
					return err
				}
				continue
			}
			inputs, cellSizes, err := entry.inputsFor(kind, sizes, pv, entryIdx)
			if err != nil {
				return err
			}
			for i := range cellSizes {
				c := cell // fresh copy per size
				c.Size = cellSizes[i]
				switch kind {
				case engine.KindSimulate:
					c.Request.Input = inputs[i]
					c.Request.Runs = s.Options.Runs
					c.Request.MaxSteps = s.Options.MaxSteps
					c.Request.ExactOracle = s.Options.ExactOracle
				case engine.KindCover:
					c.Request.Input = inputs[i]
					c.Request.Limit = s.Options.Limit
				case engine.KindVerify:
					c.Request.Predicate = predicate.Build(pv)
					c.Request.MinSize = s.Options.MinSize
					c.Request.MaxSize = cellSizes[i]
					c.Request.Limit = s.Options.Limit
				}
				if err := emit(c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// resolveRef builds the protocol reference and display label of an entry at
// a parameter value.
func (e ProtocolAxis) resolveRef(param int64) (engine.ProtocolRef, string, error) {
	if len(e.Inline) > 0 {
		label := e.Label
		if label == "" {
			label = "inline"
		}
		return engine.ProtocolRef{Inline: e.Inline}, label, nil
	}
	spec := strings.ReplaceAll(e.Spec, Param, strconv.FormatInt(param, 10))
	label := e.Label
	if label == "" {
		label = spec
	} else {
		label = strings.ReplaceAll(label, Param, strconv.FormatInt(param, 10))
	}
	return engine.ProtocolRef{Spec: spec}, label, nil
}

// inputsFor resolves the per-cell inputs and sizes of a size-consuming
// kind: explicit input multisets when the entry lists them (simulate and
// cover), else the sizes axis as single-variable inputs.
func (e ProtocolAxis) inputsFor(kind engine.Kind, sizes []Expr, param int64, entryIdx int) (inputs [][]int64, cellSizes []int64, err error) {
	if len(e.Inputs) > 0 && kind != engine.KindVerify {
		for _, in := range e.Inputs {
			var total int64
			for _, v := range in {
				total += v
			}
			inputs = append(inputs, in)
			cellSizes = append(cellSizes, total)
		}
		return inputs, cellSizes, nil
	}
	if len(sizes) == 0 {
		return nil, nil, badSpec("protocols[%d]: kind %q needs a sizes axis (or explicit inputs)", entryIdx, kind)
	}
	for _, sz := range sizes {
		n := sz.Eval(param)
		if n < 2 {
			// Parametric size bands ("{N}-1") can dip below the smallest
			// meaningful population near the axis edge; skip those points
			// rather than failing the whole sweep.
			continue
		}
		if kind == engine.KindVerify {
			inputs = append(inputs, nil)
		} else {
			inputs = append(inputs, []int64{n})
		}
		cellSizes = append(cellSizes, n)
	}
	return inputs, cellSizes, nil
}

// capError reports a grid exceeding its cap (expansion stops counting at
// the cap).
func capError(effective, requested int) error {
	if requested == 0 {
		return badSpec("grid exceeds %d cells (the default cap; set maxCells explicitly, ceiling %d)",
			effective, AbsoluteMaxCells)
	}
	return badSpec("grid exceeds maxCells %d", effective)
}

// validKinds checks every kind against the engine's kind table.
func validKinds(kinds []engine.Kind) error {
	for _, k := range kinds {
		if !k.Valid() {
			return badSpec("unknown kind %q (known: %v)", k, engine.Kinds)
		}
	}
	return nil
}
