package sweep

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

// seedStride decorrelates per-cell seeds (the golden-ratio increment also
// used by the simulator's multi-run estimates).
const seedStride = 0x9e3779b9

// CellResult is the outcome of one executed cell: the cell's coordinates,
// a success flag, and the (condensed) engine result.
type CellResult struct {
	// Index is the cell's grid position (expansion order); results stream
	// in completion order, so indices identify cells across the two.
	Index int `json:"index"`
	// Protocol, Param, Size and Kind are the cell coordinates (see Cell).
	Protocol string      `json:"protocol,omitempty"`
	Param    *int64      `json:"param,omitempty"`
	Size     int64       `json:"size,omitempty"`
	Kind     engine.Kind `json:"kind"`
	// OK reports whether the cell's request succeeded.
	OK bool `json:"ok"`
	// Error is the failure message of a failed cell.
	Error string `json:"error,omitempty"`
	// ElapsedMillis is the cell's wall-clock execution time.
	ElapsedMillis float64 `json:"elapsedMillis"`
	// CacheHit reports whether the cell was served from memoized
	// per-protocol artifacts.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Result is the engine result of a successful cell. Unless the spec
	// sets options.fullResults, heavyweight payloads (traces, final
	// configurations, certificate witnesses, basis vectors) are stripped.
	Result *engine.Result `json:"result,omitempty"`
}

// KindStats aggregates the cells of one analysis kind.
type KindStats struct {
	Cells     int `json:"cells"`
	OK        int `json:"ok"`
	Errors    int `json:"errors"`
	CacheHits int `json:"cacheHits"`
}

// SimStats aggregates convergence across the sweep's completed simulate
// cells: percentiles of interactions and of parallel time (single-run
// cells contribute their run; multi-run cells the mean over their
// converged replicas, taken from the replica executor's aggregate).
type SimStats struct {
	Cells     int `json:"cells"`
	Converged int `json:"converged"`
	// InteractionsP50/P95/Max summarise convergence interactions over
	// converged cells.
	InteractionsP50 float64 `json:"interactionsP50"`
	InteractionsP95 float64 `json:"interactionsP95"`
	InteractionsMax float64 `json:"interactionsMax"`
	// ParallelP50/P95/Max summarise parallel time over converged cells.
	ParallelP50 float64 `json:"parallelP50"`
	ParallelP95 float64 `json:"parallelP95"`
	ParallelMax float64 `json:"parallelMax"`
}

// VerifyStats aggregates the sweep's completed verify cells.
type VerifyStats struct {
	Cells int `json:"cells"`
	// AllOK counts cells whose whole verified range passed.
	AllOK int `json:"allOK"`
	// Failures is the total failing inputs across cells.
	Failures int `json:"failures"`
}

// CertifyStats aggregates the sweep's completed certify cells.
type CertifyStats struct {
	Cells int `json:"cells"`
	OK    int `json:"ok"`
	// MaxA is the largest certified threshold bound A across cells.
	MaxA int64 `json:"maxA"`
}

// Result aggregates a whole sweep run.
type Result struct {
	// Name echoes the spec name.
	Name string `json:"name,omitempty"`
	// TotalCells is the expanded grid size; Completed counts cells that
	// ran to an outcome (success or error); Failed counts the errors.
	// Completed < TotalCells means the sweep was cancelled mid-flight.
	TotalCells int `json:"totalCells"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	// Cancelled reports that the context ended before the grid did.
	Cancelled bool `json:"cancelled,omitempty"`
	// Workers is the worker-pool size the sweep ran with.
	Workers int `json:"workers"`
	// WallMillis is the end-to-end wall-clock time of the sweep.
	WallMillis float64 `json:"wallMillis"`
	// ByKind aggregates per analysis kind.
	ByKind map[engine.Kind]*KindStats `json:"byKind,omitempty"`
	// Simulation, Verification and Certification aggregate the matching
	// kinds (nil when the sweep had no such cells).
	Simulation    *SimStats     `json:"simulation,omitempty"`
	Verification  *VerifyStats  `json:"verification,omitempty"`
	Certification *CertifyStats `json:"certification,omitempty"`
	// Cells holds every completed cell result in grid (index) order.
	Cells []CellResult `json:"cells,omitempty"`
}

// RunOptions configures one sweep execution.
type RunOptions struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS). Each worker feeds
	// the shared engine, whose execution-slot semaphore still bounds the
	// CPU actually burnt, so oversizing the pool queues rather than
	// thrashes.
	Workers int
	// OnCell, when set, observes every completed cell in completion order.
	// Calls are serialized; a slow observer backpressures the sweep (this
	// is what lets an HTTP client's streaming pace bound server work).
	OnCell func(CellResult)
	// DiscardCells leaves Result.Cells empty; the aggregates still cover
	// every cell. Streaming consumers that already saw each cell via
	// OnCell set this to keep memory flat on very large grids.
	DiscardCells bool
}

// Run expands the spec and executes every cell on a worker pool against
// eng. It returns the aggregated result; on cancellation it returns the
// partial result together with the context's error, after in-flight cells
// have been interrupted (the engine's cooperative cancellation) and
// remaining cells skipped.
func Run(ctx context.Context, eng *engine.Engine, spec Spec, opts RunOptions) (*Result, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	start := time.Now()
	jobs := make(chan []Cell)
	results := make(chan CellResult)

	// Feeder: hands out family chains — cells of one protocol family as one
	// sequential unit, everything else as singletons — and stops as soon as
	// the context ends.
	go func() {
		defer close(jobs)
		for _, chain := range familyChains(cells) {
			select {
			case jobs <- chain:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chain := range jobs {
				for _, c := range chain {
					if ctx.Err() != nil {
						return
					}
					results <- RunCell(ctx, eng, spec, c)
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	col := NewCollector(spec.Name, len(cells), workers, opts.DiscardCells)
	for cr := range results {
		col.Add(cr)
		if opts.OnCell != nil {
			opts.OnCell(cr)
		}
	}
	res := col.Finish(time.Since(start))
	if err := ctx.Err(); err != nil && res.Completed < res.TotalCells {
		res.Cancelled = true
		return res, err
	}
	return res, nil
}

// familyChains partitions expanded cells into execution chains: cells
// declaring the same protocol family form one chain in grid order — which,
// by expansion order, is ascending parameter order — and every other cell
// is a singleton chain. A chain executes sequentially on one worker, so
// each family member's artifacts are complete before the next parameter
// starts and the engine's delta path always finds its nearest neighbor
// warm. Chains are ordered by first appearance, keeping the schedule
// deterministic; results still stream in completion order and aggregate
// identically to per-cell scheduling.
func familyChains(cells []Cell) [][]Cell {
	var chains [][]Cell
	byFamily := make(map[string]int)
	for _, c := range cells {
		fam := c.Request.Family
		if fam == "" {
			chains = append(chains, []Cell{c})
			continue
		}
		ci, ok := byFamily[fam]
		if !ok {
			ci = len(chains)
			byFamily[fam] = ci
			chains = append(chains, nil)
		}
		chains[ci] = append(chains[ci], c)
	}
	return chains
}

// Collector folds completed cells into an aggregate Result incrementally,
// in any arrival order: the aggregates are order-independent, and Finish
// sorts retained cells back into grid order. It is the single aggregation
// path — the local executor (Run) and the cluster coordinator's merger both
// fold through it, which is what makes a fanned-out sweep's summary equal
// the single-process one. Not safe for concurrent use; serialize Add calls.
type Collector struct {
	res     *Result
	discard bool
	// Percentile sources are collected incrementally, so discarding cells
	// keeps memory flat without losing the aggregates.
	interactions, parallel []float64
}

// NewCollector starts an aggregate over a grid of totalCells. discard
// leaves Result.Cells empty (for consumers that stream cells elsewhere).
func NewCollector(name string, totalCells, workers int, discard bool) *Collector {
	return &Collector{
		res: &Result{
			Name:       name,
			TotalCells: totalCells,
			Workers:    workers,
			ByKind:     make(map[engine.Kind]*KindStats),
		},
		discard: discard,
	}
}

// Add folds one completed cell into the aggregate.
func (col *Collector) Add(cr CellResult) {
	col.res.record(cr, col.discard)
	if s := simOf(cr); s != nil {
		switch {
		case s.Estimate != nil:
			// Multi-run cells execute on the replica executor
			// (sim.RunReplicas via the engine); its aggregate carries
			// the per-run means that feed both percentile sources.
			if s.Estimate.Converged > 0 {
				col.parallel = append(col.parallel, s.Estimate.MeanParallel)
				col.interactions = append(col.interactions, s.Estimate.MeanInteractions)
			}
		case s.Converged:
			col.interactions = append(col.interactions, float64(s.Interactions))
			col.parallel = append(col.parallel, s.ParallelTime)
		}
	}
}

// Completed reports how many cells have been folded in so far.
func (col *Collector) Completed() int { return col.res.Completed }

// Finish seals the aggregate: cells sort back into grid order and the
// percentile statistics are computed. The collector must not be used again.
func (col *Collector) Finish(wall time.Duration) *Result {
	col.res.finish(wall, col.interactions, col.parallel)
	return col.res
}

// RunCell executes one expanded cell against eng and condenses its outcome
// — the single-cell unit of work behind Run, exported so a cluster
// coordinator's local fallback executes cells identically to a worker.
func RunCell(ctx context.Context, eng *engine.Engine, spec Spec, c Cell) CellResult {
	cr := CellResult{
		Index:    c.Index,
		Protocol: c.Protocol,
		Param:    c.Param,
		Size:     c.Size,
		Kind:     c.Kind,
	}
	cellStart := time.Now()
	r, err := eng.Do(ctx, c.Request)
	cr.ElapsedMillis = float64(time.Since(cellStart)) / float64(time.Millisecond)
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.OK = true
	cr.CacheHit = r.CacheHit
	cr.ElapsedMillis = r.ElapsedMillis
	cr.Result = condense(r, spec.Options.FullResults)
	return cr
}

// condense strips the heavyweight payload fields from a cell's engine
// result unless full results were requested, keeping streamed rows lean.
func condense(r *engine.Result, full bool) *engine.Result {
	if full || r == nil {
		return r
	}
	c := *r
	if c.Simulation != nil {
		s := *c.Simulation
		s.Trace = nil
		s.Final = nil
		s.FinalFormatted = ""
		c.Simulation = &s
	}
	if c.Certificate != nil {
		cert := *c.Certificate
		cert.Chain = nil
		cert.Leaderless = nil
		c.Certificate = &cert
	}
	if c.Basis != nil {
		b := *c.Basis
		b.Basis = nil
		c.Basis = &b
	}
	return &c
}

// simOf returns the simulation payload of a successful simulate cell.
func simOf(cr CellResult) *engine.SimulationResult {
	if !cr.OK || cr.Result == nil {
		return nil
	}
	return cr.Result.Simulation
}

// record folds one cell outcome into the aggregates.
func (res *Result) record(cr CellResult, discard bool) {
	res.Completed++
	ks := res.ByKind[cr.Kind]
	if ks == nil {
		ks = &KindStats{}
		res.ByKind[cr.Kind] = ks
	}
	ks.Cells++
	if cr.CacheHit {
		ks.CacheHits++
	}
	if !cr.OK {
		res.Failed++
		ks.Errors++
	} else {
		ks.OK++
	}
	if !discard {
		res.Cells = append(res.Cells, cr)
	}
	if !cr.OK || cr.Result == nil {
		return
	}
	switch {
	case cr.Result.Simulation != nil:
		if res.Simulation == nil {
			res.Simulation = &SimStats{}
		}
		res.Simulation.Cells++
		s := cr.Result.Simulation
		if s.Converged {
			res.Simulation.Converged++
		}
	case cr.Result.Verification != nil:
		if res.Verification == nil {
			res.Verification = &VerifyStats{}
		}
		res.Verification.Cells++
		if cr.Result.Verification.AllOK {
			res.Verification.AllOK++
		}
		res.Verification.Failures += len(cr.Result.Verification.Failures)
	case cr.Result.Certificate != nil:
		if res.Certification == nil {
			res.Certification = &CertifyStats{}
		}
		res.Certification.Cells++
		res.Certification.OK++
		if a := cr.Result.Certificate.A; a > res.Certification.MaxA {
			res.Certification.MaxA = a
		}
	}
}

// finish sorts the cells back into grid order and computes the percentile
// aggregates from the incrementally collected samples.
func (res *Result) finish(wall time.Duration, interactions, parallel []float64) {
	res.WallMillis = float64(wall) / float64(time.Millisecond)
	sort.Slice(res.Cells, func(i, j int) bool { return res.Cells[i].Index < res.Cells[j].Index })
	if res.Simulation == nil {
		return
	}
	sort.Float64s(interactions)
	sort.Float64s(parallel)
	res.Simulation.InteractionsP50 = quantile(interactions, 0.5)
	res.Simulation.InteractionsP95 = quantile(interactions, 0.95)
	res.Simulation.InteractionsMax = quantile(interactions, 1)
	res.Simulation.ParallelP50 = quantile(parallel, 0.5)
	res.Simulation.ParallelP95 = quantile(parallel, 0.95)
	res.Simulation.ParallelMax = quantile(parallel, 1)
}

// quantile interpolates the q-quantile of a sorted sample (0 if empty).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
