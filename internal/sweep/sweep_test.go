package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// --- spec parsing and expansion -------------------------------------------

func TestParseSpecMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":             `{`,
		"unknown field":        `{"protocolz": [{"spec":"flock:3"}], "kinds":["stable"]}`,
		"unknown kind":         `{"protocols":[{"spec":"flock:3"}],"kinds":["zzz"]}`,
		"no kinds":             `{"protocols":[{"spec":"flock:3"}]}`,
		"spec and inline":      `{"protocols":[{"spec":"flock:3","inline":{"name":"x"}}],"kinds":["stable"]}`,
		"neither spec/inline":  `{"protocols":[{"label":"x"}],"kinds":["stable"]}`,
		"bad expr":             `{"protocols":[{"spec":"flock:3"}],"kinds":["simulate"],"sizes":["{N"]}`,
		"bad expr op":          `{"protocols":[{"spec":"flock:{N}"}],"params":[3],"kinds":["simulate"],"sizes":["{N}/2"]}`,
		"param without axis":   `{"protocols":[{"spec":"flock:{N}"}],"kinds":["stable"]}`,
		"inverted range":       `{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":9,"to":2}],"kinds":["stable"]}`,
		"range field typo":     `{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":64,"mull":2}],"kinds":["stable"]}`,
		"step and mul":         `{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":9,"step":1,"mul":2}],"kinds":["stable"]}`,
		"mul too small":        `{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":9,"mul":1}],"kinds":["stable"]}`,
		"sizes missing":        `{"protocols":[{"spec":"flock:3"}],"kinds":["simulate"]}`,
		"protocol-free verify": `{"kinds":["verify"],"params":[3]}`,
		"negative maxCells":    `{"protocols":[{"spec":"flock:3"}],"kinds":["stable"],"maxCells":-1}`,
		"maxCells over limit":  `{"protocols":[{"spec":"flock:3"}],"kinds":["stable"],"maxCells":2000000}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseSpec([]byte(doc))
			if err == nil {
				t.Fatalf("spec accepted: %s", doc)
			}
			if !errors.Is(err, ErrBadSpec) || !errors.Is(err, engine.ErrBadRequest) {
				t.Errorf("error must wrap ErrBadSpec and engine.ErrBadRequest, got: %v", err)
			}
		})
	}
}

func TestExpandCapOverflow(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 1, To: 1000}},
		Kinds:     []engine.Kind{engine.KindSimulate},
		Sizes:     []Expr{Lit(4), Lit(8)},
		MaxCells:  100,
	}
	if _, err := spec.Expand(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("2000-cell grid with maxCells=100 must fail, got %v", err)
	}
	// The default cap also applies when maxCells is unset.
	spec.MaxCells = 0
	spec.Params = []ParamRange{{From: 1, To: DefaultMaxCells}}
	if _, err := spec.Expand(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("grid beyond the default cap must fail, got %v", err)
	}
}

func TestExpandGrid(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 3, To: 5}},
		Kinds:     []engine.Kind{engine.KindSimulate, engine.KindStable},
		Sizes:     []Expr{mustExpr(t, "{N}-1"), mustExpr(t, "{N}"), mustExpr(t, "{N}+1")},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Per param: 3 simulate cells + 1 stable cell (stable ignores sizes).
	if want := 3 * 4; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Kind == engine.KindStable && c.Size != 0 {
			t.Errorf("stable cell carries size %d", c.Size)
		}
		if c.Kind == engine.KindSimulate && c.Request.Input == nil {
			t.Errorf("simulate cell %d has no input", i)
		}
		if c.Param == nil {
			t.Errorf("cell %d lost its param", i)
		}
	}
	// Spot-check substitution: first cell is flock:3 at size 2.
	if cells[0].Protocol != "flock:3" || cells[0].Size != 2 {
		t.Errorf("first cell: %+v", cells[0])
	}
}

func TestExpandGeometricParams(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 2, To: 32, Mul: 2}},
		Kinds:     []engine.Kind{engine.KindStable},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range cells {
		got = append(got, c.Protocol)
	}
	want := "flock:2 flock:4 flock:8 flock:16 flock:32"
	if strings.Join(got, " ") != want {
		t.Errorf("geometric expansion: %v, want %s", got, want)
	}
}

// TestExpandParamSkippedWhenUnused: an entry that consumes no parameter
// yields one cell, not one per param value.
func TestExpandParamSkippedWhenUnused(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "parity"}, {Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 3, To: 7}},
		Kinds:     []engine.Kind{engine.KindStable},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1+5 {
		t.Fatalf("got %d cells, want 6 (parity once, flock per param)", len(cells))
	}
	if cells[0].Param != nil {
		t.Errorf("unparametrised cell carries param %d", *cells[0].Param)
	}
}

// TestExpandSubMinimalSizesSkipped: parametric size bands may dip below 2
// agents near the axis edge; those points are skipped, not fatal.
func TestExpandSubMinimalSizesSkipped(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 2, To: 3}},
		Kinds:     []engine.Kind{engine.KindSimulate},
		Sizes:     []Expr{mustExpr(t, "{N}-1"), mustExpr(t, "{N}")},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// param 2: size 1 skipped, size 2 kept; param 3: sizes 2 and 3.
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	doc := `{
	  "name": "flock-threshold-scaling",
	  "protocols": [{"spec": "flock:{N}"}, {"spec": "majority", "inputs": [[5,2]], "kinds": ["simulate"]}],
	  "params": [2, {"from": 4, "to": 16, "mul": 2}],
	  "kinds": ["verify", "simulate"],
	  "sizes": ["{N}-1", "{N}", 8],
	  "predicate": {"kind": "counting", "threshold": "{N}"},
	  "options": {"runs": 3, "seed": 7, "timeoutMillis": 1000},
	  "maxCells": 200
	}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("re-parsing marshalled spec: %v\n%s", err, data)
	}
	data2, err := json.Marshal(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("spec JSON not stable under round trip:\n%s\n%s", data, data2)
	}
	cells1, _ := spec.Expand()
	cells2, _ := spec2.Expand()
	if len(cells1) == 0 || len(cells1) != len(cells2) {
		t.Errorf("round-tripped spec expands differently: %d vs %d cells", len(cells1), len(cells2))
	}
}

func mustExpr(t *testing.T, s string) Expr {
	t.Helper()
	e, err := ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// --- execution -------------------------------------------------------------

// TestRunFlockSweep runs a real multi-kind sweep and checks streaming,
// ordering, aggregation, and the artifact-cache reuse across cells.
func TestRunFlockSweep(t *testing.T) {
	spec := Spec{
		Name:      "flock-test",
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}},
		Params:    []ParamRange{{From: 3, To: 5}},
		Kinds:     []engine.Kind{engine.KindVerify, engine.KindSimulate, engine.KindStable},
		Sizes:     []Expr{mustExpr(t, "{N}+1")},
		Predicate: &PredicateTemplate{Kind: "counting", Threshold: ParamExpr(0, 0)},
		Options:   Options{Seed: 11, ExactOracle: true},
	}
	eng := engine.New()
	var streamed []int
	res, err := Run(context.Background(), eng, spec, RunOptions{
		Workers: 4,
		OnCell:  func(cr CellResult) { streamed = append(streamed, cr.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCells != 9 || res.Completed != 9 || res.Failed != 0 {
		t.Fatalf("bad counts: %+v", res)
	}
	if len(streamed) != 9 {
		t.Fatalf("streamed %d cells, want 9", len(streamed))
	}
	for i, cr := range res.Cells {
		if cr.Index != i {
			t.Fatalf("result cells not in grid order: %v", res.Cells)
		}
	}
	if res.Verification == nil || res.Verification.AllOK != 3 {
		t.Errorf("verify aggregate: %+v", res.Verification)
	}
	if res.Simulation == nil || res.Simulation.Converged != 3 || res.Simulation.ParallelMax <= 0 {
		t.Errorf("simulate aggregate: %+v", res.Simulation)
	}
	if got := len(res.ByKind); got != 3 {
		t.Errorf("byKind has %d kinds, want 3", got)
	}
	// The simulate (exact oracle) and stable cells of one protocol share
	// the stable-set artifact: exactly one computation per protocol.
	if n := eng.Computations(); n != 3 {
		t.Errorf("artifact computations: %d, want 3 (one per flock protocol)", n)
	}
	// Simulate cells above threshold must converge to 1.
	for _, cr := range res.Cells {
		if cr.Kind == engine.KindSimulate && (cr.Result.Simulation == nil || cr.Result.Simulation.Output != 1) {
			t.Errorf("cell %d: flock at η+1 should stabilise to 1: %+v", cr.Index, cr.Result.Simulation)
		}
	}
}

// TestRunMultiRunSimulateAggregates pins the E1/E2-style convergence-cell
// path: multi-run simulate cells execute on the replica executor (via the
// engine), their estimates carry the executor's per-run means and totals,
// and those means feed both percentile sources of the sweep aggregate —
// before the executor, estimate-only sweeps left the interactions
// percentiles empty.
func TestRunMultiRunSimulateAggregates(t *testing.T) {
	spec := Spec{
		Name:      "multirun",
		Protocols: []ProtocolAxis{{Spec: "flock:3"}},
		Kinds:     []engine.Kind{engine.KindSimulate},
		Sizes:     []Expr{Lit(8), Lit(10)},
		Options:   Options{Seed: 5, Runs: 4},
	}
	res, err := Run(context.Background(), engine.New(), spec, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Failed != 0 {
		t.Fatalf("bad counts: %+v", res)
	}
	s := res.Simulation
	if s == nil || s.Cells != 2 || s.Converged != 2 {
		t.Fatalf("simulate aggregate: %+v", s)
	}
	if s.InteractionsP50 <= 0 || s.InteractionsMax < s.InteractionsP50 {
		t.Fatalf("multi-run cells must feed the interactions percentiles: %+v", s)
	}
	if s.ParallelP50 <= 0 || s.ParallelMax < s.ParallelP50 {
		t.Fatalf("multi-run cells must feed the parallel percentiles: %+v", s)
	}
	for _, cr := range res.Cells {
		est := cr.Result.Simulation.Estimate
		if est == nil || est.Runs != 4 || est.Converged != 4 {
			t.Fatalf("cell %d: estimate %+v, want 4/4 converged", cr.Index, est)
		}
		if est.TotalInteractions <= 0 || est.MeanInteractions <= 0 {
			t.Fatalf("cell %d: executor fields missing: %+v", cr.Index, est)
		}
	}
}

// TestRunRecordsCellErrors: a cell whose request is invalid fails that cell
// only; the sweep completes and reports the error.
func TestRunRecordsCellErrors(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "flock:3"}, {Spec: "nosuchproto:1"}},
		Kinds:     []engine.Kind{engine.KindStable},
	}
	res, err := Run(context.Background(), engine.New(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Failed != 1 {
		t.Fatalf("bad counts: %+v", res)
	}
	var failed *CellResult
	for i := range res.Cells {
		if !res.Cells[i].OK {
			failed = &res.Cells[i]
		}
	}
	if failed == nil || failed.Error == "" || failed.Protocol != "nosuchproto:1" {
		t.Errorf("failed cell not reported: %+v", failed)
	}
}

// TestRunCancellation: cancelling the sweep context interrupts in-flight
// cells and skips the rest. The cells run a protocol that never converges
// with a huge step budget, so an uncancelled sweep would take minutes —
// returning promptly proves cooperative cancellation end to end.
func TestRunCancellation(t *testing.T) {
	// Two states that keep toggling: never silent, outputs disagree, so
	// the silence oracle never classifies and the run burns its budget.
	inline := json.RawMessage(`{
	  "name": "never-converges",
	  "states": [{"name": "a", "output": 0}, {"name": "b", "output": 1}],
	  "transitions": [["a","a","b","b"], ["b","b","a","a"]],
	  "inputs": {"x": "a"},
	  "completeWithIdentity": true
	}`)
	spec := Spec{
		Protocols: []ProtocolAxis{{Inline: inline, Label: "spinner"}},
		Kinds:     []engine.Kind{engine.KindSimulate},
		Sizes:     []Expr{Lit(100)},
		Options:   Options{MaxSteps: 2_000_000_000},
	}
	// 16 identical heavy cells.
	for i := 0; i < 4; i++ {
		spec.Protocols = append(spec.Protocols, spec.Protocols[0])
	}
	spec.Sizes = append(spec.Sizes, Lit(102), Lit(104))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, engine.New(), spec, RunOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s — in-flight cells were not interrupted", elapsed)
	}
	if !res.Cancelled {
		t.Error("result must be marked cancelled")
	}
	if res.Completed >= res.TotalCells {
		t.Errorf("all %d cells completed despite cancellation", res.TotalCells)
	}
}
