package sweep

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/engine"
)

// benchSpec is a CPU-bound simulate grid of 24 cells. The protocol never
// converges (two states toggling forever), so every cell deterministically
// burns its full interaction budget — per-cell cost is fixed and the
// worker pool, not the channel plumbing, dominates.
func benchSpec(t *testing.B) Spec {
	t.Helper()
	spinner := `{
	  "name": "spinner",
	  "states": [{"name": "a", "output": 0}, {"name": "b", "output": 1}],
	  "transitions": [["a","a","b","b"], ["b","b","a","a"]],
	  "inputs": {"x": "a"},
	  "completeWithIdentity": true
	}`
	spec := Spec{
		Name:      "bench",
		Protocols: []ProtocolAxis{{Inline: []byte(spinner), Label: "spinner"}},
		Kinds:     []engine.Kind{engine.KindSimulate},
		Options:   Options{Seed: 1, MaxSteps: 250_000},
	}
	for n := int64(100); n < 148; n += 2 {
		spec.Sizes = append(spec.Sizes, Lit(n))
	}
	return spec
}

func benchSweep(b *testing.B, workers int) {
	spec := benchSpec(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New() // cold engine: no cross-iteration caching
		res, err := Run(ctx, eng, spec, RunOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.TotalCells || res.Failed != 0 {
			b.Fatalf("bad sweep: %+v", res)
		}
	}
	b.ReportMetric(float64(24), "cells/op")
}

// BenchmarkSweepWorkers1 is the serial baseline of the sweep executor.
func BenchmarkSweepWorkers1(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepWorkersMax runs the same grid on a full-width pool; the
// speed-up over BenchmarkSweepWorkers1 pins the executor's scaling.
func BenchmarkSweepWorkersMax(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }
