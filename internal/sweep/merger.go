package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// SpecHash is a sweep spec's content hash — hex SHA-256 of its canonical
// JSON encoding. It keys the coordinator's durable journal: two runs of
// the same spec resume each other; any change to the spec starts fresh.
func SpecHash(spec Spec) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("sweep: hashing spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Merger is the reorder buffer between completion-ordered cell deliveries
// and the grid-ordered output stream. It dedups on cell index (a retried
// range — or a journal replay racing fresh execution — may deliver a cell
// twice), folds every first delivery into the optional shared Collector,
// and releases the contiguous prefix in index order through onCell.
type Merger struct {
	mu        sync.Mutex
	pos       map[int]int // grid index → position in the expanded order
	buf       []*CellResult
	seen      []bool
	next      int
	remaining int
	col       *Collector
	onCell    func(CellResult)
	done      chan struct{}
}

// NewMerger builds a reorder buffer over the expanded cells. col (may be
// nil) receives every first delivery for aggregation; onCell (may be nil)
// observes cells in grid-index order, serialized.
func NewMerger(cells []Cell, col *Collector, onCell func(CellResult)) *Merger {
	m := &Merger{
		pos:       make(map[int]int, len(cells)),
		buf:       make([]*CellResult, len(cells)),
		seen:      make([]bool, len(cells)),
		remaining: len(cells),
		col:       col,
		onCell:    onCell,
		done:      make(chan struct{}),
	}
	for i, c := range cells {
		m.pos[c.Index] = i
	}
	if len(cells) == 0 {
		close(m.done)
	}
	return m
}

// Add folds one delivered cell in; it reports false for duplicates and
// cells outside the grid. When the last cell lands, Done's channel closes.
func (m *Merger) Add(cr CellResult) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pos[cr.Index]
	if !ok || m.seen[p] {
		return false
	}
	m.seen[p] = true
	m.buf[p] = &cr
	if m.col != nil {
		m.col.Add(cr)
	}
	for m.next < len(m.buf) && m.buf[m.next] != nil {
		if m.onCell != nil {
			m.onCell(*m.buf[m.next])
		}
		m.buf[m.next] = nil // emitted: free the row, keep seen[]
		m.next++
	}
	m.remaining--
	if m.remaining == 0 {
		close(m.done)
	}
	return true
}

// Done returns a channel closed once every grid cell has been merged.
func (m *Merger) Done() <-chan struct{} { return m.done }

// Remaining reports how many grid cells have not been merged yet.
func (m *Merger) Remaining() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remaining
}
