package sweep

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/engine"
)

// familySpec is a two-family grid over the analysis kinds the incremental
// delta path accelerates: stable antichains and realisability bases, plus
// verify cells as an oracle-backed sanity layer.
func familySpec() Spec {
	return Spec{
		Name: "family-differential",
		Protocols: []ProtocolAxis{
			{Spec: "flock:{N}"},
			{Spec: "binary:{N}"},
		},
		Params:    []ParamRange{{From: 3, To: 7}},
		Kinds:     []engine.Kind{engine.KindStable, engine.KindBasis},
		Predicate: &PredicateTemplate{Kind: "counting", Threshold: ParamExpr(0, 0)},
		Options:   Options{Seed: 5, FullResults: true},
	}
}

func runFamilySweep(t *testing.T, eng *engine.Engine, workers int) *Result {
	t.Helper()
	res, err := Run(context.Background(), eng, familySpec(), RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.TotalCells {
		t.Fatalf("sweep did not complete cleanly: %+v", res)
	}
	return res
}

// TestFamilySweepIncrementalEqualsFromScratch is the tentpole acceptance
// gate: a family sweep on a warm-started engine produces canonical cells
// byte-identical, cell for cell, to the same sweep with the delta path
// disabled — and the canonical summaries match too.
func TestFamilySweepIncrementalEqualsFromScratch(t *testing.T) {
	warm := runFamilySweep(t, engine.New(), 2)

	cold := engine.New()
	cold.SetIncremental(false)
	scratch := runFamilySweep(t, cold, 2)

	if len(warm.Cells) != len(scratch.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(warm.Cells), len(scratch.Cells))
	}
	for i := range warm.Cells {
		wb, err := json.Marshal(CanonicalCell(warm.Cells[i]))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := json.Marshal(CanonicalCell(scratch.Cells[i]))
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(cb) {
			t.Errorf("cell %d differs:\n warm: %s\n cold: %s", i, wb, cb)
		}
	}

	ws, err := json.Marshal(CanonicalResult(warm))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := json.Marshal(CanonicalResult(scratch))
	if err != nil {
		t.Fatal(err)
	}
	if string(ws) != string(cs) {
		t.Errorf("canonical summaries differ:\n warm: %s\n cold: %s", ws, cs)
	}
}

// TestFamilySweepWarmProvenance: with family chains scheduling members
// sequentially in ascending parameter order, every member after a family's
// first must carry warm incremental provenance seeded from its predecessor
// — on a multi-worker pool, which is exactly what the chain scheduling
// guarantees.
func TestFamilySweepWarmProvenance(t *testing.T) {
	res := runFamilySweep(t, engine.New(), 4)

	// CellResult carries the resolved member spec, not the family template;
	// recover each index's family from the expanded grid.
	grid, err := familySpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	familyOf := make(map[int]string, len(grid))
	for _, c := range grid {
		familyOf[c.Index] = c.Request.Family
	}

	type famKey struct {
		family string
		kind   engine.Kind
	}
	firstParam := map[famKey]int64{}
	for _, c := range res.Cells {
		if c.Param != nil {
			k := famKey{familyOf[c.Index], c.Kind}
			if p, ok := firstParam[k]; !ok || *c.Param < p {
				firstParam[k] = *c.Param
			}
		}
	}

	warmCells := 0
	for _, c := range res.Cells {
		if c.Param == nil || c.Result == nil {
			continue
		}
		first := firstParam[famKey{familyOf[c.Index], c.Kind}] == *c.Param
		inc := c.Result.Incremental
		if first {
			if inc != nil {
				t.Errorf("first member %s:%d %s has provenance %+v", c.Protocol, *c.Param, c.Kind, inc)
			}
			continue
		}
		if inc == nil {
			t.Errorf("member %s:%d %s ran cold inside a family chain", c.Protocol, *c.Param, c.Kind)
			continue
		}
		warmCells++
		if inc.SeedParam != *c.Param-1 {
			t.Errorf("member %s:%d seeded from %d, want nearest neighbor %d",
				c.Protocol, *c.Param, inc.SeedParam, *c.Param-1)
		}
	}
	if warmCells == 0 {
		t.Fatal("no cell carried warm provenance")
	}
}

// TestFamilyChains pins the scheduling unit: family cells form one chain in
// grid order, non-family cells stay singletons, chain order follows first
// appearance.
func TestFamilyChains(t *testing.T) {
	mk := func(idx int, fam string) Cell {
		c := Cell{Index: idx}
		c.Request.Family = fam
		return c
	}
	cells := []Cell{mk(0, "a:{N}"), mk(1, ""), mk(2, "b:{N}"), mk(3, "a:{N}"), mk(4, "")}
	chains := familyChains(cells)
	if len(chains) != 4 {
		t.Fatalf("chains = %d, want 4", len(chains))
	}
	idx := func(ch []Cell) []int {
		out := make([]int, len(ch))
		for i, c := range ch {
			out[i] = c.Index
		}
		return out
	}
	want := [][]int{{0, 3}, {1}, {2}, {4}}
	for i := range want {
		got := idx(chains[i])
		if len(got) != len(want[i]) {
			t.Fatalf("chain %d = %v, want %v", i, got, want[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("chain %d = %v, want %v", i, got, want[i])
			}
		}
	}
}

// TestExpandStampsFamily: expansion marks parametric-template cells with
// their family identity and parameter, and leaves non-parametric cells
// unstamped.
func TestExpandStampsFamily(t *testing.T) {
	spec := Spec{
		Protocols: []ProtocolAxis{{Spec: "flock:{N}"}, {Spec: "flock:4"}},
		Params:    []ParamRange{{From: 3, To: 4}},
		Kinds:     []engine.Kind{engine.KindStable},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	stamped, plain := 0, 0
	for _, c := range cells {
		switch c.Request.Family {
		case "flock:{N}":
			stamped++
			if c.Param == nil || c.Request.FamilyParam != *c.Param {
				t.Errorf("cell %d: familyParam %d, param %v", c.Index, c.Request.FamilyParam, c.Param)
			}
		case "":
			plain++
		default:
			t.Errorf("cell %d: unexpected family %q", c.Index, c.Request.Family)
		}
	}
	if stamped == 0 || plain == 0 {
		t.Fatalf("stamped %d, plain %d — want both nonzero", stamped, plain)
	}
}
