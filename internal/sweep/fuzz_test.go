package sweep

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/engine"
)

// FuzzParseSweepSpec throws arbitrary documents at the sweep-spec parser
// and holds it to its contract: it never panics, every rejection wraps
// ErrBadSpec (and thus engine.ErrBadRequest, so serve maps it to a 400),
// and every accepted spec round-trips through json.Marshal into a spec
// with the identical grid. The seed corpus is the hand-written malformed
// set from TestParseSpecMalformed plus representative valid specs, so the
// fuzzer mutates from both sides of the boundary.
func FuzzParseSweepSpec(f *testing.F) {
	seeds := []string{
		// Malformed: the documented rejection cases.
		`{`,
		`{"protocolz": [{"spec":"flock:3"}], "kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:3"}],"kinds":["zzz"]}`,
		`{"protocols":[{"spec":"flock:3"}]}`,
		`{"protocols":[{"spec":"flock:3","inline":{"name":"x"}}],"kinds":["stable"]}`,
		`{"protocols":[{"label":"x"}],"kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:3"}],"kinds":["simulate"],"sizes":["{N"]}`,
		`{"protocols":[{"spec":"flock:{N}"}],"params":[3],"kinds":["simulate"],"sizes":["{N}/2"]}`,
		`{"protocols":[{"spec":"flock:{N}"}],"kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":9,"to":2}],"kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":64,"mull":2}],"kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":9,"step":1,"mul":2}],"kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":9,"mul":1}],"kinds":["stable"]}`,
		`{"protocols":[{"spec":"flock:3"}],"kinds":["simulate"]}`,
		`{"kinds":["verify"],"params":[3]}`,
		`{"protocols":[{"spec":"flock:3"}],"kinds":["stable"],"maxCells":-1}`,
		`{"protocols":[{"spec":"flock:3"}],"kinds":["stable"],"maxCells":2000000}`,
		// Valid: exercise both protocol forms, params, sizes, options.
		`{"name":"bounds-scaling","kinds":["bounds"],"params":[{"from":3,"to":12}],"maxCells":200}`,
		`{"name":"ok","protocols":[{"spec":"flock:{N}"}],"params":[{"from":3,"to":5}],"kinds":["simulate","stable"],"sizes":[6,"{N}*2"],"options":{"seed":11,"exactOracle":true}}`,
		`{"protocols":[{"inline":{"name":"maj","states":[{"name":"a","output":1},{"name":"b","output":0}],"transitions":[["a","b","a","a"]],"inputs":{"x":"a","y":"b"},"completeWithIdentity":true},"inputs":[[3,2]]}],"kinds":["simulate"],"options":{"maxSteps":100000}}`,
		`{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":2,"to":64,"mul":2}],"kinds":["bounds"]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			// The rejection contract: every parse failure is a client
			// error, identifiable by both sentinels.
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("rejection does not wrap ErrBadSpec: %v\ninput: %q", err, data)
			}
			if !errors.Is(err, engine.ErrBadRequest) {
				t.Fatalf("rejection does not wrap engine.ErrBadRequest: %v\ninput: %q", err, data)
			}
			return
		}
		// Accepted specs expand (ParseSpec already validated the walk) and
		// survive a marshal/parse round trip with the same grid.
		cells, err := spec.Expand()
		if err != nil {
			t.Fatalf("accepted spec failed to expand: %v\ninput: %q", err, data)
		}
		doc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v\ninput: %q", err, data)
		}
		spec2, err := ParseSpec(doc)
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\nremarshalled: %s\ninput: %q", err, doc, data)
		}
		cells2, err := spec2.Expand()
		if err != nil {
			t.Fatalf("round-tripped spec failed to expand: %v\nremarshalled: %s", err, doc)
		}
		if len(cells2) != len(cells) {
			t.Fatalf("grid changed across round trip: %d cells -> %d cells\nremarshalled: %s\ninput: %q",
				len(cells), len(cells2), doc, data)
		}
	})
}
