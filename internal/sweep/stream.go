package sweep

import "repro/internal/engine"

// StreamRow is one NDJSON row of a streamed sweep (the POST /v1/sweep
// response, and the coordinator↔worker wire format of the cluster
// dispatcher). Type is "cell" for per-cell rows (Cell set), "summary" for
// the final aggregate row (Summary set, its Cells field omitted — the
// stream already carried them), and "error" for a mid-stream failure
// (Error set).
type StreamRow struct {
	Type    string      `json:"type"`
	Cell    *CellResult `json:"cell,omitempty"`
	Summary *Result     `json:"summary,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// CanonicalCell returns a copy of a cell result with its volatile fields —
// wall-clock timings, cache-hit flags, incremental provenance and fixpoint
// schedule counters, which legitimately differ between runs and between
// executors (a warm-started analysis reaches the identical antichains in
// fewer rounds) — zeroed. Everything analysis-determined (verdicts, basis
// sizes, statistics, seed-driven simulation outcomes) is preserved, so two
// canonical cells are byte-identical exactly when the analyses agreed.
func CanonicalCell(cr CellResult) CellResult {
	cr.ElapsedMillis = 0
	cr.CacheHit = false
	if cr.Result != nil {
		r := *cr.Result
		r.ElapsedMillis = 0
		r.CacheHit = false
		r.Incremental = nil
		if r.Stable != nil {
			s := *r.Stable
			s.Iterations0, s.Iterations1 = 0, 0
			s.Frontier0, s.Frontier1 = 0, 0
			r.Stable = &s
		}
		cr.Result = &r
	}
	return cr
}

// CanonicalResult returns a copy of an aggregate result with its volatile
// fields zeroed: wall-clock time, worker-pool size, cache-hit counters, and
// the retained cells (the canonical stream already carries them as rows).
// A sweep fanned out across a cluster and the same sweep run in one process
// produce byte-identical canonical results.
func CanonicalResult(res *Result) *Result {
	if res == nil {
		return nil
	}
	c := *res
	c.WallMillis = 0
	c.Workers = 0
	c.Cells = nil
	c.ByKind = make(map[engine.Kind]*KindStats, len(res.ByKind))
	for k, ks := range res.ByKind {
		cp := *ks
		cp.CacheHits = 0
		c.ByKind[k] = &cp
	}
	return &c
}
