package sweep

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// The incremental pair measures the scenario the delta path exists for:
// EXTENDING a previously analyzed family ramp. The base grid (binary
// thresholds incrBaseFrom..incrTo) has been analyzed and its artifacts
// persisted; the extended grid widens the range by two members. The
// incremental side reopens the store — base cells are durable hits, the
// new members compute through the family warm path — while the
// from-scratch side recomputes the whole extended grid cold.
//
// The ramp is widened at the CHEAP end: per-cell cost grows superlinearly
// in the threshold, so new members at the top would dominate both runs
// and the ratio would measure the irreducible delta compute, not the grid
// reuse the feature provides. new-cells/op reports the delta size so the
// committed ratio is read against it.
const (
	incrFrom     = 40
	incrBaseFrom = 42
	incrTo       = 70
)

func incrSpec(from int64) Spec {
	return Spec{
		Name:      "incr-bench",
		Protocols: []ProtocolAxis{{Spec: "binary:{N}"}},
		Params:    []ParamRange{{From: from, To: incrTo}},
		Kinds:     []engine.Kind{engine.KindStable},
		Predicate: &PredicateTemplate{Kind: "counting", Threshold: ParamExpr(0, 0)},
		Options:   Options{Seed: 7},
	}
}

func runIncrSweep(b *testing.B, eng *engine.Engine, from int64) {
	b.Helper()
	res, err := Run(context.Background(), eng, incrSpec(from), RunOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.TotalCells {
		b.Fatalf("bad sweep: completed %d/%d, failed %d", res.Completed, res.TotalCells, res.Failed)
	}
}

// BenchmarkSweepIncremental: extend an analyzed ramp over a warm artifact
// store. Setup (outside the timer) analyzes the base grid once; each
// iteration reopens the store in a fresh engine — fresh memory, durable
// artifacts — and runs the extended grid.
func BenchmarkSweepIncremental(b *testing.B) {
	dir := b.TempDir()
	open := func() *engine.Engine {
		s, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New()
		eng.SetArtifactStore(s)
		return eng
	}
	runIncrSweep(b, open(), incrBaseFrom)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runIncrSweep(b, open(), incrFrom)
	}
	b.ReportMetric(float64(incrTo-incrFrom+1), "cells/op")
	b.ReportMetric(float64(incrBaseFrom-incrFrom), "new-cells/op")
}

// BenchmarkSweepFromScratch: the same extended grid, no store, delta path
// disabled — every cell computed cold. The ns/op ratio against
// BenchmarkSweepIncremental is the committed aggregate speedup of the
// extend scenario.
func BenchmarkSweepFromScratch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := engine.New()
		eng.SetIncremental(false)
		runIncrSweep(b, eng, incrFrom)
	}
	b.ReportMetric(float64(incrTo-incrFrom+1), "cells/op")
}
