package govern

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a hand-driven clock for limiter and breaker tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterOptions{Rate: 2, Burst: 3, JitterFrac: -1, Now: clk.now})

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("c")
	if ok {
		t.Fatal("request past the burst allowed")
	}
	// An empty bucket at 2 tokens/s refills one token in 500ms.
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", retry)
	}

	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("request after refill denied")
	}
	// Bucket empty again; a second immediate request is denied.
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("second request without refill allowed")
	}

	// A long quiet period refills only to the burst cap.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestLimiterKeysAreIsolated(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterOptions{Rate: 1, Burst: 1, Now: clk.now})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first a denied")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second a allowed")
	}
	// b's bucket is untouched by a's exhaustion.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("first b denied")
	}
}

func TestLimiterKeyTableBounded(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterOptions{Rate: 1, Burst: 1, MaxKeys: 8, Now: clk.now})
	for i := 0; i < 100; i++ {
		l.Allow(fmt.Sprintf("client-%d", i))
	}
	if got := l.Keys(); got > 8 {
		t.Fatalf("limiter tracks %d keys, bound is 8", got)
	}
	// The most recent keys survive; the oldest were dropped.
	if ok, _ := l.Allow("client-99"); ok {
		t.Fatal("recent client's exhausted bucket was dropped")
	}
}

func TestLimiterRetryAfterJitterDeterministic(t *testing.T) {
	mk := func() *Limiter {
		clk := newFakeClock()
		return NewLimiter(LimiterOptions{Rate: 1, Burst: 1, JitterFrac: 0.5, Now: clk.now})
	}
	a, b := mk(), mk()
	a.Allow("c")
	b.Allow("c")
	// Same client, same denial sequence → identical jittered Retry-After.
	_, r1 := a.Allow("c")
	_, r2 := b.Allow("c")
	if r1 != r2 {
		t.Fatalf("jitter not deterministic: %v vs %v", r1, r2)
	}
	// Jitter stretches, never shrinks, and stays under 1+frac.
	base := time.Second
	if r1 < base || r1 >= time.Duration(1.5*float64(base)) {
		t.Fatalf("jittered retry %v outside [1s, 1.5s)", r1)
	}
	// Successive denials of the same client jitter differently.
	_, r3 := a.Allow("c")
	if r3 == r1 {
		t.Fatalf("successive denials identically jittered (%v)", r3)
	}
	// Distinct clients jitter differently.
	a.Allow("d")
	_, rd := a.Allow("d")
	if rd == r1 {
		t.Fatalf("distinct clients identically jittered (%v)", rd)
	}
}

func TestJitterRange(t *testing.T) {
	d := time.Second
	for seq := uint64(0); seq < 200; seq++ {
		j := Jitter("some-client", seq, d, 0.5)
		if j < d || j >= time.Duration(1.5*float64(d)) {
			t.Fatalf("seq %d: jitter %v outside [d, 1.5d)", seq, j)
		}
	}
	if Jitter("k", 7, d, 0.5) != Jitter("k", 7, d, 0.5) {
		t.Fatal("Jitter not a pure function")
	}
}
