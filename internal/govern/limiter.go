// Package govern is the daemon's self-protection layer: the resource
// governance primitives that keep a long-lived ppserve healthy under
// abusive clients, full disks and flapping workers. It provides
//
//   - Limiter: a per-client token-bucket rate limiter whose denials carry
//     the actual time until the next token refills (the Retry-After a 429
//     should advertise), with deterministic per-client jitter so
//     synchronized clients do not retry in lockstep;
//   - Breakers: keyed circuit breakers (consecutive-failure trip,
//     half-open probe after backoff) the cluster dispatcher uses to stop
//     routing cells to a flapping worker.
//
// The consumers — serve's admission control, the artifact-store GC, the
// journal compactor, the cluster dispatcher — each own their policy;
// govern owns the mechanics, with injectable clocks so every policy is
// unit-testable without sleeping.
package govern

import (
	"container/list"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"time"
)

// LimiterOptions configures a Limiter.
type LimiterOptions struct {
	// Rate is the sustained request rate per client, in tokens per second.
	// Must be positive.
	Rate float64
	// Burst is the bucket capacity — how many requests a quiet client may
	// issue back to back. 0 means max(1, 2×Rate) rounded up.
	Burst float64
	// MaxKeys bounds the number of tracked clients; the least-recently-seen
	// bucket is dropped past it, so an address-spoofing flood cannot grow
	// the table without bound (0 = 4096). A dropped client restarts with a
	// full bucket — the bound trades a little enforcement for a hard memory
	// cap.
	MaxKeys int
	// JitterFrac spreads denial Retry-After values into [1, 1+JitterFrac)
	// of the computed refill time, deterministically per (client, denial
	// count). 0 means 0.5; negative disables jitter.
	JitterFrac float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o LimiterOptions) withDefaults() LimiterOptions {
	if o.Burst <= 0 {
		o.Burst = math.Max(1, math.Ceil(2*o.Rate))
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.MaxKeys <= 0 {
		o.MaxKeys = 4096
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.5
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// bucket is one client's token-bucket state.
type bucket struct {
	key     string
	tokens  float64
	last    time.Time
	denials uint64
	elem    *list.Element
}

// Limiter is a keyed token-bucket rate limiter. All methods are safe for
// concurrent use.
type Limiter struct {
	opts LimiterOptions

	mu      sync.Mutex
	buckets map[string]*bucket
	lru     *list.List // bucket keys, most recently seen at the front
}

// NewLimiter returns a limiter enforcing opts.Rate tokens/second per key.
// A non-positive rate panics: the caller decides whether limiting is
// enabled, the limiter only enforces.
func NewLimiter(opts LimiterOptions) *Limiter {
	if opts.Rate <= 0 {
		panic("govern: limiter rate must be positive")
	}
	return &Limiter{
		opts:    opts.withDefaults(),
		buckets: make(map[string]*bucket),
		lru:     list.New(),
	}
}

// Allow consumes one token from key's bucket. When the bucket is empty it
// returns ok=false and the time until the next token refills — the honest
// Retry-After — stretched by a deterministic per-(key, denial) jitter
// factor so a synchronized client fleet fans out instead of thundering
// back together.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	now := l.opts.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{key: key, tokens: l.opts.Burst, last: now}
		b.elem = l.lru.PushFront(key)
		l.buckets[key] = b
		for len(l.buckets) > l.opts.MaxKeys {
			oldest := l.lru.Back()
			l.lru.Remove(oldest)
			delete(l.buckets, oldest.Value.(string))
		}
	} else {
		l.lru.MoveToFront(b.elem)
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.opts.Burst, b.tokens+dt*l.opts.Rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.denials++
	wait := time.Duration((1 - b.tokens) / l.opts.Rate * float64(time.Second))
	if l.opts.JitterFrac > 0 {
		wait = Jitter(key, b.denials, wait, l.opts.JitterFrac)
	}
	return false, wait
}

// Keys reports how many client buckets are currently tracked.
func (l *Limiter) Keys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Jitter stretches d into [1, 1+frac) deterministically per (key, seq):
// SplitMix64 over an FNV-1a seed, the same construction as the cluster
// agent's registration backoff, so a given client's schedule is
// reproducible while distinct clients (and successive denials of one
// client) land at decorrelated moments.
func Jitter(key string, seq uint64, d time.Duration, frac float64) time.Duration {
	h := fnv.New64a()
	io.WriteString(h, key)
	z := h.Sum64() + (seq+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	factor := 1 + frac*float64(z>>11)/(1<<53)
	return time.Duration(float64(d) * factor)
}
