package govern

import (
	"sync"
	"time"
)

// BreakerState is one circuit breaker's position.
type BreakerState int

const (
	// StateClosed: traffic flows; failures are counted.
	StateClosed BreakerState = iota
	// StateHalfOpen: one probe is in flight; no further traffic until it
	// resolves.
	StateHalfOpen
	// StateOpen: traffic is refused until the backoff elapses.
	StateOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// BreakerOptions configures a Breakers set.
type BreakerOptions struct {
	// Failures is the consecutive-failure count that trips a breaker open
	// (0 = 3).
	Failures int
	// Backoff is the open → probe-eligible delay after the first trip
	// (0 = 15s). A failed probe doubles it, up to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling (0 = 5m).
	MaxBackoff time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Failures <= 0 {
		o.Failures = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 15 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Minute
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// breaker is one key's state machine.
type breaker struct {
	state    BreakerState
	failures int           // consecutive failures while closed
	backoff  time.Duration // current open-duration (doubles per failed probe)
	until    time.Time     // when an open breaker becomes probe-eligible
}

// BreakerStatus is one breaker's exported snapshot.
type BreakerStatus struct {
	Key   string
	State BreakerState
	// ConsecutiveFailures is the closed-state failure streak.
	ConsecutiveFailures int
	// Backoff is the current open-duration.
	Backoff time.Duration
}

// Breakers is a set of circuit breakers keyed by string (worker ID, peer
// address, ...). The zero value is not usable; create with NewBreakers.
// All methods are safe for concurrent use.
//
// Lifecycle per key: Closed (counting consecutive failures) → Open after
// Failures in a row → probe-eligible once Backoff elapses (Routable turns
// true, Dispatching moves to HalfOpen) → a probe Success closes the
// breaker, a probe Failure re-opens it with doubled backoff.
type Breakers struct {
	opts BreakerOptions

	mu sync.Mutex
	m  map[string]*breaker
}

// NewBreakers returns an empty set; unknown keys read as closed.
func NewBreakers(opts BreakerOptions) *Breakers {
	return &Breakers{opts: opts.withDefaults(), m: make(map[string]*breaker)}
}

func (b *Breakers) get(key string) *breaker {
	br := b.m[key]
	if br == nil {
		br = &breaker{backoff: b.opts.Backoff}
		b.m[key] = br
	}
	return br
}

// Routable reports whether new work may be routed to key: closed, or open
// with the backoff elapsed (a probe candidate). Half-open keys are not
// routable — their probe must resolve first. No side effects.
func (b *Breakers) Routable(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		return true
	}
	switch br.state {
	case StateClosed:
		return true
	case StateOpen:
		return !b.opts.Now().Before(br.until)
	}
	return false
}

// Dispatching records that work is actually being sent to key. An open,
// probe-eligible breaker moves to half-open: this dispatch is the probe,
// and Routable excludes the key until Success or Failure resolves it.
func (b *Breakers) Dispatching(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br != nil && br.state == StateOpen && !b.opts.Now().Before(br.until) {
		br.state = StateHalfOpen
	}
}

// Success records a completed dispatch: the breaker closes and both the
// failure streak and the backoff reset.
func (b *Breakers) Success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		return
	}
	br.state = StateClosed
	br.failures = 0
	br.backoff = b.opts.Backoff
}

// Failure records a failed dispatch. It returns true when this failure
// tripped the breaker open (threshold reached, or a half-open probe
// failed), so callers can count trips.
func (b *Breakers) Failure(key string) (tripped bool) {
	now := b.opts.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.get(key)
	switch br.state {
	case StateClosed:
		br.failures++
		if br.failures >= b.opts.Failures {
			br.state = StateOpen
			br.until = now.Add(br.backoff)
			return true
		}
	case StateHalfOpen:
		// The probe failed: back open, and wait longer before the next one.
		br.state = StateOpen
		br.backoff = min(2*br.backoff, b.opts.MaxBackoff)
		br.until = now.Add(br.backoff)
		return true
	case StateOpen:
		// A straggling failure from a dispatch that raced the trip; the
		// breaker is already open, just keep it there.
		br.until = now.Add(br.backoff)
	}
	return false
}

// State returns key's current state (unknown keys are closed).
func (b *Breakers) State(key string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		return StateClosed
	}
	return br.state
}

// Forget drops key's state entirely (it reads as closed afterwards).
func (b *Breakers) Forget(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.m, key)
}

// Snapshot returns every tracked breaker's status, for metrics collectors.
func (b *Breakers) Snapshot() []BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerStatus, 0, len(b.m))
	for k, br := range b.m {
		out = append(out, BreakerStatus{
			Key: k, State: br.state,
			ConsecutiveFailures: br.failures,
			Backoff:             br.backoff,
		})
	}
	return out
}
