package govern

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakers(BreakerOptions{Failures: 3, Backoff: 10 * time.Second, Now: clk.now})

	if !b.Routable("w") || b.State("w") != StateClosed {
		t.Fatal("unknown key not closed/routable")
	}
	if b.Failure("w") {
		t.Fatal("first failure tripped")
	}
	if b.Failure("w") {
		t.Fatal("second failure tripped")
	}
	if !b.Routable("w") {
		t.Fatal("closed breaker below threshold not routable")
	}
	if !b.Failure("w") {
		t.Fatal("third failure did not trip")
	}
	if b.State("w") != StateOpen {
		t.Fatalf("state after trip = %v, want open", b.State("w"))
	}
	if b.Routable("w") {
		t.Fatal("open breaker routable before backoff")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakers(BreakerOptions{Failures: 3, Now: clk.now})
	b.Failure("w")
	b.Failure("w")
	b.Success("w")
	// The streak reset: two more failures stay below the threshold.
	if b.Failure("w") {
		t.Fatal("tripped despite reset streak")
	}
	if b.Failure("w") {
		t.Fatal("tripped despite reset streak")
	}
	if b.State("w") != StateClosed {
		t.Fatal("breaker opened below threshold")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakers(BreakerOptions{Failures: 1, Backoff: 10 * time.Second, MaxBackoff: time.Minute, Now: clk.now})
	b.Failure("w") // trips (threshold 1)

	clk.advance(9 * time.Second)
	if b.Routable("w") {
		t.Fatal("routable before backoff elapsed")
	}
	clk.advance(time.Second)
	if !b.Routable("w") {
		t.Fatal("not probe-eligible after backoff")
	}
	b.Dispatching("w")
	if b.State("w") != StateHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State("w"))
	}
	if b.Routable("w") {
		t.Fatal("half-open breaker routable while probe in flight")
	}

	// Failed probe: re-open with doubled backoff.
	if !b.Failure("w") {
		t.Fatal("failed probe did not count as a trip")
	}
	if b.State("w") != StateOpen {
		t.Fatal("failed probe did not re-open")
	}
	clk.advance(10 * time.Second)
	if b.Routable("w") {
		t.Fatal("probe-eligible before the doubled backoff elapsed")
	}
	clk.advance(10 * time.Second)
	if !b.Routable("w") {
		t.Fatal("not probe-eligible after doubled backoff")
	}

	// Successful probe: closed, streak and backoff reset.
	b.Dispatching("w")
	b.Success("w")
	if b.State("w") != StateClosed || !b.Routable("w") {
		t.Fatal("successful probe did not close the breaker")
	}
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].Backoff != 10*time.Second || snap[0].ConsecutiveFailures != 0 {
		t.Fatalf("post-close snapshot = %+v, want reset backoff and streak", snap)
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakers(BreakerOptions{Failures: 1, Backoff: 10 * time.Second, MaxBackoff: 25 * time.Second, Now: clk.now})
	b.Failure("w")
	for i := 0; i < 5; i++ {
		clk.advance(time.Hour)
		b.Dispatching("w")
		b.Failure("w")
	}
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].Backoff != 25*time.Second {
		t.Fatalf("backoff = %v, want capped at 25s", snap[0].Backoff)
	}
}

func TestBreakerDispatchingIsNoOpWhenClosed(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakers(BreakerOptions{Now: clk.now})
	b.Dispatching("w")
	if b.State("w") != StateClosed {
		t.Fatal("Dispatching on a closed key changed state")
	}
	// Straggler failures against an already-open breaker keep it open
	// without re-counting as trips.
	bb := NewBreakers(BreakerOptions{Failures: 1, Backoff: 10 * time.Second, Now: clk.now})
	bb.Failure("w")
	if bb.Failure("w") {
		t.Fatal("straggler failure re-counted as a trip")
	}
	if bb.State("w") != StateOpen {
		t.Fatal("straggler failure changed open state")
	}
}

func TestBreakerForget(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakers(BreakerOptions{Failures: 1, Now: clk.now})
	b.Failure("w")
	b.Forget("w")
	if b.State("w") != StateClosed || !b.Routable("w") {
		t.Fatal("forgotten key not closed")
	}
	if len(b.Snapshot()) != 0 {
		t.Fatal("forgotten key still in snapshot")
	}
}
