package experiments

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sweep"
)

// cellKey addresses one sweep cell by its coordinates; experiment tables
// are assembled by looking completed cells back up per row.
type cellKey struct {
	label string
	kind  engine.Kind
	size  int64
}

// sweepCells runs a sweep spec on a fresh engine through the shared sweep
// executor (the same worker pool and artifact cache the ppsweep command
// and POST /v1/sweep use) and indexes the completed cells by coordinate.
// Any failed cell fails the experiment.
func sweepCells(spec sweep.Spec) (map[cellKey]sweep.CellResult, error) {
	res, err := sweep.Run(context.Background(), engine.New(), spec, sweep.RunOptions{})
	if err != nil {
		return nil, err
	}
	m := make(map[cellKey]sweep.CellResult, len(res.Cells))
	for _, cr := range res.Cells {
		if !cr.OK {
			return nil, fmt.Errorf("sweep cell %s/%s/%d: %s", cr.Protocol, cr.Kind, cr.Size, cr.Error)
		}
		m[cellKey{cr.Protocol, cr.Kind, cr.Size}] = cr
	}
	return m, nil
}

// thresholdVerdict renders the ✓/✗ verdict of a threshold protocol from
// its sweep cells: an exact verify cell when present, else the pair of
// simulate cells at η−1 (expect stable 0) and η (expect stable 1).
func thresholdVerdict(cells map[cellKey]sweep.CellResult, label string, eta int64, exact bool) string {
	if exact {
		cr, ok := cells[cellKey{label, engine.KindVerify, eta + 2}]
		if !ok || cr.Result.Verification == nil {
			return "✗ (missing cell)"
		}
		if cr.Result.Verification.AllOK {
			return "✓"
		}
		return "✗ (" + cr.Result.Verification.Summary + ")"
	}
	for _, tc := range []struct {
		size int64
		want int
	}{{eta - 1, 0}, {eta, 1}} {
		if tc.size < 2 {
			continue
		}
		cr, ok := cells[cellKey{label, engine.KindSimulate, tc.size}]
		if !ok || cr.Result.Simulation == nil {
			return "✗ (missing cell)"
		}
		if s := cr.Result.Simulation; !s.Converged || s.Output != tc.want {
			return "✗"
		}
	}
	return "✓"
}

// cellStates reads the protocol state count off any of the label's cells.
func cellStates(cells map[cellKey]sweep.CellResult, label string) int {
	for k, cr := range cells {
		if k.label == label && cr.Result != nil && cr.Result.Protocol != nil {
			return cr.Result.Protocol.States
		}
	}
	return 0
}
