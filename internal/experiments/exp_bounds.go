package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/fgh"
	"repro/internal/protocols"
	"repro/internal/pump"
	"repro/internal/search"
	"repro/internal/sweep"
)

// E6PumpingCertificates runs the full proof pipelines on concrete protocols:
// the Lemma 5.2 (leaderless, Theorem 5.9) finder and the Lemma 4.1/4.2
// (chain, Theorem 4.5) finder, each validated by its independent checker.
func E6PumpingCertificates(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Lemma 5.2 / Lemma 4.1 — machine-checked pumping certificates",
		Claim:  "the proofs' witnesses exist and certify η ≤ A far below the a-priori bound ξnβ3ⁿ",
		Header: []string{"protocol", "true η", "leaderless A", "B", "|θ|", "chain A", "chain B", "Thm 5.9 bound"},
	}
	cases := []struct {
		name string
		e    protocols.Entry
		eta  int64
	}{
		{"flock(3)", protocols.FlockOfBirds(3), 3},
		{"flock(4)", protocols.FlockOfBirds(4), 4},
		{"flock(5)", protocols.FlockOfBirds(5), 5},
		{"succinct(2)", protocols.Succinct(2), 4},
		{"succinct(3)", protocols.Succinct(3), 8},
		{"binary(5)", protocols.BinaryThreshold(5), 5},
		{"binary(7)", protocols.BinaryThreshold(7), 7},
		{"leader-flock(2)", protocols.LeaderFlock(2), 2},
		{"leader-flock(3)", protocols.LeaderFlock(3), 3},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	for _, tc := range cases {
		p := tc.e.Protocol
		llA, llB, llTheta := "n/a (leaders)", "", ""
		if p.Leaderless() {
			ll, err := pump.FindLeaderless(p, pump.FindOptions{Seed: cfg.Seed + 17})
			if err != nil {
				return nil, fmt.Errorf("%s leaderless: %w", tc.name, err)
			}
			if err := pump.CheckLeaderless(p, ll, nil); err != nil {
				return nil, fmt.Errorf("%s leaderless check: %w", tc.name, err)
			}
			llA, llB = fmt.Sprint(ll.A), fmt.Sprint(ll.B)
			llTheta = fmt.Sprint(ll.Theta.Size())
		}
		ch, err := pump.FindChain(p, pump.FindOptions{Seed: cfg.Seed + 11})
		if err != nil {
			return nil, fmt.Errorf("%s chain: %w", tc.name, err)
		}
		if err := pump.CheckChain(p, ch, nil); err != nil {
			return nil, fmt.Errorf("%s chain check: %w", tc.name, err)
		}
		thm := bounds.Theorem59(int64(p.NumStates()), int64(p.NumTransitions()))
		t.AddRow(tc.name, tc.eta, llA, llB, llTheta, ch.A, ch.B, thm.String())
	}
	t.Note("all certificates were validated by checkers that replay every path with exact arithmetic and re-derive stable-set memberships from scratch.")
	t.Note("the chain pipeline (Theorem 4.5's proof) also certifies the leader protocols; the leaderless pipeline (Theorem 5.9) applies only without leaders, matching the paper's theorem statements.")
	t.Note("the Theorem 5.9 column is stated for comparison on the leader rows too, although the theorem itself assumes leaderless protocols.")
	return t, nil
}

// E7BoundsTable tabulates the paper's bounds: Theorem 2.2 lower bounds vs
// the Theorem 5.9 leaderless upper bound and the Theorem 4.5 Ackermannian
// level, as exact quantities.
func E7BoundsTable(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Theorem 2.2 vs Theorem 5.9 — the busy beaver sandwich",
		Claim:  "2^(n−2) ≤ BB(n) ≤ ξ·n·β·3ⁿ ≤ 2^((2n+2)!), and BBL(n) ≥ 2^(2^n)",
		Header: []string{"n", "BB(n) lower (P'_(n−2))", "BBL(n) lower [12]", "ξ·n·β·3ⁿ (T=n(n+1)/2)", "2^((2n+2)!)"},
	}
	maxN := int64(8)
	if cfg.Quick {
		maxN = 5
	}
	for n := int64(3); n <= maxN; n++ {
		trans := n * (n + 1) / 2 // deterministic protocols: one transition per pair
		t.AddRow(n,
			bounds.BBLowerLeaderless(n).String(),
			bounds.BBLLowerWithLeaders(n).String(),
			bounds.Theorem59(n, trans).String(),
			bounds.Theorem59Simplified(n).String(),
		)
	}
	t.Note("the Theorem 4.5 bound for protocols with leaders is F_{ℓ,ϑ(n)} at level F_ω of the Fast-Growing Hierarchy — no closed numeric form exists; see E9 for the low levels.")
	return t, nil
}

// E8BusyBeaverSearch measures the empirical busy beaver for tiny state
// counts by exhaustive enumeration, and the Section 4.1 quantity f(n).
func E8BusyBeaverSearch(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Definition 1 / §4.1 — empirical busy beaver for tiny protocols",
		Claim:  "exhaustive search over deterministic leaderless protocols",
		Header: []string{"n", "candidates", "BB(n) observed", "f(n) observed", "verified inputs ≤", "exhaustive"},
	}
	// n = 2 exhaustively.
	bb2 := search.BusyBeaver(2, search.Options{MaxInput: 9})
	f2, err := search.F(2, search.Options{MaxInput: 9})
	if err != nil {
		return nil, err
	}
	t.AddRow(2, bb2.Candidates, bb2.BestEta, f2.MaxMinInput, bb2.MaxInput, bb2.Exhaustive)

	// n = 3: exhaustive only when FullSearch is set (≈373k candidates).
	opts3 := search.Options{MaxInput: 8}
	if !cfg.FullSearch {
		opts3.MaxCandidates = 60_000
	}
	if cfg.Quick {
		opts3.MaxCandidates = 5_000
	}
	bb3 := search.BusyBeaver(3, opts3)
	t.AddRow(3, bb3.Candidates, bb3.BestEta, "-", bb3.MaxInput, bb3.Exhaustive)
	if bb3.Best != nil {
		t.Note("3-state witness:\n%s", bb3.Best.String())
	}
	t.Note("\"BB(n) observed\" is exact for the verified input range: the witness provably behaves as x ≥ η on every input ≤ the bound (threshold behaviour beyond it is unverified).")
	return t, nil
}

// E9ControlledSequences exercises the Lemma 4.3/4.4 machinery: exact
// longest controlled bad sequences for small dimensions, and the low levels
// of the Fast-Growing Hierarchy and Ackermann function.
func E9ControlledSequences(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Lemma 4.4 — controlled bad sequences and the Fast-Growing Hierarchy",
		Claim:  "maximal controlled bad sequence lengths grow Ackermannian in the dimension",
		Header: []string{"quantity", "value"},
	}
	// Longest controlled bad sequences (‖v_i‖∞ ≤ i + δ).
	for _, d := range []int{1, 2} {
		maxDelta := int64(3)
		if d == 2 {
			maxDelta = 2
		}
		if cfg.Quick {
			maxDelta = 1
		}
		for delta := int64(0); delta <= maxDelta; delta++ {
			budget := 1_500_000
			seq, exact := fgh.LongestControlledBad(d, delta, budget)
			mark := ""
			if !exact {
				mark = " (lower bound; budget exhausted)"
			}
			t.AddRow(fmt.Sprintf("L(dim=%d, δ=%d)", d, delta), fmt.Sprintf("%d%s", len(seq), mark))
		}
	}
	// Fast-growing hierarchy low levels.
	for k := 0; k <= 3; k++ {
		x := int64(3)
		if k == 3 {
			x = 1
		}
		v, err := fgh.FastGrowing(k, big.NewInt(x))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("F_%d(%d)", k, x), v.String())
	}
	if _, err := fgh.FastGrowing(3, big.NewInt(10)); err != nil {
		t.AddRow("F_3(10)", "not representable — "+err.Error())
	}
	// Ackermann diagonal and inverse.
	for m := int64(0); m <= 3; m++ {
		v, err := fgh.Ackermann(m, m)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("A(%d,%d)", m, m), v.String())
	}
	t.AddRow("α(10^6)", fmt.Sprint(fgh.InverseAckermann(big.NewInt(1_000_000))))
	t.Note("Theorem 4.5's F_{ℓ,ϑ(n)} lives at level F_ω: already F_3 escapes machine representation at argument 10.")
	return t, nil
}

// E10ParallelTime measures stochastic convergence (parallel time =
// interactions / n) of zoo protocols across population sizes — the
// simulation series standing in for the runtime discussion of Section 1.
// The protocol × population grid runs as one scenario sweep with the exact
// stable-set oracle (each analysis computed once via the engine cache).
func E10ParallelTime(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Section 1 — parallel convergence time under the random scheduler",
		Claim:  "protocol convergence is measured in expected parallel time; state-efficient protocols pay with slower or more fragile convergence",
		Header: []string{"protocol", "population", "runs", "converged", "mean parallel", "p95 parallel"},
	}
	runs := 15
	sizes := []sweep.Expr{sweep.Lit(16), sweep.Lit(64), sweep.Lit(256), sweep.Lit(1024)}
	if cfg.Quick {
		runs = 4
		sizes = sizes[:2]
	}
	specs := []string{"flock:8", "succinct:3", "binary:11", "parity"}
	spec := sweep.Spec{
		Name:    "E10",
		Kinds:   []engine.Kind{engine.KindSimulate},
		Sizes:   sizes,
		Options: sweep.Options{Seed: cfg.Seed, Runs: runs, ExactOracle: true},
	}
	for _, s := range specs {
		spec.Protocols = append(spec.Protocols, sweep.ProtocolAxis{Spec: s})
	}
	cells, err := sweepCells(spec)
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		for _, sz := range sizes {
			n := sz.Eval(0)
			cr, ok := cells[cellKey{s, engine.KindSimulate, n}]
			if !ok || cr.Result.Simulation == nil || cr.Result.Simulation.Estimate == nil {
				return nil, fmt.Errorf("%s n=%d: missing sweep cell", s, n)
			}
			est := cr.Result.Simulation.Estimate
			t.AddRow(s, n, est.Runs, est.Converged,
				fmt.Sprintf("%.1f", est.MeanParallel), fmt.Sprintf("%.1f", est.P95Parallel))
		}
	}
	t.Note("the 4-state exact-majority protocol is excluded here: its tie-breaking rule makes small-margin instances exponentially slow (correct but impractical under the random scheduler) — see the sim package tests.")
	return t, nil
}
