package experiments

import (
	"strings"
	"testing"
)

// TestAllQuick runs every experiment in quick mode — an end-to-end smoke
// test of the whole pipeline (construction → verification → bounds →
// certificates → search → simulation).
func TestAllQuick(t *testing.T) {
	tables, err := All(Config{Quick: true, Seed: 7})
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(tables) != 11 {
		t.Fatalf("got %d tables, want 11", len(tables))
	}
	ids := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("table %q incomplete", tb.ID)
		}
		if ids[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		ids[tb.ID] = true
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: row width %d != header %d", tb.ID, len(row), len(tb.Header))
			}
		}
		// Renderings must contain the id and every header cell.
		s, md := tb.String(), tb.Markdown()
		for _, h := range tb.Header {
			if !strings.Contains(s, h) || !strings.Contains(md, h) {
				t.Fatalf("%s: header %q missing from rendering", tb.ID, h)
			}
		}
	}
}

// TestE1VerdictsAllPass: every constructed protocol must verify.
func TestE1VerdictsAllPass(t *testing.T) {
	tb, err := E1Example21(Config{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[4] != "✓" || row[5] != "✓" {
			t.Fatalf("E1 verdict failed: %v", row)
		}
	}
}

func TestE2VerdictsAllPass(t *testing.T) {
	tb, err := E2BinaryThreshold(Config{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[3] != "✓" {
			t.Fatalf("E2 verdict failed: %v", row)
		}
	}
}

func TestE4AllReplayed(t *testing.T) {
	tb, err := E4Saturation(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[6] != "✓" || row[7] != "✓" {
			t.Fatalf("E4 row failed: %v", row)
		}
		// |σ| must equal (3^j−1)/2.
		if row[4] != row[5] {
			t.Fatalf("E4 sequence length mismatch: %v", row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow(1, "two")
	tb.Note("hello %d", 42)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "hello 42") {
		t.Fatalf("String = %q", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | two |") {
		t.Fatalf("Markdown = %q", md)
	}
}
