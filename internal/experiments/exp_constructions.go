package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/dioph"
	"repro/internal/engine"
	"repro/internal/protocols"
	"repro/internal/realise"
	"repro/internal/saturate"
	"repro/internal/stable"
	"repro/internal/sweep"
)

// E1Example21 reproduces Example 2.1: P_k computes x ≥ 2^k with 2^k+1
// states, P'_k with k+2 states. Small k are verified exactly for every
// input; larger k by stochastic simulation around the threshold. The whole
// parametric grid runs as one scenario sweep on the shared executor.
func E1Example21(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Example 2.1 — flock-of-birds P_k vs succinct P'_k",
		Claim:  "both compute x ≥ 2^k; P_k uses 2^k+1 states, P'_k uses k+2",
		Header: []string{"k", "η=2^k", "|Q| P_k", "|Q| P'_k", "P_k verdict", "P'_k verdict", "method"},
	}
	maxExactK := uint(3)
	maxSimK := uint(7)
	if cfg.Quick {
		maxExactK, maxSimK = 2, 4
	}
	spec := sweep.Spec{Name: "E1", Options: sweep.Options{Seed: cfg.Seed}}
	labels := func(k uint) (string, string) {
		return fmt.Sprintf("P_%d", k), fmt.Sprintf("P'_%d", k)
	}
	for k := uint(1); k <= maxSimK; k++ {
		eta := int64(1) << k
		pkLabel, primeLabel := labels(k)
		for _, e := range []sweep.ProtocolAxis{
			{Spec: fmt.Sprintf("flock:%d", eta), Label: pkLabel},
			{Spec: fmt.Sprintf("succinct:%d", k), Label: primeLabel},
		} {
			if k <= maxExactK {
				e.Kinds = []engine.Kind{engine.KindVerify}
				e.Sizes = []sweep.Expr{sweep.Lit(eta + 2)}
			} else {
				e.Kinds = []engine.Kind{engine.KindSimulate}
				e.Sizes = []sweep.Expr{sweep.Lit(eta - 1), sweep.Lit(eta)}
			}
			spec.Protocols = append(spec.Protocols, e)
		}
	}
	cells, err := sweepCells(spec)
	if err != nil {
		return nil, err
	}
	for k := uint(1); k <= maxSimK; k++ {
		eta := int64(1) << k
		pkLabel, primeLabel := labels(k)
		exact := k <= maxExactK
		method := "simulation at η−1 and η"
		if exact {
			method = fmt.Sprintf("exact ≤ %d", eta+2)
		}
		t.AddRow(k, eta,
			cellStates(cells, pkLabel), cellStates(cells, primeLabel),
			thresholdVerdict(cells, pkLabel, eta, exact),
			thresholdVerdict(cells, primeLabel, eta, exact),
			method)
	}
	t.Note("\"exact\" = bottom-SCC analysis over every input up to the stated bound; simulation uses the uniform random scheduler with silence detection.")
	t.Note("rows are assembled from one scenario sweep (internal/sweep), the executor behind ppsweep and POST /v1/sweep.")
	return t, nil
}

// E2BinaryThreshold reproduces the Ω-direction of Theorem 2.2 for
// leaderless protocols: arbitrary thresholds η with O(log η) states,
// hence BB(n) ∈ Ω(2^n). The threshold axis runs as one scenario sweep.
func E2BinaryThreshold(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 2.2 (Ω direction) — binary threshold protocols",
		Claim:  "x ≥ η computable with ≤ 2⌈log₂ η⌉ + 3 states for every η",
		Header: []string{"η", "|Q|", "2⌈log₂η⌉+3", "verdict", "method"},
	}
	exact := []int64{3, 5, 6, 7, 9, 11, 13}
	simulated := []int64{21, 33, 100, 1000}
	if cfg.Quick {
		exact = []int64{3, 5, 7}
		simulated = []int64{21, 100}
	}
	spec := sweep.Spec{Name: "E2", Options: sweep.Options{Seed: cfg.Seed}}
	label := func(eta int64) string { return fmt.Sprintf("binary:%d", eta) }
	for _, eta := range exact {
		spec.Protocols = append(spec.Protocols, sweep.ProtocolAxis{
			Spec:  label(eta),
			Kinds: []engine.Kind{engine.KindVerify},
			Sizes: []sweep.Expr{sweep.Lit(eta + 2)},
		})
	}
	for _, eta := range simulated {
		spec.Protocols = append(spec.Protocols, sweep.ProtocolAxis{
			Spec:  label(eta),
			Kinds: []engine.Kind{engine.KindSimulate},
			Sizes: []sweep.Expr{sweep.Lit(eta - 1), sweep.Lit(eta)},
		})
	}
	cells, err := sweepCells(spec)
	if err != nil {
		return nil, err
	}
	for _, eta := range exact {
		t.AddRow(eta, cellStates(cells, label(eta)), 2*log2ceil(eta)+3,
			thresholdVerdict(cells, label(eta), eta, true), fmt.Sprintf("exact ≤ %d", eta+2))
	}
	for _, eta := range simulated {
		t.AddRow(eta, cellStates(cells, label(eta)), 2*log2ceil(eta)+3,
			thresholdVerdict(cells, label(eta), eta, false), "simulation at η−1 and η")
	}
	t.Note("with n states the family reaches η ≈ 2^((n−3)/2), witnessing BB(n) ∈ Ω(2^n) up to the constant in the exponent; P'_k sharpens this to 2^(n−2) for powers of two.")
	return t, nil
}

// E3StableBases reproduces Lemma 3.1/3.2: stable sets are downward closed
// with small bases; we compute them exactly and compare the measured norms
// with β(n).
func E3StableBases(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Lemma 3.2 — stable-set bases and the small basis constant β",
		Claim:  "SC_0, SC_1 have bases of norm ≤ β(n) = 2^(2(2n+1)!+1) (measured norms are tiny)",
		Header: []string{"protocol", "n", "#ideals SC₀", "#ideals SC₁", "measured norm", "β(n)", "ϑ(n)"},
	}
	entries := []struct {
		name string
		e    protocols.Entry
	}{
		{"majority", protocols.Majority()},
		{"parity", protocols.Parity()},
		{"mod3∈{1}", protocols.ModuloIn(3, 1)},
		{"flock(4)", protocols.FlockOfBirds(4)},
		{"flock(6)", protocols.FlockOfBirds(6)},
		{"succinct(3)", protocols.Succinct(3)},
		{"binary(11)", protocols.BinaryThreshold(11)},
		{"leader-flock(3)", protocols.LeaderFlock(3)},
	}
	if cfg.Quick {
		entries = entries[:4]
	}
	for _, en := range entries {
		a, err := stable.Analyze(en.e.Protocol, stable.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", en.name, err)
		}
		n := int64(en.e.Protocol.NumStates())
		t.AddRow(en.name, n,
			a.StableSet(0).Size(), a.StableSet(1).Size(),
			a.MeasuredNorm(),
			bounds.Beta(n).String(),
			bounds.Theta(n).String())
	}
	t.Note("measured norms come from exact backward-coverability; the astronomic gap to β(n) quantifies how conservative Lemma 3.2's Rackoff-based argument is.")
	return t, nil
}

// E4Saturation reproduces Lemma 5.4: IC(3^j) reaches a 1-saturated
// configuration via a sequence of length (3^j−1)/2, j ≤ n.
func E4Saturation(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Lemma 5.4 — saturation from pure-x inputs",
		Claim:  "IC(3^j) →σ→ 1-saturated C with |σ| = (3^j−1)/2 and j ≤ n",
		Header: []string{"protocol", "n", "stages j", "input 3^j", "|σ|", "(3^j−1)/2", "replayed", "1-saturated"},
	}
	entries := []struct {
		name string
		e    protocols.Entry
	}{
		{"flock(3)", protocols.FlockOfBirds(3)},
		{"flock(6)", protocols.FlockOfBirds(6)},
		{"succinct(3)", protocols.Succinct(3)},
		{"succinct(5)", protocols.Succinct(5)},
		{"binary(11)", protocols.BinaryThreshold(11)},
		{"binary(21)", protocols.BinaryThreshold(21)},
		{"parity", protocols.Parity()},
	}
	if cfg.Quick {
		entries = entries[:3]
	}
	for _, en := range entries {
		res, err := saturate.Saturate(en.e.Protocol)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", en.name, err)
		}
		replayed := "✓"
		if _, err := saturate.Replay(en.e.Protocol, res); err != nil {
			replayed = "✗ " + err.Error()
		}
		saturatedMark := "✓"
		if !en.e.Protocol.Saturated(res.Config, 1) {
			saturatedMark = "✗"
		}
		t.AddRow(en.name, en.e.Protocol.NumStates(), res.Stages, res.Input,
			len(res.Sequence), (res.Input-1)/2, replayed, saturatedMark)
	}
	return t, nil
}

// E5Pottier reproduces Theorem 5.6/Corollary 5.7: the generating basis of
// potentially realisable multisets has elements of ‖·‖₁ at most ξ/2.
func E5Pottier(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Corollary 5.7 — Pottier bases of potentially realisable multisets",
		Claim:  "every basis element π has |π| ≤ ξ/2 with ξ = 2(2|T|+1)^|Q|",
		Header: []string{"protocol", "|Q|", "|T|", "basis size", "max |π|", "ξ/2", "slack-Pottier bound"},
	}
	entries := []struct {
		name string
		e    protocols.Entry
	}{
		{"flock(3)", protocols.FlockOfBirds(3)},
		{"flock(4)", protocols.FlockOfBirds(4)},
		{"succinct(2)", protocols.Succinct(2)},
		{"succinct(3)", protocols.Succinct(3)},
		{"binary(5)", protocols.BinaryThreshold(5)},
		{"parity", protocols.Parity()},
	}
	if cfg.Quick {
		entries = entries[:3]
	}
	for _, en := range entries {
		p := en.e.Protocol
		basis, err := realise.Basis(p, dioph.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", en.name, err)
		}
		var maxSize int64
		for _, pi := range basis {
			if pi.Size() > maxSize {
				maxSize = pi.Size()
			}
		}
		a, _, err := realise.System(p)
		if err != nil {
			return nil, err
		}
		xi := bounds.Xi(int64(p.NumTransitions()), int64(p.NumStates()))
		xiHalf := xi.Rsh(xi, 1)
		t.AddRow(en.name, p.NumStates(), p.NumTransitions(), len(basis), maxSize,
			xiHalf.String(), dioph.SlackPottierBound(a).String())
	}
	t.Note("the slack-Pottier column is the bound actually proven for the slack-extended system this implementation solves; ξ/2 is the paper's protocol-level constant.")
	return t, nil
}

func log2ceil(v int64) int64 {
	var k int64
	for int64(1)<<k < v {
		k++
	}
	return k
}
