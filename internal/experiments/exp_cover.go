package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/protocols"
	"repro/internal/reach"
)

// E11CoverLengths measures the true shortest covering-execution lengths on
// concrete protocols, the quantity that Rackoff's theorem bounds by
// β(n) = 2^(2(2n+1)!+1) inside Lemma 3.2's proof. The measured lengths are
// single digits; the bound has millions of digits — the slack that the
// small basis constant carries into every downstream bound.
func E11CoverLengths(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Lemma 3.2 / Rackoff — shortest covering executions vs β(n)",
		Claim:  "a covering execution, if any, exists with length ≤ β(n); measured minima are tiny",
		Header: []string{"protocol", "n", "input", "max cover len → output 1", "max cover len → output 0", "β(n)"},
	}
	cases := []struct {
		name  string
		e     protocols.Entry
		input int64
	}{
		{"flock(4)", protocols.FlockOfBirds(4), 6},
		{"flock(6)", protocols.FlockOfBirds(6), 8},
		{"succinct(3)", protocols.Succinct(3), 9},
		{"binary(7)", protocols.BinaryThreshold(7), 9},
		{"parity", protocols.Parity(), 7},
		{"mod3∈{1}", protocols.ModuloIn(3, 1), 7},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	for _, tc := range cases {
		p := tc.e.Protocol
		ic := p.InitialConfigN(tc.input)
		m1, err := reach.MaxCoverLength(p, ic, 1, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		m0, err := reach.MaxCoverLength(p, ic, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		n := int64(p.NumStates())
		t.AddRow(tc.name, n, tc.input, m1, m0, bounds.Beta(n).String())
	}
	t.Note("\"max cover len → output b\" is the largest, over states q with O(q)=b coverable from IC(input), of the shortest execution covering q (exact BFS).")
	return t, nil
}
