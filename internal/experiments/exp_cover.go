package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/sweep"
)

// E11CoverLengths measures the true shortest covering-execution lengths on
// concrete protocols, the quantity that Rackoff's theorem bounds by
// β(n) = 2^(2(2n+1)!+1) inside Lemma 3.2's proof. The measured lengths are
// single digits; the bound has millions of digits — the slack that the
// small basis constant carries into every downstream bound. The protocol ×
// input grid runs as one scenario sweep of cover cells.
func E11CoverLengths(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Lemma 3.2 / Rackoff — shortest covering executions vs β(n)",
		Claim:  "a covering execution, if any, exists with length ≤ β(n); measured minima are tiny",
		Header: []string{"protocol", "n", "input", "max cover len → output 1", "max cover len → output 0", "β(n)"},
	}
	cases := []struct {
		name  string
		spec  string
		input int64
	}{
		{"flock(4)", "flock:4", 6},
		{"flock(6)", "flock:6", 8},
		{"succinct(3)", "succinct:3", 9},
		{"binary(7)", "binary:7", 9},
		{"parity", "parity", 7},
		{"mod3∈{1}", "mod:3:1", 7},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	spec := sweep.Spec{Name: "E11", Kinds: []engine.Kind{engine.KindCover}}
	for _, tc := range cases {
		spec.Protocols = append(spec.Protocols, sweep.ProtocolAxis{
			Spec:   tc.spec,
			Label:  tc.name,
			Inputs: [][]int64{{tc.input}},
		})
	}
	cells, err := sweepCells(spec)
	if err != nil {
		return nil, err
	}
	for _, tc := range cases {
		cr, ok := cells[cellKey{tc.name, engine.KindCover, tc.input}]
		if !ok || cr.Result.Cover == nil {
			return nil, fmt.Errorf("%s: missing cover cell", tc.name)
		}
		n := int64(cr.Result.Protocol.States)
		t.AddRow(tc.name, n, tc.input, cr.Result.Cover.MaxLen1, cr.Result.Cover.MaxLen0,
			bounds.Beta(n).String())
	}
	t.Note("\"max cover len → output b\" is the largest, over states q with O(q)=b coverable from IC(input), of the shortest execution covering q (exact BFS).")
	return t, nil
}
