// Package experiments generates the repository's experiment tables. The
// paper (a theory paper) has no tables or figures of its own; each
// experiment here (E1–E11) is the executable counterpart of one of its
// constructions or theorem-shaped claims. Every experiment returns a Table
// that the ppexperiments command renders as text or markdown and that
// bench_test.go times. The parametric experiments (E1, E2, E10, E11) are
// expressed as scenario sweeps and run on the internal/sweep executor —
// the same worker pool and artifact cache behind ppsweep and POST
// /v1/sweep.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being exercised
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note:* %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Config tunes the heavier experiments.
type Config struct {
	// Quick reduces input ranges and sample counts for use in tests and
	// benchmarks; the ppexperiments command uses the full settings.
	Quick bool
	// FullSearch makes E8 enumerate the complete 3-state space (~373k
	// protocols, tens of seconds).
	FullSearch bool
	// Seed drives all randomized components.
	Seed uint64
}

// All runs every experiment and returns the tables in order.
func All(cfg Config) ([]*Table, error) {
	type exp struct {
		id  string
		run func(Config) (*Table, error)
	}
	list := []exp{
		{"E1", E1Example21},
		{"E2", E2BinaryThreshold},
		{"E3", E3StableBases},
		{"E4", E4Saturation},
		{"E5", E5Pottier},
		{"E6", E6PumpingCertificates},
		{"E7", E7BoundsTable},
		{"E8", E8BusyBeaverSearch},
		{"E9", E9ControlledSequences},
		{"E10", E10ParallelTime},
		{"E11", E11CoverLengths},
	}
	var out []*Table
	for _, e := range list {
		t, err := e.run(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
