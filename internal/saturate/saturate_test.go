package saturate

import (
	"errors"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols"
)

func TestSaturateZooProtocols(t *testing.T) {
	entries := map[string]protocols.Entry{
		"flock(3)":    protocols.FlockOfBirds(3),
		"flock(6)":    protocols.FlockOfBirds(6),
		"succinct(2)": protocols.Succinct(2),
		"succinct(4)": protocols.Succinct(4),
		"binary(11)":  protocols.BinaryThreshold(11),
		"binary(21)":  protocols.BinaryThreshold(21),
		"parity":      protocols.Parity(),
	}
	for name, e := range entries {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := e.Protocol
			res, err := Saturate(p)
			if err != nil {
				t.Fatalf("Saturate: %v", err)
			}
			// The witness configuration must be 1-saturated.
			if !p.Saturated(res.Config, 1) {
				t.Fatalf("config not 1-saturated: %s", p.FormatConfig(res.Config))
			}
			// Lemma 5.4: at most n stages, input 3^stages ≤ 3^n.
			if res.Stages > p.NumStates() {
				t.Fatalf("stages = %d > n = %d", res.Stages, p.NumStates())
			}
			want3 := int64(1)
			for i := 0; i < res.Stages; i++ {
				want3 *= 3
			}
			if res.Input != want3 {
				t.Fatalf("input = %d, want 3^%d = %d", res.Input, res.Stages, want3)
			}
			// |σ_j| = (3^j − 1)/2.
			if res.Sequence == nil {
				t.Fatalf("sequence should be materialised for small protocols")
			}
			if int64(len(res.Sequence)) != (want3-1)/2 {
				t.Fatalf("|σ| = %d, want (3^%d−1)/2 = %d", len(res.Sequence), res.Stages, (want3-1)/2)
			}
			// Population conservation: |Config| = Input.
			if res.Config.Size() != res.Input {
				t.Fatalf("|Config| = %d, want %d", res.Config.Size(), res.Input)
			}
			// Exact replay.
			got, err := Replay(p, res)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if !got.Equal(res.Config) {
				t.Fatal("replay mismatch")
			}
		})
	}
}

func TestSaturateJScaling(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	input, cfg, err := SaturateJ(p, 5)
	if err != nil {
		t.Fatalf("SaturateJ: %v", err)
	}
	if !p.Saturated(cfg, 5) {
		t.Fatalf("config not 5-saturated: %s", p.FormatConfig(cfg))
	}
	if cfg.Size() != input {
		t.Fatalf("|cfg| = %d, want input %d", cfg.Size(), input)
	}
	if _, _, err := SaturateJ(p, 0); err == nil {
		t.Fatal("j = 0 must error")
	}
}

func TestSaturateErrors(t *testing.T) {
	if _, err := Saturate(protocols.LeaderFlock(2).Protocol); !errors.Is(err, ErrNotLeaderless) {
		t.Fatalf("want ErrNotLeaderless, got %v", err)
	}
	if _, err := Saturate(protocols.Majority().Protocol); !errors.Is(err, ErrMultiInput) {
		t.Fatalf("want ErrMultiInput, got %v", err)
	}
	// A protocol with an unreachable state.
	b := protocol.NewBuilder("dead-state")
	x := b.AddState("x", 0)
	b.AddState("dead", 1)
	b.AddInput("x", x)
	p := b.CompleteWithIdentity().MustBuild()
	_, err := Saturate(p)
	if !errors.Is(err, ErrDeadStates) {
		t.Fatalf("want ErrDeadStates, got %v", err)
	}
}

func TestCoverableSupport(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	cover := CoverableSupport(p)
	if len(cover) != p.NumStates() {
		t.Fatalf("all states of P'_2 are coverable, got %d/%d", len(cover), p.NumStates())
	}
	// Chain protocol: x,x ↦ a,a; a,a ↦ b,b: all coverable; c unreachable.
	bld := protocol.NewBuilder("chain")
	x := bld.AddState("x", 0)
	a := bld.AddState("a", 0)
	bb := bld.AddState("b", 0)
	c := bld.AddState("c", 1)
	bld.AddTransition(x, x, a, a)
	bld.AddTransition(a, a, bb, bb)
	bld.AddTransition(c, c, c, c)
	bld.AddInput("x", x)
	p2 := bld.CompleteWithIdentity().MustBuild()
	cover2 := CoverableSupport(p2)
	if !cover2[x] || !cover2[a] || !cover2[bb] {
		t.Fatal("x, a, b must be coverable")
	}
	if cover2[c] {
		t.Fatal("c must not be coverable")
	}
}

func TestSingleStateProtocolTriviallySaturated(t *testing.T) {
	e := protocols.Constant(true)
	res, err := Saturate(e.Protocol)
	if err != nil {
		t.Fatalf("Saturate: %v", err)
	}
	if res.Stages != 0 || res.Input != 1 || len(res.Sequence) != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	res, err := Saturate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) == 0 {
		t.Skip("no steps to corrupt")
	}
	bad := res
	bad.Sequence = append([]int(nil), res.Sequence...)
	bad.Sequence[0] = p.NumTransitions() + 1
	if _, err := Replay(p, bad); err == nil {
		t.Fatal("corrupt transition index must fail replay")
	}
	bad2 := res
	bad2.Config = res.Config.Clone()
	bad2.Config[0]++
	if _, err := Replay(p, bad2); err == nil {
		t.Fatal("corrupt target config must fail replay")
	}
}
