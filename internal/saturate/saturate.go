// Package saturate implements Section 5.3 of the paper: reaching j-saturated
// configurations (every state populated by at least j agents) from pure-x
// inputs of leaderless protocols.
//
// Lemma 5.3 guarantees, for any configuration C with x ∈ ⟦C⟧ ⊊ Q, a
// transition whose precondition lies in the support and whose postcondition
// leaves it — provided every state of the protocol is coverable from some
// input (the paper's standing assumption for protocols that compute
// predicates; states violating it are dead and can be removed). Lemma 5.4
// iterates this: a sequence σ_j of length (3^j − 1)/2 takes IC(3^j) to a
// configuration whose support grows strictly at each of j ≤ n stages,
// ending 1-saturated; scaling by m gives m-saturated configurations from
// input m·3^j.
package saturate

import (
	"errors"
	"fmt"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// Errors returned by Saturate.
var (
	ErrNotLeaderless  = errors.New("saturate: construction requires a leaderless protocol")
	ErrMultiInput     = errors.New("saturate: construction requires a single input variable")
	ErrDeadStates     = errors.New("saturate: states not coverable from any input")
	ErrSequenceTooBig = errors.New("saturate: witness sequence too long to materialise")
)

// Result is the Lemma 5.4 witness.
type Result struct {
	// Stages is the number j of support-growing stages (≤ number of states).
	Stages int
	// Input is 3^Stages: IC(Input) can reach a 1-saturated configuration.
	Input int64
	// Sequence is the transition sequence σ of length (3^Stages − 1)/2
	// taking IC(Input) to Config. It is nil when materialising it would
	// exceed maxSeqLen (the construction is still valid; see Replay).
	Sequence []int
	// Config is the reached 1-saturated configuration.
	Config multiset.Vec
}

// maxSeqLen caps materialised witness sequences.
const maxSeqLen = 50_000_000

// CoverableSupport returns the set of states coverable from pure-x inputs:
// the least S ∋ I(x) closed under transitions with preconditions in S. By
// monotonicity of leaderless protocols this is exactly the union of
// supports of reachable configurations.
func CoverableSupport(p *protocol.Protocol) map[protocol.State]bool {
	s := map[protocol.State]bool{p.InputState(0): true}
	for changed := true; changed; {
		changed = false
		for i := 0; i < p.NumTransitions(); i++ {
			t := p.Transition(i)
			if !s[t.P] || !s[t.Q] {
				continue
			}
			if !s[t.P2] {
				s[t.P2] = true
				changed = true
			}
			if !s[t.Q2] {
				s[t.Q2] = true
				changed = true
			}
		}
	}
	return s
}

// Saturate runs the Lemma 5.4 construction and returns its witness.
func Saturate(p *protocol.Protocol) (Result, error) {
	if !p.Leaderless() {
		return Result{}, ErrNotLeaderless
	}
	if p.NumInputs() != 1 {
		return Result{}, ErrMultiInput
	}
	cover := CoverableSupport(p)
	if len(cover) < p.NumStates() {
		var dead []string
		for q := 0; q < p.NumStates(); q++ {
			if !cover[protocol.State(q)] {
				dead = append(dead, p.StateName(protocol.State(q)))
			}
		}
		return Result{}, fmt.Errorf("%w: %v", ErrDeadStates, dead)
	}

	// C_0 = IC(1); at each stage, triple the configuration and fire one
	// support-expanding transition (Lemma 5.3).
	c := p.InitialConfigN(1)
	var seq []int
	seqOK := true
	stages := 0
	for {
		if saturated1(c) {
			break
		}
		t, ok := expandingTransition(p, c)
		if !ok {
			// Unreachable given the coverability check above; guard anyway.
			return Result{}, fmt.Errorf("%w: support stuck at %s", ErrDeadStates, p.FormatConfig(c))
		}
		c = c.Scale(3)
		c.AddInPlace(p.Displacement(t))
		stages++
		if seqOK {
			if 3*len(seq)+1 > maxSeqLen {
				seq, seqOK = nil, false
			} else {
				tripled := make([]int, 0, 3*len(seq)+1)
				tripled = append(tripled, seq...)
				tripled = append(tripled, seq...)
				tripled = append(tripled, seq...)
				tripled = append(tripled, t)
				seq = tripled
			}
		}
	}
	input := int64(1)
	for i := 0; i < stages; i++ {
		input *= 3
	}
	res := Result{Stages: stages, Input: input, Config: c}
	if seqOK {
		res.Sequence = seq
	}
	return res, nil
}

// saturated1 reports whether every coordinate is ≥ 1.
func saturated1(c multiset.Vec) bool {
	for _, v := range c {
		if v < 1 {
			return false
		}
	}
	return true
}

// expandingTransition finds a transition with precondition inside ⟦C⟧ whose
// postcondition adds a new state — the Lemma 5.3 witness. It is enabled at
// 2C (two copies supply both agents even when P = Q with C(P) = 1).
func expandingTransition(p *protocol.Protocol, c multiset.Vec) (int, bool) {
	for i := 0; i < p.NumTransitions(); i++ {
		t := p.Transition(i)
		if c[t.P] == 0 || c[t.Q] == 0 {
			continue
		}
		if c[t.P2] == 0 || c[t.Q2] == 0 {
			return i, true
		}
	}
	return 0, false
}

// SaturateJ returns an input and configuration pair such that IC(input) can
// reach the returned j-saturated configuration: the Lemma 5.4 witness scaled
// by j (monotonicity: executing σ j times from IC(j·3^stages) works).
func SaturateJ(p *protocol.Protocol, j int64) (input int64, cfg multiset.Vec, err error) {
	if j < 1 {
		return 0, nil, fmt.Errorf("saturate: j must be ≥ 1, got %d", j)
	}
	res, err := Saturate(p)
	if err != nil {
		return 0, nil, err
	}
	return j * res.Input, res.Config.Scale(j), nil
}

// Replay validates a Result by firing its sequence from IC(Input) with exact
// arithmetic, returning the reached configuration. It errors if the sequence
// was not materialised or does not replay to Config.
func Replay(p *protocol.Protocol, res Result) (multiset.Vec, error) {
	if res.Sequence == nil && res.Stages > 0 {
		return nil, ErrSequenceTooBig
	}
	c := p.InitialConfigN(res.Input)
	for k, t := range res.Sequence {
		if t < 0 || t >= p.NumTransitions() {
			return nil, fmt.Errorf("saturate: bad transition %d at position %d", t, k)
		}
		if !p.Enabled(c, t) {
			return nil, fmt.Errorf("saturate: transition %s disabled at position %d",
				p.FormatTransition(p.Transition(t)), k)
		}
		p.FireInPlace(c, t)
	}
	if !c.Equal(res.Config) {
		return nil, fmt.Errorf("saturate: replay reached %s, want %s",
			p.FormatConfig(c), p.FormatConfig(res.Config))
	}
	return c, nil
}
