package protocol

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the protocol as a Graphviz digraph: one node per state
// (double circle for output 1, with leader counts annotated) and one edge
// per non-identity transition, drawn from the pre-pair to the post-pair
// through a small junction node. The output is deterministic.
func (p *Protocol) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", p.name)
	for q, name := range p.states {
		shape := "circle"
		if p.outputs[q] {
			shape = "doublecircle"
		}
		label := name
		if l := p.leaders[q]; l > 0 {
			label = fmt.Sprintf("%s\\n(%d leaders)", name, l)
		}
		if State(q) == p.inputMap[0] && len(p.inputs) == 1 {
			label += "\\n← x"
		}
		fmt.Fprintf(&b, "  q%d [label=\"%s\", shape=%s];\n", q, label, shape)
	}
	for i, t := range p.transitions {
		if t.IsIdentity() {
			continue
		}
		j := fmt.Sprintf("t%d", i)
		fmt.Fprintf(&b, "  %s [shape=point, width=0.05];\n", j)
		fmt.Fprintf(&b, "  q%d -> %s [dir=none];\n", t.P, j)
		if t.Q != t.P {
			fmt.Fprintf(&b, "  q%d -> %s [dir=none];\n", t.Q, j)
		}
		fmt.Fprintf(&b, "  %s -> q%d;\n", j, t.P2)
		if t.Q2 != t.P2 {
			fmt.Fprintf(&b, "  %s -> q%d;\n", j, t.Q2)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
