package protocol

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/multiset"
)

// buildMajority returns the classic 4-state majority protocol: inputs A and
// B; A,B ↦ a,b; A,b ↦ A,a; B,a ↦ B,b; a,b ↦ b,b. Output 1 for {A,a}.
func buildMajority(t testing.TB) *Protocol {
	t.Helper()
	b := NewBuilder("majority")
	A := b.AddState("A", 1)
	B := b.AddState("B", 0)
	sa := b.AddState("a", 1)
	sb := b.AddState("b", 0)
	b.AddTransition(A, B, sa, sb)
	b.AddTransition(A, sb, A, sa)
	b.AddTransition(B, sa, B, sb)
	b.AddTransition(sa, sb, sb, sb)
	b.AddInput("x_A", A)
	b.AddInput("x_B", B)
	p, err := b.CompleteWithIdentity().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderValidation(t *testing.T) {
	t.Run("no states", func(t *testing.T) {
		if _, err := NewBuilder("e").Build(); err == nil {
			t.Fatal("want error for empty protocol")
		}
	})
	t.Run("no inputs", func(t *testing.T) {
		b := NewBuilder("e")
		b.AddState("q", 0)
		if _, err := b.CompleteWithIdentity().Build(); err == nil {
			t.Fatal("want error for missing inputs")
		}
	})
	t.Run("incomplete pairs", func(t *testing.T) {
		b := NewBuilder("e")
		q := b.AddState("q", 0)
		b.AddState("r", 1)
		b.AddInput("x", q)
		_, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), "no transition") {
			t.Fatalf("want incompleteness error, got %v", err)
		}
	})
	t.Run("duplicate state", func(t *testing.T) {
		b := NewBuilder("e")
		q := b.AddState("q", 0)
		b.AddState("q", 1)
		b.AddInput("x", q)
		if _, err := b.CompleteWithIdentity().Build(); err == nil {
			t.Fatal("want duplicate state error")
		}
	})
	t.Run("duplicate input", func(t *testing.T) {
		b := NewBuilder("e")
		q := b.AddState("q", 0)
		b.AddInput("x", q)
		b.AddInput("x", q)
		if _, err := b.CompleteWithIdentity().Build(); err == nil {
			t.Fatal("want duplicate input error")
		}
	})
	t.Run("negative leaders", func(t *testing.T) {
		b := NewBuilder("e")
		q := b.AddState("q", 0)
		b.AddInput("x", q)
		b.AddLeader(q, -1)
		if _, err := b.CompleteWithIdentity().Build(); err == nil {
			t.Fatal("want negative leader error")
		}
	})
	t.Run("valid single state", func(t *testing.T) {
		b := NewBuilder("one")
		q := b.AddState("q", 1)
		b.AddInput("x", q)
		p, err := b.CompleteWithIdentity().Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if p.NumStates() != 1 || p.NumTransitions() != 1 {
			t.Fatalf("states=%d transitions=%d", p.NumStates(), p.NumTransitions())
		}
		if !p.Transition(0).IsIdentity() {
			t.Fatal("auto-completed transition should be identity")
		}
	})
}

func TestNormalizationAndDedup(t *testing.T) {
	b := NewBuilder("n")
	q0 := b.AddState("q0", 0)
	q1 := b.AddState("q1", 1)
	// Same transition written four ways.
	b.AddTransition(q0, q1, q1, q0)
	b.AddTransition(q1, q0, q0, q1)
	b.AddTransition(q1, q0, q1, q0)
	b.AddTransition(q0, q1, q0, q1)
	b.AddInput("x", q0)
	p := b.CompleteWithIdentity().MustBuild()
	// One real transition + identities for ⟅q0,q0⟆ and ⟅q1,q1⟆.
	if p.NumTransitions() != 3 {
		t.Fatalf("transitions = %d, want 3 (dedup failed)", p.NumTransitions())
	}
	tr := p.Transition(0)
	if tr.P > tr.Q || tr.P2 > tr.Q2 {
		t.Fatalf("transition not normalized: %+v", tr)
	}
	if !tr.IsIdentity() {
		t.Fatalf("⟅q0,q1⟆↦⟅q1,q0⟆ is the identity on multisets, got %+v", tr)
	}
}

func TestInitialConfig(t *testing.T) {
	p := buildMajority(t)
	ic := p.InitialConfig(multiset.Vec{3, 2})
	A, _ := p.StateByName("A")
	B, _ := p.StateByName("B")
	if ic[A] != 3 || ic[B] != 2 || ic.Size() != 5 {
		t.Fatalf("IC = %s", p.FormatConfig(ic))
	}

	// With leaders: IC(m) = L + Σ m(x)·I(x).
	b := NewBuilder("lead")
	q := b.AddState("q", 0)
	l := b.AddState("l", 1)
	b.AddLeader(l, 2)
	b.AddInput("x", q)
	lp := b.CompleteWithIdentity().MustBuild()
	ic = lp.InitialConfigN(4)
	if ic[q] != 4 || ic[l] != 2 {
		t.Fatalf("IC with leaders = %v", ic)
	}
	if lp.Leaderless() {
		t.Fatal("protocol has leaders")
	}
	if lp.NumLeaders() != 2 {
		t.Fatalf("NumLeaders = %d", lp.NumLeaders())
	}
}

func TestInitialConfigNPanicsOnMultiInput(t *testing.T) {
	p := buildMajority(t)
	defer func() {
		if recover() == nil {
			t.Fatal("InitialConfigN on 2-input protocol should panic")
		}
	}()
	p.InitialConfigN(3)
}

func TestEnabledFire(t *testing.T) {
	p := buildMajority(t)
	A, _ := p.StateByName("A")
	B, _ := p.StateByName("B")
	sa, _ := p.StateByName("a")
	sb, _ := p.StateByName("b")

	c := multiset.New(4)
	c[A], c[B] = 1, 1
	var meet int = -1
	for _, i := range p.TransitionsForPair(A, B) {
		if !p.Transition(i).IsIdentity() {
			meet = i
		}
	}
	if meet < 0 {
		t.Fatal("no A,B transition")
	}
	if !p.Enabled(c, meet) {
		t.Fatal("A,B ↦ a,b should be enabled")
	}
	c2 := p.Fire(c, meet)
	if c2[A] != 0 || c2[B] != 0 || c2[sa] != 1 || c2[sb] != 1 {
		t.Fatalf("Fire = %s", p.FormatConfig(c2))
	}
	// Original untouched.
	if c[A] != 1 || c[B] != 1 {
		t.Fatal("Fire mutated its input")
	}
	// Displacement agrees with firing.
	want := c.Add(p.Displacement(meet))
	if !c2.Equal(want) {
		t.Fatalf("Fire %v != C+Δt %v", c2, want)
	}
	if p.Enabled(c2, meet) {
		t.Fatal("A,B transition must be disabled after both converted")
	}
}

func TestFirePanicsWhenDisabled(t *testing.T) {
	p := buildMajority(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Fire on disabled transition should panic")
		}
	}()
	p.Fire(multiset.New(4), 0)
}

func TestSelfPairNeedsTwoAgents(t *testing.T) {
	b := NewBuilder("self")
	q := b.AddState("q", 0)
	r := b.AddState("r", 1)
	b.AddTransition(q, q, r, r)
	b.AddInput("x", q)
	p := b.CompleteWithIdentity().MustBuild()
	var self int = -1
	for _, i := range p.TransitionsForPair(q, q) {
		if !p.Transition(i).IsIdentity() {
			self = i
		}
	}
	one := multiset.Vec{1, 0}
	two := multiset.Vec{2, 0}
	if p.Enabled(one, self) {
		t.Fatal("q,q needs two agents in q")
	}
	if !p.Enabled(two, self) {
		t.Fatal("q,q should be enabled with two agents")
	}
	got := p.Fire(two, self)
	if !got.Equal(multiset.Vec{0, 2}) {
		t.Fatalf("Fire = %v", got)
	}
}

func TestOutputOf(t *testing.T) {
	p := buildMajority(t)
	A, _ := p.StateByName("A")
	sb, _ := p.StateByName("b")
	c := multiset.New(4)
	if _, ok := p.OutputOf(c); ok {
		t.Fatal("empty configuration has undefined output")
	}
	c[A] = 2
	if b, ok := p.OutputOf(c); !ok || b != 1 {
		t.Fatalf("OutputOf = %d,%t want 1,true", b, ok)
	}
	c[sb] = 1
	if _, ok := p.OutputOf(c); ok {
		t.Fatal("mixed configuration has undefined output")
	}
	c[A] = 0
	if b, ok := p.OutputOf(c); !ok || b != 0 {
		t.Fatalf("OutputOf = %d,%t want 0,true", b, ok)
	}
}

func TestOutputStates(t *testing.T) {
	p := buildMajority(t)
	ones := p.OutputStates(1)
	zeros := p.OutputStates(0)
	if len(ones) != 2 || len(zeros) != 2 {
		t.Fatalf("OutputStates: %v / %v", ones, zeros)
	}
}

func TestSilentAndSaturated(t *testing.T) {
	p := buildMajority(t)
	sb, _ := p.StateByName("b")
	c := multiset.New(4)
	c[sb] = 5
	if !p.Silent(c) {
		t.Fatal("all-b configuration is silent")
	}
	A, _ := p.StateByName("A")
	c[A] = 1
	// A,b ↦ A,a changes the configuration.
	if p.Silent(c) {
		t.Fatal("A+b is not silent")
	}
	if !p.Saturated(multiset.Vec{1, 1, 1, 1}, 1) {
		t.Fatal("want 1-saturated")
	}
	if p.Saturated(multiset.Vec{1, 0, 1, 1}, 1) {
		t.Fatal("not saturated with a zero")
	}
	if !p.Saturated(multiset.Vec{3, 4, 3, 5}, 3) {
		t.Fatal("want 3-saturated")
	}
}

func TestDeltaSupport(t *testing.T) {
	b := NewBuilder("supports")
	u := b.AddState("u", 0)
	v := b.AddState("v", 1)
	w := b.AddState("w", 0)
	b.AddTransition(u, u, v, v) // delta: u −2, v +2
	b.AddTransition(u, v, v, w) // delta: u −1, w +1 (v cancels)
	b.AddInput("x", u)
	p := b.CompleteWithIdentity().MustBuild()
	for i := 0; i < p.NumTransitions(); i++ {
		d := p.Displacement(i)
		states, deltas := p.DeltaSupport(i)
		if len(states) != len(deltas) {
			t.Fatalf("transition %d: %d states vs %d deltas", i, len(states), len(deltas))
		}
		got := make(map[State]int64)
		for k, q := range states {
			if deltas[k] == 0 {
				t.Fatalf("transition %d: zero delta in support at %d", i, q)
			}
			if _, dup := got[q]; dup {
				t.Fatalf("transition %d: duplicate state %d in support", i, q)
			}
			got[q] = deltas[k]
		}
		for q, n := range d {
			if got[State(q)] != n {
				t.Fatalf("transition %d: support %v/%v disagrees with displacement %v", i, states, deltas, d)
			}
		}
		if len(got) != d.SupportSize() {
			t.Fatalf("transition %d: support size %d, want %d", i, len(got), d.SupportSize())
		}
	}
}

func TestParikhDisplacement(t *testing.T) {
	p := buildMajority(t)
	A, _ := p.StateByName("A")
	B, _ := p.StateByName("B")
	var meet int
	for _, i := range p.TransitionsForPair(A, B) {
		if !p.Transition(i).IsIdentity() {
			meet = i
		}
	}
	d := p.ParikhDisplacement(map[int]int64{meet: 3})
	want := p.Displacement(meet).Scale(3)
	if !d.Equal(want) {
		t.Fatalf("ParikhDisplacement = %v, want %v", d, want)
	}
	if !p.ParikhDisplacement(nil).IsZero() {
		t.Fatal("empty Parikh displacement should be zero")
	}
}

func TestDeterministic(t *testing.T) {
	p := buildMajority(t)
	if !p.Deterministic() {
		t.Fatal("majority as built is deterministic")
	}
	b := NewBuilder("nd")
	q := b.AddState("q", 0)
	r := b.AddState("r", 1)
	b.AddTransition(q, q, r, r)
	b.AddTransition(q, q, q, r)
	b.AddInput("x", q)
	nd := b.CompleteWithIdentity().MustBuild()
	if nd.Deterministic() {
		t.Fatal("protocol with two q,q transitions is nondeterministic")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := buildMajority(t)
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NumStates() != p.NumStates() || q.NumTransitions() != p.NumTransitions() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			q.NumStates(), q.NumTransitions(), p.NumStates(), p.NumTransitions())
	}
	if q.Name() != p.Name() {
		t.Fatalf("name %q vs %q", q.Name(), p.Name())
	}
	// Same behaviour on a concrete configuration.
	ic := multiset.Vec{2, 1}
	c1 := p.InitialConfig(ic)
	c2 := q.InitialConfig(ic)
	if !c1.Equal(c2) {
		t.Fatalf("IC differs after round trip: %v vs %v", c1, c2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"name":"x","states":[{"name":"q","output":0}],"transitions":[["q","q","q","zz"]],"inputs":{"x":"q"},"completeWithIdentity":true}`,
		`{"name":"x","states":[{"name":"q","output":0}],"transitions":[],"inputs":{"x":"zz"},"completeWithIdentity":true}`,
		`{"name":"x","states":[{"name":"q","output":0},{"name":"q","output":1}],"transitions":[],"inputs":{"x":"q"},"completeWithIdentity":true}`,
		`{"name":"x","states":[{"name":"q","output":0}],"transitions":[],"leaders":{"zz":1},"inputs":{"x":"q"},"completeWithIdentity":true}`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d: want parse error", i)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := buildMajority(t)
	s := p.String()
	for _, frag := range []string{"majority", "A/1", "b/0", "A,B ↦ a,b"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
	tr := p.Transition(0)
	if got := p.FormatTransition(tr); !strings.Contains(got, "↦") {
		t.Errorf("FormatTransition = %q", got)
	}
}

// Property: firing any enabled transition preserves population size and
// agrees with the displacement vector; enabledness is monotone (firing stays
// enabled in larger configurations) — the monotonicity property of Section 2.
func TestQuickFireDisplacementMonotonicity(t *testing.T) {
	p := buildMajority(t)
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c := multiset.Vec{
			int64(rr.Intn(5)), int64(rr.Intn(5)),
			int64(rr.Intn(5)), int64(rr.Intn(5)),
		}
		extra := multiset.Vec{
			int64(rr.Intn(3)), int64(rr.Intn(3)),
			int64(rr.Intn(3)), int64(rr.Intn(3)),
		}
		for i := 0; i < p.NumTransitions(); i++ {
			if !p.Enabled(c, i) {
				// Monotonicity: if disabled at c+extra it must be disabled at c.
				continue
			}
			got := p.Fire(c, i)
			if got.Size() != c.Size() {
				return false
			}
			if !got.Equal(c.Add(p.Displacement(i))) {
				return false
			}
			if !p.Enabled(c.Add(extra), i) {
				return false // monotonicity violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
