package protocol

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	p := buildMajority(t)
	var b strings.Builder
	if err := p.WriteDOT(&b); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := b.String()
	for _, frag := range []string{
		"digraph \"majority\"",
		"doublecircle", // output-1 states
		"shape=circle",
		"->",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
	// Deterministic output.
	var b2 strings.Builder
	if err := p.WriteDOT(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WriteDOT not deterministic")
	}
	// Identity transitions are not drawn: count junction points vs
	// non-identity transitions.
	nonIdent := 0
	for _, tr := range p.Transitions() {
		if !tr.IsIdentity() {
			nonIdent++
		}
	}
	if got := strings.Count(out, "shape=point"); got != nonIdent {
		t.Errorf("%d junction nodes, want %d", got, nonIdent)
	}
}

func TestWriteDOTLeaders(t *testing.T) {
	b := NewBuilder("lead")
	q := b.AddState("q", 0)
	l := b.AddState("l", 1)
	b.AddLeader(l, 2)
	b.AddInput("x", q)
	p := b.CompleteWithIdentity().MustBuild()
	var sb strings.Builder
	if err := p.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(2 leaders)") {
		t.Errorf("leader annotation missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "← x") {
		t.Errorf("input annotation missing:\n%s", sb.String())
	}
}
