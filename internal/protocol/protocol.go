// Package protocol implements the population protocol model of Section 2.2 of
// the paper: a tuple P = (Q, T, L, X, I, O) of states, pairwise transitions,
// a leader multiset, input variables, an input mapping, and a binary output
// mapping. Configurations are multisets over Q; executions fire transitions
// on pairs of agents.
//
// States are dense indices (type State) into the protocol's state table;
// configurations are multiset.Vec values of dimension NumStates. Protocols
// are immutable once built (see Builder); all accessors either return copies
// or values that must not be modified, as documented per method.
package protocol

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/multiset"
)

// State identifies a protocol state as an index into the state table.
type State int

// Config is a configuration: a multiset over the protocol's states. The
// paper requires |C| ≥ 2 for a configuration; functions that depend on this
// document it explicitly.
type Config = multiset.Vec

// Transition is a pair transition ⟅P,Q⟆ ↦ ⟅P2,Q2⟆. Both sides are unordered
// multisets of size two; transitions are normalized so that P ≤ Q and
// P2 ≤ Q2.
type Transition struct {
	P, Q   State // pre: the two interacting agents' states
	P2, Q2 State // post: their states after the interaction
}

// normalize returns t with both sides sorted.
func (t Transition) normalize() Transition {
	if t.P > t.Q {
		t.P, t.Q = t.Q, t.P
	}
	if t.P2 > t.Q2 {
		t.P2, t.Q2 = t.Q2, t.P2
	}
	return t
}

// IsIdentity reports whether the transition does not move any agent, i.e.
// ⟅P,Q⟆ = ⟅P2,Q2⟆. Identity transitions exist to satisfy the paper's
// requirement that every pair of states has at least one transition.
func (t Transition) IsIdentity() bool {
	t = t.normalize()
	return t.P == t.P2 && t.Q == t.Q2
}

// Protocol is an immutable population protocol.
type Protocol struct {
	name        string
	states      []string // state names; index is the State id
	outputs     []bool   // O: Q → {0,1}; true encodes output 1
	leaders     multiset.Vec
	inputs      []string // input variable names X
	inputMap    []State  // I: X → Q
	transitions []Transition
	deltas      []multiset.Vec // displacement Δt per transition
	byPair      [][]int        // unordered pair index → transition indices
	supStates   [][]State      // support of Δt: the states whose count changes
	supDeltas   [][]int64      // per-state change, aligned with supStates
}

// Name returns the protocol's human-readable name.
func (p *Protocol) Name() string { return p.name }

// NumStates returns |Q|.
func (p *Protocol) NumStates() int { return len(p.states) }

// NumTransitions returns |T| (after normalization and deduplication).
func (p *Protocol) NumTransitions() int { return len(p.transitions) }

// NumInputs returns |X|.
func (p *Protocol) NumInputs() int { return len(p.inputs) }

// StateName returns the name of state q.
func (p *Protocol) StateName(q State) string { return p.states[q] }

// StateNames returns a copy of the state-name table.
func (p *Protocol) StateNames() []string {
	out := make([]string, len(p.states))
	copy(out, p.states)
	return out
}

// StateByName returns the state with the given name.
func (p *Protocol) StateByName(name string) (State, bool) {
	for i, s := range p.states {
		if s == name {
			return State(i), true
		}
	}
	return 0, false
}

// Output returns O(q) as 0 or 1.
func (p *Protocol) Output(q State) int {
	if p.outputs[q] {
		return 1
	}
	return 0
}

// OutputStates returns the sorted states with output b.
func (p *Protocol) OutputStates(b int) []State {
	var out []State
	for q := range p.states {
		if p.Output(State(q)) == b {
			out = append(out, State(q))
		}
	}
	return out
}

// Leaders returns a copy of the leader multiset L. The protocol is leaderless
// iff this is the zero multiset.
func (p *Protocol) Leaders() multiset.Vec { return p.leaders.Clone() }

// NumLeaders returns |L|.
func (p *Protocol) NumLeaders() int64 { return p.leaders.Size() }

// Leaderless reports whether L = 0.
func (p *Protocol) Leaderless() bool { return p.leaders.IsZero() }

// InputNames returns a copy of the input-variable names X.
func (p *Protocol) InputNames() []string {
	out := make([]string, len(p.inputs))
	copy(out, p.inputs)
	return out
}

// InputState returns I(x) for input variable index x.
func (p *Protocol) InputState(x int) State { return p.inputMap[x] }

// Transition returns transition number i.
func (p *Protocol) Transition(i int) Transition { return p.transitions[i] }

// Transitions returns a copy of the transition table.
func (p *Protocol) Transitions() []Transition {
	out := make([]Transition, len(p.transitions))
	copy(out, p.transitions)
	return out
}

// pairIndex maps the unordered pair {p,q} with p ≤ q to a dense index.
func (p *Protocol) pairIndex(a, b State) int {
	if a > b {
		a, b = b, a
	}
	return int(b)*(int(b)+1)/2 + int(a)
}

// TransitionsForPair returns the indices of the transitions with precondition
// ⟅a,b⟆. The returned slice is owned by the protocol and must not be
// modified.
func (p *Protocol) TransitionsForPair(a, b State) []int {
	return p.byPair[p.pairIndex(a, b)]
}

// Deterministic reports whether every pair of states has exactly one
// transition.
func (p *Protocol) Deterministic() bool {
	for _, ts := range p.byPair {
		if len(ts) != 1 {
			return false
		}
	}
	return true
}

// Displacement returns Δt for transition index i: the change in agent counts
// caused by firing it (Section 5.1). The returned vector is owned by the
// protocol and must not be modified.
func (p *Protocol) Displacement(i int) multiset.Vec { return p.deltas[i] }

// DeltaSupport returns the support of Δt for transition i: the states whose
// count changes when it fires, with the matching per-state changes. Identity
// transitions have empty support; non-identity ones touch at most 4 states.
// Both slices are owned by the protocol and must not be modified. This is
// the table the simulator's incremental bookkeeping runs on: applying a
// transition touches only the returned states, never the whole vector.
func (p *Protocol) DeltaSupport(i int) ([]State, []int64) {
	return p.supStates[i], p.supDeltas[i]
}

// ParikhDisplacement returns Δπ = Σ_t π(t)·Δt for a multiset π of transition
// indices.
func (p *Protocol) ParikhDisplacement(pi map[int]int64) multiset.Vec {
	d := multiset.New(p.NumStates())
	for t, n := range pi {
		d = d.AddScaled(n, p.deltas[t])
	}
	return d
}

// InitialConfig returns IC(m) = L + Σ_x m(x)·I(x) for an input multiset m
// over the input variables (dimension NumInputs). The paper requires
// |m| ≥ 2 for an input; this is the caller's responsibility.
func (p *Protocol) InitialConfig(m multiset.Vec) Config {
	if m.Dim() != len(p.inputs) {
		panic(fmt.Sprintf("protocol: input dimension %d, want %d", m.Dim(), len(p.inputs)))
	}
	c := p.leaders.Clone()
	for x, n := range m {
		c[p.inputMap[x]] += n
	}
	return c
}

// InitialConfigN returns IC(i·x) for a protocol with a single input variable
// x, the setting of the busy beaver results.
func (p *Protocol) InitialConfigN(i int64) Config {
	if len(p.inputs) != 1 {
		panic(fmt.Sprintf("protocol: InitialConfigN needs 1 input variable, have %d", len(p.inputs)))
	}
	c := p.leaders.Clone()
	c[p.inputMap[0]] += i
	return c
}

// Enabled reports whether transition i is enabled at C, i.e. C ≥ ⟅P,Q⟆.
func (p *Protocol) Enabled(c Config, i int) bool {
	t := p.transitions[i]
	if t.P == t.Q {
		return c[t.P] >= 2
	}
	return c[t.P] >= 1 && c[t.Q] >= 1
}

// Fire returns the configuration reached by firing transition i at C, in a
// fresh vector. It panics if the transition is not enabled.
func (p *Protocol) Fire(c Config, i int) Config {
	out := c.Clone()
	p.FireInPlace(out, i)
	return out
}

// FireInPlace fires transition i at C, mutating C. It panics if the
// transition is not enabled.
func (p *Protocol) FireInPlace(c Config, i int) {
	if !p.Enabled(c, i) {
		t := p.transitions[i]
		panic(fmt.Sprintf("protocol: transition %s not enabled at %s",
			p.FormatTransition(t), c.Format(p.states)))
	}
	t := p.transitions[i]
	c[t.P]--
	c[t.Q]--
	c[t.P2]++
	c[t.Q2]++
}

// EnabledTransitions returns the indices of all transitions enabled at C.
func (p *Protocol) EnabledTransitions(c Config) []int {
	var out []int
	for i := range p.transitions {
		if p.Enabled(c, i) {
			out = append(out, i)
		}
	}
	return out
}

// Silent reports whether every transition enabled at C is an identity, i.e.
// no interaction can change C. Silent configurations are trivially stable.
func (p *Protocol) Silent(c Config) bool {
	for i := range p.transitions {
		if p.Enabled(c, i) && !p.deltas[i].IsZero() {
			return false
		}
	}
	return true
}

// OutputOf returns the output O(C) of configuration C: b if every populated
// state has output b, and ok = false if the output is undefined (states of
// both outputs are populated, or C is empty).
func (p *Protocol) OutputOf(c Config) (b int, ok bool) {
	saw0, saw1 := false, false
	for q, n := range c {
		if n == 0 {
			continue
		}
		if p.outputs[q] {
			saw1 = true
		} else {
			saw0 = true
		}
	}
	switch {
	case saw0 && !saw1:
		return 0, true
	case saw1 && !saw0:
		return 1, true
	default:
		return 0, false
	}
}

// Saturated reports whether C is j-saturated: C(q) ≥ j for every state q
// (Section 5.1).
func (p *Protocol) Saturated(c Config, j int64) bool {
	for _, n := range c {
		if n < j {
			return false
		}
	}
	return true
}

// FormatConfig renders a configuration with state names.
func (p *Protocol) FormatConfig(c Config) string { return c.Format(p.states) }

// FormatTransition renders a transition as "p,q ↦ p',q'".
func (p *Protocol) FormatTransition(t Transition) string {
	return fmt.Sprintf("%s,%s ↦ %s,%s",
		p.states[t.P], p.states[t.Q], p.states[t.P2], p.states[t.Q2])
}

// String returns a multi-line description of the protocol.
func (p *Protocol) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %q: %d states, %d transitions", p.name, len(p.states), len(p.transitions))
	if !p.Leaderless() {
		fmt.Fprintf(&b, ", leaders %s", p.leaders.Format(p.states))
	}
	b.WriteString("\n  states:")
	for q, name := range p.states {
		fmt.Fprintf(&b, " %s/%d", name, p.Output(State(q)))
	}
	b.WriteString("\n  inputs:")
	for x, name := range p.inputs {
		fmt.Fprintf(&b, " %s→%s", name, p.states[p.inputMap[x]])
	}
	b.WriteString("\n")
	ts := p.Transitions()
	sort.Slice(ts, func(i, j int) bool {
		a, c := ts[i], ts[j]
		if a.P != c.P {
			return a.P < c.P
		}
		if a.Q != c.Q {
			return a.Q < c.Q
		}
		if a.P2 != c.P2 {
			return a.P2 < c.P2
		}
		return a.Q2 < c.Q2
	})
	for _, t := range ts {
		if t.IsIdentity() {
			continue
		}
		fmt.Fprintf(&b, "  %s\n", p.FormatTransition(t))
	}
	return b.String()
}
