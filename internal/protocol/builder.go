package protocol

import (
	"errors"
	"fmt"

	"repro/internal/multiset"
)

// Validation errors returned by Builder.Build.
var (
	ErrNoStates        = errors.New("protocol: no states")
	ErrNoInputs        = errors.New("protocol: no input variables")
	ErrIncomplete      = errors.New("protocol: a pair of states has no transition")
	ErrDuplicateState  = errors.New("protocol: duplicate state name")
	ErrDuplicateInput  = errors.New("protocol: duplicate input variable")
	ErrUnknownState    = errors.New("protocol: unknown state")
	ErrNegativeLeaders = errors.New("protocol: negative leader count")
)

// Builder assembles a Protocol. The zero value is not usable; create one with
// NewBuilder. Build validates the protocol; by default every unordered pair
// of states must have at least one transition, as the paper assumes. Use
// CompleteWithIdentity to fill missing pairs with no-op transitions.
type Builder struct {
	name        string
	states      []string
	outputs     []bool
	leaders     map[State]int64
	inputs      []string
	inputMap    []State
	transitions []Transition
	seen        map[Transition]bool
	autoIdent   bool
}

// NewBuilder returns a Builder for a protocol with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		leaders: make(map[State]int64),
		seen:    make(map[Transition]bool),
	}
}

// AddState adds a state with the given name and output (0 or 1) and returns
// its id. Duplicate names are reported at Build time.
func (b *Builder) AddState(name string, output int) State {
	q := State(len(b.states))
	b.states = append(b.states, name)
	b.outputs = append(b.outputs, output != 0)
	return q
}

// AddStates adds consecutive states sharing one output and returns their ids.
func (b *Builder) AddStates(output int, names ...string) []State {
	out := make([]State, len(names))
	for i, n := range names {
		out[i] = b.AddState(n, output)
	}
	return out
}

// AddTransition adds the transition ⟅p,q⟆ ↦ ⟅p2,q2⟆. Transitions are
// normalized (both sides unordered) and deduplicated.
func (b *Builder) AddTransition(p, q, p2, q2 State) {
	t := Transition{p, q, p2, q2}.normalize()
	if b.seen[t] {
		return
	}
	b.seen[t] = true
	b.transitions = append(b.transitions, t)
}

// AddLeader adds n leader agents in state q to the leader multiset L.
func (b *Builder) AddLeader(q State, n int64) {
	b.leaders[q] += n
}

// AddInput declares an input variable mapped to state q by I. Duplicate
// names are reported at Build time.
func (b *Builder) AddInput(name string, q State) {
	b.inputs = append(b.inputs, name)
	b.inputMap = append(b.inputMap, q)
}

// CompleteWithIdentity makes Build add an identity transition p,q ↦ p,q for
// every pair of states that has no transition, satisfying the paper's
// completeness requirement without changing behaviour.
func (b *Builder) CompleteWithIdentity() *Builder {
	b.autoIdent = true
	return b
}

// Build validates and returns the protocol.
func (b *Builder) Build() (*Protocol, error) {
	n := len(b.states)
	if n == 0 {
		return nil, ErrNoStates
	}
	if len(b.inputs) == 0 {
		return nil, ErrNoInputs
	}
	seenName := make(map[string]bool, n)
	for _, name := range b.states {
		if seenName[name] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateState, name)
		}
		seenName[name] = true
	}
	seenInput := make(map[string]bool, len(b.inputs))
	for x, name := range b.inputs {
		if seenInput[name] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateInput, name)
		}
		seenInput[name] = true
		if q := b.inputMap[x]; q < 0 || int(q) >= n {
			return nil, fmt.Errorf("%w: input %q maps to state %d", ErrUnknownState, name, q)
		}
	}
	for _, t := range b.transitions {
		for _, q := range []State{t.P, t.Q, t.P2, t.Q2} {
			if q < 0 || int(q) >= n {
				return nil, fmt.Errorf("%w: transition uses state %d", ErrUnknownState, q)
			}
		}
	}

	leaders := multiset.New(n)
	for q, c := range b.leaders {
		if c < 0 {
			return nil, fmt.Errorf("%w: state %q has %d", ErrNegativeLeaders, b.states[q], c)
		}
		if q < 0 || int(q) >= n {
			return nil, fmt.Errorf("%w: leader state %d", ErrUnknownState, q)
		}
		leaders[q] = c
	}

	p := &Protocol{
		name:        b.name,
		states:      append([]string(nil), b.states...),
		outputs:     append([]bool(nil), b.outputs...),
		leaders:     leaders,
		inputs:      append([]string(nil), b.inputs...),
		inputMap:    append([]State(nil), b.inputMap...),
		transitions: append([]Transition(nil), b.transitions...),
	}

	// Index transitions by unordered pre-pair, optionally completing with
	// identity transitions.
	p.byPair = make([][]int, n*(n+1)/2)
	for i, t := range p.transitions {
		idx := p.pairIndex(t.P, t.Q)
		p.byPair[idx] = append(p.byPair[idx], i)
	}
	for a := State(0); int(a) < n; a++ {
		for c := a; int(c) < n; c++ {
			idx := p.pairIndex(a, c)
			if len(p.byPair[idx]) > 0 {
				continue
			}
			if !b.autoIdent {
				return nil, fmt.Errorf("%w: ⟅%s,%s⟆", ErrIncomplete, p.states[a], p.states[c])
			}
			t := Transition{a, c, a, c}
			p.transitions = append(p.transitions, t)
			p.byPair[idx] = append(p.byPair[idx], len(p.transitions)-1)
		}
	}

	// Precompute displacements and their supports (the ≤4 states a firing
	// touches), so hot loops apply transitions without scanning all of Q.
	p.deltas = make([]multiset.Vec, len(p.transitions))
	p.supStates = make([][]State, len(p.transitions))
	p.supDeltas = make([][]int64, len(p.transitions))
	for i, t := range p.transitions {
		d := multiset.New(n)
		d[t.P]--
		d[t.Q]--
		d[t.P2]++
		d[t.Q2]++
		p.deltas[i] = d
		for _, q := range [4]State{t.P, t.Q, t.P2, t.Q2} {
			if d[q] == 0 {
				continue
			}
			dup := false
			for _, s := range p.supStates[i] {
				if s == q {
					dup = true
					break
				}
			}
			if !dup {
				p.supStates[i] = append(p.supStates[i], q)
				p.supDeltas[i] = append(p.supDeltas[i], d[q])
			}
		}
	}
	return p, nil
}

// MustBuild is Build for protocols known to be valid, such as the library's
// built-in constructions; it panics on error.
func (b *Builder) MustBuild() *Protocol {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
