package protocol

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Spec is the on-disk JSON representation of a protocol, used by the command
// line tools. Example:
//
//	{
//	  "name": "majority",
//	  "states": [{"name": "A", "output": 1}, {"name": "B", "output": 0}],
//	  "transitions": [["A", "B", "B", "B"]],
//	  "leaders": {"A": 1},
//	  "inputs": {"x": "A"},
//	  "completeWithIdentity": true
//	}
type Spec struct {
	Name                 string            `json:"name"`
	States               []SpecState       `json:"states"`
	Transitions          [][4]string       `json:"transitions"`
	Leaders              map[string]int64  `json:"leaders,omitempty"`
	Inputs               map[string]string `json:"inputs"`
	CompleteWithIdentity bool              `json:"completeWithIdentity,omitempty"`
}

// SpecState is one state entry of a Spec.
type SpecState struct {
	Name   string `json:"name"`
	Output int    `json:"output"`
}

// ToSpec converts a protocol to its JSON representation. Identity transitions
// are kept so the round trip is exact; CompleteWithIdentity is false in the
// result.
func (p *Protocol) ToSpec() Spec {
	s := Spec{
		Name:   p.name,
		Inputs: make(map[string]string, len(p.inputs)),
	}
	for q, name := range p.states {
		s.States = append(s.States, SpecState{Name: name, Output: p.Output(State(q))})
	}
	for _, t := range p.transitions {
		s.Transitions = append(s.Transitions, [4]string{
			p.states[t.P], p.states[t.Q], p.states[t.P2], p.states[t.Q2],
		})
	}
	if !p.Leaderless() {
		s.Leaders = make(map[string]int64)
		for q, n := range p.leaders {
			if n > 0 {
				s.Leaders[p.states[q]] = n
			}
		}
	}
	for x, name := range p.inputs {
		s.Inputs[name] = p.states[p.inputMap[x]]
	}
	return s
}

// FromSpec builds a protocol from its JSON representation.
func FromSpec(s Spec) (*Protocol, error) {
	b := NewBuilder(s.Name)
	if s.CompleteWithIdentity {
		b.CompleteWithIdentity()
	}
	idx := make(map[string]State, len(s.States))
	for _, st := range s.States {
		if _, dup := idx[st.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateState, st.Name)
		}
		idx[st.Name] = b.AddState(st.Name, st.Output)
	}
	lookup := func(name string) (State, error) {
		q, ok := idx[name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownState, name)
		}
		return q, nil
	}
	for _, tr := range s.Transitions {
		var qs [4]State
		for i, name := range tr {
			q, err := lookup(name)
			if err != nil {
				return nil, err
			}
			qs[i] = q
		}
		b.AddTransition(qs[0], qs[1], qs[2], qs[3])
	}
	for name, n := range s.Leaders {
		q, err := lookup(name)
		if err != nil {
			return nil, err
		}
		b.AddLeader(q, n)
	}
	// Sort input names for deterministic variable order.
	names := make([]string, 0, len(s.Inputs))
	for name := range s.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		q, err := lookup(s.Inputs[name])
		if err != nil {
			return nil, err
		}
		b.AddInput(name, q)
	}
	return b.Build()
}

// MarshalJSON encodes the protocol as its Spec.
func (p *Protocol) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.ToSpec())
}

// Parse decodes a protocol from JSON bytes.
func Parse(data []byte) (*Protocol, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("protocol: parsing spec: %w", err)
	}
	return FromSpec(s)
}
