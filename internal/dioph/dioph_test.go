package dioph

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/multiset"
)

func TestHilbertBasisKnownSystems(t *testing.T) {
	tests := []struct {
		name string
		a    [][]int64
		v    int
		want []multiset.Vec
	}{
		{
			name: "y0 = y1",
			a:    [][]int64{{1, -1}},
			v:    2,
			want: []multiset.Vec{{1, 1}},
		},
		{
			name: "2y0 = 3y1",
			a:    [][]int64{{2, -3}},
			v:    2,
			want: []multiset.Vec{{3, 2}},
		},
		{
			name: "no rows: units",
			a:    nil,
			v:    3,
			want: []multiset.Vec{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		},
		{
			name: "y0 + y1 = 0: only trivial",
			a:    [][]int64{{1, 1}},
			v:    2,
			want: nil,
		},
		{
			name: "y0 + y1 = 2y2",
			a:    [][]int64{{1, 1, -2}},
			v:    3,
			want: []multiset.Vec{{2, 0, 1}, {0, 2, 1}, {1, 1, 1}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := HilbertBasisEq(tc.a, tc.v, Options{})
			if err != nil {
				t.Fatalf("HilbertBasisEq: %v", err)
			}
			assertSameVecSet(t, got, tc.want)
		})
	}
}

func TestGeneratorsIneqKnown(t *testing.T) {
	// y0 ≥ y1: generators are (1,0) and (1,1); note (1,1) is not minimal as
	// a vector but is indispensable as a generator.
	got, err := GeneratorsIneq([][]int64{{1, -1}}, 2, Options{})
	if err != nil {
		t.Fatalf("GeneratorsIneq: %v", err)
	}
	assertSameVecSet(t, got, []multiset.Vec{{1, 0}, {1, 1}})
}

func TestSolutionPredicates(t *testing.T) {
	a := [][]int64{{1, -1}}
	if !IsSolutionEq(a, multiset.Vec{2, 2}) || IsSolutionEq(a, multiset.Vec{2, 1}) {
		t.Fatal("IsSolutionEq wrong")
	}
	if !IsSolutionIneq(a, multiset.Vec{2, 1}) || IsSolutionIneq(a, multiset.Vec{1, 2}) {
		t.Fatal("IsSolutionIneq wrong")
	}
}

func TestBudgetExceeded(t *testing.T) {
	a := [][]int64{{1, 1, -2}}
	_, err := HilbertBasisEq(a, 3, Options{MaxCandidates: 2})
	if !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("want ErrSearchTooLarge, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := HilbertBasisEq([][]int64{{1, 2}}, 3, Options{}); err == nil {
		t.Fatal("want column mismatch error")
	}
	if _, err := GeneratorsIneq([][]int64{{1}}, -1, Options{}); err == nil {
		t.Fatal("want negative variable error")
	}
}

func TestPottierBounds(t *testing.T) {
	a := [][]int64{{2, -3}, {1, 1}}
	// max row 1-norm = 5; bound = 6² = 36.
	if got := PottierBound(a); got.Cmp(big.NewInt(36)) != 0 {
		t.Fatalf("PottierBound = %s, want 36", got)
	}
	// slack bound = 7² = 49.
	if got := SlackPottierBound(a); got.Cmp(big.NewInt(49)) != 0 {
		t.Fatalf("SlackPottierBound = %s, want 49", got)
	}
	if got := PottierBound(nil); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("PottierBound of empty system = %s, want 1", got)
	}
}

// randomSystem builds a small random matrix.
func randomSystem(rr *rand.Rand) ([][]int64, int) {
	e := 1 + rr.Intn(2)
	v := 2 + rr.Intn(2)
	a := make([][]int64, e)
	for i := range a {
		a[i] = make([]int64, v)
		for j := range a[i] {
			a[i][j] = int64(rr.Intn(5) - 2)
		}
	}
	return a, v
}

// boxSolutions enumerates solutions in {0..bound}^v.
func boxSolutions(a [][]int64, v int, bound int64, ineq bool) []multiset.Vec {
	var out []multiset.Vec
	cur := multiset.New(v)
	var rec func(i int)
	rec = func(i int) {
		if i == v {
			if cur.IsZero() {
				return
			}
			if ineq && IsSolutionIneq(a, cur) || !ineq && IsSolutionEq(a, cur) {
				out = append(out, cur.Clone())
			}
			return
		}
		for x := int64(0); x <= bound; x++ {
			cur[i] = x
			rec(i + 1)
		}
		cur[i] = 0
	}
	rec(0)
	return out
}

// TestQuickHilbertMatchesBruteForce: within a box, the CD minimal solutions
// coincide with the brute-force minimal solutions.
func TestQuickHilbertMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, v := randomSystem(rr)
		basis, err := HilbertBasisEq(a, v, Options{})
		if err != nil {
			return false
		}
		const bound = 5
		brute := multiset.Minimal(boxSolutions(a, v, bound, false))
		// Every brute minimal solution must be in the basis.
		for _, m := range brute {
			if !containsVec(basis, m) {
				return false
			}
		}
		// Every basis element within the box must be a brute minimal
		// solution.
		for _, b := range basis {
			if b.NormInf() <= bound && !containsVec(brute, b) {
				return false
			}
		}
		// Basis elements are solutions and pairwise incomparable.
		for i, b := range basis {
			if !IsSolutionEq(a, b) {
				return false
			}
			for j, c := range basis {
				if i != j && b.Le(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneratorsComplete: every box solution of A·y ≥ 0 decomposes as
// an ℕ-combination of the generators (the Hilbert/Pottier basis property
// used by Corollary 5.7), and generators obey the slack Pottier bound.
func TestQuickGeneratorsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, v := randomSystem(rr)
		gens, err := GeneratorsIneq(a, v, Options{})
		if err != nil {
			return false
		}
		bound := SlackPottierBound(a)
		for _, g := range gens {
			if !IsSolutionIneq(a, g) {
				return false
			}
			if big.NewInt(g.Norm1()).Cmp(bound) > 0 {
				return false
			}
		}
		for _, y := range boxSolutions(a, v, 3, true) {
			if !decomposes(y, gens, map[string]bool{}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// decomposes reports whether y is a sum of a multiset of gens.
func decomposes(y multiset.Vec, gens []multiset.Vec, memo map[string]bool) bool {
	if y.IsZero() {
		return true
	}
	k := y.Key()
	if v, ok := memo[k]; ok {
		return v
	}
	memo[k] = false // cycle guard (not needed: strictly decreasing)
	for _, g := range gens {
		if g.Le(y) && decomposes(y.Sub(g), gens, memo) {
			memo[k] = true
			return true
		}
	}
	return false
}

func containsVec(vs []multiset.Vec, v multiset.Vec) bool {
	for _, u := range vs {
		if u.Equal(v) {
			return true
		}
	}
	return false
}

func assertSameVecSet(t *testing.T, got, want []multiset.Vec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d vectors %v, want %d %v", len(got), got, len(want), want)
	}
	for _, w := range want {
		if !containsVec(got, w) {
			t.Fatalf("missing %v in %v", w, got)
		}
	}
}
