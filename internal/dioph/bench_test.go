package dioph

import (
	"math/rand"
	"testing"

	"repro/internal/multiset"
)

// benchCandidates builds a stream of frontier-like candidate vectors with a
// realistic duplicate rate: random small non-negative vectors, each emitted
// a second time with probability ~1/2, in dimension 9 (a transition-count
// system of a mid-size protocol).
func benchCandidates() []multiset.Vec {
	rng := rand.New(rand.NewSource(3))
	const dim = 9
	var out []multiset.Vec
	for i := 0; i < 20_000; i++ {
		y := make(multiset.Vec, dim)
		for j := range y {
			y[j] = int64(rng.Intn(4))
		}
		out = append(out, y)
		if rng.Intn(2) == 0 {
			out = append(out, y.Clone())
		}
	}
	return out
}

// BenchmarkDedupVecSet measures the solver's candidate dedup as now
// implemented: raw-coordinate FNV-1a hashing into an arena-backed
// open-addressing set (vecset.go). Compare allocs/op with the string-key
// baseline below — the per-candidate Key materialization is gone.
func BenchmarkDedupVecSet(b *testing.B) {
	cands := benchCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := newVecSet(len(cands[0]))
		fresh := 0
		for _, y := range cands {
			if seen.insert(y) {
				fresh++
			}
		}
		if fresh == 0 {
			b.Fatal("no fresh candidates")
		}
	}
}

// BenchmarkDedupStringKey is the retained pre-PR dedup: a map[string]bool
// keyed by multiset.Vec.Key, one string allocation per candidate — the
// "before" side of the comparison.
func BenchmarkDedupStringKey(b *testing.B) {
	cands := benchCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[string]bool)
		fresh := 0
		for _, y := range cands {
			k := y.Key()
			if !seen[k] {
				seen[k] = true
				fresh++
			}
		}
		if fresh == 0 {
			b.Fatal("no fresh candidates")
		}
	}
}

// BenchmarkHilbertBasisEq runs the whole solver on a 3-equation system
// whose frontier examines tens of thousands of candidates, end to end.
func BenchmarkHilbertBasisEq(b *testing.B) {
	a := [][]int64{
		{1, -1, 2, 0, -2, 1, 0, -1, 1},
		{0, 2, -1, -1, 1, 0, -2, 1, 0},
		{-1, 0, 0, 2, 0, -1, 1, 0, -1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis, err := HilbertBasisEq(a, 9, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(basis) == 0 {
			b.Fatal("empty basis")
		}
	}
}
