package dioph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/multiset"
)

// TestAblationAgreesWithCD: the no-criterion baseline and the CD solver
// must compute identical bases on small random systems.
func TestAblationAgreesWithCD(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, v := randomSystem(rr)
		cd, err1 := HilbertBasisEq(a, v, Options{})
		naive, err2 := HilbertBasisEqNoCriterion(a, v, Options{})
		if err1 != nil || err2 != nil {
			// Budget blowups can legitimately differ; skip those seeds.
			return true
		}
		if len(cd) != len(naive) {
			return false
		}
		for _, m := range cd {
			if !containsVec(naive, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAblationKnownSystem(t *testing.T) {
	got, err := HilbertBasisEqNoCriterion([][]int64{{1, 1, -2}}, 3, Options{})
	if err != nil {
		t.Fatalf("ablation: %v", err)
	}
	assertSameVecSet(t, got, []multiset.Vec{{2, 0, 1}, {0, 2, 1}, {1, 1, 1}})
}

// BenchmarkCDvsNoCriterion quantifies the value of the Contejean–Devie
// expansion criterion (an ablation of the solver).
func BenchmarkCDvsNoCriterion(b *testing.B) {
	a := [][]int64{{2, -3, 1}, {1, 1, -2}}
	b.Run("contejean-devie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HilbertBasisEq(a, 3, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-criterion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HilbertBasisEqNoCriterion(a, 3, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
