// Package dioph solves homogeneous linear Diophantine systems over the
// naturals: given an integer matrix A, it computes the Hilbert basis of
// {y ∈ ℕ^v : A·y = 0} (all ≤-minimal non-zero solutions) with the
// Contejean–Devie algorithm, and a generating basis of {y ∈ ℕ^v : A·y ≥ 0}
// via slack variables.
//
// This is the engine behind Section 5.4 of the paper: the potentially
// realisable multisets of transitions (Definition 4) are the solutions of
// Σ_t π(t)·Δt(q) ≥ 0 for q ∈ Q∖{x}, Pottier's theorem (Theorem 5.6) bounds
// the ‖·‖₁ of basis elements, and Corollary 5.7 instantiates the bound as
// the Pottier constant ξ.
package dioph

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/multiset"
)

// ErrSearchTooLarge is returned when the Contejean–Devie frontier exceeds
// the configured candidate budget.
var ErrSearchTooLarge = errors.New("dioph: candidate budget exceeded")

// Options bounds the solver's work.
type Options struct {
	// MaxCandidates bounds the total number of frontier vectors examined;
	// 0 means 2,000,000.
	MaxCandidates int
	// Interrupt, when non-nil, cancels the search cooperatively: the
	// solver aborts with ErrInterrupted soon after the channel closes.
	Interrupt <-chan struct{}
}

// ErrInterrupted is returned when Options.Interrupt closes mid-search.
var ErrInterrupted = errors.New("dioph: interrupted")

// HilbertBasisEq returns all ≤-minimal non-zero solutions of A·y = 0 over
// ℕ^v, where A has rows A[i] of length v. Every solution of the system is a
// sum of a multiset of returned vectors (the Hilbert basis property).
//
// The algorithm is Contejean–Devie: breadth-first search from the unit
// vectors, expanding y by e_j only when ⟨A·y, A·e_j⟩ < 0 (a step that makes
// the residual smaller in the geometric sense), pruning candidates
// dominated by already-found solutions.
func HilbertBasisEq(a [][]int64, v int, opts Options) ([]multiset.Vec, error) {
	if err := validate(a, v); err != nil {
		return nil, err
	}
	basis, _, err := hilbertSearch(a, v, opts, nil)
	return basis, err
}

// GeneratorsIneq returns a generating basis of {y ∈ ℕ^v : A·y ≥ 0}: every
// solution is a sum of a multiset of returned vectors. It is computed as
// the projection of the Hilbert basis of the slack-extended equation system
// A·y − s = 0. (Note that for inequality systems the generating basis may
// contain vectors that are not ≤-minimal solutions — e.g. y₀ ≥ y₁ needs
// both (1,0) and (1,1) — so minimisation must not be applied to the
// projections.)
func GeneratorsIneq(a [][]int64, v int, opts Options) ([]multiset.Vec, error) {
	out, _, err := GeneratorsIneqSeeded(a, v, opts, nil)
	return out, err
}

// IsSolutionEq reports whether A·y = 0.
func IsSolutionEq(a [][]int64, y multiset.Vec) bool {
	for _, row := range a {
		var s int64
		for j, c := range row {
			s += c * y[j]
		}
		if s != 0 {
			return false
		}
	}
	return true
}

// IsSolutionIneq reports whether A·y ≥ 0.
func IsSolutionIneq(a [][]int64, y multiset.Vec) bool {
	for _, row := range a {
		var s int64
		for j, c := range row {
			s += c * y[j]
		}
		if s < 0 {
			return false
		}
	}
	return true
}

// PottierBound returns Pottier's bound (Theorem 5.6) on ‖m‖₁ for basis
// elements of a system of e rows: (1 + max_i Σ_j |a_ij|)^e, as a big.Int
// (the bound is exponential in the row count).
func PottierBound(a [][]int64) *big.Int {
	var maxRow int64
	for _, row := range a {
		var s int64
		for _, c := range row {
			if c < 0 {
				s -= c
			} else {
				s += c
			}
		}
		if s > maxRow {
			maxRow = s
		}
	}
	base := big.NewInt(maxRow + 1)
	return new(big.Int).Exp(base, big.NewInt(int64(len(a))), nil)
}

// SlackPottierBound returns the Pottier bound of the slack-extended system
// used by GeneratorsIneq: (2 + max_i Σ_j |a_ij|)^e. Projections of the
// extended basis obey this ‖·‖₁ bound.
func SlackPottierBound(a [][]int64) *big.Int {
	var maxRow int64
	for _, row := range a {
		var s int64
		for _, c := range row {
			if c < 0 {
				s -= c
			} else {
				s += c
			}
		}
		if s > maxRow {
			maxRow = s
		}
	}
	base := big.NewInt(maxRow + 2)
	return new(big.Int).Exp(base, big.NewInt(int64(len(a))), nil)
}

func validate(a [][]int64, v int) error {
	if v < 0 {
		return fmt.Errorf("dioph: negative variable count %d", v)
	}
	for i, row := range a {
		if len(row) != v {
			return fmt.Errorf("dioph: row %d has %d columns, want %d", i, len(row), v)
		}
	}
	return nil
}

func dot(u, v multiset.Vec) int64 {
	var s int64
	for i, x := range u {
		s += x * v[i]
	}
	return s
}
