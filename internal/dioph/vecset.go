package dioph

// This file implements the solver's candidate-dedup set: an arena-backed
// open-addressing table that hashes the raw int64 coordinates of a vector
// (FNV-1a over words + Murmur3 avalanche), the same playbook as the
// reachability core's node index. The Contejean–Devie frontier previously
// deduplicated through a map[string]bool keyed by multiset.Vec.Key, which
// materialized (and retained) a string per examined candidate;
// multiset.Vec.Key stays the serialization format only.

import (
	"repro/internal/multiset"
	"repro/internal/wordhash"
)

// vecSet is a set of equal-dimension vectors. Members live back to back in
// one flat arena; the open-addressing table stores member ids plus cached
// hashes, so probe misses are rejected without touching the arena and
// growth never recomputes hashes.
type vecSet struct {
	dim    int
	arena  []int64
	n      int
	slots  []int32 // member id + 1; 0 = empty
	hashes []uint64
}

func newVecSet(dim int) *vecSet {
	return &vecSet{dim: dim}
}

// at returns member i as a slice view into the arena.
func (s *vecSet) at(i int32) []int64 {
	o := int(i) * s.dim
	return s.arena[o : o+s.dim]
}

// insert adds v to the set, copying it into the arena; it reports whether v
// was absent (false means an equal vector was already a member).
func (s *vecSet) insert(v multiset.Vec) bool {
	if (s.n+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	h := wordhash.Sum(v)
	mask := uint64(len(s.slots) - 1)
	i := h & mask
	for {
		id := s.slots[i]
		if id == 0 {
			break
		}
		if s.hashes[i] == h && eqVecWords(s.at(id-1), v) {
			return false
		}
		i = (i + 1) & mask
	}
	s.arena = append(s.arena, v...)
	s.n++
	s.slots[i] = int32(s.n)
	s.hashes[i] = h
	return true
}

// grow doubles the table (min 64 slots) and reinserts from the cached
// hashes; the arena is not consulted.
func (s *vecSet) grow() {
	newCap := 64
	if len(s.slots) > 0 {
		newCap = len(s.slots) * 2
	}
	oldSlots, oldHashes := s.slots, s.hashes
	s.slots = make([]int32, newCap)
	s.hashes = make([]uint64, newCap)
	mask := uint64(newCap - 1)
	for j, id := range oldSlots {
		if id == 0 {
			continue
		}
		i := oldHashes[j] & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = id
		s.hashes[i] = oldHashes[j]
	}
}

func eqVecWords(a []int64, b multiset.Vec) bool {
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}
