package dioph

import (
	"fmt"

	"repro/internal/multiset"
)

// This file is the Diophantine layer of the incremental family-parametric
// analysis: the Contejean–Devie search accepts *seed* solutions carried
// over from a previously solved family neighbor. Seeds do not change what
// is computed — the seeded solvers return exactly the Hilbert basis (resp.
// generating basis) of the given system, element for element — they change
// how fast the search contracts: the domination prune fires against the
// seeds from the very first frontier, so whole subtrees the cold search
// must walk until it rediscovers those solutions are cut immediately.
//
// Soundness of pruning by a seed s is the standard Contejean–Devie
// argument, which never uses minimality of the pruning solution: a node y
// on a path to a minimal solution m satisfies y ≤ m, so a prune y ≥ s with
// s a genuine non-zero solution forces s ≤ m and hence s = m by minimality
// — and then y = m = s is already recorded. Invalid seeds (not solutions
// of THIS system) are rejected up front, so a stale neighbor can slow
// nothing down and can never corrupt the basis; non-minimal valid seeds
// are dropped by the final minimisation exactly like the non-minimal
// accepts of the cold search.

// SeedStats reports what a seeded solve did with its seeds.
type SeedStats struct {
	// Offered is the number of seed vectors passed in.
	Offered int
	// Accepted is how many were genuine solutions of the system and entered
	// the prune set.
	Accepted int
	// Rejected is how many were not solutions (stale family carryover) and
	// were discarded before the search started.
	Rejected int
	// Examined is the number of frontier nodes the search walked — the
	// direct measure of how much work seeding saved (compare against the
	// cold solve's count).
	Examined int
}

// HilbertBasisEqSeeded returns exactly HilbertBasisEq(a, v, opts) — the
// same minimal solutions, canonically minimised — warm-starting the
// Contejean–Devie prune set with every seed that is a non-zero solution of
// A·y = 0. Seed slices are not retained or modified.
func HilbertBasisEqSeeded(a [][]int64, v int, opts Options, seeds []multiset.Vec) ([]multiset.Vec, *SeedStats, error) {
	if err := validate(a, v); err != nil {
		return nil, nil, err
	}
	stats := &SeedStats{Offered: len(seeds)}
	var minimal []multiset.Vec
	for _, s := range seeds {
		if len(s) == v && !s.IsZero() && IsSolutionEq(a, s) {
			minimal = append(minimal, s.Clone())
			stats.Accepted++
		} else {
			stats.Rejected++
		}
	}
	basis, examined, err := hilbertSearch(a, v, opts, minimal)
	if err != nil {
		return nil, nil, err
	}
	stats.Examined = examined
	return basis, stats, nil
}

// GeneratorsIneqSeeded returns exactly GeneratorsIneq(a, v, opts), seeding
// the underlying slack-system search with every seed y that satisfies
// A·y ≥ 0 (each is lifted to its unique slack extension (y, A·y)). The
// generating set is identical to the cold solve's: the slack extension is a
// bijection between solutions of the two systems, so identical extended
// Hilbert bases project to identical generator sets.
func GeneratorsIneqSeeded(a [][]int64, v int, opts Options, seeds []multiset.Vec) ([]multiset.Vec, *SeedStats, error) {
	if err := validate(a, v); err != nil {
		return nil, nil, err
	}
	e := len(a)
	ext := make([][]int64, e)
	for i := range a {
		row := make([]int64, v+e)
		copy(row, a[i])
		row[v+i] = -1
		ext[i] = row
	}
	stats := &SeedStats{Offered: len(seeds)}
	var minimal []multiset.Vec
	for _, s := range seeds {
		if len(s) != v || s.IsZero() || !IsSolutionIneq(a, s) {
			stats.Rejected++
			continue
		}
		lift := make(multiset.Vec, v+e)
		copy(lift, s)
		for i, row := range a {
			var sum int64
			for j, c := range row {
				sum += c * s[j]
			}
			lift[v+i] = sum
		}
		minimal = append(minimal, lift)
		stats.Accepted++
	}
	basis, examined, err := hilbertSearch(ext, v+e, opts, minimal)
	if err != nil {
		return nil, nil, err
	}
	stats.Examined = examined
	var out []multiset.Vec
	seen := newVecSet(v)
	for _, b := range basis {
		y := b[:v].Clone()
		if y.IsZero() {
			continue
		}
		if seen.insert(y) {
			out = append(out, y)
		}
	}
	return out, stats, nil
}

// hilbertSearch is the Contejean–Devie core shared by the cold and seeded
// entry points: breadth-first from the unit vectors, expanding y by e_j
// only when ⟨A·y, A·e_j⟩ < 0, pruning against the accumulating minimal
// list — which starts empty for a cold solve and pre-populated with
// validated seed solutions for a warm one. Returns the minimised basis and
// the number of nodes examined.
func hilbertSearch(a [][]int64, v int, opts Options, minimal []multiset.Vec) ([]multiset.Vec, int, error) {
	budget := opts.MaxCandidates
	if budget <= 0 {
		budget = 2_000_000
	}
	e := len(a)
	cols := make([]multiset.Vec, v)
	for j := 0; j < v; j++ {
		col := make(multiset.Vec, e)
		for i := 0; i < e; i++ {
			col[i] = a[i][j]
		}
		cols[j] = col
	}
	type node struct {
		y  multiset.Vec
		ay multiset.Vec
	}
	frontier := make([]node, 0, v)
	seen := newVecSet(v)
	for j := 0; j < v; j++ {
		y := multiset.Unit(v, j)
		frontier = append(frontier, node{y: y, ay: cols[j].Clone()})
		seen.insert(y)
	}
	examined := 0
	for len(frontier) > 0 {
		var next []node
		for _, nd := range frontier {
			examined++
			if examined > budget {
				return nil, examined, fmt.Errorf("%w: %d candidates", ErrSearchTooLarge, examined)
			}
			if examined&4095 == 0 && opts.Interrupt != nil {
				select {
				case <-opts.Interrupt:
					return nil, examined, ErrInterrupted
				default:
				}
			}
			if multiset.DominatesAny(nd.y, minimal) {
				continue
			}
			if nd.ay.IsZero() {
				minimal = append(minimal, nd.y)
				continue
			}
			for j := 0; j < v; j++ {
				if dot(nd.ay, cols[j]) >= 0 {
					continue
				}
				y2 := nd.y.Clone()
				y2[j]++
				if !seen.insert(y2) {
					continue
				}
				next = append(next, node{y: y2, ay: nd.ay.Add(cols[j])})
			}
		}
		frontier = next
	}
	return multiset.Minimal(minimal), examined, nil
}
