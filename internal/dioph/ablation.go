package dioph

import (
	"fmt"

	"repro/internal/multiset"
)

// HilbertBasisEqNoCriterion computes the same minimal-solution basis as
// HilbertBasisEq but *without* the Contejean–Devie expansion criterion
// ⟨A·y, A·e_j⟩ < 0: every frontier vector is expanded in every coordinate
// (subject only to domination pruning). It exists as the ablation baseline
// for the solver benchmarks — the criterion is what makes the search
// practical — and as an independent oracle for correctness tests.
//
// Completeness of the frontier search requires a breadth-first order plus
// an explicit bound on ‖y‖₁: a frontier level is abandoned only when no
// vector at that level can still lead to a new minimal solution, which
// without the geometric criterion we approximate by the Pottier bound on
// basis norms. The budget guards against the (exponentially larger)
// explored space.
func HilbertBasisEqNoCriterion(a [][]int64, v int, opts Options) ([]multiset.Vec, error) {
	if err := validate(a, v); err != nil {
		return nil, err
	}
	budget := opts.MaxCandidates
	if budget <= 0 {
		budget = 2_000_000
	}
	bound := PottierBound(a)
	maxNorm := int64(1) << 30
	if bound.IsInt64() {
		maxNorm = bound.Int64()
	}

	var minimal []multiset.Vec
	frontier := make([]multiset.Vec, 0, v)
	seen := make(map[string]bool)
	for j := 0; j < v; j++ {
		y := multiset.Unit(v, j)
		frontier = append(frontier, y)
		seen[y.Key()] = true
	}
	examined := 0
	for len(frontier) > 0 {
		var next []multiset.Vec
		for _, y := range frontier {
			examined++
			if examined > budget {
				return nil, fmt.Errorf("%w: %d candidates (no-criterion ablation)", ErrSearchTooLarge, examined)
			}
			if multiset.DominatesAny(y, minimal) {
				continue
			}
			if IsSolutionEq(a, y) {
				minimal = append(minimal, y)
				continue
			}
			if y.Norm1() >= maxNorm {
				continue
			}
			for j := 0; j < v; j++ {
				y2 := y.Clone()
				y2[j]++
				k := y2.Key()
				if !seen[k] {
					seen[k] = true
					next = append(next, y2)
				}
			}
		}
		frontier = next
	}
	return multiset.Minimal(minimal), nil
}
