package cluster_test

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metrics/testutil"
)

// TestMetricsMembershipGauges pins the scrape-time membership collectors
// against a fake clock: member counts by state, per-worker heartbeat age,
// and the deregistration counter (which must ignore unknown IDs).
func TestMetricsMembershipGauges(t *testing.T) {
	now := time.Unix(100, 0)
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Now: func() time.Time { return now },
	})
	m := coord.Metrics()

	coord.Register("w1", "http://w1")
	now = now.Add(5 * time.Second)
	coord.Register("w2", "http://w2")
	if _, err := coord.Heartbeat("w2", true); err != nil { // drain
		t.Fatal(err)
	}

	wantMembers := `
		# HELP pp_cluster_members Registered workers by state, lease expiry applied.
		# TYPE pp_cluster_members gauge
		pp_cluster_members{state="active"} 1
		pp_cluster_members{state="draining"} 1
	`
	if err := testutil.CollectAndCompare(m.Members, strings.NewReader(wantMembers)); err != nil {
		t.Error(err)
	}

	wantAges := `
		# HELP pp_cluster_heartbeat_age_seconds Seconds since each worker's last registration or heartbeat.
		# TYPE pp_cluster_heartbeat_age_seconds gauge
		pp_cluster_heartbeat_age_seconds{worker="w1"} 5
		pp_cluster_heartbeat_age_seconds{worker="w2"} 0
	`
	if err := testutil.CollectAndCompare(m.HeartbeatAge, strings.NewReader(wantAges)); err != nil {
		t.Error(err)
	}

	coord.Deregister("w1")
	coord.Deregister("nobody") // unknown: no-op, not a deregistration
	if got := testutil.ToFloat64(m.Deregistrations); got != 1 {
		t.Errorf("deregistrations = %v, want 1", got)
	}
	wantAfter := `
		# HELP pp_cluster_members Registered workers by state, lease expiry applied.
		# TYPE pp_cluster_members gauge
		pp_cluster_members{state="active"} 0
		pp_cluster_members{state="draining"} 1
	`
	if err := testutil.CollectAndCompare(m.Members, strings.NewReader(wantAfter)); err != nil {
		t.Error(err)
	}
}

// TestMetricsHealthySweepDistribution pins the dispatcher counters on a
// clean two-worker run: every cell is routed and served exactly once, no
// retries, no orphans, no deregistrations.
func TestMetricsHealthySweepDistribution(t *testing.T) {
	spec := integrationSpec()
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	m := coord.Metrics()
	startWorker(t, coord, "w1", nil)
	startWorker(t, coord, "w2", nil)

	res, err := coord.Sweep(context.Background(), spec, cluster.DispatchOptions{
		LocalEngine: engine.New(),
		RangeCells:  3,
	})
	if err != nil {
		t.Fatal(err)
	}

	routed := testutil.ToFloat64(m.CellsRouted.WithLabelValues("w1")) +
		testutil.ToFloat64(m.CellsRouted.WithLabelValues("w2"))
	served := testutil.ToFloat64(m.CellsServed.WithLabelValues("w1")) +
		testutil.ToFloat64(m.CellsServed.WithLabelValues("w2"))
	if routed != float64(res.TotalCells) {
		t.Errorf("cells routed = %v, want %d", routed, res.TotalCells)
	}
	if served != float64(res.TotalCells) {
		t.Errorf("cells served = %v, want %d", served, res.TotalCells)
	}
	// The rendezvous distribution: both workers took part.
	for _, id := range []string{"w1", "w2"} {
		if testutil.ToFloat64(m.RangesDispatched.WithLabelValues(id)) == 0 {
			t.Errorf("worker %s dispatched no ranges", id)
		}
	}
	for _, id := range []string{"w1", "w2", cluster.LocalWorkerLabel} {
		if got := testutil.ToFloat64(m.RangesRetried.WithLabelValues(id)); got != 0 {
			t.Errorf("ranges_retried{%s} = %v, want 0", id, got)
		}
		if got := testutil.ToFloat64(m.RangesOrphaned.WithLabelValues(id)); got != 0 {
			t.Errorf("ranges_orphaned{%s} = %v, want 0", id, got)
		}
	}
	if got := testutil.ToFloat64(m.Deregistrations); got != 0 {
		t.Errorf("deregistrations = %v, want 0", got)
	}
}

// TestMetricsKilledWorkerOrphansThenRetries is the ISSUE's drill as a
// metrics assertion: the only worker dies mid-range, so the failed range
// is retried (against the dead worker's name), its still-queued ranges are
// orphaned to survivors, and the death registers as a deregistration — all
// with the sweep still completing locally.
func TestMetricsKilledWorkerOrphansThenRetries(t *testing.T) {
	spec := integrationSpec() // 60 cells over 3 family groups
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	m := coord.Metrics()

	var died atomic.Bool
	killer := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && died.CompareAndSwap(false, true) {
				w = &abortAfter{ResponseWriter: w, n: 2}
			}
			inner.ServeHTTP(w, r)
		})
	}
	startWorker(t, coord, "w1", killer)

	// 3 family groups of 20 cells → 12 ranges, all routed to the only
	// worker. It dies 2 rows into the first; the dispatcher must retry
	// that range and orphan the queued 11.
	res, err := coord.Sweep(context.Background(), spec, cluster.DispatchOptions{
		LocalEngine: engine.New(),
		RangeCells:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.TotalCells {
		t.Fatalf("sweep incomplete: %d/%d", res.Completed, res.TotalCells)
	}

	if got := testutil.ToFloat64(m.RangesRetried.WithLabelValues("w1")); got != 1 {
		t.Errorf("ranges_retried{w1} = %v, want 1", got)
	}
	if got := testutil.ToFloat64(m.RangesOrphaned.WithLabelValues("w1")); got != 11 {
		t.Errorf("ranges_orphaned{w1} = %v, want 11", got)
	}
	if got := testutil.ToFloat64(m.Deregistrations); got != 1 {
		t.Errorf("deregistrations = %v, want 1", got)
	}
	// The 2 cells streamed before the abort are w1's; everything else ran
	// locally after the death.
	if got := testutil.ToFloat64(m.CellsServed.WithLabelValues("w1")); got != 2 {
		t.Errorf("cells_served{w1} = %v, want 2", got)
	}
	if got := testutil.ToFloat64(m.RangesDispatched.WithLabelValues(cluster.LocalWorkerLabel)); got != 12 {
		t.Errorf("ranges_dispatched{local} = %v, want 12 (11 orphans + 1 retry)", got)
	}
	routedLocal := testutil.ToFloat64(m.CellsRouted.WithLabelValues(cluster.LocalWorkerLabel))
	if routedLocal != 58 { // 11 orphaned ranges × 5 cells + 3 retried cells
		t.Errorf("cells_routed{local} = %v, want 58", routedLocal)
	}
}

// TestMetricsNoWorkersDegradedMode: with an empty membership the sweep
// bypasses the dispatcher entirely, so the range counters stay zero — the
// degraded path is visible as members==0 with no dispatch traffic.
func TestMetricsNoWorkersDegradedMode(t *testing.T) {
	spec := integrationSpec()
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	if _, err := coord.Sweep(context.Background(), spec, cluster.DispatchOptions{
		LocalEngine: engine.New(), LocalWorkers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	m := coord.Metrics()
	if got := testutil.ToFloat64(m.RangesDispatched.WithLabelValues(cluster.LocalWorkerLabel)); got != 0 {
		t.Errorf("degraded mode must not count dispatcher ranges, got %v", got)
	}
	if got := testutil.ToFloat64(m.CellsRouted.WithLabelValues(cluster.LocalWorkerLabel)); got != 0 {
		t.Errorf("degraded mode must not count routing, got %v", got)
	}
}
