package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

// Owner returns the live worker that rendezvous routing makes responsible
// for a protocol hash — the same assignment the dispatcher uses for cache
// affinity, so the owner is the node most likely to hold the artifact.
func (c *Coordinator) Owner(hash string) (Worker, bool) {
	return route(hash, c.Live())
}

// maxArtifactFetch bounds one peer artifact transfer.
const maxArtifactFetch = 64 << 20

// FetchArtifact GETs /v1/artifacts/{kind}/{hash} from a peer and returns
// the decoded payload (the frame's CRC is verified), nil on a 404 miss.
func FetchArtifact(ctx context.Context, client *http.Client, baseURL, kind, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/artifacts/%s/%s", baseURL, kind, hash), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, nil
	default:
		return nil, fmt.Errorf("artifact fetch: %s: status %d", baseURL, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactFetch+1))
	if err != nil {
		return nil, fmt.Errorf("artifact fetch: %w", err)
	}
	if len(raw) > maxArtifactFetch {
		return nil, fmt.Errorf("artifact fetch: body exceeds %d bytes", maxArtifactFetch)
	}
	payload, err := store.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("artifact fetch: %w", err)
	}
	return payload, nil
}

// PeerFetch builds the engine's peer-fetch hook against one peer's base
// URL — a worker points it at its coordinator, whose /v1/artifacts
// endpoint forwards to the rendezvous owner when it misses locally.
func PeerFetch(client *http.Client, baseURL string) engine.PeerFetchFunc {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return func(ctx context.Context, kind, hash string) ([]byte, error) {
		return FetchArtifact(ctx, client, baseURL, kind, hash)
	}
}
