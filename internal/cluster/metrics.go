package cluster

import (
	"sort"

	"repro/internal/metrics"
)

// LocalWorkerLabel is the worker label of ranges and cells the coordinator
// executed itself (no live worker could take them).
const LocalWorkerLabel = "local"

// Metrics is the coordinator's exported instrumentation: membership state
// and heartbeat freshness read live at scrape time, plus dispatcher
// counters showing where every range and cell of a fanned-out sweep went.
type Metrics struct {
	// Members reports the current member count by state (active,
	// draining), evaluated against the lease TTL at scrape time.
	Members *memberGauge
	// HeartbeatAge reports seconds since each unexpired worker's last
	// heartbeat, at scrape time.
	HeartbeatAge *heartbeatGauge
	// RangesDispatched counts range dispatch attempts per worker
	// ("local" = executed on the coordinator).
	RangesDispatched *metrics.CounterVec
	// RangesRetried counts ranges re-enqueued after a failed, short or
	// repeatedly-shed attempt, labelled by the worker that failed them.
	RangesRetried *metrics.CounterVec
	// RangesOrphaned counts queued ranges handed to survivors because
	// their worker died or drained before dispatch.
	RangesOrphaned *metrics.CounterVec
	// CellsRouted counts cells at enqueue time by the worker the
	// rendezvous routing chose ("local" when none could take them) — the
	// observable routing distribution.
	CellsRouted *metrics.CounterVec
	// CellsServed counts cells each worker delivered first (duplicates
	// from retried ranges excluded), mirroring Worker.CellsServed.
	CellsServed *metrics.CounterVec
	// Deregistrations counts workers leaving the membership explicitly:
	// graceful drain exits and dispatch-failure MarkDead calls alike.
	Deregistrations *metrics.Counter
	// BreakerState reports each tracked worker's circuit-breaker position
	// at scrape time: 0 closed, 1 half-open, 2 open.
	BreakerState *breakerGauge
	// BreakerTrips counts breaker trips per worker: the consecutive-failure
	// threshold reached, or a half-open probe failing.
	BreakerTrips *metrics.CounterVec
}

func newClusterMetrics(c *Coordinator) *Metrics {
	sub := func(name, help string) metrics.Opts {
		return metrics.Opts{Namespace: "pp", Subsystem: "cluster", Name: name, Help: help}
	}
	return &Metrics{
		Members:      &memberGauge{coord: c},
		HeartbeatAge: &heartbeatGauge{coord: c},
		RangesDispatched: metrics.NewCounterVec(
			sub("ranges_dispatched_total", "Range dispatch attempts by worker (\"local\" = coordinator-executed)."),
			[]string{"worker"}),
		RangesRetried: metrics.NewCounterVec(
			sub("ranges_retried_total", "Ranges re-enqueued after a failed or short attempt, by failing worker."),
			[]string{"worker"}),
		RangesOrphaned: metrics.NewCounterVec(
			sub("ranges_orphaned_total", "Queued ranges rerouted because their worker died or drained."),
			[]string{"worker"}),
		CellsRouted: metrics.NewCounterVec(
			sub("cells_routed_total", "Cells enqueued by rendezvous-routed worker — the routing distribution."),
			[]string{"worker"}),
		CellsServed: metrics.NewCounterVec(
			sub("cells_served_total", "Cells first delivered by each worker (retry duplicates excluded)."),
			[]string{"worker"}),
		Deregistrations: metrics.NewCounter(
			sub("deregistrations_total", "Workers removed from membership (graceful exits and dispatch failures).")),
		BreakerState: &breakerGauge{coord: c},
		BreakerTrips: metrics.NewCounterVec(
			sub("breaker_trips_total", "Circuit-breaker trips per worker (failure threshold or failed probe)."),
			[]string{"worker"}),
	}
}

// Metrics returns the coordinator's instrumentation.
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Collectors returns every collector of the set, for registration.
func (m *Metrics) Collectors() []metrics.Collector {
	return []metrics.Collector{
		m.Members, m.HeartbeatAge,
		m.RangesDispatched, m.RangesRetried, m.RangesOrphaned,
		m.CellsRouted, m.CellsServed, m.Deregistrations,
		m.BreakerState, m.BreakerTrips,
	}
}

// Register registers the whole set into reg.
func (m *Metrics) Register(reg *metrics.Registry) {
	reg.MustRegister(m.Collectors()...)
}

// memberGauge gathers pp_cluster_members{state}: the member count by
// lifecycle state, read from the live membership (lease expiry applied) at
// scrape time.
type memberGauge struct{ coord *Coordinator }

func (g *memberGauge) Family() metrics.Family {
	counts := map[WorkerState]int{StateActive: 0, StateDraining: 0}
	for _, w := range g.coord.Members() {
		counts[w.State]++
	}
	states := make([]WorkerState, 0, len(counts))
	for s := range counts {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	f := metrics.Family{
		Name: "pp_cluster_members",
		Help: "Registered workers by state, lease expiry applied.",
		Type: "gauge",
	}
	for _, s := range states {
		f.Samples = append(f.Samples, metrics.Sample{
			Labels: []metrics.Label{{Name: "state", Value: string(s)}},
			Value:  float64(counts[s]),
		})
	}
	return f
}

// breakerGauge gathers pp_cluster_breaker_state{worker}: each tracked
// circuit breaker's position (0 closed, 1 half-open, 2 open) from a live
// snapshot at scrape time, sorted by worker for stable exposition.
type breakerGauge struct{ coord *Coordinator }

func (g *breakerGauge) Family() metrics.Family {
	snap := g.coord.breakers.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i].Key < snap[j].Key })
	f := metrics.Family{
		Name: "pp_cluster_breaker_state",
		Help: "Per-worker circuit-breaker state: 0 closed, 1 half-open, 2 open.",
		Type: "gauge",
	}
	for _, s := range snap {
		f.Samples = append(f.Samples, metrics.Sample{
			Labels: []metrics.Label{{Name: "worker", Value: s.Key}},
			Value:  float64(s.State),
		})
	}
	return f
}

// heartbeatGauge gathers pp_cluster_heartbeat_age_seconds{worker}: how
// stale each unexpired worker's lease is at scrape time.
type heartbeatGauge struct{ coord *Coordinator }

func (g *heartbeatGauge) Family() metrics.Family {
	now := g.coord.now()
	f := metrics.Family{
		Name: "pp_cluster_heartbeat_age_seconds",
		Help: "Seconds since each worker's last registration or heartbeat.",
		Type: "gauge",
	}
	for _, w := range g.coord.Members() {
		f.Samples = append(f.Samples, metrics.Sample{
			Labels: []metrics.Label{{Name: "worker", Value: w.ID}},
			Value:  now.Sub(w.LastSeen).Seconds(),
		})
	}
	return f
}
