package cluster

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sweep"
)

// fakeClock drives the coordinator's lazy lease expiry in tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testCoordinator(clk *fakeClock) *Coordinator {
	return NewCoordinator(CoordinatorOptions{TTL: 10 * time.Second, Now: clk.now})
}

func TestMembershipLifecycle(t *testing.T) {
	clk := newFakeClock()
	c := testCoordinator(clk)

	w := c.Register("w1", "http://127.0.0.1:1")
	if w.Epoch != 1 || w.State != StateActive {
		t.Fatalf("register: %+v", w)
	}
	c.Register("w2", "http://127.0.0.1:2")
	if got := len(c.Live()); got != 2 {
		t.Fatalf("live: %d, want 2", got)
	}

	// Heartbeats renew the lease.
	clk.advance(8 * time.Second)
	if _, err := c.Heartbeat("w1", false); err != nil {
		t.Fatal(err)
	}
	clk.advance(8 * time.Second) // w2's lease (no heartbeat) is now 16s old
	live := c.Live()
	if len(live) != 1 || live[0].ID != "w1" {
		t.Fatalf("after expiry: %+v", live)
	}

	// The expired worker's heartbeat is rejected — it must re-register.
	if _, err := c.Heartbeat("w2", false); err != ErrUnknownWorker {
		t.Fatalf("expired heartbeat: %v, want ErrUnknownWorker", err)
	}
	w2 := c.Register("w2", "http://127.0.0.1:2")
	if w2.Epoch != 2 {
		t.Fatalf("rejoin should bump epoch: %+v", w2)
	}

	// Drain: out of Live, still in Members, not Alive.
	if _, err := c.Heartbeat("w1", true); err != nil {
		t.Fatal(err)
	}
	if c.Alive("w1") {
		t.Error("draining worker is not alive")
	}
	if got := len(c.Live()); got != 1 {
		t.Errorf("live after drain: %d, want 1", got)
	}
	if got := len(c.Members()); got != 2 {
		t.Errorf("members after drain: %d, want 2", got)
	}

	// A draining worker that re-registers is back in rotation.
	c.Register("w1", "http://127.0.0.1:1")
	if !c.Alive("w1") {
		t.Error("re-registered worker should be active")
	}

	// Deregister removes immediately.
	c.Deregister("w1")
	if c.Alive("w1") {
		t.Error("deregistered worker is not alive")
	}
}

func TestRouteStability(t *testing.T) {
	workers := []Worker{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	hashes := []string{"h1", "h2", "h3", "h4", "h5", "h6", "h7", "h8"}

	routed := make(map[string]string)
	for _, h := range hashes {
		w, ok := route(h, workers)
		if !ok {
			t.Fatalf("route(%s) found no worker", h)
		}
		routed[h] = w.ID
	}
	// Deterministic across calls and worker orderings.
	for _, h := range hashes {
		w, _ := route(h, []Worker{{ID: "c"}, {ID: "a"}, {ID: "b"}})
		if w.ID != routed[h] {
			t.Errorf("route(%s) depends on worker order: %s vs %s", h, w.ID, routed[h])
		}
	}
	// Removing one worker only moves the hashes that were routed to it.
	for _, h := range hashes {
		w, ok := route(h, []Worker{{ID: "a"}, {ID: "c"}})
		if !ok {
			t.Fatalf("route(%s) found no survivor", h)
		}
		if routed[h] != "b" && w.ID != routed[h] {
			t.Errorf("route(%s) moved from %s to %s though %s survived", h, routed[h], w.ID, routed[h])
		}
	}
	if _, ok := route("h1", nil); ok {
		t.Error("route with no workers must report not-found")
	}
}

func TestGroupByHashAndChunk(t *testing.T) {
	spec := sweep.Spec{
		Name: "group-test",
		Protocols: []sweep.ProtocolAxis{
			{Spec: "flock:3"},
			{Spec: "flock:4"},
		},
		Kinds: []engine.Kind{engine.KindSimulate, engine.KindStable},
		Sizes: []sweep.Expr{sweep.Lit(6), sweep.Lit(7)},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Per protocol: 2 simulate sizes + 1 stable = 3 cells; 6 total.
	if len(cells) != 6 {
		t.Fatalf("grid: %d cells, want 6", len(cells))
	}
	groups, err := groupByHash(cells, EngineResolver(engine.New()))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups: %d, want 2 (one per protocol)", len(groups))
	}
	total := 0
	for _, g := range groups {
		if g.hash == "" {
			t.Error("group has empty hash")
		}
		total += len(g.cells)
		for i := 1; i < len(g.cells); i++ {
			if g.cells[i-1].Index >= g.cells[i].Index {
				t.Errorf("group cells out of order: %d then %d", g.cells[i-1].Index, g.cells[i].Index)
			}
		}
	}
	if total != 6 {
		t.Fatalf("groups cover %d cells, want 6", total)
	}

	tasks := chunk(groups, 2)
	if len(tasks) != 4 {
		t.Fatalf("chunk(2): %d tasks, want 4 (3 cells per group → 2+1)", len(tasks))
	}
	for _, task := range tasks {
		if len(task.cells) == 0 || len(task.cells) > 2 {
			t.Errorf("task has %d cells, want 1..2", len(task.cells))
		}
	}
}

// TestFamilyDispatchDistribution pins the family-affinity routing
// contract: every member of a parametric family shares one affinity group
// (keyed by the family template, not the per-member content hash), so the
// whole family routes to a single worker where each member can warm-start
// from its neighbor — while distinct families still spread across the
// cluster, and a literal (non-parametric) spec keeps its own
// content-hash group.
func TestFamilyDispatchDistribution(t *testing.T) {
	spec := sweep.Spec{
		Name: "family-routing",
		Protocols: []sweep.ProtocolAxis{
			{Spec: "flock:{N}"},
			{Spec: "binary:{N}"},
			{Spec: "majority"},
		},
		Params: []sweep.ParamRange{{From: 3, To: 7}},
		Kinds:  []engine.Kind{engine.KindStable},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 5 params × 2 parametric templates + 1 literal cell.
	if len(cells) != 11 {
		t.Fatalf("grid: %d cells, want 11", len(cells))
	}
	groups, err := groupByHash(cells, EngineResolver(engine.New()))
	if err != nil {
		t.Fatal(err)
	}
	// One group per family template plus one for the literal spec — NOT
	// one per content hash, of which the parametric members have ten.
	if len(groups) != 3 {
		t.Fatalf("groups: %d, want 3 (two families + one literal)", len(groups))
	}
	byKey := make(map[string][]sweep.Cell, len(groups))
	for _, g := range groups {
		byKey[g.hash] = append(byKey[g.hash], g.cells...)
	}
	for _, fam := range []string{"family:flock:{N}", "family:binary:{N}"} {
		members := byKey[fam]
		if len(members) != 5 {
			t.Fatalf("%s group has %d cells, want 5", fam, len(members))
		}
		for i, c := range members {
			if c.Request.Family == "" {
				t.Fatalf("%s cell %d carries no family identity", fam, i)
			}
			if i > 0 && members[i-1].Request.FamilyParam >= c.Request.FamilyParam {
				t.Fatalf("%s members out of param order: %d then %d",
					fam, members[i-1].Request.FamilyParam, c.Request.FamilyParam)
			}
		}
	}
	delete(byKey, "family:flock:{N}")
	delete(byKey, "family:binary:{N}")
	for key, rest := range byKey { // the literal group
		if len(rest) != 1 || rest[0].Request.Family != "" {
			t.Fatalf("literal group %q: %d cells, family %q", key, len(rest), rest[0].Request.Family)
		}
	}

	// Routing is per group: each family lands whole on one worker, and the
	// template choice above spreads the two families across the pair (the
	// same property integrationSpec relies on).
	workers := []Worker{{ID: "w1"}, {ID: "w2"}}
	owner := make(map[string]string, len(groups))
	for _, g := range groups {
		w, ok := route(g.hash, workers)
		if !ok {
			t.Fatalf("route(%s) found no worker", g.hash)
		}
		owner[g.hash] = w.ID
	}
	if owner["family:flock:{N}"] == owner["family:binary:{N}"] {
		t.Fatalf("both families routed to %s: distribution test needs templates that spread", owner["family:flock:{N}"])
	}
}

func TestGroupByHashProtocolFree(t *testing.T) {
	spec := sweep.Spec{
		Name:   "bounds-test",
		Params: []sweep.ParamRange{{From: 3, To: 6}},
		Kinds:  []engine.Kind{engine.KindBounds},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := groupByHash(cells, EngineResolver(engine.New()))
	if err != nil {
		t.Fatal(err)
	}
	// One group per state count: a pure bounds sweep still spreads out.
	if len(groups) != 4 {
		t.Fatalf("protocol-free groups: %d, want 4", len(groups))
	}
}
