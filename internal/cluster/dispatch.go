package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/sweep"
)

// DispatchOptions configures one fanned-out sweep.
type DispatchOptions struct {
	// Client performs the worker HTTP calls (default: a fresh client with
	// no global timeout — per-range deadlines bound each call).
	Client *http.Client
	// Resolver maps protocol references to routing hashes (default:
	// EngineResolver(LocalEngine)).
	Resolver Resolver
	// LocalEngine executes cells locally when no worker can: an empty
	// membership runs the whole sweep in-process, and a task that exhausts
	// MaxAttempts remote attempts completes on the coordinator. Required.
	LocalEngine *engine.Engine
	// LocalWorkers is the worker-pool size of a full-local run (0 =
	// GOMAXPROCS).
	LocalWorkers int
	// RangeCells caps cells per dispatched range — the retry granularity
	// (default 64).
	RangeCells int
	// RangeTimeout is the per-range deadline (default 2 minutes). When the
	// spec sets a per-cell timeout, each range's deadline additionally
	// budgets cells × timeout.
	RangeTimeout time.Duration
	// MaxAttempts bounds remote dispatch attempts per range before its
	// cells fall back to local execution (default 3).
	MaxAttempts int
	// OnCell observes every merged cell in grid-index order — the
	// deterministic stream. Calls are serialized; a slow observer
	// backpressures the dispatcher.
	OnCell func(sweep.CellResult)
	// OnDispatch observes every range handed to a worker (or to
	// LocalWorkerLabel for local execution) before it runs — the durable
	// journal's range records. Calls may be concurrent across workers.
	OnDispatch func(worker string, cells []sweep.IndexRange)
	// DiscardCells leaves Result.Cells empty (streaming consumers saw each
	// cell via OnCell).
	DiscardCells bool
	// Log receives dispatcher events (nil = discard).
	Log *slog.Logger
}

func (o DispatchOptions) withDefaults() (DispatchOptions, error) {
	if o.LocalEngine == nil {
		return o, errors.New("cluster: DispatchOptions.LocalEngine is required")
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Resolver == nil {
		o.Resolver = EngineResolver(o.LocalEngine)
	}
	if o.RangeCells <= 0 {
		o.RangeCells = 64
	}
	if o.RangeTimeout <= 0 {
		o.RangeTimeout = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Log == nil {
		o.Log = slog.New(slog.DiscardHandler)
	}
	return o, nil
}

// maxSheds bounds consecutive 503 backpressure retries of one range before
// the worker is treated as failed.
const maxSheds = 8

// maxRetryAfter clamps a worker-advertised Retry-After: a corrupt or
// hostile header must not park a range for hours.
const maxRetryAfter = 30 * time.Second

// shedError reports a worker that answered 503 (slot semaphore saturated):
// backpressure, not failure — the range retries on the same worker after
// the advertised delay.
type shedError struct{ retryAfter time.Duration }

func (e *shedError) Error() string {
	return fmt.Sprintf("worker saturated, retry after %s", e.retryAfter)
}

// Sweep fans a sweep spec out across the registered workers and returns the
// merged aggregate. Cells are partitioned by protocol content hash (cache
// affinity), dispatched as ranges with per-range deadlines, and retried on
// survivors when a worker fails, drains or goes silent; when no live worker
// remains the remaining cells execute locally. OnCell observes the merged
// cells in grid-index order, and the final Result is the one the
// single-process executor would have produced for the same spec.
func (c *Coordinator) Sweep(ctx context.Context, spec sweep.Spec, opts DispatchOptions) (*sweep.Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	live := c.Routable()
	if len(live) == 0 {
		// Degraded mode: no workers registered — the coordinator is just a
		// single-process executor. A collector-less merger still reorders
		// the stream, so OnCell sees grid order in this mode too.
		opts.Log.Info("cluster sweep: no live workers, running locally",
			"sweep", spec.Name, "cells", len(cells))
		if opts.OnDispatch != nil {
			opts.OnDispatch(LocalWorkerLabel, sweep.Ranges(indicesOf(cells)))
		}
		reorder := sweep.NewMerger(cells, nil, opts.OnCell)
		return sweep.Run(ctx, opts.LocalEngine, spec, sweep.RunOptions{
			Workers:      opts.LocalWorkers,
			OnCell:       func(cr sweep.CellResult) { reorder.Add(cr) },
			DiscardCells: opts.DiscardCells,
		})
	}
	groups, err := groupByHash(cells, opts.Resolver)
	if err != nil {
		return nil, err
	}
	tasks := chunk(groups, opts.RangeCells)
	opts.Log.Info("cluster sweep: dispatching",
		"sweep", spec.Name, "cells", len(cells), "protocols", len(groups),
		"ranges", len(tasks), "workers", len(live))

	start := time.Now()
	col := sweep.NewCollector(spec.Name, len(cells), len(live), opts.DiscardCells)
	m := sweep.NewMerger(cells, col, opts.OnCell)
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	d := &dispatcher{
		ctx:     tctx,
		coord:   c,
		opts:    opts,
		spec:    spec,
		m:       m,
		queues:  make(map[string][]*task),
		info:    make(map[string]Worker),
		driving: make(map[string]bool),
	}
	d.cond = sync.NewCond(&d.mu)
	d.mu.Lock()
	for _, t := range tasks {
		d.enqueueLocked(t)
	}
	d.mu.Unlock()

	select {
	case <-m.Done():
	case <-ctx.Done():
	}
	d.mu.Lock()
	d.stop = true
	d.cond.Broadcast()
	d.mu.Unlock()
	cancel()
	d.wg.Wait()

	res := col.Finish(time.Since(start))
	if err := ctx.Err(); err != nil && res.Completed < res.TotalCells {
		res.Cancelled = true
		return res, err
	}
	opts.Log.Info("cluster sweep: done",
		"sweep", spec.Name, "completed", res.Completed, "failed", res.Failed,
		"wallMillis", res.WallMillis)
	return res, nil
}

// dispatcher is the scheduler state of one fanned-out sweep: per-worker
// task queues drained by one driver goroutine per worker, plus a local
// queue for tasks no worker can take.
type dispatcher struct {
	ctx   context.Context
	coord *Coordinator
	opts  DispatchOptions
	spec  sweep.Spec
	m     *sweep.Merger
	wg    sync.WaitGroup

	mu           sync.Mutex
	cond         *sync.Cond
	queues       map[string][]*task
	info         map[string]Worker
	driving      map[string]bool
	localQ       []*task
	localDriving bool
	stop         bool
}

// enqueueLocked routes a task to its rendezvous-preferred live worker (or
// the local queue when none can take it) and makes sure a driver is
// running. Callers hold d.mu.
func (d *dispatcher) enqueueLocked(t *task) {
	if d.stop {
		return
	}
	w, ok := Worker{}, false
	if t.attempts < d.opts.MaxAttempts {
		w, ok = route(t.hash, d.coord.Routable())
	}
	routed := LocalWorkerLabel
	if ok {
		routed = w.ID
	}
	d.coord.metrics.CellsRouted.WithLabelValues(routed).Add(float64(len(t.cells)))
	if !ok {
		d.localQ = append(d.localQ, t)
		if !d.localDriving {
			d.localDriving = true
			d.wg.Add(1)
			go d.driveLocal()
		}
	} else {
		d.info[w.ID] = w
		d.queues[w.ID] = append(d.queues[w.ID], t)
		if !d.driving[w.ID] {
			d.driving[w.ID] = true
			d.wg.Add(1)
			go d.drive(w.ID)
		}
	}
	d.cond.Broadcast()
}

// drive serially executes one worker's queue until the sweep completes, the
// worker dies or drains (its queue reroutes to survivors), or the context
// ends.
func (d *dispatcher) drive(id string) {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for {
			if d.stop {
				d.driving[id] = false
				d.mu.Unlock()
				return
			}
			if !d.coord.Dispatchable(id) {
				// Died, draining, or breaker no longer admitting traffic:
				// hand the queue to survivors.
				orphans := d.queues[id]
				delete(d.queues, id)
				d.driving[id] = false
				d.coord.metrics.RangesOrphaned.WithLabelValues(id).Add(float64(len(orphans)))
				for _, t := range orphans {
					d.enqueueLocked(t)
				}
				d.mu.Unlock()
				return
			}
			if len(d.queues[id]) > 0 {
				break
			}
			d.cond.Wait()
		}
		t := d.queues[id][0]
		d.queues[id] = d.queues[id][1:]
		w := d.info[id]
		d.mu.Unlock()

		d.coord.metrics.RangesDispatched.WithLabelValues(id).Inc()
		// If the worker's breaker sat open past its backoff, this dispatch is
		// its half-open probe: no other range routes there until it resolves.
		d.coord.breakers.Dispatching(id)
		served, missing, err := d.runTask(w, t)
		var shed *shedError
		switch {
		case len(missing) == 0:
			// Every cell of the range was delivered and merged. A stream-tail
			// error after the last cell — typically sweep completion
			// cancelling the read before the summary row — doesn't retract
			// the work, and there is nothing left to retry.
			d.coord.breakers.Success(id)
			d.coord.recordRange(id, served, true)
		case errors.As(err, &shed):
			// Backpressure: requeue at the front and wait out Retry-After.
			t.sheds++
			if t.sheds > maxSheds {
				d.failTask(id, t, t.cells, errors.New("cluster: worker shed the range repeatedly"))
				continue
			}
			d.opts.Log.Info("cluster sweep: worker saturated, backing off",
				"worker", id, "retryAfter", shed.retryAfter)
			select {
			case <-time.After(shed.retryAfter):
			case <-d.ctx.Done():
			}
			d.mu.Lock()
			d.queues[id] = append([]*task{t}, d.queues[id]...)
			d.mu.Unlock()
		case d.ctx.Err() != nil:
			d.mu.Lock()
			d.driving[id] = false
			d.mu.Unlock()
			return
		case err == nil:
			// Clean stream, cells missing (worker-side cancellation):
			// retry just the gap, same routing rules.
			d.coord.recordRange(id, served, false)
			d.opts.Log.Warn("cluster sweep: range returned short",
				"worker", id, "missing", len(missing))
			d.requeue(id, t, missing)
		default:
			d.coord.recordRange(id, served, false)
			d.failTask(id, t, missing, err)
		}
	}
}

// failTask records the failure against the worker's circuit breaker, marks
// it dead, and reroutes the range's unfinished cells to survivors. Breaker
// state outlives the membership record: a worker that rejoins after every
// failure accumulates the streak anyway, trips, and stays unroutable for
// the backoff window even while registered.
func (d *dispatcher) failTask(id string, t *task, missing []sweep.Cell, err error) {
	d.opts.Log.Warn("cluster sweep: range failed, retrying on survivors",
		"worker", id, "cells", len(missing), "attempt", t.attempts+1, "error", err)
	if d.coord.breakers.Failure(id) {
		d.coord.metrics.BreakerTrips.WithLabelValues(id).Inc()
		d.opts.Log.Warn("cluster sweep: worker breaker tripped", "worker", id)
	}
	d.coord.MarkDead(id)
	d.requeue(id, t, missing)
}

// requeue re-enqueues the unfinished cells of a task as a fresh range with
// one more attempt on the clock, counting the retry against the worker
// whose attempt fell short.
func (d *dispatcher) requeue(id string, t *task, missing []sweep.Cell) {
	if len(missing) == 0 {
		return
	}
	d.coord.metrics.RangesRetried.WithLabelValues(id).Inc()
	nt := &task{hash: t.hash, cells: missing, attempts: t.attempts + 1}
	d.mu.Lock()
	d.enqueueLocked(nt)
	d.mu.Unlock()
}

// driveLocal executes the local queue on the coordinator's own engine —
// the completion guarantee when no worker can take a range.
func (d *dispatcher) driveLocal() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for {
			if d.stop {
				d.localDriving = false
				d.mu.Unlock()
				return
			}
			if len(d.localQ) > 0 {
				break
			}
			d.cond.Wait()
		}
		t := d.localQ[0]
		d.localQ = d.localQ[1:]
		d.mu.Unlock()

		d.coord.metrics.RangesDispatched.WithLabelValues(LocalWorkerLabel).Inc()
		d.opts.Log.Info("cluster sweep: executing range locally", "cells", len(t.cells))
		if d.opts.OnDispatch != nil {
			d.opts.OnDispatch(LocalWorkerLabel, sweep.Ranges(t.indices()))
		}
		for _, c := range t.cells {
			if d.ctx.Err() != nil {
				break
			}
			d.m.Add(sweep.RunCell(d.ctx, d.opts.LocalEngine, d.spec, c))
		}
	}
}

// rangeDeadline budgets one range: the flat per-range deadline, plus the
// spec's per-cell timeout for every cell when one is set.
func (d *dispatcher) rangeDeadline(t *task) time.Duration {
	dl := d.opts.RangeTimeout
	if ms := d.spec.Options.TimeoutMillis; ms > 0 {
		dl += time.Duration(ms*int64(len(t.cells))) * time.Millisecond
	}
	return dl
}

// runTask POSTs one range to a worker as a cells-selected sub-spec of the
// sweep and forwards its streamed rows into the merger. It returns how many
// previously-unseen cells the worker delivered and which of the range's
// cells remain undelivered.
func (d *dispatcher) runTask(w Worker, t *task) (served int, missing []sweep.Cell, err error) {
	sub := d.spec
	sub.Cells = sweep.Ranges(t.indices())
	if d.opts.OnDispatch != nil {
		d.opts.OnDispatch(w.ID, sub.Cells)
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return 0, t.cells, fmt.Errorf("marshalling sub-spec: %w", err)
	}
	ctx, cancel := context.WithTimeout(d.ctx, d.rangeDeadline(t))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return 0, t.cells, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.opts.Client.Do(req)
	if err != nil {
		return 0, t.cells, err
	}
	defer resp.Body.Close()
	if ferr := faultinject.Hit(faultinject.PointWorkerResponse); ferr != nil {
		return 0, t.cells, ferr
	}
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
		// 503 = slots saturated, 429 = the worker's per-client rate limiter:
		// both are backpressure with an honest Retry-After, not a fault —
		// wait it out and retry the same worker.
		return 0, t.cells, &shedError{retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return 0, t.cells, fmt.Errorf("worker %s: status %d: %s", w.ID, resp.StatusCode, bytes.TrimSpace(msg))
	}

	got := make(map[int]bool, len(t.cells))
	sawSummary := false
	dec := json.NewDecoder(resp.Body)
	for {
		var row sweep.StreamRow
		if derr := dec.Decode(&row); derr != nil {
			if derr == io.EOF {
				break
			}
			err = fmt.Errorf("worker %s: reading stream: %w", w.ID, derr)
			break
		}
		switch row.Type {
		case "cell":
			if row.Cell != nil {
				got[row.Cell.Index] = true
				if d.m.Add(*row.Cell) {
					served++
				}
			}
		case "summary":
			sawSummary = true
		case "error":
			err = fmt.Errorf("worker %s: %s", w.ID, row.Error)
		}
	}
	for _, c := range t.cells {
		if !got[c.Index] {
			missing = append(missing, c)
		}
	}
	if err == nil && !sawSummary && len(missing) > 0 {
		err = fmt.Errorf("worker %s: stream truncated (%d cells missing)", w.ID, len(missing))
	}
	return served, missing, err
}

// parseRetryAfter turns a worker's Retry-After header into a bounded
// backoff: default one second, clamped to maxRetryAfter.
func parseRetryAfter(s string) time.Duration {
	retry := time.Second
	if s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
	}
	return min(retry, maxRetryAfter)
}

// indicesOf lists the grid indices of the expanded cells, for the
// degraded-mode dispatch record.
func indicesOf(cells []sweep.Cell) []int {
	out := make([]int, len(cells))
	for i, c := range cells {
		out[i] = c.Index
	}
	return out
}
