package cluster_test

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestLeaseExpiryRacesRangeCompletion: a worker's lease expires while its
// range is still streaming. The dispatcher must treat the silence as
// death for routing (the rest of the grid reroutes) without retracting or
// double-counting the cells the expired worker's in-flight response
// delivers — the merged stream stays byte-identical to the
// single-process run.
func TestLeaseExpiryRacesRangeCompletion(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	// TTL far shorter than the injected delay, so the first range is
	// guaranteed in flight when the lease lapses.
	ttl := 200 * time.Millisecond
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{TTL: ttl})
	var delayed atomic.Bool
	stall := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && delayed.CompareAndSwap(false, true) {
				// Sit on the first range until well past lease expiry, then
				// serve it in full: completion racing expiry.
				time.Sleep(3 * ttl)
			}
			inner.ServeHTTP(w, r)
		})
	}
	startWorker(t, coord, "w1", stall)

	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)

	if !delayed.Load() {
		t.Fatal("stall never fired")
	}
	// No heartbeats arrived, so the lease lapsed and the worker is gone.
	if coord.Alive("w1") {
		t.Error("worker outlived its lease without heartbeating")
	}
}

// TestReregisterNewEpochWhileRangeInFlight: a worker re-registers (new
// epoch — the rejoin path after a coordinator restart or lease blip)
// while a range dispatched under its old epoch is still streaming. The
// old range's cells merge normally, the worker keeps serving under the
// new epoch, and the stream equals the single-process run.
func TestReregisterNewEpochWhileRangeInFlight(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	var rejoined atomic.Bool
	var url atomic.Value
	rejoin := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && rejoined.CompareAndSwap(false, true) {
				// Mid-flight of the first range: the worker re-registers,
				// bumping its epoch while this very response keeps streaming.
				coord.Register("w1", url.Load().(string))
			}
			inner.ServeHTTP(w, r)
		})
	}
	srv := startWorker(t, coord, "w1", rejoin)
	url.Store(srv.URL)
	before := coord.Members()[0].Epoch

	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)

	if !rejoined.Load() {
		t.Fatal("re-registration never fired")
	}
	members := coord.Members()
	if len(members) != 1 || members[0].Epoch != before+1 {
		t.Fatalf("worker epoch after rejoin: %+v, want epoch %d", members, before+1)
	}
	if !coord.Alive("w1") {
		t.Error("rejoined worker is not live")
	}
}
