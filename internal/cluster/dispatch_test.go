package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// integrationSpec is a 60-cell grid over three family templates, so the
// rendezvous router has real affinity groups to spread across workers.
func integrationSpec() sweep.Spec {
	// Three family templates: with family-affinity routing every member of
	// one template shares a routing group, so spreading across workers (and
	// exercising retry/breaker paths on more than one worker) needs several
	// distinct families, not several parameters of one. These three were
	// picked so rendezvous routing gives every worker at least one group
	// under both membership sets the integration tests use ({w1,w2} and
	// {bad,good}).
	return sweep.Spec{
		Name: "cluster-test",
		Protocols: []sweep.ProtocolAxis{
			{Spec: "flock:{N}"},
			{Spec: "binary:{N}"},
			{Spec: "mod:{N}:0"},
		},
		Params:    []sweep.ParamRange{{From: 3, To: 6}},
		Kinds:     []engine.Kind{engine.KindSimulate, engine.KindVerify, engine.KindStable},
		Sizes:     []sweep.Expr{sweep.Lit(6), sweep.Lit(7)},
		Predicate: &sweep.PredicateTemplate{Kind: "counting", Threshold: sweep.ParamExpr(0, 0)},
		Options:   sweep.Options{Seed: 11, ExactOracle: true},
	}
}

// singleProcessReference runs the spec in one process and returns its
// canonical cell lines (index order) and canonical summary line.
func singleProcessReference(t *testing.T, spec sweep.Spec) ([]string, string) {
	t.Helper()
	var cells []sweep.CellResult
	res, err := sweep.Run(context.Background(), engine.New(), spec, sweep.RunOptions{
		Workers: 2,
		OnCell:  func(cr sweep.CellResult) { cells = append(cells, sweep.CanonicalCell(cr)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Index < cells[j].Index })
	return canonLines(t, cells), canonSummary(t, res)
}

func canonLines(t *testing.T, cells []sweep.CellResult) []string {
	t.Helper()
	out := make([]string, len(cells))
	for i, c := range cells {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

func canonSummary(t *testing.T, res *sweep.Result) string {
	t.Helper()
	b, err := json.Marshal(sweep.CanonicalResult(res))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// startWorker boots an in-process worker (the real serve handler on a real
// HTTP server) and registers it with the coordinator. wrap optionally
// intercepts the handler (fault injection).
func startWorker(t *testing.T, coord *cluster.Coordinator, id string, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	var h http.Handler = serve.NewHandler(engine.New(), serve.Options{})
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	coord.Register(id, srv.URL)
	return srv
}

// dispatchCanonical fans the spec out via the coordinator and returns the
// canonical cell lines in stream order plus the canonical summary.
func dispatchCanonical(t *testing.T, coord *cluster.Coordinator, spec sweep.Spec, opts cluster.DispatchOptions) ([]string, string) {
	t.Helper()
	var cells []sweep.CellResult
	opts.LocalEngine = engine.New()
	opts.OnCell = func(cr sweep.CellResult) { cells = append(cells, sweep.CanonicalCell(cr)) }
	res, err := coord.Sweep(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Index >= cells[i].Index {
			t.Fatalf("stream out of order: index %d then %d", cells[i-1].Index, cells[i].Index)
		}
	}
	return canonLines(t, cells), canonSummary(t, res)
}

func assertEqualRuns(t *testing.T, wantCells []string, wantSummary string, gotCells []string, gotSummary string) {
	t.Helper()
	if len(gotCells) != len(wantCells) {
		t.Fatalf("cell count: got %d, want %d", len(gotCells), len(wantCells))
	}
	for i := range wantCells {
		if gotCells[i] != wantCells[i] {
			t.Errorf("cell %d differs:\n got: %s\nwant: %s", i, gotCells[i], wantCells[i])
		}
	}
	if gotSummary != wantSummary {
		t.Errorf("summary differs:\n got: %s\nwant: %s", gotSummary, wantSummary)
	}
}

// TestDispatchEqualsSingleProcess: a sweep fanned across two live workers
// streams the same canonical cells in the same order and merges to the same
// canonical summary as the single-process executor.
func TestDispatchEqualsSingleProcess(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	startWorker(t, coord, "w1", nil)
	startWorker(t, coord, "w2", nil)

	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 3})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)

	// Both workers stayed alive and between them served the whole grid.
	served := 0
	for _, w := range coord.Members() {
		served += w.CellsServed
	}
	if served != len(wantCells) {
		t.Errorf("workers served %d cells, want %d", served, len(wantCells))
	}
}

// abortAfter kills the response stream (connection abort, not a clean
// close) after n NDJSON rows — a worker crashing mid-range.
type abortAfter struct {
	http.ResponseWriter
	rows, n int
}

func (a *abortAfter) Write(p []byte) (int, error) {
	if a.rows >= a.n {
		panic(http.ErrAbortHandler)
	}
	a.rows += bytes.Count(p, []byte("\n"))
	return a.ResponseWriter.Write(p)
}

func (a *abortAfter) Unwrap() http.ResponseWriter { return a.ResponseWriter }

// TestDispatchWorkerDeathMidSweep is the failure drill: one worker dies
// after streaming 2 cells of its first range. The dispatcher must mark it
// dead, retry the undelivered cells on the survivor, and still produce a
// stream and summary byte-identical to the single-process run (the 2 cells
// the dying worker already delivered are deduped, not re-executed).
func TestDispatchWorkerDeathMidSweep(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	var died atomic.Bool // the first worker to receive a range dies, once
	killer := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && died.CompareAndSwap(false, true) {
				w = &abortAfter{ResponseWriter: w, n: 2}
			}
			inner.ServeHTTP(w, r)
		})
	}
	startWorker(t, coord, "w1", killer)
	startWorker(t, coord, "w2", killer)

	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)

	if !died.Load() {
		t.Fatal("fault injection never fired")
	}
	// Exactly one worker was marked dead; the survivor carried the rest.
	members := coord.Members()
	if len(members) != 1 {
		t.Fatalf("members after death: %d, want 1 survivor", len(members))
	}
	if members[0].CellsServed == 0 {
		t.Error("survivor served no cells")
	}
}

// TestDispatchNoWorkersRunsLocally: an empty membership degrades to the
// local executor, still streaming in grid order with an equal canonical
// result.
func TestDispatchNoWorkersRunsLocally(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{LocalWorkers: 2})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)
}

// TestDispatchShedBackpressure: a worker that answers 503 + Retry-After is
// not dead — the dispatcher waits out the delay and retries the same
// worker, which then serves the range.
func TestDispatchShedBackpressure(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	var sheds atomic.Int64
	shedOnce := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && sheds.Add(1) == 1 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	startWorker(t, coord, "w1", shedOnce)

	start := time.Now()
	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 8})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)

	if sheds.Load() < 2 {
		t.Fatalf("worker saw %d sweep requests, want the shed one plus a retry", sheds.Load())
	}
	if time.Since(start) < time.Second {
		t.Error("dispatcher did not wait out Retry-After")
	}
	// The shed worker must still be a live member — 503 is backpressure.
	if !coord.Alive("w1") {
		t.Error("shed worker was marked dead")
	}
}
