// Package cluster turns the single-process sweep executor into a
// horizontally scalable system: a coordinator/worker mode layered on the
// existing /v1/analyze + /v1/sweep HTTP contract.
//
// Workers are ordinary ppserve processes that register with a coordinator
// and maintain heartbeat membership (join, lease renewal, drain, rejoin —
// the Agent in this package is the worker-side client). The coordinator
// expands a sweep spec exactly as the local executor would, partitions the
// grid into per-protocol cell ranges routed by protocol content hash (so
// each worker's artifact cache stays hot for its slice), dispatches ranges
// over POST /v1/sweep with per-range deadlines, retries cells from failed
// or drained workers on survivors (falling back to local execution when no
// worker remains), and merges the returned rows into a stream ordered by
// grid index — deterministic, and cell-for-cell identical to the
// single-process executor on the same spec.
//
// Cell indices are the resumable IDs of the whole scheme: expansion assigns
// them identically on every node (sweep.Spec.Cells selects a slice without
// renumbering), per-cell seeds derive from them, and the merger dedups on
// them, so a range retried after a mid-stream worker failure re-executes
// exactly the missing cells.
package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/govern"
)

// DefaultTTL is the worker lease: a worker whose last heartbeat is older
// than this is considered dead and its cells are retried on survivors.
const DefaultTTL = 15 * time.Second

// ErrUnknownWorker reports a heartbeat from a worker the coordinator does
// not know (lease expired, or the coordinator restarted). The worker
// responds by re-registering — the rejoin path.
var ErrUnknownWorker = errors.New("cluster: unknown worker")

// WorkerState is a registered worker's lifecycle state.
type WorkerState string

const (
	// StateActive workers receive new cell ranges.
	StateActive WorkerState = "active"
	// StateDraining workers finish their in-flight ranges but receive no
	// new ones (the SIGTERM drain path announces itself via a draining
	// heartbeat, then deregisters).
	StateDraining WorkerState = "draining"
)

// Worker is one registered ppserve worker process, as reported by the
// membership endpoints.
type Worker struct {
	// ID names the worker (unique per process; a rejoin under the same ID
	// bumps the epoch).
	ID string `json:"id"`
	// URL is the worker's advertised base URL ("http://host:port"); the
	// dispatcher POSTs sub-sweeps to URL + "/v1/sweep".
	URL string `json:"url"`
	// State is active or draining.
	State WorkerState `json:"state"`
	// Epoch counts (re-)registrations of this ID, so a rejoin is
	// distinguishable from an uninterrupted lease.
	Epoch uint64 `json:"epoch"`
	// LastSeen is the last registration or heartbeat time.
	LastSeen time.Time `json:"lastSeen"`
	// RangesOK, RangesFailed and CellsServed are dispatcher statistics:
	// completed ranges, failed range attempts, and cells this worker
	// delivered first.
	RangesOK     int `json:"rangesOK"`
	RangesFailed int `json:"rangesFailed"`
	CellsServed  int `json:"cellsServed"`
}

// CoordinatorOptions configures membership.
type CoordinatorOptions struct {
	// TTL is the worker lease duration (0 = DefaultTTL). Workers heartbeat
	// at TTL/3.
	TTL time.Duration
	// BreakerFailures is the consecutive dispatch-failure count that trips
	// a worker's circuit breaker open (0 = 3). Breaker state survives
	// re-registration: a flapping worker that rejoins after every failure
	// still trips, and stays unroutable until its backoff elapses.
	BreakerFailures int
	// BreakerBackoff is the tripped → probe-eligible delay (0 = 15s); a
	// failed half-open probe doubles it.
	BreakerBackoff time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Coordinator is the cluster's membership authority and sweep dispatcher
// state. It is passive: expiry is evaluated lazily against the lease TTL on
// every read, so no background reaper is needed and tests can drive the
// clock. All methods are safe for concurrent use.
type Coordinator struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	workers map[string]*Worker
	// epochs outlives workers: a lease expiry prunes the membership record,
	// but the next registration of the same ID must still read as a rejoin.
	epochs map[string]uint64

	// breakers holds one circuit breaker per worker ID, keyed outside the
	// membership map so state survives MarkDead + re-registration — the
	// defense against a flapping worker that rejoins after every failure.
	breakers *govern.Breakers

	// metrics instruments membership and dispatch; see metrics.go. Always
	// non-nil.
	metrics *Metrics
}

// NewCoordinator returns an empty membership.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Coordinator{
		ttl:     opts.TTL,
		now:     opts.Now,
		workers: make(map[string]*Worker),
		epochs:  make(map[string]uint64),
		breakers: govern.NewBreakers(govern.BreakerOptions{
			Failures: opts.BreakerFailures,
			Backoff:  opts.BreakerBackoff,
			Now:      opts.Now,
		}),
	}
	c.metrics = newClusterMetrics(c)
	return c
}

// Breakers exposes the per-worker circuit breakers (dispatcher feedback,
// metrics, tests).
func (c *Coordinator) Breakers() *govern.Breakers { return c.breakers }

// TTL returns the worker lease duration.
func (c *Coordinator) TTL() time.Duration { return c.ttl }

// Register adds a worker (or re-adds it after a lease expiry or restart —
// the epoch increments either way) and returns its membership record.
// Registration always yields an active worker: a draining worker that
// rejoins is back in rotation.
func (c *Coordinator) Register(id, url string) Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked()
	w := c.workers[id]
	if w == nil {
		w = &Worker{ID: id}
		c.workers[id] = w
	}
	w.URL = url
	w.State = StateActive
	c.epochs[id]++
	w.Epoch = c.epochs[id]
	w.LastSeen = c.now()
	return *w
}

// Heartbeat renews a worker's lease. drain moves the worker to
// StateDraining (no new ranges; in-flight ranges finish). An unknown or
// expired worker gets ErrUnknownWorker and must re-register.
func (c *Coordinator) Heartbeat(id string, drain bool) (Worker, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked()
	w := c.workers[id]
	if w == nil {
		return Worker{}, ErrUnknownWorker
	}
	w.LastSeen = c.now()
	if drain {
		w.State = StateDraining
	}
	return *w, nil
}

// Deregister removes a worker immediately (the graceful-exit path). Unknown
// IDs are a no-op and do not count as a deregistration.
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	_, known := c.workers[id]
	delete(c.workers, id)
	c.mu.Unlock()
	if known {
		c.metrics.Deregistrations.Inc()
	}
}

// MarkDead removes a worker that failed a dispatch — its lease is not
// waited out, so its queued cells reroute immediately.
func (c *Coordinator) MarkDead(id string) { c.Deregister(id) }

// Live returns the workers eligible for new ranges (active, lease
// unexpired), sorted by ID for deterministic routing.
func (c *Coordinator) Live() []Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked()
	out := make([]Worker, 0, len(c.workers))
	for _, w := range c.workers {
		if w.State == StateActive {
			out = append(out, *w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Members returns every unexpired worker (active and draining), sorted by
// ID — the GET /v1/cluster/members view.
func (c *Coordinator) Members() []Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked()
	out := make([]Worker, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive reports whether a worker is registered, unexpired and active —
// the dispatcher's pre-dispatch check.
func (c *Coordinator) Alive(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked()
	w := c.workers[id]
	return w != nil && w.State == StateActive
}

// Routable returns the live workers whose circuit breakers admit new work
// (closed, or open with the backoff elapsed — probe candidates). This is
// the set rendezvous routing sees: cells of a tripped worker spread to
// survivors immediately instead of queueing behind a sick node.
func (c *Coordinator) Routable() []Worker {
	live := c.Live()
	out := live[:0]
	for _, w := range live {
		if c.breakers.Routable(w.ID) {
			out = append(out, w)
		}
	}
	return out
}

// Dispatchable reports whether queued work may still be sent to a worker:
// alive, and its breaker admitting traffic. The per-worker driver reroutes
// its queue to survivors the moment this turns false.
func (c *Coordinator) Dispatchable(id string) bool {
	return c.Alive(id) && c.breakers.Routable(id)
}

// recordRange folds dispatcher statistics into the membership view.
func (c *Coordinator) recordRange(id string, cells int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return
	}
	if ok {
		w.RangesOK++
	} else {
		w.RangesFailed++
	}
	w.CellsServed += cells
	c.metrics.CellsServed.WithLabelValues(id).Add(float64(cells))
}

// pruneLocked drops workers whose lease expired. Callers hold c.mu.
func (c *Coordinator) pruneLocked() {
	deadline := c.now().Add(-c.ttl)
	for id, w := range c.workers {
		if w.LastSeen.Before(deadline) {
			delete(c.workers, id)
		}
	}
}
