package cluster

import (
	"testing"
	"time"
)

func TestJitterBackoffDeterministicPerWorker(t *testing.T) {
	d := time.Second
	if jitterBackoff("w1", 0, d) != jitterBackoff("w1", 0, d) {
		t.Fatal("same (id, step) produced different jitter")
	}
	if jitterBackoff("w1", 0, d) == jitterBackoff("w1", 1, d) {
		t.Error("consecutive steps produced identical jitter")
	}
	if jitterBackoff("w1", 0, d) == jitterBackoff("w2", 0, d) {
		t.Error("distinct workers produced identical jitter")
	}
	for _, id := range []string{"w1", "w2", "worker-long-name", ""} {
		for step := 0; step < 20; step++ {
			got := jitterBackoff(id, step, d)
			if got < d/2 || got >= 3*d/2 {
				t.Fatalf("jitter(%q, %d) = %v outside [0.5s, 1.5s)", id, step, got)
			}
		}
	}
}

func TestParseRetryAfterClamped(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"":      time.Second,
		"bogus": time.Second,
		"-3":    time.Second,
		"5":     5 * time.Second,
		"30":    maxRetryAfter,
		"9999":  maxRetryAfter,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
