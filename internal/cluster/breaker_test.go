package cluster_test

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/govern"
	"repro/internal/metrics/testutil"
)

// failSweeps wraps a worker handler so /v1/sweep answers 500 while armed —
// a worker that accepts membership but cannot execute ranges.
func failSweeps(armed *atomic.Bool, hits *atomic.Int64) func(http.Handler) http.Handler {
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				hits.Add(1)
				if armed.Load() {
					http.Error(w, "disk on fire", http.StatusInternalServerError)
					return
				}
			}
			inner.ServeHTTP(w, r)
		})
	}
}

// TestDispatchBreakerTripsFlappingWorker is the flapping drill: a worker
// that fails every range it accepts trips its breaker on the configured
// consecutive-failure threshold, and the trip outlives re-registration —
// the rejoined worker is live but unroutable, a second sweep sends it
// nothing, and both sweeps still stream canonical results identical to the
// single-process run on the survivor.
func TestDispatchBreakerTripsFlappingWorker(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{BreakerFailures: 1})
	var armed atomic.Bool
	var badHits atomic.Int64
	armed.Store(true)
	bad := startWorker(t, coord, "bad", failSweeps(&armed, &badHits))
	startWorker(t, coord, "good", nil)

	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)
	if badHits.Load() == 0 {
		t.Fatal("the failing worker was never even tried")
	}
	if got := coord.Breakers().State("bad"); got != govern.StateOpen {
		t.Fatalf("breaker after failed range = %v, want open", got)
	}
	if got := testutil.ToFloat64(coord.Metrics().BreakerTrips.WithLabelValues("bad")); got != 1 {
		t.Errorf("pp_cluster_breaker_trips_total{bad} = %v, want 1", got)
	}

	// The flap: the worker rejoins immediately. It is alive again — but the
	// open breaker keeps it out of the routable set, so a second sweep must
	// not send it a single range.
	coord.Register("bad", bad.URL)
	if !coord.Alive("bad") {
		t.Fatal("rejoined worker not alive")
	}
	if coord.Dispatchable("bad") {
		t.Fatal("open breaker but worker still dispatchable")
	}
	for _, w := range coord.Routable() {
		if w.ID == "bad" {
			t.Fatal("open breaker but worker still routable")
		}
	}

	before := badHits.Load()
	gotCells, gotSummary = dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)
	if badHits.Load() != before {
		t.Errorf("tripped worker received %d ranges, want 0", badHits.Load()-before)
	}

	// The breaker family is scrapeable: open = 2.
	want := `
		# HELP pp_cluster_breaker_state Per-worker circuit-breaker state: 0 closed, 1 half-open, 2 open.
		# TYPE pp_cluster_breaker_state gauge
		pp_cluster_breaker_state{worker="bad"} 2
	`
	if err := testutil.CollectAndCompare(coord.Metrics().BreakerState, strings.NewReader(want)); err != nil {
		t.Error(err)
	}
}

// TestDispatchBreakerHalfOpenProbeRecovery drives the full breaker
// lifecycle on a fake clock: trip, unroutable through the backoff window,
// probe-eligible once it elapses, and a successful half-open probe closing
// the breaker — the healed worker serves a whole sweep again.
func TestDispatchBreakerHalfOpenProbeRecovery(t *testing.T) {
	spec := integrationSpec()
	wantCells, wantSummary := singleProcessReference(t, spec)

	var mu atomic.Int64 // fake clock: seconds since epoch
	mu.Store(1000)
	now := func() time.Time { return time.Unix(mu.Load(), 0) }
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		TTL:             time.Hour, // the clock jumps must not expire leases
		BreakerFailures: 1,
		BreakerBackoff:  15 * time.Second,
		Now:             now,
	})
	var armed atomic.Bool
	var badHits atomic.Int64
	armed.Store(true)
	bad := startWorker(t, coord, "bad", failSweeps(&armed, &badHits))
	startWorker(t, coord, "good", nil)

	// Trip it, then heal the worker: the fault was transient, but the
	// breaker doesn't know that yet.
	gotCells, gotSummary := dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)
	if got := coord.Breakers().State("bad"); got != govern.StateOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	armed.Store(false)
	coord.Register("bad", bad.URL)

	// Inside the backoff window: still unroutable.
	if coord.Dispatchable("bad") {
		t.Fatal("dispatchable before the backoff elapsed")
	}

	// Past the backoff: probe-eligible. Leave the healed worker alone in
	// the membership so the probe provably lands on it.
	mu.Add(16)
	coord.Deregister("good")
	if !coord.Dispatchable("bad") {
		t.Fatal("not dispatchable after the backoff elapsed")
	}
	before := badHits.Load()
	gotCells, gotSummary = dispatchCanonical(t, coord, spec, cluster.DispatchOptions{RangeCells: 5})
	assertEqualRuns(t, wantCells, wantSummary, gotCells, gotSummary)
	if badHits.Load() == before {
		t.Fatal("probe-eligible worker received no ranges")
	}
	if got := coord.Breakers().State("bad"); got != govern.StateClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if !coord.Alive("bad") {
		t.Error("recovered worker lost its membership")
	}
}
