package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/faultinject"
)

// Wire types of the membership endpoints.

// RegisterRequest is the POST /v1/cluster/register body.
type RegisterRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Lease is the register/heartbeat response: the granted lease and the
// worker's registration epoch.
type Lease struct {
	TTLMillis int64  `json:"ttlMillis"`
	Epoch     uint64 `json:"epoch"`
}

// HeartbeatRequest is the POST /v1/cluster/heartbeat body. Drain announces
// a graceful shutdown: the coordinator stops routing new ranges to the
// worker while its in-flight ranges finish.
type HeartbeatRequest struct {
	ID    string `json:"id"`
	Drain bool   `json:"drain"`
}

// Agent is the worker-side membership client: it registers a worker with
// the coordinator and keeps the lease renewed, re-registering whenever the
// coordinator forgets it (lease expiry, coordinator restart) — the rejoin
// path.
type Agent struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Self is this worker's advertised base URL.
	Self string
	// ID names this worker.
	ID string
	// Client performs the HTTP calls (nil = a 5-second-timeout client;
	// membership calls are small and must not hang a drain).
	Client *http.Client
	// Interval overrides the heartbeat period (0 = a third of the lease TTL
	// granted at registration).
	Interval time.Duration
	// Log receives membership events (nil = discard).
	Log *slog.Logger
}

// Run registers with the coordinator (retrying with backoff until the
// coordinator answers) and then heartbeats until ctx ends. It returns
// ctx.Err(); callers typically follow with Deregister on a fresh context.
func (a *Agent) Run(ctx context.Context) error {
	log := a.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}

	var lease Lease
	backoff := 500 * time.Millisecond
	for step := 0; ; step++ {
		l, err := a.register(ctx, client)
		if err == nil {
			lease = l
			log.Info("cluster: registered with coordinator",
				"coordinator", a.Coordinator, "id", a.ID, "epoch", l.Epoch)
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Jitter decorrelates the retry storm of a worker fleet restarted
		// together, deterministically per worker ID so a given worker's
		// schedule is reproducible.
		wait := jitterBackoff(a.ID, step, backoff)
		log.Warn("cluster: registration failed, retrying",
			"coordinator", a.Coordinator, "error", err, "backoff", wait)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff = min(2*backoff, 10*time.Second)
	}

	interval := a.Interval
	if interval <= 0 {
		interval = time.Duration(lease.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = DefaultTTL / 3
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		status, err := a.heartbeat(ctx, client, false)
		switch {
		case err != nil && ctx.Err() != nil:
			return ctx.Err()
		case err != nil:
			log.Warn("cluster: heartbeat failed", "error", err)
		case status == http.StatusNotFound:
			// The coordinator forgot us (expired lease or restart): rejoin.
			if l, err := a.register(ctx, client); err == nil {
				log.Info("cluster: re-registered with coordinator", "epoch", l.Epoch)
			} else {
				log.Warn("cluster: re-registration failed", "error", err)
			}
		}
	}
}

// Deregister announces a graceful exit: a draining heartbeat (stop routing
// to me) followed by deregistration (forget me). Safe to call with a fresh
// context after Run returned.
func (a *Agent) Deregister(ctx context.Context) error {
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if _, err := a.heartbeat(ctx, client, true); err != nil {
		return err
	}
	body, _ := json.Marshal(HeartbeatRequest{ID: a.ID})
	_, err := a.post(ctx, client, "/v1/cluster/deregister", body)
	return err
}

func (a *Agent) register(ctx context.Context, client *http.Client) (Lease, error) {
	body, _ := json.Marshal(RegisterRequest{ID: a.ID, URL: a.Self})
	resp, err := a.post(ctx, client, "/v1/cluster/register", body)
	if err != nil {
		return Lease{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return Lease{}, fmt.Errorf("register: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var l Lease
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		return Lease{}, fmt.Errorf("register: decoding lease: %w", err)
	}
	return l, nil
}

// jitterBackoff spreads backoff step `step` of worker `id` into
// [0.5, 1.5) of the nominal delay. The factor is a pure function of
// (id, step) — SplitMix64 over an FNV-1a seed — so two workers retry at
// decorrelated moments while each worker's own schedule is reproducible.
func jitterBackoff(id string, step int, d time.Duration) time.Duration {
	h := fnv.New64a()
	io.WriteString(h, id)
	z := h.Sum64() + (uint64(step)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	factor := 0.5 + float64(z>>11)/(1<<53)
	return time.Duration(float64(d) * factor)
}

// heartbeat renews the lease; it returns the HTTP status so Run can tell
// "coordinator forgot us" (404 → rejoin) from transport failure.
func (a *Agent) heartbeat(ctx context.Context, client *http.Client, drain bool) (int, error) {
	if err := faultinject.Hit(faultinject.PointHeartbeat); err != nil {
		return 0, err
	}
	body, _ := json.Marshal(HeartbeatRequest{ID: a.ID, Drain: drain})
	resp, err := a.post(ctx, client, "/v1/cluster/heartbeat", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	return resp.StatusCode, nil
}

func (a *Agent) post(ctx context.Context, client *http.Client, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}
