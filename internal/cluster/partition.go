package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"

	"repro/internal/engine"
	"repro/internal/sweep"
)

// Resolver maps a protocol reference to its content hash — the routing key
// that keeps each worker's artifact cache hot for its slice of the grid.
// It is consulted once per distinct reference, not per cell.
type Resolver func(engine.ProtocolRef) (string, error)

// EngineResolver resolves references through an engine's registry and hashes
// the resolved protocol's canonical JSON form — the same hash that keys the
// engine artifact cache, so routing affinity and cache affinity coincide
// even when a registry spec and an inline protocol denote the same protocol.
func EngineResolver(eng *engine.Engine) Resolver {
	return func(ref engine.ProtocolRef) (string, error) {
		entry, err := eng.Resolve(ref)
		if err != nil {
			return "", err
		}
		return engine.Hash(entry.Protocol)
	}
}

// refKey is the memoization key of a protocol reference: cheap to compute
// per cell, stable across cells of the same reference. Family-declaring
// cells key by the family template, so every member of a parametric family
// shares one key — and therefore one affinity group — which is what lets
// the worker that owns the family warm-start each member from its
// neighbor instead of every member landing cold on a different worker.
func refKey(req engine.Request) string {
	switch {
	case req.Family != "":
		return "family:" + req.Family
	case req.Protocol.Spec != "":
		return "spec:" + req.Protocol.Spec
	case len(req.Protocol.Inline) > 0:
		sum := sha256.Sum256(req.Protocol.Inline)
		return "inline:" + hex.EncodeToString(sum[:])
	default:
		// Protocol-free bounds cells: route by state count, so a pure
		// bounds sweep still spreads across the cluster.
		return fmt.Sprintf("states:%d", req.States)
	}
}

// group is the unit of affinity: every cell of one protocol content hash,
// in ascending grid-index order.
type group struct {
	hash  string
	cells []sweep.Cell
}

// groupByHash buckets expanded cells by protocol content hash, preserving
// the grid order of first appearance (deterministic given the spec).
func groupByHash(cells []sweep.Cell, resolve Resolver) ([]group, error) {
	hashes := make(map[string]string) // refKey → content hash
	index := make(map[string]int)     // content hash → groups position
	var groups []group
	for _, c := range cells {
		key := refKey(c.Request)
		h, ok := hashes[key]
		if !ok {
			if c.Request.Family != "" || c.Request.Protocol.IsZero() {
				// Family groups route by template (their members have many
				// content hashes by design); protocol-free cells' key is
				// already content-determined. No resolution either way.
				h = key
			} else {
				var err error
				h, err = resolve(c.Request.Protocol)
				if err != nil {
					return nil, fmt.Errorf("resolving %q: %w", key, err)
				}
			}
			hashes[key] = h
		}
		gi, ok := index[h]
		if !ok {
			gi = len(groups)
			index[h] = gi
			groups = append(groups, group{hash: h})
		}
		groups[gi].cells = append(groups[gi].cells, c)
	}
	return groups, nil
}

// task is one dispatchable cell range: a slice of one group, so all its
// cells share a protocol (and therefore a preferred worker). attempts
// counts remote dispatches; past DispatchOptions.MaxAttempts the task runs
// locally instead.
type task struct {
	hash     string
	cells    []sweep.Cell
	attempts int
	// sheds counts consecutive 503 backpressure retries (reset is
	// unnecessary: a successful dispatch retires the task).
	sheds int
}

// chunk splits groups into tasks of at most rangeCells cells — the retry
// granularity: a failed range re-executes at most this many cells.
func chunk(groups []group, rangeCells int) []*task {
	var tasks []*task
	for _, g := range groups {
		for off := 0; off < len(g.cells); off += rangeCells {
			end := min(off+rangeCells, len(g.cells))
			tasks = append(tasks, &task{hash: g.hash, cells: g.cells[off:end]})
		}
	}
	return tasks
}

// indices returns the task's grid indices (ascending).
func (t *task) indices() []int {
	out := make([]int, len(t.cells))
	for i, c := range t.cells {
		out[i] = c.Index
	}
	return out
}

// route picks the worker for a protocol hash by rendezvous (highest random
// weight) hashing: each (hash, worker) pair scores independently and the
// highest score wins. Routing is stable — a membership change only moves
// the groups whose winner changed — so worker artifact caches stay hot
// across sweeps and across joins/leaves.
func route(hash string, workers []Worker) (Worker, bool) {
	var (
		best  Worker
		score uint64
		found bool
	)
	for _, w := range workers {
		s := rendezvousScore(hash, w.ID)
		if !found || s > score || (s == score && w.ID < best.ID) {
			best, score, found = w, s, true
		}
	}
	return best, found
}

// rendezvousScore hashes the (protocol hash, worker ID) pair with FNV-1a
// plus a finalizing avalanche, decorrelating workers that share a prefix.
func rendezvousScore(hash, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(hash))
	h.Write([]byte{0xff})
	h.Write([]byte(id))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
