package sim

import (
	"strings"
	"testing"

	"repro/internal/protocols"
)

func TestWriteTraceCSV(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	st, err := Run(p, p.InitialConfigN(6), Options{Seed: 9, TraceEvery: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var b strings.Builder
	if err := WriteTraceCSV(&b, p, st); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(st.Trace)+1 {
		t.Fatalf("%d lines, want %d", len(lines), len(st.Trace)+1)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "interactions" || header[len(header)-1] != "output" {
		t.Fatalf("header = %v", header)
	}
	if len(header) != p.NumStates()+2 {
		t.Fatalf("header width %d, want %d", len(header), p.NumStates()+2)
	}
	// Every data row has the same width.
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != len(header) {
			t.Fatalf("row width %d, want %d: %s", got, len(header), l)
		}
	}
}

func TestWriteTraceCSVNoTrace(t *testing.T) {
	e := protocols.Parity()
	p := e.Protocol
	st, err := Run(p, p.InitialConfigN(4), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTraceCSV(&b, p, st); err == nil {
		t.Fatal("want error when no trace was recorded")
	}
}

func TestCSVEscape(t *testing.T) {
	tests := map[string]string{
		"plain":      "plain",
		"with,comma": `"with,comma"`,
		`with"quote`: `"with""quote"`,
	}
	for in, want := range tests {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}
