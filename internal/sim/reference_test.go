package sim

// This file retains the pre-Fenwick simulation core — O(Q) linear prefix
// scans for both pair samples and a full OutputOf scan per effective
// interaction — as a differential-testing reference and as the "before"
// side of the BenchmarkSimStep* comparison, mirroring the retained naive
// explorer in reach/naive_test.go. The only deliberate divergence from the
// historical code is the early-stable trace fix (the final TracePoint is
// recorded when the oracle classifies the initial configuration), which the
// production core received in the same change; everything else, including
// the exact RNG call sequence, is kept verbatim so that exact Stats
// equality against the new core is meaningful.

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/protocol"
)

// referenceRun simulates with the retained linear-scan core.
func referenceRun(p *protocol.Protocol, c0 protocol.Config, opts Options) (Stats, error) {
	n := c0.Size()
	if n < 2 {
		return Stats{}, fmt.Errorf("%w: got %d", ErrPopulationTooSmall, n)
	}
	if c0.Dim() != p.NumStates() {
		return Stats{}, fmt.Errorf("sim: configuration dimension %d, want %d", c0.Dim(), p.NumStates())
	}
	if !c0.IsNatural() {
		return Stats{}, fmt.Errorf("sim: configuration has negative counts: %v", c0)
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1_000_000 * n
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = n
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = Silence{P: p}
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))

	c := c0.Clone()
	st := Stats{}
	var consensusStart int64 = -1
	curOutput := -1
	if b, ok := p.OutputOf(c); ok {
		curOutput, consensusStart = b, 0
	}

	record := func() {
		b, ok := p.OutputOf(c)
		if !ok {
			b = -1
		}
		st.Trace = append(st.Trace, TracePoint{
			Interactions: st.Interactions,
			Config:       c.Clone(),
			Output:       b,
			Defined:      ok,
		})
	}
	if opts.TraceEvery > 0 {
		record()
	}

	if b, ok := oracle.Classify(c); ok {
		st.Converged, st.Output = true, b
		st.ConsensusAt = 0
		st.Final = c
		if opts.TraceEvery > 0 {
			record()
		}
		return st, nil
	}

	for st.Interactions < maxSteps {
		q1 := referenceSampleState(rng, c, n, -1)
		q2 := referenceSampleState(rng, c, n-1, q1)
		ts := p.TransitionsForPair(protocol.State(q1), protocol.State(q2))
		t := ts[0]
		if len(ts) > 1 {
			t = ts[rng.IntN(len(ts))]
		}
		if d := p.Displacement(t); !d.IsZero() {
			c.AddInPlace(d)
			if opts.RecordFirings {
				st.Firings = append(st.Firings, t)
			}
			b, ok := p.OutputOf(c)
			switch {
			case !ok:
				curOutput, consensusStart = -1, -1
			case b != curOutput:
				curOutput, consensusStart = b, st.Interactions+1
			}
		}
		st.Interactions++
		if opts.TraceEvery > 0 && st.Interactions%opts.TraceEvery == 0 {
			record()
		}
		if st.Interactions&1023 == 0 && opts.Interrupt != nil {
			select {
			case <-opts.Interrupt:
				return st, ErrInterrupted
			default:
			}
		}
		if st.Interactions%checkEvery == 0 {
			if b, ok := oracle.Classify(c); ok {
				st.Converged, st.Output = true, b
				st.ConsensusAt = consensusStart
				break
			}
		}
	}
	st.ParallelTime = float64(st.Interactions) / float64(n)
	st.Final = c
	if opts.TraceEvery > 0 {
		record()
	}
	return st, nil
}

// referenceSampleState draws a state proportionally to its count in c with a
// linear prefix scan, with total weight total; exclude (≥ 0) removes one
// agent of that state from the weights.
func referenceSampleState(rng *rand.Rand, c protocol.Config, total int64, exclude int) int {
	r := rng.Int64N(total)
	for q, cnt := range c {
		if q == exclude {
			cnt--
		}
		if r < cnt {
			return q
		}
		r -= cnt
	}
	panic("sim: sampling overran configuration weights")
}
