package sim

// fenwick is a binary-indexed tree over the per-state agent counts of the
// working configuration. It is the simulator's sampling structure: drawing a
// state proportionally to its count is a single O(log Q) descent instead of
// the O(Q) prefix scan of the reference core, and firing a transition
// updates only the ≤4 touched states.
//
// The tree is 1-indexed internally (tree[0] is unused); state q lives at
// tree position q+1. All operations preserve the exact prefix-sum semantics
// of a linear scan over the counts, which is what makes the fast sampler
// bit-identical to the reference one (see find).
type fenwick struct {
	// tree is padded past the descent's reach (tree[0] unused, states live
	// at 1..dim, the padding stays zero-weighted): find starts at the
	// largest power of two ≤ dim and may step onto padded positions, so
	// with 2·start+1 slots no per-level bounds test is needed.
	tree  []int64
	dim   int
	start int
}

// newFenwick returns a tree over n states, all counts zero.
func newFenwick(n int) *fenwick {
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	return &fenwick{tree: make([]int64, 2*p2+1), dim: n, start: p2}
}

// reset rebuilds the tree from a dense count vector in O(Q) (no per-element
// add cascade), so reusing a tree across replicas costs one linear pass.
func (f *fenwick) reset(counts []int64) {
	tree := f.tree
	for i := range tree {
		tree[i] = 0
	}
	for i, c := range counts {
		tree[i+1] = c
	}
	for i := 1; i < len(tree); i++ {
		if j := i + (i & -i); j < len(tree) {
			tree[j] += tree[i]
		}
	}
}

// add adds d to the count of state q.
func (f *fenwick) add(q int, d int64) {
	for j := q + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += d
	}
}

// find returns the state selected by residue r: the smallest q with
// count(0) + … + count(q) > r. This is exactly the state a linear prefix
// scan ("for q: if r < count(q) return q; r -= count(q)") returns, so a
// find-based sampler consumes the same RNG draw and yields the same state
// as the scan-based one. The caller must ensure 0 ≤ r < total count.
func (f *fenwick) find(r int64) int {
	pos := 0
	tree := f.tree
	for pw := f.start; pw > 0; pw >>= 1 {
		if v := tree[pos+pw]; v <= r {
			pos += pw
			r -= v
		}
	}
	if pos >= f.dim {
		// Unreachable if r < total; guard mirrors the reference sampler.
		panic("sim: sampling overran configuration weights")
	}
	return pos
}

// samplePair returns the ordered pair (q1, q2) drawn by residues r1 (over
// the full weights) and r2 (over the weights with one agent of q1
// removed). It is find(r1) followed by findExcluding(r2, q1), fused: the
// three binary descents involved (r1, r2, and the speculative r2+1 the
// exclusion may need) are mutually independent chains of L1 loads, so
// interleaving them level by level hides most of the latency that running
// them back to back would serialize. The caller must ensure 0 ≤ r1 < total
// and 0 ≤ r2 < total-1.
func (f *fenwick) samplePair(r1, r2 int64) (int, int) {
	pos1, pos2, pos3 := 0, 0, 0
	s1, s2, s3 := r1, r2, r2+1
	tree := f.tree
	for pw := f.start; pw > 0; pw >>= 1 {
		if v := tree[pos1+pw]; v <= s1 {
			pos1 += pw
			s1 -= v
		}
		if v := tree[pos2+pw]; v <= s2 {
			pos2 += pw
			s2 -= v
		}
		if v := tree[pos3+pw]; v <= s3 {
			pos3 += pw
			s3 -= v
		}
	}
	// The exclusion case split of findExcluding, on precomputed descents.
	q2 := pos2
	if pos2 >= pos1 {
		q2 = pos3
	}
	if pos1 >= f.dim || q2 >= f.dim {
		panic("sim: sampling overran configuration weights")
	}
	return pos1, q2
}

// findExcluding returns the state selected by residue r when one agent of
// state `exclude` is removed from the weights — the without-replacement
// draw of the second member of an ordered pair. It is equivalent to
// (and cheaper than) decrementing the tree at exclude, calling find, and
// restoring: with P the unmodified prefix sums, the excluded-weight answer
// is the smallest q with P(q+1) > r for q < exclude and P(q+1) > r+1 for
// q ≥ exclude; so a first probe with r settles every q < exclude, and when
// it lands at or past exclude (where every prefix through exclude is ≤ r),
// a second probe with r+1 gives the answer, which then necessarily lies at
// or past exclude as well. The caller must ensure 0 ≤ r < total-1.
func (f *fenwick) findExcluding(r int64, exclude int) int {
	q := f.find(r)
	if q < exclude {
		return q
	}
	return f.find(r + 1)
}
