package sim

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols"
)

// The pinned large-Q workload of BENCH_sim.json: the product construction
// flock(10) ∧ mod(10,{1}) with Q = 11·12 = 132 ≥ 30 states and
// nondeterministic transition rows — the protocol class (boolean
// combinations of threshold and remainder protocols, as behind the
// busy-beaver constructions) whose per-interaction O(Q) costs motivated the
// Fenwick rewrite. The input sits above the flock threshold, so the
// population drifts into high state indices where the reference core's
// prefix scans are longest; CheckEvery is pushed past the budget so every
// run executes exactly benchSteps interactions whatever the oracle would
// say.
const benchSteps = 200_000

func benchWorkload(b *testing.B) (*protocol.Protocol, protocol.Config) {
	b.Helper()
	e := protocols.Product(protocols.FlockOfBirds(10), protocols.ModuloIn(10, 1), protocols.OpAnd)
	p := e.Protocol
	if p.NumStates() < 30 {
		b.Fatalf("pinned workload has %d states, want ≥ 30", p.NumStates())
	}
	return p, p.InitialConfigN(300)
}

func benchOpts(seed uint64) Options {
	return Options{Seed: seed, MaxSteps: benchSteps, CheckEvery: benchSteps + 1}
}

// BenchmarkSimStep measures the Fenwick core's single-thread interaction
// throughput on the pinned workload.
func BenchmarkSimStep(b *testing.B) {
	p, c0 := benchWorkload(b)
	r, err := NewRunner(p, c0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := r.Run(benchOpts(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if st.Interactions != benchSteps {
			b.Fatalf("ran %d interactions, want %d", st.Interactions, benchSteps)
		}
	}
	b.ReportMetric(float64(benchSteps)*float64(b.N)/b.Elapsed().Seconds(), "interactions/sec")
}

// BenchmarkSimStepReference runs the retained linear-scan core on the same
// workload — the "before" side of the comparison. The ratio of the two
// interactions/sec numbers is the single-thread speedup BENCH_sim.json
// pins.
func BenchmarkSimStepReference(b *testing.B) {
	p, c0 := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := referenceRun(p, c0, benchOpts(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if st.Interactions != benchSteps {
			b.Fatalf("ran %d interactions, want %d", st.Interactions, benchSteps)
		}
	}
	b.ReportMetric(float64(benchSteps)*float64(b.N)/b.Elapsed().Seconds(), "interactions/sec")
}

// replicaBench is the E1/E2-style convergence cell shape: many short
// replicas of one workload, where per-replica setup is a real fraction of
// the work and scratch reuse across replicas is what the executor buys.
const (
	benchReplicas     = 64
	benchReplicaSteps = 2_000
)

// BenchmarkRunReplicas measures the batch executor: one table build and one
// scratch set per worker, reused across all replicas, aggregate streamed.
func BenchmarkRunReplicas(b *testing.B) {
	p, c0 := benchWorkload(b)
	opts := Options{Seed: 1, MaxSteps: benchReplicaSteps, CheckEvery: benchReplicaSteps + 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := RunReplicas(p, c0, benchReplicas, opts, 1)
		if err != nil {
			b.Fatal(err)
		}
		if est.TotalInteractions != benchReplicas*benchReplicaSteps {
			b.Fatalf("ran %d interactions, want %d", est.TotalInteractions, benchReplicas*benchReplicaSteps)
		}
	}
	b.ReportMetric(float64(benchReplicas), "replicas/op")
}

// BenchmarkRunReplicasRebuild is the no-reuse baseline: the same replicas
// through the public Run entry point, which rebuilds tables and scratch per
// replica — what sweep convergence cells paid before the executor.
func BenchmarkRunReplicasRebuild(b *testing.B) {
	p, c0 := benchWorkload(b)
	opts := Options{Seed: 1, MaxSteps: benchReplicaSteps, CheckEvery: benchReplicaSteps + 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		for r := 0; r < benchReplicas; r++ {
			o := opts
			o.Seed = ReplicaSeed(opts.Seed, r)
			st, err := Run(p, c0, o)
			if err != nil {
				b.Fatal(err)
			}
			total += st.Interactions
		}
		if total != benchReplicas*benchReplicaSteps {
			b.Fatalf("ran %d interactions, want %d", total, benchReplicas*benchReplicaSteps)
		}
	}
	b.ReportMetric(float64(benchReplicas), "replicas/op")
}
