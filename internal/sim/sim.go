// Package sim simulates population protocols under the uniform random
// scheduler: at each step an ordered pair of distinct agents is chosen
// uniformly at random and one of the transitions for their states fires.
// This scheduler produces fair executions with probability 1 and underlies
// the paper's notion of (expected) parallel runtime, defined as the number
// of interactions divided by the number of agents.
//
// Convergence is detected through a pluggable stability Oracle; the package
// provides Silence (a configuration where no transition can change anything
// is stable with its consensus output) and callers can supply exact oracles
// such as the stable package's symbolic stable-set membership.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/protocol"
)

// Oracle decides stability of configurations. Classify returns (b, true) if
// the configuration is known to be b-stable; (0, false) means "unknown",
// not "unstable" — oracles may be incomplete but must never misclassify.
type Oracle interface {
	Classify(c protocol.Config) (b int, ok bool)
}

// Silence is the oracle that recognises silent consensus configurations: if
// no enabled transition changes the configuration and all agents agree on
// output b, the configuration is b-stable.
type Silence struct {
	P *protocol.Protocol
}

var _ Oracle = Silence{}

// Classify implements Oracle.
func (s Silence) Classify(c protocol.Config) (int, bool) {
	b, ok := s.P.OutputOf(c)
	if !ok {
		return 0, false
	}
	if !s.P.Silent(c) {
		return 0, false
	}
	return b, true
}

// FirstOf combines oracles, returning the first definite classification.
type FirstOf []Oracle

var _ Oracle = FirstOf{}

// Classify implements Oracle.
func (f FirstOf) Classify(c protocol.Config) (int, bool) {
	for _, o := range f {
		if b, ok := o.Classify(c); ok {
			return b, ok
		}
	}
	return 0, false
}

// Options configures a simulation run.
type Options struct {
	// Seed seeds the deterministic RNG (PCG). Two runs with equal seeds and
	// inputs are identical.
	Seed uint64
	// MaxSteps bounds the number of interactions; 0 means 10^6 parallel
	// time units (10^6 · n interactions).
	MaxSteps int64
	// Oracle detects stability; nil defaults to Silence.
	Oracle Oracle
	// CheckEvery is the interaction interval between oracle checks;
	// 0 means n (one parallel time unit).
	CheckEvery int64
	// TraceEvery records a configuration snapshot every TraceEvery
	// interactions; 0 disables tracing.
	TraceEvery int64
	// RecordFirings collects the indices of the non-identity transitions
	// actually fired, in order — an explicit path usable in certificates.
	RecordFirings bool
	// Interrupt, when non-nil, cancels the run cooperatively: Run aborts
	// with ErrInterrupted soon after the channel closes (checked at the
	// oracle cadence, every CheckEvery interactions).
	Interrupt <-chan struct{}
}

// TracePoint is a snapshot taken during simulation.
type TracePoint struct {
	Interactions int64
	Config       protocol.Config
	Output       int  // -1 if undefined
	Defined      bool // whether all agents agreed on an output
}

// Stats reports the outcome of one simulated execution.
type Stats struct {
	// Interactions is the number of pair interactions executed.
	Interactions int64
	// ParallelTime is Interactions divided by the number of agents.
	ParallelTime float64
	// Converged reports whether the oracle certified stability.
	Converged bool
	// Output is the stable output if Converged.
	Output int
	// ConsensusAt is the number of interactions after which the output
	// consensus that held at detection time was first established
	// (0 if never converged).
	ConsensusAt int64
	// Final is the final configuration.
	Final protocol.Config
	// Trace holds snapshots if Options.TraceEvery was set.
	Trace []TracePoint
	// Firings holds the fired non-identity transitions if
	// Options.RecordFirings was set; replaying them from the start
	// configuration reproduces Final exactly.
	Firings []int
}

// Errors returned by Run.
var (
	ErrPopulationTooSmall = errors.New("sim: population must have at least 2 agents")
	// ErrInterrupted is returned when Options.Interrupt closes mid-run.
	ErrInterrupted = errors.New("sim: interrupted")
)

// Run simulates the protocol from configuration c0 until the oracle
// certifies stability or MaxSteps interactions have happened.
func Run(p *protocol.Protocol, c0 protocol.Config, opts Options) (Stats, error) {
	n := c0.Size()
	if n < 2 {
		return Stats{}, fmt.Errorf("%w: got %d", ErrPopulationTooSmall, n)
	}
	if c0.Dim() != p.NumStates() {
		return Stats{}, fmt.Errorf("sim: configuration dimension %d, want %d", c0.Dim(), p.NumStates())
	}
	if !c0.IsNatural() {
		return Stats{}, fmt.Errorf("sim: configuration has negative counts: %v", c0)
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1_000_000 * n
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = n
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = Silence{P: p}
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))

	c := c0.Clone()
	st := Stats{}
	// Track when the current consensus run started, for ConsensusAt.
	var consensusStart int64 = -1
	curOutput := -1
	if b, ok := p.OutputOf(c); ok {
		curOutput, consensusStart = b, 0
	}

	record := func() {
		b, ok := p.OutputOf(c)
		if !ok {
			b = -1
		}
		st.Trace = append(st.Trace, TracePoint{
			Interactions: st.Interactions,
			Config:       c.Clone(),
			Output:       b,
			Defined:      ok,
		})
	}
	if opts.TraceEvery > 0 {
		record()
	}

	// Check initial stability (e.g. constant protocols are stable at IC).
	if b, ok := oracle.Classify(c); ok {
		st.Converged, st.Output = true, b
		st.ConsensusAt = 0
		st.Final = c
		return st, nil
	}

	for st.Interactions < maxSteps {
		q1 := sampleState(rng, c, n, -1)
		q2 := sampleState(rng, c, n-1, q1)
		ts := p.TransitionsForPair(protocol.State(q1), protocol.State(q2))
		t := ts[0]
		if len(ts) > 1 {
			t = ts[rng.IntN(len(ts))]
		}
		if d := p.Displacement(t); !d.IsZero() {
			c.AddInPlace(d)
			if opts.RecordFirings {
				st.Firings = append(st.Firings, t)
			}
			// Maintain consensus bookkeeping only on real changes.
			b, ok := p.OutputOf(c)
			switch {
			case !ok:
				curOutput, consensusStart = -1, -1
			case b != curOutput:
				curOutput, consensusStart = b, st.Interactions+1
			}
		}
		st.Interactions++
		if opts.TraceEvery > 0 && st.Interactions%opts.TraceEvery == 0 {
			record()
		}
		// The interrupt poll runs on its own ~1k-interaction cadence,
		// decoupled from the oracle cadence: cancellation stays prompt when
		// CheckEvery is large, and tiny populations (CheckEvery = n) don't
		// pay for a select every few interactions.
		if st.Interactions&1023 == 0 && opts.Interrupt != nil {
			select {
			case <-opts.Interrupt:
				return st, ErrInterrupted
			default:
			}
		}
		if st.Interactions%checkEvery == 0 {
			if b, ok := oracle.Classify(c); ok {
				st.Converged, st.Output = true, b
				st.ConsensusAt = consensusStart
				break
			}
		}
	}
	st.ParallelTime = float64(st.Interactions) / float64(n)
	st.Final = c
	if opts.TraceEvery > 0 {
		record()
	}
	return st, nil
}

// sampleState draws a state proportionally to its count in c, with total
// weight total; exclude (≥ 0) removes one agent of that state from the
// weights, implementing sampling of the second member of an ordered pair
// without replacement.
func sampleState(rng *rand.Rand, c protocol.Config, total int64, exclude int) int {
	r := rng.Int64N(total)
	for q, cnt := range c {
		if q == exclude {
			cnt--
		}
		if r < cnt {
			return q
		}
		r -= cnt
	}
	// Unreachable if total matches the weights; guard for safety.
	panic("sim: sampling overran configuration weights")
}
