// Package sim simulates population protocols under the uniform random
// scheduler: at each step an ordered pair of distinct agents is chosen
// uniformly at random and one of the transitions for their states fires.
// This scheduler produces fair executions with probability 1 and underlies
// the paper's notion of (expected) parallel runtime, defined as the number
// of interactions divided by the number of agents.
//
// Convergence is detected through a pluggable stability Oracle; the package
// provides Silence (a configuration where no transition can change anything
// is stable with its consensus output) and callers can supply exact oracles
// such as the stable package's symbolic stable-set membership.
//
// The interaction loop is built for throughput on large state spaces: pair
// sampling runs on a Fenwick tree over the state counts (O(log Q) per draw,
// bit-identical to a linear prefix scan for equal seeds), output consensus
// is tracked incrementally from each transition's delta support, and flat
// per-pair transition tables are precomputed once per workload. Batches of
// replicas run on RunReplicas/RunConcurrent, which reuse all per-replica
// scratch across runs; see docs/performance.md for the layout and the
// determinism contract.
package sim

import (
	"errors"

	"repro/internal/protocol"
)

// Oracle decides stability of configurations. Classify returns (b, true) if
// the configuration is known to be b-stable; (0, false) means "unknown",
// not "unstable" — oracles may be incomplete but must never misclassify.
type Oracle interface {
	Classify(c protocol.Config) (b int, ok bool)
}

// Silence is the oracle that recognises silent consensus configurations: if
// no enabled transition changes the configuration and all agents agree on
// output b, the configuration is b-stable.
type Silence struct {
	P *protocol.Protocol
}

var _ Oracle = Silence{}

// Classify implements Oracle.
func (s Silence) Classify(c protocol.Config) (int, bool) {
	b, ok := s.P.OutputOf(c)
	if !ok {
		return 0, false
	}
	if !s.P.Silent(c) {
		return 0, false
	}
	return b, true
}

// FirstOf combines oracles, returning the first definite classification.
type FirstOf []Oracle

var _ Oracle = FirstOf{}

// Classify implements Oracle.
func (f FirstOf) Classify(c protocol.Config) (int, bool) {
	for _, o := range f {
		if b, ok := o.Classify(c); ok {
			return b, ok
		}
	}
	return 0, false
}

// Options configures a simulation run.
type Options struct {
	// Seed seeds the deterministic RNG (PCG). Two runs with equal seeds and
	// inputs are identical.
	Seed uint64
	// MaxSteps bounds the number of interactions; 0 means 10^6 parallel
	// time units (10^6 · n interactions).
	MaxSteps int64
	// Oracle detects stability; nil defaults to Silence.
	Oracle Oracle
	// CheckEvery is the interaction interval between oracle checks;
	// 0 means n (one parallel time unit).
	CheckEvery int64
	// TraceEvery records a configuration snapshot every TraceEvery
	// interactions; 0 disables tracing.
	TraceEvery int64
	// RecordFirings collects the indices of the non-identity transitions
	// actually fired, in order — an explicit path usable in certificates.
	RecordFirings bool
	// Interrupt, when non-nil, cancels the run cooperatively: Run aborts
	// with ErrInterrupted soon after the channel closes (checked at the
	// oracle cadence, every CheckEvery interactions).
	Interrupt <-chan struct{}
}

// TracePoint is a snapshot taken during simulation.
type TracePoint struct {
	Interactions int64
	Config       protocol.Config
	Output       int  // -1 if undefined
	Defined      bool // whether all agents agreed on an output
}

// Stats reports the outcome of one simulated execution.
type Stats struct {
	// Interactions is the number of pair interactions executed.
	Interactions int64
	// ParallelTime is Interactions divided by the number of agents.
	ParallelTime float64
	// Converged reports whether the oracle certified stability.
	Converged bool
	// Output is the stable output if Converged.
	Output int
	// ConsensusAt is the number of interactions after which the output
	// consensus that held at detection time was first established
	// (0 if never converged).
	ConsensusAt int64
	// Final is the final configuration.
	Final protocol.Config
	// Trace holds snapshots if Options.TraceEvery was set.
	Trace []TracePoint
	// Firings holds the fired non-identity transitions if
	// Options.RecordFirings was set; replaying them from the start
	// configuration reproduces Final exactly.
	Firings []int
}

// Errors returned by Run.
var (
	ErrPopulationTooSmall = errors.New("sim: population must have at least 2 agents")
	// ErrInterrupted is returned when Options.Interrupt closes mid-run.
	ErrInterrupted = errors.New("sim: interrupted")
)

// Run simulates the protocol from configuration c0 until the oracle
// certifies stability or MaxSteps interactions have happened.
//
// Run is deterministic in opts.Seed. The implementation samples pairs
// through a Fenwick tree over the state counts (O(log Q) per interaction)
// and tracks consensus incrementally, but remains bit-identical to a linear
// prefix-scan scheduler: the differential suite in differential_test.go
// pins exact Stats equality against the retained reference core. Callers
// running many replicas of one workload should use RunReplicas or
// RunConcurrent (or a Runner directly), which reuse the per-replica scratch
// this constructor builds.
func Run(p *protocol.Protocol, c0 protocol.Config, opts Options) (Stats, error) {
	r, err := NewRunner(p, c0)
	if err != nil {
		return Stats{}, err
	}
	return r.Run(opts)
}
