package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/protocol"
)

// Estimate summarises repeated simulations of one protocol and input.
type Estimate struct {
	Runs           int
	Converged      int     // how many runs converged within budget
	Output         int     // the common stable output (-1 if runs disagreed)
	MeanParallel   float64 // mean parallel time over converged runs
	MedianParallel float64
	P95Parallel    float64
	MaxParallel    float64
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("runs=%d converged=%d output=%d parallel(mean=%.1f median=%.1f p95=%.1f max=%.1f)",
		e.Runs, e.Converged, e.Output, e.MeanParallel, e.MedianParallel, e.P95Parallel, e.MaxParallel)
}

// EstimateParallelTime runs the simulation `runs` times with distinct seeds
// derived from opts.Seed and aggregates convergence statistics. It is the
// workhorse of the parallel-time experiment (E10).
func EstimateParallelTime(p *protocol.Protocol, c0 protocol.Config, runs int, opts Options) (Estimate, error) {
	est := Estimate{Runs: runs, Output: -1}
	var times []float64
	for i := 0; i < runs; i++ {
		o := opts
		o.Seed = opts.Seed + uint64(i)*0x9e3779b9
		st, err := Run(p, c0, o)
		if err != nil {
			return est, fmt.Errorf("run %d: %w", i, err)
		}
		if !st.Converged {
			continue
		}
		est.Converged++
		times = append(times, st.ParallelTime)
		switch est.Output {
		case -1:
			est.Output = st.Output
		case st.Output:
		default:
			est.Output = -1
			return est, fmt.Errorf("sim: runs disagree on stable output")
		}
	}
	if len(times) == 0 {
		return est, nil
	}
	sort.Float64s(times)
	var sum float64
	for _, t := range times {
		sum += t
	}
	est.MeanParallel = sum / float64(len(times))
	est.MedianParallel = quantile(times, 0.5)
	est.P95Parallel = quantile(times, 0.95)
	est.MaxParallel = times[len(times)-1]
	return est, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
