package sim

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// Estimate summarises repeated simulations of one protocol and input.
type Estimate struct {
	Runs           int
	Converged      int     // how many runs converged within budget
	Output         int     // the common stable output (-1 if runs disagreed)
	MeanParallel   float64 // mean parallel time over converged runs
	MedianParallel float64
	P95Parallel    float64
	MaxParallel    float64
	// TotalInteractions is the number of interactions executed across all
	// runs (converged or not) — with the wall-clock time of the batch it
	// yields the executor's interactions/sec throughput.
	TotalInteractions int64
	// MeanInteractions is the mean convergence interaction count over the
	// converged runs (0 if none converged).
	MeanInteractions float64
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("runs=%d converged=%d output=%d parallel(mean=%.1f median=%.1f p95=%.1f max=%.1f)",
		e.Runs, e.Converged, e.Output, e.MeanParallel, e.MedianParallel, e.P95Parallel, e.MaxParallel)
}

// EstimateParallelTime runs the simulation `runs` times with distinct seeds
// derived from opts.Seed and aggregates convergence statistics. It is the
// workhorse of the parallel-time experiment (E10), and is now a single-
// worker RunReplicas: one scratch set serves all runs, and replica i uses
// seed ReplicaSeed(opts.Seed, i).
func EstimateParallelTime(p *protocol.Protocol, c0 protocol.Config, runs int, opts Options) (Estimate, error) {
	return RunReplicas(p, c0, runs, opts, 1)
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
