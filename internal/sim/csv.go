package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/protocol"
)

// WriteTraceCSV writes the trace of a run as CSV: one row per snapshot with
// the interaction count, per-state agent counts, and the consensus output
// (-1 while undefined). Suitable for plotting convergence figures.
func WriteTraceCSV(w io.Writer, p *protocol.Protocol, st Stats) error {
	if len(st.Trace) == 0 {
		return fmt.Errorf("sim: no trace recorded (set Options.TraceEvery)")
	}
	header := make([]string, 0, p.NumStates()+2)
	header = append(header, "interactions")
	for q := 0; q < p.NumStates(); q++ {
		header = append(header, csvEscape(p.StateName(protocol.State(q))))
	}
	header = append(header, "output")
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, tp := range st.Trace {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprint(tp.Interactions))
		for _, n := range tp.Config {
			row = append(row, fmt.Sprint(n))
		}
		row = append(row, fmt.Sprint(tp.Output))
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
