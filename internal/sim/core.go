package sim

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/protocol"
)

// tables holds the flat, read-only transition tables the hot loop runs on,
// precomputed once per protocol and shared across replicas and workers:
//
//   - a CSR row of transition indices per unordered state pair (the dense
//     counterpart of Protocol.TransitionsForPair, in the same order — the
//     order matters for RNG-identical tie-breaking among nondeterministic
//     transitions);
//   - a CSR delta-support list per transition (the ≤4 states a firing
//     touches, from Protocol.DeltaSupport) — identity transitions have an
//     empty row, which is also the loop's "was this interaction effective?"
//     test;
//   - the dense per-state output bit feeding the incremental consensus
//     counters.
type tables struct {
	dim      int
	pairOff  []int32
	pairTr   []int32
	supOff   []int32
	supState []int32
	supDelta []int64
	outputs  []uint8
}

// buildTables flattens the protocol's pair index and delta supports.
func buildTables(p *protocol.Protocol) *tables {
	n := p.NumStates()
	t := &tables{dim: n, outputs: make([]uint8, n)}
	for q := 0; q < n; q++ {
		t.outputs[q] = uint8(p.Output(protocol.State(q)))
	}
	numPairs := n * (n + 1) / 2
	t.pairOff = make([]int32, numPairs+1)
	// pairIndex(a,b) = b(b+1)/2 + a for a ≤ b, so iterating b outer and
	// a ≤ b inner visits pair indices consecutively.
	for b := 0; b < n; b++ {
		for a := 0; a <= b; a++ {
			row := p.TransitionsForPair(protocol.State(a), protocol.State(b))
			for _, ti := range row {
				t.pairTr = append(t.pairTr, int32(ti))
			}
			idx := b*(b+1)/2 + a
			t.pairOff[idx+1] = int32(len(t.pairTr))
		}
	}
	nt := p.NumTransitions()
	t.supOff = make([]int32, nt+1)
	for i := 0; i < nt; i++ {
		states, deltas := p.DeltaSupport(i)
		for k, q := range states {
			t.supState = append(t.supState, int32(q))
			t.supDelta = append(t.supDelta, deltas[k])
		}
		t.supOff[i+1] = int32(len(t.supState))
	}
	return t
}

// Runner executes simulations of one (protocol, initial configuration) pair
// while reusing all per-replica scratch — the transition tables, the Fenwick
// sampling tree, and the working configuration buffer — across calls. Run
// and the batch executors are built on it; callers simulating many replicas
// of one workload should reuse a Runner (or use RunReplicas / RunConcurrent,
// which do) instead of paying the table build per replica.
//
// A Runner is not safe for concurrent use; the batch executors give each
// worker its own Runner over shared read-only tables (NewRunnerShared).
type Runner struct {
	p  *protocol.Protocol
	t  *tables
	c0 protocol.Config
	n  int64

	fen *fenwick
	cfg protocol.Config
}

// NewRunner validates the pair and precomputes the flat tables.
func NewRunner(p *protocol.Protocol, c0 protocol.Config) (*Runner, error) {
	if err := validateRun(p, c0); err != nil {
		return nil, err
	}
	return newRunnerShared(p, c0, buildTables(p)), nil
}

// newRunnerShared wires a fresh per-worker scratch set over already-built
// (and already-validated) tables.
func newRunnerShared(p *protocol.Protocol, c0 protocol.Config, t *tables) *Runner {
	return &Runner{
		p:   p,
		t:   t,
		c0:  c0,
		n:   c0.Size(),
		fen: newFenwick(t.dim),
		cfg: make(protocol.Config, t.dim),
	}
}

// validateRun checks the Run preconditions (shared by every entry point).
func validateRun(p *protocol.Protocol, c0 protocol.Config) error {
	if c0.Dim() != p.NumStates() {
		return fmt.Errorf("sim: configuration dimension %d, want %d", c0.Dim(), p.NumStates())
	}
	if !c0.IsNatural() {
		return fmt.Errorf("sim: configuration has negative counts: %v", c0)
	}
	if c0.Size() < 2 {
		return fmt.Errorf("%w: got %d", ErrPopulationTooSmall, c0.Size())
	}
	return nil
}

// Run executes one replica. It is deterministic in opts.Seed and
// bit-identical to the retained reference core: equal seeds and options
// produce equal Stats — the same Interactions, Firings, Trace, consensus
// bookkeeping and Final configuration — because the Fenwick sampler consumes
// the same RNG draws and returns the same states as the reference prefix
// scan (see fenwick.find), and ties among nondeterministic transitions are
// broken through the same rng.IntN call over the same transition order.
func (r *Runner) Run(opts Options) (Stats, error) {
	n := r.n
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1_000_000 * n
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = n
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = Silence{P: r.p}
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))

	t := r.t
	c := r.cfg
	copy(c, r.c0)
	r.fen.reset(c)

	// Incremental consensus bookkeeping: pop[b] counts the populated states
	// with output b. OutputOf(c) is then a two-comparison read, and firing a
	// transition updates pop only at the ≤4 states its displacement touches
	// — the reference core's per-interaction O(Q) scan disappears.
	var pop [2]int
	for q, cnt := range c {
		if cnt > 0 {
			pop[t.outputs[q]]++
		}
	}
	outputOf := func() (int, bool) {
		switch {
		case pop[0] > 0 && pop[1] == 0:
			return 0, true
		case pop[1] > 0 && pop[0] == 0:
			return 1, true
		default:
			return 0, false
		}
	}

	st := Stats{}
	// Track when the current consensus run started, for ConsensusAt.
	var consensusStart int64 = -1
	curOutput := -1
	if b, ok := outputOf(); ok {
		curOutput, consensusStart = b, 0
	}

	record := func() {
		b, ok := outputOf()
		if !ok {
			b = -1
		}
		st.Trace = append(st.Trace, TracePoint{
			Interactions: st.Interactions,
			Config:       c.Clone(),
			Output:       b,
			Defined:      ok,
		})
	}
	if opts.TraceEvery > 0 {
		record()
	}

	// Check initial stability (e.g. constant protocols are stable at IC).
	if b, ok := oracle.Classify(c); ok {
		st.Converged, st.Output = true, b
		st.ConsensusAt = 0
		st.Final = c.Clone()
		if opts.TraceEvery > 0 {
			// Mirror the loop's exit path: the final configuration is
			// recorded even when the run ends before its first interaction.
			record()
		}
		return st, nil
	}

	for st.Interactions < maxSteps {
		// Sample an ordered pair of distinct agents: the second draw
		// excludes one agent of the first state — the same weights the
		// reference scan uses (see samplePair / findExcluding).
		q1, q2 := r.fen.samplePair(rng.Int64N(n), rng.Int64N(n-1))

		lo, hi := q1, q2
		if lo > hi {
			lo, hi = hi, lo
		}
		pi := hi*(hi+1)/2 + lo
		off, end := t.pairOff[pi], t.pairOff[pi+1]
		ti := t.pairTr[off]
		if end-off > 1 {
			ti = t.pairTr[off+int32(rng.IntN(int(end-off)))]
		}
		if so, se := t.supOff[ti], t.supOff[ti+1]; se > so {
			// Effective interaction: apply the displacement at its support,
			// maintaining the counts, the sampling tree, and pop together.
			for k := so; k < se; k++ {
				q := t.supState[k]
				d := t.supDelta[k]
				old := c[q]
				c[q] = old + d
				r.fen.add(int(q), d)
				if old == 0 {
					pop[t.outputs[q]]++
				} else if old+d == 0 {
					pop[t.outputs[q]]--
				}
			}
			if opts.RecordFirings {
				st.Firings = append(st.Firings, int(ti))
			}
			// Maintain consensus bookkeeping only on real changes.
			b, ok := outputOf()
			switch {
			case !ok:
				curOutput, consensusStart = -1, -1
			case b != curOutput:
				curOutput, consensusStart = b, st.Interactions+1
			}
		}
		st.Interactions++
		if opts.TraceEvery > 0 && st.Interactions%opts.TraceEvery == 0 {
			record()
		}
		// The interrupt poll runs on its own ~1k-interaction cadence,
		// decoupled from the oracle cadence: cancellation stays prompt when
		// CheckEvery is large, and tiny populations (CheckEvery = n) don't
		// pay for a select every few interactions.
		if st.Interactions&1023 == 0 && opts.Interrupt != nil {
			select {
			case <-opts.Interrupt:
				return st, ErrInterrupted
			default:
			}
		}
		if st.Interactions%checkEvery == 0 {
			if b, ok := oracle.Classify(c); ok {
				st.Converged, st.Output = true, b
				st.ConsensusAt = consensusStart
				break
			}
		}
	}
	st.ParallelTime = float64(st.Interactions) / float64(n)
	st.Final = c.Clone()
	if opts.TraceEvery > 0 {
		record()
	}
	return st, nil
}
