package sim

import (
	"fmt"

	"repro/internal/protocol"
)

// RunConcurrent executes `runs` independent simulations with derived seeds
// across a worker pool and returns their statistics in seed order (so the
// output is deterministic for a fixed base seed regardless of scheduling).
// Replica i runs with seed ReplicaSeed(opts.Seed, i) — the same streams
// RunReplicas uses — and each worker reuses one scratch set (tables are
// built once for the whole batch; see runBatch). Unlike RunReplicas, the
// full Stats of every run are retained; use it when the per-run traces,
// firing lists or final configurations matter, and RunReplicas when only
// the aggregate does. workers ≤ 0 selects GOMAXPROCS.
func RunConcurrent(p *protocol.Protocol, c0 protocol.Config, runs int, opts Options, workers int) ([]Stats, error) {
	// Clamped so a negative runs reaches runBatch's validation, not make.
	results := make([]Stats, max(runs, 0))
	errs := make([]error, max(runs, 0))
	err := runBatch(p, c0, runs, opts, workers, func(i int, st Stats, err error) {
		results[i], errs[i] = st, err
	})
	if err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", i, err)
		}
	}
	return results, nil
}
