package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/protocol"
)

// RunConcurrent executes `runs` independent simulations with derived seeds
// across a worker pool and returns their statistics in seed order (so the
// output is deterministic for a fixed base seed regardless of scheduling).
// workers ≤ 0 selects GOMAXPROCS.
func RunConcurrent(p *protocol.Protocol, c0 protocol.Config, runs int, opts Options, workers int) ([]Stats, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sim: runs must be ≥ 1, got %d", runs)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	results := make([]Stats, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				o := opts
				o.Seed = opts.Seed + uint64(i)*0x9e3779b9
				results[i], errs[i] = Run(p, c0, o)
			}
		}()
	}
	for i := 0; i < runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", i, err)
		}
	}
	return results, nil
}
