package sim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols"
)

// statsEqual asserts exact equality of every Stats field — interactions,
// convergence verdict, consensus bookkeeping, final configuration, every
// trace point, and the firing list. This is the determinism contract of the
// Fenwick core: same seed ⇒ bit-identical outcome to the reference scan.
func statsEqual(t *testing.T, label string, got, want Stats) {
	t.Helper()
	if got.Interactions != want.Interactions {
		t.Fatalf("%s: interactions %d, want %d", label, got.Interactions, want.Interactions)
	}
	if got.ParallelTime != want.ParallelTime {
		t.Fatalf("%s: parallel time %v, want %v", label, got.ParallelTime, want.ParallelTime)
	}
	if got.Converged != want.Converged || got.Output != want.Output || got.ConsensusAt != want.ConsensusAt {
		t.Fatalf("%s: verdict (%t,%d,%d), want (%t,%d,%d)", label,
			got.Converged, got.Output, got.ConsensusAt,
			want.Converged, want.Output, want.ConsensusAt)
	}
	if !got.Final.Equal(want.Final) {
		t.Fatalf("%s: final %v, want %v", label, got.Final, want.Final)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: %d trace points, want %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		g, w := got.Trace[i], want.Trace[i]
		if g.Interactions != w.Interactions || g.Output != w.Output || g.Defined != w.Defined || !g.Config.Equal(w.Config) {
			t.Fatalf("%s: trace[%d] = %+v, want %+v", label, i, g, w)
		}
	}
	if len(got.Firings) != len(want.Firings) {
		t.Fatalf("%s: %d firings, want %d", label, len(got.Firings), len(want.Firings))
	}
	for i := range want.Firings {
		if got.Firings[i] != want.Firings[i] {
			t.Fatalf("%s: firing[%d] = %d, want %d", label, i, got.Firings[i], want.Firings[i])
		}
	}
}

// randomSimProtocol builds a random single-input protocol: 2–6 states with
// random outputs, a random set of (possibly nondeterministic) transitions,
// completed with identity interactions.
func randomSimProtocol(rng *rand.Rand) *protocol.Protocol {
	k := 2 + rng.IntN(5)
	b := protocol.NewBuilder(fmt.Sprintf("random-%d", k))
	states := make([]protocol.State, k)
	for i := range states {
		states[i] = b.AddState(fmt.Sprintf("q%d", i), rng.IntN(2))
	}
	m := 1 + rng.IntN(3*k)
	for i := 0; i < m; i++ {
		b.AddTransition(
			states[rng.IntN(k)], states[rng.IntN(k)],
			states[rng.IntN(k)], states[rng.IntN(k)],
		)
	}
	b.AddInput("x", states[rng.IntN(k)])
	return b.CompleteWithIdentity().MustBuild()
}

// TestDifferentialFenwickVsReference is the central differential test of
// the simulation core: on randomized protocols, seeds, and option
// combinations (tracing, firing recording, check cadences), the Fenwick
// core must produce exactly the Stats of the retained linear-scan core.
func TestDifferentialFenwickVsReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(20260729, 1))
	for trial := 0; trial < 120; trial++ {
		p := randomSimProtocol(rng)
		n := 2 + rng.Int64N(40)
		c0 := p.InitialConfigN(n)
		opts := Options{
			Seed:     rng.Uint64(),
			MaxSteps: 1 + rng.Int64N(4000),
		}
		if rng.IntN(2) == 0 {
			opts.TraceEvery = 1 + rng.Int64N(50)
		}
		if rng.IntN(2) == 0 {
			opts.RecordFirings = true
		}
		if rng.IntN(2) == 0 {
			opts.CheckEvery = 1 + rng.Int64N(100)
		}
		want, errW := referenceRun(p, c0, opts)
		got, errG := Run(p, c0, opts)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error mismatch: ref %v, fenwick %v", trial, errW, errG)
		}
		if errW != nil {
			continue
		}
		statsEqual(t, fmt.Sprintf("trial %d (%s, n=%d)", trial, p.Name(), n), got, want)
	}
}

// TestDifferentialLargeQProduct pins the equivalence on the workload class
// the rewrite targets: a large-Q product construction (Q = 42 ≥ 30) with
// nondeterministic transition rows, run long enough to exercise the
// consensus bookkeeping through many flips.
func TestDifferentialLargeQProduct(t *testing.T) {
	e := protocols.Product(protocols.FlockOfBirds(5), protocols.ModuloIn(5, 1), protocols.OpAnd)
	p := e.Protocol
	if p.NumStates() < 30 {
		t.Fatalf("workload has %d states, want ≥ 30", p.NumStates())
	}
	for _, seed := range []uint64{1, 7, 424242} {
		c0 := p.InitialConfigN(60)
		opts := Options{Seed: seed, MaxSteps: 50_000, TraceEvery: 5000, RecordFirings: true}
		want, err := referenceRun(p, c0, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, c0, opts)
		if err != nil {
			t.Fatal(err)
		}
		statsEqual(t, fmt.Sprintf("product seed %d", seed), got, want)
	}
}

// TestRunnerScratchReuseIsClean verifies that reusing one Runner across
// replicas cannot leak state between them: interleaved replays through a
// shared Runner reproduce fresh runs exactly.
func TestRunnerScratchReuseIsClean(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	c0 := p.InitialConfigN(12)
	r, err := NewRunner(p, c0)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{3, 99, 3, 12345, 99, 3}
	for i, seed := range seeds {
		opts := Options{Seed: seed, TraceEvery: 7, RecordFirings: true}
		got, err := r.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceRun(p, c0, opts)
		if err != nil {
			t.Fatal(err)
		}
		statsEqual(t, fmt.Sprintf("reuse %d (seed %d)", i, seed), got, want)
	}
}

// TestFenwickSamplingChiSquare sanity-checks that the Fenwick sampler's
// frequencies match the counts-proportional distribution: a chi-square
// statistic over a skewed count vector must stay below the 99.9% quantile.
func TestFenwickSamplingChiSquare(t *testing.T) {
	counts := []int64{7, 1, 0, 12, 3, 0, 25, 2}
	var total int64
	for _, c := range counts {
		total += c
	}
	f := newFenwick(len(counts))
	f.reset(counts)
	rng := rand.New(rand.NewPCG(99, 0))
	const draws = 200_000
	obs := make([]int64, len(counts))
	for i := 0; i < draws; i++ {
		obs[f.find(rng.Int64N(total))]++
	}
	var chi2 float64
	cells := 0
	for q, c := range counts {
		if c == 0 {
			if obs[q] != 0 {
				t.Fatalf("sampled empty state %d (%d times)", q, obs[q])
			}
			continue
		}
		cells++
		exp := float64(draws) * float64(c) / float64(total)
		d := float64(obs[q]) - exp
		chi2 += d * d / exp
	}
	// 99.9% chi-square quantile at df = cells-1 = 5 is 20.5.
	if chi2 > 20.5 {
		t.Fatalf("chi-square %.2f exceeds the 99.9%% quantile 20.5 (obs %v)", chi2, obs)
	}
}

// TestFenwickExclusion checks the without-replacement draw: with counts
// (1,1) and one agent of state 0 removed, the sampler must always pick 1 —
// and in general must agree with the reference exclusion scan.
func TestFenwickExclusion(t *testing.T) {
	counts := []int64{1, 1, 0, 0}
	f := newFenwick(len(counts))
	f.reset(counts)
	for i := 0; i < 100; i++ {
		if got := f.findExcluding(0, 0); got != 1 {
			t.Fatalf("exclusion violated: picked %d", got)
		}
	}
	// Cross-check exclusion against the reference sampler draw by draw.
	c := protocol.Config{5, 2, 0, 9}
	f2 := newFenwick(len(c))
	f2.reset(c)
	rngA := rand.New(rand.NewPCG(5, 0))
	rngB := rand.New(rand.NewPCG(5, 0))
	for i := 0; i < 2000; i++ {
		exclude := i % len(c)
		if c[exclude] == 0 {
			exclude = 0
		}
		want := referenceSampleState(rngA, c, c.Size()-1, exclude)
		got := f2.findExcluding(rngB.Int64N(c.Size()-1), exclude)
		if got != want {
			t.Fatalf("draw %d (exclude %d): fenwick %d, reference %d", i, exclude, got, want)
		}
	}
	// The fused pair sampler must agree with the serial find +
	// findExcluding composition draw for draw.
	rng := rand.New(rand.NewPCG(17, 0))
	for i := 0; i < 2000; i++ {
		r1 := rng.Int64N(c.Size())
		r2 := rng.Int64N(c.Size() - 1)
		w1 := f2.find(r1)
		w2 := f2.findExcluding(r2, w1)
		g1, g2 := f2.samplePair(r1, r2)
		if g1 != w1 || g2 != w2 {
			t.Fatalf("draw %d: samplePair = (%d,%d), want (%d,%d)", i, g1, g2, w1, w2)
		}
	}
}

// TestTraceEarlyStable pins the early-stable trace fix: when the oracle
// classifies the initial configuration, the trace must still end with the
// final configuration, exactly like the loop's exit path.
func TestTraceEarlyStable(t *testing.T) {
	e := protocols.Constant(true)
	p := e.Protocol
	st, err := Run(p, p.InitialConfigN(5), Options{Seed: 3, TraceEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Interactions != 0 {
		t.Fatalf("constant protocol should be stable immediately: %+v", st)
	}
	if len(st.Trace) != 2 {
		t.Fatalf("early-stable run recorded %d trace points, want 2 (initial + final)", len(st.Trace))
	}
	for i, tp := range st.Trace {
		if tp.Interactions != 0 || !tp.Config.Equal(st.Final) {
			t.Fatalf("trace[%d] = %+v, want the initial=final configuration at 0 interactions", i, tp)
		}
	}
}

// TestReplicaSeedMixing checks the SplitMix64 derivation: replica streams
// of nearby base seeds must not collide (the old additive derivation made
// base b and b+2654435769 share almost all replica seeds).
func TestReplicaSeedMixing(t *testing.T) {
	seen := map[uint64]string{}
	for _, base := range []uint64{0, 1, 2, 0x9e3779b9, 2 * 0x9e3779b9, 1 << 40} {
		for i := 0; i < 64; i++ {
			s := ReplicaSeed(base, i)
			key := fmt.Sprintf("base=%d i=%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

// TestRunReplicasMatchesSequential pins the executor's determinism: the
// aggregate over a worker pool equals the single-worker aggregate, which
// equals folding individual Run calls with ReplicaSeed-derived seeds.
func TestRunReplicasMatchesSequential(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	c0 := p.InitialConfigN(16)
	opts := Options{Seed: 11}
	single, err := RunReplicas(p, c0, 10, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunReplicas(p, c0, 10, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if single != pooled {
		t.Fatalf("worker count changed the aggregate:\n 1 worker: %+v\n 4 workers: %+v", single, pooled)
	}
	var wantTotal int64
	for i := 0; i < 10; i++ {
		o := opts
		o.Seed = ReplicaSeed(opts.Seed, i)
		st, err := Run(p, c0, o)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("replica %d did not converge", i)
		}
		wantTotal += st.Interactions
	}
	if single.Converged != 10 || single.TotalInteractions != wantTotal {
		t.Fatalf("aggregate %+v, want 10 converged and %d total interactions", single, wantTotal)
	}
	if single.MeanInteractions*10 != float64(wantTotal) {
		t.Fatalf("mean interactions %v inconsistent with total %d", single.MeanInteractions, wantTotal)
	}
}
