package sim

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

func TestRunMajorityConverges(t *testing.T) {
	e := protocols.Majority()
	p := e.Protocol
	// Note on input choice: the 4-state protocol is exact under fairness for
	// every input (see reach tests), but its tie-breaking rule a,b ↦ b,b
	// fights the A side, making A-majorities with small margins take
	// expected time exponential in the passive count under the random
	// scheduler. We simulate decisive margins here; experiment E10 discusses
	// the asymmetry.
	tests := []struct {
		a, b int64
		want int
	}{
		{30, 5, 1},  // large A margin: fast
		{20, 30, 0}, // B majorities are always fast (both passive rules push b)
		{25, 25, 0}, // tie → 0, fast after cancellation
		{3, 2, 1},   // tiny population
	}
	for _, tc := range tests {
		st, err := Run(p, p.InitialConfig(multiset.Vec{tc.a, tc.b}), Options{Seed: 42})
		if err != nil {
			t.Fatalf("Run(%d,%d): %v", tc.a, tc.b, err)
		}
		if !st.Converged {
			t.Fatalf("majority(%d,%d) did not converge in %d interactions", tc.a, tc.b, st.Interactions)
		}
		if st.Output != tc.want {
			t.Errorf("majority(%d,%d) = %d, want %d", tc.a, tc.b, st.Output, tc.want)
		}
		if b, ok := p.OutputOf(st.Final); !ok || b != tc.want {
			t.Errorf("final configuration output %d,%t, want %d", b, ok, tc.want)
		}
	}
}

func TestRunThresholdProtocols(t *testing.T) {
	cases := []struct {
		name string
		e    protocols.Entry
		x    int64
		want int
	}{
		{"flock(5) above", protocols.FlockOfBirds(5), 9, 1},
		{"flock(5) below", protocols.FlockOfBirds(5), 4, 0},
		{"succinct(3) at", protocols.Succinct(3), 8, 1},
		{"succinct(3) below", protocols.Succinct(3), 7, 0},
		{"binary(11) above", protocols.BinaryThreshold(11), 20, 1},
		{"binary(11) at", protocols.BinaryThreshold(11), 11, 1},
		{"binary(11) below", protocols.BinaryThreshold(11), 10, 0},
		{"leader-flock(3)", protocols.LeaderFlock(3), 5, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := tc.e.Protocol
			st, err := Run(p, p.InitialConfigN(tc.x), Options{Seed: 7})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !st.Converged {
				t.Fatalf("did not converge within %d interactions", st.Interactions)
			}
			if st.Output != tc.want {
				t.Errorf("output = %d, want %d", st.Output, tc.want)
			}
		})
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	e := protocols.FlockOfBirds(5)
	p := e.Protocol
	run := func(seed uint64) Stats {
		st, err := Run(p, p.InitialConfigN(12), Options{Seed: seed})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return st
	}
	a, b := run(99), run(99)
	if a.Interactions != b.Interactions || !a.Final.Equal(b.Final) {
		t.Fatal("same seed must give identical runs")
	}
	c := run(100)
	// Different seeds almost surely differ in interaction count.
	if a.Interactions == c.Interactions && a.Final.Equal(c.Final) && a.ConsensusAt == c.ConsensusAt {
		t.Log("warning: different seeds gave identical runs (possible but unlikely)")
	}
}

func TestRunErrors(t *testing.T) {
	e := protocols.Parity()
	p := e.Protocol
	if _, err := Run(p, p.InitialConfigN(1), Options{}); !errors.Is(err, ErrPopulationTooSmall) {
		t.Fatalf("want ErrPopulationTooSmall, got %v", err)
	}
	if _, err := Run(p, multiset.New(2), Options{}); err == nil {
		t.Fatal("want dimension error")
	}
	neg := multiset.New(p.NumStates())
	neg[0], neg[1] = 5, -3
	if _, err := Run(p, neg, Options{}); err == nil {
		t.Fatal("want negative counts error")
	}
}

func TestRunMaxStepsOnOscillator(t *testing.T) {
	b := protocol.NewBuilder("oscillator")
	u := b.AddState("u", 0)
	v := b.AddState("v", 1)
	b.AddTransition(u, u, v, v)
	b.AddTransition(v, v, u, u)
	b.AddInput("x", u)
	p := b.CompleteWithIdentity().MustBuild()
	st, err := Run(p, p.InitialConfigN(2), Options{Seed: 1, MaxSteps: 500})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Converged {
		t.Fatal("oscillator must not converge")
	}
	if st.Interactions != 500 {
		t.Fatalf("interactions = %d, want 500", st.Interactions)
	}
}

func TestRunStableAtStart(t *testing.T) {
	e := protocols.Constant(true)
	p := e.Protocol
	st, err := Run(p, p.InitialConfigN(5), Options{Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !st.Converged || st.Output != 1 || st.Interactions != 0 {
		t.Fatalf("constant protocol should be stable immediately: %+v", st)
	}
}

func TestTrace(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	st, err := Run(p, p.InitialConfigN(8), Options{Seed: 5, TraceEvery: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(st.Trace) < 2 {
		t.Fatalf("trace too short: %d points", len(st.Trace))
	}
	if st.Trace[0].Interactions != 0 {
		t.Fatal("first trace point should be the initial configuration")
	}
	for _, tp := range st.Trace {
		if tp.Config.Size() != 8 {
			t.Fatal("population size must be conserved in trace")
		}
	}
}

func TestConsensusAt(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	st, err := Run(p, p.InitialConfigN(6), Options{Seed: 11})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !st.Converged || st.Output != 1 {
		t.Fatalf("flock(3) with 6 agents should converge to 1: %+v", st)
	}
	if st.ConsensusAt < 0 || st.ConsensusAt > st.Interactions {
		t.Fatalf("ConsensusAt = %d out of range [0,%d]", st.ConsensusAt, st.Interactions)
	}
}

func TestSilenceOracle(t *testing.T) {
	e := protocols.Majority()
	p := e.Protocol
	o := Silence{P: p}
	pb, _ := p.StateByName("b")
	qA, _ := p.StateByName("A")
	allB := multiset.New(4)
	allB[pb] = 5
	if b, ok := o.Classify(allB); !ok || b != 0 {
		t.Fatalf("all-b is 0-stable: got %d,%t", b, ok)
	}
	mixed := allB.Clone()
	mixed[qA] = 1
	if _, ok := o.Classify(mixed); ok {
		t.Fatal("A+4b is not silent (A converts b)")
	}
}

func TestFirstOfOracle(t *testing.T) {
	e := protocols.Parity()
	p := e.Protocol
	never := oracleFunc(func(protocol.Config) (int, bool) { return 0, false })
	always1 := oracleFunc(func(protocol.Config) (int, bool) { return 1, true })
	o := FirstOf{never, always1}
	if b, ok := o.Classify(multiset.New(p.NumStates())); !ok || b != 1 {
		t.Fatal("FirstOf should fall through to the second oracle")
	}
	if _, ok := (FirstOf{never}).Classify(multiset.New(p.NumStates())); ok {
		t.Fatal("FirstOf of unknowing oracles must be unknowing")
	}
}

type oracleFunc func(protocol.Config) (int, bool)

func (f oracleFunc) Classify(c protocol.Config) (int, bool) { return f(c) }

func TestEstimateParallelTime(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	est, err := EstimateParallelTime(p, p.InitialConfigN(16), 10, Options{Seed: 1})
	if err != nil {
		t.Fatalf("EstimateParallelTime: %v", err)
	}
	if est.Converged != 10 {
		t.Fatalf("converged %d/10", est.Converged)
	}
	if est.Output != 1 {
		t.Fatalf("output = %d, want 1", est.Output)
	}
	if est.MeanParallel <= 0 || est.MedianParallel <= 0 {
		t.Fatalf("parallel times must be positive: %+v", est)
	}
	if est.MaxParallel < est.P95Parallel || est.P95Parallel < est.MedianParallel {
		t.Fatalf("quantiles out of order: %+v", est)
	}
	if est.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %f", q)
	}
	if q := quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %f", q)
	}
	if q := quantile(xs, 0.5); q != 2.5 {
		t.Errorf("q0.5 = %f", q)
	}
	if q := quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("singleton quantile = %f", q)
	}
}

func TestSampleStateDistribution(t *testing.T) {
	// With counts (3,1), the first draw picks state 0 w.p. 3/4; sanity-check
	// the Fenwick sampler is weight-proportional (the chi-square and
	// exclusion tests in differential_test.go go deeper).
	c := multiset.Vec{3, 1, 0, 0}
	f := newFenwick(len(c))
	f.reset(c)
	rng := rand.New(rand.NewPCG(12345, 0))
	counts := [4]int{}
	for i := 0; i < 4000; i++ {
		counts[f.find(rng.Int64N(4))]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatal("sampled empty state")
	}
	ratio := float64(counts[0]) / float64(counts[0]+counts[1])
	if ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("state 0 sampled with ratio %.3f, want ≈ 0.75", ratio)
	}
}
