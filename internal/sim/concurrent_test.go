package sim

import (
	"errors"
	"testing"

	"repro/internal/protocols"
)

// TestBatchExecutorsInterruptAbort: a closed Interrupt channel must surface
// ErrInterrupted from the batch executors without executing the whole
// batch (the abort flag stops dispatch after the first failed replica, so
// even an absurd replica count returns promptly).
func TestBatchExecutorsInterruptAbort(t *testing.T) {
	e := protocols.Parity()
	p := e.Protocol
	c0 := p.InitialConfigN(64)
	stop := make(chan struct{})
	close(stop)
	opts := Options{Seed: 1, MaxSteps: 1 << 40, Interrupt: stop}
	if _, err := RunReplicas(p, c0, 100_000, opts, 2); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("RunReplicas: want ErrInterrupted, got %v", err)
	}
	if _, err := RunConcurrent(p, c0, 100_000, opts, 2); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("RunConcurrent: want ErrInterrupted, got %v", err)
	}
}

func TestRunConcurrentMatchesSequential(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	c0 := p.InitialConfigN(16)
	opts := Options{Seed: 41}

	conc, err := RunConcurrent(p, c0, 8, opts, 4)
	if err != nil {
		t.Fatalf("RunConcurrent: %v", err)
	}
	if len(conc) != 8 {
		t.Fatalf("got %d results", len(conc))
	}
	// Results are in seed order and identical to the corresponding
	// sequential runs (determinism survives the worker pool).
	for i, st := range conc {
		o := opts
		o.Seed = ReplicaSeed(opts.Seed, i)
		want, err := Run(p, c0, o)
		if err != nil {
			t.Fatal(err)
		}
		if st.Interactions != want.Interactions || !st.Final.Equal(want.Final) {
			t.Fatalf("run %d differs from sequential replay", i)
		}
		if !st.Converged || st.Output != 1 {
			t.Fatalf("run %d: %+v", i, st)
		}
	}
}

func TestRunConcurrentWorkerEdgeCases(t *testing.T) {
	e := protocols.Parity()
	p := e.Protocol
	c0 := p.InitialConfigN(5)
	// More workers than runs.
	res, err := RunConcurrent(p, c0, 2, Options{Seed: 1}, 16)
	if err != nil || len(res) != 2 {
		t.Fatalf("res=%d err=%v", len(res), err)
	}
	// Default workers.
	if _, err := RunConcurrent(p, c0, 3, Options{Seed: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// Zero runs rejected.
	if _, err := RunConcurrent(p, c0, 0, Options{Seed: 1}, 2); err == nil {
		t.Fatal("want error for 0 runs")
	}
	// Errors propagate (population too small).
	if _, err := RunConcurrent(p, p.InitialConfigN(1), 3, Options{}, 2); err == nil {
		t.Fatal("want population error")
	}
}
