package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/protocol"
)

// ReplicaSeed derives the RNG seed of replica i from a base seed with a
// SplitMix64-style mix: the golden-ratio increment steps the stream and the
// finalizer avalanches every bit, so nearby base seeds (or nearby replica
// indices) produce unrelated PCG seeds. The previous additive derivation
// (base + i·2654435769) made base seeds s and s+2654435769 share all but
// one replica stream; mixed seeds have no such collisions in practice.
//
// All multi-replica executors (RunReplicas, RunConcurrent,
// EstimateParallelTime) derive their per-replica seeds through this
// function, so their replica streams line up: replica i of any of them
// equals Run with Seed = ReplicaSeed(base, i).
func ReplicaSeed(base uint64, i int) uint64 {
	z := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// replicaOutcome is the per-replica scalar record RunReplicas aggregates:
// the executor streams each replica's Stats into these few words and drops
// the rest (Final configurations, traces, firing lists), so a million-
// replica batch holds O(runs) scalars, never O(runs) configurations.
type replicaOutcome struct {
	converged    bool
	output       int
	parallel     float64
	interactions int64
	err          error
}

// runBatch is the shared scaffolding of the batch executors: it validates
// the workload, builds the transition tables once, and executes replicas
// 0..runs-1 across a worker pool, each worker reusing one scratch set
// (Runner) over the shared tables. record observes every executed replica
// (from worker goroutines, but never twice for one index); replica i runs
// with seed ReplicaSeed(opts.Seed, i).
//
// A replica error (interruption included) trips the abort flag: replicas
// not yet started are skipped, so a cancelled batch stops after the
// in-flight replicas notice, not after every remaining replica has run to
// its first interrupt poll. Indices are dispatched in ascending order, so
// every skipped index exceeds the erroring one and a caller folding in
// index order still reports the first error deterministically.
func runBatch(p *protocol.Protocol, c0 protocol.Config, runs int, opts Options, workers int, record func(i int, st Stats, err error)) error {
	if runs < 1 {
		return fmt.Errorf("sim: runs must be ≥ 1, got %d", runs)
	}
	if err := validateRun(p, c0); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	tbl := buildTables(p)
	var aborted atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newRunnerShared(p, c0, tbl)
			for i := range next {
				if aborted.Load() {
					continue
				}
				o := opts
				o.Seed = ReplicaSeed(opts.Seed, i)
				st, err := r.Run(o)
				record(i, st, err)
				if err != nil {
					aborted.Store(true)
				}
			}
		}()
	}
	for i := 0; i < runs && !aborted.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return nil
}

// RunReplicas executes `runs` independent replicas of one simulation
// workload across a worker pool and aggregates them into an Estimate.
//
// This is the batch executor behind the sweep subsystem's convergence cells
// (E1/E2-style grids): each worker builds its per-replica scratch — Fenwick
// tree, configuration buffer — once and reuses it for every replica it
// executes, over transition tables built once for the whole batch, so a
// 10^3-replica cell pays the setup cost once, not 10^3 times. Replica i
// runs with seed ReplicaSeed(opts.Seed, i); the aggregate is deterministic
// for a fixed base seed regardless of worker count or scheduling.
// workers ≤ 0 selects GOMAXPROCS.
func RunReplicas(p *protocol.Protocol, c0 protocol.Config, runs int, opts Options, workers int) (Estimate, error) {
	est := Estimate{Runs: runs, Output: -1}
	// Clamped so a negative runs reaches runBatch's validation, not make.
	outs := make([]replicaOutcome, max(runs, 0))
	err := runBatch(p, c0, runs, opts, workers, func(i int, st Stats, err error) {
		outs[i] = replicaOutcome{
			converged:    st.Converged,
			output:       st.Output,
			parallel:     st.ParallelTime,
			interactions: st.Interactions,
			err:          err,
		}
	})
	if err != nil {
		return est, err
	}

	// Fold the outcomes in replica order, so errors and the disagreement
	// verdict are deterministic whatever the completion order was.
	var times []float64
	for i, out := range outs {
		if out.err != nil {
			return est, fmt.Errorf("run %d: %w", i, out.err)
		}
		est.TotalInteractions += out.interactions
		if !out.converged {
			continue
		}
		est.Converged++
		times = append(times, out.parallel)
		est.MeanInteractions += float64(out.interactions)
		switch est.Output {
		case -1:
			est.Output = out.output
		case out.output:
		default:
			est.Output = -1
			return est, fmt.Errorf("sim: runs disagree on stable output")
		}
	}
	if len(times) == 0 {
		return est, nil
	}
	est.MeanInteractions /= float64(len(times))
	sort.Float64s(times)
	var sum float64
	for _, t := range times {
		sum += t
	}
	est.MeanParallel = sum / float64(len(times))
	est.MedianParallel = quantile(times, 0.5)
	est.P95Parallel = quantile(times, 0.95)
	est.MaxParallel = times[len(times)-1]
	return est, nil
}
