// Package cli is the shared plumbing of the command line tools: protocol
// reference flags, input parsing, and the common main wrapper. Every cmd/
// tool is a thin adapter that builds an engine.Request from its flags and
// formats the engine.Result; the analysis itself lives in internal/engine.
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/multiset"
	"repro/internal/protocols"
)

// Main runs a tool's entry function on os.Args and exits non-zero on error,
// prefixing the message with the tool name.
func Main(name string, run func(args []string) error) {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

// SpecUsage is the flag help text for -protocol spec flags, generated from
// the builtin spec table so it never goes stale.
var SpecUsage = "built-in protocol spec (" + strings.Join(protocols.SpecHelp(), ", ") + ")"

// ProtocolRef builds the engine protocol reference from the -protocol and
// -file flag pair: exactly one must be set, and -file is read here so the
// request carries the protocol inline (making it self-contained).
func ProtocolRef(spec, file string) (engine.ProtocolRef, error) {
	switch {
	case spec != "" && file != "":
		return engine.ProtocolRef{}, fmt.Errorf("use either -protocol or -file, not both")
	case spec != "":
		return engine.ProtocolRef{Spec: spec}, nil
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return engine.ProtocolRef{}, err
		}
		return engine.ProtocolRef{Inline: data}, nil
	default:
		return engine.ProtocolRef{}, fmt.Errorf("missing -protocol or -file")
	}
}

// ParseInput parses a comma-separated input multiset ("20", "12,9") and
// validates it against the protocol arity via engine.ValidateInput — the
// single implementation of the arity and ≥2-agents rules. Pass arity < 0 to
// skip validation (when the arity is not yet known).
func ParseInput(s string, arity int) (multiset.Vec, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -input")
	}
	parts := strings.Split(s, ",")
	v := multiset.New(len(parts))
	for i, part := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input component %q", part)
		}
		v[i] = n
	}
	if arity >= 0 {
		if err := engine.ValidateInput(v, arity); err != nil {
			return nil, err
		}
	}
	return v, nil
}
