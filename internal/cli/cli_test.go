package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/multiset"
)

func TestParseInputValid(t *testing.T) {
	cases := []struct {
		s     string
		arity int
		want  multiset.Vec
	}{
		{"20", 1, multiset.Vec{20}},
		{"12,9", 2, multiset.Vec{12, 9}},
		{" 3 , 4 ", 2, multiset.Vec{3, 4}},
		{"0,5", 2, multiset.Vec{0, 5}},
		{"7,-1", -1, multiset.Vec{7, -1}}, // arity < 0 skips validation
	}
	for _, tc := range cases {
		got, err := ParseInput(tc.s, tc.arity)
		if err != nil {
			t.Errorf("ParseInput(%q, %d): %v", tc.s, tc.arity, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseInput(%q): got %v, want %v", tc.s, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseInput(%q): got %v, want %v", tc.s, got, tc.want)
			}
		}
	}
}

func TestParseInputErrors(t *testing.T) {
	cases := map[string]struct {
		s     string
		arity int
		hint  string
	}{
		"empty":          {"", 1, "missing -input"},
		"garbage":        {"abc", 1, "bad input component"},
		"arity mismatch": {"4", 2, "input has 1 components, protocol expects 2"},
		"extra arity":    {"4,5,6", 2, "input has 3 components, protocol expects 2"},
		"negative":       {"-3", 1, "bad input component"},
		"one agent":      {"1", 1, "at least 2 agents"},
		"zero agents":    {"0,0", 2, "at least 2 agents"},
	}
	for name, tc := range cases {
		_, err := ParseInput(tc.s, tc.arity)
		if err == nil {
			t.Errorf("%s: ParseInput(%q, %d) should fail", name, tc.s, tc.arity)
			continue
		}
		if !strings.Contains(err.Error(), tc.hint) {
			t.Errorf("%s: error %q should mention %q", name, err, tc.hint)
		}
	}
}

func TestProtocolRef(t *testing.T) {
	ref, err := ProtocolRef("flock:5", "")
	if err != nil || ref.Spec != "flock:5" || len(ref.Inline) != 0 {
		t.Errorf("spec ref: %+v, %v", ref, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(`{"name":"x"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	ref, err = ProtocolRef("", path)
	if err != nil || ref.Spec != "" || string(ref.Inline) != `{"name":"x"}` {
		t.Errorf("file ref: %+v, %v", ref, err)
	}

	if _, err := ProtocolRef("", ""); err == nil {
		t.Error("neither source should fail")
	}
	if _, err := ProtocolRef("flock:5", path); err == nil {
		t.Error("both sources should fail")
	}
	if _, err := ProtocolRef("", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}
