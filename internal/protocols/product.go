package protocols

import (
	"fmt"

	"repro/internal/pred"
	"repro/internal/protocol"
)

// Product combines two leaderless protocols over the same number of input
// variables into one that runs both in lockstep and outputs op of their
// outputs — the classic closure construction of Angluin et al. [8] showing
// that computable predicates are closed under boolean combinations. The
// product has |Q1|·|Q2| states. Both orientations of each component
// transition are included, so the product may be nondeterministic even if
// the components are deterministic.
func Product(e1, e2 Entry, op BoolOp) Entry {
	p1, p2 := e1.Protocol, e2.Protocol
	if !p1.Leaderless() || !p2.Leaderless() {
		panic("protocols: Product requires leaderless components")
	}
	if p1.NumInputs() != p2.NumInputs() {
		panic(fmt.Sprintf("protocols: Product input arity mismatch %d vs %d",
			p1.NumInputs(), p2.NumInputs()))
	}
	n1, n2 := p1.NumStates(), p2.NumStates()
	b := protocol.NewBuilder(fmt.Sprintf("(%s %s %s)", p1.Name(), op, p2.Name()))
	id := func(q1, q2 protocol.State) protocol.State {
		return protocol.State(int(q1)*n2 + int(q2))
	}
	for q1 := protocol.State(0); int(q1) < n1; q1++ {
		for q2 := protocol.State(0); int(q2) < n2; q2++ {
			name := p1.StateName(q1) + "|" + p2.StateName(q2)
			b.AddState(name, op.Apply(p1.Output(q1), p2.Output(q2)))
		}
	}
	// For each unordered product pair, combine each component transition in
	// both orientations.
	for a := 0; a < n1*n2; a++ {
		for c := a; c < n1*n2; c++ {
			u1, u2 := protocol.State(a/n2), protocol.State(a%n2)
			v1, v2 := protocol.State(c/n2), protocol.State(c%n2)
			for _, t1i := range p1.TransitionsForPair(u1, v1) {
				t1 := p1.Transition(t1i)
				for _, t2i := range p2.TransitionsForPair(u2, v2) {
					t2 := p2.Transition(t2i)
					// Each component transition admits two orientations of
					// its post pair; enumerate all four combinations.
					for _, o1 := range [2][2]protocol.State{{t1.P2, t1.Q2}, {t1.Q2, t1.P2}} {
						for _, o2 := range [2][2]protocol.State{{t2.P2, t2.Q2}, {t2.Q2, t2.P2}} {
							b.AddTransition(
								protocol.State(a), protocol.State(c),
								id(o1[0], o2[0]), id(o1[1], o2[1]),
							)
						}
					}
				}
			}
		}
	}
	names := p1.InputNames()
	for x := 0; x < p1.NumInputs(); x++ {
		b.AddInput(names[x], id(p1.InputState(x), p2.InputState(x)))
	}
	var phi pred.Pred
	switch op {
	case OpAnd:
		phi = pred.And{e1.Pred, e2.Pred}
	case OpOr:
		phi = pred.Or{e1.Pred, e2.Pred}
	default:
		panic(fmt.Sprintf("protocols: unknown op %v", op))
	}
	return Entry{
		Protocol:      b.MustBuild(),
		Pred:          phi,
		MaxExactInput: maxExactForStates(n1 * n2),
	}
}

// BoolOp is a binary boolean connective for Product.
type BoolOp int

// The supported connectives. Negation is provided separately by Negate;
// together they generate all boolean combinations.
const (
	OpAnd BoolOp = iota + 1
	OpOr
)

// Apply evaluates the connective on two outputs in {0,1}.
func (op BoolOp) Apply(b1, b2 int) int {
	switch op {
	case OpAnd:
		if b1 == 1 && b2 == 1 {
			return 1
		}
		return 0
	case OpOr:
		if b1 == 1 || b2 == 1 {
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("protocols: unknown op %d", op))
	}
}

// String renders the connective.
func (op BoolOp) String() string {
	switch op {
	case OpAnd:
		return "∧"
	case OpOr:
		return "∨"
	default:
		return fmt.Sprintf("BoolOp(%d)", int(op))
	}
}

// Negate returns the protocol with all outputs flipped, computing ¬ϕ. The
// transition structure is unchanged, so all reachability properties are
// preserved.
func Negate(e Entry) Entry {
	p := e.Protocol
	b := protocol.NewBuilder("¬" + p.Name())
	for q := protocol.State(0); int(q) < p.NumStates(); q++ {
		b.AddState(p.StateName(q), 1-p.Output(q))
	}
	for _, t := range p.Transitions() {
		b.AddTransition(t.P, t.Q, t.P2, t.Q2)
	}
	leaders := p.Leaders()
	for q, n := range leaders {
		if n > 0 {
			b.AddLeader(protocol.State(q), n)
		}
	}
	names := p.InputNames()
	for x := 0; x < p.NumInputs(); x++ {
		b.AddInput(names[x], p.InputState(x))
	}
	return Entry{
		Protocol:      b.MustBuild(),
		Pred:          pred.Not{P: e.Pred},
		MaxExactInput: e.MaxExactInput,
	}
}
