package protocols

import (
	"fmt"

	"repro/internal/pred"
	"repro/internal/protocol"
)

// LinearThreshold returns a leaderless protocol computing the multi-variable
// threshold predicate Σ aᵢ·xᵢ ≥ c for positive coefficients aᵢ ≥ 1 and
// bound c ≥ 1 — the flock-of-birds construction generalised to weighted
// inputs (the positive-coefficient fragment of the threshold predicates of
// [8,12]). Each agent carries a value (initially its variable's
// coefficient, capped at c); values merge pairwise and cap at c, which is
// the absorbing "yes" state. The total carried value Σ aᵢ·xᵢ is invariant
// until the cap fires, giving soundness; fairness forces merging until two
// agents witness the bound, giving completeness. c+1 states.
func LinearThreshold(coeffs []int64, c int64) Entry {
	if c < 1 {
		panic(fmt.Sprintf("protocols: LinearThreshold needs c ≥ 1, got %d", c))
	}
	if len(coeffs) == 0 {
		panic("protocols: LinearThreshold needs at least one variable")
	}
	for _, a := range coeffs {
		if a < 1 {
			panic(fmt.Sprintf("protocols: LinearThreshold needs positive coefficients, got %d", a))
		}
	}
	b := protocol.NewBuilder(fmt.Sprintf("linear-threshold(%v ≥ %d)", coeffs, c))
	states := make([]protocol.State, c+1)
	for v := int64(0); v <= c; v++ {
		out := 0
		if v == c {
			out = 1
		}
		states[v] = b.AddState(fmt.Sprintf("%d", v), out)
	}
	for u := int64(0); u <= c; u++ {
		for v := u; v <= c; v++ {
			if u+v < c {
				b.AddTransition(states[u], states[v], states[0], states[u+v])
			} else {
				b.AddTransition(states[u], states[v], states[c], states[c])
			}
		}
	}
	for i, a := range coeffs {
		cap := a
		if cap > c {
			cap = c
		}
		b.AddInput(fmt.Sprintf("x%d", i), states[cap])
	}
	return Entry{
		Protocol:      b.MustBuild(),
		Pred:          pred.Threshold{Coeffs: append([]int64(nil), coeffs...), Bound: c},
		MaxExactInput: maxExactForStates(int(c) + 1),
	}
}

// Interval returns a protocol computing the interval predicate
// lo ≤ x ≤ hi, assembled with the boolean closure constructions:
// (x ≥ lo) ∧ ¬(x ≥ hi+1), each side a binary-threshold protocol. It
// demonstrates that the library covers all single-variable threshold
// combinations, at product-size state cost.
func Interval(lo, hi int64) Entry {
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("protocols: Interval needs 1 ≤ lo ≤ hi, got [%d,%d]", lo, hi))
	}
	e := Product(BinaryThreshold(lo), Negate(BinaryThreshold(hi+1)), OpAnd)
	// Rebuild the name for readability.
	e.Pred = pred.And{
		pred.NewCounting(lo),
		pred.Not{P: pred.NewCounting(hi + 1)},
	}
	return e
}
