package protocols

import (
	"fmt"

	"repro/internal/pred"
	"repro/internal/protocol"
)

// Majority returns the classic 4-state majority protocol computing
// x_A > x_B: active states A, B cancel into passive a, b; actives convert
// passives of the other opinion; on a tie the passive pair a,b resolves to b
// so that "not more As than Bs" yields output 0.
func Majority() Entry {
	b := protocol.NewBuilder("majority")
	qA := b.AddState("A", 1)
	qB := b.AddState("B", 0)
	pa := b.AddState("a", 1)
	pb := b.AddState("b", 0)
	b.AddTransition(qA, qB, pa, pb)
	b.AddTransition(qA, pb, qA, pa)
	b.AddTransition(qB, pa, qB, pb)
	b.AddTransition(pa, pb, pb, pb)
	b.AddInput("x_A", qA)
	b.AddInput("x_B", qB)
	return Entry{
		Protocol:      b.CompleteWithIdentity().MustBuild(),
		Pred:          pred.NewMajority(),
		MaxExactInput: 12,
	}
}

// ModuloIn returns a leaderless protocol computing "x mod m ∈ residues" with
// m+2 states: value states V_0..V_(m−1) (accumulators that merge additively
// mod m) and two passive states p0, p1 carrying the current belief. Fair
// executions end with a single accumulator V_(x mod m) that converts every
// passive agent to its own output.
func ModuloIn(m int64, residues ...int64) Entry {
	if m < 1 {
		panic(fmt.Sprintf("protocols: ModuloIn needs m ≥ 1, got %d", m))
	}
	inR := make(map[int64]bool, len(residues))
	for _, r := range residues {
		rr := r % m
		if rr < 0 {
			rr += m
		}
		inR[rr] = true
	}
	out := func(v int64) int {
		if inR[v] {
			return 1
		}
		return 0
	}
	b := protocol.NewBuilder(fmt.Sprintf("modulo(m=%d, R=%v)", m, residues))
	val := make([]protocol.State, m)
	for v := int64(0); v < m; v++ {
		val[v] = b.AddState(fmt.Sprintf("V%d", v), out(v))
	}
	passive := [2]protocol.State{
		b.AddState("p0", 0),
		b.AddState("p1", 1),
	}
	for u := int64(0); u < m; u++ {
		for v := u; v < m; v++ {
			s := (u + v) % m
			b.AddTransition(val[u], val[v], val[s], passive[out(s)])
		}
		for _, p := range passive {
			b.AddTransition(val[u], p, val[u], passive[out(u)])
		}
	}
	b.AddInput("x", val[1%m])
	ps := make([]pred.Pred, 0, len(inR))
	for r := range inR {
		ps = append(ps, pred.NewModCounting(m, r))
	}
	var phi pred.Pred = pred.Or(ps)
	return Entry{
		Protocol:      b.CompleteWithIdentity().MustBuild(),
		Pred:          phi,
		MaxExactInput: maxExactForStates(int(m) + 2),
	}
}

// Parity returns the protocol computing "x is odd" (x ≡ 1 mod 2).
func Parity() Entry { return ModuloIn(2, 1) }

// LeaderFlock returns a protocol *with one leader* computing x ≥ η: the
// leader sequentially counts agents it meets (c_i, u ↦ c_(i+1), d) and
// announces Yes at η. It is deliberately non-succinct (η+3 states); it
// exists to exercise the leader code paths (IC(i) = L + i·x, BBL machinery).
func LeaderFlock(eta int64) Entry {
	if eta < 1 {
		panic(fmt.Sprintf("protocols: LeaderFlock needs η ≥ 1, got %d", eta))
	}
	b := protocol.NewBuilder(fmt.Sprintf("leader-flock(η=%d)", eta))
	cnt := make([]protocol.State, eta)
	for i := int64(0); i < eta; i++ {
		cnt[i] = b.AddState(fmt.Sprintf("c%d", i), 0)
	}
	u := b.AddState("u", 0)
	d := b.AddState("d", 0)
	yes := b.AddState("Yes", 1)
	for i := int64(0); i+1 < eta; i++ {
		b.AddTransition(cnt[i], u, cnt[i+1], d)
	}
	b.AddTransition(cnt[eta-1], u, yes, yes)
	for i := int64(0); i < eta; i++ {
		b.AddTransition(yes, cnt[i], yes, yes)
	}
	b.AddTransition(yes, u, yes, yes)
	b.AddTransition(yes, d, yes, yes)
	b.AddLeader(cnt[0], 1)
	b.AddInput("x", u)
	return Entry{
		Protocol:      b.CompleteWithIdentity().MustBuild(),
		Pred:          pred.NewCounting(eta),
		MaxExactInput: maxExactForStates(int(eta) + 3),
	}
}

// Constant returns a one-state protocol computing the constant predicate.
func Constant(value bool) Entry {
	b := protocol.NewBuilder(fmt.Sprintf("constant(%t)", value))
	out := 0
	if value {
		out = 1
	}
	q := b.AddState("q", out)
	b.AddInput("x", q)
	return Entry{
		Protocol:      b.CompleteWithIdentity().MustBuild(),
		Pred:          pred.Const{Value: value, Vars: 1},
		MaxExactInput: 20,
	}
}
