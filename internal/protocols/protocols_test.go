package protocols

import (
	"strings"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

func TestFlockOfBirdsStructure(t *testing.T) {
	for _, eta := range []int64{1, 2, 5, 8} {
		e := FlockOfBirds(eta)
		p := e.Protocol
		if got := int64(p.NumStates()); got != eta+1 {
			t.Errorf("flock(%d): %d states, want %d", eta, got, eta+1)
		}
		if !p.Leaderless() {
			t.Errorf("flock(%d) must be leaderless", eta)
		}
		if !p.Deterministic() {
			t.Errorf("flock(%d) must be deterministic", eta)
		}
		// Simulate the doubling chain by hand: two agents at η/2 (if η even)
		// meet and trigger the cap.
		if eta >= 2 && eta%2 == 0 {
			half, ok := p.StateByName(formatInt(eta / 2))
			if !ok {
				t.Fatalf("flock(%d): missing state %d", eta, eta/2)
			}
			c := multiset.New(p.NumStates())
			c[half] = 2
			ts := p.TransitionsForPair(half, half)
			if len(ts) != 1 {
				t.Fatalf("flock(%d): want 1 transition for half pair", eta)
			}
			c2 := p.Fire(c, ts[0])
			etaSt, _ := p.StateByName(formatInt(eta))
			if c2[etaSt] != 2 {
				t.Errorf("flock(%d): half+half should cap to η, got %s", eta, p.FormatConfig(c2))
			}
		}
	}
}

func TestPaperPkMatchesExample21(t *testing.T) {
	// P_k has 2^k + 1 states (Example 2.1).
	for k := uint(0); k <= 4; k++ {
		e := PaperPk(k)
		want := (1 << k) + 1
		if got := e.Protocol.NumStates(); got != want {
			t.Errorf("P_%d: %d states, want %d", k, got, want)
		}
	}
}

func TestSuccinctStructure(t *testing.T) {
	// P'_k has k + 2 states (the paper counts k+1 by identifying 2^0's
	// role; the explicit state set {0, 2^0, ..., 2^k} has k+2 elements).
	for k := uint(0); k <= 6; k++ {
		e := Succinct(k)
		p := e.Protocol
		if got := p.NumStates(); got != int(k)+2 {
			t.Errorf("P'_%d: %d states, want %d", k, got, int(k)+2)
		}
		if !p.Leaderless() {
			t.Errorf("P'_%d must be leaderless", k)
		}
	}
	// Doubling chain: 2^i, 2^i ↦ 0, 2^(i+1).
	e := Succinct(3)
	p := e.Protocol
	s1, _ := p.StateByName("2^1")
	s2, _ := p.StateByName("2^2")
	zero, _ := p.StateByName("0")
	c := multiset.New(p.NumStates())
	c[s1] = 2
	var fired protocol.Config
	for _, ti := range p.TransitionsForPair(s1, s1) {
		if !p.Transition(ti).IsIdentity() {
			fired = p.Fire(c, ti)
		}
	}
	if fired == nil || fired[s2] != 1 || fired[zero] != 1 {
		t.Errorf("2^1,2^1 ↦ 0,2^2 failed: %v", fired)
	}
}

func TestBinaryThresholdStructure(t *testing.T) {
	tests := []struct {
		eta       int64
		maxStates int
	}{
		{1, 3},  // 0, 2^0, Yes
		{2, 4},  // 0, 2^0, 2^1, Yes
		{7, 6},  // 0, 2^0..2^2, Yes (A2 would be 6, but 4+2 ≥ 7 triggers Yes... see below)
		{21, 9}, // 0, 2^0..2^4, A2=20, Yes
		{100, 11},
		{1024, 13},
	}
	for _, tc := range tests {
		e := BinaryThreshold(tc.eta)
		n := e.Protocol.NumStates()
		if n > tc.maxStates {
			t.Errorf("binary(%d): %d states, want ≤ %d", tc.eta, n, tc.maxStates)
		}
		if !e.Protocol.Leaderless() {
			t.Errorf("binary(%d) must be leaderless", tc.eta)
		}
	}
	// State count grows logarithmically: 2·log2(η) + 3 is a generous cap.
	for _, eta := range []int64{3, 9, 33, 129, 1025, 40000} {
		e := BinaryThreshold(eta)
		cap := 2*log2ceil(eta) + 3
		if n := e.Protocol.NumStates(); int64(n) > cap {
			t.Errorf("binary(%d): %d states exceeds 2·log2+3 = %d", eta, n, cap)
		}
	}
}

func TestBinaryThresholdValueConservation(t *testing.T) {
	// Until a Yes appears, every transition conserves the total carried
	// value — the soundness invariant of the construction.
	e := BinaryThreshold(21)
	p := e.Protocol
	value := make([]int64, p.NumStates())
	yes := protocol.State(-1)
	for q := 0; q < p.NumStates(); q++ {
		name := p.StateName(protocol.State(q))
		switch {
		case name == "Yes":
			yes = protocol.State(q)
		case name == "0":
			value[q] = 0
		case strings.HasPrefix(name, "2^"):
			value[q] = 1 << atoi(t, name[2:])
		case strings.HasPrefix(name, "A"):
			// Format "Am=v".
			value[q] = atoi(t, name[strings.Index(name, "=")+1:])
		default:
			t.Fatalf("unexpected state name %q", name)
		}
	}
	if yes < 0 {
		t.Fatal("no Yes state")
	}
	for i := 0; i < p.NumTransitions(); i++ {
		tr := p.Transition(i)
		if tr.P2 == yes || tr.Q2 == yes || tr.P == yes || tr.Q == yes {
			continue
		}
		pre := value[tr.P] + value[tr.Q]
		post := value[tr.P2] + value[tr.Q2]
		if pre != post {
			t.Errorf("transition %s does not conserve value: %d → %d",
				p.FormatTransition(tr), pre, post)
		}
	}
}

func TestBinaryThresholdYesRequiresEta(t *testing.T) {
	// Any transition producing Yes from non-Yes states must have
	// pre-value ≥ η (soundness of the sum rule).
	for _, eta := range []int64{3, 7, 21, 100} {
		e := BinaryThreshold(eta)
		p := e.Protocol
		yes, _ := p.StateByName("Yes")
		for i := 0; i < p.NumTransitions(); i++ {
			tr := p.Transition(i)
			if tr.P == yes || tr.Q == yes {
				continue // conversion rule, fine
			}
			if tr.P2 != yes && tr.Q2 != yes {
				continue
			}
			pre := stateValue(t, p, tr.P) + stateValue(t, p, tr.Q)
			if pre < eta {
				t.Errorf("binary(%d): %s creates Yes from value %d < η",
					eta, p.FormatTransition(tr), pre)
			}
		}
	}
}

func TestMajorityStructure(t *testing.T) {
	e := Majority()
	if e.Protocol.NumStates() != 4 {
		t.Fatalf("majority has %d states, want 4", e.Protocol.NumStates())
	}
	if e.Protocol.NumInputs() != 2 {
		t.Fatalf("majority has %d inputs, want 2", e.Protocol.NumInputs())
	}
}

func TestModuloStructure(t *testing.T) {
	e := ModuloIn(5, 2, 4)
	if e.Protocol.NumStates() != 7 {
		t.Fatalf("mod5: %d states, want 7", e.Protocol.NumStates())
	}
	// m = 1: x mod 1 = 0 always; the predicate is constant.
	one := ModuloIn(1, 0)
	if !one.Pred.Eval(multiset.Vec{17}) {
		t.Fatal("x ≡ 0 mod 1 must hold")
	}
}

func TestLeaderFlockStructure(t *testing.T) {
	e := LeaderFlock(3)
	p := e.Protocol
	if p.Leaderless() {
		t.Fatal("leader-flock must have a leader")
	}
	if p.NumLeaders() != 1 {
		t.Fatalf("NumLeaders = %d", p.NumLeaders())
	}
	ic := p.InitialConfigN(5)
	if ic.Size() != 6 { // 5 inputs + 1 leader
		t.Fatalf("|IC(5)| = %d, want 6", ic.Size())
	}
}

func TestProductStructureAndOutputs(t *testing.T) {
	e := Product(FlockOfBirds(3), Parity(), OpAnd)
	p := e.Protocol
	if p.NumStates() != 4*4 {
		t.Fatalf("product states = %d, want 16", p.NumStates())
	}
	// Output of product state is AND of component outputs.
	q, ok := p.StateByName("3|V1")
	if !ok {
		t.Fatal("missing product state 3|V1")
	}
	if p.Output(q) != 1 {
		t.Error("3|V1 should output 1 (3 ≥ 3 and V1 odd)")
	}
	q2, _ := p.StateByName("3|V0")
	if p.Output(q2) != 0 {
		t.Error("3|V0 should output 0 under AND")
	}
	or := Product(FlockOfBirds(3), Parity(), OpOr)
	q3, _ := or.Protocol.StateByName("0|V1")
	if or.Protocol.Output(q3) != 1 {
		t.Error("0|V1 should output 1 under OR")
	}
}

func TestProductPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Product with leader component should panic")
		}
	}()
	Product(LeaderFlock(2), Parity(), OpAnd)
}

func TestNegate(t *testing.T) {
	e := Negate(Parity())
	p := e.Protocol
	v1, _ := p.StateByName("V1")
	if p.Output(v1) != 0 {
		t.Error("negated V1 should output 0")
	}
	if !e.Pred.Eval(multiset.Vec{2}) || e.Pred.Eval(multiset.Vec{3}) {
		t.Error("negated parity predicate wrong")
	}
	// Double negation restores outputs.
	ee := Negate(e)
	if ee.Protocol.Output(v1) != 1 {
		t.Error("double negation should restore output")
	}
}

func TestCatalogEntriesWellFormed(t *testing.T) {
	for name, e := range Catalog() {
		if e.Protocol == nil || e.Pred == nil {
			t.Errorf("%s: incomplete entry", name)
			continue
		}
		if e.Protocol.NumInputs() != e.Pred.Arity() {
			t.Errorf("%s: protocol arity %d != predicate arity %d",
				name, e.Protocol.NumInputs(), e.Pred.Arity())
		}
		if e.MaxExactInput < 2 {
			t.Errorf("%s: MaxExactInput = %d too small", name, e.MaxExactInput)
		}
	}
}

func TestThresholdFamilies(t *testing.T) {
	fams := ThresholdFamilies(8)
	if _, ok := fams["succinct"]; !ok {
		t.Error("η=8 should include the succinct family")
	}
	fams = ThresholdFamilies(6)
	if _, ok := fams["succinct"]; ok {
		t.Error("η=6 is not a power of two")
	}
	for name, e := range fams {
		if e.Protocol == nil {
			t.Errorf("%s: nil protocol", name)
		}
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	for name, f := range map[string]func(){
		"flock(0)":  func() { FlockOfBirds(0) },
		"binary(0)": func() { BinaryThreshold(0) },
		"leader(0)": func() { LeaderFlock(0) },
		"modulo(0)": func() { ModuloIn(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

// Helpers.

func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func atoi(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("atoi(%q)", s)
		}
		v = v*10 + int64(c-'0')
	}
	return v
}

func stateValue(t *testing.T, p *protocol.Protocol, q protocol.State) int64 {
	t.Helper()
	name := p.StateName(q)
	switch {
	case name == "0":
		return 0
	case strings.HasPrefix(name, "2^"):
		return 1 << atoi(t, name[2:])
	case strings.HasPrefix(name, "A"):
		return atoi(t, name[strings.Index(name, "=")+1:])
	}
	t.Fatalf("no value for state %q", name)
	return 0
}

func log2ceil(v int64) int64 {
	var k int64
	for int64(1)<<k < v {
		k++
	}
	return k
}
