package protocols

import (
	"testing"

	"repro/internal/multiset"
)

func TestLinearThresholdStructure(t *testing.T) {
	e := LinearThreshold([]int64{2, 3}, 7)
	p := e.Protocol
	if p.NumStates() != 8 {
		t.Fatalf("states = %d, want 8", p.NumStates())
	}
	if p.NumInputs() != 2 {
		t.Fatalf("inputs = %d, want 2", p.NumInputs())
	}
	// Input mapping: x0 starts at value 2, x1 at value 3.
	s2, _ := p.StateByName("2")
	s3, _ := p.StateByName("3")
	if p.InputState(0) != s2 || p.InputState(1) != s3 {
		t.Fatalf("input mapping wrong: %d %d", p.InputState(0), p.InputState(1))
	}
	// Coefficients above the bound are capped.
	big := LinearThreshold([]int64{10}, 4)
	s4, _ := big.Protocol.StateByName("4")
	if big.Protocol.InputState(0) != s4 {
		t.Fatal("coefficient should cap at c")
	}
	// Predicate.
	if !e.Pred.Eval(multiset.Vec{2, 1}) { // 2·2+3·1 = 7 ≥ 7
		t.Fatal("pred(2,1) should hold")
	}
	if e.Pred.Eval(multiset.Vec{3, 0}) { // 6 < 7
		t.Fatal("pred(3,0) should not hold")
	}
}

func TestLinearThresholdPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bound":     func() { LinearThreshold([]int64{1}, 0) },
		"no vars":        func() { LinearThreshold(nil, 3) },
		"zero coeff":     func() { LinearThreshold([]int64{0}, 3) },
		"negative coeff": func() { LinearThreshold([]int64{-1}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIntervalStructure(t *testing.T) {
	e := Interval(2, 4)
	// 2 ≤ x ≤ 4.
	for x, want := range map[int64]bool{2: true, 3: true, 4: true, 5: false, 6: false} {
		if got := e.Pred.Eval(multiset.Vec{x}); got != want {
			t.Errorf("interval pred(%d) = %t, want %t", x, got, want)
		}
	}
	if e.Protocol.NumInputs() != 1 {
		t.Fatal("interval is single-input")
	}
}

func TestIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Interval(3,2) should panic")
		}
	}()
	Interval(3, 2)
}
