package protocols

import (
	"strings"
	"testing"
)

func TestFromNameValid(t *testing.T) {
	tests := []struct {
		spec   string
		states int
		inputs int
	}{
		{"flock:5", 6, 1},
		{"succinct:3", 5, 1},
		{"binary:7", 6, 1},
		{"leaderflock:2", 5, 1},
		{"majority", 4, 2},
		{"parity", 4, 1},
		{"mod:3:1", 5, 1},
		{"mod:5:1,4", 7, 1},
		{"true", 1, 1},
		{"false", 1, 1},
	}
	for _, tc := range tests {
		e, err := FromName(tc.spec)
		if err != nil {
			t.Errorf("FromName(%q): %v", tc.spec, err)
			continue
		}
		if got := e.Protocol.NumStates(); got != tc.states {
			t.Errorf("%q: %d states, want %d", tc.spec, got, tc.states)
		}
		if got := e.Protocol.NumInputs(); got != tc.inputs {
			t.Errorf("%q: %d inputs, want %d", tc.spec, got, tc.inputs)
		}
	}
}

func TestFromNameInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "nonsense", "flock", "flock:x", "flock:0", "succinct:99",
		"binary:-1", "mod:0:1", "mod:3", "mod:3:x", "leaderflock:abc",
	} {
		if _, err := FromName(spec); err == nil {
			t.Errorf("FromName(%q) should fail", spec)
		}
	}
	if _, err := FromName("zzz"); err == nil || !strings.Contains(err.Error(), "unknown spec") {
		t.Errorf("unknown spec error should hint at valid specs: %v", err)
	}
}
