package protocols

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/protocol"
)

func TestFromNameValid(t *testing.T) {
	tests := []struct {
		spec   string
		states int
		inputs int
	}{
		{"flock:5", 6, 1},
		{"succinct:3", 5, 1},
		{"binary:7", 6, 1},
		{"leaderflock:2", 5, 1},
		{"majority", 4, 2},
		{"parity", 4, 1},
		{"mod:3:1", 5, 1},
		{"mod:5:1,4", 7, 1},
		{"true", 1, 1},
		{"false", 1, 1},
	}
	for _, tc := range tests {
		e, err := FromName(tc.spec)
		if err != nil {
			t.Errorf("FromName(%q): %v", tc.spec, err)
			continue
		}
		if got := e.Protocol.NumStates(); got != tc.states {
			t.Errorf("%q: %d states, want %d", tc.spec, got, tc.states)
		}
		if got := e.Protocol.NumInputs(); got != tc.inputs {
			t.Errorf("%q: %d inputs, want %d", tc.spec, got, tc.inputs)
		}
	}
}

func TestFromNameInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "nonsense", "flock", "flock:", "flock:x", "flock:0", "succinct:99",
		"binary:-1", "binary:", "mod:0:1", "mod:3", "mod:3:", "mod:3:x",
		"leaderflock:abc", "leaderflock:0", "succinct:-1", ":", "::", "flock:5:extra:junk:x",
	} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			// Malformed specs must return errors — never panic.
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("FromName(%q) panicked: %v", spec, r)
				}
			}()
			if _, err := FromName(spec); err == nil {
				t.Errorf("FromName(%q) should fail", spec)
			}
		})
	}
	if _, err := FromName("zzz"); err == nil || !strings.Contains(err.Error(), "unknown spec") {
		t.Errorf("unknown spec error should hint at valid specs: %v", err)
	}
}

func TestRegistryResolvesBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, spec := range []string{"flock:5", "majority", "mod:3:1,2", "binary:7"} {
		e, err := r.Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		if e.Protocol == nil || e.Pred == nil {
			t.Fatalf("Resolve(%q): incomplete entry", spec)
		}
	}
	for _, spec := range []string{"", "flock:", "mod:3:x", "nonsense:1"} {
		if _, err := r.Resolve(spec); err == nil {
			t.Errorf("Resolve(%q) should fail", spec)
		}
	}
}

func TestRegistryUserConstructors(t *testing.T) {
	r := NewRegistry()
	ctor := func(args []string) (Entry, error) {
		if len(args) != 1 {
			return Entry{}, errors.New("want exactly one arg")
		}
		return Parity(), nil
	}
	if err := r.Register("myparity", ctor); err != nil {
		t.Fatalf("Register: %v", err)
	}
	e, err := r.Resolve("myparity:1")
	if err != nil {
		t.Fatalf("Resolve(myparity:1): %v", err)
	}
	want := Parity()
	if e.Protocol.NumStates() != want.Protocol.NumStates() {
		t.Errorf("resolved %d states, want %d", e.Protocol.NumStates(), want.Protocol.NumStates())
	}
	if _, err := r.Resolve("myparity"); err == nil {
		t.Error("constructor error should propagate")
	}
	// Registration hygiene.
	for name, c := range map[string]Constructor{
		"":         ctor,
		"a:b":      ctor,
		"flock":    ctor, // shadows builtin
		"myparity": ctor, // duplicate
		"nilctor":  nil,
	} {
		if err := r.Register(name, c); err == nil {
			t.Errorf("Register(%q) should fail", name)
		}
	}
	// A fresh registry does not see another registry's constructors.
	if _, err := NewRegistry().Resolve("myparity:1"); err == nil {
		t.Error("registries must be isolated")
	}
}

// TestRegistrySpecRoundTrip checks that every builtin spec resolves to a
// protocol that survives the JSON round trip intact when re-resolved as an
// inline protocol.
func TestRegistrySpecRoundTrip(t *testing.T) {
	r := NewRegistry()
	for _, spec := range []string{
		"flock:4", "succinct:2", "binary:6", "leaderflock:2",
		"majority", "parity", "mod:4:1,3", "true", "false",
	} {
		e, err := r.Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", spec, err)
		}
		data, err := json.Marshal(e.Protocol)
		if err != nil {
			t.Fatalf("%q: marshal: %v", spec, err)
		}
		p2, err := protocol.Parse(data)
		if err != nil {
			t.Fatalf("%q: reparse: %v", spec, err)
		}
		if p2.NumStates() != e.Protocol.NumStates() ||
			p2.NumTransitions() != e.Protocol.NumTransitions() ||
			p2.NumInputs() != e.Protocol.NumInputs() ||
			p2.Leaderless() != e.Protocol.Leaderless() {
			t.Errorf("%q: round trip changed the protocol", spec)
		}
		data2, err := json.Marshal(p2)
		if err != nil {
			t.Fatalf("%q: re-marshal: %v", spec, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%q: JSON not canonical under round trip", spec)
		}
	}
}

func TestSpecHelpAndNames(t *testing.T) {
	if len(SpecHelp()) != len(builtins) {
		t.Errorf("SpecHelp lists %d specs, want %d", len(SpecHelp()), len(builtins))
	}
	r := NewRegistry()
	if err := r.Register("custom", func([]string) (Entry, error) { return Parity(), nil }); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, n := range r.Names() {
		if n == "custom" {
			found = true
		}
	}
	if !found {
		t.Error("Names() should include registered constructors")
	}
}
