package protocols

// Catalog returns a representative selection of zoo protocols with their
// specifications, used for table-driven cross-package tests and experiments.
// All entries are small enough for exhaustive verification up to their
// MaxExactInput.
func Catalog() map[string]Entry {
	return map[string]Entry{
		"flock(5)":         FlockOfBirds(5),
		"flock(8)=P_3":     PaperPk(3),
		"succinct(2)=P'_2": Succinct(2),
		"succinct(3)=P'_3": Succinct(3),
		"binary(6)":        BinaryThreshold(6),
		"binary(7)":        BinaryThreshold(7),
		"majority":         Majority(),
		"parity":           Parity(),
		"mod3∈{1}":         ModuloIn(3, 1),
		"leader-flock(3)":  LeaderFlock(3),
		"constant(true)":   Constant(true),
		"constant(false)":  Constant(false),
		"flock(3)∧parity":  Product(FlockOfBirds(3), Parity(), OpAnd),
		"flock(3)∨parity":  Product(FlockOfBirds(3), Parity(), OpOr),
		"¬parity":          Negate(Parity()),
		"linear(2x+3y≥7)":  LinearThreshold([]int64{2, 3}, 7),
		"interval[2,4]":    Interval(2, 4),
	}
}

// ThresholdFamilies returns, for a given η, all threshold constructions in
// the zoo computing x ≥ η, keyed by construction name. Used by experiments
// comparing state counts (the state-complexity trade-off of Section 2.3).
func ThresholdFamilies(eta int64) map[string]Entry {
	out := map[string]Entry{
		"flock-of-birds": FlockOfBirds(eta),
		"binary":         BinaryThreshold(eta),
		"leader-flock":   LeaderFlock(eta),
	}
	// The succinct protocol exists only for powers of two.
	if eta > 0 && eta&(eta-1) == 0 {
		k := uint(0)
		for 1<<k < eta {
			k++
		}
		out["succinct"] = Succinct(k)
	}
	return out
}
