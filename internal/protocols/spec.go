package protocols

import (
	"fmt"
	"strconv"
	"strings"
)

// FromName builds a zoo protocol from a compact spec string, used by the
// command line tools:
//
//	flock:η         flock-of-birds for x ≥ η
//	succinct:k      P'_k for x ≥ 2^k
//	binary:η        logarithmic-state threshold for x ≥ η
//	leaderflock:η   one-leader threshold for x ≥ η
//	majority        4-state majority (two inputs)
//	parity          x odd
//	mod:m:r[,r...]  x mod m ∈ {r, ...}
//	true | false    constant predicates
func FromName(spec string) (Entry, error) {
	parts := strings.Split(spec, ":")
	arg := func(i int) (int64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("protocols: spec %q needs an argument", spec)
		}
		v, err := strconv.ParseInt(parts[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("protocols: spec %q: %w", spec, err)
		}
		return v, nil
	}
	switch parts[0] {
	case "flock":
		eta, err := arg(1)
		if err != nil {
			return Entry{}, err
		}
		if eta < 1 {
			return Entry{}, fmt.Errorf("protocols: flock needs η ≥ 1")
		}
		return FlockOfBirds(eta), nil
	case "succinct":
		k, err := arg(1)
		if err != nil {
			return Entry{}, err
		}
		if k < 0 || k > 40 {
			return Entry{}, fmt.Errorf("protocols: succinct needs 0 ≤ k ≤ 40")
		}
		return Succinct(uint(k)), nil
	case "binary":
		eta, err := arg(1)
		if err != nil {
			return Entry{}, err
		}
		if eta < 1 {
			return Entry{}, fmt.Errorf("protocols: binary needs η ≥ 1")
		}
		return BinaryThreshold(eta), nil
	case "leaderflock":
		eta, err := arg(1)
		if err != nil {
			return Entry{}, err
		}
		if eta < 1 {
			return Entry{}, fmt.Errorf("protocols: leaderflock needs η ≥ 1")
		}
		return LeaderFlock(eta), nil
	case "majority":
		return Majority(), nil
	case "parity":
		return Parity(), nil
	case "true":
		return Constant(true), nil
	case "false":
		return Constant(false), nil
	case "mod":
		m, err := arg(1)
		if err != nil {
			return Entry{}, err
		}
		if m < 1 {
			return Entry{}, fmt.Errorf("protocols: mod needs m ≥ 1")
		}
		if len(parts) < 3 {
			return Entry{}, fmt.Errorf("protocols: mod needs residues, e.g. mod:3:1")
		}
		var rs []int64
		for _, s := range strings.Split(parts[2], ",") {
			r, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return Entry{}, fmt.Errorf("protocols: bad residue %q: %w", s, err)
			}
			rs = append(rs, r)
		}
		return ModuloIn(m, rs...), nil
	default:
		return Entry{}, fmt.Errorf("protocols: unknown spec %q (try flock:5, succinct:3, binary:7, majority, parity, mod:3:1, leaderflock:4)", spec)
	}
}
