package protocols

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// A builtin ties a spec head token (the part before the first colon) to a
// constructor and a usage string. The builtin table is the ground layer of
// every Registry; user constructors registered at runtime sit on top.
type builtin struct {
	ctor    Constructor
	help    string
	maxArgs int
}

// builtins maps head tokens of compact spec strings to constructors:
//
//	flock:η         flock-of-birds for x ≥ η
//	succinct:k      P'_k for x ≥ 2^k
//	binary:η        logarithmic-state threshold for x ≥ η
//	leaderflock:η   one-leader threshold for x ≥ η
//	majority        4-state majority (two inputs)
//	parity          x odd
//	mod:m:r[,r...]  x mod m ∈ {r, ...}
//	true | false    constant predicates
var builtins = map[string]builtin{
	"flock": {help: "flock:η", maxArgs: 1, ctor: func(args []string) (Entry, error) {
		eta, err := intArg("flock", args, 0)
		if err != nil {
			return Entry{}, err
		}
		if eta < 1 {
			return Entry{}, fmt.Errorf("protocols: flock needs η ≥ 1")
		}
		return FlockOfBirds(eta), nil
	}},
	"succinct": {help: "succinct:k", maxArgs: 1, ctor: func(args []string) (Entry, error) {
		k, err := intArg("succinct", args, 0)
		if err != nil {
			return Entry{}, err
		}
		if k < 0 || k > 40 {
			return Entry{}, fmt.Errorf("protocols: succinct needs 0 ≤ k ≤ 40")
		}
		return Succinct(uint(k)), nil
	}},
	"binary": {help: "binary:η", maxArgs: 1, ctor: func(args []string) (Entry, error) {
		eta, err := intArg("binary", args, 0)
		if err != nil {
			return Entry{}, err
		}
		if eta < 1 {
			return Entry{}, fmt.Errorf("protocols: binary needs η ≥ 1")
		}
		return BinaryThreshold(eta), nil
	}},
	"leaderflock": {help: "leaderflock:η", maxArgs: 1, ctor: func(args []string) (Entry, error) {
		eta, err := intArg("leaderflock", args, 0)
		if err != nil {
			return Entry{}, err
		}
		if eta < 1 {
			return Entry{}, fmt.Errorf("protocols: leaderflock needs η ≥ 1")
		}
		return LeaderFlock(eta), nil
	}},
	"majority": {help: "majority", ctor: func([]string) (Entry, error) {
		return Majority(), nil
	}},
	"parity": {help: "parity", ctor: func([]string) (Entry, error) {
		return Parity(), nil
	}},
	"true": {help: "true", ctor: func([]string) (Entry, error) {
		return Constant(true), nil
	}},
	"false": {help: "false", ctor: func([]string) (Entry, error) {
		return Constant(false), nil
	}},
	"mod": {help: "mod:m:r[,r...]", maxArgs: 2, ctor: func(args []string) (Entry, error) {
		m, err := intArg("mod", args, 0)
		if err != nil {
			return Entry{}, err
		}
		if m < 1 {
			return Entry{}, fmt.Errorf("protocols: mod needs m ≥ 1")
		}
		if len(args) < 2 {
			return Entry{}, fmt.Errorf("protocols: mod needs residues, e.g. mod:3:1")
		}
		var rs []int64
		for _, s := range strings.Split(args[1], ",") {
			r, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return Entry{}, fmt.Errorf("protocols: bad residue %q: %w", s, err)
			}
			rs = append(rs, r)
		}
		return ModuloIn(m, rs...), nil
	}},
}

// intArg parses the i-th colon-separated argument of a spec as an integer.
func intArg(head string, args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("protocols: spec %q needs an argument", head)
	}
	v, err := strconv.ParseInt(args[i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("protocols: spec %q: %w", head+":"+strings.Join(args, ":"), err)
	}
	return v, nil
}

// atMostArgs rejects trailing junk after the expected spec arguments.
func atMostArgs(head string, args []string, n int) error {
	if len(args) > n {
		return fmt.Errorf("protocols: spec %q takes at most %d argument(s), got %d",
			head+":"+strings.Join(args, ":"), n, len(args))
	}
	return nil
}

// SpecHelp lists the usage strings of all builtin specs, sorted.
func SpecHelp() []string {
	out := make([]string, 0, len(builtins))
	for _, b := range builtins {
		out = append(out, b.help)
	}
	sort.Strings(out)
	return out
}

// FromName builds a zoo protocol from a compact spec string (see the
// builtins table for the grammar). It resolves builtin specs only; use a
// Registry to also resolve user-registered constructors.
func FromName(spec string) (Entry, error) {
	if spec == "" {
		return Entry{}, fmt.Errorf("protocols: empty spec (try %s)", strings.Join(SpecHelp(), ", "))
	}
	parts := strings.Split(spec, ":")
	b, ok := builtins[parts[0]]
	if !ok {
		return Entry{}, fmt.Errorf("protocols: unknown spec %q (known specs: %s)", spec, strings.Join(SpecHelp(), ", "))
	}
	if err := atMostArgs(parts[0], parts[1:], b.maxArgs); err != nil {
		return Entry{}, err
	}
	return b.ctor(parts[1:])
}
