// Package protocols is the protocol zoo: concrete population protocols with
// their specifications. It contains the paper's Example 2.1 constructions
// (the flock-of-birds protocol P_k and its succinct variant P'_k), a
// logarithmic-state threshold protocol for arbitrary η witnessing the
// Ω-direction of Theorem 2.2, and the classic majority and modulo protocols,
// together with a product construction for boolean combinations.
//
// Every constructor returns a protocol paired with the predicate it computes;
// the reach package verifies these pairings exhaustively for bounded inputs.
package protocols

import (
	"fmt"

	"repro/internal/pred"
	"repro/internal/protocol"
)

// Entry pairs a protocol with the predicate it computes and a bound up to
// which exhaustive verification is practical.
type Entry struct {
	Protocol *protocol.Protocol
	Pred     pred.Pred
	// MaxExactInput is a per-entry population bound for exhaustive
	// verification in tests (chosen so the configuration graphs stay small).
	MaxExactInput int64
}

// FlockOfBirds returns the paper's protocol P_k generalized from 2^k to an
// arbitrary threshold η ≥ 1 (Example 2.1): each agent stores a number,
// initially 1; when two agents meet, one stores the (capped) sum and the
// other 0; an agent that reaches η converts everyone. It computes x ≥ η with
// η+1 states.
func FlockOfBirds(eta int64) Entry {
	if eta < 1 {
		panic(fmt.Sprintf("protocols: FlockOfBirds needs η ≥ 1, got %d", eta))
	}
	b := protocol.NewBuilder(fmt.Sprintf("flock-of-birds(η=%d)", eta))
	states := make([]protocol.State, eta+1)
	for v := int64(0); v <= eta; v++ {
		out := 0
		if v == eta {
			out = 1
		}
		states[v] = b.AddState(fmt.Sprintf("%d", v), out)
	}
	for a := int64(0); a <= eta; a++ {
		for c := a; c <= eta; c++ {
			if a+c < eta {
				b.AddTransition(states[a], states[c], states[0], states[a+c])
			} else {
				b.AddTransition(states[a], states[c], states[eta], states[eta])
			}
		}
	}
	b.AddInput("x", states[1])
	return Entry{
		Protocol:      b.MustBuild(),
		Pred:          pred.NewCounting(eta),
		MaxExactInput: maxExactForStates(int(eta) + 1),
	}
}

// PaperPk returns Example 2.1's P_k, the flock-of-birds protocol for
// threshold 2^k, with 2^k + 1 states.
func PaperPk(k uint) Entry {
	return FlockOfBirds(1 << k)
}

// Succinct returns Example 2.1's succinct protocol P'_k computing x ≥ 2^k
// with k+2 states {0, 2^0, ..., 2^k}: equal powers merge (2^i, 2^i ↦ 0,
// 2^(i+1)) and the top power converts everyone.
func Succinct(k uint) Entry {
	b := protocol.NewBuilder(fmt.Sprintf("succinct(2^%d)", k))
	zero := b.AddState("0", 0)
	pow := make([]protocol.State, k+1)
	for i := uint(0); i <= k; i++ {
		out := 0
		if i == k {
			out = 1
		}
		pow[i] = b.AddState(fmt.Sprintf("2^%d", i), out)
	}
	for i := uint(0); i < k; i++ {
		b.AddTransition(pow[i], pow[i], zero, pow[i+1])
	}
	b.AddTransition(zero, pow[k], pow[k], pow[k])
	for i := uint(0); i <= k; i++ {
		b.AddTransition(pow[i], pow[k], pow[k], pow[k])
	}
	b.AddInput("x", pow[0])
	return Entry{
		Protocol:      b.CompleteWithIdentity().MustBuild(),
		Pred:          pred.NewCounting(1 << k),
		MaxExactInput: maxExactForStates(int(k) + 2),
	}
}

// BinaryThreshold returns a leaderless protocol computing x ≥ η with
// O(log η) states for arbitrary η ≥ 1, witnessing BB(n) ∈ Ω(2^n) up to
// constants (Theorem 2.2, Ω-direction; cf. Blondin et al. [12]).
//
// Construction. Write η = 2^(a_1) + ... + 2^(a_r) with a_1 > ... > a_r.
// Agents carry values from {0} ∪ {2^i : i ≤ a_1} ∪ {A_2, ..., A_(r-1)} where
// A_m = 2^(a_1) + ... + 2^(a_m) is a prefix sum of η's binary expansion,
// plus an absorbing Yes state. Rules, in order of precedence for each pair:
//
//  1. Yes converts: Yes, q ↦ Yes, Yes.
//  2. Sum detection: u, v ↦ Yes, Yes whenever value(u) + value(v) ≥ η.
//  3. Power merge: 2^i, 2^i ↦ 0, 2^(i+1).
//  4. Prefix extend: A_m, 2^(a_(m+1)) ↦ 0, A_(m+1) (with A_1 = 2^(a_1)).
//  5. Otherwise the pair is inert.
//
// Soundness: the total value Σ value is exactly x until a Yes appears, rules
// 3-4 conserve it, and rule 2 fires only when two agents witness value ≥ η,
// which requires x ≥ η. Completeness: if the total is ≥ η, either two agents
// already sum to ≥ η, or the largest prefix A_m can always be extended — the
// remaining agents hold ≥ η − A_m in powers ≤ 2^(a_(m+1)) (any larger power
// triggers rule 2 because A_m + 2·2^(a_(m+1)) > η), and powers summing to at
// least 2^(a_(m+1)) can merge up to produce it.
func BinaryThreshold(eta int64) Entry {
	if eta < 1 {
		panic(fmt.Sprintf("protocols: BinaryThreshold needs η ≥ 1, got %d", eta))
	}
	// Bit positions of η, descending.
	var bits []uint
	for i := 62; i >= 0; i-- {
		if eta&(1<<uint(i)) != 0 {
			bits = append(bits, uint(i))
		}
	}
	top := bits[0]

	b := protocol.NewBuilder(fmt.Sprintf("binary-threshold(η=%d)", eta))
	type valued struct {
		st  protocol.State
		val int64
	}
	var vs []valued
	add := func(name string, val int64) protocol.State {
		st := b.AddState(name, 0)
		vs = append(vs, valued{st, val})
		return st
	}
	zero := add("0", 0)
	_ = zero
	pow := make(map[uint]protocol.State, top+1)
	for i := uint(0); i <= top; i++ {
		pow[i] = add(fmt.Sprintf("2^%d", i), 1<<i)
	}
	// Prefix-sum states A_m for m = 2..r-1 (A_1 is the top power itself;
	// completing A_(r-1) with the last bit reaches η and is caught by the
	// sum rule).
	acc := make([]protocol.State, len(bits))
	accVal := make([]int64, len(bits))
	acc[0], accVal[0] = pow[top], 1<<top
	for m := 1; m < len(bits)-1; m++ {
		accVal[m] = accVal[m-1] + 1<<bits[m]
		acc[m] = add(fmt.Sprintf("A%d=%d", m+1, accVal[m]), accVal[m])
	}
	yes := b.AddState("Yes", 1)

	// extend[q] = the accumulator obtained by extending q with its next
	// needed bit, and the bit's power state.
	extend := make(map[protocol.State]ext)
	for m := 0; m+1 < len(bits)-1; m++ {
		extend[acc[m]] = ext{pow[bits[m+1]], acc[m+1]}
	}

	value := make(map[protocol.State]int64, len(vs))
	for _, v := range vs {
		value[v.st] = v.val
	}

	// Enumerate every unordered pair and decide its transition.
	for ai := 0; ai < len(vs); ai++ {
		for ci := ai; ci < len(vs); ci++ {
			u, v := vs[ai], vs[ci]
			switch {
			case u.val+v.val >= eta:
				b.AddTransition(u.st, v.st, yes, yes)
			case u.st == v.st && isPower(u.val) && u.val > 0:
				b.AddTransition(u.st, v.st, zero, powerState(pow, u.val*2))
			case extendMatches(extend, u.st, v.st):
				b.AddTransition(u.st, v.st, zero, extend[u.st].result)
			case extendMatches(extend, v.st, u.st):
				b.AddTransition(u.st, v.st, zero, extend[v.st].result)
			default:
				b.AddTransition(u.st, v.st, u.st, v.st)
			}
		}
	}
	for _, v := range vs {
		b.AddTransition(yes, v.st, yes, yes)
	}
	b.AddTransition(yes, yes, yes, yes)
	b.AddInput("x", pow[0])
	return Entry{
		Protocol:      b.MustBuild(),
		Pred:          pred.NewCounting(eta),
		MaxExactInput: maxExactForStates(len(vs) + 1),
	}
}

func isPower(v int64) bool { return v > 0 && v&(v-1) == 0 }

func powerState(pow map[uint]protocol.State, v int64) protocol.State {
	for i := uint(0); i < 63; i++ {
		if int64(1)<<i == v {
			return pow[i]
		}
	}
	panic(fmt.Sprintf("protocols: no power state for %d", v))
}

func extendMatches(extend map[protocol.State]ext, a, c protocol.State) bool {
	e, ok := extend[a]
	return ok && e.nextBit == c
}

// ext is declared at package scope so extendMatches can name it.
type ext struct {
	nextBit protocol.State
	result  protocol.State
}

// maxExactForStates picks an exhaustive-verification population bound that
// keeps |configs| = C(n+d-1, d-1) manageable for d states.
func maxExactForStates(d int) int64 {
	switch {
	case d <= 4:
		return 14
	case d <= 6:
		return 11
	case d <= 9:
		return 9
	case d <= 12:
		return 7
	default:
		return 5
	}
}
