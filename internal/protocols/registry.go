package protocols

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Constructor builds a protocol entry from the colon-separated arguments of
// a spec string (everything after the head token). A spec "myproto:3:x"
// registered under "myproto" invokes the constructor with args ["3", "x"].
type Constructor func(args []string) (Entry, error)

// Registry resolves compact protocol spec strings ("flock:8", "majority")
// to protocol entries. Every registry resolves the builtin zoo; user
// constructors registered with Register extend it at runtime. A Registry is
// safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	ctors map[string]Constructor
}

// NewRegistry returns a registry resolving the builtin zoo specs.
func NewRegistry() *Registry {
	return &Registry{ctors: make(map[string]Constructor)}
}

// Register adds a user constructor under the given head token. The name must
// be non-empty, colon-free, and must not collide with a builtin or an
// already-registered constructor.
func (r *Registry) Register(name string, ctor Constructor) error {
	if name == "" {
		return fmt.Errorf("protocols: register: empty name")
	}
	if strings.Contains(name, ":") {
		return fmt.Errorf("protocols: register: name %q must not contain ':'", name)
	}
	if ctor == nil {
		return fmt.Errorf("protocols: register: nil constructor for %q", name)
	}
	if _, ok := builtins[name]; ok {
		return fmt.Errorf("protocols: register: %q shadows a builtin spec", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ctors[name]; ok {
		return fmt.Errorf("protocols: register: %q already registered", name)
	}
	r.ctors[name] = ctor
	return nil
}

// Resolve builds the protocol entry named by spec, trying user-registered
// constructors first and falling back to the builtin zoo.
func (r *Registry) Resolve(spec string) (Entry, error) {
	if spec == "" {
		return Entry{}, fmt.Errorf("protocols: empty spec (try %s)", strings.Join(SpecHelp(), ", "))
	}
	parts := strings.Split(spec, ":")
	r.mu.RLock()
	ctor, ok := r.ctors[parts[0]]
	r.mu.RUnlock()
	if ok {
		e, err := ctor(parts[1:])
		if err != nil {
			return Entry{}, fmt.Errorf("protocols: spec %q: %w", spec, err)
		}
		if e.Protocol == nil {
			return Entry{}, fmt.Errorf("protocols: spec %q: constructor returned no protocol", spec)
		}
		return e, nil
	}
	return FromName(spec)
}

// Names lists the resolvable spec head tokens — builtin names plus
// user-registered ones — sorted. Each entry is itself a valid spec prefix
// ("flock" for "flock:8"); see SpecHelp for the argument grammar.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	r.mu.RLock()
	for name := range r.ctors {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// defaultRegistry backs the package-level Register/Resolve used by the
// public pp facade.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// Register adds a user constructor to the default registry.
func Register(name string, ctor Constructor) error {
	return defaultRegistry.Register(name, ctor)
}

// Resolve resolves a spec against the default registry.
func Resolve(spec string) (Entry, error) {
	return defaultRegistry.Resolve(spec)
}
