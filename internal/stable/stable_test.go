package stable

import (
	"errors"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/wordhash"
)

// configIndex maps configurations to dense ids for the brute-force
// propagation: open addressing keyed by the raw-coordinate hash
// (internal/wordhash), the same playbook as the reach node index and the
// dioph candidate set — no string keys materialized per configuration.
type configIndex struct {
	configs []multiset.Vec
	slots   []int32 // config id + 1; 0 = empty
	hashes  []uint64
}

func (ix *configIndex) lookup(c multiset.Vec) (int, bool) {
	if len(ix.slots) == 0 {
		return 0, false
	}
	h := wordhash.Sum(c)
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		id := ix.slots[i]
		if id == 0 {
			return 0, false
		}
		if ix.hashes[i] == h && ix.configs[id-1].Equal(c) {
			return int(id - 1), true
		}
	}
}

// add inserts a copy of c (which must not be present) and returns its id.
func (ix *configIndex) add(c multiset.Vec) int {
	if (len(ix.configs)+1)*4 > len(ix.slots)*3 {
		ix.grow()
	}
	ix.configs = append(ix.configs, c.Clone())
	ix.insert(int32(len(ix.configs)), wordhash.Sum(c))
	return len(ix.configs) - 1
}

func (ix *configIndex) insert(idPlus1 int32, h uint64) {
	mask := uint64(len(ix.slots) - 1)
	i := h & mask
	for ix.slots[i] != 0 {
		i = (i + 1) & mask
	}
	ix.slots[i] = idPlus1
	ix.hashes[i] = h
}

func (ix *configIndex) grow() {
	newCap := 64
	if len(ix.slots) > 0 {
		newCap = len(ix.slots) * 2
	}
	oldSlots, oldHashes := ix.slots, ix.hashes
	ix.slots = make([]int32, newCap)
	ix.hashes = make([]uint64, newCap)
	for i, id := range oldSlots {
		if id != 0 {
			ix.insert(id, oldHashes[i])
		}
	}
}

// bruteStable computes b-stability for every configuration of size s by
// explicit backward propagation over the full size-s configuration space —
// an implementation independent of the symbolic backward coverability, used
// as ground truth. It returns the enumerated configurations and their
// stability flags, index-aligned.
func bruteStable(p *protocol.Protocol, s int64, b int) ([]multiset.Vec, []bool) {
	d := p.NumStates()
	ix := &configIndex{}
	cur := multiset.New(d)
	var rec func(i int, left int64)
	rec = func(i int, left int64) {
		if i == d-1 {
			cur[i] = left
			ix.add(cur)
			cur[i] = 0
			return
		}
		for n := int64(0); n <= left; n++ {
			cur[i] = n
			rec(i+1, left-n)
		}
		cur[i] = 0
	}
	rec(0, s)
	configs := ix.configs

	// bad[i]: configuration covers a state with output ≠ b.
	bad := make([]bool, len(configs))
	for i, c := range configs {
		for q, n := range c {
			if n > 0 && p.Output(protocol.State(q)) != b {
				bad[i] = true
				break
			}
		}
	}
	// canReachBad fixpoint over successors.
	succs := make([][]int, len(configs))
	for i, c := range configs {
		for t := 0; t < p.NumTransitions(); t++ {
			if !p.Enabled(c, t) || p.Displacement(t).IsZero() {
				continue
			}
			j, ok := ix.lookup(c.Add(p.Displacement(t)))
			if !ok {
				panic("bruteStable: successor escaped the size-s slice")
			}
			succs[i] = append(succs[i], j)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := range configs {
			if bad[i] {
				continue
			}
			for _, j := range succs[i] {
				if bad[j] {
					bad[i] = true
					changed = true
					break
				}
			}
		}
	}
	stable := make([]bool, len(configs))
	for i := range configs {
		stable[i] = !bad[i]
	}
	return configs, stable
}

// TestCrossValidateAgainstBruteForce is the central soundness test: the
// symbolic stable sets agree with explicit backward propagation on every
// configuration of every small size, for a spread of zoo protocols.
func TestCrossValidateAgainstBruteForce(t *testing.T) {
	entries := map[string]protocols.Entry{
		"majority":  protocols.Majority(),
		"flock(4)":  protocols.FlockOfBirds(4),
		"succinct2": protocols.Succinct(2),
		"binary(5)": protocols.BinaryThreshold(5),
		"parity":    protocols.Parity(),
		"mod3":      protocols.ModuloIn(3, 1),
		"leader(2)": protocols.LeaderFlock(2),
	}
	for name, e := range entries {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := e.Protocol
			a, err := Analyze(p, Options{})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			for s := int64(1); s <= 5; s++ {
				for b := 0; b <= 1; b++ {
					configs, want := bruteStable(p, s, b)
					for i, c := range configs {
						if got := a.IsStable(c, b); got != want[i] {
							t.Fatalf("size %d, b=%d, config %s: symbolic=%t brute=%t",
								s, b, p.FormatConfig(c), got, want[i])
						}
					}
				}
			}
		})
	}
}

func TestMajorityStableSetsExact(t *testing.T) {
	e := protocols.Majority()
	p := e.Protocol
	a, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	A, _ := p.StateByName("A")
	B, _ := p.StateByName("B")
	pa, _ := p.StateByName("a")
	pb, _ := p.StateByName("b")

	// SC_0 is exactly the B/b-only configurations (A and a can never be
	// created from them), SC_1 the A/a-only ones.
	sc0 := a.StableSet(0)
	sc1 := a.StableSet(1)
	mk := func(va, vb, vpa, vpb int64) multiset.Vec {
		c := multiset.New(4)
		c[A], c[B], c[pa], c[pb] = va, vb, vpa, vpb
		return c
	}
	if !sc0.Contains(mk(0, 3, 0, 5)) || sc0.Contains(mk(1, 3, 0, 5)) || sc0.Contains(mk(0, 3, 1, 5)) {
		t.Fatalf("SC_0 wrong: %s", sc0)
	}
	if !sc1.Contains(mk(4, 0, 2, 0)) || sc1.Contains(mk(4, 1, 2, 0)) || sc1.Contains(mk(4, 0, 2, 1)) {
		t.Fatalf("SC_1 wrong: %s", sc1)
	}
	// Norms: both stable sets are "0/ω" boxes, so the measured norm is 0 —
	// astronomically below β(4) (Lemma 3.2 is extremely conservative).
	if a.MeasuredNorm() != 0 {
		t.Fatalf("measured norm = %d, want 0", a.MeasuredNorm())
	}
}

func TestFlockStableSets(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	a, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	top, _ := p.StateByName("4")
	one, _ := p.StateByName("1")
	allTop := multiset.New(p.NumStates())
	allTop[top] = 3
	if b, ok := a.Classify(allTop); !ok || b != 1 {
		t.Fatalf("all-η must be 1-stable, got %d,%t", b, ok)
	}
	// Value 3 < 4 and no η agent: 0-stable.
	low := multiset.New(p.NumStates())
	low[one] = 3
	if b, ok := a.Classify(low); !ok || b != 0 {
		t.Fatalf("three 1-agents must be 0-stable, got %d,%t", b, ok)
	}
	// Value 4: can still reach η, and covers 0-output states: unstable.
	mid := multiset.New(p.NumStates())
	mid[one] = 4
	if _, ok := a.Classify(mid); ok {
		t.Fatal("four 1-agents are not stable for either output")
	}
	// SC_1 = {configurations populating only η}.
	sc1 := a.StableSet(1)
	if sc1.Size() != 1 {
		t.Fatalf("SC_1 = %s, want a single ideal", sc1)
	}
	id := sc1.Ideals()[0]
	for q := 0; q < p.NumStates(); q++ {
		wantOmega := q == int(top)
		if (id.Cap(q) < 0) != wantOmega {
			t.Fatalf("SC_1 ideal = %s", id)
		}
	}
}

func TestStableDownwardClosed(t *testing.T) {
	// Lemma 3.1: SC_b is downward closed; check via membership on samples.
	e := protocols.BinaryThreshold(5)
	p := e.Protocol
	a, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ic := p.InitialConfigN(3) // 3 < 5 ⇒ 0-stable region reachable
	if !a.IsStable(ic, 0) {
		t.Fatal("IC(3) should be 0-stable for η=5 (value can never reach 5)")
	}
	smaller := ic.Clone()
	smaller[p.InputState(0)] = 1
	if !a.IsStable(smaller, 0) {
		t.Fatal("downward closure violated")
	}
}

func TestDecomposeStable(t *testing.T) {
	e := protocols.Majority()
	p := e.Protocol
	a, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	B, _ := p.StateByName("B")
	pb, _ := p.StateByName("b")
	c := multiset.New(4)
	c[B], c[pb] = 2, 7
	bb, s, da, ok := a.DecomposeStable(c)
	if !ok {
		t.Fatal("B/b configuration must be stable")
	}
	if !bb.Add(da).Equal(c) {
		t.Fatalf("B + Da = %v ≠ C = %v", bb.Add(da), c)
	}
	if !da.SupportedBy(s.ToMap()) {
		t.Fatalf("Da = %v not supported by S = %v", da, s.Members())
	}
	for i := range bb {
		if s.Test(i) && bb[i] != 0 {
			t.Fatalf("B must vanish on S: %v / %v", bb, s.Members())
		}
	}
	// Unstable configuration: no decomposition.
	A, _ := p.StateByName("A")
	c[A] = 1
	if _, _, _, ok := a.DecomposeStable(c); ok {
		t.Fatal("A+B mix is not stable")
	}
}

func TestBasisElements(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	a, err := Analyze(e.Protocol, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for b := 0; b <= 1; b++ {
		for _, el := range a.Basis(b) {
			if el.Norm() < 0 {
				t.Fatal("negative norm")
			}
			// B must vanish on S.
			for i := range el.B {
				if el.S.Test(i) && el.B[i] != 0 {
					t.Fatalf("B nonzero on S: %v %v", el.B, el.S.Members())
				}
			}
		}
	}
	if len(a.SCBasis()) == 0 {
		t.Fatal("SC has a nonempty basis")
	}
	if a.Iterations(0) < 1 || a.Iterations(1) < 1 {
		t.Fatal("iteration counts must be positive")
	}
}

func TestAnalyzeBasisLimit(t *testing.T) {
	e := protocols.FlockOfBirds(6)
	_, err := Analyze(e.Protocol, Options{MaxBasis: 2})
	if !errors.Is(err, ErrBasisTooLarge) {
		t.Fatalf("want ErrBasisTooLarge, got %v", err)
	}
}

// TestSimWithExactOracle wires the analysis into the simulator: convergence
// is then detected by true stable-set membership rather than silence.
func TestSimWithExactOracle(t *testing.T) {
	e := protocols.Succinct(2) // x ≥ 4
	p := e.Protocol
	a, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, tc := range []struct {
		x    int64
		want int
	}{{4, 1}, {3, 0}, {9, 1}} {
		st, err := sim.Run(p, p.InitialConfigN(tc.x), sim.Options{Seed: 21, Oracle: a})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !st.Converged || st.Output != tc.want {
			t.Fatalf("x=%d: converged=%t output=%d, want %d", tc.x, st.Converged, st.Output, tc.want)
		}
		// The oracle's verdict must agree with the final configuration's
		// actual stability.
		if b, ok := a.Classify(st.Final); !ok || b != tc.want {
			t.Fatalf("final configuration misclassified: %d,%t", b, ok)
		}
	}
}

// The exact oracle can certify convergence before silence: for the flock
// protocol with x < η, the all-zero-value configurations keep churning
// (0,v ↦ 0,v is an identity, but v,w merges still fire) while the output is
// already stably 0. Check the oracle classifies such a configuration early.
func TestOracleBeatsSilence(t *testing.T) {
	e := protocols.FlockOfBirds(9)
	p := e.Protocol
	a, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// IC(5): value 5 < 9; merging continues but stability holds immediately.
	ic := p.InitialConfigN(5)
	if b, ok := a.Classify(ic); !ok || b != 0 {
		t.Fatalf("IC(5) is 0-stable for η=9, got %d,%t", b, ok)
	}
	if _, ok := (sim.Silence{P: p}).Classify(ic); ok {
		t.Fatal("silence oracle should NOT classify IC(5) (merges still enabled)")
	}
}
