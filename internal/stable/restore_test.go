package stable

import (
	"testing"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocols"
)

// TestRestoreEqualsAnalyze pins the durability contract of the disk
// artifact store: an Analysis rebuilt from its MinBasis form must be
// bit-identical to a fresh Analyze — same U_b element order, same SC
// decompositions, same SC basis — over the whole builtin catalog.
func TestRestoreEqualsAnalyze(t *testing.T) {
	for name, e := range protocols.Catalog() {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := e.Protocol
			fresh, err := Analyze(p, Options{})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			var basis [2][]multiset.Vec
			var iters, front [2]int
			for b := 0; b <= 1; b++ {
				basis[b] = fresh.Unstable(b).MinBasis()
				iters[b] = fresh.Iterations(b)
				front[b] = fresh.FrontierProcessed(b)
			}
			restored, err := Restore(p, basis, iters, front)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			for b := 0; b <= 1; b++ {
				if !restored.Unstable(b).Equal(fresh.Unstable(b)) {
					t.Fatalf("U_%d differs after restore", b)
				}
				fb, rb := fresh.Unstable(b).MinBasis(), restored.Unstable(b).MinBasis()
				if len(fb) != len(rb) {
					t.Fatalf("U_%d basis sizes differ: %d vs %d", b, len(fb), len(rb))
				}
				for i := range fb {
					if !fb[i].Equal(rb[i]) {
						t.Fatalf("U_%d basis element %d differs: %v vs %v", b, i, fb[i], rb[i])
					}
				}
				if restored.Iterations(b) != fresh.Iterations(b) ||
					restored.FrontierProcessed(b) != fresh.FrontierProcessed(b) {
					t.Fatalf("U_%d counters differ", b)
				}
			}
			fsc, rsc := fresh.SCBasis(), restored.SCBasis()
			if len(fsc) != len(rsc) {
				t.Fatalf("SC basis sizes differ: %d vs %d", len(fsc), len(rsc))
			}
			for i := range fsc {
				if !fsc[i].B.Equal(rsc[i].B) || !fsc[i].S.Equal(rsc[i].S) {
					t.Fatalf("SC basis element %d differs", i)
				}
			}
			if fresh.MeasuredNorm() != restored.MeasuredNorm() {
				t.Fatalf("MeasuredNorm differs: %d vs %d", fresh.MeasuredNorm(), restored.MeasuredNorm())
			}
		})
	}
}

// TestRestoreDerivedEqualsAnalyze pins the v2 artifact contract: an
// Analysis rebuilt from its bases PLUS the persisted derived
// decompositions — complementation skipped entirely — is bit-identical to
// a fresh Analyze, including the SC decomposition iteration order and the
// derived payload it would itself persist.
func TestRestoreDerivedEqualsAnalyze(t *testing.T) {
	for name, e := range protocols.Catalog() {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := e.Protocol
			fresh, err := Analyze(p, Options{})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			var basis [2][]multiset.Vec
			var iters, front [2]int
			for b := 0; b <= 1; b++ {
				basis[b] = fresh.Unstable(b).MinBasis()
				iters[b] = fresh.Iterations(b)
				front[b] = fresh.FrontierProcessed(b)
			}
			restored, err := RestoreDerived(p, basis, iters, front, fresh.Derived())
			if err != nil {
				t.Fatalf("RestoreDerived: %v", err)
			}
			for b := 0; b <= 1; b++ {
				if !restored.Unstable(b).Equal(fresh.Unstable(b)) {
					t.Fatalf("U_%d differs after derived restore", b)
				}
				fi, ri := fresh.StableSet(b).Ideals(), restored.StableSet(b).Ideals()
				if len(fi) != len(ri) {
					t.Fatalf("SC_%d decomposition sizes differ: %d vs %d", b, len(fi), len(ri))
				}
				for i := range fi {
					if !fi[i].Subsumes(ri[i]) || !ri[i].Subsumes(fi[i]) {
						t.Fatalf("SC_%d ideal %d differs: %v vs %v", b, i, fi[i], ri[i])
					}
				}
			}
			fsc, rsc := fresh.SCBasis(), restored.SCBasis()
			if len(fsc) != len(rsc) {
				t.Fatalf("SC basis sizes differ: %d vs %d", len(fsc), len(rsc))
			}
			for i := range fsc {
				if !fsc[i].B.Equal(rsc[i].B) || !fsc[i].S.Equal(rsc[i].S) {
					t.Fatalf("SC basis element %d differs", i)
				}
			}
			if fresh.MeasuredNorm() != restored.MeasuredNorm() {
				t.Fatalf("MeasuredNorm differs: %d vs %d", fresh.MeasuredNorm(), restored.MeasuredNorm())
			}
		})
	}
}

func TestRestoreDerivedRejectsBadDims(t *testing.T) {
	p := protocols.Majority().Protocol
	fresh, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var basis [2][]multiset.Vec
	for b := 0; b <= 1; b++ {
		basis[b] = fresh.Unstable(b).MinBasis()
	}
	der := fresh.Derived()
	der.SCAll = append(der.SCAll, ideal.FullIdeal(p.NumStates()+2))
	if _, err := RestoreDerived(p, basis, [2]int{1, 1}, [2]int{0, 0}, der); err == nil {
		t.Fatal("RestoreDerived accepted wrong-dimension ideal")
	}
}

func TestRestoreRejectsBadInput(t *testing.T) {
	p := protocols.Majority().Protocol
	fresh, err := Analyze(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var basis [2][]multiset.Vec
	for b := 0; b <= 1; b++ {
		basis[b] = fresh.Unstable(b).MinBasis()
	}
	if _, err := Restore(p, basis, [2]int{0, 1}, [2]int{0, 0}); err == nil {
		t.Fatal("Restore accepted zero iteration count")
	}
	bad := basis
	bad[0] = append([]multiset.Vec{multiset.New(p.NumStates() + 1)}, basis[0]...)
	if _, err := Restore(p, bad, [2]int{1, 1}, [2]int{0, 0}); err == nil {
		t.Fatal("Restore accepted wrong-dimension element")
	}
}
