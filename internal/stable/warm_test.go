package stable

import (
	"fmt"
	"testing"

	"repro/internal/ideal"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

// equalAnalyses fails the test unless warm and cold expose identical
// antichains element for element — same MinBasis slices in the same order
// for both outputs, same SC basis, same measured norm. This is the
// byte-identity contract of the incremental path: any durable encoding of
// the two analyses serializes to the same bytes.
func equalAnalyses(t *testing.T, label string, warm, cold *Analysis) {
	t.Helper()
	for b := 0; b <= 1; b++ {
		wb := warm.Unstable(b).MinBasis()
		cb := cold.Unstable(b).MinBasis()
		if len(wb) != len(cb) {
			t.Fatalf("%s: U_%d basis size: warm %d, cold %d", label, b, len(wb), len(cb))
		}
		for i := range wb {
			if !wb[i].Equal(cb[i]) {
				t.Fatalf("%s: U_%d element %d: warm %v, cold %v", label, b, i, wb[i], cb[i])
			}
		}
	}
	ws, cs := warm.SCBasis(), cold.SCBasis()
	if len(ws) != len(cs) {
		t.Fatalf("%s: SC basis size: warm %d, cold %d", label, len(ws), len(cs))
	}
	for i := range ws {
		if !ws[i].B.Equal(cs[i].B) || !ws[i].S.Equal(cs[i].S) {
			t.Fatalf("%s: SC basis element %d: warm %v, cold %v", label, i, ws[i], cs[i])
		}
	}
	if wn, cn := warm.MeasuredNorm(), cold.MeasuredNorm(); wn != cn {
		t.Fatalf("%s: measured norm: warm %d, cold %d", label, wn, cn)
	}
}

// warmRamp analyzes a parametric family in ascending parameter order twice
// — cold at every point, and warm-seeded from the previous point's warm
// analysis — and demands element-for-element equality at every step. The
// warm chain seeds from warm results (not cold ones) deliberately: that is
// what the sweep executor does, so drift would compound if it existed.
func warmRamp(t *testing.T, family string, build func(param int64) *protocol.Protocol, lo, hi int64) {
	t.Helper()
	var prev *Analysis
	for eta := lo; eta <= hi; eta++ {
		p := build(eta)
		label := fmt.Sprintf("%s:%d", family, eta)
		cold, err := Analyze(p, Options{})
		if err != nil {
			t.Fatalf("%s: cold analyze: %v", label, err)
		}
		warm, stats, err := AnalyzeWarm(p, Options{}, WarmSeed{Prev: prev})
		if err != nil {
			t.Fatalf("%s: warm analyze: %v", label, err)
		}
		equalAnalyses(t, label, warm, cold)
		if prev != nil && stats.ImportedTotal() > 0 && stats.CertifiedTotal() == 0 {
			// Not a correctness failure, but a family where certification
			// never fires means the delta path degenerates to from-scratch;
			// surface it so the ramp choice gets revisited.
			t.Logf("%s: imported %d candidates, certified none", label, stats.ImportedTotal())
		}
		prev = warm
	}
}

func TestAnalyzeWarmFlockRamp(t *testing.T) {
	warmRamp(t, "flock", func(eta int64) *protocol.Protocol {
		return protocols.FlockOfBirds(eta).Protocol
	}, 2, 12)
}

func TestAnalyzeWarmBinaryRamp(t *testing.T) {
	warmRamp(t, "binary", func(eta int64) *protocol.Protocol {
		return protocols.BinaryThreshold(eta).Protocol
	}, 17, 29)
}

func TestAnalyzeWarmLeaderFlockRamp(t *testing.T) {
	warmRamp(t, "leaderflock", func(eta int64) *protocol.Protocol {
		return protocols.LeaderFlock(eta).Protocol
	}, 2, 9)
}

func TestAnalyzeWarmModuloRamp(t *testing.T) {
	warmRamp(t, "mod", func(m int64) *protocol.Protocol {
		return protocols.ModuloIn(m, 1).Protocol
	}, 2, 8)
}

// TestAnalyzeWarmNoSeed pins the degenerate delta path: an empty WarmSeed
// must behave exactly like Analyze, including the iteration and frontier
// counters (the warm frontier then is exactly the generator frontier).
func TestAnalyzeWarmNoSeed(t *testing.T) {
	p := protocols.FlockOfBirds(6).Protocol
	cold, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	warm, stats, err := AnalyzeWarm(p, Options{}, WarmSeed{})
	if err != nil {
		t.Fatalf("warm analyze: %v", err)
	}
	equalAnalyses(t, "flock:6 no-seed", warm, cold)
	if stats.ImportedTotal() != 0 || stats.CertifiedTotal() != 0 || stats.DroppedTotal() != 0 {
		t.Fatalf("no-seed stats not all zero: %+v", stats)
	}
	for b := 0; b <= 1; b++ {
		if warm.Iterations(b) != cold.Iterations(b) {
			t.Errorf("U_%d iterations: warm %d, cold %d", b, warm.Iterations(b), cold.Iterations(b))
		}
		if warm.FrontierProcessed(b) != cold.FrontierProcessed(b) {
			t.Errorf("U_%d frontier: warm %d, cold %d", b, warm.FrontierProcessed(b), cold.FrontierProcessed(b))
		}
	}
}

// TestAnalyzeWarmUnrelatedSeed seeds flock from majority — disjoint state
// names, so the mapping drops every element — and from binary — overlapping
// names ("0", "2^k") with different semantics, so certification must weed
// out what the rebase lets through. Both must still land on the cold
// fixpoint exactly.
func TestAnalyzeWarmUnrelatedSeed(t *testing.T) {
	p := protocols.FlockOfBirds(7).Protocol
	cold, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	for _, tc := range []struct {
		name string
		seed *protocol.Protocol
	}{
		{"majority", protocols.Majority().Protocol},
		{"binary:9", protocols.BinaryThreshold(9).Protocol},
		{"flock:3", protocols.FlockOfBirds(3).Protocol},
	} {
		seedA, err := Analyze(tc.seed, Options{})
		if err != nil {
			t.Fatalf("%s: seed analyze: %v", tc.name, err)
		}
		warm, _, err := AnalyzeWarm(p, Options{}, WarmSeed{Prev: seedA})
		if err != nil {
			t.Fatalf("%s: warm analyze: %v", tc.name, err)
		}
		equalAnalyses(t, "flock:7 seeded from "+tc.name, warm, cold)
	}
}

// TestAnalyzeWarmWorkersMatch runs the warm fixpoint with a parallel
// fan-out: worker count must not perturb the warm result any more than it
// perturbs the cold one.
func TestAnalyzeWarmWorkersMatch(t *testing.T) {
	prev, err := Analyze(protocols.BinaryThreshold(21).Protocol, Options{})
	if err != nil {
		t.Fatalf("seed analyze: %v", err)
	}
	p := protocols.BinaryThreshold(22).Protocol
	cold, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		warm, _, err := AnalyzeWarm(p, Options{Workers: workers}, WarmSeed{Prev: prev})
		if err != nil {
			t.Fatalf("workers=%d: warm analyze: %v", workers, err)
		}
		equalAnalyses(t, fmt.Sprintf("binary:22 workers=%d", workers), warm, cold)
	}
}

// randomFamily builds a deterministic pseudo-random parametric family:
// member N has N+2 states q0..q(N+1) whose outputs and pairwise transitions
// are drawn from a hash of (seed, state indices) only — NOT of N — so
// adjacent members agree on their shared prefix of states and differ by one
// appended state, the way real template families do. Randomized warm seeds
// then exercise rebase + certification on structure no builtin has.
func randomFamily(seed uint64, n int) *protocol.Protocol {
	mix := func(xs ...uint64) uint64 {
		h := seed ^ 0x9e3779b97f4a7c15
		for _, x := range xs {
			h ^= x
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
		}
		return h
	}
	d := n + 2
	b := protocol.NewBuilder(fmt.Sprintf("rand(%#x):%d", seed, n))
	states := make([]protocol.State, d)
	for i := 0; i < d; i++ {
		states[i] = b.AddState(fmt.Sprintf("q%d", i), int(mix(uint64(i))&1))
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			h := mix(uint64(i), uint64(j))
			if h&3 == 0 { // quarter of the pairs are inert
				continue
			}
			p2 := int((h >> 2) % uint64(d))
			q2 := int((h >> 17) % uint64(d))
			b.AddTransition(states[i], states[j], states[p2], states[q2])
		}
	}
	b.AddInput("x", states[0])
	return b.CompleteWithIdentity().MustBuild()
}

func TestAnalyzeWarmRandomFamilies(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xdecafbad} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			warmRamp(t, fmt.Sprintf("rand(%#x)", seed), func(n int64) *protocol.Protocol {
				return randomFamily(seed, int(n))
			}, 2, 8)
		})
	}
}

// TestStateMapping pins the name-matching contract: shared names map,
// missing names go to -1, duplicate names abort.
func TestStateMapping(t *testing.T) {
	old := protocols.FlockOfBirds(3).Protocol // states 0..3
	new_ := protocols.FlockOfBirds(5).Protocol
	mapping, ok := StateMapping(old, new_)
	if !ok {
		t.Fatal("flock:3 -> flock:5 mapping reported ambiguous")
	}
	if len(mapping) != old.NumStates() {
		t.Fatalf("mapping length %d, want %d", len(mapping), old.NumStates())
	}
	for q := 0; q < old.NumStates(); q++ {
		if mapping[q] < 0 {
			t.Errorf("state %q unmapped; every flock:3 state name exists in flock:5", old.StateName(protocol.State(q)))
		}
	}
	back, ok := StateMapping(new_, old)
	if !ok {
		t.Fatal("flock:5 -> flock:3 mapping reported ambiguous")
	}
	unmapped := 0
	for _, j := range back {
		if j < 0 {
			unmapped++
		}
	}
	if unmapped != new_.NumStates()-old.NumStates() {
		t.Errorf("flock:5 -> flock:3: %d unmapped states, want %d", unmapped, new_.NumStates()-old.NumStates())
	}
}

// TestWarmSpeedup is the package-level sanity check behind the sweep bench:
// on the binary ramp the warm fixpoint must expand strictly fewer frontier
// elements than the cold one. (The wall-clock claim lives in BENCH_sweep;
// frontier work is the deterministic proxy that cannot flake.)
// TestWarmWorkBounded pins the delta path's work accounting on an adjacent
// binary-threshold pair. On threshold families the basis elements sit
// exactly on the shifting threshold boundary, so warm seeding cannot beat
// the cold frontier count (every element is expanded exactly once either
// way — the measured counts are equal); what the test enforces is that the
// warm schedule never does MORE fixpoint work than cold plus the certified
// seeds it re-expands, that certification actually fires, and that the
// result is still element-for-element identical.
func TestWarmWorkBounded(t *testing.T) {
	prev, err := Analyze(protocols.BinaryThreshold(33).Protocol, Options{})
	if err != nil {
		t.Fatalf("seed analyze: %v", err)
	}
	p := protocols.BinaryThreshold(34).Protocol
	cold, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	warm, stats, err := AnalyzeWarm(p, Options{}, WarmSeed{Prev: prev})
	if err != nil {
		t.Fatalf("warm analyze: %v", err)
	}
	equalAnalyses(t, "binary:34", warm, cold)
	coldWork := cold.FrontierProcessed(0) + cold.FrontierProcessed(1)
	warmWork := warm.FrontierProcessed(0) + warm.FrontierProcessed(1)
	t.Logf("binary:34 frontier work: cold %d, warm %d (imported %d, certified %d, dropped %d)",
		coldWork, warmWork, stats.ImportedTotal(), stats.CertifiedTotal(), stats.DroppedTotal())
	if stats.ImportedTotal() == 0 || stats.CertifiedTotal() == 0 {
		t.Errorf("delta path idle: imported %d, certified %d", stats.ImportedTotal(), stats.CertifiedTotal())
	}
	if warmWork > coldWork+stats.CertifiedTotal() {
		t.Errorf("warm fixpoint expanded %d frontier elements, cold %d + %d certified — overhead beyond the seeds",
			warmWork, coldWork, stats.CertifiedTotal())
	}
	warmIters := warm.Iterations(0) + warm.Iterations(1)
	coldIters := cold.Iterations(0) + cold.Iterations(1)
	if warmIters > coldIters {
		t.Errorf("warm fixpoint ran %d rounds, cold %d — seeding must not add rounds", warmIters, coldIters)
	}
}

// FuzzCertifyByFiring cross-checks the certification filter against its
// defining property on arbitrary candidate vectors: every certified
// candidate must be inside the TRUE U_b (soundness — the filter may only
// admit elements the from-scratch fixpoint derives), and the warm result
// seeded with those candidates must equal the cold result exactly.
func FuzzCertifyByFiring(f *testing.F) {
	f.Add(int64(5), int64(3), uint8(0))
	f.Add(int64(7), int64(2), uint8(1))
	f.Add(int64(4), int64(9), uint8(0))
	f.Fuzz(func(t *testing.T, eta, seedEta int64, b uint8) {
		if eta < 1 || eta > 10 || seedEta < 1 || seedEta > 10 {
			t.Skip()
		}
		bb := int(b & 1)
		p := protocols.FlockOfBirds(eta).Protocol
		cold, err := Analyze(p, Options{})
		if err != nil {
			t.Fatalf("cold analyze: %v", err)
		}
		prev, err := Analyze(protocols.FlockOfBirds(seedEta).Protocol, Options{})
		if err != nil {
			t.Fatalf("seed analyze: %v", err)
		}
		mapping, ok := StateMapping(prev.Protocol(), p)
		if !ok {
			t.Fatal("flock mapping ambiguous")
		}
		candidates := ideal.RebaseBasis(prev.Unstable(bb).MinBasis(), mapping, p.NumStates())
		u, _ := seedGenerators(p, bb)
		rows := predRows(p)
		certifyByFiring(u, rows, candidates, nil)
		truth := cold.Unstable(bb)
		for id := 0; id < u.Stored(); id++ {
			if u.Alive(id) && !truth.Contains(u.At(id)) {
				t.Fatalf("certified element %v outside true U_%d of flock:%d (seed flock:%d)",
					u.At(id), bb, eta, seedEta)
			}
		}
		warm, _, err := AnalyzeWarm(p, Options{}, WarmSeed{Prev: prev})
		if err != nil {
			t.Fatalf("warm analyze: %v", err)
		}
		equalAnalyses(t, fmt.Sprintf("flock:%d seeded flock:%d", eta, seedEta), warm, cold)
	})
}
