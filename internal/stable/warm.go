package stable

import (
	"fmt"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
)

// This file is the delta path of the incremental family-parametric
// analysis: AnalyzeWarm computes the same stable sets Analyze does, but
// seeds the backward-coverability fixpoint from a previously analyzed
// family neighbor (flock:6 when analyzing flock:7) instead of starting
// from the generators alone.
//
// Soundness is the crux. The neighbor's U_b basis cannot be imported
// blindly: family semantics drift with the parameter. In flock:η the state
// named "6" has output 1 at η = 6 and output 0 at η = 7, so old basis
// elements of total value 6 lie outside U_0 of flock:7 — importing them
// would grow the antichain beyond the true fixpoint. AnalyzeWarm therefore
// treats rebased neighbor elements as *candidates* and certifies each one
// against the NEW protocol only, by firing chains: a candidate m is
// certified when some new-protocol transition r with m ≥ pre(r) fires m
// into the upward closure of the already-certified set (seeded with the
// new generators). By induction every certified element genuinely belongs
// to U_b, whatever protocol the candidate came from. Certification
// cascades along the old derivation chains — if m = pred_r(m′) then firing
// r from m reaches a configuration ≥ m′ — so in practice almost every
// still-valid neighbor element certifies, while semantically stale ones
// are dropped.
//
// Completeness needs no condition on the family: U_b is the pred-closure
// of its generators, and closure(G ∪ X) = closure(G) = U_b for any X ⊆
// U_b, so running the standard fixpoint with the WHOLE seeded antichain as
// the first frontier (not just the generators) reaches exactly U_b. The
// first round re-expands every seeded element once; when the seed is close
// to the answer that round discovers almost nothing and the fixpoint
// terminates in a handful of rounds instead of O(parameter) of them.
// TestAnalyzeWarmMatchesAnalyze and the sweep differential suite pin
// element-for-element equality with Analyze across the builtin catalog and
// randomized families.

// WarmSeed names the neighbor an AnalyzeWarm call extends: a completed
// analysis of another (normally adjacent) member of the same protocol
// family.
type WarmSeed struct {
	// Prev is the neighbor's analysis. Its protocol may have a different
	// state count; states are matched to the new protocol's by name.
	Prev *Analysis
}

// WarmStats reports what the delta path did with the neighbor's basis, per
// output b.
type WarmStats struct {
	// Imported counts rebased neighbor elements that survived the
	// coordinate mapping (and its re-minimization) and entered
	// certification.
	Imported [2]int
	// Certified counts candidates certified into the fixpoint seed by
	// firing chains against the new protocol.
	Certified [2]int
	// Dropped counts neighbor elements discarded: agents on states the new
	// protocol does not have, dominated after rebasing, or uncertifiable
	// (semantically stale under the new parameter).
	Dropped [2]int
}

// ImportedTotal sums Imported over both outputs.
func (s *WarmStats) ImportedTotal() int { return s.Imported[0] + s.Imported[1] }

// CertifiedTotal sums Certified over both outputs.
func (s *WarmStats) CertifiedTotal() int { return s.Certified[0] + s.Certified[1] }

// DroppedTotal sums Dropped over both outputs.
func (s *WarmStats) DroppedTotal() int { return s.Dropped[0] + s.Dropped[1] }

// StateMapping matches the states of an old protocol to a new one by name:
// mapping[q] is the new index of old state q, or -1 when no new state
// carries that name. ok is false when the match is ambiguous (duplicate
// state names on either side), in which case no rebasing should be
// attempted.
func StateMapping(old, new_ *protocol.Protocol) (mapping []int, ok bool) {
	newIdx := make(map[string]int, new_.NumStates())
	for q := 0; q < new_.NumStates(); q++ {
		name := new_.StateName(protocol.State(q))
		if _, dup := newIdx[name]; dup {
			return nil, false
		}
		newIdx[name] = q
	}
	seen := make(map[string]bool, old.NumStates())
	mapping = make([]int, old.NumStates())
	for q := 0; q < old.NumStates(); q++ {
		name := old.StateName(protocol.State(q))
		if seen[name] {
			return nil, false
		}
		seen[name] = true
		if j, found := newIdx[name]; found {
			mapping[q] = j
		} else {
			mapping[q] = -1
		}
	}
	return mapping, true
}

// AnalyzeWarm computes SC_0 and SC_1 for p, seeding each U_b fixpoint from
// the WarmSeed neighbor. The result is element-for-element identical to
// Analyze(p, opts) — same antichains in the same canonical order, so every
// durable encoding is byte-identical — with only the Iterations and
// FrontierProcessed counters reflecting the warm schedule. A nil or
// unusable seed degrades to the from-scratch fixpoint.
func AnalyzeWarm(p *protocol.Protocol, opts Options, seed WarmSeed) (*Analysis, *WarmStats, error) {
	maxBasis := opts.MaxBasis
	if maxBasis <= 0 {
		maxBasis = 200_000
	}
	stats := &WarmStats{}
	var mapping []int
	if seed.Prev != nil {
		mapping, _ = StateMapping(seed.Prev.Protocol(), p)
	}
	a := &Analysis{p: p}
	rows := predRows(p)
	for b := 0; b <= 1; b++ {
		var candidates []multiset.Vec
		prevLen := 0
		if mapping != nil {
			prev := seed.Prev.Unstable(b).MinBasis()
			prevLen = len(prev)
			candidates = ideal.RebaseBasis(prev, mapping, p.NumStates())
		}
		u, frontier, st, err := warmSeedSet(p, b, rows, candidates, opts.Interrupt)
		if err != nil {
			return nil, nil, fmt.Errorf("seeding U_%d: %w", b, err)
		}
		stats.Imported[b] = len(candidates)
		stats.Certified[b] = st
		stats.Dropped[b] = prevLen - st
		iters, expanded, err := runFixpoint(u, frontier, rows, maxBasis, opts.Workers, opts.Interrupt)
		if err != nil {
			return nil, nil, fmt.Errorf("computing U_%d: %w", b, err)
		}
		a.setUnstable(b, u, iters, expanded)
	}
	a.finish()
	return a, stats, nil
}

// warmSeedSet builds the warm fixpoint seed for U_b: the generators plus
// every certified candidate, with ALL live elements enqueued as the first
// frontier (the seeded elements' predecessors have not been derived in
// this run, so each must be expanded once — that is what makes the warm
// fixpoint land on exactly closure(G ∪ certified) = U_b).
func warmSeedSet(p *protocol.Protocol, b int, rows []predRow, candidates []multiset.Vec, stop <-chan struct{}) (*ideal.UpSet, []int32, int, error) {
	u, _ := seedGenerators(p, b)
	certified := certifyByFiring(u, rows, candidates, stop)
	if stopped(stop) {
		return nil, nil, 0, ErrInterrupted
	}
	frontier := make([]int32, 0, u.Size())
	for id := 0; id < u.Stored(); id++ {
		if u.Alive(id) {
			frontier = append(frontier, int32(id))
		}
	}
	return u, frontier, certified, nil
}

// certifyByFiring grows the certified upward-closed set c (seeded with the
// U_b generators) by rounds of firing-chain certification: a pending
// candidate m is certified — inserted into c — as soon as some transition
// row r with m ≥ pre(r) fires m into c (m + Δr ∈ ↑c). Only new-protocol
// rows and generators are consulted, so certification is sound whatever
// protocol the candidates came from: a certified m really can reach a
// state with output ≠ b. Candidates already inside ↑c are redundant (they
// are dominated) and dropped. Returns the number certified.
func certifyByFiring(c *ideal.UpSet, rows []predRow, candidates []multiset.Vec, stop <-chan struct{}) int {
	d := c.Dim()
	pending := make([]multiset.Vec, 0, len(candidates))
	for _, m := range candidates {
		if !c.Contains(m) {
			pending = append(pending, m)
		}
	}
	certified := 0
	fired := make(multiset.Vec, d)
	for {
		progressed := false
		next := pending[:0]
		for _, m := range pending {
			if stopped(stop) {
				return certified
			}
			if c.Contains(m) {
				// Certified candidates can dominate pending ones; dominated
				// candidates add nothing to the antichain.
				progressed = true
				continue
			}
			ok := false
			for ri := range rows {
				row := &rows[ri]
				if !multiset.Vec(row.pre).Le(m) {
					continue
				}
				for i := range fired {
					fired[i] = m[i] + row.delta[i]
				}
				if c.Contains(fired) {
					ok = true
					break
				}
			}
			if ok {
				c.Insert(m)
				certified++
				progressed = true
				continue
			}
			next = append(next, m)
		}
		pending = next
		if !progressed || len(pending) == 0 {
			return certified
		}
	}
}
