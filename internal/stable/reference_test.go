package stable

// This file retains the seed backward-coverability fixpoint verbatim — the
// restart-the-whole-basis pred-basis loop over the retained naive antichain
// (ideal.NaiveUpSet), re-deriving predecessors of every minimal element
// every round through a fresh MinBasis clone — as the differential-testing
// reference and the "before" side of BenchmarkStableAnalyzeNaive, the same
// role naive_test.go plays in internal/reach and reference_test.go in
// internal/sim. The differential suite proves the frontier-driven core's
// final antichain equal element for element (after canonical sorting; the
// two cores insert in different orders) on randomized protocols and the
// whole builtin catalog, and the parallel mode bit-identical — same
// elements, same order — to the sequential mode.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

// referenceBackwardCover is the seed fixpoint, verbatim (modulo the naive
// antichain type): every round clones the full minimal basis and re-derives
// the predecessors of every element.
func referenceBackwardCover(p *protocol.Protocol, b int, maxBasis int, stop <-chan struct{}) (*ideal.NaiveUpSet, int, error) {
	d := p.NumStates()
	u := ideal.NewNaiveUpSet(d)
	for q := 0; q < d; q++ {
		if p.Output(protocol.State(q)) != b {
			u.Add(multiset.Unit(d, q))
		}
	}
	pres := make([]multiset.Vec, p.NumTransitions())
	for t := 0; t < p.NumTransitions(); t++ {
		tr := p.Transition(t)
		pres[t] = multiset.Pair(d, int(tr.P), int(tr.Q))
	}
	iters := 0
	for {
		iters++
		grew := false
		basis := u.MinBasis()
		for k, m := range basis {
			if k&1023 == 0 && stop != nil {
				select {
				case <-stop:
					return nil, iters, ErrInterrupted
				default:
				}
			}
			for t := 0; t < p.NumTransitions(); t++ {
				delta := p.Displacement(t)
				if delta.IsZero() {
					continue
				}
				pre := m.Sub(delta).Clip().Max(pres[t])
				if u.Add(pre) {
					grew = true
				}
			}
		}
		if u.Size() > maxBasis {
			return nil, iters, fmt.Errorf("%w: %d elements", ErrBasisTooLarge, u.Size())
		}
		if !grew {
			return u, iters, nil
		}
	}
}

// referenceAnalysis is the full seed analysis: reference fixpoint plus the
// retained naive complementation.
type referenceAnalysis struct {
	unstable [2]*ideal.NaiveUpSet
	sc       [2]*ideal.DownSet
	iters    [2]int
}

func referenceAnalyze(p *protocol.Protocol, maxBasis int) (*referenceAnalysis, error) {
	if maxBasis <= 0 {
		maxBasis = 200_000
	}
	a := &referenceAnalysis{}
	for b := 0; b <= 1; b++ {
		u, iters, err := referenceBackwardCover(p, b, maxBasis, nil)
		if err != nil {
			return nil, err
		}
		a.unstable[b] = u
		a.iters[b] = iters
		a.sc[b] = ideal.NaiveComplementUp(u)
	}
	return a, nil
}

// canonicalKeys renders an antichain in the canonical sorted-key format
// used for element-for-element comparison across cores.
func canonicalKeys(basis []multiset.Vec) []string {
	keys := make([]string, len(basis))
	for i, m := range basis {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

// rawKeys renders an antichain in its own element order, for the
// bit-identical parallel-vs-sequential comparison.
func rawKeys(basis []multiset.Vec) []string {
	keys := make([]string, len(basis))
	for i, m := range basis {
		keys[i] = m.Key()
	}
	return keys
}

func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// idealKeys renders a DownSet decomposition canonically (cap vectors are
// int64 slices, so the multiset key format applies).
func idealKeys(ds *ideal.DownSet) []string {
	ids := ds.Ideals()
	keys := make([]string, len(ids))
	for i, id := range ids {
		caps := make(multiset.Vec, id.Dim())
		for j := range caps {
			caps[j] = id.Cap(j)
		}
		keys[i] = caps.Key()
	}
	sort.Strings(keys)
	return keys
}

// randomProtocol builds a random single-input protocol: 2–5 states with
// random outputs, a random set of non-identity transitions, completed with
// identity interactions (the generator internal/reach's differential suite
// uses).
func randomProtocol(rng *rand.Rand) *protocol.Protocol {
	k := 2 + rng.Intn(4)
	b := protocol.NewBuilder(fmt.Sprintf("random-%d", k))
	states := make([]protocol.State, k)
	for i := range states {
		states[i] = b.AddState(fmt.Sprintf("q%d", i), rng.Intn(2))
	}
	m := 1 + rng.Intn(2*k)
	for i := 0; i < m; i++ {
		b.AddTransition(
			states[rng.Intn(k)], states[rng.Intn(k)],
			states[rng.Intn(k)], states[rng.Intn(k)],
		)
	}
	b.AddInput("x", states[rng.Intn(k)])
	return b.CompleteWithIdentity().MustBuild()
}

// compareCores runs the reference analysis and the frontier core
// (sequential and the given worker counts) on one protocol and fails
// unless every final antichain is exactly equal to the reference, every
// ideal decomposition matches, and every parallel run is bit-identical to
// the sequential one.
func compareCores(t *testing.T, label string, p *protocol.Protocol, workerCounts []int) {
	t.Helper()
	ref, err := referenceAnalyze(p, 0)
	if err != nil {
		t.Fatalf("%s: referenceAnalyze: %v", label, err)
	}
	seq, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("%s: Analyze: %v", label, err)
	}
	for b := 0; b <= 1; b++ {
		wantU := canonicalKeys(ref.unstable[b].MinBasis())
		gotU := canonicalKeys(seq.Unstable(b).MinBasis())
		if !keysEqual(gotU, wantU) {
			t.Fatalf("%s: U_%d differs: %d elements vs reference %d\n got %s\nwant %s",
				label, b, len(gotU), len(wantU), seq.Unstable(b), ref.unstable[b])
		}
		if !keysEqual(idealKeys(seq.StableSet(b)), idealKeys(ref.sc[b])) {
			t.Fatalf("%s: SC_%d decomposition differs:\n got %s\nwant %s",
				label, b, seq.StableSet(b), ref.sc[b])
		}
		if seq.Iterations(b) != ref.iters[b] {
			t.Fatalf("%s: iterations(%d) = %d, reference %d", label, b, seq.Iterations(b), ref.iters[b])
		}
		if seq.FrontierProcessed(b) < seq.Unstable(b).Size() {
			t.Fatalf("%s: frontier counter for U_%d is %d, below final basis size %d",
				label, b, seq.FrontierProcessed(b), seq.Unstable(b).Size())
		}
	}
	seqOrder := [2][]string{
		rawKeys(seq.Unstable(0).MinBasis()),
		rawKeys(seq.Unstable(1).MinBasis()),
	}
	for _, w := range workerCounts {
		par, err := Analyze(p, Options{Workers: w})
		if err != nil {
			t.Fatalf("%s: Analyze(workers=%d): %v", label, w, err)
		}
		for b := 0; b <= 1; b++ {
			if !keysEqual(rawKeys(par.Unstable(b).MinBasis()), seqOrder[b]) {
				t.Fatalf("%s: workers=%d U_%d not bit-identical to sequential:\n got %s\nwant %s",
					label, w, b, par.Unstable(b), seq.Unstable(b))
			}
			if par.Iterations(b) != seq.Iterations(b) || par.FrontierProcessed(b) != seq.FrontierProcessed(b) {
				t.Fatalf("%s: workers=%d counters (%d,%d) differ from sequential (%d,%d)",
					label, w, par.Iterations(b), par.FrontierProcessed(b),
					seq.Iterations(b), seq.FrontierProcessed(b))
			}
		}
	}
}

// TestDifferentialFrontierVsReference is the central differential test of
// the backward-coverability rewrite: on ≥ 50 randomized protocols, the
// frontier-driven core (sequential and parallel) must produce final
// antichains exactly equal, element for element, to the retained seed
// fixpoint, and parallel runs must be bit-identical to sequential ones.
func TestDifferentialFrontierVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		p := randomProtocol(rng)
		compareCores(t, fmt.Sprintf("trial %d (%s)", trial, p.Name()), p, []int{2, 3 + rng.Intn(3)})
	}
}

// TestDifferentialBuiltinsVsReference runs the same core comparison over
// every builtin catalog protocol.
func TestDifferentialBuiltinsVsReference(t *testing.T) {
	for name, e := range protocols.Catalog() {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			compareCores(t, name, e.Protocol, []int{2, 4})
		})
	}
}

// TestParallelMatchesSequentialLarger pins bit-identical parallel merges on
// a workload whose fixpoint has thousands of elements and many rounds (the
// randomized protocols above stay small).
func TestParallelMatchesSequentialLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixpoint")
	}
	p := protocols.FlockOfBirds(28).Protocol
	seq, err := Analyze(p, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, w := range []int{2, 3, 8} {
		par, err := Analyze(p, Options{Workers: w})
		if err != nil {
			t.Fatalf("Analyze(workers=%d): %v", w, err)
		}
		for b := 0; b <= 1; b++ {
			if !keysEqual(rawKeys(par.Unstable(b).MinBasis()), rawKeys(seq.Unstable(b).MinBasis())) {
				t.Fatalf("workers=%d: U_%d not bit-identical (sizes %d vs %d)",
					w, b, par.Unstable(b).Size(), seq.Unstable(b).Size())
			}
		}
	}
	if seq.Unstable(0).Size() < 1000 {
		t.Fatalf("workload too small to be meaningful: |U_0| = %d", seq.Unstable(0).Size())
	}
}
