// Package stable computes the stable sets of a population protocol exactly,
// for all population sizes at once, using backward coverability — the
// standard well-structured-transition-system algorithm, applicable here
// because configurations under ≤ form a well-quasi-order (Dickson's lemma)
// and firing is monotone.
//
// Definition 2 of the paper: a configuration C is b-stable if every
// configuration reachable from C has output b; SC_b is the set of b-stable
// configurations, and Lemma 3.1 shows it is downward closed. Its complement
//
//	U_b = { C : C can reach a configuration covering a state q with O(q) ≠ b }
//
// is upward closed (by monotonicity) and is computed as a backward
// reachability fixpoint from the generators {1·q : O(q) ≠ b}: for an
// upward-closed set with minimal element m and a transition t with
// precondition pre(t) = ⟅p,q⟆, the minimal configurations that can fire t
// into ↑m are max((m − Δt)⁺, pre(t)). The fixpoint terminates by Dickson's
// lemma. SC_b is then the ideal decomposition of the complement, from which
// the paper's basis elements (B, S) and their norms (Lemma 3.2) are read
// off directly.
package stable

import (
	"errors"
	"fmt"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
)

// ErrBasisTooLarge is returned when the backward fixpoint exceeds the
// configured basis size limit.
var ErrBasisTooLarge = errors.New("stable: backward coverability basis exceeds limit")

// ErrInterrupted is returned when Options.Interrupt closes mid-analysis.
var ErrInterrupted = errors.New("stable: interrupted")

// Analysis holds the computed stable sets of one protocol.
type Analysis struct {
	p *protocol.Protocol
	// unstable[b] = U_b: configurations that can reach an agent with
	// output ≠ b.
	unstable [2]*ideal.UpSet
	// sc[b] = SC_b as a downward-closed set.
	sc [2]*ideal.DownSet
	// iterations[b] counts fixpoint rounds, for reporting.
	iterations [2]int
}

// Options configures Analyze.
type Options struct {
	// MaxBasis bounds the number of minimal elements maintained per output;
	// 0 means 200000.
	MaxBasis int
	// Interrupt, when non-nil, cancels the analysis cooperatively: Analyze
	// aborts with ErrInterrupted soon after the channel closes.
	Interrupt <-chan struct{}
}

// Analyze computes SC_0 and SC_1 for the protocol.
func Analyze(p *protocol.Protocol, opts Options) (*Analysis, error) {
	maxBasis := opts.MaxBasis
	if maxBasis <= 0 {
		maxBasis = 200_000
	}
	a := &Analysis{p: p}
	for b := 0; b <= 1; b++ {
		u, iters, err := backwardCover(p, b, maxBasis, opts.Interrupt)
		if err != nil {
			return nil, fmt.Errorf("computing U_%d: %w", b, err)
		}
		a.unstable[b] = u
		a.iterations[b] = iters
		a.sc[b] = ideal.ComplementUp(u)
	}
	return a, nil
}

// backwardCover computes U_b by the pred-basis fixpoint.
func backwardCover(p *protocol.Protocol, b int, maxBasis int, stop <-chan struct{}) (*ideal.UpSet, int, error) {
	d := p.NumStates()
	u := ideal.NewUpSet(d)
	for q := 0; q < d; q++ {
		if p.Output(protocol.State(q)) != b {
			u.Add(multiset.Unit(d, q))
		}
	}
	pres := make([]multiset.Vec, p.NumTransitions())
	for t := 0; t < p.NumTransitions(); t++ {
		tr := p.Transition(t)
		pres[t] = multiset.Pair(d, int(tr.P), int(tr.Q))
	}
	iters := 0
	for {
		iters++
		grew := false
		basis := u.MinBasis()
		for k, m := range basis {
			if k&1023 == 0 && stop != nil {
				select {
				case <-stop:
					return nil, iters, ErrInterrupted
				default:
				}
			}
			for t := 0; t < p.NumTransitions(); t++ {
				delta := p.Displacement(t)
				if delta.IsZero() {
					continue
				}
				pre := m.Sub(delta).Clip().Max(pres[t])
				if u.Add(pre) {
					grew = true
				}
			}
		}
		if u.Size() > maxBasis {
			return nil, iters, fmt.Errorf("%w: %d elements", ErrBasisTooLarge, u.Size())
		}
		if !grew {
			return u, iters, nil
		}
	}
}

// Protocol returns the analyzed protocol.
func (a *Analysis) Protocol() *protocol.Protocol { return a.p }

// StableSet returns SC_b as a downward-closed set. The returned set is
// shared; callers must not modify it.
func (a *Analysis) StableSet(b int) *ideal.DownSet { return a.sc[b] }

// SC returns SC = SC_0 ∪ SC_1.
func (a *Analysis) SC() *ideal.DownSet { return a.sc[0].Union(a.sc[1]) }

// Unstable returns U_b, the upward-closed complement of SC_b.
func (a *Analysis) Unstable(b int) *ideal.UpSet { return a.unstable[b] }

// Iterations returns the number of fixpoint rounds used for U_b.
func (a *Analysis) Iterations(b int) int { return a.iterations[b] }

// IsStable reports whether configuration c is b-stable.
func (a *Analysis) IsStable(c protocol.Config, b int) bool {
	return !a.unstable[b].Contains(c)
}

// Classify returns (b, true) if c is b-stable for some b. It implements the
// sim package's Oracle interface, giving simulations an exact convergence
// detector.
func (a *Analysis) Classify(c protocol.Config) (int, bool) {
	if a.IsStable(c, 0) {
		return 0, true
	}
	if a.IsStable(c, 1) {
		return 1, true
	}
	return 0, false
}

// BasisElement is a (B, S) pair as in Section 3: the ideal B + ℕ^S.
type BasisElement struct {
	B multiset.Vec
	S map[int]bool
}

// Norm returns ‖(B,S)‖∞ = ‖B‖∞.
func (e BasisElement) Norm() int64 { return e.B.NormInf() }

// Contains reports whether c ∈ ↓(B + ℕ^S), the downward closure of the
// basis element's ideal (see the package comment of ideal for the exact-form
// correspondence).
func (e BasisElement) Contains(c protocol.Config) bool {
	for i, v := range c {
		if !e.S[i] && v > e.B[i] {
			return false
		}
	}
	return true
}

// Basis returns the basis elements of SC_b derived from its ideal
// decomposition.
func (a *Analysis) Basis(b int) []BasisElement {
	return basisOf(a.sc[b])
}

// SCBasis returns the basis elements of SC = SC_0 ∪ SC_1.
func (a *Analysis) SCBasis() []BasisElement {
	return basisOf(a.SC())
}

func basisOf(ds *ideal.DownSet) []BasisElement {
	ids := ds.Ideals()
	out := make([]BasisElement, len(ids))
	for i, id := range ids {
		out[i] = BasisElement{B: id.B(), S: id.S()}
	}
	return out
}

// MeasuredNorm returns the maximal basis-element norm of SC — the measured
// counterpart of the small basis constant β(n) of Lemma 3.2/Definition 3.
func (a *Analysis) MeasuredNorm() int64 {
	return a.SC().Norm()
}

// DecomposeStable splits a stable configuration as c = B + Da with
// Da ∈ ℕ^S for a basis element (B, S) of SC, choosing the ideal that
// maximises the agents carried by S (i.e. minimises |B| = c(Q∖S), the
// choice that makes Lemma 5.5's concentration argument work). The returned
// B agrees with c outside S and is 0 on S, so B + ℕ^S ⊆ SC holds exactly
// in the paper's sense. ok is false if c is not stable.
func (a *Analysis) DecomposeStable(c protocol.Config) (B multiset.Vec, S map[int]bool, Da multiset.Vec, ok bool) {
	e, found := a.FindStableIdeal(c)
	if !found {
		return nil, nil, nil, false
	}
	B = multiset.New(c.Dim())
	Da = multiset.New(c.Dim())
	for i, v := range c {
		if e.S[i] {
			Da[i] = v
		} else {
			B[i] = v
		}
	}
	return B, e.S, Da, true
}

// FindStableIdeal returns the basis element of SC whose ideal contains c,
// preferring (as Lemma 5.5 does) one whose S-part carries most of c's
// agents. ok is false if c is not stable.
func (a *Analysis) FindStableIdeal(c protocol.Config) (BasisElement, bool) {
	best := BasisElement{}
	found := false
	var bestOnS int64 = -1
	for _, e := range a.SCBasis() {
		if !e.Contains(c) {
			continue
		}
		var onS int64
		for i, v := range c {
			if e.S[i] {
				onS += v
			}
		}
		if onS > bestOnS {
			best, bestOnS, found = e, onS, true
		}
	}
	return best, found
}
