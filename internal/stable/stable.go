// Package stable computes the stable sets of a population protocol exactly,
// for all population sizes at once, using backward coverability — the
// standard well-structured-transition-system algorithm, applicable here
// because configurations under ≤ form a well-quasi-order (Dickson's lemma)
// and firing is monotone.
//
// Definition 2 of the paper: a configuration C is b-stable if every
// configuration reachable from C has output b; SC_b is the set of b-stable
// configurations, and Lemma 3.1 shows it is downward closed. Its complement
//
//	U_b = { C : C can reach a configuration covering a state q with O(q) ≠ b }
//
// is upward closed (by monotonicity) and is computed as a backward
// reachability fixpoint from the generators {1·q : O(q) ≠ b}: for an
// upward-closed set with minimal element m and a transition t with
// precondition pre(t) = ⟅p,q⟆, the minimal configurations that can fire t
// into ↑m are max((m − Δt)⁺, pre(t)). The fixpoint terminates by Dickson's
// lemma. SC_b is then the ideal decomposition of the complement, from which
// the paper's basis elements (B, S) and their norms (Lemma 3.2) are read
// off directly.
//
// The fixpoint is frontier-driven: a round derives predecessors only of the
// elements that became minimal in the previous round, because predecessors
// of older elements were already derived and, the set being monotone
// non-shrinking under Add, anything dominated once stays dominated. With
// Options.Workers > 1 the predecessor fan-out of a round is sharded across
// goroutines into preallocated slots and merged by one sequential
// application pass in frontier × transition order — the exact order the
// sequential mode uses — so the final antichain is bit-identical (same
// elements, same element order) for every worker count. The retained seed
// fixpoint (reference_test.go) pins both cores against each other.
package stable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
)

// ErrBasisTooLarge is returned when the backward fixpoint exceeds the
// configured basis size limit.
var ErrBasisTooLarge = errors.New("stable: backward coverability basis exceeds limit")

// ErrInterrupted is returned when Options.Interrupt closes mid-analysis.
var ErrInterrupted = errors.New("stable: interrupted")

// interruptBatch is how many predecessor derivations (per goroutine) go
// between polls of the Interrupt channel.
const interruptBatch = 1024

// Analysis holds the computed stable sets of one protocol. An Analysis is
// immutable once returned by Analyze: every accessor hands out shared
// internal values (the engine caches analyses across requests), so callers
// must not modify what they receive.
type Analysis struct {
	p *protocol.Protocol
	// unstable[b] = U_b: configurations that can reach an agent with
	// output ≠ b.
	unstable [2]*ideal.UpSet
	// sc[b] = SC_b as a downward-closed set.
	sc [2]*ideal.DownSet
	// scAll = SC_0 ∪ SC_1 and its basis, computed once in Analyze (SC and
	// SCBasis sit on the pump finders' hot paths).
	scAll      *ideal.DownSet
	scAllBasis []BasisElement
	// iterations[b] counts fixpoint rounds, frontier[b] the total frontier
	// elements expanded, for reporting.
	iterations [2]int
	frontier   [2]int
}

// Options configures Analyze.
type Options struct {
	// MaxBasis bounds the number of minimal elements maintained per output;
	// 0 means 200000.
	MaxBasis int
	// Interrupt, when non-nil, cancels the analysis cooperatively: Analyze
	// aborts with ErrInterrupted soon after the channel closes.
	Interrupt <-chan struct{}
	// Workers shards each round's predecessor fan-out across this many
	// goroutines (0 or 1 = sequential). The result is bit-identical to the
	// sequential fixpoint for any worker count.
	Workers int
}

// Analyze computes SC_0 and SC_1 for the protocol.
func Analyze(p *protocol.Protocol, opts Options) (*Analysis, error) {
	maxBasis := opts.MaxBasis
	if maxBasis <= 0 {
		maxBasis = 200_000
	}
	a := &Analysis{p: p}
	for b := 0; b <= 1; b++ {
		u, iters, expanded, err := backwardCover(p, b, maxBasis, opts.Workers, opts.Interrupt)
		if err != nil {
			return nil, fmt.Errorf("computing U_%d: %w", b, err)
		}
		a.setUnstable(b, u, iters, expanded)
	}
	a.finish()
	return a, nil
}

// setUnstable installs a computed U_b fixpoint: the antichain is rebuilt in
// canonical element order, so every execution path that arrives at the same
// set — from-scratch, warm-started, restored from a durable artifact —
// exposes an identical MinBasis and identical derived structures.
func (a *Analysis) setUnstable(b int, u *ideal.UpSet, iters, expanded int) {
	cu := ideal.CanonicalUpSet(u)
	a.unstable[b] = cu
	a.iterations[b] = iters
	a.frontier[b] = expanded
	a.sc[b] = ideal.ComplementUp(cu)
}

// finish computes the SC union and its basis from the installed halves.
func (a *Analysis) finish() {
	a.scAll = a.sc[0].Union(a.sc[1])
	a.scAllBasis = basisOf(a.scAll)
}

// predRow is one non-identity transition of the pred-basis step: the
// minimal configurations firing t into ↑m are max((m − delta)⁺, pre).
type predRow struct {
	delta multiset.Vec
	pre   multiset.Vec
}

// predInto writes max((m − delta)⁺, pre) into dst (len d, no allocation).
func predInto(dst, m []int64, row *predRow) {
	for i := range dst {
		x := m[i] - row.delta[i]
		if x < 0 {
			x = 0
		}
		if p := row.pre[i]; p > x {
			x = p
		}
		dst[i] = x
	}
}

// stopped polls a cooperative stop channel.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// seedGenerators inserts the U_b generators {1·q : O(q) ≠ b} into a fresh
// antichain and returns it with the generator frontier.
func seedGenerators(p *protocol.Protocol, b int) (*ideal.UpSet, []int32) {
	d := p.NumStates()
	u := ideal.NewUpSet(d)
	var frontier []int32
	for q := 0; q < d; q++ {
		if p.Output(protocol.State(q)) != b {
			if id, grew := u.Insert(multiset.Unit(d, q)); grew {
				frontier = append(frontier, int32(id))
			}
		}
	}
	return u, frontier
}

// predRows builds the pred-basis step rows: one per non-identity
// transition.
func predRows(p *protocol.Protocol) []predRow {
	d := p.NumStates()
	rows := make([]predRow, 0, p.NumTransitions())
	for t := 0; t < p.NumTransitions(); t++ {
		delta := p.Displacement(t)
		if delta.IsZero() {
			continue
		}
		tr := p.Transition(t)
		rows = append(rows, predRow{delta: delta, pre: multiset.Pair(d, int(tr.P), int(tr.Q))})
	}
	return rows
}

// backwardCover computes U_b by the frontier-driven pred-basis fixpoint.
// It returns the fixpoint, the number of rounds, and the total number of
// frontier elements expanded.
func backwardCover(p *protocol.Protocol, b int, maxBasis, workers int, stop <-chan struct{}) (*ideal.UpSet, int, int, error) {
	u, frontier := seedGenerators(p, b)
	rows := predRows(p)
	iters, expanded, err := runFixpoint(u, frontier, rows, maxBasis, workers, stop)
	return u, iters, expanded, err
}

// runFixpoint drives the pred-basis fixpoint to completion from an initial
// antichain and frontier. The invariant it needs from callers: every live
// element NOT in the initial frontier already has all its predecessors in
// the set (true vacuously for the generator seed, and re-established by the
// warm path by enqueueing every seeded element). It returns the round and
// expansion counts.
func runFixpoint(u *ideal.UpSet, frontier []int32, rows []predRow, maxBasis, workers int, stop <-chan struct{}) (int, int, error) {
	d := u.Dim()
	var (
		iters    int
		expanded int
		roundF   []int32 // live frontier of the current round
		preds    []int64 // round-scratch pred arena, len(roundF)·len(rows)·d
	)
	for len(frontier) > 0 {
		iters++
		// Elements dominated since they were enqueued derive nothing their
		// dominator (also in this frontier, and alive) does not cover.
		roundF = roundF[:0]
		for _, id := range frontier {
			if u.Alive(int(id)) {
				roundF = append(roundF, id)
			}
		}
		if len(roundF) == 0 {
			break
		}
		expanded += len(roundF)

		// Fan-out: derive all predecessors of the frontier into fixed
		// (element × transition) slots — pure reads of the arena, so the
		// sharded mode writes the same words the sequential mode does.
		need := len(roundF) * len(rows) * d
		if cap(preds) < need {
			preds = make([]int64, need)
		}
		preds = preds[:need]
		if workers > 1 && len(roundF) > 1 {
			if err := fanOutParallel(u, roundF, rows, preds, d, workers, stop); err != nil {
				return iters, expanded, err
			}
		} else {
			n := 0
			for fi, id := range roundF {
				m := u.At(int(id))
				base := fi * len(rows) * d
				for ti := range rows {
					if n%interruptBatch == 0 && stopped(stop) {
						return iters, expanded, ErrInterrupted
					}
					n++
					predInto(preds[base+ti*d:base+(ti+1)*d], m, &rows[ti])
				}
			}
		}

		// Merge: one sequential application pass in slot order. This is the
		// only phase that mutates the antichain, so sequential and sharded
		// runs insert identical vectors in identical order — the final
		// antichain is bit-identical for any worker count.
		frontier = frontier[:0]
		for k := 0; k < len(roundF)*len(rows); k++ {
			if k%interruptBatch == 0 && stopped(stop) {
				return iters, expanded, ErrInterrupted
			}
			if id, grew := u.Insert(preds[k*d : (k+1)*d]); grew {
				frontier = append(frontier, int32(id))
			}
		}
		if u.Size() > maxBasis {
			return iters, expanded, fmt.Errorf("%w: %d elements", ErrBasisTooLarge, u.Size())
		}
	}
	if iters == 0 {
		// No frontier at all (e.g. every state already has output b, so
		// there are no generators): report the one vacuous round the seed
		// fixpoint counted.
		iters = 1
	}
	return iters, expanded, nil
}

// fanOutParallel shards the frontier across workers, each deriving the
// predecessors of a contiguous element range into the shared slot arena.
// Slots are disjoint, so no synchronization beyond the final wait is
// needed; every worker polls the stop channel in batches.
func fanOutParallel(u *ideal.UpSet, roundF []int32, rows []predRow, preds []int64, d, workers int, stop <-chan struct{}) error {
	if workers > len(roundF) {
		workers = len(roundF)
	}
	var (
		wg          sync.WaitGroup
		interrupted atomic.Bool
	)
	chunk := (len(roundF) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(roundF) {
			hi = len(roundF)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			n := 0
			for fi := lo; fi < hi; fi++ {
				m := u.At(int(roundF[fi]))
				base := fi * len(rows) * d
				for ti := range rows {
					if n%interruptBatch == 0 && stopped(stop) {
						interrupted.Store(true)
						return
					}
					n++
					predInto(preds[base+ti*d:base+(ti+1)*d], m, &rows[ti])
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if interrupted.Load() {
		return ErrInterrupted
	}
	return nil
}

// Protocol returns the analyzed protocol.
func (a *Analysis) Protocol() *protocol.Protocol { return a.p }

// StableSet returns SC_b as a downward-closed set. The returned set is
// shared; callers must not modify it.
func (a *Analysis) StableSet(b int) *ideal.DownSet { return a.sc[b] }

// SC returns SC = SC_0 ∪ SC_1, computed once per analysis. The returned
// set is shared; callers must not modify it.
func (a *Analysis) SC() *ideal.DownSet { return a.scAll }

// Unstable returns U_b, the upward-closed complement of SC_b. The returned
// set is shared; callers must not modify it.
func (a *Analysis) Unstable(b int) *ideal.UpSet { return a.unstable[b] }

// Iterations returns the number of fixpoint rounds used for U_b.
func (a *Analysis) Iterations(b int) int { return a.iterations[b] }

// FrontierProcessed returns the total number of frontier elements expanded
// by the U_b fixpoint — the work measure of the frontier-driven core (the
// seed fixpoint re-expanded the whole basis every round).
func (a *Analysis) FrontierProcessed(b int) int { return a.frontier[b] }

// IsStable reports whether configuration c is b-stable.
func (a *Analysis) IsStable(c protocol.Config, b int) bool {
	return !a.unstable[b].Contains(c)
}

// Classify returns (b, true) if c is b-stable for some b. It implements the
// sim package's Oracle interface, giving simulations an exact convergence
// detector.
func (a *Analysis) Classify(c protocol.Config) (int, bool) {
	if a.IsStable(c, 0) {
		return 0, true
	}
	if a.IsStable(c, 1) {
		return 1, true
	}
	return 0, false
}

// BasisElement is a (B, S) pair as in Section 3: the ideal B + ℕ^S. S is a
// packed coordinate bitset (ideal.Bits); use S.ToMap for the certificate
// map representation.
type BasisElement struct {
	B multiset.Vec
	S ideal.Bits
}

// Norm returns ‖(B,S)‖∞ = ‖B‖∞.
func (e BasisElement) Norm() int64 { return e.B.NormInf() }

// Contains reports whether c ∈ ↓(B + ℕ^S), the downward closure of the
// basis element's ideal (see the package comment of ideal for the exact-form
// correspondence).
func (e BasisElement) Contains(c protocol.Config) bool {
	for i, v := range c {
		if v > e.B[i] && !e.S.Test(i) {
			return false
		}
	}
	return true
}

// Basis returns the basis elements of SC_b derived from its ideal
// decomposition.
func (a *Analysis) Basis(b int) []BasisElement {
	return basisOf(a.sc[b])
}

// SCBasis returns the basis elements of SC = SC_0 ∪ SC_1, computed once
// per analysis. The returned slice is shared; callers must not modify it.
func (a *Analysis) SCBasis() []BasisElement {
	return a.scAllBasis
}

func basisOf(ds *ideal.DownSet) []BasisElement {
	ids := ds.Ideals()
	out := make([]BasisElement, len(ids))
	for i, id := range ids {
		out[i] = BasisElement{B: id.B(), S: id.SBits()}
	}
	return out
}

// MeasuredNorm returns the maximal basis-element norm of SC — the measured
// counterpart of the small basis constant β(n) of Lemma 3.2/Definition 3.
func (a *Analysis) MeasuredNorm() int64 {
	return a.SC().Norm()
}

// DecomposeStable splits a stable configuration as c = B + Da with
// Da ∈ ℕ^S for a basis element (B, S) of SC, choosing the ideal that
// maximises the agents carried by S (i.e. minimises |B| = c(Q∖S), the
// choice that makes Lemma 5.5's concentration argument work). The returned
// B agrees with c outside S and is 0 on S, so B + ℕ^S ⊆ SC holds exactly
// in the paper's sense. ok is false if c is not stable.
func (a *Analysis) DecomposeStable(c protocol.Config) (B multiset.Vec, S ideal.Bits, Da multiset.Vec, ok bool) {
	e, found := a.FindStableIdeal(c)
	if !found {
		return nil, nil, nil, false
	}
	B = multiset.New(c.Dim())
	Da = multiset.New(c.Dim())
	for i, v := range c {
		if e.S.Test(i) {
			Da[i] = v
		} else {
			B[i] = v
		}
	}
	return B, e.S, Da, true
}

// FindStableIdeal returns the basis element of SC whose ideal contains c,
// preferring (as Lemma 5.5 does) one whose S-part carries most of c's
// agents. ok is false if c is not stable.
func (a *Analysis) FindStableIdeal(c protocol.Config) (BasisElement, bool) {
	best := BasisElement{}
	found := false
	var bestOnS int64 = -1
	for _, e := range a.SCBasis() {
		if !e.Contains(c) {
			continue
		}
		var onS int64
		for i, v := range c {
			if e.S.Test(i) {
				onS += v
			}
		}
		if onS > bestOnS {
			best, bestOnS, found = e, onS, true
		}
	}
	return best, found
}
