package stable

// Benchmarks of the backward-coverability core on a pinned ≥10k-element
// basis workload: binary:104 (BinaryThreshold(104), 10 states, 55
// transitions), whose U_0 fixpoint has 11,538 minimal elements.
// BenchmarkStableAnalyzeNaive runs the retained seed fixpoint
// (reference_test.go) and is the "before" side of the comparison pinned in
// BENCH_stable.json; run scripts/bench.sh stable to regenerate it. The
// seed complementation (ideal.NaiveComplementUp) cannot finish this
// workload at all — its per-element pass re-verifies irredundancy of the
// whole ~10k-ideal decomposition and did not complete within an hour — so
// the naive side borrows the production complementation, which makes the
// reported fixpoint speedup conservative.

import (
	"fmt"
	"testing"

	"repro/internal/ideal"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

// benchProtocol is the pinned workload. Its U_0 basis (11,538 elements)
// is what the ≥10k-element acceptance bar refers to.
func benchProtocol() *protocol.Protocol {
	return protocols.BinaryThreshold(104).Protocol
}

// BenchmarkStableAnalyzeArena: the frontier-driven fixpoint on the
// arena-backed antichain, full analysis (both fixpoints, complementation,
// SC union).
func BenchmarkStableAnalyzeArena(b *testing.B) {
	p := benchProtocol()
	b.ReportAllocs()
	var basis int
	for i := 0; i < b.N; i++ {
		a, err := Analyze(p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		basis = a.Unstable(0).Size()
	}
	if basis < 10_000 {
		b.Fatalf("workload regressed below the pinned size: |U_0| = %d", basis)
	}
	b.ReportMetric(float64(basis), "basis-elements")
}

// BenchmarkStableAnalyzeNaive: the seed analysis — restart-the-whole-basis
// fixpoint over the naive antichain — on the same workload (production
// complementation; see the file comment). Expect minutes per iteration:
// this is the before side.
func BenchmarkStableAnalyzeNaive(b *testing.B) {
	p := benchProtocol()
	b.ReportAllocs()
	var basis int
	for i := 0; i < b.N; i++ {
		var sc [2]*ideal.DownSet
		for out := 0; out <= 1; out++ {
			u, _, err := referenceBackwardCover(p, out, 200_000, nil)
			if err != nil {
				b.Fatal(err)
			}
			if out == 0 {
				basis = u.Size()
			}
			sc[out] = ideal.ComplementUp(ideal.NewUpSet(p.NumStates(), u.MinBasis()...))
		}
		sc[0].Union(sc[1])
	}
	b.ReportMetric(float64(basis), "basis-elements")
}

// BenchmarkStableAnalyzeParallel: the sharded fan-out at several worker
// counts (bit-identical results). Scaling requires GOMAXPROCS > 1; on a
// single-core host this measures the round-synchronization overhead
// instead.
func BenchmarkStableAnalyzeParallel(b *testing.B) {
	p := benchProtocol()
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(p, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
