package stable

import (
	"fmt"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
)

// Restore rebuilds an Analysis from its durable form: the minimal bases of
// U_0 and U_1 (as returned by Unstable(b).MinBasis()) plus the recorded
// iteration and frontier counts. It recomputes the derived structures —
// SC_b, SC_0 ∪ SC_1, and the SC basis — the same way Analyze does.
//
// The result is indistinguishable from a fresh Analyze: MinBasis preserves
// insertion order, re-inserting an antichain in that order reproduces the
// arena's element order exactly, and ComplementUp is deterministic in that
// order, so every accessor (Basis, SCBasis, MeasuredNorm, Classify, …)
// returns bit-identical values. TestRestoreEqualsAnalyze pins this over
// the whole builtin catalog.
func Restore(p *protocol.Protocol, basis [2][]multiset.Vec, iterations, frontier [2]int) (*Analysis, error) {
	d := p.NumStates()
	a := &Analysis{p: p}
	for b := 0; b <= 1; b++ {
		u := ideal.NewUpSet(d)
		for _, m := range basis[b] {
			if len(m) != d {
				return nil, fmt.Errorf("stable: restore U_%d: element dimension %d, protocol has %d states", b, len(m), d)
			}
			u.Insert(m)
		}
		if iterations[b] <= 0 {
			return nil, fmt.Errorf("stable: restore U_%d: non-positive iteration count %d", b, iterations[b])
		}
		a.unstable[b] = u
		a.iterations[b] = iterations[b]
		a.frontier[b] = frontier[b]
		a.sc[b] = ideal.ComplementUp(u)
	}
	a.scAll = a.sc[0].Union(a.sc[1])
	a.scAllBasis = basisOf(a.scAll)
	return a, nil
}
