package stable

import (
	"fmt"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
)

// Restore rebuilds an Analysis from its durable form: the minimal bases of
// U_0 and U_1 (as returned by Unstable(b).MinBasis()) plus the recorded
// iteration and frontier counts. It recomputes the derived structures —
// SC_b, SC_0 ∪ SC_1, and the SC basis — the same way Analyze does.
//
// The result is indistinguishable from a fresh Analyze: both paths
// canonicalize the antichain into the same element order (ideal.
// CanonicalUpSet), and ComplementUp is deterministic in that order, so
// every accessor (Basis, SCBasis, MeasuredNorm, Classify, …) returns
// bit-identical values — whatever order the stored basis arrived in
// (canonical for fresh artifacts, fixpoint insertion order for artifacts
// written before canonicalization landed). TestRestoreEqualsAnalyze pins
// this over the whole builtin catalog.
func Restore(p *protocol.Protocol, basis [2][]multiset.Vec, iterations, frontier [2]int) (*Analysis, error) {
	d := p.NumStates()
	a := &Analysis{p: p}
	for b := 0; b <= 1; b++ {
		u := ideal.NewUpSet(d)
		for _, m := range basis[b] {
			if len(m) != d {
				return nil, fmt.Errorf("stable: restore U_%d: element dimension %d, protocol has %d states", b, len(m), d)
			}
			u.Insert(m)
		}
		if iterations[b] <= 0 {
			return nil, fmt.Errorf("stable: restore U_%d: non-positive iteration count %d", b, iterations[b])
		}
		a.setUnstable(b, u, iterations[b], frontier[b])
	}
	a.finish()
	return a, nil
}

// canonicalOrder reports whether the basis is strictly ascending in the
// canonical (lexicographic) element order — the order every basis this
// package emits is in, and the precondition for the bulk restore path.
// Equal-length check rides along: a dimension mismatch is caught by the
// restore itself.
func canonicalOrder(basis []multiset.Vec) bool {
	for i := 1; i < len(basis); i++ {
		if len(basis[i-1]) != len(basis[i]) || !ideal.Less(basis[i-1], basis[i]) {
			return false
		}
	}
	return true
}

// Derived is the derived-structure payload of an Analysis: the irredundant
// ideal decompositions of SC_0, SC_1 and SC_0 ∪ SC_1, in the order
// ComplementUp and Union produced them. Persisting it alongside the U_b
// bases lets RestoreDerived skip recomputing the complements — on
// logarithmic-state threshold families the complement dominates Restore,
// making a durable-store hit nearly as expensive as the fixpoint it is
// supposed to skip.
type Derived struct {
	SC    [2][]ideal.Ideal
	SCAll []ideal.Ideal
}

// Derived returns the analysis's derived decompositions for persisting.
func (a *Analysis) Derived() Derived {
	return Derived{
		SC:    [2][]ideal.Ideal{a.sc[0].Ideals(), a.sc[1].Ideals()},
		SCAll: a.scAll.Ideals(),
	}
}

// RestoreDerived rebuilds an Analysis from its durable form plus the
// persisted derived decompositions, skipping the complementation work
// Restore pays. The U_b antichains are rebuilt and canonicalized exactly as
// Restore does; the SC sets are restored verbatim (ideal.RestoreDownSet),
// which preserves both the canonical maximal-ideal sets and the exact
// iteration order the computing run produced — every accessor returns
// values bit-identical to a fresh Analyze. The caller vouches the derived
// data was produced by Derived() on an equal analysis; dimension mismatches
// are rejected, semantic corruption is not detectable here (the engine's
// content addressing is what rules it out).
func RestoreDerived(p *protocol.Protocol, basis [2][]multiset.Vec, iterations, frontier [2]int, der Derived) (*Analysis, error) {
	d := p.NumStates()
	a := &Analysis{p: p}
	for b := 0; b <= 1; b++ {
		if iterations[b] <= 0 {
			return nil, fmt.Errorf("stable: restore U_%d: non-positive iteration count %d", b, iterations[b])
		}
		if canonicalOrder(basis[b]) {
			// The stored basis is already in canonical order (always true
			// for bases this package wrote): bulk-restore skips every
			// domination scan, and arena order == canonical order.
			u, err := ideal.RestoreUpSet(d, basis[b])
			if err != nil {
				return nil, fmt.Errorf("stable: restore U_%d: %w", b, err)
			}
			a.unstable[b] = u
		} else {
			u := ideal.NewUpSet(d)
			for _, m := range basis[b] {
				if len(m) != d {
					return nil, fmt.Errorf("stable: restore U_%d: element dimension %d, protocol has %d states", b, len(m), d)
				}
				u.Insert(m)
			}
			a.unstable[b] = ideal.CanonicalUpSet(u)
		}
		a.iterations[b] = iterations[b]
		a.frontier[b] = frontier[b]
		sc, err := ideal.RestoreDownSet(d, der.SC[b])
		if err != nil {
			return nil, fmt.Errorf("stable: restore SC_%d: %w", b, err)
		}
		a.sc[b] = sc
	}
	scAll, err := ideal.RestoreDownSet(d, der.SCAll)
	if err != nil {
		return nil, fmt.Errorf("stable: restore SC union: %w", err)
	}
	a.scAll = scAll
	a.scAllBasis = basisOf(a.scAll)
	return a, nil
}
