package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dioph"
	"repro/internal/protocol"
	"repro/internal/realise"
	"repro/internal/stable"
)

// This file is the family-identity layer of the incremental
// family-parametric analysis. A *family* is a protocol template with one
// integer parameter — "flock:{N}", "binary:{N}" — whose instantiations a
// sweep analyzes at many parameter values. The exact content hash keys the
// artifact cache as before; alongside it the engine maintains a family
// index (template + param → member hash) so that a cache miss on a NEW
// family member can locate its nearest analyzed neighbor and extend that
// neighbor's artifacts (stable.AnalyzeWarm, realise.BasisWarm) instead of
// computing from nothing. The warm paths are proven element-for-element
// identical to cold computation, so the family layer changes provenance
// and cost, never results.
//
// The index itself is persisted under the "family" artifact kind, keyed by
// the hash of the template string, so an engine restarted over a warm
// artifact store can resolve neighbors from runs it never saw.

// FamilyParamToken is the placeholder a family template carries where the
// parameter value goes, matching the sweep grid's parameter token.
const FamilyParamToken = "{N}"

// familyState is the in-memory index of one family's registered members.
type familyState struct {
	// members maps parameter value to the member's protocol content hash.
	members map[int64]string
	// loaded reports whether the durable index was merged in already.
	loaded bool
}

// familyKey returns the store key of a family index: the hex SHA-256 of
// the template string (the store expects hash-shaped keys).
func familyKey(family string) string {
	sum := sha256.Sum256([]byte(family))
	return hex.EncodeToString(sum[:])
}

// familyMemberV1 is one registered member in the durable index.
type familyMemberV1 struct {
	Param int64  `json:"param"`
	Hash  string `json:"hash"`
}

// familyArtifactV1 is version 1 of the durable family-index encoding.
type familyArtifactV1 struct {
	V       int              `json:"v"`
	Family  string           `json:"family"`
	Members []familyMemberV1 `json:"members"`
}

// SetIncremental enables or disables the family warm paths (enabled by
// default). Disabled, every family member computes from scratch exactly as
// if no family were declared — the switch the differential suite and the
// from-scratch bench baseline flip. Member registration continues either
// way, so flipping incremental back on sees the members analyzed while it
// was off.
func (e *Engine) SetIncremental(on bool) {
	e.mu.Lock()
	e.incrementalOff = !on
	e.mu.Unlock()
}

func (e *Engine) incrementalEnabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.incrementalOff
}

// famCtx carries a request's family identity into the artifact
// computations, together with the result pointer that receives incremental
// provenance.
type famCtx struct {
	family string
	param  int64
	res    *Result
}

// famCtxOf builds the family context of a request, or nil when the request
// declares no family.
func famCtxOf(req Request, res *Result) *famCtx {
	if req.Family == "" {
		return nil
	}
	return &famCtx{family: req.Family, param: req.FamilyParam, res: res}
}

// validateFamily sanity-checks a request's family declaration: the
// template must contain the parameter token, else it could never have
// produced the member protocols it claims to relate.
func validateFamily(req Request) error {
	if req.Family == "" {
		return nil
	}
	if !strings.Contains(req.Family, FamilyParamToken) {
		return fmt.Errorf("%w: family template %q has no %s token", ErrBadRequest, req.Family, FamilyParamToken)
	}
	return nil
}

// registerFamilyMember records (family, param) → hash in the in-memory
// index and writes the updated index through to the artifact store. Called
// on the request path for every family-declaring request, before the
// artifact computation, so concurrent sweep cells see each other.
func (e *Engine) registerFamilyMember(family string, param int64, hash string) {
	e.mu.Lock()
	fs := e.familyLocked(family)
	changed := fs.members[param] != hash
	fs.members[param] = hash
	var payload []byte
	if changed && e.artstore != nil {
		payload = encodeFamilyLocked(family, fs)
	}
	e.mu.Unlock()
	if payload != nil {
		e.saveArtifact(ArtifactFamily, familyKey(family), payload, nil)
	}
}

// familyLocked returns the family's in-memory state, creating it and
// merging the durable index on first touch. Caller holds e.mu.
func (e *Engine) familyLocked(family string) *familyState {
	if e.families == nil {
		e.families = make(map[string]*familyState)
	}
	fs := e.families[family]
	if fs == nil {
		fs = &familyState{members: make(map[int64]string)}
		e.families[family] = fs
	}
	if !fs.loaded {
		fs.loaded = true
		if st := e.artstore; st != nil {
			if payload, err := st.Get(ArtifactFamily, familyKey(family)); err == nil && payload != nil {
				var art familyArtifactV1
				if json.Unmarshal(payload, &art) == nil && art.V == 1 && art.Family == family {
					for _, m := range art.Members {
						if _, have := fs.members[m.Param]; !have {
							fs.members[m.Param] = m.Hash
						}
					}
				}
			}
		}
	}
	return fs
}

// encodeFamilyLocked serializes a family index, members in ascending
// parameter order. Caller holds e.mu.
func encodeFamilyLocked(family string, fs *familyState) []byte {
	art := familyArtifactV1{V: 1, Family: family}
	params := make([]int64, 0, len(fs.members))
	for p := range fs.members {
		params = append(params, p)
	}
	sort.Slice(params, func(i, j int) bool { return params[i] < params[j] })
	for _, p := range params {
		art.Members = append(art.Members, familyMemberV1{Param: p, Hash: fs.members[p]})
	}
	payload, err := json.Marshal(art)
	if err != nil {
		return nil
	}
	return payload
}

// FamilyMembers reports the registered (param → hash) members of a family,
// for introspection and tests.
func (e *Engine) FamilyMembers(family string) map[int64]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	fs := e.familyLocked(family)
	out := make(map[int64]string, len(fs.members))
	for p, h := range fs.members {
		out[p] = h
	}
	return out
}

// neighbor is a family member whose artifacts can seed a warm computation.
type neighbor struct {
	family string
	param  int64
	hash   string
	proto  *protocol.Protocol
}

// neighborCandidates lists the registered members of a family other than
// the requesting one, nearest parameter first; ties prefer the lower
// parameter (sweeps run families in ascending parameter order, so the
// lower neighbor is the one most likely already complete).
func (e *Engine) neighborCandidates(family string, param int64, selfHash string) []neighbor {
	e.mu.Lock()
	fs := e.familyLocked(family)
	out := make([]neighbor, 0, len(fs.members))
	for p, h := range fs.members {
		if p == param || h == selfHash || h == "" {
			continue
		}
		out = append(out, neighbor{family: family, param: p, hash: h})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		di, dj := absDelta(out[i].param, param), absDelta(out[j].param, param)
		if di != dj {
			return di < dj
		}
		return out[i].param < out[j].param
	})
	return out
}

func absDelta(a, b int64) int64 {
	if a < b {
		return b - a
	}
	return a - b
}

// memberSpec instantiates the family template at a parameter value:
// "flock:{N}" at 7 becomes the registry spec "flock:7". Resolution
// failures just disqualify the neighbor.
func memberSpec(family string, param int64) string {
	return strings.ReplaceAll(family, FamilyParamToken, strconv.FormatInt(param, 10))
}

// resolveNeighbor materializes a candidate's protocol from the family
// template and confirms the content hash matches what was registered — a
// template drift (re-registered constructor, renamed family) makes the
// candidate unusable, never wrong.
func (e *Engine) resolveNeighbor(nb neighbor) (neighbor, bool) {
	entry, err := e.reg.Resolve(memberSpec(nb.family, nb.param))
	if err != nil {
		return nb, false
	}
	h, err := Hash(entry.Protocol)
	if err != nil || h != nb.hash {
		return nb, false
	}
	nb.proto = entry.Protocol
	return nb, true
}

// maxNeighborProbes bounds how many candidate neighbors a warm lookup
// materializes before falling back to a cold computation: each probe may
// hit the registry and the disk store, and a family whose near members
// were all evicted gains little from walking the far ones.
const maxNeighborProbes = 3

// warmStableSeed finds the nearest neighbor with an available stable
// analysis: completed in memory, or restorable from the artifact store.
func (e *Engine) warmStableSeed(ctx context.Context, fam *famCtx, selfHash string) (*stable.Analysis, neighbor, bool) {
	probes := 0
	for _, nb := range e.neighborCandidates(fam.family, fam.param, selfHash) {
		if probes >= maxNeighborProbes {
			break
		}
		probes++
		// Memory first: a completed memo needs no protocol re-resolution.
		e.mu.Lock()
		a := e.cache[nb.hash]
		e.mu.Unlock()
		if a != nil && a.stable.completed() && a.stable.err == nil {
			return a.stable.val, nb, true
		}
		rnb, ok := e.resolveNeighbor(nb)
		if !ok {
			continue
		}
		if prev := e.loadStable(ctx, rnb.proto, rnb.hash); prev != nil {
			return prev, rnb, true
		}
	}
	return nil, neighbor{}, false
}

// warmBasisSeed finds the nearest neighbor with an available realisable
// basis, together with its protocol (realise.BasisWarm needs it for the
// transition mapping) — so unlike warmStableSeed, even a memory hit must
// re-resolve the neighbor protocol.
func (e *Engine) warmBasisSeed(ctx context.Context, fam *famCtx, selfHash string) ([]realise.TransitionMultiset, neighbor, bool) {
	probes := 0
	for _, nb := range e.neighborCandidates(fam.family, fam.param, selfHash) {
		if probes >= maxNeighborProbes {
			break
		}
		probes++
		rnb, ok := e.resolveNeighbor(nb)
		if !ok {
			continue
		}
		e.mu.Lock()
		a := e.cache[rnb.hash]
		e.mu.Unlock()
		if a != nil && a.basis.completed() && a.basis.err == nil {
			return a.basis.val, rnb, true
		}
		if basis, ok := e.loadBasis(ctx, rnb.proto, rnb.hash); ok {
			return basis, rnb, true
		}
	}
	return nil, neighbor{}, false
}

// attachIncremental records warm provenance on the result, if the request
// carries one. First warm artifact wins — a certify request that warms
// both the analysis and the basis reports the analysis (the dominant
// cost).
func (fam *famCtx) attachIncremental(info *IncrementalInfo) {
	if fam.res != nil && fam.res.Incremental == nil {
		fam.res.Incremental = info
	}
}

// computeStableWarm is the family-aware stable computation: with an
// available neighbor it runs the delta path and records provenance and
// metrics; otherwise it degrades to the cold fixpoint (and says so in the
// metrics — a family that never warms is a scheduling bug worth seeing on
// a dashboard).
func (e *Engine) computeStableWarm(ctx context.Context, p *protocol.Protocol, hash string, fam *famCtx) (*stable.Analysis, error) {
	opts := stable.Options{Interrupt: ctx.Done(), Workers: e.stableWorkerCount()}
	if fam == nil {
		return stable.Analyze(p, opts)
	}
	if !e.incrementalEnabled() {
		e.metrics.IncrementalAttempts.WithLabelValues("disabled").Inc()
		return stable.Analyze(p, opts)
	}
	prev, nb, ok := e.warmStableSeed(ctx, fam, hash)
	if !ok {
		e.metrics.IncrementalAttempts.WithLabelValues("cold_stable").Inc()
		return stable.Analyze(p, opts)
	}
	e.metrics.IncrementalAttempts.WithLabelValues("warm_stable").Inc()
	a, stats, err := stable.AnalyzeWarm(p, opts, stable.WarmSeed{Prev: prev})
	if err != nil {
		return nil, err
	}
	e.metrics.IncrementalSeeds.WithLabelValues("imported").Add(float64(stats.ImportedTotal()))
	e.metrics.IncrementalSeeds.WithLabelValues("certified").Add(float64(stats.CertifiedTotal()))
	e.metrics.IncrementalSeeds.WithLabelValues("dropped").Add(float64(stats.DroppedTotal()))
	fam.attachIncremental(&IncrementalInfo{
		Family:    fam.family,
		Param:     fam.param,
		SeedParam: nb.param,
		SeedHash:  nb.hash,
		Mode:      "warm-stable",
		Imported:  stats.ImportedTotal(),
		Certified: stats.CertifiedTotal(),
		Dropped:   stats.DroppedTotal(),
	})
	return a, nil
}

// computeBasisWarm is the family-aware realisable-basis computation,
// mirroring computeStableWarm.
func (e *Engine) computeBasisWarm(ctx context.Context, p *protocol.Protocol, hash string, fam *famCtx) ([]realise.TransitionMultiset, error) {
	opts := dioph.Options{Interrupt: ctx.Done()}
	if fam == nil {
		return realise.Basis(p, opts)
	}
	if !e.incrementalEnabled() {
		e.metrics.IncrementalAttempts.WithLabelValues("disabled").Inc()
		return realise.Basis(p, opts)
	}
	prevBasis, nb, ok := e.warmBasisSeed(ctx, fam, hash)
	if !ok {
		e.metrics.IncrementalAttempts.WithLabelValues("cold_basis").Inc()
		return realise.Basis(p, opts)
	}
	e.metrics.IncrementalAttempts.WithLabelValues("warm_basis").Inc()
	basis, stats, err := realise.BasisWarm(p, opts, realise.WarmSeed{Prev: nb.proto, PrevBasis: prevBasis})
	if err != nil {
		return nil, err
	}
	e.metrics.IncrementalSeeds.WithLabelValues("imported").Add(float64(stats.Mapped))
	e.metrics.IncrementalSeeds.WithLabelValues("certified").Add(float64(stats.Seeds.Accepted))
	e.metrics.IncrementalSeeds.WithLabelValues("dropped").Add(float64(stats.Unmapped + stats.Seeds.Rejected))
	fam.attachIncremental(&IncrementalInfo{
		Family:    fam.family,
		Param:     fam.param,
		SeedParam: nb.param,
		SeedHash:  nb.hash,
		Mode:      "warm-basis",
		Imported:  stats.Mapped,
		Certified: stats.Seeds.Accepted,
		Dropped:   stats.Unmapped + stats.Seeds.Rejected,
	})
	return basis, nil
}
