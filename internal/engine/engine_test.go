package engine

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/multiset"
	"repro/internal/protocols"
	"repro/internal/sim"
)

// TestSimulateRunsRouteThroughReplicaExecutor pins the engine's multi-run
// path to the replica executor: the estimate of a runs>1 request must be
// exactly sim.RunReplicas on the same workload (same replica seeds, same
// aggregate), with the executor's throughput fields populated.
func TestSimulateRunsRouteThroughReplicaExecutor(t *testing.T) {
	eng := New()
	res := do(t, eng, Request{
		Kind:     KindSimulate,
		Protocol: ProtocolRef{Spec: "flock:4"},
		Input:    []int64{16},
		Seed:     9,
		Runs:     5,
	})
	est := res.Simulation.Estimate
	if est == nil {
		t.Fatalf("runs>1 should return an estimate: %+v", res.Simulation)
	}
	e, err := protocols.FromName("flock:4")
	if err != nil {
		t.Fatal(err)
	}
	p := e.Protocol
	want, err := sim.RunReplicas(p, p.InitialConfig(multiset.Vec{16}), 5, sim.Options{Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.Estimate{
		Runs: est.Runs, Converged: est.Converged, Output: est.Output,
		MeanParallel: est.MeanParallel, MedianParallel: est.MedianParallel,
		P95Parallel: est.P95Parallel, MaxParallel: est.MaxParallel,
		TotalInteractions: est.TotalInteractions, MeanInteractions: est.MeanInteractions,
	}
	if got != want {
		t.Fatalf("engine estimate %+v, want the replica executor's %+v", got, want)
	}
	if est.TotalInteractions <= 0 || est.MeanInteractions <= 0 {
		t.Fatalf("executor throughput fields missing: %+v", est)
	}
}

// do runs a request on the engine and fails the test on error.
func do(t *testing.T, eng *Engine, req Request) *Result {
	t.Helper()
	res, err := eng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// inlineParity returns the parity protocol as compact inline JSON.
func inlineParity(t *testing.T) json.RawMessage {
	t.Helper()
	e, err := protocols.FromName("parity")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(e.Protocol)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRequestJSONRoundTrip is the acceptance check: a Request marshals to
// JSON and back losslessly for every Kind.
func TestRequestJSONRoundTrip(t *testing.T) {
	pred := &PredicateSpec{Kind: "counting", Threshold: 5}
	requests := map[Kind]Request{
		KindSimulate: {
			Kind:     KindSimulate,
			Protocol: ProtocolRef{Spec: "flock:8"},
			Input:    []int64{20},
			Seed:     7, MaxSteps: 1000, Runs: 3, ExactOracle: true, TraceEvery: 50,
			TimeoutMillis: 2500,
		},
		KindVerify: {
			Kind:      KindVerify,
			Protocol:  ProtocolRef{Inline: json.RawMessage(`{"name":"p","states":[{"name":"a","output":1}],"transitions":[],"inputs":{"x":"a"}}`)},
			Predicate: pred,
			MinSize:   2, MaxSize: 9, Limit: 100,
		},
		KindStable:            {Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:7"}},
		KindCertifyChain:      {Kind: KindCertifyChain, Protocol: ProtocolRef{Spec: "leaderflock:3"}, Seed: 11},
		KindCertifyLeaderless: {Kind: KindCertifyLeaderless, Protocol: ProtocolRef{Spec: "flock:4"}, Seed: 2},
		KindSaturate:          {Kind: KindSaturate, Protocol: ProtocolRef{Spec: "parity"}},
		KindBasis:             {Kind: KindBasis, Protocol: ProtocolRef{Spec: "succinct:3"}},
		KindBounds:            {Kind: KindBounds, States: 4, Transitions: 10},
		KindCover:             {Kind: KindCover, Protocol: ProtocolRef{Spec: "flock:4"}, Input: []int64{6}, Limit: 500},
	}
	if len(requests) != len(Kinds) {
		t.Fatalf("round-trip table covers %d kinds, want %d", len(requests), len(Kinds))
	}
	for kind, req := range requests {
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("%s: marshal: %v", kind, err)
		}
		var back Request
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", kind, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Errorf("%s: lossy round trip:\n  in:  %+v\n  out: %+v\n  json: %s", kind, req, back, data)
		}
		// And once more, to catch marshalling that is itself lossy.
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", kind, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: JSON not stable under round trip: %s vs %s", kind, data, data2)
		}
	}
}

// TestEngineCacheHit is the acceptance check: a second identical stable or
// basis request hits the engine cache.
func TestEngineCacheHit(t *testing.T) {
	eng := New()

	r1 := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:6"}})
	if r1.CacheHit {
		t.Error("first stable request must be a cache miss")
	}
	r2 := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:6"}})
	if !r2.CacheHit {
		t.Error("second identical stable request must hit the cache")
	}
	if !reflect.DeepEqual(r1.Stable, r2.Stable) {
		t.Error("cached stable result differs from computed one")
	}

	b1 := do(t, eng, Request{Kind: KindBasis, Protocol: ProtocolRef{Spec: "succinct:2"}})
	if b1.CacheHit {
		t.Error("first basis request must be a cache miss")
	}
	b2 := do(t, eng, Request{Kind: KindBasis, Protocol: ProtocolRef{Spec: "succinct:2"}})
	if !b2.CacheHit {
		t.Error("second identical basis request must hit the cache")
	}

	hits, misses := eng.CacheStats()
	if hits != 2 || misses != 2 {
		t.Errorf("cache stats: hits=%d misses=%d, want 2/2", hits, misses)
	}
}

// TestCacheSharedAcrossRefForms: the same protocol referenced by spec and
// by inline JSON shares one cache slot (content addressing).
func TestCacheSharedAcrossRefForms(t *testing.T) {
	eng := New()
	ctx := context.Background()
	if _, err := eng.Do(ctx, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "parity"}}); err != nil {
		t.Fatal(err)
	}
	res := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Inline: inlineParity(t)}})
	if !res.CacheHit {
		t.Error("inline reference to the same protocol should hit the spec-warmed cache")
	}
}

func TestSimulate(t *testing.T) {
	eng := New()
	res := do(t, eng, Request{
		Kind:     KindSimulate,
		Protocol: ProtocolRef{Spec: "flock:4"},
		Input:    []int64{8},
		Seed:     3,
	})
	s := res.Simulation
	if s == nil || !s.Converged || s.Output != 1 {
		t.Fatalf("flock:4 on 8 agents should converge to 1: %+v", s)
	}
	if res.Protocol == nil || res.Protocol.States != 5 || res.Protocol.Hash == "" {
		t.Errorf("protocol info incomplete: %+v", res.Protocol)
	}
	if s.FinalFormatted == "" {
		t.Error("missing formatted final configuration")
	}

	// Multi-run estimate.
	res = do(t, eng, Request{
		Kind:     KindSimulate,
		Protocol: ProtocolRef{Spec: "majority"},
		Input:    []int64{5, 2},
		Runs:     3,
	})
	if res.Simulation.Estimate == nil || res.Simulation.Estimate.Runs != 3 {
		t.Fatalf("runs>1 should return an estimate: %+v", res.Simulation)
	}

	// Exact oracle path warms the stable cache.
	res = do(t, eng, Request{
		Kind:     KindSimulate,
		Protocol: ProtocolRef{Spec: "succinct:2"},
		Input:    []int64{9},
		Seed:     3, ExactOracle: true,
	})
	if !res.Simulation.Converged {
		t.Error("exact-oracle simulation should converge")
	}
	res = do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "succinct:2"}})
	if !res.CacheHit {
		t.Error("stable request after exact-oracle simulate should hit the cache")
	}
}

func TestVerify(t *testing.T) {
	eng := New()
	ctx := context.Background()

	// Registry protocols default to their own predicate and bound.
	res := do(t, eng, Request{Kind: KindVerify, Protocol: ProtocolRef{Spec: "majority"}})
	v := res.Verification
	if v == nil || !v.AllOK || v.Inputs == 0 {
		t.Fatalf("majority verification failed: %+v", v)
	}

	// Inline protocols need an explicit predicate.
	_, err := eng.Do(ctx, Request{Kind: KindVerify, Protocol: ProtocolRef{Inline: inlineParity(t)}})
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("inline verify without predicate: want ErrBadRequest, got %v", err)
	}
	res = do(t, eng, Request{
		Kind:      KindVerify,
		Protocol:  ProtocolRef{Inline: inlineParity(t)},
		Predicate: &PredicateSpec{Kind: "mod", Modulus: 2, Residue: 1},
		MaxSize:   6,
	})
	if !res.Verification.AllOK {
		t.Errorf("parity vs x≡1 (mod 2) should verify: %s", res.Verification.Summary)
	}

	// A wrong predicate is reported, not an error.
	res = do(t, eng, Request{
		Kind:      KindVerify,
		Protocol:  ProtocolRef{Spec: "parity"},
		Predicate: &PredicateSpec{Kind: "counting", Threshold: 3},
		MaxSize:   5,
	})
	if res.Verification.AllOK || len(res.Verification.Failures) == 0 {
		t.Errorf("parity vs x≥3 should fail verification: %+v", res.Verification)
	}
}

func TestCertify(t *testing.T) {
	eng := New()
	res := do(t, eng, Request{Kind: KindCertifyLeaderless, Protocol: ProtocolRef{Spec: "flock:3"}, Seed: 1})
	c := res.Certificate
	if c == nil || c.Pipeline != "leaderless" || c.Leaderless == nil || c.A < 3 {
		t.Fatalf("bad leaderless certificate: %+v", c)
	}
	res = do(t, eng, Request{Kind: KindCertifyChain, Protocol: ProtocolRef{Spec: "leaderflock:3"}, Seed: 1})
	c = res.Certificate
	if c == nil || c.Pipeline != "chain" || c.Chain == nil || c.B < 1 {
		t.Fatalf("bad chain certificate: %+v", c)
	}
}

func TestSaturateAndBounds(t *testing.T) {
	eng := New()
	res := do(t, eng, Request{Kind: KindSaturate, Protocol: ProtocolRef{Spec: "flock:3"}})
	if res.Saturation == nil || res.Saturation.Stages < 1 || len(res.Saturation.Config) == 0 {
		t.Fatalf("bad saturation witness: %+v", res.Saturation)
	}

	// Bounds from a protocol.
	res = do(t, eng, Request{Kind: KindBounds, Protocol: ProtocolRef{Spec: "succinct:3"}})
	if res.Bounds == nil || res.Bounds.States != 5 || res.Bounds.Beta == "" {
		t.Fatalf("bad bounds: %+v", res.Bounds)
	}
	// Bounds protocol-free.
	res = do(t, eng, Request{Kind: KindBounds, States: 4})
	if res.Bounds.Transitions != 10 { // default n(n+1)/2
		t.Errorf("default transition count: got %d, want 10", res.Bounds.Transitions)
	}
	if res.Protocol != nil {
		t.Error("protocol-free bounds should carry no protocol info")
	}
}

func TestBadRequests(t *testing.T) {
	eng := New()
	ctx := context.Background()
	cases := map[string]Request{
		"unknown kind":     {Kind: "zzz", Protocol: ProtocolRef{Spec: "parity"}},
		"missing protocol": {Kind: KindSimulate, Input: []int64{4}},
		"both refs":        {Kind: KindStable, Protocol: ProtocolRef{Spec: "parity", Inline: inlineParity(t)}},
		"bad spec":         {Kind: KindStable, Protocol: ProtocolRef{Spec: "zzz"}},
		"bad inline":       {Kind: KindStable, Protocol: ProtocolRef{Inline: json.RawMessage(`{"states": 3}`)}},
		"arity mismatch":   {Kind: KindSimulate, Protocol: ProtocolRef{Spec: "majority"}, Input: []int64{4}},
		"negative input":   {Kind: KindSimulate, Protocol: ProtocolRef{Spec: "parity"}, Input: []int64{-3}},
		"one agent":        {Kind: KindSimulate, Protocol: ProtocolRef{Spec: "parity"}, Input: []int64{1}},
		"bad predicate":    {Kind: KindVerify, Protocol: ProtocolRef{Spec: "parity"}, Predicate: &PredicateSpec{Kind: "zzz"}},
		"bounds no states": {Kind: KindBounds},
		"size inversion":   {Kind: KindVerify, Protocol: ProtocolRef{Spec: "parity"}, MinSize: 9, MaxSize: 3},
	}
	for name, req := range cases {
		if _, err := eng.Do(ctx, req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: want ErrBadRequest, got %v", name, err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Do(ctx, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "parity"}}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: want context.Canceled, got %v", err)
	}

	// A request-level timeout interrupts a long-running analysis.
	start := time.Now()
	_, err := eng.Do(context.Background(), Request{
		Kind:          KindVerify,
		Protocol:      ProtocolRef{Spec: "binary:12"},
		MaxSize:       64,
		TimeoutMillis: 30,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout: want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout did not interrupt promptly: %v", elapsed)
	}
}

func TestUserRegisteredConstructor(t *testing.T) {
	reg := protocols.NewRegistry()
	if err := reg.Register("evens", func(args []string) (protocols.Entry, error) {
		return protocols.ModuloIn(2, 0), nil
	}); err != nil {
		t.Fatal(err)
	}
	eng := NewWithRegistry(reg)
	res := do(t, eng, Request{
		Kind:     KindSimulate,
		Protocol: ProtocolRef{Spec: "evens"},
		Input:    []int64{6},
		Seed:     1,
	})
	if !res.Simulation.Converged || res.Simulation.Output != 1 {
		t.Errorf("evens on 6 agents should output 1: %+v", res.Simulation)
	}
}

func TestConcurrentRequestsComputeArtifactOnce(t *testing.T) {
	eng := New()
	ctx := context.Background()
	const workers = 8
	errs := make(chan error, workers)
	for range workers {
		go func() {
			_, err := eng.Do(ctx, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:7"}})
			errs <- err
		}()
	}
	for range workers {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.Computations(); n != 1 {
		t.Errorf("concurrent identical requests ran %d computations, want 1", n)
	}
	hits, misses := eng.CacheStats()
	if hits+misses != workers || misses < 1 {
		t.Errorf("cache stats hits=%d misses=%d, want %d lookups with ≥1 miss", hits, misses, workers)
	}
}

func TestResultMarshalsToJSON(t *testing.T) {
	eng := New()
	for _, req := range []Request{
		{Kind: KindSimulate, Protocol: ProtocolRef{Spec: "flock:3"}, Input: []int64{6}, Seed: 1},
		{Kind: KindVerify, Protocol: ProtocolRef{Spec: "parity"}, MaxSize: 5},
		{Kind: KindStable, Protocol: ProtocolRef{Spec: "parity"}},
		{Kind: KindCertifyLeaderless, Protocol: ProtocolRef{Spec: "flock:3"}},
		{Kind: KindSaturate, Protocol: ProtocolRef{Spec: "parity"}},
		{Kind: KindBasis, Protocol: ProtocolRef{Spec: "parity"}},
		{Kind: KindBounds, States: 3},
	} {
		res := do(t, eng, req)
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: result does not marshal: %v", req.Kind, err)
		}
		if !strings.Contains(string(data), `"kind"`) {
			t.Errorf("%s: suspicious result JSON: %s", req.Kind, data)
		}
	}
}

// TestCacheEviction: the artifact cache stays bounded, and an evicted
// protocol recomputes on the next request.
func TestCacheEviction(t *testing.T) {
	eng := New()
	eng.SetCacheLimit(2)
	ctx := context.Background()
	for _, spec := range []string{"parity", "true", "false"} {
		if _, err := eng.Do(ctx, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: spec}}); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
	eng.mu.Lock()
	size := len(eng.cache)
	eng.mu.Unlock()
	if size > 2 {
		t.Errorf("cache holds %d entries, limit 2", size)
	}
	// At least one of the three protocols was evicted; re-running all
	// three recomputes the evicted ones (eviction picks arbitrary
	// entries, so a recompute may itself evict a protocol this loop
	// still revisits — hence a range, not an exact count).
	_, missesBefore := eng.CacheStats()
	for _, spec := range []string{"parity", "true", "false"} {
		if _, err := eng.Do(ctx, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: spec}}); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
	_, missesAfter := eng.CacheStats()
	if d := missesAfter - missesBefore; d < 1 || d > 3 {
		t.Errorf("re-running three specs after eviction recomputed %d, want 1..3", d)
	}
	eng.mu.Lock()
	size = len(eng.cache)
	eng.mu.Unlock()
	if size > 2 {
		t.Errorf("cache grew to %d entries after re-run, limit 2", size)
	}
}

// TestCertifyUsesArtifactCache: a second certify request for the same
// protocol reuses the memoized stable analysis and basis.
func TestCertifyUsesArtifactCache(t *testing.T) {
	eng := New()
	r1 := do(t, eng, Request{Kind: KindCertifyLeaderless, Protocol: ProtocolRef{Spec: "flock:3"}, Seed: 1})
	if r1.CacheHit {
		t.Error("first certify must be a cache miss")
	}
	computesAfterFirst := eng.Computations()
	r2 := do(t, eng, Request{Kind: KindCertifyLeaderless, Protocol: ProtocolRef{Spec: "flock:3"}, Seed: 2})
	if !r2.CacheHit {
		t.Error("second certify must hit the artifact cache")
	}
	if n := eng.Computations(); n != computesAfterFirst {
		t.Errorf("second certify recomputed artifacts (%d → %d)", computesAfterFirst, n)
	}
	if r2.Certificate == nil || r2.Certificate.A < 3 {
		t.Errorf("cached-path certificate invalid: %+v", r2.Certificate)
	}
}

// TestBoundsStatesCap: protocol-free bounds requests reject absurd state
// counts instead of grinding on astronomically large factorials.
func TestBoundsStatesCap(t *testing.T) {
	eng := New()
	if _, err := eng.Do(context.Background(), Request{Kind: KindBounds, States: 1_000_000}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bounds with 10^6 states: want ErrBadRequest, got %v", err)
	}
	if _, err := eng.Do(context.Background(), Request{Kind: KindBounds, States: 50}); err != nil {
		t.Errorf("bounds with 50 states should work: %v", err)
	}
}

// TestCover: the cover request reproduces experiment E11's measurements —
// shortest covering executions from IC(input), per output.
func TestCover(t *testing.T) {
	eng := New()
	res := do(t, eng, Request{Kind: KindCover, Protocol: ProtocolRef{Spec: "flock:4"}, Input: []int64{6}})
	if res.Cover == nil {
		t.Fatal("no cover payload")
	}
	// From IC(6), flock(4) can cover the output-1 state (6 ≥ 4) and any
	// output-0 state; both need at least one interaction.
	if res.Cover.MaxLen1 < 1 || res.Cover.MaxLen0 < 1 {
		t.Errorf("implausible cover lengths: %+v", res.Cover)
	}
	if _, err := eng.Do(context.Background(), Request{Kind: KindCover, Protocol: ProtocolRef{Spec: "flock:4"}, Input: []int64{6, 1}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("arity mismatch: want ErrBadRequest, got %v", err)
	}
}

// TestStableWorkersAndCounters: a stable result carries the fixpoint work
// counters, and a parallel-fixpoint engine produces a result identical to
// the sequential one (the parallel mode is bit-identical by construction).
func TestStableWorkersAndCounters(t *testing.T) {
	seqEng := New()
	seq := do(t, seqEng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:7"}})
	if seq.Stable.Iterations0 < 1 || seq.Stable.Iterations1 < 1 {
		t.Errorf("iterations must be positive: %+v", seq.Stable)
	}
	if seq.Stable.Frontier0 < seq.Stable.Basis0 || seq.Stable.Frontier1 < 1 {
		t.Errorf("frontier counters must cover at least the final bases: %+v", seq.Stable)
	}
	parEng := New()
	parEng.SetStableWorkers(3)
	par := do(t, parEng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:7"}})
	if !reflect.DeepEqual(seq.Stable, par.Stable) {
		t.Errorf("parallel stable result differs from sequential:\n seq %+v\n par %+v", seq.Stable, par.Stable)
	}
}
