package engine

import (
	"context"
	"errors"

	"repro/internal/metrics"
)

// Request statuses recorded by the pp_engine_requests_total counter.
const (
	statusOK          = "ok"
	statusBadRequest  = "bad_request"
	statusInterrupted = "interrupted"
	statusError       = "error"
)

// Metrics is the engine's exported instrumentation: per-kind request
// counters and latency histograms, artifact-cache traffic, and the
// execution-slot semaphore's instantaneous state. Every engine owns one
// (the instruments are cheap atomics whether or not anything scrapes
// them); transports register it into their metrics.Registry to expose it.
type Metrics struct {
	// Requests counts finished requests by kind and status (ok,
	// bad_request, interrupted, error).
	Requests *metrics.CounterVec
	// Latency is the per-kind request-duration histogram, in seconds.
	Latency *metrics.HistogramVec
	// CacheHits / CacheMisses count artifact-cache lookups (a request
	// waiting on another request's in-flight computation counts as a
	// miss, exactly like Engine.CacheStats). CacheEvictions counts
	// artifact slots dropped — capacity evictions and interrupted
	// computations alike.
	CacheHits      *metrics.Counter
	CacheMisses    *metrics.Counter
	CacheEvictions *metrics.Counter
	// Interrupted counts analyses abandoned mid-flight by cancellation or
	// deadline — work that burned CPU without producing a result.
	Interrupted *metrics.Counter
	// IncrementalAttempts counts family-declared artifact computations by
	// how they ran: warm_stable / warm_basis (a neighbor seeded the delta
	// path), cold_stable / cold_basis (no usable neighbor), disabled
	// (SetIncremental(false)). A family sweep that shows only cold attempts
	// has a scheduling problem, not a math one.
	IncrementalAttempts *metrics.CounterVec
	// IncrementalSeeds counts neighbor elements by what the delta path did
	// with them: imported (carried over), certified (validated against the
	// new protocol), dropped (stale under the new parameter).
	IncrementalSeeds *metrics.CounterVec
	// SlotsBusy / SlotsCapacity / SlotQueue read the execution-slot
	// semaphore at scrape time (Engine.SlotStats): burning analyses,
	// total capacity, and the queue of requests waiting for a slot.
	SlotsBusy     *metrics.GaugeFunc
	SlotsCapacity *metrics.GaugeFunc
	SlotQueue     *metrics.GaugeFunc
}

func newEngineMetrics(e *Engine) *Metrics {
	sub := func(name, help string) metrics.Opts {
		return metrics.Opts{Namespace: "pp", Subsystem: "engine", Name: name, Help: help}
	}
	return &Metrics{
		Requests: metrics.NewCounterVec(
			sub("requests_total", "Analysis requests finished, by kind and status."),
			[]string{"kind", "status"}),
		Latency: metrics.NewHistogramVec(
			sub("request_duration_seconds", "Analysis request latency by kind."),
			nil, []string{"kind"}),
		CacheHits: metrics.NewCounter(
			sub("cache_hits_total", "Artifact-cache lookups served from a completed artifact.")),
		CacheMisses: metrics.NewCounter(
			sub("cache_misses_total", "Artifact-cache lookups that computed or waited on an in-flight artifact.")),
		CacheEvictions: metrics.NewCounter(
			sub("cache_evictions_total", "Artifact slots evicted (capacity pressure or interrupted computations).")),
		Interrupted: metrics.NewCounter(
			sub("interrupted_total", "Analyses abandoned mid-flight by cancellation or deadline.")),
		IncrementalAttempts: metrics.NewCounterVec(
			sub("incremental_attempts_total", "Family-declared artifact computations by mode (warm/cold/disabled)."),
			[]string{"mode"}),
		IncrementalSeeds: metrics.NewCounterVec(
			sub("incremental_seed_elements_total", "Neighbor basis elements by delta-path outcome (imported/certified/dropped)."),
			[]string{"outcome"}),
		SlotsBusy: metrics.NewGaugeFunc(
			sub("slots_busy", "Execution slots currently burning CPU."),
			func() float64 { busy, _, _ := e.SlotStats(); return float64(busy) }),
		SlotsCapacity: metrics.NewGaugeFunc(
			sub("slots_capacity", "Execution-slot semaphore capacity."),
			func() float64 { _, capacity, _ := e.SlotStats(); return float64(capacity) }),
		SlotQueue: metrics.NewGaugeFunc(
			sub("slot_queue_depth", "Requests queued waiting for an execution slot."),
			func() float64 { _, _, queued := e.SlotStats(); return float64(queued) }),
	}
}

// Metrics returns the engine's instrumentation.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Collectors returns every collector of the set, for registration.
func (m *Metrics) Collectors() []metrics.Collector {
	return []metrics.Collector{
		m.Requests, m.Latency,
		m.CacheHits, m.CacheMisses, m.CacheEvictions, m.Interrupted,
		m.IncrementalAttempts, m.IncrementalSeeds,
		m.SlotsBusy, m.SlotsCapacity, m.SlotQueue,
	}
}

// Register registers the whole set into reg. Register each engine into a
// given registry at most once — family names collide otherwise.
func (m *Metrics) Register(reg *metrics.Registry) {
	reg.MustRegister(m.Collectors()...)
}

// requestStatus classifies a finished request for the status label.
func requestStatus(err error) string {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrBadRequest):
		return statusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return statusInterrupted
	default:
		return statusError
	}
}
