package engine

import (
	"repro/internal/pump"
	"repro/internal/realise"
)

// ProtocolInfo summarises the resolved protocol of a request.
type ProtocolInfo struct {
	Name        string `json:"name"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Inputs      int    `json:"inputs"`
	Leaderless  bool   `json:"leaderless"`
	// Hash is the content hash of the protocol's canonical JSON form; it
	// keys the engine's artifact cache.
	Hash string `json:"hash"`
	// Predicate renders the predicate the protocol is known to compute
	// (registry protocols only).
	Predicate string `json:"predicate,omitempty"`
}

// TracePoint is one formatted simulation snapshot.
type TracePoint struct {
	Interactions int64  `json:"interactions"`
	Config       string `json:"config"`
}

// EstimateResult aggregates convergence statistics over repeated runs.
type EstimateResult struct {
	Runs           int     `json:"runs"`
	Converged      int     `json:"converged"`
	Output         int     `json:"output"`
	MeanParallel   float64 `json:"meanParallel"`
	MedianParallel float64 `json:"medianParallel"`
	P95Parallel    float64 `json:"p95Parallel"`
	MaxParallel    float64 `json:"maxParallel"`
	// TotalInteractions counts interactions across all runs (converged or
	// not); with the result's ElapsedMillis it yields the executor's
	// interactions/sec throughput.
	TotalInteractions int64 `json:"totalInteractions,omitempty"`
	// MeanInteractions is the mean convergence interaction count over the
	// converged runs (0 if none converged).
	MeanInteractions float64 `json:"meanInteractions,omitempty"`
}

// SimulationResult reports a simulate request.
type SimulationResult struct {
	Converged      bool         `json:"converged"`
	Output         int          `json:"output"`
	Interactions   int64        `json:"interactions"`
	ParallelTime   float64      `json:"parallelTime"`
	ConsensusAt    int64        `json:"consensusAt"`
	Final          []int64      `json:"final,omitempty"`
	FinalFormatted string       `json:"finalFormatted,omitempty"`
	Trace          []TracePoint `json:"trace,omitempty"`
	// Estimate is set instead of the single-run fields when Runs > 1.
	Estimate *EstimateResult `json:"estimate,omitempty"`
}

// VerifyFailure is one failing input of a verify request.
type VerifyFailure struct {
	Input []int64 `json:"input"`
	Want  bool    `json:"want"`
	Got   int     `json:"got"`
}

// VerifyResult reports a verify request.
type VerifyResult struct {
	Predicate    string          `json:"predicate"`
	Inputs       int             `json:"inputs"`
	AllOK        bool            `json:"allOK"`
	Failures     []VerifyFailure `json:"failures,omitempty"`
	TotalConfigs int             `json:"totalConfigs"`
	Summary      string          `json:"summary"`
}

// StableResult reports a stable request: the sizes of the computed ideal
// bases and the measured norm (the empirical counterpart of Lemma 3.2's β).
// Iterations counts the backward-coverability fixpoint rounds per output
// and Frontier the total frontier elements those rounds expanded — the
// work measure of the frontier-driven core.
type StableResult struct {
	Basis0      int   `json:"basis0"`
	Basis1      int   `json:"basis1"`
	SCBasis     int   `json:"scBasis"`
	Iterations0 int   `json:"iterations0"`
	Iterations1 int   `json:"iterations1"`
	Frontier0   int   `json:"frontier0"`
	Frontier1   int   `json:"frontier1"`
	Norm        int64 `json:"norm"`
}

// CertificateResult reports a certify-chain or certify-leaderless request.
// The certificate was independently re-checked before being returned.
type CertificateResult struct {
	Pipeline string `json:"pipeline"`
	// A and B state the conclusion: if the protocol computes x ≥ η, then
	// η ≤ A, pumped in steps of B.
	A          int64                       `json:"a"`
	B          int64                       `json:"b"`
	Chain      *pump.ChainCertificate      `json:"chain,omitempty"`
	Leaderless *pump.LeaderlessCertificate `json:"leaderless,omitempty"`
}

// SaturationResult reports a saturate request (the Lemma 5.4 witness).
type SaturationResult struct {
	Stages      int     `json:"stages"`
	Input       int64   `json:"input"`
	SequenceLen int     `json:"sequenceLen"`
	Config      []int64 `json:"config"`
}

// BasisResult reports a basis request.
type BasisResult struct {
	Size  int                          `json:"size"`
	Basis []realise.TransitionMultiset `json:"basis"`
}

// BoundsResult reports a bounds request. Values are rendered strings
// because the constants overflow any machine integer (β(4) already has
// more than 10^8 decimal digits; the library computes them exactly).
type BoundsResult struct {
	States              int64  `json:"states"`
	Transitions         int64  `json:"transitions"`
	Beta                string `json:"beta"`
	Theta               string `json:"theta"`
	Xi                  string `json:"xi"`
	XiDeterministic     string `json:"xiDeterministic"`
	Theorem59           string `json:"theorem59"`
	Theorem59Simplified string `json:"theorem59Simplified"`
	BBLowerLeaderless   string `json:"bbLowerLeaderless"`
	BBLLowerWithLeaders string `json:"bblLowerWithLeaders"`
}

// CoverResult reports a cover request: over all states q with the given
// output coverable from the initial configuration of Input, the largest
// shortest-covering-execution length (exact BFS). Lemma 3.2 bounds these
// lengths by β(n); the measured values quantify the slack.
type CoverResult struct {
	Input []int64 `json:"input"`
	// MaxLen1 and MaxLen0 are the largest shortest-cover lengths to a state
	// with output 1 and 0 respectively (0 if no such state is coverable).
	MaxLen1 int `json:"maxLen1"`
	MaxLen0 int `json:"maxLen0"`
}

// IncrementalInfo is the provenance of a warm-started artifact
// computation: which family neighbor seeded it and what the delta path did
// with the neighbor's elements. It is recorded only by the request that
// actually computed the artifact — cache hits and waiters report nothing,
// because they did no incremental work.
type IncrementalInfo struct {
	// Family and Param identify the requested member.
	Family string `json:"family"`
	Param  int64  `json:"param"`
	// SeedParam and SeedHash identify the neighbor whose artifact seeded the
	// computation.
	SeedParam int64  `json:"seedParam"`
	SeedHash  string `json:"seedHash"`
	// Mode is "warm-stable" or "warm-basis".
	Mode string `json:"mode"`
	// Imported, Certified and Dropped count neighbor elements carried into
	// the delta path, validated against the new protocol, and discarded as
	// stale, respectively.
	Imported  int `json:"imported"`
	Certified int `json:"certified"`
	Dropped   int `json:"dropped"`
}

// Result is the typed answer to a Request. Exactly one payload field
// (matching the request kind) is non-nil.
type Result struct {
	Kind     Kind          `json:"kind"`
	Protocol *ProtocolInfo `json:"protocol,omitempty"`
	// ElapsedMillis is the engine-side wall-clock time.
	ElapsedMillis float64 `json:"elapsedMillis"`
	// CacheHit reports whether the request was served from memoized
	// per-protocol artifacts.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Incremental, when set, records that an artifact this request computed
	// was warm-started from a family neighbor (Request.Family).
	Incremental *IncrementalInfo `json:"incremental,omitempty"`

	Simulation   *SimulationResult  `json:"simulation,omitempty"`
	Verification *VerifyResult      `json:"verification,omitempty"`
	Stable       *StableResult      `json:"stable,omitempty"`
	Certificate  *CertificateResult `json:"certificate,omitempty"`
	Saturation   *SaturationResult  `json:"saturation,omitempty"`
	Basis        *BasisResult       `json:"basis,omitempty"`
	Bounds       *BoundsResult      `json:"bounds,omitempty"`
	Cover        *CoverResult       `json:"cover,omitempty"`
}
