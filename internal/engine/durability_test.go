package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics/testutil"
	"repro/internal/store"
)

// TestLRUHitSurvivesEviction pins the LRU contract: an entry hit just
// before an eviction cycle outlives it, and the cold entry goes instead.
func TestLRUHitSurvivesEviction(t *testing.T) {
	eng := New()
	eng.SetCacheLimit(2)
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	// Touch binary:4 so binary:5 is now the least recently used …
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	// … and let a third protocol force one eviction.
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:6"}})

	_, missesBefore := eng.CacheStats()
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	if _, misses := eng.CacheStats(); misses != missesBefore {
		t.Fatal("just-hit entry was evicted: repeat request missed the cache")
	}
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if _, misses := eng.CacheStats(); misses != missesBefore+1 {
		t.Fatal("least recently used entry was not the one evicted")
	}
}

// TestDiskStoreWarmRestart pins the acceptance criterion: a restarted
// engine (fresh memory cache, same artifact directory) serves its first
// repeated-protocol request from the disk store — no recomputation, and
// the result is bit-identical to the computed one.
func TestDiskStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *Engine {
		eng := New()
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetArtifactStore(s)
		return eng
	}

	first := open()
	resStable := do(t, first, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	resBasis := do(t, first, Request{Kind: KindBasis, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := first.Computations(); got != 2 {
		t.Fatalf("cold engine ran %d computations, want 2", got)
	}

	second := open()
	res2 := do(t, second, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	if got := second.Computations(); got != 0 {
		t.Fatalf("restarted engine recomputed (%d computations) despite disk store", got)
	}
	if !reflect.DeepEqual(res2.Stable, resStable.Stable) {
		t.Fatalf("disk-restored stable result differs:\n%+v\nvs\n%+v", res2.Stable, resStable.Stable)
	}
	res3 := do(t, second, Request{Kind: KindBasis, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := second.Computations(); got != 0 {
		t.Fatalf("restarted engine recomputed the basis (%d computations)", got)
	}
	if !reflect.DeepEqual(res3.Basis, resBasis.Basis) {
		t.Fatal("disk-restored basis differs from the computed one")
	}
	hits := testutil.ToFloat64(second.ArtifactStore().Metrics().Reads.WithLabelValues("hit"))
	if hits != 2 {
		t.Fatalf("pp_store_reads_total{result=hit} = %v, want 2", hits)
	}
}

// TestCorruptDiskEntryRecomputed pins corruption tolerance end to end: a
// flipped bit on disk must surface as a recomputation, never a wrong
// result, and the store heals.
func TestCorruptDiskEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(s)
	want := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})

	hash := want.Protocol.Hash
	p := filepath.Join(dir, ArtifactStable, hash)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := New()
	fresh.SetArtifactStore(s)
	got := do(t, fresh, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if fresh.Computations() != 1 {
		t.Fatal("corrupt entry was trusted instead of recomputed")
	}
	if !reflect.DeepEqual(got.Stable, want.Stable) {
		t.Fatal("recomputed result differs")
	}
	// The recompute healed the store: one more restart is warm again.
	third := New()
	third.SetArtifactStore(s)
	do(t, third, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if third.Computations() != 0 {
		t.Fatal("store did not heal after corruption recompute")
	}
}

// TestPeerFetchFallback pins the peer-fetch path: disk miss → peer hit →
// local write-through, and peer errors degrade to recomputation.
func TestPeerFetchFallback(t *testing.T) {
	source := New()
	sdir := t.TempDir()
	ss, err := store.Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	source.SetArtifactStore(ss)
	want := do(t, source, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})

	fetches := 0
	peer := func(ctx context.Context, kind, hash string) ([]byte, error) {
		fetches++
		payload, ok, err := source.ArtifactBytes(ctx, kind, hash)
		if err != nil || !ok {
			return nil, err
		}
		return payload, nil
	}

	eng := New()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(s)
	eng.SetPeerFetch(peer)
	got := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	if fetches != 1 {
		t.Fatalf("peer fetched %d times, want 1", fetches)
	}
	if eng.Computations() != 0 {
		t.Fatal("peer hit did not prevent recomputation")
	}
	if !reflect.DeepEqual(got.Stable, want.Stable) {
		t.Fatal("peer-fetched result differs")
	}
	if v := testutil.ToFloat64(s.Metrics().PeerFetches.WithLabelValues("hit")); v != 1 {
		t.Fatalf("pp_store_peer_fetches_total{result=hit} = %v, want 1", v)
	}
	// Write-through: the same engine restarted is warm without the peer.
	again := New()
	s2, err := store.Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	again.SetArtifactStore(s2)
	again.SetPeerFetch(func(context.Context, string, string) ([]byte, error) {
		return nil, errors.New("peer down")
	})
	do(t, again, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	if again.Computations() != 0 {
		t.Fatal("peer hit was not written through to the local store")
	}
}

// TestPeerErrorDegradesToRecompute: a failing peer never blocks a result.
func TestPeerErrorDegradesToRecompute(t *testing.T) {
	eng := New()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(s)
	eng.SetPeerFetch(func(context.Context, string, string) ([]byte, error) {
		return nil, errors.New("peer down")
	})
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if eng.Computations() != 1 {
		t.Fatal("peer error should fall back to computing")
	}
	if v := testutil.ToFloat64(s.Metrics().PeerFetches.WithLabelValues("error")); v != 1 {
		t.Fatalf("peer_fetches{error} = %v, want 1", v)
	}
}
