package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics/testutil"
	"repro/internal/store"
)

// TestLRUHitSurvivesEviction pins the LRU contract: an entry hit just
// before an eviction cycle outlives it, and the cold entry goes instead.
func TestLRUHitSurvivesEviction(t *testing.T) {
	eng := New()
	eng.SetCacheLimit(2)
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	// Touch binary:4 so binary:5 is now the least recently used …
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	// … and let a third protocol force one eviction.
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:6"}})

	_, missesBefore := eng.CacheStats()
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	if _, misses := eng.CacheStats(); misses != missesBefore {
		t.Fatal("just-hit entry was evicted: repeat request missed the cache")
	}
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if _, misses := eng.CacheStats(); misses != missesBefore+1 {
		t.Fatal("least recently used entry was not the one evicted")
	}
}

// TestDiskStoreWarmRestart pins the acceptance criterion: a restarted
// engine (fresh memory cache, same artifact directory) serves its first
// repeated-protocol request from the disk store — no recomputation, and
// the result is bit-identical to the computed one.
func TestDiskStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *Engine {
		eng := New()
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetArtifactStore(s)
		return eng
	}

	first := open()
	resStable := do(t, first, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	resBasis := do(t, first, Request{Kind: KindBasis, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := first.Computations(); got != 2 {
		t.Fatalf("cold engine ran %d computations, want 2", got)
	}

	second := open()
	res2 := do(t, second, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	if got := second.Computations(); got != 0 {
		t.Fatalf("restarted engine recomputed (%d computations) despite disk store", got)
	}
	if !reflect.DeepEqual(res2.Stable, resStable.Stable) {
		t.Fatalf("disk-restored stable result differs:\n%+v\nvs\n%+v", res2.Stable, resStable.Stable)
	}
	res3 := do(t, second, Request{Kind: KindBasis, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := second.Computations(); got != 0 {
		t.Fatalf("restarted engine recomputed the basis (%d computations)", got)
	}
	if !reflect.DeepEqual(res3.Basis, resBasis.Basis) {
		t.Fatal("disk-restored basis differs from the computed one")
	}
	hits := testutil.ToFloat64(second.ArtifactStore().Metrics().Reads.WithLabelValues("hit"))
	if hits != 2 {
		t.Fatalf("pp_store_reads_total{result=hit} = %v, want 2", hits)
	}
}

// TestCorruptDiskEntryRecomputed pins corruption tolerance end to end: a
// flipped bit on disk must surface as a recomputation, never a wrong
// result, and the store heals.
func TestCorruptDiskEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(s)
	want := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})

	hash := want.Protocol.Hash
	p := filepath.Join(dir, ArtifactStable, hash)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := New()
	fresh.SetArtifactStore(s)
	got := do(t, fresh, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if fresh.Computations() != 1 {
		t.Fatal("corrupt entry was trusted instead of recomputed")
	}
	if !reflect.DeepEqual(got.Stable, want.Stable) {
		t.Fatal("recomputed result differs")
	}
	// The recompute healed the store: one more restart is warm again.
	third := New()
	third.SetArtifactStore(s)
	do(t, third, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if third.Computations() != 0 {
		t.Fatal("store did not heal after corruption recompute")
	}
}

// TestPeerFetchFallback pins the peer-fetch path: disk miss → peer hit →
// local write-through, and peer errors degrade to recomputation.
func TestPeerFetchFallback(t *testing.T) {
	source := New()
	sdir := t.TempDir()
	ss, err := store.Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	source.SetArtifactStore(ss)
	want := do(t, source, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})

	fetches := 0
	peer := func(ctx context.Context, kind, hash string) ([]byte, error) {
		fetches++
		payload, ok, err := source.ArtifactBytes(ctx, kind, hash)
		if err != nil || !ok {
			return nil, err
		}
		return payload, nil
	}

	eng := New()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(s)
	eng.SetPeerFetch(peer)
	got := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	if fetches != 1 {
		t.Fatalf("peer fetched %d times, want 1", fetches)
	}
	if eng.Computations() != 0 {
		t.Fatal("peer hit did not prevent recomputation")
	}
	if !reflect.DeepEqual(got.Stable, want.Stable) {
		t.Fatal("peer-fetched result differs")
	}
	if v := testutil.ToFloat64(s.Metrics().PeerFetches.WithLabelValues("hit")); v != 1 {
		t.Fatalf("pp_store_peer_fetches_total{result=hit} = %v, want 1", v)
	}
	// Write-through: the same engine restarted is warm without the peer.
	again := New()
	s2, err := store.Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	again.SetArtifactStore(s2)
	again.SetPeerFetch(func(context.Context, string, string) ([]byte, error) {
		return nil, errors.New("peer down")
	})
	do(t, again, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "majority"}})
	if again.Computations() != 0 {
		t.Fatal("peer hit was not written through to the local store")
	}
}

// TestPeerErrorDegradesToRecompute: a failing peer never blocks a result.
func TestPeerErrorDegradesToRecompute(t *testing.T) {
	eng := New()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(s)
	eng.SetPeerFetch(func(context.Context, string, string) ([]byte, error) {
		return nil, errors.New("peer down")
	})
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if eng.Computations() != 1 {
		t.Fatal("peer error should fall back to computing")
	}
	if v := testutil.ToFloat64(s.Metrics().PeerFetches.WithLabelValues("error")); v != 1 {
		t.Fatalf("peer_fetches{error} = %v, want 1", v)
	}
}

// TestStoreGCRacingPeerFetch is the pressure drill for size governance: a
// worker warming its disk store from a coordinator peer while the GC —
// budgeted below the working set, with deletes failing on a faultinject
// schedule — evicts the same hashes concurrently. Every analysis must
// come back correct (refetched or recomputed), and no read may ever
// surface a torn artifact: eviction unlinks whole files, so a racing Get
// sees either the full old bytes or a clean miss.
func TestStoreGCRacingPeerFetch(t *testing.T) {
	if err := faultinject.Configure(faultinject.PointStoreDelete + "=every:4"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	source := New()
	ss, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	source.SetArtifactStore(ss)
	protos := []string{"majority", "binary:5", "flock:4", "flock:5", "flock:6"}
	want := make(map[string]*Result, len(protos))
	var workingSet int64
	for _, p := range protos {
		want[p] = do(t, source, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: p}})
	}
	if err := filepath.Walk(ss.Dir(), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			workingSet += info.Size()
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}

	ws, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Budget below the working set: warming all five protocols must force
	// evictions, and the 1ms pass interval keeps the GC racing every fetch.
	if err := ws.EnableGC(store.GCOptions{MaxBytes: workingSet / 2, LowWater: 0.5, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer ws.CloseGC()

	peerDown := false
	peer := func(ctx context.Context, kind, hash string) ([]byte, error) {
		if peerDown {
			return nil, nil
		}
		payload, ok, err := source.ArtifactBytes(ctx, kind, hash)
		if err != nil || !ok {
			return nil, err
		}
		return payload, nil
	}

	for round := 0; round < 6; round++ {
		// Halfway in, the coordinator goes away: evicted artifacts must now
		// be recomputed rather than refetched — still never served torn.
		peerDown = round >= 3
		eng := New() // fresh memory cache: every artifact rides the disk/peer path
		eng.SetArtifactStore(ws)
		eng.SetPeerFetch(peer)
		for _, p := range protos {
			got := do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: p}})
			if !reflect.DeepEqual(got.Stable, want[p].Stable) {
				t.Fatalf("round %d: %s diverged under GC pressure", round, p)
			}
		}
	}
	// The final round recomputed and wrote through every artifact, so the
	// store ends over budget whether or not the background ticker got a
	// pass in during the rounds (fast artifact decodes can finish the whole
	// drill inside one interval): one synchronous pass makes the eviction
	// assertion deterministic.
	ws.RunGC()
	if v := testutil.ToFloat64(ws.Metrics().GCEvictions); v == 0 {
		t.Fatal("budget below working set but the GC evicted nothing")
	}
	if v := testutil.ToFloat64(ws.Metrics().Reads.WithLabelValues("corrupt")); v != 0 {
		t.Fatalf("eviction churn surfaced %v torn reads, want 0", v)
	}
}
