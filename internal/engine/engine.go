// Package engine is the unified analysis engine behind the public pp API:
// one typed Request/Result model covering simulation, exact verification,
// stable-set analysis, pumping certificates, saturation, realisable bases,
// and the paper's bounds.
//
// An Engine resolves protocols through a protocols.Registry (compact spec
// strings, inline JSON, user-registered constructors) and memoizes the
// expensive per-protocol artifacts — stable-set analyses and realisable
// bases — behind a content-hash cache, so repeated requests against the
// same protocol are near-free. All methods are safe for concurrent use;
// concurrent requests for the same artifact compute it exactly once.
package engine

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounds"
	"repro/internal/dioph"
	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/pump"
	"repro/internal/reach"
	"repro/internal/realise"
	"repro/internal/saturate"
	"repro/internal/sim"
	"repro/internal/stable"
	"repro/internal/store"
)

// ErrBadRequest wraps every request-validation failure, so transports can
// map it to a client error (HTTP 400) rather than a server one.
var ErrBadRequest = errors.New("engine: bad request")

// defaultMaxCachedProtocols bounds the artifact cache: a long-running
// server fed adversarially varied inline protocols must not grow its heap
// without limit.
const defaultMaxCachedProtocols = 256

// Engine executes analysis requests. The zero value is not usable; create
// engines with New or NewWithRegistry.
type Engine struct {
	reg *protocols.Registry
	// sem bounds concurrently executing analyses: every CPU-heavy section
	// holds a slot (see acquire) for exactly as long as it computes, so
	// abandoned or duplicate requests cannot pin more than cap(sem) cores
	// and idle waiting never occupies capacity.
	sem chan struct{}

	// waiting counts goroutines blocked in acquire — the queue behind the
	// slot semaphore. Transports use it (via SlotStats) for admission
	// control: shedding new work when the queue is deep beats queueing
	// unboundedly.
	waiting atomic.Int64

	mu       sync.Mutex
	cache    map[string]*artifacts
	lru      *list.List // hashes, most recently used at the front
	maxCache int
	hits     uint64
	misses   uint64
	computes uint64
	// stableWorkers shards each stable-analysis fixpoint round across this
	// many goroutines (0/1 = sequential; the result is bit-identical either
	// way, so cached artifacts are oblivious to the setting).
	stableWorkers int

	// artstore, when set, is the disk layer under the in-memory cache:
	// misses try it before recomputing, computed artifacts write through.
	// peerFetch, when set, is consulted after a disk miss (cluster mode).
	// See artifactio.go.
	artstore  *store.Store
	peerFetch PeerFetchFunc

	// families indexes registered family members (template → param → hash)
	// for the incremental warm paths; incrementalOff disables those paths
	// (SetIncremental). See family.go.
	families       map[string]*familyState
	incrementalOff bool

	// metrics instruments the request path and artifact cache; see
	// metrics.go. Always non-nil.
	metrics *Metrics
}

// memo is a once-per-engine artifact computation: the first arrival flips
// started and computes; everyone else waits on ready without holding an
// execution slot. Completion state lets lookups distinguish a true cache
// hit (complete on arrival) from waiting on an in-flight computation.
type memo[T any] struct {
	started atomic.Bool
	ready   chan struct{}
	val     T
	err     error
}

// completed reports whether the computation has finished.
func (m *memo[T]) completed() bool {
	select {
	case <-m.ready:
		return true
	default:
		return false
	}
}

// artifacts holds the memoized per-protocol computations, keyed by the
// protocol's content hash.
type artifacts struct {
	stable memo[*stable.Analysis]
	basis  memo[[]realise.TransitionMultiset]
	// elem is this entry's node in the engine's LRU list (value: the
	// protocol hash), maintained under e.mu.
	elem *list.Element
}

// New returns an engine resolving protocols through the process-wide
// default registry.
func New() *Engine { return NewWithRegistry(protocols.DefaultRegistry()) }

// NewWithRegistry returns an engine with its own protocol registry.
func NewWithRegistry(reg *protocols.Registry) *Engine {
	if reg == nil {
		reg = protocols.DefaultRegistry()
	}
	e := &Engine{
		reg:      reg,
		sem:      make(chan struct{}, max(2, runtime.NumCPU())),
		cache:    make(map[string]*artifacts),
		lru:      list.New(),
		maxCache: defaultMaxCachedProtocols,
	}
	e.metrics = newEngineMetrics(e)
	return e
}

// SetCacheLimit bounds the number of protocols with cached artifacts
// (default 256). When full, the least recently used entry is evicted;
// in-flight users of an evicted entry are unaffected.
func (e *Engine) SetCacheLimit(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.maxCache = n
	e.mu.Unlock()
}

// SetStableWorkers sets the per-analysis worker count of the backward-
// coverability fixpoint (0 or 1 = sequential). Parallel analyses are
// bit-identical to sequential ones — same final antichains, same element
// order — so the setting only trades CPU for latency and never changes a
// cached artifact.
func (e *Engine) SetStableWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	e.stableWorkers = n
	e.mu.Unlock()
}

func (e *Engine) stableWorkerCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stableWorkers
}

// Registry returns the registry the engine resolves specs against.
func (e *Engine) Registry() *protocols.Registry { return e.reg }

// CacheStats reports how many artifact lookups hit and missed the
// content-hash cache. A hit means the artifact was complete when the
// request arrived; a request that waits on an in-flight computation counts
// as a miss.
func (e *Engine) CacheStats() (hits, misses uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses
}

// Computations reports how many artifact computations actually ran —
// concurrent identical requests share one.
func (e *Engine) Computations() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.computes
}

func (e *Engine) countCompute() {
	e.mu.Lock()
	e.computes++
	e.mu.Unlock()
}

// acquire claims an execution slot, or gives up when ctx ends first. Hold
// slots only while burning CPU — never while waiting.
func (e *Engine) acquire(ctx context.Context) (release func(), err error) {
	e.waiting.Add(1)
	defer e.waiting.Add(-1)
	// The release closure captures the semaphore it acquired from, so a
	// later SetSlots cannot misroute an in-flight release.
	e.mu.Lock()
	sem := e.sem
	e.mu.Unlock()
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SetSlots resizes the execution-slot semaphore (minimum 1). Call it before
// serving traffic: requests already waiting on the old semaphore keep its
// capacity until they drain.
func (e *Engine) SetSlots(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	e.sem = make(chan struct{}, n)
	e.mu.Unlock()
}

// SlotStats reports the execution-slot semaphore's instantaneous state:
// busy slots, total capacity, and the number of goroutines queued behind
// it. Transports use it for load shedding — when busy == capacity and
// queued is deep, failing fast with Retry-After beats queueing unboundedly.
func (e *Engine) SlotStats() (busy, capacity, queued int) {
	e.mu.Lock()
	sem := e.sem
	e.mu.Unlock()
	return len(sem), cap(sem), int(e.waiting.Load())
}

// Resolve materialises a protocol reference: a registry spec, or an inline
// JSON protocol. Inline protocols carry no predicate.
func (e *Engine) Resolve(ref ProtocolRef) (protocols.Entry, error) {
	switch {
	case ref.Spec != "" && len(ref.Inline) > 0:
		return protocols.Entry{}, fmt.Errorf("%w: protocol ref has both spec and inline", ErrBadRequest)
	case ref.Spec != "":
		entry, err := e.reg.Resolve(ref.Spec)
		if err != nil {
			return protocols.Entry{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return entry, nil
	case len(ref.Inline) > 0:
		p, err := protocol.Parse(ref.Inline)
		if err != nil {
			return protocols.Entry{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return protocols.Entry{Protocol: p}, nil
	default:
		return protocols.Entry{}, fmt.Errorf("%w: missing protocol (set spec or inline)", ErrBadRequest)
	}
}

// Hash returns the content hash of a protocol: SHA-256 over its canonical
// JSON form. Two protocols with equal specs hash equally however they were
// referenced (registry spec or inline JSON).
func Hash(p *protocol.Protocol) (string, error) {
	data, err := p.MarshalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Do executes one request. The context carries cancellation and deadlines;
// Request.TimeoutMillis, when set, tightens it further. On timeout the
// returned error wraps context.DeadlineExceeded.
func (e *Engine) Do(ctx context.Context, req Request) (*Result, error) {
	kind := string(req.Kind)
	if !req.Kind.Valid() {
		kind = "invalid"
	}
	start := time.Now()
	res, err := e.do(ctx, req)
	status := requestStatus(err)
	e.metrics.Requests.WithLabelValues(kind, status).Inc()
	e.metrics.Latency.WithLabelValues(kind).Observe(time.Since(start).Seconds())
	if status == statusInterrupted {
		e.metrics.Interrupted.Inc()
	}
	return res, err
}

func (e *Engine) do(ctx context.Context, req Request) (*Result, error) {
	if !req.Kind.Valid() {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, req.Kind)
	}
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	res := &Result{Kind: req.Kind}

	// Bounds requests may run protocol-free, from explicit state counts.
	var (
		entry protocols.Entry
		hash  string
	)
	if err := validateFamily(req); err != nil {
		return nil, err
	}
	if !req.Protocol.IsZero() || req.Kind != KindBounds {
		var err error
		entry, err = e.Resolve(req.Protocol)
		if err != nil {
			return nil, err
		}
		hash, err = Hash(entry.Protocol)
		if err != nil {
			return nil, err
		}
		if req.Family != "" {
			e.registerFamilyMember(req.Family, req.FamilyParam, hash)
		}
		info := &ProtocolInfo{
			Name:        entry.Protocol.Name(),
			States:      entry.Protocol.NumStates(),
			Transitions: entry.Protocol.NumTransitions(),
			Inputs:      entry.Protocol.NumInputs(),
			Leaderless:  entry.Protocol.Leaderless(),
			Hash:        hash,
		}
		if entry.Pred != nil {
			info.Predicate = entry.Pred.String()
		}
		res.Protocol = info
	}

	// Run the dispatch in a goroutine so a context deadline interrupts the
	// caller even while a long analysis is still burning CPU. The channel
	// is buffered: an abandoned analysis finishes and is dropped. The
	// heavy sections inside dispatch each hold an execution slot
	// (e.acquire), keeping total burning CPU bounded by the core count;
	// waiting — on a slot or on another request's in-flight artifact —
	// holds nothing.
	type outcome struct{ err error }
	done := make(chan outcome, 1)
	go func() {
		done <- outcome{err: e.dispatch(ctx, req, entry, hash, res)}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			// A cooperative-cancellation sentinel racing ctx.Done() into
			// the done channel is still a timeout/cancellation: surface it
			// as the context error so transports classify it correctly.
			if isInterruptSentinel(o.err) && ctx.Err() != nil {
				return nil, fmt.Errorf("engine: %s request interrupted: %w", req.Kind, ctx.Err())
			}
			return nil, o.err
		}
		res.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
		return res, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("engine: %s request interrupted: %w", req.Kind, ctx.Err())
	}
}

// isInterruptSentinel reports whether err stems from a cooperative stop
// channel closing inside one of the analyses.
func isInterruptSentinel(err error) bool {
	return errors.Is(err, reach.ErrInterrupted) || errors.Is(err, sim.ErrInterrupted) ||
		errors.Is(err, stable.ErrInterrupted) || errors.Is(err, dioph.ErrInterrupted)
}

// dispatch fills res according to the request kind. The expensive analyses
// take ctx.Done() as a cooperative stop channel, so work abandoned by a
// deadline actually terminates (and frees its concurrency slot) instead of
// running to completion in the background.
func (e *Engine) dispatch(ctx context.Context, req Request, entry protocols.Entry, hash string, res *Result) error {
	switch req.Kind {
	case KindSimulate:
		return e.doSimulate(ctx, req, entry, hash, res)
	case KindVerify:
		return e.doVerify(ctx, req, entry, res)
	case KindStable:
		return e.doStable(ctx, req, entry, hash, res)
	case KindCertifyChain, KindCertifyLeaderless:
		return e.doCertify(ctx, req, entry, hash, res)
	case KindSaturate:
		return e.doSaturate(ctx, entry, res)
	case KindBasis:
		return e.doBasis(ctx, req, entry, hash, res)
	case KindBounds:
		return e.doBounds(ctx, req, entry, res)
	case KindCover:
		return e.doCover(ctx, req, entry, res)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadRequest, req.Kind)
	}
}

// artifactsFor returns the (possibly fresh) artifact slot for a protocol
// hash, promoting it to most recently used. Under capacity pressure the
// least recently used entry is evicted, so a hot artifact (one a sweep is
// hammering) survives a parade of one-shot inline protocols.
func (e *Engine) artifactsFor(hash string) *artifacts {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.cache[hash]
	if ok {
		e.lru.MoveToFront(a.elem)
		return a
	}
	for len(e.cache) >= e.maxCache {
		back := e.lru.Back()
		if back == nil {
			break
		}
		delete(e.cache, back.Value.(string))
		e.lru.Remove(back)
		e.metrics.CacheEvictions.Inc()
	}
	a = &artifacts{
		stable: memo[*stable.Analysis]{ready: make(chan struct{})},
		basis:  memo[[]realise.TransitionMultiset]{ready: make(chan struct{})},
	}
	a.elem = e.lru.PushFront(hash)
	e.cache[hash] = a
	return a
}

func (e *Engine) countLookup(hit bool) {
	e.mu.Lock()
	if hit {
		e.hits++
	} else {
		e.misses++
	}
	e.mu.Unlock()
	if hit {
		e.metrics.CacheHits.Inc()
	} else {
		e.metrics.CacheMisses.Inc()
	}
}

// evictIfCurrent drops an artifact slot, but only if it is still the one
// cached under hash (an interrupted computation must not clobber a fresh
// replacement another request already started).
func (e *Engine) evictIfCurrent(hash string, a *artifacts) {
	e.mu.Lock()
	evicted := e.cache[hash] == a
	if evicted {
		delete(e.cache, hash)
		e.lru.Remove(a.elem)
	}
	e.mu.Unlock()
	if evicted {
		e.metrics.CacheEvictions.Inc()
	}
}

// stableFor memoizes the stable-set analysis of a protocol. The second
// return value reports whether the analysis was complete when the request
// arrived (waiters on an in-flight computation count as misses — they pay
// the full latency). A computation interrupted by the computing request's
// deadline is evicted so it never poisons the cache; waiters whose own
// context is still live retry on a fresh slot. fam, when non-nil, lets a
// cache-and-disk miss warm-start from a family neighbor (family.go); the
// computed artifact is identical either way.
func (e *Engine) stableFor(ctx context.Context, p *protocol.Protocol, hash string, fam *famCtx) (*stable.Analysis, bool, error) {
	counted := false
	count := func(hit bool) {
		if !counted {
			e.countLookup(hit)
			counted = true
		}
	}
	for {
		a := e.artifactsFor(hash)
		m := &a.stable
		hit := m.completed()
		if m.started.CompareAndSwap(false, true) {
			count(false)
			release, err := e.acquire(ctx)
			if err != nil {
				// Never got to run: hand the slot race to a retrier.
				m.err = stable.ErrInterrupted
				close(m.ready)
				e.evictIfCurrent(hash, a)
				return nil, false, err
			}
			// Durable state first — a disk or peer hit skips the fixpoint
			// entirely (and does not count as a computation).
			if art := e.loadStable(ctx, p, hash); art != nil {
				m.val = art
			} else {
				e.countCompute()
				m.val, m.err = e.computeStableWarm(ctx, p, hash, fam)
				if m.err == nil {
					payload, err := encodeStableArtifact(m.val)
					e.saveArtifact(ArtifactStable, hash, payload, err)
				}
			}
			release()
			close(m.ready)
		} else {
			// Waiting holds no execution slot.
			select {
			case <-m.ready:
			case <-ctx.Done():
				count(hit)
				return nil, hit, ctx.Err()
			}
			count(hit)
		}
		if errors.Is(m.err, stable.ErrInterrupted) {
			e.evictIfCurrent(hash, a)
			if err := ctx.Err(); err != nil {
				return nil, hit, err
			}
			continue
		}
		return m.val, hit, m.err
	}
}

// basisFor memoizes the realisable basis of a protocol, with the same
// semantics as stableFor.
func (e *Engine) basisFor(ctx context.Context, p *protocol.Protocol, hash string, fam *famCtx) ([]realise.TransitionMultiset, bool, error) {
	counted := false
	count := func(hit bool) {
		if !counted {
			e.countLookup(hit)
			counted = true
		}
	}
	for {
		a := e.artifactsFor(hash)
		m := &a.basis
		hit := m.completed()
		if m.started.CompareAndSwap(false, true) {
			count(false)
			release, err := e.acquire(ctx)
			if err != nil {
				m.err = dioph.ErrInterrupted
				close(m.ready)
				e.evictIfCurrent(hash, a)
				return nil, false, err
			}
			if basis, ok := e.loadBasis(ctx, p, hash); ok {
				m.val = basis
			} else {
				e.countCompute()
				m.val, m.err = e.computeBasisWarm(ctx, p, hash, fam)
				if m.err == nil {
					payload, err := encodeBasisArtifact(m.val)
					e.saveArtifact(ArtifactBasis, hash, payload, err)
				}
			}
			release()
			close(m.ready)
		} else {
			select {
			case <-m.ready:
			case <-ctx.Done():
				count(hit)
				return nil, hit, ctx.Err()
			}
			count(hit)
		}
		if errors.Is(m.err, dioph.ErrInterrupted) {
			e.evictIfCurrent(hash, a)
			if err := ctx.Err(); err != nil {
				return nil, hit, err
			}
			continue
		}
		return m.val, hit, m.err
	}
}

func (e *Engine) doSimulate(ctx context.Context, req Request, entry protocols.Entry, hash string, res *Result) error {
	p := entry.Protocol
	in := multiset.Vec(req.Input)
	if err := ValidateInput(in, p.NumInputs()); err != nil {
		return err
	}
	c0 := p.InitialConfig(in)
	opts := sim.Options{Seed: req.Seed, MaxSteps: req.MaxSteps, TraceEvery: req.TraceEvery, Interrupt: ctx.Done()}
	if req.ExactOracle {
		a, hit, err := e.stableFor(ctx, p, hash, famCtxOf(req, res))
		if err != nil {
			return fmt.Errorf("stable-set analysis: %w", err)
		}
		res.CacheHit = hit
		opts.Oracle = a
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	if req.Runs > 1 {
		// Route through the replica executor with a single worker: the
		// request holds one engine execution slot, and the executor reuses
		// the per-replica scratch (tables, Fenwick tree, config buffer)
		// across all runs instead of rebuilding it per replica.
		est, err := sim.RunReplicas(p, c0, req.Runs, opts, 1)
		if err != nil {
			return err
		}
		res.Simulation = &SimulationResult{
			Converged: est.Converged == est.Runs,
			Output:    est.Output,
			Estimate: &EstimateResult{
				Runs: est.Runs, Converged: est.Converged, Output: est.Output,
				MeanParallel: est.MeanParallel, MedianParallel: est.MedianParallel,
				P95Parallel: est.P95Parallel, MaxParallel: est.MaxParallel,
				TotalInteractions: est.TotalInteractions, MeanInteractions: est.MeanInteractions,
			},
		}
		return nil
	}
	st, err := sim.Run(p, c0, opts)
	if err != nil {
		return err
	}
	sr := &SimulationResult{
		Converged:      st.Converged,
		Output:         st.Output,
		Interactions:   st.Interactions,
		ParallelTime:   st.ParallelTime,
		ConsensusAt:    st.ConsensusAt,
		Final:          st.Final,
		FinalFormatted: p.FormatConfig(st.Final),
	}
	for _, tp := range st.Trace {
		sr.Trace = append(sr.Trace, TracePoint{
			Interactions: tp.Interactions,
			Config:       p.FormatConfig(tp.Config),
		})
	}
	res.Simulation = sr
	return nil
}

func (e *Engine) doVerify(ctx context.Context, req Request, entry protocols.Entry, res *Result) error {
	p := entry.Protocol
	phi := entry.Pred
	if req.Predicate != nil {
		var err error
		phi, err = req.Predicate.Build()
		if err != nil {
			return err
		}
	}
	if phi == nil {
		return fmt.Errorf("%w: protocol carries no predicate; set request.predicate", ErrBadRequest)
	}
	if phi.Arity() != p.NumInputs() {
		return fmt.Errorf("%w: predicate arity %d, protocol has %d inputs", ErrBadRequest, phi.Arity(), p.NumInputs())
	}
	minSize, maxSize := req.MinSize, req.MaxSize
	if minSize <= 0 {
		minSize = 2
	}
	if maxSize <= 0 {
		maxSize = 8
		if entry.MaxExactInput > 0 && entry.MaxExactInput < maxSize {
			maxSize = entry.MaxExactInput
		}
	}
	if maxSize < minSize {
		return fmt.Errorf("%w: maxSize %d < minSize %d", ErrBadRequest, maxSize, minSize)
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	rep, err := reach.VerifyRangeInterruptible(p, phi, minSize, maxSize, req.Limit, ctx.Done())
	release()
	if err != nil {
		return err
	}
	vr := &VerifyResult{
		Predicate:    phi.String(),
		Inputs:       len(rep.Results),
		AllOK:        rep.AllOK(),
		TotalConfigs: rep.TotalConfigs,
		Summary:      rep.String(),
	}
	for _, f := range rep.Failures() {
		vr.Failures = append(vr.Failures, VerifyFailure{Input: f.Input, Want: f.Want, Got: f.Got})
	}
	res.Verification = vr
	return nil
}

func (e *Engine) doStable(ctx context.Context, req Request, entry protocols.Entry, hash string, res *Result) error {
	a, hit, err := e.stableFor(ctx, entry.Protocol, hash, famCtxOf(req, res))
	if err != nil {
		return err
	}
	res.CacheHit = hit
	res.Stable = &StableResult{
		Basis0:      len(a.Basis(0)),
		Basis1:      len(a.Basis(1)),
		SCBasis:     len(a.SCBasis()),
		Iterations0: a.Iterations(0),
		Iterations1: a.Iterations(1),
		Frontier0:   a.FrontierProcessed(0),
		Frontier1:   a.FrontierProcessed(1),
		Norm:        a.MeasuredNorm(),
	}
	return nil
}

func (e *Engine) doCertify(ctx context.Context, req Request, entry protocols.Entry, hash string, res *Result) error {
	p := entry.Protocol
	// The finders need the stable-set analysis (and, leaderless, the
	// realisable basis) — the exact artifacts the engine memoizes. Inject
	// them so repeated certify requests skip the dominant recomputation.
	analysis, hit, err := e.stableFor(ctx, p, hash, famCtxOf(req, res))
	if err != nil {
		return fmt.Errorf("stable-set analysis: %w", err)
	}
	res.CacheHit = hit
	opts := pump.FindOptions{Seed: req.Seed, Analysis: analysis}
	opts.Dioph.Interrupt = ctx.Done()
	release, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	switch req.Kind {
	case KindCertifyChain:
		cert, err := pump.FindChain(p, opts)
		if err != nil {
			return err
		}
		if err := pump.CheckChain(p, cert, analysis); err != nil {
			return fmt.Errorf("engine: chain certificate self-check failed: %w", err)
		}
		res.Certificate = &CertificateResult{Pipeline: "chain", A: cert.A, B: cert.B, Chain: cert}
	default:
		basis, basisHit, err := e.basisFor(ctx, p, hash, famCtxOf(req, res))
		if err != nil {
			return fmt.Errorf("realisable basis: %w", err)
		}
		res.CacheHit = hit && basisHit
		opts.Basis = basis
		cert, err := pump.FindLeaderless(p, opts)
		if err != nil {
			return err
		}
		if err := pump.CheckLeaderless(p, cert, analysis); err != nil {
			return fmt.Errorf("engine: leaderless certificate self-check failed: %w", err)
		}
		res.Certificate = &CertificateResult{Pipeline: "leaderless", A: cert.A, B: cert.B, Leaderless: cert}
	}
	return nil
}

func (e *Engine) doSaturate(ctx context.Context, entry protocols.Entry, res *Result) error {
	release, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	w, err := saturate.Saturate(entry.Protocol)
	release()
	if err != nil {
		return err
	}
	res.Saturation = &SaturationResult{
		Stages:      w.Stages,
		Input:       w.Input,
		SequenceLen: len(w.Sequence),
		Config:      w.Config,
	}
	return nil
}

func (e *Engine) doBasis(ctx context.Context, req Request, entry protocols.Entry, hash string, res *Result) error {
	basis, hit, err := e.basisFor(ctx, entry.Protocol, hash, famCtxOf(req, res))
	if err != nil {
		return err
	}
	res.CacheHit = hit
	res.Basis = &BasisResult{Size: len(basis), Basis: basis}
	return nil
}

func (e *Engine) doCover(ctx context.Context, req Request, entry protocols.Entry, res *Result) error {
	p := entry.Protocol
	in := multiset.Vec(req.Input)
	if err := ValidateInput(in, p.NumInputs()); err != nil {
		return err
	}
	ic := p.InitialConfig(in)
	release, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	m1, m0, err := reach.MaxCoverLengthsBothInterruptible(p, ic, req.Limit, ctx.Done())
	if err != nil {
		return err
	}
	res.Cover = &CoverResult{Input: req.Input, MaxLen1: m1, MaxLen0: m0}
	return nil
}

// maxBoundsStates caps protocol-free bounds requests: the constants involve
// (2n+2)!-sized exponents, whose exact computation grows without practical
// limit in n.
const maxBoundsStates = 10_000

func (e *Engine) doBounds(ctx context.Context, req Request, entry protocols.Entry, res *Result) error {
	n, t := req.States, req.Transitions
	if entry.Protocol != nil {
		n = int64(entry.Protocol.NumStates())
		t = int64(entry.Protocol.NumTransitions())
	}
	if n < 1 {
		return fmt.Errorf("%w: bounds needs states ≥ 1 or a protocol", ErrBadRequest)
	}
	if n > maxBoundsStates {
		return fmt.Errorf("%w: bounds supports at most %d states, got %d", ErrBadRequest, maxBoundsStates, n)
	}
	if t == 0 {
		t = n * (n + 1) / 2
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	res.Bounds = &BoundsResult{
		States:              n,
		Transitions:         t,
		Beta:                bounds.Beta(n).String(),
		Theta:               bounds.Theta(n).String(),
		Xi:                  bounds.Xi(t, n).String(),
		XiDeterministic:     bounds.XiDeterministic(n).String(),
		Theorem59:           bounds.Theorem59(n, t).String(),
		Theorem59Simplified: bounds.Theorem59Simplified(n).String(),
		BBLowerLeaderless:   bounds.BBLowerLeaderless(n).String(),
		BBLLowerWithLeaders: bounds.BBLLowerWithLeaders(n).String(),
	}
	return nil
}
