package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ideal"
	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/realise"
	"repro/internal/stable"
	"repro/internal/store"
)

// Artifact kinds under which the disk store files engine artifacts (and
// under which /v1/artifacts serves them to cluster peers).
const (
	ArtifactStable = "stable"
	ArtifactBasis  = "basis"
	// ArtifactFamily files family member indexes (family.go), keyed by the
	// hash of the family template string rather than a protocol hash.
	ArtifactFamily = "family"
)

// ArtifactKinds lists every artifact family the engine persists.
var ArtifactKinds = []string{ArtifactStable, ArtifactBasis, ArtifactFamily}

// PeerFetchFunc fetches an artifact payload from a cluster peer: the raw
// versioned encoding (already CRC-validated by the transport), or
// (nil, nil) when no peer has it. Errors are treated as misses.
type PeerFetchFunc func(ctx context.Context, kind, hash string) ([]byte, error)

// SetArtifactStore puts a disk store behind the in-memory artifact cache:
// computed artifacts are written through, and cache misses try the store
// before recomputing. Call before serving traffic.
func (e *Engine) SetArtifactStore(s *store.Store) {
	e.mu.Lock()
	e.artstore = s
	e.mu.Unlock()
}

// ArtifactStore returns the disk store behind the cache, or nil.
func (e *Engine) ArtifactStore() *store.Store {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.artstore
}

// SetPeerFetch installs the cluster peer-fetch path, consulted when both
// the in-memory cache and the disk store miss. Call before serving
// traffic.
func (e *Engine) SetPeerFetch(f PeerFetchFunc) {
	e.mu.Lock()
	e.peerFetch = f
	e.mu.Unlock()
}

func (e *Engine) durability() (*store.Store, PeerFetchFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.artstore, e.peerFetch
}

// stableArtifact is the durable stable-analysis encoding. Version 1
// carries the minimal bases of U_0 and U_1 in arena insertion order plus
// the fixpoint's reporting counters, and everything else is recomputed
// deterministically by stable.Restore. Version 2 adds the derived ideal
// decompositions (SC_0, SC_1 and their union, ω coordinates as -1 — the
// in-memory sentinel), which stable.RestoreDerived restores verbatim
// instead of recomputing: complementation dominates Restore on threshold
// families, and skipping it is what makes a durable-store hit an order of
// magnitude cheaper than the fixpoint. V1 payloads (fields absent) still
// decode through the recomputing path.
type stableArtifactV1 struct {
	V          int       `json:"v"`
	Basis0     [][]int64 `json:"basis0"`
	Basis1     [][]int64 `json:"basis1"`
	Iterations [2]int    `json:"iterations"`
	Frontier   [2]int    `json:"frontier"`
	// V2 fields: the derived decompositions, each ideal as its caps vector.
	SC0   [][]int64 `json:"sc0,omitempty"`
	SC1   [][]int64 `json:"sc1,omitempty"`
	SCAll [][]int64 `json:"scAll,omitempty"`
}

// basisArtifactV1 is version 1 of the durable realisable-basis encoding.
// Each transition multiset becomes its sorted [transition, count] pairs;
// the basis slice order (which certify-leaderless consumes) is preserved.
type basisArtifactV1 struct {
	V     int          `json:"v"`
	Basis [][][2]int64 `json:"basis"`
}

func packIdeals(ideals []ideal.Ideal) [][]int64 {
	out := make([][]int64, len(ideals))
	for i, id := range ideals {
		caps := make([]int64, id.Dim())
		for j := range caps {
			caps[j] = id.Cap(j)
		}
		out[i] = caps
	}
	return out
}

func unpackIdeals(rows [][]int64) []ideal.Ideal {
	out := make([]ideal.Ideal, len(rows))
	for i, caps := range rows {
		out[i] = ideal.NewIdeal(caps)
	}
	return out
}

func encodeStableArtifact(a *stable.Analysis) ([]byte, error) {
	art := stableArtifactV1{V: 2}
	pack := func(basis []multiset.Vec) [][]int64 {
		out := make([][]int64, len(basis))
		for i, m := range basis {
			out[i] = []int64(m)
		}
		return out
	}
	art.Basis0 = pack(a.Unstable(0).MinBasis())
	art.Basis1 = pack(a.Unstable(1).MinBasis())
	art.Iterations = [2]int{a.Iterations(0), a.Iterations(1)}
	art.Frontier = [2]int{a.FrontierProcessed(0), a.FrontierProcessed(1)}
	der := a.Derived()
	art.SC0 = packIdeals(der.SC[0])
	art.SC1 = packIdeals(der.SC[1])
	art.SCAll = packIdeals(der.SCAll)
	return json.Marshal(art)
}

func decodeStableArtifact(p *protocol.Protocol, payload []byte) (*stable.Analysis, error) {
	var art stableArtifactV1
	if err := json.Unmarshal(payload, &art); err != nil {
		return nil, fmt.Errorf("stable artifact: %w", err)
	}
	unpack := func(rows [][]int64) []multiset.Vec {
		out := make([]multiset.Vec, len(rows))
		for i, r := range rows {
			out[i] = multiset.Vec(r)
		}
		return out
	}
	basis := [2][]multiset.Vec{unpack(art.Basis0), unpack(art.Basis1)}
	switch art.V {
	case 1:
		return stable.Restore(p, basis, art.Iterations, art.Frontier)
	case 2:
		return stable.RestoreDerived(p, basis, art.Iterations, art.Frontier, stable.Derived{
			SC:    [2][]ideal.Ideal{unpackIdeals(art.SC0), unpackIdeals(art.SC1)},
			SCAll: unpackIdeals(art.SCAll),
		})
	default:
		return nil, fmt.Errorf("stable artifact: unsupported version %d", art.V)
	}
}

func encodeBasisArtifact(basis []realise.TransitionMultiset) ([]byte, error) {
	art := basisArtifactV1{V: 1, Basis: make([][][2]int64, len(basis))}
	for i, pi := range basis {
		pairs := make([][2]int64, 0, len(pi))
		for t, c := range pi {
			pairs = append(pairs, [2]int64{int64(t), c})
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
		art.Basis[i] = pairs
	}
	return json.Marshal(art)
}

func decodeBasisArtifact(p *protocol.Protocol, payload []byte) ([]realise.TransitionMultiset, error) {
	var art basisArtifactV1
	if err := json.Unmarshal(payload, &art); err != nil {
		return nil, fmt.Errorf("basis artifact: %w", err)
	}
	if art.V != 1 {
		return nil, fmt.Errorf("basis artifact: unsupported version %d", art.V)
	}
	out := make([]realise.TransitionMultiset, len(art.Basis))
	for i, pairs := range art.Basis {
		pi := make(realise.TransitionMultiset, len(pairs))
		for _, pr := range pairs {
			t, c := int(pr[0]), pr[1]
			if t < 0 || t >= p.NumTransitions() || c <= 0 {
				return nil, fmt.Errorf("basis artifact: bad pair [%d, %d]", pr[0], pr[1])
			}
			pi[t] = c
		}
		out[i] = pi
	}
	return out, nil
}

// loadArtifact fetches the versioned payload for (kind, hash): disk store
// first, then cluster peers. A peer hit is written through to the local
// store so the next restart is warm without the network. Every failure —
// corruption, decode, transport — degrades to a miss; durable state is
// never trusted over recomputation.
func (e *Engine) loadArtifact(ctx context.Context, kind, hash string) []byte {
	st, peers := e.durability()
	if st == nil {
		return nil
	}
	if payload, err := st.Get(kind, hash); err == nil && payload != nil {
		return payload
	}
	if peers == nil {
		return nil
	}
	payload, err := peers(ctx, kind, hash)
	switch {
	case err != nil:
		st.Metrics().PeerFetches.WithLabelValues("error").Inc()
		return nil
	case payload == nil:
		st.Metrics().PeerFetches.WithLabelValues("miss").Inc()
		return nil
	}
	st.Metrics().PeerFetches.WithLabelValues("hit").Inc()
	// Best effort: a failed write-through only costs the next restart. The
	// pin keeps the GC from evicting the entry in the warming window while
	// this fetch is the store's only reason to believe it is hot.
	st.Pin(kind, hash)
	_ = st.Put(kind, hash, payload)
	st.Unpin(kind, hash)
	return payload
}

// saveArtifact writes a computed artifact through to the disk store, best
// effort (failures are visible in pp_store_writes_total{result="error"}).
func (e *Engine) saveArtifact(kind, hash string, payload []byte, err error) {
	st, _ := e.durability()
	if st == nil || err != nil {
		return
	}
	_ = st.Put(kind, hash, payload)
}

// loadStable tries to satisfy a stable-analysis miss from durable state.
func (e *Engine) loadStable(ctx context.Context, p *protocol.Protocol, hash string) *stable.Analysis {
	payload := e.loadArtifact(ctx, ArtifactStable, hash)
	if payload == nil {
		return nil
	}
	a, err := decodeStableArtifact(p, payload)
	if err != nil {
		// Decoded frame but bogus content (e.g. a hash collision across
		// protocol versions): delete so it cannot resurface, recompute.
		if st, _ := e.durability(); st != nil {
			_ = st.Delete(ArtifactStable, hash)
		}
		return nil
	}
	return a
}

// loadBasis tries to satisfy a realisable-basis miss from durable state.
func (e *Engine) loadBasis(ctx context.Context, p *protocol.Protocol, hash string) ([]realise.TransitionMultiset, bool) {
	payload := e.loadArtifact(ctx, ArtifactBasis, hash)
	if payload == nil {
		return nil, false
	}
	basis, err := decodeBasisArtifact(p, payload)
	if err != nil {
		if st, _ := e.durability(); st != nil {
			_ = st.Delete(ArtifactBasis, hash)
		}
		return nil, false
	}
	return basis, true
}

// ArtifactBytes serves the durable encoding of a completed artifact, for
// the /v1/artifacts peer-fetch endpoint: the in-memory cache if the
// artifact is complete, else the disk store. ok is false when this node
// has nothing to offer (in-flight computations are not waited on).
func (e *Engine) ArtifactBytes(ctx context.Context, kind, hash string) ([]byte, bool, error) {
	e.mu.Lock()
	a := e.cache[hash]
	st := e.artstore
	e.mu.Unlock()
	if a != nil {
		switch kind {
		case ArtifactStable:
			if a.stable.completed() && a.stable.err == nil {
				payload, err := encodeStableArtifact(a.stable.val)
				return payload, err == nil, err
			}
		case ArtifactBasis:
			if a.basis.completed() && a.basis.err == nil {
				payload, err := encodeBasisArtifact(a.basis.val)
				return payload, err == nil, err
			}
		}
	}
	if st == nil {
		return nil, false, nil
	}
	payload, err := st.Get(kind, hash)
	if err != nil || payload == nil {
		return nil, false, nil
	}
	return payload, true, nil
}
