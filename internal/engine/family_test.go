package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/metrics/testutil"
	"repro/internal/store"
)

// famReq builds a stable request for a family member.
func famReq(kind Kind, family string, param int64) Request {
	return Request{
		Kind:        kind,
		Protocol:    ProtocolRef{Spec: memberSpec(family, param)},
		Family:      family,
		FamilyParam: param,
	}
}

// TestFamilyValidation pins the request-level contract: a family template
// without the parameter token is a bad request.
func TestFamilyValidation(t *testing.T) {
	eng := New()
	_, err := eng.Do(context.Background(), Request{
		Kind:     KindStable,
		Protocol: ProtocolRef{Spec: "flock:4"},
		Family:   "flock:4", // no {N}
	})
	if err == nil {
		t.Fatal("family template without {N} accepted")
	}
}

// TestFamilyWarmStableDifferential is the engine leg of the differential
// suite: an ascending family ramp run with incremental analysis enabled
// yields exactly the results of the same ramp with it disabled, while the
// warm engine actually takes the delta path (provenance present from the
// second member on).
func TestFamilyWarmStableDifferential(t *testing.T) {
	const family = "flock:{N}"
	warm, cold := New(), New()
	cold.SetIncremental(false)
	for param := int64(3); param <= 8; param++ {
		w := do(t, warm, famReq(KindStable, family, param))
		c := do(t, cold, famReq(KindStable, family, param))
		if !reflect.DeepEqual(w.Stable.SCBasis, c.Stable.SCBasis) ||
			w.Stable.Basis0 != c.Stable.Basis0 || w.Stable.Basis1 != c.Stable.Basis1 ||
			w.Stable.Norm != c.Stable.Norm {
			t.Fatalf("flock:%d: warm result differs from cold:\n%+v\nvs\n%+v", param, w.Stable, c.Stable)
		}
		if c.Incremental != nil {
			t.Fatalf("flock:%d: incremental-disabled engine reported warm provenance %+v", param, c.Incremental)
		}
		if param == 3 {
			if w.Incremental != nil {
				t.Fatalf("flock:3: first member has no neighbor yet, got provenance %+v", w.Incremental)
			}
			continue
		}
		if w.Incremental == nil {
			t.Fatalf("flock:%d: warm engine took no delta path", param)
		}
		if w.Incremental.Mode != "warm-stable" {
			t.Fatalf("flock:%d: mode %q, want warm-stable", param, w.Incremental.Mode)
		}
		if w.Incremental.SeedParam != param-1 {
			t.Fatalf("flock:%d: seeded from param %d, want nearest neighbor %d",
				param, w.Incremental.SeedParam, param-1)
		}
		if w.Incremental.Family != family || w.Incremental.Param != param {
			t.Fatalf("flock:%d: provenance identity %q/%d", param, w.Incremental.Family, w.Incremental.Param)
		}
		if w.Incremental.Imported == 0 || w.Incremental.Certified == 0 {
			t.Fatalf("flock:%d: delta path idle: %+v", param, w.Incremental)
		}
	}
}

// TestFamilyWarmBasisDifferential mirrors the stable differential for the
// realisable-basis artifact: identical bases warm and cold, warm-basis
// provenance from the second member on.
func TestFamilyWarmBasisDifferential(t *testing.T) {
	const family = "flock:{N}"
	warm, cold := New(), New()
	cold.SetIncremental(false)
	for param := int64(3); param <= 6; param++ {
		w := do(t, warm, famReq(KindBasis, family, param))
		c := do(t, cold, famReq(KindBasis, family, param))
		if !reflect.DeepEqual(w.Basis, c.Basis) {
			t.Fatalf("flock:%d: warm basis differs from cold", param)
		}
		if param > 3 {
			if w.Incremental == nil || w.Incremental.Mode != "warm-basis" {
				t.Fatalf("flock:%d: want warm-basis provenance, got %+v", param, w.Incremental)
			}
		}
	}
}

// TestFamilyWarmAcrossRestart pins the durable family index: an engine
// restarted over a warm artifact store (fresh memory, fresh family map)
// warm-starts a NEW family member from a neighbor it never analyzed
// itself, resolved through the persisted index.
func TestFamilyWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *Engine {
		eng := New()
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetArtifactStore(s)
		return eng
	}

	first := open()
	do(t, first, famReq(KindStable, "flock:{N}", 5))

	second := open()
	res := do(t, second, famReq(KindStable, "flock:{N}", 6))
	if res.Incremental == nil {
		t.Fatal("restarted engine did not warm from the persisted family index")
	}
	if res.Incremental.SeedParam != 5 {
		t.Fatalf("seeded from param %d, want 5", res.Incremental.SeedParam)
	}

	// The restored result must match a from-scratch engine on every
	// schedule-independent field (iteration/frontier counters reflect the
	// warm schedule by design and are canonicalized away by sweeps).
	coldEng := New()
	coldEng.SetIncremental(false)
	coldRes := do(t, coldEng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "flock:6"}})
	w, c := res.Stable, coldRes.Stable
	if w.Basis0 != c.Basis0 || w.Basis1 != c.Basis1 || w.SCBasis != c.SCBasis || w.Norm != c.Norm {
		t.Fatalf("warm-restarted result differs from cold:\n%+v\nvs\n%+v", w, c)
	}
}

// TestFamilyMembersIndex pins registration: every family-declaring request
// lands in the index under its parameter, hashes matching the resolved
// protocols.
func TestFamilyMembersIndex(t *testing.T) {
	eng := New()
	do(t, eng, famReq(KindStable, "flock:{N}", 3))
	do(t, eng, famReq(KindStable, "flock:{N}", 4))
	members := eng.FamilyMembers("flock:{N}")
	if len(members) != 2 {
		t.Fatalf("index has %d members, want 2", len(members))
	}
	for _, param := range []int64{3, 4} {
		entry, err := eng.Registry().Resolve(memberSpec("flock:{N}", param))
		if err != nil {
			t.Fatal(err)
		}
		h, err := Hash(entry.Protocol)
		if err != nil {
			t.Fatal(err)
		}
		if members[param] != h {
			t.Fatalf("member %d registered hash %q, want %q", param, members[param], h)
		}
	}
}

// TestIncrementalMetrics pins the pp_engine_incremental_* instrumentation:
// warm attempts and seed outcomes count on the delta path, the disabled
// mode counts when the switch is off.
func TestIncrementalMetrics(t *testing.T) {
	eng := New()
	do(t, eng, famReq(KindStable, "flock:{N}", 4))
	do(t, eng, famReq(KindStable, "flock:{N}", 5))
	if got := testutil.ToFloat64(eng.Metrics().IncrementalAttempts.WithLabelValues("warm_stable")); got != 1 {
		t.Fatalf("warm_stable attempts = %v, want 1", got)
	}
	if got := testutil.ToFloat64(eng.Metrics().IncrementalAttempts.WithLabelValues("cold_stable")); got != 1 {
		t.Fatalf("cold_stable attempts = %v, want 1", got)
	}
	if got := testutil.ToFloat64(eng.Metrics().IncrementalSeeds.WithLabelValues("imported")); got == 0 {
		t.Fatal("no imported seed elements counted on the warm path")
	}
	eng.SetIncremental(false)
	do(t, eng, famReq(KindStable, "flock:{N}", 6))
	if got := testutil.ToFloat64(eng.Metrics().IncrementalAttempts.WithLabelValues("disabled")); got != 1 {
		t.Fatalf("disabled attempts = %v, want 1", got)
	}
}
