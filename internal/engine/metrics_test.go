package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/metrics/testutil"
)

// TestMetricsRequestCounters pins the per-kind request counter and latency
// histogram: every finished request lands in exactly one (kind, status)
// cell and one latency observation.
func TestMetricsRequestCounters(t *testing.T) {
	eng := New()
	m := eng.Metrics()

	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if _, err := eng.Do(context.Background(), Request{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind must fail")
	}

	want := `
		# HELP pp_engine_requests_total Analysis requests finished, by kind and status.
		# TYPE pp_engine_requests_total counter
		pp_engine_requests_total{kind="invalid",status="bad_request"} 1
		pp_engine_requests_total{kind="stable",status="ok"} 2
	`
	if err := testutil.CollectAndCompare(m.Requests, strings.NewReader(want)); err != nil {
		t.Error(err)
	}
	if got := m.Latency.WithLabelValues("stable").Count(); got != 2 {
		t.Errorf("latency observations for stable = %d, want 2", got)
	}
	if m.Latency.WithLabelValues("invalid").Count() != 1 {
		t.Error("invalid-kind request must still be timed")
	}
}

// TestMetricsCacheHitIncrementsHitNotMiss pins the artifact-cache counters:
// the first stable request misses, the repeat hits — and a hit must not
// move the miss counter.
func TestMetricsCacheHitIncrementsHitNotMiss(t *testing.T) {
	eng := New()
	m := eng.Metrics()

	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := testutil.ToFloat64(m.CacheMisses); got != 1 {
		t.Fatalf("misses after first request = %v, want 1", got)
	}
	if got := testutil.ToFloat64(m.CacheHits); got != 0 {
		t.Fatalf("hits after first request = %v, want 0", got)
	}

	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := testutil.ToFloat64(m.CacheHits); got != 1 {
		t.Errorf("hits after repeat = %v, want 1", got)
	}
	if got := testutil.ToFloat64(m.CacheMisses); got != 1 {
		t.Errorf("a cache hit must not move the miss counter: misses = %v, want 1", got)
	}

	// The counters mirror CacheStats exactly.
	hits, misses := eng.CacheStats()
	if float64(hits) != testutil.ToFloat64(m.CacheHits) || float64(misses) != testutil.ToFloat64(m.CacheMisses) {
		t.Errorf("metric counters diverge from CacheStats: stats (%d,%d)", hits, misses)
	}
}

// TestMetricsCacheEvictions pins the eviction counter against a
// capacity-1 cache: caching a second protocol evicts the first.
func TestMetricsCacheEvictions(t *testing.T) {
	eng := New()
	eng.SetCacheLimit(1)
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:4"}})
	do(t, eng, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}})
	if got := testutil.ToFloat64(eng.Metrics().CacheEvictions); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
}

// TestMetricsInterrupted pins the interrupted counter and status label: a
// request abandoned by cancellation counts as interrupted, not error.
func TestMetricsInterrupted(t *testing.T) {
	eng := New()
	m := eng.Metrics()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Do(ctx, Request{Kind: KindStable, Protocol: ProtocolRef{Spec: "binary:5"}}); err == nil {
		t.Fatal("cancelled request must fail")
	}
	if got := testutil.ToFloat64(m.Interrupted); got != 1 {
		t.Errorf("interrupted = %v, want 1", got)
	}
	if got := testutil.ToFloat64(m.Requests.WithLabelValues("stable", "interrupted")); got != 1 {
		t.Errorf("requests{stable,interrupted} = %v, want 1", got)
	}
}

// TestMetricsSlotGauges pins the semaphore gauges to SlotStats: they read
// the live semaphore at gather time, including after a SetSlots resize.
func TestMetricsSlotGauges(t *testing.T) {
	eng := New()
	m := eng.Metrics()
	_, capacity, _ := eng.SlotStats()
	if got := testutil.ToFloat64(m.SlotsCapacity); got != float64(capacity) {
		t.Errorf("slots_capacity = %v, want %d", got, capacity)
	}
	if got := testutil.ToFloat64(m.SlotsBusy); got != 0 {
		t.Errorf("slots_busy idle = %v, want 0", got)
	}
	eng.SetSlots(3)
	if got := testutil.ToFloat64(m.SlotsCapacity); got != 3 {
		t.Errorf("slots_capacity after SetSlots(3) = %v, want 3", got)
	}
	if got := testutil.ToFloat64(m.SlotQueue); got != 0 {
		t.Errorf("slot_queue_depth idle = %v, want 0", got)
	}
}

// TestMetricsRegister pins registration: every engine family lands in the
// registry and gathers without collisions.
func TestMetricsRegister(t *testing.T) {
	eng := New()
	reg := metrics.NewRegistry()
	eng.Metrics().Register(reg)
	names := make(map[string]bool)
	for _, f := range reg.Gather() {
		names[f.Name] = true
	}
	for _, want := range []string{
		"pp_engine_requests_total", "pp_engine_request_duration_seconds",
		"pp_engine_cache_hits_total", "pp_engine_cache_misses_total",
		"pp_engine_cache_evictions_total", "pp_engine_interrupted_total",
		"pp_engine_slots_busy", "pp_engine_slots_capacity", "pp_engine_slot_queue_depth",
	} {
		if !names[want] {
			t.Errorf("family %s not registered", want)
		}
	}
}
