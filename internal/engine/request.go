package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/multiset"
	"repro/internal/pred"
)

// Kind names an analysis the engine can run.
type Kind string

// The analysis kinds.
const (
	// KindSimulate runs the protocol under the uniform random scheduler.
	KindSimulate Kind = "simulate"
	// KindVerify exactly verifies the protocol against a predicate for
	// every input size in [MinSize, MaxSize].
	KindVerify Kind = "verify"
	// KindStable computes the stable sets SC_0 and SC_1 with their ideal
	// bases (backward coverability).
	KindStable Kind = "stable"
	// KindCertifyChain finds and checks a Theorem 4.5 pumping certificate
	// (works with leaders).
	KindCertifyChain Kind = "certify-chain"
	// KindCertifyLeaderless finds and checks a Theorem 5.9 certificate.
	KindCertifyLeaderless Kind = "certify-leaderless"
	// KindSaturate runs the Lemma 5.4 saturation construction.
	KindSaturate Kind = "saturate"
	// KindBasis computes the generating basis of potentially realisable
	// transition multisets (Definition 4 / Corollary 5.7).
	KindBasis Kind = "basis"
	// KindBounds evaluates the paper's constants and busy beaver bounds.
	KindBounds Kind = "bounds"
	// KindCover measures the shortest covering-execution lengths from the
	// initial configuration of an input — the quantity Rackoff's theorem
	// bounds by β(n) inside Lemma 3.2's proof.
	KindCover Kind = "cover"
)

// Kinds lists every analysis kind.
var Kinds = []Kind{
	KindSimulate, KindVerify, KindStable, KindCertifyChain,
	KindCertifyLeaderless, KindSaturate, KindBasis, KindBounds, KindCover,
}

// Valid reports whether k names a known analysis.
func (k Kind) Valid() bool {
	for _, v := range Kinds {
		if k == v {
			return true
		}
	}
	return false
}

// ProtocolRef names the protocol a request operates on: either a registry
// spec string ("flock:8", "majority", or a user-registered name) or an
// inline JSON protocol (the protocol.Spec interchange format). Exactly one
// of the two must be set, except for bounds requests with explicit state
// counts, which need no protocol at all.
type ProtocolRef struct {
	Spec   string          `json:"spec,omitempty"`
	Inline json.RawMessage `json:"inline,omitempty"`
}

// IsZero reports whether the reference is empty.
func (r ProtocolRef) IsZero() bool { return r.Spec == "" && len(r.Inline) == 0 }

// PredicateSpec describes the predicate a verify request checks against,
// for protocols (inline ones in particular) that do not carry their own.
type PredicateSpec struct {
	// Kind is "counting" (x ≥ Threshold), "mod" (x ≡ Residue mod Modulus),
	// or "majority" (x_A > x_B).
	Kind      string `json:"kind"`
	Threshold int64  `json:"threshold,omitempty"`
	Modulus   int64  `json:"modulus,omitempty"`
	Residue   int64  `json:"residue,omitempty"`
}

// Build constructs the predicate.
func (s *PredicateSpec) Build() (pred.Pred, error) {
	switch s.Kind {
	case "counting":
		if s.Threshold < 1 {
			return nil, fmt.Errorf("%w: counting predicate needs threshold ≥ 1", ErrBadRequest)
		}
		return pred.NewCounting(s.Threshold), nil
	case "mod":
		if s.Modulus < 1 {
			return nil, fmt.Errorf("%w: mod predicate needs modulus ≥ 1", ErrBadRequest)
		}
		return pred.NewModCounting(s.Modulus, s.Residue), nil
	case "majority":
		return pred.NewMajority(), nil
	default:
		return nil, fmt.Errorf("%w: unknown predicate kind %q (counting|mod|majority)", ErrBadRequest, s.Kind)
	}
}

// Request is one analysis job. It is JSON-round-trippable: marshalling and
// unmarshalling any valid request yields an identical value, so requests
// can cross process boundaries (the ppserve HTTP API) losslessly.
//
// Fields beyond Kind and Protocol apply only to the kinds that read them;
// the engine ignores (but preserves) the rest.
type Request struct {
	Kind     Kind        `json:"kind"`
	Protocol ProtocolRef `json:"protocol,omitzero"`

	// Input is the input multiset for simulate and cover requests (one
	// count per input variable).
	Input []int64 `json:"input,omitempty"`
	// Seed seeds randomized analyses (simulate, certificate finders).
	Seed uint64 `json:"seed,omitempty"`
	// MaxSteps bounds simulated interactions (0 = simulator default).
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// Runs > 1 aggregates convergence statistics over that many seeds.
	Runs int `json:"runs,omitempty"`
	// ExactOracle switches convergence detection to the exact stable-set
	// oracle (computed once per protocol and cached).
	ExactOracle bool `json:"exactOracle,omitempty"`
	// TraceEvery records a configuration snapshot every N interactions.
	TraceEvery int64 `json:"traceEvery,omitempty"`

	// Predicate overrides the predicate a verify request checks; required
	// for inline protocols, optional for registry ones (which default to
	// the predicate they are known to compute).
	Predicate *PredicateSpec `json:"predicate,omitempty"`
	// MinSize and MaxSize bound the verified input sizes (defaults 2 and
	// the protocol's exhaustive-verification bound).
	MinSize int64 `json:"minSize,omitempty"`
	MaxSize int64 `json:"maxSize,omitempty"`
	// Limit bounds each configuration graph explored by verify and cover
	// requests (0 = default).
	Limit int `json:"limit,omitempty"`

	// States and Transitions feed bounds requests without a protocol.
	States      int64 `json:"states,omitempty"`
	Transitions int64 `json:"transitions,omitempty"`

	// TimeoutMillis bounds the request's wall-clock time; 0 means no
	// request-level deadline (the caller's context still applies).
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`

	// Family, when set, declares the protocol as member FamilyParam of a
	// parametric family — a spec template containing "{N}", e.g.
	// "flock:{N}". The engine indexes members per family and warm-starts
	// expensive artifact computations from the nearest analyzed neighbor
	// (see family.go); results are identical with or without the
	// declaration, only provenance and cost differ.
	Family      string `json:"family,omitempty"`
	FamilyParam int64  `json:"familyParam,omitempty"`
}

// ValidateInput checks an input multiset against a protocol arity: the
// component count must match, every component must be non-negative, and the
// population must have at least 2 agents. This is the single authoritative
// implementation of the input rules; cli.ParseInput and the engine both
// call it.
func ValidateInput(v multiset.Vec, arity int) error {
	if len(v) != arity {
		return fmt.Errorf("%w: input has %d components, protocol expects %d", ErrBadRequest, len(v), arity)
	}
	for i, n := range v {
		if n < 0 {
			return fmt.Errorf("%w: bad input component %d", ErrBadRequest, v[i])
		}
	}
	if v.Size() < 2 {
		return fmt.Errorf("%w: populations need at least 2 agents, got %d", ErrBadRequest, v.Size())
	}
	return nil
}
