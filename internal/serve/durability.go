package serve

import (
	"context"
	"net/http"
	"runtime"
	"slices"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/store"
	"repro/internal/sweep"
)

// handleArtifact serves GET /v1/artifacts/{kind}/{hash}: the CRC-framed
// versioned payload of a completed artifact, for cluster peer fetches.
// On a local miss a coordinator forwards the request to the rendezvous
// owner of the hash — the worker the dispatcher routes that protocol's
// cells to, hence the node most likely to hold the artifact.
func handleArtifact(eng *engine.Engine, opts Options, w http.ResponseWriter, r *http.Request) {
	kind, hash := r.PathValue("kind"), r.PathValue("hash")
	if !slices.Contains(engine.ArtifactKinds, kind) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown artifact kind " + kind})
		return
	}
	payload, ok, err := eng.ArtifactBytes(r.Context(), kind, hash)
	if err != nil || !ok {
		if opts.Cluster != nil {
			if owner, live := opts.Cluster.Owner(hash); live {
				if p, ferr := cluster.FetchArtifact(r.Context(), artifactClient, owner.URL, kind, hash); ferr == nil && p != nil {
					payload, ok = p, true
				}
			}
		}
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "artifact not found"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(store.Encode(payload))
}

// artifactClient performs owner-forwarded artifact fetches; bounded so a
// dead owner cannot stall the endpoint.
var artifactClient = &http.Client{Timeout: 10 * time.Second}

// runSweepJournaled executes a sweep under the durable journal: replayed
// cells are re-emitted verbatim, only the rest run (locally or fanned
// out), every fresh completion is fsync'd before it streams, and the
// summary aggregates the whole grid. Because grid indices and per-cell
// seeds are stable under Cells sub-selection, the merged stream — and its
// canonical form — is byte-identical to an uninterrupted run's.
func runSweepJournaled(ctx context.Context, eng *engine.Engine, opts Options, spec sweep.Spec, j *journal.Sweep, onCell func(sweep.CellResult)) (*sweep.Result, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if err := j.Start(len(cells)); err != nil {
		return nil, err
	}
	workers := opts.SweepWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	col := sweep.NewCollector(spec.Name, len(cells), workers, true)
	m := sweep.NewMerger(cells, col, func(cr sweep.CellResult) {
		// Journal before streaming, so every cell a client saw is durable.
		// Replayed cells are already journaled and skip straight through;
		// a failed append only costs recomputing that cell on resume.
		if err := j.AppendCell(cr); err != nil {
			opts.RequestLog.Warn("sweep journal append failed", "cell", cr.Index, "error", err)
		}
		onCell(cr)
	})

	replayed := j.Completed()
	seen := make(map[int]bool, len(replayed))
	for _, cr := range replayed {
		m.Add(cr)
		seen[cr.Index] = true
	}
	var remaining []int
	for _, c := range cells {
		if !seen[c.Index] {
			remaining = append(remaining, c.Index)
		}
	}
	if len(replayed) > 0 {
		opts.RequestLog.Info("sweep resumed from journal",
			"sweep", spec.Name, "replayed", len(replayed), "remaining", len(remaining))
	}

	start := time.Now()
	// Ranges(nil) means the full grid, so a fully-replayed sweep must skip
	// execution outright rather than submit an empty selection.
	if len(remaining) > 0 {
		sub := spec
		sub.Cells = sweep.Ranges(remaining)
		feed := func(cr sweep.CellResult) { m.Add(cr) }
		logRange := func(worker string, rs []sweep.IndexRange) {
			if err := j.AppendRange(worker, rs); err != nil {
				opts.RequestLog.Warn("sweep journal range append failed", "error", err)
			}
		}
		if opts.Cluster != nil {
			dopts := opts.ClusterDispatch
			dopts.LocalEngine = eng
			dopts.LocalWorkers = opts.SweepWorkers
			dopts.DiscardCells = true
			dopts.OnCell = feed
			dopts.OnDispatch = logRange
			if dopts.Log == nil {
				dopts.Log = opts.RequestLog
			}
			if _, err := opts.Cluster.Sweep(ctx, sub, dopts); err != nil && ctx.Err() == nil {
				return nil, err
			}
		} else {
			logRange(cluster.LocalWorkerLabel, sub.Cells)
			if _, err := sweep.Run(ctx, eng, sub, sweep.RunOptions{
				Workers:      opts.SweepWorkers,
				DiscardCells: true,
				OnCell:       feed,
			}); err != nil && ctx.Err() == nil {
				return nil, err
			}
		}
	}

	res := col.Finish(time.Since(start))
	if m.Remaining() == 0 {
		if err := j.AppendDone(); err != nil {
			opts.RequestLog.Warn("sweep journal done append failed", "error", err)
		}
	} else if err := ctx.Err(); err != nil {
		res.Cancelled = true
		return res, err
	}
	return res, nil
}
