package serve

import (
	"net/http"
	"strconv"

	"repro/internal/metrics"
)

// Metrics is the HTTP layer's instrumentation: per-endpoint request
// outcomes, streaming volume, and the admission-control decisions that
// make load shedding observable.
type Metrics struct {
	// Requests counts finished requests by mounted endpoint and HTTP
	// status code (as written; a handler writing nothing counts as 200,
	// which is what net/http puts on the wire).
	Requests *metrics.CounterVec
	// SweepsInflight gauges sweeps currently streaming rows — local and
	// coordinator fan-out alike. It must read 0 after a drain.
	SweepsInflight *metrics.Gauge
	// Shed counts requests answered 503 + Retry-After by the admission
	// controller, by endpoint. Shed requests also land in Requests with
	// status 503.
	Shed *metrics.CounterVec
	// StreamRows counts NDJSON rows streamed by /v1/sweep, by row type
	// (cell, summary, error).
	StreamRows *metrics.CounterVec
	// RateLimited counts requests answered 429 + Retry-After by the
	// per-client rate limiter, by endpoint. They also land in Requests
	// with status 429.
	RateLimited *metrics.CounterVec
}

func newServeMetrics() *Metrics {
	sub := func(name, help string) metrics.Opts {
		return metrics.Opts{Namespace: "pp", Subsystem: "serve", Name: name, Help: help}
	}
	return &Metrics{
		Requests: metrics.NewCounterVec(
			sub("requests_total", "HTTP requests finished, by endpoint and status code."),
			[]string{"endpoint", "status"}),
		SweepsInflight: metrics.NewGauge(
			sub("sweeps_inflight", "Sweeps currently streaming rows.")),
		Shed: metrics.NewCounterVec(
			sub("shed_total", "Requests shed with 503 + Retry-After by admission control, by endpoint."),
			[]string{"endpoint"}),
		StreamRows: metrics.NewCounterVec(
			sub("stream_rows_total", "NDJSON rows streamed by /v1/sweep, by row type."),
			[]string{"type"}),
		RateLimited: metrics.NewCounterVec(
			sub("rate_limited_total", "Requests answered 429 + Retry-After by the per-client rate limiter, by endpoint."),
			[]string{"endpoint"}),
	}
}

// Collectors returns every collector of the set, for registration.
func (m *Metrics) Collectors() []metrics.Collector {
	return []metrics.Collector{m.Requests, m.SweepsInflight, m.Shed, m.StreamRows, m.RateLimited}
}

// Register registers the whole set into reg.
func (m *Metrics) Register(reg *metrics.Registry) {
	reg.MustRegister(m.Collectors()...)
}

// statusWriter records the status code a handler writes. Unwrap keeps
// http.NewResponseController working through the wrapper (the sweep
// handler flushes after every row).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// Status is the recorded code; a handler that wrote nothing reads as 200,
// matching what net/http sends for it.
func (sw *statusWriter) Status() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// instrumented wraps one endpoint's handler with the request counter.
func (m *Metrics) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		m.Requests.WithLabelValues(endpoint, strconv.Itoa(sw.Status())).Inc()
	}
}
