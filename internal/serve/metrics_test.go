package serve

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/metrics/testutil"
)

// TestMetricsShedIncrementsExactly503Counter: a shed analyze request lands
// in the shed counter for its endpoint (and nowhere else) and in the
// request counter under status 503.
func TestMetricsShedIncrementsExactly503Counter(t *testing.T) {
	eng := engine.New()
	eng.SetSlots(1)
	h, sm := newHandler(eng, Options{MaxQueue: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	occupy := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
			bytes.NewBufferString(spinnerAnalyze)).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	go occupy() // takes the slot
	go occupy() // queues
	deadline := time.Now().Add(30 * time.Second)
	for {
		busy, _, queued := eng.SlotStats()
		if busy == 1 && queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: busy=%d queued=%d", busy, queued)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/analyze",
		bytes.NewBufferString(spinnerAnalyze)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated analyze: status %d, want 503", rec.Code)
	}

	if got := testutil.ToFloat64(sm.Shed.WithLabelValues("/v1/analyze")); got != 1 {
		t.Errorf("shed{/v1/analyze} = %v, want 1", got)
	}
	if got := testutil.ToFloat64(sm.Shed.WithLabelValues("/v1/sweep")); got != 0 {
		t.Errorf("shed{/v1/sweep} = %v, want 0 — the shed must hit exactly its endpoint", got)
	}
	if got := testutil.ToFloat64(sm.Requests.WithLabelValues("/v1/analyze", "503")); got != 1 {
		t.Errorf("requests{/v1/analyze,503} = %v, want 1", got)
	}
	if got := sm.SweepsInflight.Value(); got != 0 {
		t.Errorf("sweeps_inflight = %v, want 0 — a shed sweep never starts", got)
	}
}

// TestMetricsSweepInflightAndRows drives a streaming sweep over a real
// listener: the in-flight gauge reads 1 while rows are flowing, drops back
// to 0 when the handler returns, and the row counter matches the stream
// row for row.
func TestMetricsSweepInflightAndRows(t *testing.T) {
	h, sm := newHandler(engine.New(), Options{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// The cells must cost real compute: with instant cells (e.g. bounds)
	// the whole stream fits the socket buffer and the handler can return
	// before the client reads row 1, so the mid-stream gauge read races.
	// Seeded simulate cells mean later rows don't exist yet when the first
	// one arrives — the handler is necessarily still in flight.
	spec := `{"name":"rows","protocols":[{"spec":"flock:{N}"}],"params":[{"from":3,"to":22}],` +
		`"kinds":["simulate"],"sizes":[128],"options":{"seed":5,"runs":1000}}`
	resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first row: %v", sc.Err())
	}
	// First row read, stream still open: the sweep is in flight.
	if got := sm.SweepsInflight.Value(); got != 1 {
		t.Errorf("sweeps_inflight mid-stream = %v, want 1", got)
	}
	rows := 1
	for sc.Scan() {
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 21 { // 20 cells + summary
		t.Fatalf("streamed %d rows, want 21", rows)
	}

	// The gauge must return to zero once the handler finishes (the last
	// byte can reach the client marginally before the deferred Dec runs).
	deadline := time.Now().Add(10 * time.Second)
	for sm.SweepsInflight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeps_inflight stuck at %v after stream end", sm.SweepsInflight.Value())
		}
		time.Sleep(2 * time.Millisecond)
	}

	want := `
		# HELP pp_serve_stream_rows_total NDJSON rows streamed by /v1/sweep, by row type.
		# TYPE pp_serve_stream_rows_total counter
		pp_serve_stream_rows_total{type="cell"} 20
		pp_serve_stream_rows_total{type="summary"} 1
	`
	if err := testutil.CollectAndCompare(sm.StreamRows, strings.NewReader(want)); err != nil {
		t.Error(err)
	}
}

// TestMetricsEndpointCounters pins the per-endpoint request counter across
// status classes: 200s, a 400, and a 404 heartbeat.
func TestMetricsEndpointCounters(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	h, sm := newHandler(engine.New(), Options{Cluster: coord})
	do := func(method, path, body string) {
		req := httptest.NewRequest(method, path, bytes.NewBufferString(body))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	do(http.MethodGet, "/healthz", "")
	do(http.MethodGet, "/v1/catalog", "")
	do(http.MethodPost, "/v1/analyze", `{"kind":"bounds","states":4}`)
	do(http.MethodPost, "/v1/analyze", `{"kind":"nope"}`)
	do(http.MethodPost, "/v1/cluster/heartbeat", `{"id":"ghost"}`)

	for _, c := range []struct {
		endpoint, status string
		want             float64
	}{
		{"/healthz", "200", 1},
		{"/v1/catalog", "200", 1},
		{"/v1/analyze", "200", 1},
		{"/v1/analyze", "400", 1},
		{"/v1/cluster/heartbeat", "404", 1},
	} {
		if got := testutil.ToFloat64(sm.Requests.WithLabelValues(c.endpoint, c.status)); got != c.want {
			t.Errorf("requests{%s,%s} = %v, want %v", c.endpoint, c.status, got, c.want)
		}
	}
}

// TestMetricsEndpointServesAllThreeLayers mounts GET /metrics and checks
// the exposition carries engine, serve and cluster families in one scrape,
// including the /metrics request itself being counted.
func TestMetricsEndpointServesAllThreeLayers(t *testing.T) {
	reg := metrics.NewRegistry()
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	coord.Register("w1", "http://w1")
	h := NewHandler(engine.New(), Options{Cluster: coord, Metrics: reg})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	vals, err := testutil.ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if vals[`pp_cluster_members{state="active"}`] != 1 {
		t.Errorf("cluster layer missing from scrape: %v", vals[`pp_cluster_members{state="active"}`])
	}
	if _, ok := vals["pp_engine_slots_capacity"]; !ok {
		t.Error("engine layer missing from scrape")
	}
	if _, ok := vals["pp_serve_sweeps_inflight"]; !ok {
		t.Error("serve layer missing from scrape")
	}

	// A second scrape sees the first one counted under its own endpoint.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	vals2, err := testutil.ParseText(rec2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if vals2[`pp_serve_requests_total{endpoint="/metrics",status="200"}`] != 1 {
		t.Error("the /metrics endpoint must count its own requests")
	}
}
