package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, *engine.Result) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var res engine.Result
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("decoding result: %v\n%s", err, rec.Body)
		}
	}
	return rec, &res
}

func TestAnalyzeSimulate(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	rec, res := post(t, h, "/v1/analyze",
		`{"kind":"simulate","protocol":{"spec":"flock:4"},"input":[8],"seed":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res.Simulation == nil || !res.Simulation.Converged || res.Simulation.Output != 1 {
		t.Fatalf("bad simulation result: %s", rec.Body)
	}
}

func TestAnalyzeVerify(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	rec, res := post(t, h, "/v1/analyze",
		`{"kind":"verify","protocol":{"spec":"majority"},"maxSize":6}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res.Verification == nil || !res.Verification.AllOK {
		t.Fatalf("bad verification result: %s", rec.Body)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	cases := map[string]struct {
		body string
		code int
	}{
		"malformed json": {`{"kind":`, http.StatusBadRequest},
		"unknown kind":   {`{"kind":"zzz"}`, http.StatusBadRequest},
		"bad spec":       {`{"kind":"stable","protocol":{"spec":"zzz"}}`, http.StatusBadRequest},
		"arity mismatch": {`{"kind":"simulate","protocol":{"spec":"majority"},"input":[4]}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		rec, _ := post(t, h, "/v1/analyze", tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.code, rec.Body)
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body missing: %s", name, rec.Body)
		}
	}
}

func TestAnalyzeTimeout(t *testing.T) {
	// A tiny server-side ceiling interrupts a long verification.
	h := NewHandler(engine.New(), Options{DefaultTimeout: 20 * time.Millisecond, MaxTimeout: 20 * time.Millisecond})
	rec, _ := post(t, h, "/v1/analyze",
		`{"kind":"verify","protocol":{"spec":"binary:12"},"maxSize":64,"timeoutMillis":600000}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", rec.Code, rec.Body)
	}
}

func TestCatalogAndHealth(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/catalog", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("catalog status %d", rec.Code)
	}
	var body struct {
		Specs   []string      `json:"specs"`
		Kinds   []engine.Kind `json:"kinds"`
		Catalog []struct {
			Key       string `json:"key"`
			Predicate string `json:"predicate"`
		} `json:"catalog"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Specs) == 0 || len(body.Kinds) != len(engine.Kinds) || len(body.Catalog) == 0 {
		t.Errorf("thin catalog: %s", rec.Body)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status %d", rec.Code)
	}

	// Method guards.
	req = httptest.NewRequest(http.MethodGet, "/v1/analyze", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze status %d, want 405", rec.Code)
	}
}

// TestConcurrentRequests drives the handler from many goroutines; identical
// stable requests must compute the analysis once (shared engine cache).
func TestConcurrentRequests(t *testing.T) {
	eng := engine.New()
	h := NewHandler(eng, Options{})
	const workers = 8
	var wg sync.WaitGroup
	codes := make([]int, workers)
	for i := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
				bytes.NewBufferString(`{"kind":"stable","protocol":{"spec":"binary:7"}}`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}()
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("worker %d: status %d", i, c)
		}
	}
	if n := eng.Computations(); n != 1 {
		t.Errorf("stable analysis computed %d times, want 1", n)
	}
}

// TestCatalogSpecsAreResolvable: every head token in the catalog's specs
// list must resolve (with a sample argument) via /v1/analyze — the field
// is machine-readable, not documentation.
func TestCatalogSpecsAreResolvable(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/catalog", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body struct {
		Specs []string `json:"specs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	args := map[string]string{
		"flock": ":3", "succinct": ":2", "binary": ":3", "leaderflock": ":2", "mod": ":3:1",
	}
	for _, head := range body.Specs {
		spec := head + args[head]
		rec, _ := post(t, h, "/v1/analyze", `{"kind":"bounds","protocol":{"spec":"`+spec+`"}}`)
		if rec.Code != http.StatusOK {
			t.Errorf("catalog spec %q does not resolve: %d %s", spec, rec.Code, rec.Body)
		}
	}
}

// --- /v1/sweep -------------------------------------------------------------

// sweepRows posts a sweep spec and decodes the NDJSON stream.
func sweepRows(t *testing.T, h http.Handler, spec string) (*httptest.ResponseRecorder, []SweepRow) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewBufferString(spec))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var rows []SweepRow
	dec := json.NewDecoder(rec.Body)
	for dec.More() {
		var row SweepRow
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("decoding NDJSON row %d: %v", len(rows), err)
		}
		rows = append(rows, row)
	}
	return rec, rows
}

// TestSweepStreams100Cells is the acceptance check: a ≥100-cell sweep runs
// over POST /v1/sweep and streams one NDJSON row per cell plus a summary.
func TestSweepStreams100Cells(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	spec := `{
	  "name": "bounds-scaling",
	  "kinds": ["bounds"],
	  "params": [{"from": 3, "to": 102}],
	  "maxCells": 200
	}`
	rec, rows := sweepRows(t, h, spec)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	if len(rows) != 101 {
		t.Fatalf("got %d rows, want 100 cells + summary", len(rows))
	}
	cells := 0
	for _, row := range rows[:100] {
		if row.Type != "cell" || row.Cell == nil {
			t.Fatalf("bad cell row: %+v", row)
		}
		if !row.Cell.OK || row.Cell.Result == nil || row.Cell.Result.Bounds == nil {
			t.Fatalf("cell %d did not produce bounds: %+v", row.Cell.Index, row.Cell)
		}
		cells++
	}
	last := rows[100]
	if last.Type != "summary" || last.Summary == nil {
		t.Fatalf("last row is not the summary: %+v", last)
	}
	if s := last.Summary; s.TotalCells != 100 || s.Completed != 100 || s.Failed != 0 || len(s.Cells) != 0 {
		t.Errorf("bad summary: %+v", last.Summary)
	}
}

func TestSweepBadSpecs(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	cases := map[string]string{
		"malformed json": `{"protocols":`,
		"unknown kind":   `{"protocols":[{"spec":"flock:3"}],"kinds":["zzz"]}`,
		"unknown field":  `{"protcols":[{"spec":"flock:3"}],"kinds":["stable"]}`,
		"cap overflow":   `{"protocols":[{"spec":"flock:{N}"}],"params":[{"from":1,"to":999}],"kinds":["stable"],"maxCells":10}`,
		"empty grid":     `{"protocols":[],"kinds":["stable"]}`,
	}
	for name, spec := range cases {
		rec, _ := sweepRows(t, h, spec)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body missing: %s", name, rec.Body)
		}
	}
}

// flushCountingWriter is a ResponseWriter that signals each written row, so
// a test can react to streaming progress deterministically.
type flushCountingWriter struct {
	mu     sync.Mutex
	header http.Header
	rows   int
	notify chan struct{}
}

func (w *flushCountingWriter) Header() http.Header { return w.header }
func (w *flushCountingWriter) WriteHeader(int)     {}
func (w *flushCountingWriter) Flush()              {}
func (w *flushCountingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.rows += bytes.Count(p, []byte("\n"))
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
	return len(p), nil
}
func (w *flushCountingWriter) writtenRows() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rows
}

// TestSweepClientDisconnectCancels: cancelling the request context after
// the first streamed row (what a dropped connection does) must stop the
// sweep: in-flight cells are interrupted and the rest never run.
func TestSweepClientDisconnectCancels(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	// 60 cells of a protocol that never converges, each burning a fixed
	// multi-million-interaction budget: un-cancelled, this sweep would run
	// for minutes.
	spec := `{
	  "name": "disconnect",
	  "protocols": [{"inline": {
	    "name": "spinner",
	    "states": [{"name": "a", "output": 0}, {"name": "b", "output": 1}],
	    "transitions": [["a","a","b","b"], ["b","b","a","a"]],
	    "inputs": {"x": "a"},
	    "completeWithIdentity": true
	  }}],
	  "kinds": ["simulate"],
	  "sizes": [100, 101, 102, 103, 104, 105, 106, 107, 108, 109,
	            110, 111, 112, 113, 114, 115, 116, 117, 118, 119,
	            120, 121, 122, 123, 124, 125, 126, 127, 128, 129,
	            130, 131, 132, 133, 134, 135, 136, 137, 138, 139,
	            140, 141, 142, 143, 144, 145, 146, 147, 148, 149,
	            150, 151, 152, 153, 154, 155, 156, 157, 158, 159],
	  "options": {"maxSteps": 5000000, "timeoutMillis": 600000}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewBufferString(spec)).WithContext(ctx)
	w := &flushCountingWriter{header: make(http.Header), notify: make(chan struct{}, 1)}

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, req)
	}()
	// Wait for the first streamed row, then "disconnect".
	select {
	case <-w.notify:
	case <-time.After(60 * time.Second):
		t.Fatal("no row streamed within 60s")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	// Far fewer than the 60 grid cells may have completed (the summary and
	// error rows also count lines, hence the slack).
	if rows := w.writtenRows(); rows >= 30 {
		t.Errorf("%d rows written after early disconnect, want far fewer than 60", rows)
	}
}
