package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, *engine.Result) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var res engine.Result
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("decoding result: %v\n%s", err, rec.Body)
		}
	}
	return rec, &res
}

func TestAnalyzeSimulate(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	rec, res := post(t, h, "/v1/analyze",
		`{"kind":"simulate","protocol":{"spec":"flock:4"},"input":[8],"seed":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res.Simulation == nil || !res.Simulation.Converged || res.Simulation.Output != 1 {
		t.Fatalf("bad simulation result: %s", rec.Body)
	}
}

func TestAnalyzeVerify(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	rec, res := post(t, h, "/v1/analyze",
		`{"kind":"verify","protocol":{"spec":"majority"},"maxSize":6}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if res.Verification == nil || !res.Verification.AllOK {
		t.Fatalf("bad verification result: %s", rec.Body)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	cases := map[string]struct {
		body string
		code int
	}{
		"malformed json": {`{"kind":`, http.StatusBadRequest},
		"unknown kind":   {`{"kind":"zzz"}`, http.StatusBadRequest},
		"bad spec":       {`{"kind":"stable","protocol":{"spec":"zzz"}}`, http.StatusBadRequest},
		"arity mismatch": {`{"kind":"simulate","protocol":{"spec":"majority"},"input":[4]}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		rec, _ := post(t, h, "/v1/analyze", tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.code, rec.Body)
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body missing: %s", name, rec.Body)
		}
	}
}

func TestAnalyzeTimeout(t *testing.T) {
	// A tiny server-side ceiling interrupts a long verification.
	h := NewHandler(engine.New(), Options{DefaultTimeout: 20 * time.Millisecond, MaxTimeout: 20 * time.Millisecond})
	rec, _ := post(t, h, "/v1/analyze",
		`{"kind":"verify","protocol":{"spec":"binary:12"},"maxSize":64,"timeoutMillis":600000}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", rec.Code, rec.Body)
	}
}

func TestCatalogAndHealth(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/catalog", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("catalog status %d", rec.Code)
	}
	var body struct {
		Specs   []string      `json:"specs"`
		Kinds   []engine.Kind `json:"kinds"`
		Catalog []struct {
			Key       string `json:"key"`
			Predicate string `json:"predicate"`
		} `json:"catalog"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Specs) == 0 || len(body.Kinds) != len(engine.Kinds) || len(body.Catalog) == 0 {
		t.Errorf("thin catalog: %s", rec.Body)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status %d", rec.Code)
	}

	// Method guards.
	req = httptest.NewRequest(http.MethodGet, "/v1/analyze", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze status %d, want 405", rec.Code)
	}
}

// TestConcurrentRequests drives the handler from many goroutines; identical
// stable requests must compute the analysis once (shared engine cache).
func TestConcurrentRequests(t *testing.T) {
	eng := engine.New()
	h := NewHandler(eng, Options{})
	const workers = 8
	var wg sync.WaitGroup
	codes := make([]int, workers)
	for i := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
				bytes.NewBufferString(`{"kind":"stable","protocol":{"spec":"binary:7"}}`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}()
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("worker %d: status %d", i, c)
		}
	}
	if n := eng.Computations(); n != 1 {
		t.Errorf("stable analysis computed %d times, want 1", n)
	}
}

// TestCatalogSpecsAreResolvable: every head token in the catalog's specs
// list must resolve (with a sample argument) via /v1/analyze — the field
// is machine-readable, not documentation.
func TestCatalogSpecsAreResolvable(t *testing.T) {
	h := NewHandler(engine.New(), Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/catalog", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body struct {
		Specs []string `json:"specs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	args := map[string]string{
		"flock": ":3", "succinct": ":2", "binary": ":3", "leaderflock": ":2", "mod": ":3:1",
	}
	for _, head := range body.Specs {
		spec := head + args[head]
		rec, _ := post(t, h, "/v1/analyze", `{"kind":"bounds","protocol":{"spec":"`+spec+`"}}`)
		if rec.Code != http.StatusOK {
			t.Errorf("catalog spec %q does not resolve: %d %s", spec, rec.Code, rec.Body)
		}
	}
}
