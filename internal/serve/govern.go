package serve

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
)

// clientKey identifies the client of a request for rate limiting and
// Retry-After jitter: the X-API-Key header when present (so a fleet
// behind one NAT can be told apart), else the remote IP.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds formats a delay as the integral Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// shedRetryAfter derives the Retry-After of a 503 shed from observed
// engine latency: the median of the request-latency histogram for the
// request's kind (vector-wide when the kind has no observations yet),
// clamped to [1s, 30s] — an honest "when might a slot be free" instead of
// a hardcoded constant. The result is stretched by a deterministic
// per-client jitter, the same construction as the cluster agent's
// registration backoff, so a shed client fleet retries fanned out rather
// than in lockstep.
func shedRetryAfter(eng *engine.Engine, kind, client string) time.Duration {
	lat := eng.Metrics().Latency
	var median float64
	if kind != "" {
		median = lat.WithLabelValues(kind).Quantile(0.5)
	}
	if median == 0 {
		median = lat.Quantile(0.5)
	}
	d := time.Duration(median * float64(time.Second))
	if d < time.Second {
		d = time.Second // no signal (or a very fast engine): the old default
	}
	if d > 30*time.Second {
		d = 30 * time.Second // the dispatcher clamps there anyway; so do we
	}
	return govern.Jitter(client, 0, d, 0.25)
}

// rateLimited wraps a public endpoint with per-client admission rate
// limiting: over-budget requests answer 429 with a Retry-After computed
// from the client's actual token refill time (jittered by the limiter).
// A nil limiter (rate limiting disabled) mounts the handler untouched.
func rateLimited(lim *govern.Limiter, sm *Metrics, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if lim == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ok, retry := lim.Allow(clientKey(r))
		if !ok {
			sm.RateLimited.WithLabelValues(endpoint).Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "rate limit exceeded; retry after the advertised delay"})
			return
		}
		h(w, r)
	}
}
