package serve

import (
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/store"
)

// TestFailpointMatrix drives the journaled, disk-backed sweep path under
// every durability failpoint and asserts the invariant the subsystems
// promise: injected faults degrade (recompute, skip a journal record,
// log) but never corrupt — the canonical output stays byte-identical to
// a fault-free run. Env-gated (PP_FAULT_MATRIX=1) because the global
// failpoint registry cannot be toggled while sibling tests run; CI runs
// it as its own job.
func TestFailpointMatrix(t *testing.T) {
	if os.Getenv("PP_FAULT_MATRIX") == "" {
		t.Skip("set PP_FAULT_MATRIX=1 to run the failpoint matrix")
	}
	baseline := canonicalNDJSON(t, sweepBody(t, NewHandler(engine.New(), Options{}), crashSpec))

	matrix := []string{
		faultinject.PointJournalAppend + "=every:5",
		faultinject.PointJournalSync + "=every:4",
		faultinject.PointStoreRead + "=every:3",
		faultinject.PointStoreWrite + "=every:3",
		faultinject.PointStoreRead + "=prob:0.3:7",
		faultinject.PointJournalAppend + "=every:6;" + faultinject.PointStoreWrite + "=every:4",
	}
	for _, schedule := range matrix {
		t.Run(schedule, func(t *testing.T) {
			if err := faultinject.Configure(schedule); err != nil {
				t.Fatal(err)
			}
			defer faultinject.Disable()

			js, err := journal.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			eng := engine.New()
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			eng.SetArtifactStore(st)
			got := canonicalNDJSON(t, sweepBody(t, NewHandler(eng, Options{Journal: js}), crashSpec))
			if got != baseline {
				t.Fatalf("canonical output corrupted under %s:\n--- want ---\n%s--- got ---\n%s",
					schedule, baseline, got)
			}
			for _, point := range []string{
				faultinject.PointJournalAppend, faultinject.PointJournalSync,
				faultinject.PointStoreRead, faultinject.PointStoreWrite,
			} {
				scheduled := strings.HasPrefix(schedule, point+"=") || strings.Contains(schedule, ";"+point+"=")
				if calls, fired := faultinject.Counts(point); scheduled && calls > 0 && fired == 0 {
					t.Errorf("failpoint %s saw %d calls but never fired", point, calls)
				}
			}
		})
	}
}
