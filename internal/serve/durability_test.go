package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/metrics/testutil"
	"repro/internal/store"
	"repro/internal/sweep"
)

// crashSpec is the resume test grid: deterministic analyses plus a
// seed-driven simulation axis, so byte-equality is a real claim about
// seed stability across the crash boundary, not just about static
// verdicts.
const crashSpec = `{
  "name": "crashtest",
  "protocols": [{"spec": "flock:{N}"}],
  "params": [{"from": 3, "to": 8}],
  "kinds": ["stable", "simulate"],
  "sizes": ["{N}+1"],
  "options": {"seed": 42}
}`

// canonicalNDJSON re-encodes a sweep stream with every volatile field
// zeroed — the byte-comparable form of a run.
func canonicalNDJSON(t *testing.T, body []byte) string {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(body))
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	enc.SetEscapeHTML(false)
	for {
		var row sweep.StreamRow
		err := dec.Decode(&row)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding stream: %v", err)
		}
		switch row.Type {
		case "cell":
			c := sweep.CanonicalCell(*row.Cell)
			row.Cell = &c
		case "summary":
			row.Summary = sweep.CanonicalResult(row.Summary)
		default:
			t.Fatalf("stream error row: %s", row.Error)
		}
		if err := enc.Encode(row); err != nil {
			t.Fatal(err)
		}
	}
	return out.String()
}

func sweepBody(t *testing.T, h http.Handler, spec string) []byte {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestJournaledSweepCrashResumeByteIdentical is the acceptance criterion
// of the durable journal: a sweep aborted mid-flight (the in-process
// stand-in for SIGKILL — the client connection drops, cancelling the run
// with the journal partially filled) and resubmitted against a fresh
// engine over the same journal directory produces a canonical NDJSON
// stream byte-identical to a never-interrupted run's. Retention passes
// race both phases: an aggressive Compact between crash and resume must
// leave the in-progress WAL untouched, and a Compact after completion
// stubs the WAL so a further resubmission re-executes the grid — still
// byte-identically.
func TestJournaledSweepCrashResumeByteIdentical(t *testing.T) {
	baseline := canonicalNDJSON(t, sweepBody(t, NewHandler(engine.New(), Options{}), crashSpec))
	if n := strings.Count(baseline, "\n"); n != 13 { // 12 cells + summary
		t.Fatalf("baseline has %d rows, want 13", n)
	}

	dir := t.TempDir()
	js, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(engine.New(), Options{Journal: js}))
	resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(crashSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Read a few rows, then kill the connection mid-sweep. Closing the
	// body cancels the request context; srv.Close waits for the handler to
	// unwind, so the journal file is released before the restart.
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 4; i++ {
		var row sweep.StreamRow
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("reading row %d: %v", i, err)
		}
	}
	resp.Body.Close()
	srv.Close()

	// The dropped connection races the final cells, so the WAL may or may
	// not carry its done record. When the crash truly landed mid-flight,
	// run maximum-aggression retention against it: no done record, so
	// neither age nor size budget may touch it and replay must survive
	// intact. (The done outcome is exercised by the stub-and-reexecute
	// phase at the end of this test.)
	spec, err := sweep.ParseSpec([]byte(crashSpec))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sweep.SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := js.Sweep(hash)
	if err != nil {
		t.Fatal(err)
	}
	wasDone := probe.Done()
	probe.Close()
	if !wasDone {
		if stats, err := js.Compact(journal.Retention{Retain: time.Nanosecond, MaxBytes: 1}); err != nil {
			t.Fatal(err)
		} else if stats.Compacted != 0 || stats.Removed != 0 {
			t.Fatalf("compaction touched an in-progress WAL: %+v", stats)
		}
	}

	js2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := canonicalNDJSON(t, sweepBody(t, NewHandler(engine.New(), Options{Journal: js2}), crashSpec))
	if replayed := testutil.ToFloat64(js2.Metrics().ReplayedCells); replayed < 4 {
		t.Fatalf("resume replayed %v cells, want >= 4", replayed)
	}
	if resumed != baseline {
		t.Fatalf("resumed canonical stream differs from baseline:\n--- baseline ---\n%s--- resumed ---\n%s", baseline, resumed)
	}

	// Now the sweep is done: compaction stubs its WAL, and resubmitting the
	// compacted spec re-executes the whole grid to the same bytes.
	stats, err := js2.Compact(journal.Retention{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted != 1 {
		t.Fatalf("post-completion compaction stats = %+v, want 1 stub", stats)
	}
	js3, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	recomputed := canonicalNDJSON(t, sweepBody(t, NewHandler(eng, Options{Journal: js3}), crashSpec))
	if recomputed != baseline {
		t.Fatalf("post-compaction rerun differs from baseline:\n--- baseline ---\n%s--- rerun ---\n%s", baseline, recomputed)
	}
	if eng.Computations() == 0 {
		t.Fatal("post-compaction rerun executed nothing; the stub should have forced recomputation")
	}
}

// TestJournaledSweepFullyReplayed: resubmitting a completed sweep executes
// nothing — the whole stream (and its summary) comes off the journal.
func TestJournaledSweepFullyReplayed(t *testing.T) {
	dir := t.TempDir()
	js, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	baseline := canonicalNDJSON(t, sweepBody(t, NewHandler(engine.New(), Options{Journal: js}), crashSpec))

	js2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	replayed := canonicalNDJSON(t, sweepBody(t, NewHandler(eng, Options{Journal: js2}), crashSpec))
	if replayed != baseline {
		t.Fatal("fully-replayed stream differs from the original")
	}
	if got := eng.Computations(); got != 0 {
		t.Fatalf("full replay still ran %d computations", got)
	}
}

// TestJournaledSweepConflict: the same spec submitted twice concurrently
// answers 409 on the second, instead of interleaving one journal file.
func TestJournaledSweepConflict(t *testing.T) {
	js, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(engine.New(), Options{Journal: js})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Hold the spec's journal open, as an in-flight run of it would.
	spec, err := sweep.ParseSpec([]byte(crashSpec))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sweep.SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	held, err := js.Sweep(hash)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()

	dup, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(crashSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer dup.Body.Close()
	if dup.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate in-flight sweep got status %d, want 409", dup.StatusCode)
	}
}

// TestArtifactEndpoint pins the peer-fetch wire format: a served artifact
// round-trips the CRC frame and decodes into the payload ArtifactBytes
// returns; unknown kinds and absent hashes are 404.
func TestArtifactEndpoint(t *testing.T) {
	eng := engine.New()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetArtifactStore(st)
	h := NewHandler(eng, Options{})
	_, res := post(t, h, "/v1/analyze", `{"kind":"stable","protocol":{"spec":"binary:5"}}`)
	hash := res.Protocol.Hash

	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/artifacts/stable/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := store.Decode(raw)
	if err != nil {
		t.Fatalf("served artifact frame invalid: %v", err)
	}
	want, ok, err := eng.ArtifactBytes(t.Context(), "stable", hash)
	if err != nil || !ok {
		t.Fatalf("ArtifactBytes: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(payload, want) {
		t.Fatal("served artifact differs from the engine's encoding")
	}

	for _, path := range []string{
		"/v1/artifacts/stable/deadbeef",
		"/v1/artifacts/nosuchkind/" + hash,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
