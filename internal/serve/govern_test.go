package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics/testutil"
)

// TestRateLimit429 pins the per-client limiter's contract: a client that
// exhausts its burst gets 429 with a Retry-After derived from its actual
// refill time and the JSON error envelope, the denial lands in both the
// rate-limit counter and the request counter, and a different client (a
// distinct API key) is admitted untouched.
func TestRateLimit429(t *testing.T) {
	// Rate slow enough that the bucket cannot refill mid-test.
	h, sm := newHandler(engine.New(), Options{RateLimit: 0.01, RateBurst: 2})
	analyze := `{"kind":"stable","protocol":{"spec":"flock:3"}}`
	send := func(apiKey string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewBufferString(analyze))
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	// httptest requests share RemoteAddr 192.0.2.1:1234 — one client.
	for i := 0; i < 2; i++ {
		if rec := send(""); rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := send("")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body is not the JSON error envelope: %s", rec.Body)
	}
	if got := testutil.ToFloat64(sm.RateLimited.WithLabelValues("/v1/analyze")); got != 1 {
		t.Errorf("pp_serve_rate_limited_total{/v1/analyze} = %v, want 1", got)
	}
	if got := testutil.ToFloat64(sm.Requests.WithLabelValues("/v1/analyze", "429")); got != 1 {
		t.Errorf("pp_serve_requests_total{/v1/analyze,429} = %v, want 1", got)
	}

	// A different API key is a different bucket: admitted immediately.
	if rec := send("other-tenant"); rec.Code != http.StatusOK {
		t.Errorf("distinct client caught by another client's limit: status %d", rec.Code)
	}
}

// TestRateLimitExemptions: cluster-internal endpoints and probes bypass the
// limiter entirely — a coordinator must never 429 its own workers' leases
// or peer artifact fetches, and health/metrics scrapes stay unconditional.
func TestRateLimitExemptions(t *testing.T) {
	js := `{"id":"w1","url":"http://127.0.0.1:1"}`
	h, _ := newHandler(engine.New(), Options{RateLimit: 0.01, RateBurst: 1})
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz %d: status %d, want always-200", i, rec.Code)
		}
	}
	// Without Options.Cluster the endpoint is unmounted (404) — but it must
	// not be 429: the limiter sits on public endpoints only.
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/cluster/register", bytes.NewBufferString(js)))
		if rec.Code == http.StatusTooManyRequests {
			t.Fatalf("cluster endpoint rate-limited on request %d", i)
		}
	}
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/artifacts/stable/deadbeef", nil))
		if rec.Code == http.StatusTooManyRequests {
			t.Fatalf("artifact endpoint rate-limited on request %d", i)
		}
	}

	// The public catalog endpoint, by contrast, is governed.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/catalog", nil))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/catalog", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second catalog request: status %d, want 429", rec.Code)
	}
}

// TestShedRetryAfterFromLatency pins the 503 Retry-After derivation: the
// per-kind latency median when the kind has signal, the vector-wide median
// as fallback, 1s with no signal at all, a 30s ceiling — each stretched by
// at most the 25% deterministic per-client jitter.
func TestShedRetryAfterFromLatency(t *testing.T) {
	within := func(d, lo, hi time.Duration) bool { return d >= lo && d < hi }

	// No observations: the 1s floor.
	eng := engine.New()
	if d := shedRetryAfter(eng, "stable", "client-a"); !within(d, time.Second, 1250*time.Millisecond) {
		t.Errorf("no-signal Retry-After = %v, want [1s, 1.25s)", d)
	}

	// Four 3s observations under "simulate": its median interpolates to 3s
	// inside the (1,5] bucket.
	for i := 0; i < 4; i++ {
		eng.Metrics().Latency.WithLabelValues("simulate").Observe(3.0)
	}
	if d := shedRetryAfter(eng, "simulate", "client-a"); !within(d, 3*time.Second, 3750*time.Millisecond) {
		t.Errorf("per-kind Retry-After = %v, want [3s, 3.75s)", d)
	}
	// A kind with no observations falls back to the vector-wide median.
	if d := shedRetryAfter(eng, "stable", "client-a"); !within(d, 3*time.Second, 3750*time.Millisecond) {
		t.Errorf("fallback Retry-After = %v, want [3s, 3.75s)", d)
	}

	// Pathological latency clamps at 30s before the jitter stretch.
	slow := engine.New()
	for i := 0; i < 4; i++ {
		slow.Metrics().Latency.WithLabelValues("simulate").Observe(100)
	}
	if d := shedRetryAfter(slow, "simulate", "client-a"); !within(d, 30*time.Second, 37500*time.Millisecond) {
		t.Errorf("clamped Retry-After = %v, want [30s, 37.5s)", d)
	}

	// Deterministic per-client: same client same delay, distinct clients
	// (almost surely) fan out.
	if a, b := shedRetryAfter(eng, "simulate", "client-a"), shedRetryAfter(eng, "simulate", "client-a"); a != b {
		t.Errorf("jitter not deterministic per client: %v vs %v", a, b)
	}

	// The header formatting both 429 and 503 share: whole seconds, rounded
	// up, never below 1.
	for _, c := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {300 * time.Millisecond, "1"}, {time.Second, "1"},
		{1100 * time.Millisecond, "2"}, {30 * time.Second, "30"},
	} {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
