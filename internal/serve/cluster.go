package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/cluster"
)

// mountCluster adds the coordinator's membership endpoints:
//
//	POST /v1/cluster/register    {id, url} → {ttlMillis, epoch}
//	POST /v1/cluster/heartbeat   {id, drain} → {ttlMillis, epoch} | 404
//	POST /v1/cluster/deregister  {id} → {} (idempotent)
//	GET  /v1/cluster/members     → {workers: [...]}
func mountCluster(mux *http.ServeMux, opts Options) {
	coord := opts.Cluster
	mux.HandleFunc("POST /v1/cluster/register", opts.sm.instrumented("/v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		var req cluster.RegisterRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
			return
		}
		if req.ID == "" || !strings.HasPrefix(req.URL, "http") {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "register requires id and an http(s) url"})
			return
		}
		wk := coord.Register(req.ID, strings.TrimSuffix(req.URL, "/"))
		opts.RequestLog.Info("cluster member registered",
			"worker", wk.ID, "url", wk.URL, "epoch", wk.Epoch)
		writeJSON(w, http.StatusOK, cluster.Lease{
			TTLMillis: coord.TTL().Milliseconds(),
			Epoch:     wk.Epoch,
		})
	}))
	mux.HandleFunc("POST /v1/cluster/heartbeat", opts.sm.instrumented("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req cluster.HeartbeatRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
			return
		}
		wk, err := coord.Heartbeat(req.ID, req.Drain)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		if req.Drain {
			opts.RequestLog.Info("cluster member draining", "worker", wk.ID)
		}
		writeJSON(w, http.StatusOK, cluster.Lease{
			TTLMillis: coord.TTL().Milliseconds(),
			Epoch:     wk.Epoch,
		})
	}))
	mux.HandleFunc("POST /v1/cluster/deregister", opts.sm.instrumented("/v1/cluster/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req cluster.HeartbeatRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
			return
		}
		coord.Deregister(req.ID)
		opts.RequestLog.Info("cluster member deregistered", "worker", req.ID)
		writeJSON(w, http.StatusOK, struct{}{})
	}))
	mux.HandleFunc("GET /v1/cluster/members", opts.sm.instrumented("/v1/cluster/members", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]cluster.Worker{"workers": coord.Members()})
	}))
}
