// Package serve is the HTTP front-end of the analysis engine: a handler
// exposing the typed Request/Result model as a JSON API. The ppserve
// command wraps it in a daemon; tests and examples mount it in-process.
//
// Endpoints:
//
//	POST /v1/analyze   run one engine.Request, respond with engine.Result
//	POST /v1/sweep     run a sweep.Spec, streaming NDJSON (one row per cell)
//	GET  /v1/catalog   list resolvable specs and the built-in protocol zoo
//	GET  /healthz      liveness probe
//
// Requests run concurrently (one goroutine per connection, standard
// net/http) against a shared engine, whose artifact cache makes repeated
// analyses of the same protocol near-free. Every analyze request gets a
// deadline: its own TimeoutMillis if set (clamped to MaxTimeout), else
// DefaultTimeout. Sweeps run under SweepTimeout and stream one JSON row
// per completed cell followed by a summary row, so even a very large grid
// is observable and interruptible mid-flight — closing the connection
// cancels in-flight cells and skips the rest.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/protocols"
	"repro/internal/sweep"
)

// Options configures the handler.
type Options struct {
	// DefaultTimeout is the per-request deadline when the request does not
	// set TimeoutMillis. 0 means 30 seconds.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines. 0 means 2 minutes.
	MaxTimeout time.Duration
	// SweepTimeout bounds a whole /v1/sweep request. 0 means 10 minutes.
	SweepTimeout time.Duration
	// SweepWorkers is the worker-pool size of each sweep (0 = GOMAXPROCS).
	SweepWorkers int
	// StableWorkers shards each stable-set analysis fixpoint across this
	// many goroutines (0 = sequential). Applied to the engine by
	// NewHandler; parallel analyses are bit-identical to sequential ones,
	// so the artifact cache is unaffected by the setting.
	StableWorkers int
	// Cluster, when set, makes this handler a cluster coordinator: the
	// membership endpoints (/v1/cluster/*) are mounted and /v1/sweep fans
	// out across the registered workers (falling back to local execution
	// when none are live).
	Cluster *cluster.Coordinator
	// ClusterDispatch tunes coordinator fan-out (range size, deadlines,
	// attempts). LocalEngine, OnCell and the stream wiring are always
	// supplied by the handler.
	ClusterDispatch cluster.DispatchOptions
	// RequestLog, when set, emits one structured line per request (kind,
	// protocol hash, duration, status, cache hit) and per cluster
	// membership event.
	RequestLog *slog.Logger
	// Journal, when set, makes every /v1/sweep durable: dispatched ranges
	// and completed cells are logged to a per-spec write-ahead file, and a
	// resubmitted spec (same content hash) replays its journaled cells and
	// executes only the rest — crash recovery with byte-identical canonical
	// output. A spec whose journal is already being written concurrently is
	// answered 409.
	Journal *journal.Store
	// MaxQueue bounds admission when every engine execution slot is busy:
	// once MaxQueue requests are already waiting for a slot, further
	// /v1/analyze and local /v1/sweep requests are shed with 503 +
	// Retry-After instead of queueing without bound. 0 means twice the slot
	// capacity; -1 disables shedding.
	MaxQueue int
	// RateLimit enables per-client admission rate limiting on the public
	// endpoints (/v1/analyze, /v1/sweep, /v1/catalog): each client — keyed
	// by X-API-Key, else remote IP — gets a token bucket refilling
	// RateLimit requests/second. Over-budget requests answer 429 with a
	// Retry-After computed from the bucket's actual refill time,
	// deterministically jittered per client. Cluster-internal endpoints
	// (/v1/cluster/*, /v1/artifacts) and probes (/healthz, /metrics) are
	// exempt — a worker must never rate-limit its coordinator. 0 disables.
	RateLimit float64
	// RateBurst is the limiter's bucket size — how many back-to-back
	// requests a quiet client may issue (0 = max(1, 2×RateLimit)).
	RateBurst int
	// Metrics, when set, mounts GET /metrics serving this registry in the
	// Prometheus text exposition format, with the engine's, this handler's
	// and (under Cluster) the coordinator's collectors registered into it.
	// Each registry can back at most one handler: family names collide on
	// a second registration.
	Metrics *metrics.Registry

	// sm is the handler's instrumentation, created by NewHandler whether
	// or not Metrics exports it.
	sm *Metrics
}

func (o Options) withDefaults() Options {
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.DefaultTimeout > o.MaxTimeout {
		o.DefaultTimeout = o.MaxTimeout
	}
	if o.SweepTimeout <= 0 {
		o.SweepTimeout = 10 * time.Minute
	}
	if o.RequestLog == nil {
		o.RequestLog = slog.New(slog.DiscardHandler)
	}
	return o
}

// shed applies fail-fast admission control: when every engine execution
// slot is busy and the waiting queue is at its bound, the request is
// answered 503 + Retry-After immediately instead of queueing without
// bound. The Retry-After is the median observed latency of the request's
// kind (see shedRetryAfter), so the hint tracks how long a slot actually
// takes to free up. The cluster dispatcher understands the 503 as
// backpressure and retries the range on the same worker after the delay.
func shed(eng *engine.Engine, opts Options, endpoint, kind string, w http.ResponseWriter, r *http.Request) bool {
	if opts.MaxQueue < 0 {
		return false
	}
	busy, capacity, queued := eng.SlotStats()
	maxQueue := opts.MaxQueue
	if maxQueue == 0 {
		maxQueue = 2 * capacity
	}
	if busy < capacity || queued < maxQueue {
		return false
	}
	opts.sm.Shed.WithLabelValues(endpoint).Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(shedRetryAfter(eng, kind, clientKey(r))))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error: fmt.Sprintf("saturated: %d/%d slots busy, %d queued", busy, capacity, queued),
	})
	return true
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// catalogEntry describes one zoo protocol in the catalog response.
type catalogEntry struct {
	Key         string `json:"key"`
	Name        string `json:"name"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Inputs      int    `json:"inputs"`
	Leaderless  bool   `json:"leaderless"`
	Predicate   string `json:"predicate"`
}

// catalogBody is the /v1/catalog response.
type catalogBody struct {
	// Specs lists the resolvable spec head tokens (builtin plus
	// user-registered constructor names); each is a valid spec prefix.
	Specs []string `json:"specs"`
	// SpecUsage documents the argument grammar of the builtin specs
	// ("flock:η", "mod:m:r[,r...]", ...). Entries are usage templates,
	// not resolvable specs.
	SpecUsage []string `json:"specUsage"`
	// Kinds lists the analysis kinds /v1/analyze accepts.
	Kinds []engine.Kind `json:"kinds"`
	// Catalog is the built-in protocol collection.
	Catalog []catalogEntry `json:"catalog"`
}

// NewHandler mounts the API on a fresh mux backed by eng. A positive
// Options.StableWorkers is applied to eng. When Options.Metrics is set,
// GET /metrics serves the registry with the engine's, the handler's and
// (under Cluster) the coordinator's collectors registered.
func NewHandler(eng *engine.Engine, opts Options) http.Handler {
	h, _ := newHandler(eng, opts)
	return h
}

// newHandler is NewHandler plus the handler's own instrumentation, which
// in-package tests assert against directly.
func newHandler(eng *engine.Engine, opts Options) (http.Handler, *Metrics) {
	opts = opts.withDefaults()
	if opts.StableWorkers > 0 {
		eng.SetStableWorkers(opts.StableWorkers)
	}
	sm := newServeMetrics()
	opts.sm = sm
	var lim *govern.Limiter
	if opts.RateLimit > 0 {
		lim = govern.NewLimiter(govern.LimiterOptions{Rate: opts.RateLimit, Burst: float64(opts.RateBurst)})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", sm.instrumented("/v1/analyze", rateLimited(lim, sm, "/v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		handleAnalyze(eng, opts, w, r)
	})))
	mux.HandleFunc("POST /v1/sweep", sm.instrumented("/v1/sweep", rateLimited(lim, sm, "/v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		handleSweep(eng, opts, w, r)
	})))
	mux.HandleFunc("GET /v1/catalog", sm.instrumented("/v1/catalog", rateLimited(lim, sm, "/v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		handleCatalog(eng, w)
	})))
	mux.HandleFunc("GET /healthz", sm.instrumented("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	mux.HandleFunc("GET /v1/artifacts/{kind}/{hash}", sm.instrumented("/v1/artifacts", func(w http.ResponseWriter, r *http.Request) {
		handleArtifact(eng, opts, w, r)
	}))
	if opts.Cluster != nil {
		mountCluster(mux, opts)
	}
	if opts.Metrics != nil {
		eng.Metrics().Register(opts.Metrics)
		sm.Register(opts.Metrics)
		if opts.Cluster != nil {
			opts.Cluster.Metrics().Register(opts.Metrics)
		}
		if st := eng.ArtifactStore(); st != nil {
			st.Metrics().Register(opts.Metrics)
		}
		if opts.Journal != nil {
			opts.Journal.Metrics().Register(opts.Metrics)
		}
		mux.Handle("GET /metrics", sm.instrumented("/metrics", opts.Metrics.Handler().ServeHTTP))
	}
	return mux, sm
}

func handleAnalyze(eng *engine.Engine, opts Options, w http.ResponseWriter, r *http.Request) {
	var req engine.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if shed(eng, opts, "/v1/analyze", string(req.Kind), w, r) {
		opts.RequestLog.Warn("request shed", "path", "/v1/analyze", "kind", req.Kind)
		return
	}

	timeout := opts.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > opts.MaxTimeout {
		timeout = opts.MaxTimeout
	}
	// The engine applies TimeoutMillis itself, but clamping here enforces
	// the server-side ceiling whatever the request asked for.
	req.TimeoutMillis = 0
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, err := eng.Do(ctx, req)
	status := http.StatusOK
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, engine.ErrBadRequest):
		status = http.StatusBadRequest
		writeJSON(w, status, errorBody{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		writeJSON(w, status, errorBody{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful to write.
		status = 0
	default:
		status = http.StatusInternalServerError
		writeJSON(w, status, errorBody{Error: err.Error()})
	}

	attrs := []any{
		"path", "/v1/analyze",
		"kind", req.Kind,
		"status", status,
		"durationMillis", time.Since(start).Milliseconds(),
	}
	if res != nil {
		if res.Protocol != nil {
			attrs = append(attrs, "protocol", res.Protocol.Hash)
		}
		attrs = append(attrs, "cacheHit", res.CacheHit)
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	opts.RequestLog.Info("analyze", attrs...)
}

// SweepRow is one NDJSON row of a /v1/sweep response stream; see
// sweep.StreamRow (the type moved so the cluster dispatcher can speak the
// same wire format without importing this package).
type SweepRow = sweep.StreamRow

// handleSweep streams a sweep: the spec is validated and expanded up
// front (client errors are plain 400 JSON), then rows flow as cells
// complete. Cancellation is end to end: when the client disconnects, the
// request context cancels the sweep, which interrupts in-flight cells and
// skips the rest.
func handleSweep(eng *engine.Engine, opts Options, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading request: %v", err)})
		return
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	mode := "local"
	if opts.Cluster != nil {
		mode = "cluster"
	} else if shed(eng, opts, "/v1/sweep", "", w, r) {
		// Coordinators never shed sweeps: fan-out is network-bound, and the
		// workers' own 503s already backpressure the dispatcher.
		opts.RequestLog.Warn("request shed", "path", "/v1/sweep", "sweep", spec.Name)
		return
	}
	// Open the journal before the 200 commits: a concurrent duplicate
	// submission of the same spec must fail as a plain 409, not corrupt
	// the write-ahead file mid-stream.
	var jsweep *journal.Sweep
	if opts.Journal != nil {
		specHash, herr := sweep.SpecHash(spec)
		if herr != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: herr.Error()})
			return
		}
		jsweep, err = opts.Journal.Sweep(specHash)
		if err != nil {
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
			return
		}
		defer jsweep.Close()
	}
	opts.sm.SweepsInflight.Inc()
	defer opts.sm.SweepsInflight.Dec()
	ctx, cancel := context.WithTimeout(r.Context(), opts.SweepTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Push the 200 + content type out before the first cell completes:
	// streaming clients (and the cluster dispatcher) should not wait on a
	// slow first cell to learn the request was accepted.
	_ = rc.Flush()
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	writeRow := func(row SweepRow) {
		// Write errors mean the client went away; the context will cancel
		// the sweep, so there is nothing to handle here.
		opts.sm.StreamRows.WithLabelValues(row.Type).Inc()
		_ = enc.Encode(row)
		_ = rc.Flush()
	}
	onCell := func(cr sweep.CellResult) { writeRow(SweepRow{Type: "cell", Cell: &cr}) }

	start := time.Now()
	var res *sweep.Result
	if jsweep != nil {
		res, err = runSweepJournaled(ctx, eng, opts, spec, jsweep, onCell)
	} else if opts.Cluster != nil {
		dopts := opts.ClusterDispatch
		dopts.LocalEngine = eng
		dopts.LocalWorkers = opts.SweepWorkers
		dopts.DiscardCells = true
		dopts.OnCell = onCell
		if dopts.Log == nil {
			dopts.Log = opts.RequestLog
		}
		res, err = opts.Cluster.Sweep(ctx, spec, dopts)
	} else {
		// DiscardCells keeps server memory flat on huge grids: each cell was
		// already streamed, so the summary row carries aggregates only.
		res, err = sweep.Run(ctx, eng, spec, sweep.RunOptions{
			Workers:      opts.SweepWorkers,
			DiscardCells: true,
			OnCell:       onCell,
		})
	}
	if res == nil {
		// Only reachable if re-expansion fails, which ParseSpec precludes;
		// report it as a stream row since the 200 header is already out.
		writeRow(SweepRow{Type: "error", Error: err.Error()})
		opts.RequestLog.Info("sweep", "path", "/v1/sweep", "sweep", spec.Name,
			"mode", mode, "status", http.StatusOK, "error", err.Error())
		return
	}
	// On cancellation or timeout the partial summary still goes out
	// (harmless if the client is gone).
	writeRow(SweepRow{Type: "summary", Summary: res})
	opts.RequestLog.Info("sweep",
		"path", "/v1/sweep",
		"sweep", spec.Name,
		"mode", mode,
		"cells", res.TotalCells,
		"completed", res.Completed,
		"failed", res.Failed,
		"status", http.StatusOK,
		"durationMillis", time.Since(start).Milliseconds(),
	)
}

func handleCatalog(eng *engine.Engine, w http.ResponseWriter) {
	body := catalogBody{
		Specs:     eng.Registry().Names(),
		SpecUsage: protocols.SpecHelp(),
		Kinds:     engine.Kinds,
	}
	cat := protocols.Catalog()
	keys := make([]string, 0, len(cat))
	for k := range cat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := cat[k]
		body.Catalog = append(body.Catalog, catalogEntry{
			Key:         k,
			Name:        e.Protocol.Name(),
			States:      e.Protocol.NumStates(),
			Transitions: e.Protocol.NumTransitions(),
			Inputs:      e.Protocol.NumInputs(),
			Leaderless:  e.Protocol.Leaderless(),
			Predicate:   e.Pred.String(),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
