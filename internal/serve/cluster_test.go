package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sweep"
)

// spinnerAnalyze is a simulate request that burns a large fixed interaction
// budget without converging — a slot-occupying request for the shed tests.
const spinnerAnalyze = `{
  "kind": "simulate",
  "protocol": {"inline": {
    "name": "spinner",
    "states": [{"name": "a", "output": 0}, {"name": "b", "output": 1}],
    "transitions": [["a","a","b","b"], ["b","b","a","a"]],
    "inputs": {"x": "a"},
    "completeWithIdentity": true
  }},
  "input": [200],
  "maxSteps": 2000000000
}`

// TestShedWhenSaturated: with one execution slot busy and the waiting queue
// at its bound, further requests get an immediate 503 with Retry-After —
// fail-fast admission control instead of unbounded queueing.
func TestShedWhenSaturated(t *testing.T) {
	eng := engine.New()
	eng.SetSlots(1)
	h := NewHandler(eng, Options{MaxQueue: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	occupy := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze",
			bytes.NewBufferString(spinnerAnalyze)).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	go occupy() // takes the slot
	go occupy() // queues
	deadline := time.Now().Add(30 * time.Second)
	for {
		busy, _, queued := eng.SlotStats()
		if busy == 1 && queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: busy=%d queued=%d", busy, queued)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec, _ := post(t, h, "/v1/analyze", spinnerAnalyze)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated analyze: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response must carry Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Errorf("503 body is not the JSON error envelope: %s", rec.Body)
	}

	// Local sweeps shed under the same condition.
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		bytes.NewBufferString(`{"kinds":["bounds"],"params":[3]}`))
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	if srec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated sweep: status %d, want 503", srec.Code)
	}

	// MaxQueue -1 disables shedding: the request queues instead (it would
	// block, so just check the admission decision directly).
	noShed := Options{MaxQueue: -1}.withDefaults()
	noShed.sm = newServeMetrics()
	if shed(eng, noShed, "/v1/analyze", "stable", httptest.NewRecorder(),
		httptest.NewRequest(http.MethodPost, "/v1/analyze", nil)) {
		t.Error("MaxQueue -1 must never shed")
	}
}

// TestClusterEndpoints drives the membership API over HTTP: register,
// heartbeat, drain, members, deregister, and the 404 rejoin signal.
func TestClusterEndpoints(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	h := NewHandler(engine.New(), Options{Cluster: coord})

	postJSON := func(path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	rec := postJSON("/v1/cluster/register", `{"id":"w1","url":"http://127.0.0.1:1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body)
	}
	var lease cluster.Lease
	if err := json.Unmarshal(rec.Body.Bytes(), &lease); err != nil {
		t.Fatal(err)
	}
	if lease.TTLMillis != cluster.DefaultTTL.Milliseconds() || lease.Epoch != 1 {
		t.Fatalf("lease: %+v", lease)
	}

	for _, bad := range []string{`{"id":"","url":"http://x"}`, `{"id":"w2","url":"ftp://x"}`, `{`} {
		if rec := postJSON("/v1/cluster/register", bad); rec.Code != http.StatusBadRequest {
			t.Errorf("register %s: status %d, want 400", bad, rec.Code)
		}
	}

	if rec := postJSON("/v1/cluster/heartbeat", `{"id":"w1"}`); rec.Code != http.StatusOK {
		t.Fatalf("heartbeat: status %d", rec.Code)
	}
	// Unknown worker → 404, the re-register signal.
	if rec := postJSON("/v1/cluster/heartbeat", `{"id":"ghost"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown heartbeat: status %d, want 404", rec.Code)
	}

	// Drain via heartbeat: still a member, no longer live.
	if rec := postJSON("/v1/cluster/heartbeat", `{"id":"w1","drain":true}`); rec.Code != http.StatusOK {
		t.Fatalf("drain heartbeat: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster/members", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	var members struct {
		Workers []cluster.Worker `json:"workers"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &members); err != nil {
		t.Fatal(err)
	}
	if len(members.Workers) != 1 || members.Workers[0].State != cluster.StateDraining {
		t.Fatalf("members after drain: %+v", members.Workers)
	}

	if rec := postJSON("/v1/cluster/deregister", `{"id":"w1"}`); rec.Code != http.StatusOK {
		t.Fatalf("deregister: status %d", rec.Code)
	}
	if coord.Alive("w1") {
		t.Error("deregistered worker still alive")
	}

	// A non-coordinator handler does not mount the endpoints at all.
	plain := NewHandler(engine.New(), Options{})
	req = httptest.NewRequest(http.MethodPost, "/v1/cluster/register",
		bytes.NewBufferString(`{"id":"w1","url":"http://x"}`))
	prec := httptest.NewRecorder()
	plain.ServeHTTP(prec, req)
	if prec.Code == http.StatusOK {
		t.Error("cluster endpoints must not exist without Options.Cluster")
	}
}

// TestCoordinatorSweepOverHTTP is the serve-layer end-to-end: two real
// worker servers register with a coordinator handler, a sweep POSTed to the
// coordinator streams grid-ordered rows, and the canonical stream equals
// the one a plain local handler produces for the same spec.
func TestCoordinatorSweepOverHTTP(t *testing.T) {
	spec := `{
	  "name": "http-cluster",
	  "protocols": [{"spec": "flock:{N}"}],
	  "params": [{"from": 3, "to": 5}],
	  "kinds": ["simulate", "stable"],
	  "sizes": [6, 7],
	  "options": {"seed": 11, "exactOracle": true}
	}`

	local := NewHandler(engine.New(), Options{})
	_, wantRows := sweepRows(t, local, spec)
	// Local rows stream in completion order; sort the cells into grid order
	// for the comparison (the summary row stays last).
	sort.SliceStable(wantRows[:len(wantRows)-1], func(i, j int) bool {
		return wantRows[i].Cell.Index < wantRows[j].Cell.Index
	})

	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{})
	h := NewHandler(engine.New(), Options{
		Cluster:         coord,
		ClusterDispatch: cluster.DispatchOptions{RangeCells: 2},
	})
	for i := 0; i < 2; i++ {
		w := httptest.NewServer(NewHandler(engine.New(), Options{}))
		defer w.Close()
		coord.Register(fmt.Sprintf("w%d", i), w.URL)
	}

	rec, gotRows := sweepRows(t, h, spec)
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster sweep: status %d: %s", rec.Code, rec.Body)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("row counts differ: got %d, want %d", len(gotRows), len(wantRows))
	}
	canon := func(row SweepRow) string {
		t.Helper()
		if row.Type == "cell" && row.Cell != nil {
			c := sweep.CanonicalCell(*row.Cell)
			b, _ := json.Marshal(SweepRow{Type: "cell", Cell: &c})
			return string(b)
		}
		b, _ := json.Marshal(SweepRow{Type: row.Type, Summary: sweep.CanonicalResult(row.Summary), Error: row.Error})
		return string(b)
	}
	for i := range wantRows {
		if g, w := canon(gotRows[i]), canon(wantRows[i]); g != w {
			t.Errorf("row %d differs:\n got: %s\nwant: %s", i, g, w)
		}
	}
	// The coordinator stream is grid-ordered (the local one happens to be
	// too only by luck of completion order — don't assert it there).
	for i, row := range gotRows[:len(gotRows)-1] {
		if row.Type != "cell" || row.Cell.Index != i {
			t.Errorf("cluster row %d: type %s index %v, want cell %d", i, row.Type, row.Cell, i)
		}
	}
}

// TestRequestLogging: with RequestLog set, each analyze and sweep request
// emits one structured line carrying kind, protocol hash, duration, status
// and cache-hit.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	h := NewHandler(engine.New(), Options{
		RequestLog: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	post(t, h, "/v1/analyze", `{"kind":"stable","protocol":{"spec":"flock:3"}}`)
	line := buf.String()
	for _, want := range []string{"msg=analyze", "kind=stable", "status=200", "protocol=", "durationMillis=", "cacheHit=false"} {
		if !strings.Contains(line, want) {
			t.Errorf("analyze log line missing %q: %s", want, line)
		}
	}

	buf.Reset()
	sweepRows(t, h, `{"name":"logtest","kinds":["bounds"],"params":[3]}`)
	line = buf.String()
	for _, want := range []string{"msg=sweep", "sweep=logtest", "mode=local", "completed=1", "status=200"} {
		if !strings.Contains(line, want) {
			t.Errorf("sweep log line missing %q: %s", want, line)
		}
	}
}
