// Package pump turns the paper's two pumping arguments into executable,
// machine-checkable certificates:
//
//   - ChainCertificate implements Lemma 4.1/4.2 and the Theorem 4.5 proof
//     skeleton (valid for protocols with or without leaders): a chain of
//     stable configurations C_2, C_3, ... with C_i + x →* C_(i+1), a
//     Dickson-comparable pair C_a ≤ C_(a+b) inside one ideal (B,S) of SC,
//     and the derived pump IC(a+λb) →* C_a + λ·Db.
//
//   - LeaderlessCertificate implements Lemma 5.2 with the Section 5.3–5.5
//     ingredients: a saturated configuration D reachable from IC(a), a
//     stable decomposition B + Da reached from D, and a small potentially
//     realisable θ (Corollary 5.7) whose witness Db is 0-concentrated in S,
//     giving the pump IC(a+λb) →* B + Da + λ·Db.
//
// In both cases the semantic conclusion is: *if* the protocol computes
// x ≥ η for some η, then η ≤ a — because the certificate exhibits stable
// consensus configurations of one common output for the infinite input
// family {a + λb : λ ≥ 0}, and a threshold between a and ∞ would force the
// outputs to differ across the family. Finders search for certificates;
// checkers validate them from scratch with exact arithmetic (replay every
// path, re-derive every membership), so a bug in the finder cannot produce
// an accepted-but-wrong certificate.
package pump

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/realise"
	"repro/internal/stable"
)

// Errors shared by the checkers.
var (
	ErrBadCertificate = errors.New("pump: certificate invalid")
)

// ChainCertificate is the Lemma 4.1/4.2 certificate (general protocols).
type ChainCertificate struct {
	// A and B with B ≥ 1: the certified family is {A + λB : λ ≥ 0};
	// conclusion η ≤ A.
	A, B int64
	// Ca is the stable configuration with IC(A) →* Ca, and Cb = Ca + Db the
	// one with Ca + B·x →* Cb; Ca ≤ Cb (the Dickson pair).
	Ca, Cb multiset.Vec
	// S is the ω-coordinate set of the common ideal; Db := Cb − Ca must be
	// supported by S and the ideal (Ca off S, ω on S) must lie inside SC.
	S map[int]bool
	// PathToCa is an explicit transition sequence from IC(A) to Ca.
	PathToCa []int
	// PathCaToCb is an explicit transition sequence from Ca + B·x to Cb.
	PathCaToCb []int
}

// Db returns Cb − Ca.
func (c *ChainCertificate) Db() multiset.Vec { return c.Cb.Sub(c.Ca) }

// LeaderlessCertificate is the Lemma 5.2 certificate.
type LeaderlessCertificate struct {
	// A and B with B ≥ 1: conclusion η ≤ A.
	A, B int64
	// PathToD is an explicit sequence IC(A) →* D (the scaled Lemma 5.4
	// saturation sequence).
	PathToD []int
	// D is the reached saturated configuration; it must be 2|Theta|-
	// saturated.
	D multiset.Vec
	// PathToStable is an explicit sequence D →* Stable.
	PathToStable []int
	// Stable = Base + Da is the stable configuration, decomposed against
	// the ideal (Base, S) of SC with Da ∈ ℕ^S.
	Stable multiset.Vec
	Base   multiset.Vec
	S      map[int]bool
	Da     multiset.Vec
	// Theta is the potentially realisable multiset with IC(B) ==θ⇒ Db.
	Theta realise.TransitionMultiset
	// Db ∈ ℕ^S is Theta's witness configuration.
	Db multiset.Vec
}

// thetaSequence expands a transition multiset into a concrete sequence
// (ordered by transition index; by Lemma 5.1(ii) any order fires from a
// 2|θ|-saturated configuration).
func thetaSequence(theta realise.TransitionMultiset) []int {
	idxs := make([]int, 0, len(theta))
	for t := range theta {
		idxs = append(idxs, t)
	}
	sort.Ints(idxs)
	var out []int
	for _, t := range idxs {
		for k := int64(0); k < theta[t]; k++ {
			out = append(out, t)
		}
	}
	return out
}

// replay fires steps from a copy of c, validating enabledness.
func replay(p *protocol.Protocol, c multiset.Vec, steps []int) (multiset.Vec, error) {
	out := c.Clone()
	for k, t := range steps {
		if t < 0 || t >= p.NumTransitions() {
			return nil, fmt.Errorf("%w: bad transition index %d at step %d", ErrBadCertificate, t, k)
		}
		if !p.Enabled(out, t) {
			return nil, fmt.Errorf("%w: transition %s disabled at step %d",
				ErrBadCertificate, p.FormatTransition(p.Transition(t)), k)
		}
		p.FireInPlace(out, t)
	}
	return out, nil
}

// idealInsideSC verifies that the ideal {C : C(q) ≤ base(q) for q ∉ S} lies
// entirely inside SC = SC_0 ∪ SC_1, using a fresh stable-set analysis: the
// ideal misses SC iff it intersects U_0 ∩ U_1, and it intersects an
// upward-closed set iff one of the set's minimal elements fits under the
// ideal's finite caps.
func idealInsideSC(a *stable.Analysis, base multiset.Vec, s map[int]bool) error {
	both := a.Unstable(0).Intersect(a.Unstable(1))
	for _, m := range both.MinBasis() {
		inside := true
		for q, v := range m {
			if !s[q] && v > base[q] {
				inside = false
				break
			}
		}
		if inside {
			return fmt.Errorf("%w: ideal (B=%v, S=%v) contains unstable configuration ≥ %v",
				ErrBadCertificate, base, s, m)
		}
	}
	return nil
}

// sharedOutput returns the common output of the populated states of c, or
// an error if outputs mix (a configuration inside SC always has a defined
// output).
func sharedOutput(p *protocol.Protocol, c multiset.Vec) (int, error) {
	b, ok := p.OutputOf(c)
	if !ok {
		return -1, fmt.Errorf("%w: configuration %s has undefined output", ErrBadCertificate, p.FormatConfig(c))
	}
	return b, nil
}
