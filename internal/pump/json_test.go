package pump

import (
	"encoding/json"
	"testing"

	"repro/internal/protocols"
)

func TestLeaderlessCertificateJSONRoundTrip(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	cert, err := FindLeaderless(p, FindOptions{Seed: 17})
	if err != nil {
		t.Fatalf("FindLeaderless: %v", err)
	}
	data, err := json.Marshal(cert)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back LeaderlessCertificate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// The round-tripped certificate must still verify — the strongest
	// possible equality check.
	if err := CheckLeaderless(p, &back, nil); err != nil {
		t.Fatalf("round-tripped certificate rejected: %v", err)
	}
	if back.A != cert.A || back.B != cert.B || back.Theta.Size() != cert.Theta.Size() {
		t.Fatalf("fields changed: %+v vs %+v", back.A, cert.A)
	}
	// Deterministic encoding.
	data2, err := json.Marshal(cert)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("marshalling not deterministic")
	}
}

func TestChainCertificateJSONRoundTrip(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	cert, err := FindChain(p, FindOptions{Seed: 11})
	if err != nil {
		t.Fatalf("FindChain: %v", err)
	}
	data, err := json.Marshal(cert)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back ChainCertificate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := CheckChain(p, &back, nil); err != nil {
		t.Fatalf("round-tripped certificate rejected: %v", err)
	}
}

func TestCertificateJSONKindMismatch(t *testing.T) {
	var ll LeaderlessCertificate
	if err := json.Unmarshal([]byte(`{"kind":"chain"}`), &ll); err == nil {
		t.Fatal("wrong kind must be rejected")
	}
	var ch ChainCertificate
	if err := json.Unmarshal([]byte(`{"kind":"leaderless"}`), &ch); err == nil {
		t.Fatal("wrong kind must be rejected")
	}
	if err := json.Unmarshal([]byte(`{not json`), &ch); err == nil {
		t.Fatal("bad JSON must be rejected")
	}
	if err := json.Unmarshal([]byte(`{"kind":"leaderless","theta":{"abc":1}}`), &ll); err == nil {
		t.Fatal("bad theta key must be rejected")
	}
}

func TestTamperedJSONCertificateRejectedByChecker(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	cert, err := FindLeaderless(p, FindOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cert)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the claimed bound in the serialized form.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["a"] = json.RawMessage("2")
	tampered, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var back LeaderlessCertificate
	if err := json.Unmarshal(tampered, &back); err != nil {
		t.Fatal(err)
	}
	if err := CheckLeaderless(p, &back, nil); err == nil {
		t.Fatal("checker must reject the tampered file")
	}
}
