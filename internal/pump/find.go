package pump

import (
	"errors"
	"fmt"

	"repro/internal/dioph"
	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/realise"
	"repro/internal/saturate"
	"repro/internal/sim"
	"repro/internal/stable"
)

// Finder errors.
var (
	ErrNoConvergence = errors.New("pump: simulation did not reach a stable configuration")
	ErrNoDicksonPair = errors.New("pump: no comparable pair in a common ideal within the chain bound")
	ErrNoTheta       = errors.New("pump: no potentially realisable θ concentrated on S")
)

// FindOptions configures the certificate finders.
type FindOptions struct {
	// Seed drives the (deterministic) simulations used to reach stable
	// configurations.
	Seed uint64
	// MaxChain bounds the chain length scanned by FindChain; 0 means 128.
	MaxChain int64
	// MaxRetries bounds the saturation-multiplier retries of
	// FindLeaderless; 0 means 8.
	MaxRetries int
	// SimMaxSteps bounds each simulation; 0 uses the simulator default.
	SimMaxSteps int64
	// Dioph bounds the Contejean–Devie search.
	Dioph dioph.Options
	// Stable bounds the backward-coverability fixpoint.
	Stable stable.Options
	// Analysis, when non-nil, is a precomputed stable-set analysis of the
	// protocol; the finders use it instead of recomputing (Stable is then
	// ignored). Callers own the consistency of analysis and protocol.
	Analysis *stable.Analysis
	// Basis, when non-nil, is a precomputed realisable basis; FindLeaderless
	// uses it instead of recomputing (Dioph is then ignored).
	Basis []realise.TransitionMultiset
}

// FindChain searches for a ChainCertificate following the Theorem 4.5 proof:
// build the Lemma 4.2 chain of stable configurations by simulation, scan it
// for a Dickson pair inside a common ideal of SC, and assemble the paths.
// It works for protocols with or without leaders (single input variable).
func FindChain(p *protocol.Protocol, opts FindOptions) (*ChainCertificate, error) {
	if p.NumInputs() != 1 {
		return nil, fmt.Errorf("pump: FindChain needs a single input variable")
	}
	maxChain := opts.MaxChain
	if maxChain == 0 {
		maxChain = 128
	}
	analysis := opts.Analysis
	if analysis == nil {
		var err error
		analysis, err = stable.Analyze(p, opts.Stable)
		if err != nil {
			return nil, fmt.Errorf("pump: stable analysis: %w", err)
		}
	}

	type stage struct {
		config multiset.Vec
		path   []int // from previous stage's config + x (or from IC(2) for the first)
	}
	var chain []stage
	x := p.InputState(0)

	start := p.InitialConfigN(2)
	for i := int64(2); i <= maxChain; i++ {
		st, err := sim.Run(p, start, sim.Options{
			Seed:          opts.Seed + uint64(i),
			Oracle:        analysis,
			MaxSteps:      opts.SimMaxSteps,
			RecordFirings: true,
		})
		if err != nil {
			return nil, fmt.Errorf("pump: chain stage %d: %w", i, err)
		}
		if !st.Converged {
			return nil, fmt.Errorf("%w: input %d after %d interactions", ErrNoConvergence, i, st.Interactions)
		}
		chain = append(chain, stage{config: st.Final, path: st.Firings})
		ci := st.Final

		// Scan for k < i with C_k ≤ C_i in a common ideal of SC.
		for kIdx, prev := range chain[:len(chain)-1] {
			ck := prev.config
			if !ck.Le(ci) {
				continue
			}
			db := ci.Sub(ck)
			for _, id := range analysis.SC().Ideals() {
				if !id.Contains(ck) || !id.Contains(ci) {
					continue
				}
				s := id.S()
				if !db.SupportedBy(s) {
					continue
				}
				k := int64(kIdx) + 2
				cert := &ChainCertificate{
					A:  k,
					B:  i - k,
					Ca: ck.Clone(),
					Cb: ci.Clone(),
					S:  s,
				}
				for _, st := range chain[:kIdx+1] {
					cert.PathToCa = append(cert.PathToCa, st.path...)
				}
				for _, st := range chain[kIdx+1:] {
					cert.PathCaToCb = append(cert.PathCaToCb, st.path...)
				}
				if err := CheckChain(p, cert, analysis); err != nil {
					// Self-check failed (e.g. replay order breaks): keep
					// scanning rather than return a bad certificate.
					continue
				}
				return cert, nil
			}
		}
		// Next stage starts from C_i + x.
		start = ci.Clone()
		start[x]++
	}
	return nil, fmt.Errorf("%w: scanned up to input %d", ErrNoDicksonPair, maxChain)
}

// FindLeaderless searches for a LeaderlessCertificate following the
// Theorem 5.9 proof: saturate (Lemma 5.4), stabilise and decompose
// (Lemma 5.5), then find a small potentially realisable θ concentrated on S
// (Corollary 5.7/Lemma 5.8). The saturation multiplier is grown until θ's
// 2|θ|-saturation requirement holds.
func FindLeaderless(p *protocol.Protocol, opts FindOptions) (*LeaderlessCertificate, error) {
	if !p.Leaderless() || p.NumInputs() != 1 {
		return nil, fmt.Errorf("pump: FindLeaderless needs a leaderless single-input protocol")
	}
	maxRetries := opts.MaxRetries
	if maxRetries == 0 {
		maxRetries = 8
	}
	analysis := opts.Analysis
	if analysis == nil {
		var err error
		analysis, err = stable.Analyze(p, opts.Stable)
		if err != nil {
			return nil, fmt.Errorf("pump: stable analysis: %w", err)
		}
	}
	sat, err := saturate.Saturate(p)
	if err != nil {
		return nil, fmt.Errorf("pump: saturation: %w", err)
	}
	if sat.Sequence == nil && sat.Stages > 0 {
		return nil, fmt.Errorf("pump: saturation sequence too long to certify")
	}
	basis := opts.Basis
	if basis == nil {
		var err error
		basis, err = realise.Basis(p, opts.Dioph)
		if err != nil {
			return nil, fmt.Errorf("pump: realisable basis: %w", err)
		}
	}

	m := int64(1)
	// Configurations need at least two agents (the simulator and the
	// paper's |C| ≥ 2 convention).
	for m*sat.Input < 2 {
		m++
	}
	var lastErr error = ErrNoTheta
	for try := 0; try < maxRetries; try++ {
		d := sat.Config.Scale(m)
		a := m * sat.Input
		pathToD := repeatPath(sat.Sequence, m)

		st, err := sim.Run(p, d, sim.Options{
			Seed:          opts.Seed + uint64(try),
			Oracle:        analysis,
			MaxSteps:      opts.SimMaxSteps,
			RecordFirings: true,
		})
		if err != nil {
			return nil, fmt.Errorf("pump: stabilising D: %w", err)
		}
		if !st.Converged {
			return nil, fmt.Errorf("%w: from D with |D| = %d", ErrNoConvergence, d.Size())
		}
		base, sBits, da, ok := analysis.DecomposeStable(st.Final)
		if !ok {
			return nil, fmt.Errorf("pump: simulator returned an unstable configuration")
		}
		// The certificate JSON format keeps S as a map.
		s := sBits.ToMap()

		theta, b, db, found := findTheta(p, basis, s)
		if !found {
			lastErr = fmt.Errorf("%w (S = %v, |D| = %d)", ErrNoTheta, s, d.Size())
			m *= 2
			continue
		}
		if m < 2*theta.Size() {
			// Not saturated enough for Lemma 5.1(ii); grow and retry.
			m = 2 * theta.Size()
			lastErr = fmt.Errorf("pump: need 2|θ| = %d saturation", 2*theta.Size())
			continue
		}
		cert := &LeaderlessCertificate{
			A:            a,
			B:            b,
			PathToD:      pathToD,
			D:            d,
			PathToStable: st.Firings,
			Stable:       st.Final,
			Base:         base,
			S:            s,
			Da:           da,
			Theta:        theta,
			Db:           db,
		}
		if err := CheckLeaderless(p, cert, analysis); err != nil {
			return nil, fmt.Errorf("pump: self-check failed: %w", err)
		}
		return cert, nil
	}
	return nil, lastErr
}

// findTheta searches for a potentially realisable θ whose witness Db is
// supported by S with witness input b ≥ 1. It tries, in order: the empty θ
// when x ∈ S (then IC(1) ⇒ 1·x ∈ ℕ^S); single basis elements; and sums of
// two or three basis elements.
func findTheta(p *protocol.Protocol, basis []realise.TransitionMultiset, s map[int]bool) (realise.TransitionMultiset, int64, multiset.Vec, bool) {
	x := int(p.InputState(0))
	if s[x] {
		theta := realise.TransitionMultiset{}
		db := multiset.Unit(p.NumStates(), x)
		return theta, 1, db, true
	}
	candidate := func(theta realise.TransitionMultiset) (int64, multiset.Vec, bool) {
		i, c := realise.Witness(p, theta)
		if i >= 1 && c.SupportedBy(s) {
			return i, c, true
		}
		return 0, nil, false
	}
	var (
		best      realise.TransitionMultiset
		bestB     int64
		bestDb    multiset.Vec
		bestFound bool
	)
	consider := func(theta realise.TransitionMultiset) {
		if b, db, ok := candidate(theta); ok {
			if !bestFound || theta.Size() < best.Size() {
				best, bestB, bestDb, bestFound = theta, b, db, true
			}
		}
	}
	for _, t1 := range basis {
		consider(t1)
	}
	if !bestFound {
		for i, t1 := range basis {
			for _, t2 := range basis[i:] {
				consider(t1.Add(t2))
			}
		}
	}
	if !bestFound {
		for i, t1 := range basis {
			for j, t2 := range basis[i:] {
				for _, t3 := range basis[i+j:] {
					consider(t1.Add(t2).Add(t3))
				}
			}
		}
	}
	return best, bestB, bestDb, bestFound
}

// repeatPath concatenates m copies of seq; by monotonicity the result fires
// from m·(the original start).
func repeatPath(seq []int, m int64) []int {
	if len(seq) == 0 || m == 0 {
		return nil
	}
	out := make([]int, 0, int64(len(seq))*m)
	for i := int64(0); i < m; i++ {
		out = append(out, seq...)
	}
	return out
}
