package pump

import (
	"errors"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/realise"
	"repro/internal/stable"
)

// TestFindLeaderlessOnThresholdZoo runs the full Theorem 5.9 pipeline on
// leaderless threshold protocols: a certificate must be found, it must pass
// the independent checker, and the certified bound A must dominate the true
// threshold η (otherwise the certificate would contradict the verified
// behaviour of the protocol).
func TestFindLeaderlessOnThresholdZoo(t *testing.T) {
	cases := []struct {
		name string
		e    protocols.Entry
		eta  int64
	}{
		{"flock(3)", protocols.FlockOfBirds(3), 3},
		{"flock(4)", protocols.FlockOfBirds(4), 4},
		{"succinct(2)", protocols.Succinct(2), 4},
		{"binary(5)", protocols.BinaryThreshold(5), 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := tc.e.Protocol
			cert, err := FindLeaderless(p, FindOptions{Seed: 17})
			if err != nil {
				t.Fatalf("FindLeaderless: %v", err)
			}
			// Independent re-check with a fresh analysis.
			if err := CheckLeaderless(p, cert, nil); err != nil {
				t.Fatalf("CheckLeaderless: %v", err)
			}
			if cert.B < 1 {
				t.Fatalf("B = %d", cert.B)
			}
			if cert.A < tc.eta {
				t.Fatalf("certified A = %d below true η = %d: the certificate would "+
					"falsely bound the threshold", cert.A, tc.eta)
			}
			t.Logf("%s: certified η ≤ %d (pump step %d, |θ| = %d, true η = %d)",
				tc.name, cert.A, cert.B, cert.Theta.Size(), tc.eta)
		})
	}
}

// TestFindChainOnZoo runs the Theorem 4.5 (Lemma 4.1/4.2) pipeline, which
// also handles protocols with leaders.
func TestFindChainOnZoo(t *testing.T) {
	cases := []struct {
		name string
		e    protocols.Entry
		eta  int64 // 0 if not a threshold protocol
	}{
		{"flock(3)", protocols.FlockOfBirds(3), 3},
		{"succinct(2)", protocols.Succinct(2), 4},
		{"leader-flock(2)", protocols.LeaderFlock(2), 2},
		{"leader-flock(3)", protocols.LeaderFlock(3), 3},
		{"parity", protocols.Parity(), 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := tc.e.Protocol
			cert, err := FindChain(p, FindOptions{Seed: 11})
			if err != nil {
				t.Fatalf("FindChain: %v", err)
			}
			if err := CheckChain(p, cert, nil); err != nil {
				t.Fatalf("CheckChain: %v", err)
			}
			if cert.B < 1 {
				t.Fatalf("B = %d", cert.B)
			}
			if tc.eta > 0 && cert.A < tc.eta {
				t.Fatalf("certified A = %d below true η = %d", cert.A, tc.eta)
			}
			t.Logf("%s: chain certificate A = %d, B = %d", tc.name, cert.A, cert.B)
		})
	}
}

// TestConstantProtocolUsesEmptyTheta: when x ∈ S the finder uses the empty
// θ with B = 1 — the degenerate but valid pump.
func TestConstantProtocolUsesEmptyTheta(t *testing.T) {
	e := protocols.Constant(true)
	cert, err := FindLeaderless(e.Protocol, FindOptions{Seed: 3})
	if err != nil {
		t.Fatalf("FindLeaderless: %v", err)
	}
	if len(cert.Theta) != 0 || cert.B != 1 {
		t.Fatalf("expected empty θ with B = 1, got |θ|=%d B=%d", cert.Theta.Size(), cert.B)
	}
	if err := CheckLeaderless(e.Protocol, cert, nil); err != nil {
		t.Fatalf("CheckLeaderless: %v", err)
	}
}

// TestCheckersRejectTampering corrupts every certificate field in turn and
// requires the checkers to reject.
func TestCheckersRejectTampering(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	good, err := FindLeaderless(p, FindOptions{Seed: 17})
	if err != nil {
		t.Fatalf("FindLeaderless: %v", err)
	}
	analysis, err := stable.Analyze(p, stable.Options{})
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(c *LeaderlessCertificate){
		"zero B":          func(c *LeaderlessCertificate) { c.B = 0 },
		"wrong A":         func(c *LeaderlessCertificate) { c.A++ },
		"truncated pathD": func(c *LeaderlessCertificate) { c.PathToD = c.PathToD[:len(c.PathToD)/2] },
		"tampered stable": func(c *LeaderlessCertificate) { c.Stable = c.Stable.Add(c.Db) },
		"tampered Db":     func(c *LeaderlessCertificate) { c.Db = c.Db.Scale(2) },
		"base on S": func(c *LeaderlessCertificate) {
			for q := range c.S {
				c.Base[q] = 1
				break
			}
		},
		"extra theta": func(c *LeaderlessCertificate) {
			// Inflate θ so Db ≠ IC(B) + Δθ (and saturation may fail).
			for tIdx := 0; tIdx < p.NumTransitions(); tIdx++ {
				if !p.Displacement(tIdx).IsZero() {
					c.Theta = c.Theta.Add(realise.TransitionMultiset{tIdx: 50})
					break
				}
			}
		},
		"shrunk S": func(c *LeaderlessCertificate) {
			for q := range c.S {
				delete(c.S, q)
				break
			}
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := cloneLeaderless(good)
			mutate(bad)
			if err := CheckLeaderless(p, bad, analysis); err == nil {
				t.Fatal("tampered certificate accepted")
			}
		})
	}
	// The untouched certificate still verifies (mutations copied deeply).
	if err := CheckLeaderless(p, good, analysis); err != nil {
		t.Fatalf("original certificate broken by tests: %v", err)
	}
}

func TestChainCheckerRejectsTampering(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	good, err := FindChain(p, FindOptions{Seed: 11})
	if err != nil {
		t.Fatalf("FindChain: %v", err)
	}
	analysis, err := stable.Analyze(p, stable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(c *ChainCertificate){
		"zero B":       func(c *ChainCertificate) { c.B = 0 },
		"small A":      func(c *ChainCertificate) { c.A = 1 },
		"swap configs": func(c *ChainCertificate) { c.Ca, c.Cb = c.Cb, c.Ca },
		"tampered Cb":  func(c *ChainCertificate) { c.Cb = c.Cb.Add(c.Cb) },
		"drop path":    func(c *ChainCertificate) { c.PathCaToCb = nil },
		"unrelated Ca": func(c *ChainCertificate) { c.Ca = p.InitialConfigN(c.A) },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := cloneChain(good)
			mutate(bad)
			if err := CheckChain(p, bad, analysis); err == nil {
				t.Fatal("tampered certificate accepted")
			}
		})
	}
	if err := CheckChain(p, good, analysis); err != nil {
		t.Fatalf("original certificate broken by tests: %v", err)
	}
}

func TestFindChainNoConvergence(t *testing.T) {
	// The oscillator never stabilises: the chain cannot even start.
	b := protocol.NewBuilder("oscillator")
	u := b.AddState("u", 0)
	v := b.AddState("v", 1)
	b.AddTransition(u, u, v, v)
	b.AddTransition(v, v, u, u)
	b.AddInput("x", u)
	p := b.CompleteWithIdentity().MustBuild()
	_, err := FindChain(p, FindOptions{Seed: 1, SimMaxSteps: 2000, MaxChain: 4})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

func TestFindersRejectWrongShape(t *testing.T) {
	if _, err := FindChain(protocols.Majority().Protocol, FindOptions{}); err == nil {
		t.Fatal("FindChain must reject two-input protocols")
	}
	if _, err := FindLeaderless(protocols.LeaderFlock(2).Protocol, FindOptions{}); err == nil {
		t.Fatal("FindLeaderless must reject leader protocols")
	}
	if err := CheckChain(protocols.Majority().Protocol, &ChainCertificate{A: 2, B: 1}, nil); err == nil {
		t.Fatal("CheckChain must reject two-input protocols")
	}
	if err := CheckLeaderless(protocols.LeaderFlock(2).Protocol, &LeaderlessCertificate{A: 2, B: 1}, nil); err == nil {
		t.Fatal("CheckLeaderless must reject leader protocols")
	}
}

func cloneLeaderless(c *LeaderlessCertificate) *LeaderlessCertificate {
	out := &LeaderlessCertificate{
		A:            c.A,
		B:            c.B,
		PathToD:      append([]int(nil), c.PathToD...),
		D:            c.D.Clone(),
		PathToStable: append([]int(nil), c.PathToStable...),
		Stable:       c.Stable.Clone(),
		Base:         c.Base.Clone(),
		S:            map[int]bool{},
		Da:           c.Da.Clone(),
		Theta:        realise.TransitionMultiset{},
		Db:           c.Db.Clone(),
	}
	for k, v := range c.S {
		out.S[k] = v
	}
	for k, v := range c.Theta {
		out.Theta[k] = v
	}
	return out
}

func cloneChain(c *ChainCertificate) *ChainCertificate {
	out := &ChainCertificate{
		A:          c.A,
		B:          c.B,
		Ca:         c.Ca.Clone(),
		Cb:         c.Cb.Clone(),
		S:          map[int]bool{},
		PathToCa:   append([]int(nil), c.PathToCa...),
		PathCaToCb: append([]int(nil), c.PathCaToCb...),
	}
	for k, v := range c.S {
		out.S[k] = v
	}
	return out
}
