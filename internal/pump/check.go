package pump

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/protocol"
	"repro/internal/realise"
	"repro/internal/stable"
)

// pumpReplayRounds is how many λ values beyond the certificate's own data
// the checkers re-execute explicitly.
const pumpReplayRounds = 3

// checkDims validates that every certificate vector matches the protocol's
// state count and every set/multiset key is a valid index — certificates
// may come from files and must never panic the checker.
func checkDims(p *protocol.Protocol, vecs map[string]multiset.Vec, s map[int]bool) error {
	d := p.NumStates()
	for name, v := range vecs {
		if v.Dim() != d {
			return fmt.Errorf("%w: %s has dimension %d, protocol has %d states",
				ErrBadCertificate, name, v.Dim(), d)
		}
	}
	for q := range s {
		if q < 0 || q >= d {
			return fmt.Errorf("%w: S contains state %d out of range [0,%d)", ErrBadCertificate, q, d)
		}
	}
	return nil
}

// CheckChain validates a ChainCertificate from scratch. On success, the
// certificate proves: if the protocol computes x ≥ η for some η, then
// η ≤ cert.A.
func CheckChain(p *protocol.Protocol, cert *ChainCertificate, a *stable.Analysis) error {
	if p.NumInputs() != 1 {
		return fmt.Errorf("%w: chain certificates need a single input variable", ErrBadCertificate)
	}
	if cert.B < 1 {
		return fmt.Errorf("%w: pump step B = %d must be ≥ 1", ErrBadCertificate, cert.B)
	}
	if cert.A < 2 {
		return fmt.Errorf("%w: A = %d must be ≥ 2", ErrBadCertificate, cert.A)
	}
	if err := checkDims(p, map[string]multiset.Vec{"Ca": cert.Ca, "Cb": cert.Cb}, cert.S); err != nil {
		return err
	}
	var err error
	if a == nil {
		a, err = stable.Analyze(p, stable.Options{})
		if err != nil {
			return fmt.Errorf("pump: recomputing stable sets: %w", err)
		}
	}
	// Shape: Db = Cb − Ca ∈ ℕ^S; Ca ≤ Cb.
	if !cert.Ca.Le(cert.Cb) {
		return fmt.Errorf("%w: Ca ≰ Cb", ErrBadCertificate)
	}
	db := cert.Db()
	if !db.SupportedBy(cert.S) {
		return fmt.Errorf("%w: Db = %v not supported by S", ErrBadCertificate, db)
	}
	// The ideal (Ca off S, ω on S) must lie inside SC.
	base := cert.Ca.Clone()
	for q := range base {
		if cert.S[q] {
			base[q] = 0
		}
	}
	if err := idealInsideSC(a, base, cert.S); err != nil {
		return err
	}
	// All pumped configurations share Ca's populated states, so one common
	// output b*; a computed threshold η > A would demand output 0 at A and
	// output 1 at A + λB for large λ — impossible. (We don't need b* itself,
	// only that it is defined.)
	if _, err := sharedOutput(p, cert.Ca); err != nil {
		return err
	}
	// Replay IC(A) →* Ca.
	got, err := replay(p, p.InitialConfigN(cert.A), cert.PathToCa)
	if err != nil {
		return fmt.Errorf("replaying IC(A) →* Ca: %w", err)
	}
	if !got.Equal(cert.Ca) {
		return fmt.Errorf("%w: IC(A) path reaches %s, want Ca = %s",
			ErrBadCertificate, p.FormatConfig(got), p.FormatConfig(cert.Ca))
	}
	// Replay Ca + B·x →* Cb.
	start := cert.Ca.Clone()
	start[p.InputState(0)] += cert.B
	got, err = replay(p, start, cert.PathCaToCb)
	if err != nil {
		return fmt.Errorf("replaying Ca + B·x →* Cb: %w", err)
	}
	if !got.Equal(cert.Cb) {
		return fmt.Errorf("%w: pump path reaches %s, want Cb = %s",
			ErrBadCertificate, p.FormatConfig(got), p.FormatConfig(cert.Cb))
	}
	// Explicitly replay the pumped family for a few λ:
	// IC(A+λB) → Ca + λB·x → Ca + (λ−1)B·x + Db → ... → Ca + λ·Db.
	for lambda := int64(1); lambda <= pumpReplayRounds; lambda++ {
		c := p.InitialConfigN(cert.A + lambda*cert.B)
		c, err = replay(p, c, cert.PathToCa)
		if err != nil {
			return fmt.Errorf("pump λ=%d (to Ca): %w", lambda, err)
		}
		for l := int64(0); l < lambda; l++ {
			c, err = replay(p, c, cert.PathCaToCb)
			if err != nil {
				return fmt.Errorf("pump λ=%d (round %d): %w", lambda, l, err)
			}
		}
		want := cert.Ca.AddScaled(lambda, db)
		if !c.Equal(want) {
			return fmt.Errorf("%w: pump λ=%d reached %s, want %s",
				ErrBadCertificate, lambda, p.FormatConfig(c), p.FormatConfig(want))
		}
		// The pumped configuration must still lie in the certified ideal.
		for q, v := range c {
			if !cert.S[q] && v > base[q] {
				return fmt.Errorf("%w: pumped configuration leaves the ideal at state %d", ErrBadCertificate, q)
			}
		}
	}
	return nil
}

// CheckLeaderless validates a LeaderlessCertificate from scratch. On
// success: if the protocol computes x ≥ η for some η, then η ≤ cert.A.
func CheckLeaderless(p *protocol.Protocol, cert *LeaderlessCertificate, a *stable.Analysis) error {
	if !p.Leaderless() {
		return fmt.Errorf("%w: protocol has leaders", ErrBadCertificate)
	}
	if p.NumInputs() != 1 {
		return fmt.Errorf("%w: need a single input variable", ErrBadCertificate)
	}
	if cert.B < 1 {
		return fmt.Errorf("%w: pump step B = %d must be ≥ 1", ErrBadCertificate, cert.B)
	}
	if err := checkDims(p, map[string]multiset.Vec{
		"D": cert.D, "Stable": cert.Stable, "Base": cert.Base,
		"Da": cert.Da, "Db": cert.Db,
	}, cert.S); err != nil {
		return err
	}
	for t := range cert.Theta {
		if t < 0 || t >= p.NumTransitions() {
			return fmt.Errorf("%w: θ uses transition %d out of range", ErrBadCertificate, t)
		}
	}
	var err error
	if a == nil {
		a, err = stable.Analyze(p, stable.Options{})
		if err != nil {
			return fmt.Errorf("pump: recomputing stable sets: %w", err)
		}
	}
	// Shape checks.
	if !cert.Base.Add(cert.Da).Equal(cert.Stable) {
		return fmt.Errorf("%w: Base + Da ≠ Stable", ErrBadCertificate)
	}
	if !cert.Da.SupportedBy(cert.S) || !cert.Db.SupportedBy(cert.S) {
		return fmt.Errorf("%w: Da or Db not supported by S", ErrBadCertificate)
	}
	for q := range cert.Base {
		if cert.S[q] && cert.Base[q] != 0 {
			return fmt.Errorf("%w: Base must vanish on S", ErrBadCertificate)
		}
	}
	if err := idealInsideSC(a, cert.Base, cert.S); err != nil {
		return err
	}
	if _, err := sharedOutput(p, cert.Stable); err != nil {
		return err
	}
	// θ's potential realisability and witness: Db = IC(B) + Δθ ≥ 0.
	ok, err := realise.IsPotentiallyRealisable(p, cert.Theta)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: θ is not potentially realisable", ErrBadCertificate)
	}
	wantDb := p.InitialConfigN(cert.B).Add(cert.Theta.Displacement(p))
	if !wantDb.IsNatural() || !wantDb.Equal(cert.Db) {
		return fmt.Errorf("%w: IC(B) + Δθ = %v ≠ Db = %v", ErrBadCertificate, wantDb, cert.Db)
	}
	// Saturation: D must be 2|θ|-saturated (Lemma 5.1(ii)).
	if !p.Saturated(cert.D, 2*cert.Theta.Size()) {
		return fmt.Errorf("%w: D is not 2|θ| = %d saturated", ErrBadCertificate, 2*cert.Theta.Size())
	}
	// Replay IC(A) →* D →* Stable.
	d, err := replay(p, p.InitialConfigN(cert.A), cert.PathToD)
	if err != nil {
		return fmt.Errorf("replaying IC(A) →* D: %w", err)
	}
	if !d.Equal(cert.D) {
		return fmt.Errorf("%w: saturation path reaches %s, want D", ErrBadCertificate, p.FormatConfig(d))
	}
	st, err := replay(p, cert.D, cert.PathToStable)
	if err != nil {
		return fmt.Errorf("replaying D →* Stable: %w", err)
	}
	if !st.Equal(cert.Stable) {
		return fmt.Errorf("%w: stabilisation path reaches %s, want Stable", ErrBadCertificate, p.FormatConfig(st))
	}
	// Explicit pump for small λ: IC(A+λB) →* D + λ·IC(B) →(θ^λ)→ D + λDb
	// →* Base + Da + λDb.
	thetaSeq := thetaSequence(cert.Theta)
	for lambda := int64(1); lambda <= pumpReplayRounds; lambda++ {
		c := p.InitialConfigN(cert.A + lambda*cert.B)
		c, err = replay(p, c, cert.PathToD)
		if err != nil {
			return fmt.Errorf("pump λ=%d (to D): %w", lambda, err)
		}
		for l := int64(0); l < lambda; l++ {
			c, err = replay(p, c, thetaSeq)
			if err != nil {
				return fmt.Errorf("pump λ=%d (θ round %d): %w", lambda, l, err)
			}
		}
		c, err = replay(p, c, cert.PathToStable)
		if err != nil {
			return fmt.Errorf("pump λ=%d (to stable): %w", lambda, err)
		}
		want := cert.Stable.AddScaled(lambda, cert.Db)
		if !c.Equal(want) {
			return fmt.Errorf("%w: pump λ=%d reached %s, want %s",
				ErrBadCertificate, lambda, p.FormatConfig(c), p.FormatConfig(want))
		}
		for q, v := range c {
			if !cert.S[q] && v > cert.Base[q] {
				return fmt.Errorf("%w: pumped configuration leaves the ideal at state %d", ErrBadCertificate, q)
			}
		}
	}
	return nil
}
