package pump

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/multiset"
	"repro/internal/realise"
)

// The JSON representations keep certificates portable: a certificate found
// on one machine can be re-checked anywhere, since the checkers rebuild all
// trusted state from the protocol itself. Sets and multisets are encoded as
// sorted lists for deterministic output.

type leaderlessJSON struct {
	Kind         string           `json:"kind"`
	A            int64            `json:"a"`
	B            int64            `json:"b"`
	PathToD      []int            `json:"pathToD"`
	D            []int64          `json:"d"`
	PathToStable []int            `json:"pathToStable"`
	Stable       []int64          `json:"stable"`
	Base         []int64          `json:"base"`
	S            []int            `json:"s"`
	Da           []int64          `json:"da"`
	Theta        map[string]int64 `json:"theta"`
	Db           []int64          `json:"db"`
}

type chainJSON struct {
	Kind       string  `json:"kind"`
	A          int64   `json:"a"`
	B          int64   `json:"b"`
	Ca         []int64 `json:"ca"`
	Cb         []int64 `json:"cb"`
	S          []int   `json:"s"`
	PathToCa   []int   `json:"pathToCa"`
	PathCaToCb []int   `json:"pathCaToCb"`
}

func sortedSet(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for k, v := range s {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func setFromList(l []int) map[int]bool {
	out := make(map[int]bool, len(l))
	for _, k := range l {
		out[k] = true
	}
	return out
}

// MarshalJSON implements json.Marshaler.
func (c *LeaderlessCertificate) MarshalJSON() ([]byte, error) {
	theta := make(map[string]int64, len(c.Theta))
	for t, n := range c.Theta {
		theta[fmt.Sprint(t)] = n
	}
	return json.Marshal(leaderlessJSON{
		Kind:         "leaderless",
		A:            c.A,
		B:            c.B,
		PathToD:      c.PathToD,
		D:            c.D,
		PathToStable: c.PathToStable,
		Stable:       c.Stable,
		Base:         c.Base,
		S:            sortedSet(c.S),
		Da:           c.Da,
		Theta:        theta,
		Db:           c.Db,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *LeaderlessCertificate) UnmarshalJSON(data []byte) error {
	var j leaderlessJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("pump: decoding leaderless certificate: %w", err)
	}
	if j.Kind != "leaderless" {
		return fmt.Errorf("%w: kind %q, want \"leaderless\"", ErrBadCertificate, j.Kind)
	}
	theta := make(realise.TransitionMultiset, len(j.Theta))
	for k, n := range j.Theta {
		var t int
		if _, err := fmt.Sscanf(k, "%d", &t); err != nil {
			return fmt.Errorf("pump: bad theta key %q: %w", k, err)
		}
		theta[t] = n
	}
	*c = LeaderlessCertificate{
		A:            j.A,
		B:            j.B,
		PathToD:      j.PathToD,
		D:            multiset.FromCounts(j.D),
		PathToStable: j.PathToStable,
		Stable:       multiset.FromCounts(j.Stable),
		Base:         multiset.FromCounts(j.Base),
		S:            setFromList(j.S),
		Da:           multiset.FromCounts(j.Da),
		Theta:        theta,
		Db:           multiset.FromCounts(j.Db),
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (c *ChainCertificate) MarshalJSON() ([]byte, error) {
	return json.Marshal(chainJSON{
		Kind:       "chain",
		A:          c.A,
		B:          c.B,
		Ca:         c.Ca,
		Cb:         c.Cb,
		S:          sortedSet(c.S),
		PathToCa:   c.PathToCa,
		PathCaToCb: c.PathCaToCb,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *ChainCertificate) UnmarshalJSON(data []byte) error {
	var j chainJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("pump: decoding chain certificate: %w", err)
	}
	if j.Kind != "chain" {
		return fmt.Errorf("%w: kind %q, want \"chain\"", ErrBadCertificate, j.Kind)
	}
	*c = ChainCertificate{
		A:          j.A,
		B:          j.B,
		Ca:         multiset.FromCounts(j.Ca),
		Cb:         multiset.FromCounts(j.Cb),
		S:          setFromList(j.S),
		PathToCa:   j.PathToCa,
		PathCaToCb: j.PathCaToCb,
	}
	return nil
}
