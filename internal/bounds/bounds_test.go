package bounds

import (
	"math/big"
	"strings"
	"testing"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestFactorial(t *testing.T) {
	tests := []struct{ n, want int64 }{
		{0, 1}, {1, 1}, {2, 2}, {5, 120}, {10, 3628800},
	}
	for _, tc := range tests {
		if got := Factorial(tc.n); got.Cmp(bi(tc.want)) != 0 {
			t.Errorf("%d! = %s, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBeta(t *testing.T) {
	// β(1) = 2^(2·3!+1) = 2^13 = 8192.
	b := Beta(1)
	v, err := b.Exact()
	if err != nil {
		t.Fatalf("Beta(1).Exact: %v", err)
	}
	if v.Cmp(bi(8192)) != 0 {
		t.Errorf("β(1) = %s, want 8192", v)
	}
	// β(2) = 2^(2·120+1) = 2^241: exact but large.
	b2 := Beta(2)
	if b2.Exp2.Cmp(bi(241)) != 0 {
		t.Errorf("β(2) exponent = %s, want 241", b2.Exp2)
	}
	v2, err := b2.Exact()
	if err != nil {
		t.Fatalf("Beta(2).Exact: %v", err)
	}
	if v2.BitLen() != 242 {
		t.Errorf("β(2) bit length = %d, want 242", v2.BitLen())
	}
	// β(6): exponent 2·13!+1 is not exactly expandable.
	if _, err := Beta(6).Exact(); err == nil {
		t.Error("β(6) should not be exactly expandable")
	}
}

func TestTheta(t *testing.T) {
	// ϑ(1) = 2^(4!) = 2^24.
	v, err := Theta(1).Exact()
	if err != nil {
		t.Fatalf("Theta(1).Exact: %v", err)
	}
	if v.Cmp(new(big.Int).Lsh(bi(1), 24)) != 0 {
		t.Errorf("ϑ(1) = %s, want 2^24", v)
	}
	if ThetaExponent(2).Cmp(bi(720)) != 0 {
		t.Errorf("ϑ(2) exponent = %s, want 720", ThetaExponent(2))
	}
}

func TestXi(t *testing.T) {
	// ξ = 2(2T+1)^Q: T=3, Q=2 → 2·7² = 98.
	if got := Xi(3, 2); got.Cmp(bi(98)) != 0 {
		t.Errorf("ξ(3,2) = %s, want 98", got)
	}
	if got := Xi(0, 1); got.Cmp(bi(2)) != 0 {
		t.Errorf("ξ(0,1) = %s, want 2", got)
	}
	// Deterministic variant: 2(Q+2)^Q: Q=3 → 2·125 = 250.
	if got := XiDeterministic(3); got.Cmp(bi(250)) != 0 {
		t.Errorf("ξdet(3) = %s, want 250", got)
	}
}

func TestTheorem59(t *testing.T) {
	// n=2, T=3: mantissa = ξ·n·3² = 98·2·9 = 1764, exponent = β(2)'s 241.
	h := Theorem59(2, 3)
	if h.Mantissa.Cmp(bi(1764)) != 0 {
		t.Errorf("mantissa = %s, want 1764", h.Mantissa)
	}
	if h.Exp2.Cmp(bi(241)) != 0 {
		t.Errorf("exponent = %s, want 241", h.Exp2)
	}
	// The simplified form 2^((2n+2)!) dominates the explicit bound for
	// n ≥ 2 (the paper's final step).
	for n := int64(2); n <= 6; n++ {
		// A protocol with n states has at most n(n+1)/2 pairs and (per
		// pair) arbitrarily many transitions, but the count that enters ξ
		// for the paper's estimate is |T| ≤ n⁴ (they use 2n⁴+1 ≥ 2|T|+1).
		trans := n * n * n * n
		explicit := Theorem59(n, trans)
		simplified := Theorem59Simplified(n)
		if explicit.Cmp(simplified) > 0 {
			t.Errorf("n=%d: explicit bound exceeds 2^((2n+2)!)", n)
		}
	}
}

func TestLowerBounds(t *testing.T) {
	// BB(5) ≥ 2^3 via P'_3 (5 states).
	v, err := BBLowerLeaderless(5).Exact()
	if err != nil || v.Cmp(bi(8)) != 0 {
		t.Errorf("BB lower(5) = %v, %v; want 8", v, err)
	}
	if got := BBLowerLeaderless(2); got.Mantissa.Cmp(bi(1)) != 0 || got.Exp2.Sign() != 0 {
		t.Errorf("BB lower(2) = %s, want 1", got)
	}
	// BBL(3) ≥ 2^(2³) = 256.
	v, err = BBLLowerWithLeaders(3).Exact()
	if err != nil || v.Cmp(bi(256)) != 0 {
		t.Errorf("BBL lower(3) = %v, %v; want 256", v, err)
	}
	if got := BBLLowerWithLeaders(0); got.Exp2.Sign() != 0 {
		t.Errorf("BBL lower(0) = %s", got)
	}
}

func TestHugeCmp(t *testing.T) {
	tests := []struct {
		a, b Huge
		want int
	}{
		{NewHuge(bi(1), bi(10)), NewHuge(bi(1), bi(10)), 0},
		{NewHuge(bi(1), bi(10)), NewHuge(bi(1), bi(11)), -1},
		{NewHuge(bi(3), bi(10)), NewHuge(bi(1), bi(11)), 1}, // 3·2^10 > 2^11
		{NewHuge(bi(1), bi(100000)), NewHuge(bi(999), bi(10)), 1},
		{NewHuge(bi(7), bi(0)), NewHuge(bi(8), bi(0)), -1},
		{NewHuge(bi(4), bi(5)), NewHuge(bi(1), bi(7)), 0}, // 4·2^5 = 2^7
	}
	for i, tc := range tests {
		if got := tc.a.Cmp(tc.b); got != tc.want {
			t.Errorf("case %d: Cmp(%s, %s) = %d, want %d", i, tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Cmp(tc.a); got != -tc.want {
			t.Errorf("case %d: antisymmetry violated", i)
		}
	}
}

func TestHugeStringAndLog(t *testing.T) {
	h := NewHuge(bi(1), bi(13))
	if got := h.String(); got != "8192" {
		t.Errorf("String = %q, want 8192", got)
	}
	big1 := NewHuge(bi(1), bi(500))
	if got := big1.String(); got != "2^500" {
		t.Errorf("String = %q", got)
	}
	big2 := NewHuge(bi(5), bi(500))
	if got := big2.String(); !strings.Contains(got, "5·2^500") {
		t.Errorf("String = %q", got)
	}
	if got := big2.Log2Floor(); got.Cmp(bi(502)) != 0 {
		t.Errorf("Log2Floor = %s, want 502", got)
	}
	if got := HugeFromInt(bi(40)).Log2Floor(); got.Cmp(bi(5)) != 0 {
		t.Errorf("Log2Floor(40) = %s, want 5", got)
	}
}

func TestRackoffBoundMatchesBeta(t *testing.T) {
	if RackoffBound(3).Cmp(Beta(3)) != 0 {
		t.Error("Rackoff bound is β by construction")
	}
}
