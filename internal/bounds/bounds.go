// Package bounds computes the paper's explicit constants and bounds with
// exact arithmetic:
//
//   - the small basis constant β(n) = 2^(2(2n+1)!+1) (Definition 3, from
//     Lemma 3.2's Rackoff-style argument);
//   - ϑ(n) = 2^((2n+2)!), the bound on the number of basis elements
//     (Lemma 3.2);
//   - the Pottier constant ξ = 2(2|T|+1)^|Q| (Definition 6);
//   - the Theorem 5.9 busy beaver bound η ≤ ξ·n·β·3ⁿ ≤ 2^((2n+2)!) for
//     leaderless protocols;
//   - the Theorem 2.2 lower bounds BB(n) ∈ Ω(2ⁿ), BBL(n) ∈ Ω(2^(2ⁿ)).
//
// These constants overflow fixed-width integers for every interesting n, so
// the package works with exact big.Int exponents: a Huge value represents
// 2^e · m exactly and prints in a human-readable iterated-exponential form.
package bounds

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrNotRepresentable is returned when an exact expansion is requested for
// a value whose binary representation would be impractically large.
var ErrNotRepresentable = errors.New("bounds: value too large for exact expansion")

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// maxExactBits caps exact expansions (2^24 bits ≈ 2 MiB numbers).
const maxExactBits = 1 << 24

// Huge represents the exact value Mantissa · 2^Exp2 with Mantissa ≥ 1,
// which is how all of the paper's constants naturally arise.
type Huge struct {
	Mantissa *big.Int
	Exp2     *big.Int
}

// NewHuge returns mantissa · 2^exp2.
func NewHuge(mantissa, exp2 *big.Int) Huge {
	return Huge{Mantissa: new(big.Int).Set(mantissa), Exp2: new(big.Int).Set(exp2)}
}

// HugeFromInt returns an exact Huge for a plain integer.
func HugeFromInt(v *big.Int) Huge {
	return Huge{Mantissa: new(big.Int).Set(v), Exp2: new(big.Int)}
}

// Exact expands the value into a single big.Int when representable.
func (h Huge) Exact() (*big.Int, error) {
	if !h.Exp2.IsInt64() || h.Exp2.Int64() > maxExactBits {
		return nil, fmt.Errorf("%w: 2^%s", ErrNotRepresentable, h.Exp2)
	}
	out := new(big.Int).Lsh(h.Mantissa, uint(h.Exp2.Int64()))
	return out, nil
}

// Log2Floor returns ⌊log₂⌋ of the value, exactly.
func (h Huge) Log2Floor() *big.Int {
	out := new(big.Int).Set(h.Exp2)
	if h.Mantissa.Sign() > 0 {
		out.Add(out, big.NewInt(int64(h.Mantissa.BitLen()-1)))
	}
	return out
}

// Cmp compares two Huge values exactly.
func (h Huge) Cmp(o Huge) int {
	// Compare m1·2^e1 vs m2·2^e2 via log alignment: shift the smaller
	// exponent's mantissa. If exponent gap is enormous, the bit lengths
	// decide.
	gap := new(big.Int).Sub(h.Exp2, o.Exp2)
	l1 := big.NewInt(int64(h.Mantissa.BitLen()))
	l2 := big.NewInt(int64(o.Mantissa.BitLen()))
	lo := new(big.Int).Add(gap, new(big.Int).Sub(l1, one)) // ⌊log2 h⌋ − e2
	hi := new(big.Int).Add(gap, l1)
	if hi.Cmp(new(big.Int).Sub(l2, one)) < 0 {
		return -1
	}
	if lo.Cmp(l2) > 0 {
		return 1
	}
	// Exponent gap is small enough to align exactly.
	g := new(big.Int).Sub(h.Exp2, o.Exp2)
	a := new(big.Int).Set(h.Mantissa)
	b := new(big.Int).Set(o.Mantissa)
	if g.Sign() >= 0 {
		a.Lsh(a, uint(g.Int64()))
	} else {
		b.Lsh(b, uint(new(big.Int).Neg(g).Int64()))
	}
	return a.Cmp(b)
}

// String renders the value as "m·2^e" (or the plain integer when small).
func (h Huge) String() string {
	if v, err := h.Exact(); err == nil && v.BitLen() <= 64 {
		return v.String()
	}
	if h.Mantissa.Cmp(one) == 0 {
		return fmt.Sprintf("2^%s", h.Exp2)
	}
	return fmt.Sprintf("%s·2^%s", h.Mantissa, h.Exp2)
}

// Factorial returns n! exactly.
func Factorial(n int64) *big.Int {
	out := big.NewInt(1)
	for i := int64(2); i <= n; i++ {
		out.Mul(out, big.NewInt(i))
	}
	return out
}

// BetaExponent returns 2(2n+1)!+1, the exponent of the small basis constant.
func BetaExponent(n int64) *big.Int {
	e := Factorial(2*n + 1)
	e.Lsh(e, 1)
	return e.Add(e, one)
}

// Beta returns the small basis constant β(n) = 2^(2(2n+1)!+1) of
// Definition 3.
func Beta(n int64) Huge {
	return Huge{Mantissa: new(big.Int).Set(one), Exp2: BetaExponent(n)}
}

// ThetaExponent returns (2n+2)!, the exponent of ϑ(n).
func ThetaExponent(n int64) *big.Int {
	return Factorial(2*n + 2)
}

// Theta returns ϑ(n) = 2^((2n+2)!), Lemma 3.2's bound on the number of
// basis elements of a stable set.
func Theta(n int64) Huge {
	return Huge{Mantissa: new(big.Int).Set(one), Exp2: ThetaExponent(n)}
}

// Xi returns the Pottier constant ξ = 2(2T+1)^Q of Definition 6 for a
// protocol with T transitions and Q states.
func Xi(transitions, states int64) *big.Int {
	base := big.NewInt(2*transitions + 1)
	out := new(big.Int).Exp(base, big.NewInt(states), nil)
	return out.Lsh(out, 1)
}

// XiDeterministic returns the sharper constant 2(Q+2)^Q available for
// deterministic protocols (Remark 1).
func XiDeterministic(states int64) *big.Int {
	base := big.NewInt(states + 2)
	out := new(big.Int).Exp(base, big.NewInt(states), nil)
	return out.Lsh(out, 1)
}

// Theorem59 returns the Theorem 5.9 bound ξ·n·β·3ⁿ on η for a leaderless
// protocol with n states and T transitions computing x ≥ η.
func Theorem59(states, transitions int64) Huge {
	// ξ·n·3ⁿ is the mantissa; β contributes the 2-exponent.
	m := Xi(transitions, states)
	m.Mul(m, big.NewInt(states))
	m.Mul(m, new(big.Int).Exp(big.NewInt(3), big.NewInt(states), nil))
	return Huge{Mantissa: m, Exp2: BetaExponent(states)}
}

// Theorem59Simplified returns the closed form 2^((2n+2)!) that Theorem 5.9
// derives from the explicit bound (valid for n ≥ 2).
func Theorem59Simplified(states int64) Huge {
	return Huge{Mantissa: new(big.Int).Set(one), Exp2: Factorial(2*states + 2)}
}

// BBLowerLeaderless returns the Theorem 2.2 lower bound witness: with n ≥ 3
// states, the succinct protocol P'_(n−2) computes x ≥ 2^(n−2), so
// BB(n) ≥ 2^(n−2) ∈ Ω(2ⁿ).
func BBLowerLeaderless(states int64) Huge {
	if states < 3 {
		return HugeFromInt(one)
	}
	return Huge{Mantissa: new(big.Int).Set(one), Exp2: big.NewInt(states - 2)}
}

// BBLLowerWithLeaders returns the Theorem 2.2 lower bound Ω(2^(2ⁿ)) for
// protocols with leaders (construction in Blondin et al. [12], cited but
// not reproduced).
func BBLLowerWithLeaders(states int64) Huge {
	if states < 1 {
		return HugeFromInt(one)
	}
	e := new(big.Int).Lsh(one, uint(states))
	return Huge{Mantissa: new(big.Int).Set(one), Exp2: e}
}

// RackoffBound returns the Lemma 3.2 coverability-length bound: a covering
// execution, if one exists, can be chosen of length at most β(n) (via
// Rackoff's theorem, see Esparza's lecture notes Thm 3.12.11 as cited).
func RackoffBound(states int64) Huge {
	return Beta(states)
}
