package pred

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/multiset"
)

func TestCounting(t *testing.T) {
	p := NewCounting(5)
	tests := []struct {
		x    int64
		want bool
	}{
		{0, false}, {4, false}, {5, true}, {6, true}, {100, true},
	}
	for _, tc := range tests {
		if got := p.Eval(multiset.Vec{tc.x}); got != tc.want {
			t.Errorf("x≥5 on %d = %t, want %t", tc.x, got, tc.want)
		}
	}
	if p.Arity() != 1 {
		t.Errorf("Arity = %d", p.Arity())
	}
	if got := p.String(); got != "x0 ≥ 5" {
		t.Errorf("String = %q", got)
	}
}

func TestMajority(t *testing.T) {
	p := NewMajority()
	tests := []struct {
		a, b int64
		want bool
	}{
		{3, 2, true}, {2, 3, false}, {2, 2, false}, {0, 0, false}, {1, 0, true},
	}
	for _, tc := range tests {
		if got := p.Eval(multiset.Vec{tc.a, tc.b}); got != tc.want {
			t.Errorf("majority(%d,%d) = %t, want %t", tc.a, tc.b, got, tc.want)
		}
	}
	if !strings.Contains(p.String(), "x0 - x1") {
		t.Errorf("String = %q", p.String())
	}
}

func TestModulo(t *testing.T) {
	p := NewModCounting(3, 1)
	for x := int64(0); x < 12; x++ {
		want := x%3 == 1
		if got := p.Eval(multiset.Vec{x}); got != want {
			t.Errorf("x≡1 mod 3 on %d = %t, want %t", x, got, want)
		}
	}
	// Negative coefficients and residues normalize correctly.
	q := Modulo{Coeffs: []int64{-1}, Mod: 3, Residue: -2}
	// -x ≡ -2 ≡ 1 (mod 3) iff x ≡ 2 (mod 3).
	for x := int64(0); x < 9; x++ {
		want := x%3 == 2
		if got := q.Eval(multiset.Vec{x}); got != want {
			t.Errorf("-x≡-2 mod 3 on %d = %t, want %t", x, got, want)
		}
	}
	if got := p.String(); got != "x0 ≡ 1 (mod 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestBooleanCombinators(t *testing.T) {
	ge3 := NewCounting(3)
	mod2 := NewModCounting(2, 0)
	and := And{ge3, mod2}
	or := Or{ge3, mod2}
	not := Not{ge3}
	tests := []struct {
		x                        int64
		wantAnd, wantOr, wantNot bool
	}{
		{0, false, true, true},
		{1, false, false, true},
		{2, false, true, true},
		{3, false, true, false},
		{4, true, true, false},
		{6, true, true, false},
	}
	for _, tc := range tests {
		in := multiset.Vec{tc.x}
		if got := and.Eval(in); got != tc.wantAnd {
			t.Errorf("And(%d) = %t, want %t", tc.x, got, tc.wantAnd)
		}
		if got := or.Eval(in); got != tc.wantOr {
			t.Errorf("Or(%d) = %t, want %t", tc.x, got, tc.wantOr)
		}
		if got := not.Eval(in); got != tc.wantNot {
			t.Errorf("Not(%d) = %t, want %t", tc.x, got, tc.wantNot)
		}
	}
	if and.Arity() != 1 || or.Arity() != 1 || not.Arity() != 1 {
		t.Error("combinators must preserve arity")
	}
	if And(nil).Arity() != 0 || Or(nil).Arity() != 0 {
		t.Error("empty combinators have arity 0")
	}
	if !And(nil).Eval(multiset.Vec{}) {
		t.Error("empty conjunction is true")
	}
	if Or(nil).Eval(multiset.Vec{}) {
		t.Error("empty disjunction is false")
	}
}

func TestConst(t *testing.T) {
	if !(Const{Value: true, Vars: 2}).Eval(multiset.Vec{7, 8}) {
		t.Error("Const true")
	}
	if (Const{Value: false, Vars: 1}).Eval(multiset.Vec{7}) {
		t.Error("Const false")
	}
	if got := (Const{Value: true}).String(); got != "true" {
		t.Errorf("String = %q", got)
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		p    Pred
		want string
	}{
		{Threshold{Coeffs: []int64{2, -3}, Bound: 4}, "2·x0 - 3·x1 ≥ 4"},
		{Threshold{Coeffs: []int64{0, 0}, Bound: 1}, "0 ≥ 1"},
		{Threshold{Coeffs: []int64{-1}, Bound: 0}, "-x0 ≥ 0"},
		{Threshold{Coeffs: []int64{1, 1}, Bound: 2}, "x0 + x1 ≥ 2"},
		{Not{NewCounting(1)}, "¬(x0 ≥ 1)"},
		{And{NewCounting(1), NewCounting(2)}, "(x0 ≥ 1) ∧ (x0 ≥ 2)"},
		{Or{NewCounting(1), NewCounting(2)}, "(x0 ≥ 1) ∨ (x0 ≥ 2)"},
	}
	for _, tc := range tests {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

// Property: De Morgan laws and double negation on random inputs.
func TestQuickBooleanLaws(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p := NewCounting(int64(rr.Intn(10)))
		q := NewModCounting(int64(1+rr.Intn(5)), int64(rr.Intn(5)))
		in := multiset.Vec{int64(rr.Intn(30))}
		deMorgan1 := Not{And{p, q}}.Eval(in) == Or{Not{p}, Not{q}}.Eval(in)
		deMorgan2 := Not{Or{p, q}}.Eval(in) == And{Not{p}, Not{q}}.Eval(in)
		doubleNeg := Not{Not{p}}.Eval(in) == p.Eval(in)
		return deMorgan1 && deMorgan2 && doubleNeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: counting predicates are monotone in x.
func TestQuickCountingMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p := NewCounting(int64(rr.Intn(50)))
		x := int64(rr.Intn(100))
		if p.Eval(multiset.Vec{x}) && !p.Eval(multiset.Vec{x + 1}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
