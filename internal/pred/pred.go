// Package pred implements the predicates that population protocols compute:
// by Angluin et al. [8] these are exactly the Presburger-definable predicates
// ϕ: ℕ^X → {0,1}, every one of which is a boolean combination of threshold
// constraints Σ aᵢxᵢ ≥ c and modulo constraints Σ aᵢxᵢ ≡ r (mod m).
//
// The paper's central family is the counting predicate x ≥ η (Threshold with
// one variable); the verification and search packages evaluate predicates on
// concrete inputs to check protocols against their specifications.
package pred

import (
	"fmt"
	"strings"

	"repro/internal/multiset"
)

// Pred is a predicate over input multisets of a fixed arity |X|.
type Pred interface {
	// Eval evaluates the predicate on input m, which must have dimension
	// Arity.
	Eval(m multiset.Vec) bool
	// Arity returns the number of input variables |X|.
	Arity() int
	// String renders the predicate in mathematical notation.
	String() string
}

// Threshold is the linear constraint Σ aᵢ·xᵢ ≥ Bound.
type Threshold struct {
	Coeffs []int64
	Bound  int64
}

var _ Pred = Threshold{}

// NewCounting returns the paper's counting predicate x ≥ η over one variable.
func NewCounting(eta int64) Threshold {
	return Threshold{Coeffs: []int64{1}, Bound: eta}
}

// NewMajority returns the two-variable predicate x_A > x_B, i.e.
// x_A − x_B ≥ 1.
func NewMajority() Threshold {
	return Threshold{Coeffs: []int64{1, -1}, Bound: 1}
}

// Eval implements Pred.
func (t Threshold) Eval(m multiset.Vec) bool {
	var s int64
	for i, a := range t.Coeffs {
		s += a * m[i]
	}
	return s >= t.Bound
}

// Arity implements Pred.
func (t Threshold) Arity() int { return len(t.Coeffs) }

// String implements Pred.
func (t Threshold) String() string {
	return fmt.Sprintf("%s ≥ %d", formatLinear(t.Coeffs), t.Bound)
}

// Modulo is the constraint Σ aᵢ·xᵢ ≡ Residue (mod Mod). Mod must be ≥ 1 and
// Residue is taken modulo Mod.
type Modulo struct {
	Coeffs  []int64
	Mod     int64
	Residue int64
}

var _ Pred = Modulo{}

// NewModCounting returns the one-variable predicate x ≡ r (mod m).
func NewModCounting(m, r int64) Modulo {
	return Modulo{Coeffs: []int64{1}, Mod: m, Residue: r}
}

// Eval implements Pred.
func (md Modulo) Eval(m multiset.Vec) bool {
	var s int64
	for i, a := range md.Coeffs {
		s += a * m[i]
	}
	r := s % md.Mod
	if r < 0 {
		r += md.Mod
	}
	want := md.Residue % md.Mod
	if want < 0 {
		want += md.Mod
	}
	return r == want
}

// Arity implements Pred.
func (md Modulo) Arity() int { return len(md.Coeffs) }

// String implements Pred.
func (md Modulo) String() string {
	return fmt.Sprintf("%s ≡ %d (mod %d)", formatLinear(md.Coeffs), md.Residue, md.Mod)
}

// Not is the negation of a predicate.
type Not struct{ P Pred }

var _ Pred = Not{}

// Eval implements Pred.
func (n Not) Eval(m multiset.Vec) bool { return !n.P.Eval(m) }

// Arity implements Pred.
func (n Not) Arity() int { return n.P.Arity() }

// String implements Pred.
func (n Not) String() string { return "¬(" + n.P.String() + ")" }

// And is the conjunction of predicates of equal arity.
type And []Pred

var _ Pred = And{}

// Eval implements Pred.
func (a And) Eval(m multiset.Vec) bool {
	for _, p := range a {
		if !p.Eval(m) {
			return false
		}
	}
	return true
}

// Arity implements Pred.
func (a And) Arity() int {
	if len(a) == 0 {
		return 0
	}
	return a[0].Arity()
}

// String implements Pred.
func (a And) String() string { return joinPreds([]Pred(a), " ∧ ") }

// Or is the disjunction of predicates of equal arity.
type Or []Pred

var _ Pred = Or{}

// Eval implements Pred.
func (o Or) Eval(m multiset.Vec) bool {
	for _, p := range o {
		if p.Eval(m) {
			return true
		}
	}
	return false
}

// Arity implements Pred.
func (o Or) Arity() int {
	if len(o) == 0 {
		return 0
	}
	return o[0].Arity()
}

// String implements Pred.
func (o Or) String() string { return joinPreds([]Pred(o), " ∨ ") }

// Const is a constant predicate of the given arity.
type Const struct {
	Value bool
	Vars  int
}

var _ Pred = Const{}

// Eval implements Pred.
func (c Const) Eval(multiset.Vec) bool { return c.Value }

// Arity implements Pred.
func (c Const) Arity() int { return c.Vars }

// String implements Pred.
func (c Const) String() string {
	if c.Value {
		return "true"
	}
	return "false"
}

func formatLinear(coeffs []int64) string {
	var b strings.Builder
	first := true
	for i, a := range coeffs {
		if a == 0 {
			continue
		}
		switch {
		case first && a == 1:
		case first && a == -1:
			b.WriteString("-")
		case first:
			fmt.Fprintf(&b, "%d·", a)
		case a == 1:
			b.WriteString(" + ")
		case a == -1:
			b.WriteString(" - ")
		case a > 0:
			fmt.Fprintf(&b, " + %d·", a)
		default:
			fmt.Fprintf(&b, " - %d·", -a)
		}
		first = false
		fmt.Fprintf(&b, "x%d", i)
	}
	if first {
		return "0"
	}
	return b.String()
}

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}
