package reach

// This file retains the pre-arena exploration core verbatim — string-keyed
// map dedup, a freshly allocated Config per node, [][]int32 successor
// lists, one full re-exploration per coverability target — as a
// differential-testing reference and as the "before" side of the
// BenchmarkExplore*/BenchmarkCover* comparisons. Its fair-output verdict is
// computed by an independent algorithm (pairwise reachability instead of
// Tarjan), so agreement is meaningful.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

type naiveGraph struct {
	p          *protocol.Protocol
	configs    []protocol.Config
	index      map[string]int
	succs      [][]int32
	parent     []int32
	parentTran []int32
}

func naiveExplore(p *protocol.Protocol, start protocol.Config, limit int) (*naiveGraph, error) {
	if limit <= 0 {
		limit = 2_000_000
	}
	if start.Dim() != p.NumStates() {
		return nil, fmt.Errorf("reach: start configuration has dimension %d, want %d",
			start.Dim(), p.NumStates())
	}
	g := &naiveGraph{
		p:     p,
		index: make(map[string]int),
	}
	add := func(c protocol.Config, from, tran int32) (int, bool) {
		k := c.Key()
		if i, ok := g.index[k]; ok {
			return i, false
		}
		i := len(g.configs)
		g.configs = append(g.configs, c.Clone())
		g.index[k] = i
		g.succs = append(g.succs, nil)
		g.parent = append(g.parent, from)
		g.parentTran = append(g.parentTran, tran)
		return i, true
	}
	add(start, -1, -1)
	for head := 0; head < len(g.configs); head++ {
		c := g.configs[head]
		next := c.Clone()
		for t := 0; t < p.NumTransitions(); t++ {
			if !p.Enabled(c, t) {
				continue
			}
			d := p.Displacement(t)
			if d.IsZero() {
				continue
			}
			copy(next, c)
			next.AddInPlace(d)
			j, fresh := add(next, int32(head), int32(t))
			if fresh && len(g.configs) > limit {
				return nil, fmt.Errorf("%w: limit %d from %s", ErrLimitExceeded, limit, p.FormatConfig(start))
			}
			dup := false
			for _, s := range g.succs[head] {
				if int(s) == j {
					dup = true
					break
				}
			}
			if !dup && j != head {
				g.succs[head] = append(g.succs[head], int32(j))
			}
		}
	}
	return g, nil
}

// pathLen is the BFS-tree distance of node i from the start.
func (g *naiveGraph) pathLen(i int) int {
	n := 0
	for i != 0 {
		i = int(g.parent[i])
		n++
	}
	return n
}

// naiveCoverLength is the pre-PR coverability query: full exploration, then
// a scan for the closest covering configuration.
func naiveCoverLength(g *naiveGraph, target multiset.Vec) (int, bool) {
	best := -1
	for i, c := range g.configs {
		if !target.Le(c) {
			continue
		}
		if l := g.pathLen(i); best < 0 || l < best {
			best = l
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// fairOutput computes the bottom-SCC consensus verdict by brute force:
// node v lies in a bottom SCC iff everything reachable from v reaches v
// back. Independent of the production Tarjan implementation.
func (g *naiveGraph) fairOutput() (int, bool) {
	n := len(g.configs)
	reachable := make([][]bool, n)
	for v := 0; v < n; v++ {
		seen := make([]bool, n)
		seen[v] = true
		queue := []int32{int32(v)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.succs[u] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		reachable[v] = seen
	}
	result := -1
	for v := 0; v < n; v++ {
		bottom := true
		for u := 0; u < n; u++ {
			if reachable[v][u] && !reachable[u][v] {
				bottom = false
				break
			}
		}
		if !bottom {
			continue
		}
		b, ok := g.p.OutputOf(g.configs[v])
		if !ok {
			return -1, false
		}
		if result == -1 {
			result = b
		} else if result != b {
			return -1, false
		}
	}
	if result == -1 {
		return -1, false
	}
	return result, true
}

// randomProtocol builds a random single-input protocol: 2–5 states with
// random outputs, a random set of non-identity transitions, completed with
// identity interactions.
func randomProtocol(rng *rand.Rand) *protocol.Protocol {
	k := 2 + rng.Intn(4)
	b := protocol.NewBuilder(fmt.Sprintf("random-%d", k))
	states := make([]protocol.State, k)
	for i := range states {
		states[i] = b.AddState(fmt.Sprintf("q%d", i), rng.Intn(2))
	}
	m := 1 + rng.Intn(2*k)
	for i := 0; i < m; i++ {
		b.AddTransition(
			states[rng.Intn(k)], states[rng.Intn(k)],
			states[rng.Intn(k)], states[rng.Intn(k)],
		)
	}
	b.AddInput("x", states[rng.Intn(k)])
	return b.CompleteWithIdentity().MustBuild()
}

// TestDifferentialArenaVsNaive is the central differential test of the
// exploration core: on randomized small protocols, the arena-backed
// sequential explorer, the frontier-parallel explorer, and the retained
// naive reference must produce the same node set, the same node numbering
// (all three explore in (source, transition) discovery order), the same
// BFS distances, the same successor lists, the same bottom-SCC verdict,
// and the same goal-directed cover lengths.
func TestDifferentialArenaVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		p := randomProtocol(rng)
		n := int64(2 + rng.Intn(6))
		start := p.InitialConfigN(n)
		ng, err := naiveExplore(p, start, 0)
		if err != nil {
			t.Fatalf("trial %d: naiveExplore: %v", trial, err)
		}
		ag, err := Explore(p, start, 0)
		if err != nil {
			t.Fatalf("trial %d: Explore: %v", trial, err)
		}
		compareGraphs(t, trial, "arena", ng, ag)
		workers := 1 + rng.Intn(4)
		pg, err := ExploreParallel(p, start, 0, workers)
		if err != nil {
			t.Fatalf("trial %d: ExploreParallel(%d): %v", trial, workers, err)
		}
		compareGraphs(t, trial, fmt.Sprintf("parallel(%d)", workers), ng, pg)

		// Bottom-SCC verdict: Tarjan on the arena graph vs the brute-force
		// pairwise-reachability verdict on the naive graph.
		nb, nok := ng.fairOutput()
		ab, aok := ag.FairOutput()
		if nb != ab || nok != aok {
			t.Fatalf("trial %d: fair output: naive %d,%t vs arena %d,%t", trial, nb, nok, ab, aok)
		}

		// Goal-directed cover vs full-exploration-and-scan.
		target := multiset.Unit(p.NumStates(), rng.Intn(p.NumStates()))
		wantLen, wantOK := naiveCoverLength(ng, target)
		gotLen, gotOK, err := CoverLength(p, start, target, 0)
		if err != nil {
			t.Fatalf("trial %d: CoverLength: %v", trial, err)
		}
		if gotOK != wantOK || (gotOK && gotLen != wantLen) {
			t.Fatalf("trial %d: cover length %d,%t, want %d,%t", trial, gotLen, gotOK, wantLen, wantOK)
		}
	}
}

func compareGraphs(t *testing.T, trial int, label string, want *naiveGraph, got *Graph) {
	t.Helper()
	if got.Len() != len(want.configs) {
		t.Fatalf("trial %d %s: %d nodes, want %d", trial, label, got.Len(), len(want.configs))
	}
	for i := range want.configs {
		if !got.Config(i).Equal(want.configs[i]) {
			t.Fatalf("trial %d %s: node %d is %v, want %v (numbering must match)",
				trial, label, i, got.Config(i), want.configs[i])
		}
		if got.Depth(i) != want.pathLen(i) {
			t.Fatalf("trial %d %s: node %d depth %d, want %d", trial, label, i, got.Depth(i), want.pathLen(i))
		}
		gs, ws := got.Succs(i), want.succs[i]
		if len(gs) != len(ws) {
			t.Fatalf("trial %d %s: node %d has succs %v, want %v", trial, label, i, gs, ws)
		}
		for k := range ws {
			if gs[k] != ws[k] {
				t.Fatalf("trial %d %s: node %d has succs %v, want %v", trial, label, i, gs, ws)
			}
		}
		if j, ok := got.IndexOf(want.configs[i]); !ok || j != i {
			t.Fatalf("trial %d %s: IndexOf(node %d) = %d,%t", trial, label, i, j, ok)
		}
	}
}
