package reach

import (
	"errors"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocols"
)

// TestExploreParallelMatchesSequential: identical configuration sets,
// identical BFS depths, identical fair outputs and stable sets.
func TestExploreParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		e     protocols.Entry
		input int64
	}{
		{"flock(5)", protocols.FlockOfBirds(5), 9},
		{"succinct(3)", protocols.Succinct(3), 8},
		{"binary(7)", protocols.BinaryThreshold(7), 9},
		{"parity", protocols.Parity(), 7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p := tc.e.Protocol
			seq, err := Explore(p, p.InitialConfigN(tc.input), 0)
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			for _, workers := range []int{1, 2, 4} {
				par, err := ExploreParallel(p, p.InitialConfigN(tc.input), 0, workers)
				if err != nil {
					t.Fatalf("ExploreParallel(%d): %v", workers, err)
				}
				if par.Len() != seq.Len() {
					t.Fatalf("workers=%d: %d configs, want %d", workers, par.Len(), seq.Len())
				}
				// Same configuration set, same BFS depth per configuration.
				for i := 0; i < seq.Len(); i++ {
					c := seq.Config(i)
					j, ok := par.IndexOf(c)
					if !ok {
						t.Fatalf("workers=%d: %s missing", workers, p.FormatConfig(c))
					}
					if len(par.Path(j)) != len(seq.Path(i)) {
						t.Fatalf("workers=%d: BFS depth differs for %s", workers, p.FormatConfig(c))
					}
				}
				// Same fair output.
				b1, ok1 := seq.FairOutput()
				b2, ok2 := par.FairOutput()
				if b1 != b2 || ok1 != ok2 {
					t.Fatalf("fair outputs differ: %d,%t vs %d,%t", b1, ok1, b2, ok2)
				}
				// Same stable-configuration count.
				if len(par.StableConfigs(1)) != len(seq.StableConfigs(1)) {
					t.Fatalf("stable counts differ")
				}
			}
		})
	}
}

func TestExploreParallelLimit(t *testing.T) {
	e := protocols.FlockOfBirds(5)
	p := e.Protocol
	_, err := ExploreParallel(p, p.InitialConfigN(8), 3, 2)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
}

func TestExploreParallelDimensionMismatch(t *testing.T) {
	e := protocols.Parity()
	if _, err := ExploreParallel(e.Protocol, multiset.New(1), 0, 2); err == nil {
		t.Fatal("want dimension error")
	}
}

// TestExploreParallelDeterministicNumbering: beyond the set/depth equality
// above, the parallel explorer must reproduce the sequential numbering,
// BFS tree, and successor lists bit for bit, for every worker count.
func TestExploreParallelDeterministicNumbering(t *testing.T) {
	e := protocols.Succinct(3)
	p := e.Protocol
	seq, err := Explore(p, p.InitialConfigN(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := ExploreParallel(p, p.InitialConfigN(9), 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d: %d nodes, want %d", workers, par.Len(), seq.Len())
		}
		for i := 0; i < seq.Len(); i++ {
			if !par.Config(i).Equal(seq.Config(i)) {
				t.Fatalf("workers=%d: node %d differs", workers, i)
			}
			if par.Depth(i) != seq.Depth(i) {
				t.Fatalf("workers=%d: node %d depth %d, want %d", workers, i, par.Depth(i), seq.Depth(i))
			}
			ps, ss := par.Succs(i), seq.Succs(i)
			if len(ps) != len(ss) {
				t.Fatalf("workers=%d: node %d succs %v, want %v", workers, i, ps, ss)
			}
			for k := range ss {
				if ps[k] != ss[k] {
					t.Fatalf("workers=%d: node %d succs %v, want %v", workers, i, ps, ss)
				}
			}
		}
	}
}

func TestExploreParallelInterrupt(t *testing.T) {
	e := protocols.FlockOfBirds(6)
	p := e.Protocol
	stop := make(chan struct{})
	close(stop)
	if _, err := ExploreParallelInterruptible(p, p.InitialConfigN(30), 0, 2, stop); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}

func TestExploreInterrupt(t *testing.T) {
	e := protocols.FlockOfBirds(6)
	p := e.Protocol
	stop := make(chan struct{})
	close(stop)
	if _, err := ExploreInterruptible(p, p.InitialConfigN(30), 0, stop); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}
