package reach

import (
	"fmt"
	"strings"

	"repro/internal/multiset"
	"repro/internal/pred"
	"repro/internal/protocol"
)

// Result records the verdict for one input.
type Result struct {
	Input   multiset.Vec
	Want    bool // ϕ(v)
	Got     int  // fair output: 0, 1, or -1 if undefined/inconsistent
	OK      bool // Got is defined and matches Want
	Configs int  // size of the explored configuration graph
}

// Report aggregates verification over a set of inputs.
type Report struct {
	Results      []Result
	TotalConfigs int
}

// AllOK reports whether every input verified.
func (r *Report) AllOK() bool {
	for _, res := range r.Results {
		if !res.OK {
			return false
		}
	}
	return true
}

// Failures returns the failing results.
func (r *Report) Failures() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.OK {
			out = append(out, res)
		}
	}
	return out
}

// String summarises the report.
func (r *Report) String() string {
	var b strings.Builder
	fail := r.Failures()
	fmt.Fprintf(&b, "verified %d inputs, %d failures, %d configurations explored",
		len(r.Results), len(fail), r.TotalConfigs)
	for i, f := range fail {
		if i == 5 {
			fmt.Fprintf(&b, "\n  ... %d more", len(fail)-5)
			break
		}
		fmt.Fprintf(&b, "\n  input %v: want %t, fair output %d", f.Input, f.Want, f.Got)
	}
	return b.String()
}

// VerifyInput checks the protocol against ϕ on a single input multiset v:
// it explores the configuration graph from IC(v) and compares the fair
// output with ϕ(v). This is sound and complete for this input.
func VerifyInput(p *protocol.Protocol, phi pred.Pred, v multiset.Vec, limit int) (Result, error) {
	return verifyInput(p, phi, v, limit, nil)
}

func verifyInput(p *protocol.Protocol, phi pred.Pred, v multiset.Vec, limit int, stop <-chan struct{}) (Result, error) {
	ic := p.InitialConfig(v)
	g, err := ExploreInterruptible(p, ic, limit, stop)
	if err != nil {
		return Result{}, fmt.Errorf("verifying input %v: %w", v, err)
	}
	want := phi.Eval(v)
	got, ok := g.FairOutput()
	res := Result{
		Input:   v.Clone(),
		Want:    want,
		Got:     got,
		Configs: g.Len(),
	}
	if !ok {
		res.Got = -1
	}
	res.OK = ok && ((got == 1) == want)
	return res, nil
}

// VerifyRange checks the protocol against ϕ for every input multiset v over
// the protocol's input variables with minSize ≤ |v| ≤ maxSize. The paper
// only defines behaviour for |v| ≥ 2, so minSize is clamped to 2. Exhaustive
// and exact for the verified range.
func VerifyRange(p *protocol.Protocol, phi pred.Pred, minSize, maxSize int64, limit int) (*Report, error) {
	return VerifyRangeInterruptible(p, phi, minSize, maxSize, limit, nil)
}

// VerifyRangeInterruptible is VerifyRange with cooperative cancellation: it
// aborts with ErrInterrupted soon after the stop channel closes, both
// between inputs and inside each input's graph exploration. A nil channel
// disables the checks.
func VerifyRangeInterruptible(p *protocol.Protocol, phi pred.Pred, minSize, maxSize int64, limit int, stop <-chan struct{}) (*Report, error) {
	if phi.Arity() != p.NumInputs() {
		return nil, fmt.Errorf("reach: predicate arity %d != protocol inputs %d",
			phi.Arity(), p.NumInputs())
	}
	if minSize < 2 {
		minSize = 2
	}
	rep := &Report{}
	for s := minSize; s <= maxSize; s++ {
		inputs := enumerate(p.NumInputs(), s)
		for _, v := range inputs {
			if interrupted(stop) {
				return rep, ErrInterrupted
			}
			res, err := verifyInput(p, phi, v, limit, stop)
			if err != nil {
				return rep, err
			}
			rep.Results = append(rep.Results, res)
			rep.TotalConfigs += res.Configs
		}
	}
	return rep, nil
}

// enumerate returns all multisets over d variables with total exactly s.
func enumerate(d int, s int64) []multiset.Vec {
	var out []multiset.Vec
	cur := multiset.New(d)
	var rec func(i int, left int64)
	rec = func(i int, left int64) {
		if i == d-1 {
			cur[i] = left
			out = append(out, cur.Clone())
			cur[i] = 0
			return
		}
		for n := int64(0); n <= left; n++ {
			cur[i] = n
			rec(i+1, left-n)
		}
		cur[i] = 0
	}
	if d == 0 {
		return nil
	}
	rec(0, s)
	return out
}

// ThresholdWitness computes, for a single-input protocol, the observed
// threshold: the smallest input i in [2, maxInput] whose fair output is 1,
// requiring outputs to be monotone (0 below, 1 from the witness on) as a
// threshold predicate demands. found is false if every input up to maxInput
// outputs 0. An error is returned on non-convergence or non-monotonicity,
// which disqualify the protocol as a threshold ("busy beaver") protocol.
func ThresholdWitness(p *protocol.Protocol, maxInput int64, limit int) (eta int64, found bool, err error) {
	if p.NumInputs() != 1 {
		return 0, false, fmt.Errorf("reach: ThresholdWitness needs a single input variable")
	}
	eta, found = 0, false
	for i := int64(2); i <= maxInput; i++ {
		g, err := Explore(p, p.InitialConfigN(i), limit)
		if err != nil {
			return 0, false, err
		}
		b, ok := g.FairOutput()
		if !ok {
			return 0, false, fmt.Errorf("reach: no consistent fair output on input %d", i)
		}
		switch {
		case b == 1 && !found:
			eta, found = i, true
		case b == 0 && found:
			return 0, false, fmt.Errorf("reach: output not monotone: 1 at %d but 0 at %d", eta, i)
		}
	}
	return eta, found, nil
}
