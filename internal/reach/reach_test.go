package reach

import (
	"errors"
	"testing"

	"repro/internal/multiset"
	"repro/internal/pred"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

// oscillator is a protocol whose two configurations of size 2 alternate
// between outputs, so fair executions never stabilise.
func oscillator(t testing.TB) *protocol.Protocol {
	t.Helper()
	b := protocol.NewBuilder("oscillator")
	u := b.AddState("u", 0)
	v := b.AddState("v", 1)
	b.AddTransition(u, u, v, v)
	b.AddTransition(v, v, u, u)
	b.AddInput("x", u)
	return b.CompleteWithIdentity().MustBuild()
}

func TestExploreBasics(t *testing.T) {
	e := protocols.Succinct(2) // states 0, 1, 2, 4; computes x ≥ 4
	p := e.Protocol
	g, err := Explore(p, p.InitialConfigN(4), 0)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if g.Len() < 4 {
		t.Fatalf("graph too small: %d", g.Len())
	}
	if !g.Start().Equal(p.InitialConfigN(4)) {
		t.Fatal("start configuration mismatch")
	}
	// The all-2^2 configuration must be reachable (4 ones merge pairwise).
	top, _ := p.StateByName("2^2")
	final := multiset.New(p.NumStates())
	final[top] = 4
	idx, ok := g.IndexOf(final)
	if !ok {
		t.Fatal("all-top configuration unreachable")
	}
	// Path replay reproduces it exactly.
	steps := g.Path(idx)
	got, err := ReplayPath(p, g.Start(), steps, g)
	if err != nil {
		t.Fatalf("ReplayPath: %v", err)
	}
	if !got.Equal(final) {
		t.Fatalf("replay = %v, want %v", got, final)
	}
	// Corrupting the path must be detected.
	if len(steps) > 0 {
		bad := append([]Step(nil), steps...)
		bad[0].Transition = p.NumTransitions() + 5
		if _, err := ReplayPath(p, g.Start(), bad, g); err == nil {
			t.Fatal("corrupted path should fail replay")
		}
	}
}

func TestExploreLimit(t *testing.T) {
	e := protocols.FlockOfBirds(5)
	p := e.Protocol
	_, err := Explore(p, p.InitialConfigN(8), 3)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
}

func TestExploreDimensionMismatch(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	if _, err := Explore(e.Protocol, multiset.New(1), 0); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestFairOutputMajority(t *testing.T) {
	e := protocols.Majority()
	p := e.Protocol
	tests := []struct {
		a, b int64
		want int
	}{
		{3, 2, 1},
		{2, 3, 0},
		{2, 2, 0}, // tie resolves to 0 (x_A > x_B is false)
		{5, 1, 1},
		{1, 5, 0},
	}
	for _, tc := range tests {
		g, err := Explore(p, p.InitialConfig(multiset.Vec{tc.a, tc.b}), 0)
		if err != nil {
			t.Fatalf("Explore(%d,%d): %v", tc.a, tc.b, err)
		}
		got, ok := g.FairOutput()
		if !ok || got != tc.want {
			t.Errorf("majority(%d,%d): fair output %d,%t, want %d", tc.a, tc.b, got, ok, tc.want)
		}
	}
}

func TestFairOutputUndefinedOnOscillator(t *testing.T) {
	p := oscillator(t)
	g, err := Explore(p, p.InitialConfigN(2), 0)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if _, ok := g.FairOutput(); ok {
		t.Fatal("oscillator must have no stable fair output")
	}
	// And no stable configurations at all.
	if got := g.StableConfigs(0); len(got) != 0 {
		t.Fatalf("oscillator has no 0-stable configs, got %v", got)
	}
	if got := g.StableConfigs(1); len(got) != 0 {
		t.Fatalf("oscillator has no 1-stable configs, got %v", got)
	}
	if _, _, ok := g.FirstStable(); ok {
		t.Fatal("FirstStable should fail on oscillator")
	}
}

func TestStableFlags(t *testing.T) {
	e := protocols.Majority()
	p := e.Protocol
	// Input (2,1): A majority; all fair executions stabilise to 1.
	g, err := Explore(p, p.InitialConfig(multiset.Vec{2, 1}), 0)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	s1 := g.StableFlags(1)
	s0 := g.StableFlags(0)
	idx, b, ok := g.FirstStable()
	if !ok || b != 1 {
		t.Fatalf("FirstStable = %d,%d,%t; want a 1-stable config", idx, b, ok)
	}
	// A 1-stable config must have output 1 and all successors 1-stable.
	for i := range s1 {
		if !s1[i] {
			continue
		}
		if ob, ok := p.OutputOf(g.Config(i)); !ok || ob != 1 {
			t.Fatalf("1-stable config %s has output %d,%t", p.FormatConfig(g.Config(i)), ob, ok)
		}
		for _, w := range g.Succs(i) {
			if !s1[w] {
				t.Fatal("successor of 1-stable config must be 1-stable")
			}
		}
	}
	// Nothing can be both 0-stable and 1-stable.
	for i := range s0 {
		if s0[i] && s1[i] {
			t.Fatal("config stable for both outputs")
		}
	}
	// The initial configuration contains A and B: output undefined ⇒ not stable.
	if s0[0] || s1[0] {
		t.Fatal("IC(2,1) must not be stable")
	}
}

// TestCatalogExhaustive is the central correctness test of the zoo: every
// catalog protocol computes its declared predicate for all inputs up to a
// per-entry bound, verified exactly via bottom-SCC analysis.
func TestCatalogExhaustive(t *testing.T) {
	for name, e := range protocols.Catalog() {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			maxIn := e.MaxExactInput
			if maxIn > 9 {
				maxIn = 9
			}
			rep, err := VerifyRange(e.Protocol, e.Pred, 2, maxIn, 0)
			if err != nil {
				t.Fatalf("VerifyRange: %v", err)
			}
			if !rep.AllOK() {
				t.Fatalf("verification failed:\n%s", rep.String())
			}
		})
	}
}

// TestThresholdProtocolsLargerInputs pushes the threshold families a bit
// beyond the catalog bound to catch boundary errors around η.
func TestThresholdProtocolsLargerInputs(t *testing.T) {
	cases := []struct {
		name string
		e    protocols.Entry
		eta  int64
		max  int64
	}{
		{"flock(5)", protocols.FlockOfBirds(5), 5, 11},
		{"succinct(3)", protocols.Succinct(3), 8, 11},
		{"binary(5)", protocols.BinaryThreshold(5), 5, 11},
		{"binary(11)", protocols.BinaryThreshold(11), 11, 13},
		{"leader-flock(4)", protocols.LeaderFlock(4), 4, 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			eta, found, err := ThresholdWitness(tc.e.Protocol, tc.max, 0)
			if err != nil {
				t.Fatalf("ThresholdWitness: %v", err)
			}
			if tc.eta > tc.max {
				if found {
					t.Fatalf("found spurious threshold %d", eta)
				}
				return
			}
			if !found || eta != tc.eta {
				t.Fatalf("threshold = %d (found=%t), want %d", eta, found, tc.eta)
			}
		})
	}
}

func TestThresholdWitnessRejectsNonThreshold(t *testing.T) {
	// Parity is not monotone: output flips at every input.
	e := protocols.Parity()
	if _, _, err := ThresholdWitness(e.Protocol, 6, 0); err == nil {
		t.Fatal("parity should be rejected as a threshold protocol")
	}
	// Multi-input protocols are rejected.
	if _, _, err := ThresholdWitness(protocols.Majority().Protocol, 5, 0); err == nil {
		t.Fatal("majority should be rejected (two inputs)")
	}
}

func TestVerifyRangeArityMismatch(t *testing.T) {
	e := protocols.Majority()
	if _, err := VerifyRange(e.Protocol, pred.NewCounting(3), 2, 4, 0); err == nil {
		t.Fatal("want arity mismatch error")
	}
}

func TestVerifyInputReportsMismatch(t *testing.T) {
	// Claim flock(5) computes x ≥ 4: must fail on input 4.
	e := protocols.FlockOfBirds(5)
	res, err := VerifyInput(e.Protocol, pred.NewCounting(4), multiset.Vec{4}, 0)
	if err != nil {
		t.Fatalf("VerifyInput: %v", err)
	}
	if res.OK {
		t.Fatal("flock(5) does not compute x ≥ 4; verification should fail")
	}
	if res.Got != 0 || !res.Want {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestEnumerate(t *testing.T) {
	tests := []struct {
		d    int
		s    int64
		want int
	}{
		{1, 5, 1},
		{2, 3, 4}, // (0,3) (1,2) (2,1) (3,0)
		{3, 2, 6}, // C(4,2)
		{2, 0, 1}, // (0,0)
		{0, 3, 0},
	}
	for _, tc := range tests {
		got := enumerate(tc.d, tc.s)
		if len(got) != tc.want {
			t.Errorf("enumerate(%d,%d) has %d elements, want %d", tc.d, tc.s, len(got), tc.want)
		}
		for _, v := range got {
			if v.Size() != tc.s || v.Dim() != tc.d {
				t.Errorf("enumerate(%d,%d) produced %v", tc.d, tc.s, v)
			}
		}
	}
}

func TestCoveringConfigs(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	g, err := Explore(p, p.InitialConfigN(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := p.StateByName("2^2")
	target := multiset.New(p.NumStates())
	target[top] = 1
	if len(g.CoveringConfigs(target)) == 0 {
		t.Fatal("input 4 must reach a configuration covering 2^2")
	}
	target[top] = 5
	if len(g.CoveringConfigs(target)) != 0 {
		t.Fatal("only 4 agents exist; covering 5·2^2 is impossible")
	}
}

func TestReportString(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	rep, err := VerifyRange(e.Protocol, pred.NewCounting(2), 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllOK() {
		t.Fatal("flock(3) does not compute x ≥ 2")
	}
	s := rep.String()
	if s == "" {
		t.Fatal("empty report string")
	}
	if len(rep.Failures()) == 0 {
		t.Fatal("expected failures")
	}
}

func TestSCCsOnChain(t *testing.T) {
	// flock(2) from input 2: {1,1} → {0,2}·wait: 1,1 ↦ 2,2 since 1+1 ≥ 2.
	// So {1:2} → {2:2}, a two-node chain with absorbing end.
	e := protocols.FlockOfBirds(2)
	p := e.Protocol
	g, err := Explore(p, p.InitialConfigN(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	info := g.SCCs()
	if info.NumComps != g.Len() {
		t.Fatalf("chain should have singleton SCCs: %d comps, %d nodes", info.NumComps, g.Len())
	}
	bottoms := 0
	for c := 0; c < info.NumComps; c++ {
		if info.Bottom[c] {
			bottoms++
		}
	}
	if bottoms != 1 {
		t.Fatalf("chain has %d bottom components, want 1", bottoms)
	}
}
