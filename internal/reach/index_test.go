package reach

import (
	"math/rand"
	"testing"

	"repro/internal/multiset"
)

// FuzzNodeIndex drives the open-addressing index against a map[string]int32
// oracle keyed by the serialization format (multiset.Vec.Key): every
// lookup must agree with the oracle, and after all inserts every stored
// configuration must still be found under its original id.
func FuzzNodeIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3}, uint8(4))
	f.Add([]byte{255, 255, 0, 0, 255, 255}, uint8(2))
	f.Add([]byte{7}, uint8(1))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, dimRaw uint8) {
		dim := int(dimRaw%5) + 1
		st := &configStore{dim: dim}
		var ix nodeIndex
		oracle := make(map[string]int32)
		for off := 0; off+dim <= len(data); off += dim {
			c := make([]int64, dim)
			for i := 0; i < dim; i++ {
				c[i] = int64(int8(data[off+i]))
			}
			key := multiset.Vec(c).Key()
			h := hashWords(c)
			id, ok := ix.lookup(st, c, h)
			wantID, wantOK := oracle[key]
			if ok != wantOK || (ok && id != wantID) {
				t.Fatalf("lookup(%v) = %d,%t, oracle %d,%t", c, id, ok, wantID, wantOK)
			}
			if !ok {
				nid := st.add(c)
				ix.add(nid, h)
				oracle[key] = nid
			}
		}
		for key, wantID := range oracle {
			c, err := multiset.ParseKey(key, dim)
			if err != nil {
				t.Fatalf("ParseKey: %v", err)
			}
			id, ok := ix.lookup(st, c, hashWords(c))
			if !ok || id != wantID {
				t.Fatalf("final lookup(%v) = %d,%t, oracle %d", c, id, ok, wantID)
			}
		}
	})
}

// TestNodeIndexRandomized exercises shard growth and probe chains well past
// the fuzz corpus sizes: 50k random low-entropy vectors (lots of hash
// traffic per shard) against the map oracle.
func TestNodeIndexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 6
	st := &configStore{dim: dim}
	var ix nodeIndex
	oracle := make(map[string]int32)
	c := make([]int64, dim)
	for op := 0; op < 50_000; op++ {
		for i := range c {
			c[i] = int64(rng.Intn(8)) // small counts: realistic configurations
		}
		key := multiset.Vec(c).Key()
		h := hashWords(c)
		id, ok := ix.lookup(st, c, h)
		wantID, wantOK := oracle[key]
		if ok != wantOK || (ok && id != wantID) {
			t.Fatalf("op %d: lookup(%v) = %d,%t, oracle %d,%t", op, c, id, ok, wantID, wantOK)
		}
		if !ok {
			nid := st.add(c)
			ix.add(nid, h)
			oracle[key] = nid
		}
	}
	if len(oracle) == 0 {
		t.Fatal("no insertions happened")
	}
	// Negative lookups: vectors outside the sampled range must miss.
	for i := range c {
		c[i] = 100 + int64(i)
	}
	if _, ok := ix.lookup(st, c, hashWords(c)); ok {
		t.Fatalf("lookup(%v) hit, want miss", c)
	}
}

// TestHashWordsDistribution sanity-checks that distinct small vectors do
// not collide in practice (the index handles collisions, but the quality
// of hashWords is what keeps probes short).
func TestHashWordsDistribution(t *testing.T) {
	seen := make(map[uint64][]int64)
	c := []int64{0, 0, 0}
	for a := int64(0); a < 16; a++ {
		for b := int64(0); b < 16; b++ {
			for d := int64(0); d < 16; d++ {
				c[0], c[1], c[2] = a, b, d
				h := hashWords(c)
				if prev, ok := seen[h]; ok {
					t.Fatalf("collision: %v and %v both hash to %#x", prev, c, h)
				}
				seen[h] = append([]int64(nil), c...)
			}
		}
	}
}
