package reach

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/protocol"
)

// ExploreParallel builds the same configuration graph as Explore using a
// level-synchronized parallel BFS: within each level, successor computation
// (the enabledness/firing work) fans out across workers; the merge into the
// shared node table is single-threaded, keeping the data structures free of
// locks on the hot read path. The set of configurations, the reachability
// relation, and the BFS level of every node are identical to Explore's;
// node numbering within a level may differ between runs.
//
// workers ≤ 0 selects GOMAXPROCS.
func ExploreParallel(p *protocol.Protocol, start protocol.Config, limit, workers int) (*Graph, error) {
	if limit <= 0 {
		limit = 2_000_000
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if start.Dim() != p.NumStates() {
		return nil, fmt.Errorf("reach: start configuration has dimension %d, want %d",
			start.Dim(), p.NumStates())
	}
	g := &Graph{
		p:     p,
		index: make(map[string]int),
	}
	g.configs = append(g.configs, start.Clone())
	g.index[start.Key()] = 0
	g.succs = append(g.succs, nil)
	g.parent = append(g.parent, -1)
	g.parentTran = append(g.parentTran, -1)

	// Pre-collect non-identity transitions once.
	var trans []int
	for t := 0; t < p.NumTransitions(); t++ {
		if !p.Displacement(t).IsZero() {
			trans = append(trans, t)
		}
	}

	type edge struct {
		from int32
		tran int32
		cfg  protocol.Config
		key  string
	}

	level := []int32{0}
	for len(level) > 0 {
		// Fan out successor computation.
		results := make([][]edge, workers)
		var wg sync.WaitGroup
		chunk := (len(level) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(level) {
				break
			}
			hi := lo + chunk
			if hi > len(level) {
				hi = len(level)
			}
			wg.Add(1)
			go func(w int, nodes []int32) {
				defer wg.Done()
				var out []edge
				next := protocol.Config(make([]int64, p.NumStates()))
				for _, n := range nodes {
					c := g.configs[n]
					for _, t := range trans {
						if !p.Enabled(c, t) {
							continue
						}
						copy(next, c)
						next.AddInPlace(p.Displacement(t))
						out = append(out, edge{
							from: n,
							tran: int32(t),
							cfg:  next.Clone(),
							key:  next.Key(),
						})
					}
				}
				results[w] = out
			}(w, level[lo:hi])
		}
		wg.Wait()

		// Merge single-threaded.
		var nextLevel []int32
		for _, out := range results {
			for _, e := range out {
				j, ok := g.index[e.key]
				if !ok {
					j = len(g.configs)
					if j > limit {
						return nil, fmt.Errorf("%w: limit %d from %s",
							ErrLimitExceeded, limit, p.FormatConfig(start))
					}
					g.configs = append(g.configs, e.cfg)
					g.index[e.key] = j
					g.succs = append(g.succs, nil)
					g.parent = append(g.parent, e.from)
					g.parentTran = append(g.parentTran, e.tran)
					nextLevel = append(nextLevel, int32(j))
				}
				if int32(j) == e.from {
					continue
				}
				dup := false
				for _, s := range g.succs[e.from] {
					if int(s) == j {
						dup = true
						break
					}
				}
				if !dup {
					g.succs[e.from] = append(g.succs[e.from], int32(j))
				}
			}
		}
		level = nextLevel
	}
	return g, nil
}
