package reach

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/protocol"
)

// ExploreParallel builds the same configuration graph as Explore using a
// frontier-parallel BFS. Nodes are numbered in BFS discovery order, so each
// level occupies a contiguous id range; per level the work proceeds in four
// phases:
//
//  1. fan-out: workers split the frontier range, compute successors, hash
//     them, and probe the (read-only during this phase) index;
//  2. sharded dedup: candidate-new configurations are deduplicated within
//     the level, in parallel per index shard;
//  3. numbering: a single cheap scan assigns fresh node ids in (source
//     node, transition index) order — exactly the order the sequential
//     explorer discovers them in, so the numbering, BFS tree, and parent
//     edges are identical to Explore's;
//  4. sharded insertion: workers copy the new configurations into the
//     arena and insert them into their own index shards concurrently.
//
// The graph — node numbering included — is deterministic and identical to
// Explore's for any worker count. workers ≤ 0 selects GOMAXPROCS.
func ExploreParallel(p *protocol.Protocol, start protocol.Config, limit, workers int) (*Graph, error) {
	return ExploreParallelInterruptible(p, start, limit, workers, nil)
}

// pedge is one candidate edge produced by the fan-out phase.
type pedge struct {
	src   int32
	tran  int32 // transition index in protocol numbering
	found int32 // target id if it was already in the index, else -1
	dup   int32 // earlier edge index this level with the same config (-1 = canonical)
	id    int32 // final target id, set by the numbering phase
	hash  uint64
	cfg   []int64 // candidate configuration; nil when found ≥ 0
}

// workerOut is one worker's share of a level: its edges in (source,
// transition) order, plus its candidate-new edges bucketed by index shard.
type workerOut struct {
	edges   []pedge
	byShard [numShards][]int32 // local edge indices
}

// ExploreParallelInterruptible is ExploreParallel with cooperative
// cancellation: it aborts with ErrInterrupted soon after the stop channel
// closes. A nil channel disables the checks.
func ExploreParallelInterruptible(p *protocol.Protocol, start protocol.Config, limit, workers int, stop <-chan struct{}) (*Graph, error) {
	limit = clampLimit(limit)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if start.Dim() != p.NumStates() {
		return nil, fmt.Errorf("reach: start configuration has dimension %d, want %d",
			start.Dim(), p.NumStates())
	}
	g := newGraph(p, start)
	trans := compactTransitions(p)
	dim := g.store.dim
	var aborted atomic.Bool

	for lo, hi := 0, g.store.n; lo < hi; lo, hi = hi, g.store.n {
		if interrupted(stop) {
			return nil, ErrInterrupted
		}

		// Phase 1: fan out successor generation across the frontier range.
		nw := workers
		if hi-lo < nw {
			nw = hi - lo
		}
		chunk := (hi - lo + nw - 1) / nw
		results := make([]workerOut, nw)
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			clo := lo + w*chunk
			chi := clo + chunk
			if chi > hi {
				chi = hi
			}
			wg.Add(1)
			go func(w, clo, chi int) {
				defer wg.Done()
				var out workerOut
				var buf []int64 // worker-local arena for candidate configs
				next := make([]int64, dim)
				for n := clo; n < chi; n++ {
					if (n-clo)&255 == 0 && (aborted.Load() || interrupted(stop)) {
						aborted.Store(true)
						return
					}
					c := g.store.at(int32(n))
					for _, t := range trans {
						if t.p == t.q {
							if c[t.p] < 2 {
								continue
							}
						} else if c[t.p] < 1 || c[t.q] < 1 {
							continue
						}
						copy(next, c)
						next[t.p]--
						next[t.q]--
						next[t.p2]++
						next[t.q2]++
						h := hashWords(next)
						found := int32(-1)
						if j, ok := g.idx.lookup(&g.store, next, h); ok {
							found = j
						}
						var cfg []int64
						if found < 0 {
							k := len(buf)
							buf = append(buf, next...)
							cfg = buf[k : k+dim : k+dim]
							sh := h >> (64 - shardBits)
							out.byShard[sh] = append(out.byShard[sh], int32(len(out.edges)))
						}
						out.edges = append(out.edges, pedge{
							src: int32(n), tran: t.idx, found: found, dup: -1, hash: h, cfg: cfg,
						})
					}
				}
				results[w] = out
			}(w, clo, chi)
		}
		wg.Wait()
		if aborted.Load() {
			return nil, ErrInterrupted
		}

		// Glue: concatenate the per-worker edge lists (worker order ×
		// in-worker order = global (source, transition) order) and lift the
		// per-shard candidate buckets to global edge indices, preserving
		// that order.
		total := 0
		for w := range results {
			total += len(results[w].edges)
		}
		edges := make([]pedge, 0, total)
		var shardCand [numShards][]int32
		for w := range results {
			base := int32(len(edges))
			edges = append(edges, results[w].edges...)
			for s := 0; s < numShards; s++ {
				for _, li := range results[w].byShard[s] {
					shardCand[s] = append(shardCand[s], base+li)
				}
			}
		}

		// Phase 2: intra-level dedup, parallel per shard. Configurations in
		// different shards hash differently, so shards are independent.
		pw := workers
		if pw > numShards {
			pw = numShards
		}
		var dwg sync.WaitGroup
		for w := 0; w < pw; w++ {
			dwg.Add(1)
			go func(w int) {
				defer dwg.Done()
				for s := w; s < numShards; s += pw {
					seen := make(map[uint64][]int32)
					for _, ei := range shardCand[s] {
						e := &edges[ei]
						canon := seen[e.hash]
						for _, cj := range canon {
							if eqWords(edges[cj].cfg, e.cfg) {
								e.dup = cj
								break
							}
						}
						if e.dup < 0 {
							seen[e.hash] = append(canon, ei)
						}
					}
				}
			}(w)
		}
		dwg.Wait()

		// Phase 3: deterministic numbering. Fresh ids are assigned in edge
		// order, i.e. exactly the sequential explorer's discovery order.
		fresh := 0
		for ei := range edges {
			e := &edges[ei]
			switch {
			case e.found >= 0:
				e.id = e.found
			case e.dup >= 0:
				e.id = edges[e.dup].id
			default:
				if g.store.n+fresh >= limit {
					return nil, fmt.Errorf("%w: limit %d from %s", ErrLimitExceeded, limit, p.FormatConfig(start))
				}
				e.id = int32(g.store.n + fresh)
				fresh++
				g.parent = append(g.parent, e.src)
				g.parentTran = append(g.parentTran, e.tran)
				g.depth = append(g.depth, g.depth[e.src]+1)
			}
		}

		// Phase 4: sharded insertion. The arena is grown once; workers then
		// copy configurations into their reserved slots and insert into
		// their own index shards concurrently.
		g.store.grow(fresh)
		var iwg sync.WaitGroup
		for w := 0; w < pw; w++ {
			iwg.Add(1)
			go func(w int) {
				defer iwg.Done()
				for s := w; s < numShards; s += pw {
					for _, ei := range shardCand[s] {
						e := &edges[ei]
						if e.dup >= 0 {
							continue
						}
						g.store.setAt(e.id, e.cfg)
						g.idx.add(e.id, e.hash)
					}
				}
			}(w)
		}
		iwg.Wait()

		// CSR merge: edges are in source order, so successor segments can
		// be appended directly; empty sources are closed in passing.
		nextToClose := lo
		segStart := len(g.succ)
		closeTo := func(s int) {
			for nextToClose < s {
				g.succOff = append(g.succOff, int64(len(g.succ)))
				nextToClose++
				segStart = len(g.succ)
			}
		}
		for ei := range edges {
			e := &edges[ei]
			closeTo(int(e.src))
			if e.id == e.src {
				continue
			}
			dup := false
			for _, s := range g.succ[segStart:] {
				if s == e.id {
					dup = true
					break
				}
			}
			if !dup {
				g.succ = append(g.succ, e.id)
			}
		}
		closeTo(hi)
	}
	return g, nil
}
