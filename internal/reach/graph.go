// Package reach implements exact finite-population semantics for population
// protocols: breadth-first exploration of the configuration graph of a fixed
// population size, strongly-connected-component analysis, and the resulting
// sound-and-complete verdicts about fair executions.
//
// The key characterisation (standard for finite systems and used as the
// ground truth throughout this repository): transitions preserve population
// size, so the configurations reachable from IC(v) form a finite graph, and
// a fair execution eventually enters a bottom SCC and visits every
// configuration of that SCC infinitely often. Hence every fair execution
// from IC(v) stabilises to output b iff every bottom SCC reachable from
// IC(v) is a b-consensus (all its configurations have output b), and the
// protocol computes ϕ on input v iff this holds with b = ϕ(v).
//
// The exploration core is built for throughput: configurations live
// dimension-strided in one flat arena, successor lists are a single CSR
// (compressed sparse row) structure, and deduplication goes through an
// open-addressing index that hashes the raw coordinates — no per-node
// allocations on the hot path. See docs/performance.md for the layout, the
// parallel explorer, and the determinism guarantees.
package reach

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// ErrLimitExceeded is returned when exploration would exceed the
// configuration limit.
var ErrLimitExceeded = errors.New("reach: configuration limit exceeded")

// ErrInterrupted is returned when a stop channel closes mid-exploration
// (cooperative cancellation; see ExploreInterruptible).
var ErrInterrupted = errors.New("reach: interrupted")

// interrupted polls a stop channel without blocking. Hot loops batch calls
// (every ~1024 nodes) so the select never shows up in profiles.
func interrupted(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Step is one edge of a path: firing Transition led to the configuration
// with index To.
type Step struct {
	Transition int
	To         int
}

// Graph is the set of configurations reachable from a start configuration,
// with its transition edges. Node 0 is the start configuration; nodes are
// numbered in BFS discovery order (by level, and within a level by the
// (source node, transition index) of the discovering edge), so each BFS
// level is a contiguous id range. Explore and ExploreParallel produce
// identical numberings.
type Graph struct {
	p     *protocol.Protocol
	store configStore
	idx   nodeIndex
	// Successor lists in CSR form: the successors of node i are
	// succ[succOff[i]:succOff[i+1]] (identity self-loops omitted,
	// duplicate edges collapsed).
	succOff []int64
	succ    []int32
	// BFS tree for path reconstruction: parent node, the transition fired,
	// and the BFS depth (= shortest path length from the start).
	parent     []int32
	parentTran []int32
	depth      []int32
}

// tran is a compact non-identity transition: pre ⟅p,q⟆, post ⟅p2,q2⟆.
type tran struct {
	p, q, p2, q2 int32
	idx          int32 // index in the protocol's transition list
}

// compactTransitions returns the protocol's non-identity transitions in a
// form the exploration inner loop consumes without method calls or
// displacement vectors.
func compactTransitions(p *protocol.Protocol) []tran {
	var out []tran
	for t := 0; t < p.NumTransitions(); t++ {
		if p.Displacement(t).IsZero() {
			continue // identity transition: self-loop, irrelevant to SCCs
		}
		tr := p.Transition(t)
		out = append(out, tran{
			p: int32(tr.P), q: int32(tr.Q), p2: int32(tr.P2), q2: int32(tr.Q2),
			idx: int32(t),
		})
	}
	return out
}

// visitFunc observes every newly discovered node (including node 0) at its
// BFS depth. Returning false stops the exploration immediately; the graph
// is then partial (valid parent/depth data, incomplete successor lists) and
// is only used internally, e.g. by the goal-directed cover search.
type visitFunc func(g *Graph, node, depth int32) bool

// Explore builds the configuration graph reachable from start. It returns
// ErrLimitExceeded if more than limit configurations are reachable
// (limit ≤ 0 means a default of 2,000,000).
func Explore(p *protocol.Protocol, start protocol.Config, limit int) (*Graph, error) {
	return ExploreInterruptible(p, start, limit, nil)
}

// ExploreInterruptible is Explore with cooperative cancellation: it aborts
// with ErrInterrupted soon after the stop channel closes. A nil channel
// disables the checks.
func ExploreInterruptible(p *protocol.Protocol, start protocol.Config, limit int, stop <-chan struct{}) (*Graph, error) {
	return exploreCore(p, start, limit, stop, nil)
}

// clampLimit normalizes the configuration limit: ≤ 0 means the default,
// and node ids must fit in int32.
func clampLimit(limit int) int {
	if limit <= 0 {
		limit = 2_000_000
	}
	if limit > math.MaxInt32-1 {
		limit = math.MaxInt32 - 1
	}
	return limit
}

// newGraph allocates an empty graph holding only the start configuration.
func newGraph(p *protocol.Protocol, start protocol.Config) *Graph {
	g := &Graph{
		p:       p,
		store:   configStore{dim: p.NumStates()},
		succOff: make([]int64, 1, 1024),
	}
	g.store.add(start)
	g.idx.add(0, hashWords(start))
	g.parent = append(g.parent, -1)
	g.parentTran = append(g.parentTran, -1)
	g.depth = append(g.depth, 0)
	return g
}

// exploreCore is the sequential BFS over the configuration graph. All
// public sequential entry points (Explore, CoverLengths, ...) funnel here.
func exploreCore(p *protocol.Protocol, start protocol.Config, limit int, stop <-chan struct{}, visit visitFunc) (*Graph, error) {
	limit = clampLimit(limit)
	if start.Dim() != p.NumStates() {
		return nil, fmt.Errorf("reach: start configuration has dimension %d, want %d",
			start.Dim(), p.NumStates())
	}
	g := newGraph(p, start)
	if visit != nil && !visit(g, 0, 0) {
		return g, nil
	}
	trans := compactTransitions(p)
	next := make([]int64, g.store.dim)
	for head := 0; head < g.store.n; head++ {
		if head&1023 == 0 && interrupted(stop) {
			return nil, ErrInterrupted
		}
		c := g.store.at(int32(head))
		d := g.depth[head]
		segStart := len(g.succ) // this node's successor segment under construction
		for _, t := range trans {
			if t.p == t.q {
				if c[t.p] < 2 {
					continue
				}
			} else if c[t.p] < 1 || c[t.q] < 1 {
				continue
			}
			copy(next, c)
			next[t.p]--
			next[t.q]--
			next[t.p2]++
			next[t.q2]++
			h := hashWords(next)
			j, ok := g.idx.lookup(&g.store, next, h)
			if !ok {
				if g.store.n >= limit {
					return nil, fmt.Errorf("%w: limit %d from %s", ErrLimitExceeded, limit, p.FormatConfig(start))
				}
				j = g.store.add(next)
				g.idx.add(j, h)
				g.parent = append(g.parent, int32(head))
				g.parentTran = append(g.parentTran, t.idx)
				g.depth = append(g.depth, d+1)
				if visit != nil && !visit(g, j, d+1) {
					return g, nil
				}
				// The arena may have been reallocated; refresh the view of
				// the head configuration (contents are unchanged either way).
				c = g.store.at(int32(head))
			}
			if int(j) == head {
				continue
			}
			// Dedup successor edges (degree is small).
			dup := false
			for _, s := range g.succ[segStart:] {
				if s == j {
					dup = true
					break
				}
			}
			if !dup {
				g.succ = append(g.succ, j)
			}
		}
		g.succOff = append(g.succOff, int64(len(g.succ)))
	}
	return g, nil
}

// Protocol returns the protocol this graph was built for.
func (g *Graph) Protocol() *protocol.Protocol { return g.p }

// Len returns the number of reachable configurations.
func (g *Graph) Len() int { return g.store.n }

// Config returns configuration i. The returned vector is a view into the
// graph's arena and must not be modified.
func (g *Graph) Config(i int) protocol.Config { return protocol.Config(g.store.at(int32(i))) }

// Start returns the start configuration (node 0).
func (g *Graph) Start() protocol.Config { return g.Config(0) }

// Depth returns the BFS depth of node i, i.e. the length of a shortest
// execution from the start configuration to it.
func (g *Graph) Depth(i int) int { return int(g.depth[i]) }

// IndexOf returns the node index of configuration c.
func (g *Graph) IndexOf(c protocol.Config) (int, bool) {
	if c.Dim() != g.store.dim {
		return 0, false
	}
	i, ok := g.idx.lookup(&g.store, c, hashWords(c))
	return int(i), ok
}

// Succs returns the successor node indices of node i (identity self-loops
// omitted). The slice is owned by the graph and must not be modified.
func (g *Graph) Succs(i int) []int32 { return g.succ[g.succOff[i]:g.succOff[i+1]] }

// Path returns the sequence of steps of a shortest path (in the BFS tree)
// from the start configuration to node i.
func (g *Graph) Path(i int) []Step {
	rev := make([]Step, 0, g.depth[i])
	for i != 0 {
		rev = append(rev, Step{Transition: int(g.parentTran[i]), To: i})
		i = int(g.parent[i])
	}
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// ReplayPath fires the steps from a copy of from and returns the resulting
// configuration, validating enabledness; it is used by certificate checkers
// to re-verify paths with exact arithmetic.
func ReplayPath(p *protocol.Protocol, from protocol.Config, steps []Step, g *Graph) (protocol.Config, error) {
	c := from.Clone()
	for _, s := range steps {
		if s.Transition < 0 || s.Transition >= p.NumTransitions() {
			return nil, fmt.Errorf("reach: bad transition index %d", s.Transition)
		}
		if !p.Enabled(c, s.Transition) {
			return nil, fmt.Errorf("reach: transition %s disabled during replay",
				p.FormatTransition(p.Transition(s.Transition)))
		}
		p.FireInPlace(c, s.Transition)
		if g != nil {
			if want := g.Config(s.To); !c.Equal(want) {
				return nil, fmt.Errorf("reach: replay diverged from recorded path")
			}
		}
	}
	return c, nil
}

// CanReach reports whether target is reachable from the start configuration.
func (g *Graph) CanReach(target protocol.Config) bool {
	_, ok := g.IndexOf(target)
	return ok
}

// Filter returns the indices of configurations satisfying keep.
func (g *Graph) Filter(keep func(protocol.Config) bool) []int {
	var out []int
	for i := 0; i < g.store.n; i++ {
		if keep(g.Config(i)) {
			out = append(out, i)
		}
	}
	return out
}

// CoveringConfigs returns the indices of configurations that cover m, i.e.
// C ≥ m. Used for coverability queries (Rackoff's theorem context).
func (g *Graph) CoveringConfigs(m multiset.Vec) []int {
	return g.Filter(func(c protocol.Config) bool { return m.Le(c) })
}
