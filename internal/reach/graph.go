// Package reach implements exact finite-population semantics for population
// protocols: breadth-first exploration of the configuration graph of a fixed
// population size, strongly-connected-component analysis, and the resulting
// sound-and-complete verdicts about fair executions.
//
// The key characterisation (standard for finite systems and used as the
// ground truth throughout this repository): transitions preserve population
// size, so the configurations reachable from IC(v) form a finite graph, and
// a fair execution eventually enters a bottom SCC and visits every
// configuration of that SCC infinitely often. Hence every fair execution
// from IC(v) stabilises to output b iff every bottom SCC reachable from
// IC(v) is a b-consensus (all its configurations have output b), and the
// protocol computes ϕ on input v iff this holds with b = ϕ(v).
package reach

import (
	"errors"
	"fmt"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// ErrLimitExceeded is returned when exploration would exceed the
// configuration limit.
var ErrLimitExceeded = errors.New("reach: configuration limit exceeded")

// ErrInterrupted is returned when a stop channel closes mid-exploration
// (cooperative cancellation; see ExploreInterruptible).
var ErrInterrupted = errors.New("reach: interrupted")

// interrupted polls a stop channel without blocking.
func interrupted(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Step is one edge of a path: firing Transition led to the configuration
// with index To.
type Step struct {
	Transition int
	To         int
}

// Graph is the set of configurations reachable from a start configuration,
// with its transition edges. Node 0 is the start configuration.
type Graph struct {
	p       *protocol.Protocol
	configs []protocol.Config
	index   map[string]int
	succs   [][]int32
	// BFS tree for path reconstruction: parent node and the transition fired.
	parent     []int32
	parentTran []int32
}

// Explore builds the configuration graph reachable from start. It returns
// ErrLimitExceeded if more than limit configurations are reachable
// (limit ≤ 0 means a default of 2,000,000).
func Explore(p *protocol.Protocol, start protocol.Config, limit int) (*Graph, error) {
	return ExploreInterruptible(p, start, limit, nil)
}

// ExploreInterruptible is Explore with cooperative cancellation: it aborts
// with ErrInterrupted soon after the stop channel closes. A nil channel
// disables the checks.
func ExploreInterruptible(p *protocol.Protocol, start protocol.Config, limit int, stop <-chan struct{}) (*Graph, error) {
	if limit <= 0 {
		limit = 2_000_000
	}
	if start.Dim() != p.NumStates() {
		return nil, fmt.Errorf("reach: start configuration has dimension %d, want %d",
			start.Dim(), p.NumStates())
	}
	g := &Graph{
		p:     p,
		index: make(map[string]int),
	}
	add := func(c protocol.Config, from, tran int32) (int, bool) {
		k := c.Key()
		if i, ok := g.index[k]; ok {
			return i, false
		}
		i := len(g.configs)
		g.configs = append(g.configs, c.Clone())
		g.index[k] = i
		g.succs = append(g.succs, nil)
		g.parent = append(g.parent, from)
		g.parentTran = append(g.parentTran, tran)
		return i, true
	}
	add(start, -1, -1)
	for head := 0; head < len(g.configs); head++ {
		if head&1023 == 0 && interrupted(stop) {
			return nil, ErrInterrupted
		}
		c := g.configs[head]
		next := c.Clone()
		for t := 0; t < p.NumTransitions(); t++ {
			if !p.Enabled(c, t) {
				continue
			}
			d := p.Displacement(t)
			if d.IsZero() {
				continue // identity transition: self-loop, irrelevant to SCCs
			}
			copy(next, c)
			next.AddInPlace(d)
			j, fresh := add(next, int32(head), int32(t))
			if fresh && len(g.configs) > limit {
				return nil, fmt.Errorf("%w: limit %d from %s", ErrLimitExceeded, limit, p.FormatConfig(start))
			}
			// Dedup successor edges (degree is small).
			dup := false
			for _, s := range g.succs[head] {
				if int(s) == j {
					dup = true
					break
				}
			}
			if !dup && j != head {
				g.succs[head] = append(g.succs[head], int32(j))
			}
		}
	}
	return g, nil
}

// Protocol returns the protocol this graph was built for.
func (g *Graph) Protocol() *protocol.Protocol { return g.p }

// Len returns the number of reachable configurations.
func (g *Graph) Len() int { return len(g.configs) }

// Config returns configuration i. The returned vector is owned by the graph
// and must not be modified.
func (g *Graph) Config(i int) protocol.Config { return g.configs[i] }

// Start returns the start configuration (node 0).
func (g *Graph) Start() protocol.Config { return g.configs[0] }

// IndexOf returns the node index of configuration c.
func (g *Graph) IndexOf(c protocol.Config) (int, bool) {
	i, ok := g.index[c.Key()]
	return i, ok
}

// Succs returns the successor node indices of node i (identity self-loops
// omitted). The slice is owned by the graph and must not be modified.
func (g *Graph) Succs(i int) []int32 { return g.succs[i] }

// Path returns the sequence of steps of a shortest path (in the BFS tree)
// from the start configuration to node i.
func (g *Graph) Path(i int) []Step {
	var rev []Step
	for i != 0 {
		rev = append(rev, Step{Transition: int(g.parentTran[i]), To: i})
		i = int(g.parent[i])
	}
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// ReplayPath fires the steps from a copy of from and returns the resulting
// configuration, validating enabledness; it is used by certificate checkers
// to re-verify paths with exact arithmetic.
func ReplayPath(p *protocol.Protocol, from protocol.Config, steps []Step, g *Graph) (protocol.Config, error) {
	c := from.Clone()
	for _, s := range steps {
		if s.Transition < 0 || s.Transition >= p.NumTransitions() {
			return nil, fmt.Errorf("reach: bad transition index %d", s.Transition)
		}
		if !p.Enabled(c, s.Transition) {
			return nil, fmt.Errorf("reach: transition %s disabled during replay",
				p.FormatTransition(p.Transition(s.Transition)))
		}
		p.FireInPlace(c, s.Transition)
		if g != nil {
			if want := g.Config(s.To); !c.Equal(want) {
				return nil, fmt.Errorf("reach: replay diverged from recorded path")
			}
		}
	}
	return c, nil
}

// CanReach reports whether target is reachable from the start configuration.
func (g *Graph) CanReach(target protocol.Config) bool {
	_, ok := g.IndexOf(target)
	return ok
}

// Filter returns the indices of configurations satisfying keep.
func (g *Graph) Filter(keep func(protocol.Config) bool) []int {
	var out []int
	for i, c := range g.configs {
		if keep(c) {
			out = append(out, i)
		}
	}
	return out
}

// CoveringConfigs returns the indices of configurations that cover m, i.e.
// C ≥ m. Used for coverability queries (Rackoff's theorem context).
func (g *Graph) CoveringConfigs(m multiset.Vec) []int {
	return g.Filter(func(c protocol.Config) bool { return m.Le(c) })
}
