package reach

// This file implements the storage layer of the exploration core: a flat
// arena holding every configuration of a graph back to back, and a sharded
// open-addressing hash index that dedups configurations by hashing their
// raw int64 coordinates. Neither allocates per configuration: the arena
// grows by amortized append, and the index stores node ids plus cached
// hashes, so the dedup hot path never materializes a string key
// (multiset.Vec.Key remains the serialization format, not the dedup format).

import "repro/internal/wordhash"

const (
	// shardBits selects the index shard from the top hash bits; the low
	// bits drive linear probing within a shard, so the two are independent.
	shardBits = 4
	numShards = 1 << shardBits
)

// hashWords hashes the coordinates of a configuration with the shared
// raw-coordinate hasher (FNV-1a + Murmur3 avalanche; see wordhash).
func hashWords(w []int64) uint64 { return wordhash.Sum(w) }

func eqWords(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// configStore is the arena: configuration i occupies
// arena[i*dim : (i+1)*dim]. Configurations are immutable once added, so
// slices handed out before an append-triggered reallocation stay valid
// (they alias the old backing array, whose contents never change).
type configStore struct {
	dim   int
	n     int
	arena []int64
}

// at returns configuration i as a slice view into the arena.
func (s *configStore) at(i int32) []int64 {
	o := int(i) * s.dim
	return s.arena[o : o+s.dim : o+s.dim]
}

// add appends a copy of c and returns its id.
func (s *configStore) add(c []int64) int32 {
	s.arena = append(s.arena, c...)
	s.n++
	return int32(s.n - 1)
}

// grow reserves room for extra more configurations and bumps n by extra;
// the caller fills the slots with setAt (used by the parallel explorer to
// copy a whole BFS level into the arena concurrently).
func (s *configStore) grow(extra int) {
	s.arena = append(s.arena, make([]int64, extra*s.dim)...)
	s.n += extra
}

// setAt copies c into slot i (which must have been reserved with grow).
func (s *configStore) setAt(i int32, c []int64) {
	copy(s.at(i), c)
}

// nodeIndex maps configuration coordinates to node ids: numShards
// open-addressing tables with linear probing, selected by the top hash
// bits. Each slot stores the node id (+1, so the zero value is "empty")
// and the full hash, so probe misses are rejected without touching the
// arena and rehashing never recomputes hashes.
//
// Concurrency contract: lookups from many goroutines are safe while no
// add is in flight; adds to distinct shards are safe concurrently, which
// is what the parallel explorer's sharded insertion phase relies on.
type nodeIndex struct {
	shards [numShards]idxShard
}

type idxShard struct {
	slots  []int32 // node id + 1; 0 = empty
	hashes []uint64
	used   int
}

func (ix *nodeIndex) shard(h uint64) *idxShard {
	return &ix.shards[h>>(64-shardBits)]
}

// lookup returns the id of the configuration equal to c (with hash h), if
// present.
func (ix *nodeIndex) lookup(st *configStore, c []int64, h uint64) (int32, bool) {
	sh := ix.shard(h)
	if len(sh.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(sh.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		id := sh.slots[i]
		if id == 0 {
			return 0, false
		}
		if sh.hashes[i] == h && eqWords(st.at(id-1), c) {
			return id - 1, true
		}
	}
}

// add records id for a configuration with hash h. The configuration must
// already be in the store and must not be in the index.
func (ix *nodeIndex) add(id int32, h uint64) {
	sh := ix.shard(h)
	if (sh.used+1)*4 > len(sh.slots)*3 {
		sh.grow()
	}
	sh.insert(id, h)
}

func (sh *idxShard) insert(id int32, h uint64) {
	mask := uint64(len(sh.slots) - 1)
	i := h & mask
	for sh.slots[i] != 0 {
		i = (i + 1) & mask
	}
	sh.slots[i] = id + 1
	sh.hashes[i] = h
	sh.used++
}

// grow doubles the shard (min 64 slots) and reinserts from the cached
// hashes; the arena is not consulted.
func (sh *idxShard) grow() {
	newCap := 64
	if len(sh.slots) > 0 {
		newCap = len(sh.slots) * 2
	}
	oldSlots, oldHashes := sh.slots, sh.hashes
	sh.slots = make([]int32, newCap)
	sh.hashes = make([]uint64, newCap)
	sh.used = 0
	for i, id := range oldSlots {
		if id != 0 {
			sh.insert(id-1, oldHashes[i])
		}
	}
}
