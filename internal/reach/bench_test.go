package reach

// Benchmarks of the exploration core on a ≥100k-configuration workload
// (flock(6) from IC(36): 120,036 configurations). The *Naive benchmarks
// run the retained pre-arena core (naive_test.go) and are the "before"
// side of the comparison pinned in BENCH_reach.json; run scripts/bench.sh
// to regenerate it.

import (
	"fmt"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocols"
)

func benchWorkload() (*protocols.Entry, multiset.Vec) {
	e := protocols.FlockOfBirds(6)
	return &e, e.Protocol.InitialConfigN(36)
}

// BenchmarkExploreArena100k: the arena-backed sequential explorer.
func BenchmarkExploreArena100k(b *testing.B) {
	e, start := benchWorkload()
	p := e.Protocol
	b.ReportAllocs()
	var configs int
	for i := 0; i < b.N; i++ {
		g, err := Explore(p, start, 0)
		if err != nil {
			b.Fatal(err)
		}
		configs = g.Len()
	}
	b.ReportMetric(float64(configs), "configs")
}

// BenchmarkExploreNaive100k: the pre-PR core (string-keyed map dedup,
// per-config allocation) on the same workload.
func BenchmarkExploreNaive100k(b *testing.B) {
	e, start := benchWorkload()
	p := e.Protocol
	b.ReportAllocs()
	var configs int
	for i := 0; i < b.N; i++ {
		g, err := naiveExplore(p, start, 0)
		if err != nil {
			b.Fatal(err)
		}
		configs = len(g.configs)
	}
	b.ReportMetric(float64(configs), "configs")
}

// BenchmarkExploreParallel100k: the frontier-parallel explorer at several
// worker counts. Scaling requires GOMAXPROCS > 1; on a single-core host
// this measures the level-synchronization overhead instead.
func BenchmarkExploreParallel100k(b *testing.B) {
	e, start := benchWorkload()
	p := e.Protocol
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ExploreParallel(p, start, 0, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoverEarlyExit100k: goal-directed coverability — the BFS stops
// at the first level covering the cap state instead of materializing all
// 120k configurations.
func BenchmarkCoverEarlyExit100k(b *testing.B) {
	e, start := benchWorkload()
	p := e.Protocol
	cap6, ok := p.StateByName("6")
	if !ok {
		b.Fatal("no cap state")
	}
	target := multiset.Unit(p.NumStates(), int(cap6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, found, err := CoverLength(p, start, target, 0)
		if err != nil || !found || l == 0 {
			b.Fatalf("cover = %d,%t,%v", l, found, err)
		}
	}
}

// BenchmarkCoverNaive100k: the pre-PR coverability query — full
// exploration, then a scan over every configuration.
func BenchmarkCoverNaive100k(b *testing.B) {
	e, start := benchWorkload()
	p := e.Protocol
	cap6, ok := p.StateByName("6")
	if !ok {
		b.Fatal("no cap state")
	}
	target := multiset.Unit(p.NumStates(), int(cap6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := naiveExplore(p, start, 0)
		if err != nil {
			b.Fatal(err)
		}
		l, found := naiveCoverLength(g, target)
		if !found || l == 0 {
			b.Fatalf("cover = %d,%t", l, found)
		}
	}
}

// BenchmarkMaxCoverBoth100k: the engine's cover kind — max shortest
// covering length over every state of both outputs, in one exploration
// (the pre-PR implementation re-explored the graph once per state).
func BenchmarkMaxCoverBoth100k(b *testing.B) {
	e, start := benchWorkload()
	p := e.Protocol
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m1, m0, err := MaxCoverLengthsBothInterruptible(p, start, 0, nil)
		if err != nil || (m1 == 0 && m0 == 0) {
			b.Fatalf("max cover = %d,%d,%v", m1, m0, err)
		}
	}
}
