package reach

// SCCInfo is the strongly-connected-component decomposition of a Graph.
type SCCInfo struct {
	// Comp maps node index → component id. Components are numbered in
	// reverse topological order: every edge goes from a component to one
	// with a smaller or equal id, so component 0 is a bottom component.
	Comp []int32
	// NumComps is the number of components.
	NumComps int
	// Bottom[c] reports whether component c has no edges leaving it; fair
	// executions end up in (and fully cover) exactly the bottom components.
	Bottom []bool
	// Members lists the node indices of each component.
	Members [][]int32
}

// SCCs computes the strongly connected components of the graph with an
// iterative Tarjan algorithm (explicit stack; configuration graphs can be
// deep, so recursion is not an option).
func (g *Graph) SCCs() *SCCInfo {
	n := g.Len()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		stack    []int32 // Tarjan stack
		nextIdx  int32
		numComps int32
	)
	type frame struct {
		v    int32
		next int // next successor position to process
	}
	var call []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: int32(root)})
		index[root] = nextIdx
		low[root] = nextIdx
		nextIdx++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if succs := g.Succs(int(v)); f.next < len(succs) {
				w := succs[f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = nextIdx
					low[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// Post-processing of v.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComps
					if w == v {
						break
					}
				}
				numComps++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				u := call[len(call)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}

	info := &SCCInfo{
		Comp:     comp,
		NumComps: int(numComps),
		Bottom:   make([]bool, numComps),
		Members:  make([][]int32, numComps),
	}
	for i := range info.Bottom {
		info.Bottom[i] = true
	}
	for v := 0; v < n; v++ {
		info.Members[comp[v]] = append(info.Members[comp[v]], int32(v))
		for _, w := range g.Succs(v) {
			if comp[w] != comp[v] {
				info.Bottom[comp[v]] = false
			}
		}
	}
	return info
}

// FairOutput returns the output of every fair execution from the start
// configuration: b if every bottom SCC is a b-consensus for one common b.
// ok is false if some bottom SCC contains a configuration with undefined
// output, mixes outputs, or two bottom SCCs disagree — in all those cases
// the protocol does not converge (or does not converge consistently) on
// this input.
func (g *Graph) FairOutput() (b int, ok bool) {
	info := g.SCCs()
	return g.fairOutput(info)
}

func (g *Graph) fairOutput(info *SCCInfo) (int, bool) {
	result := -1
	for c := 0; c < info.NumComps; c++ {
		if !info.Bottom[c] {
			continue
		}
		for _, v := range info.Members[c] {
			ob, ok := g.p.OutputOf(g.Config(int(v)))
			if !ok {
				return -1, false
			}
			if result == -1 {
				result = ob
			} else if result != ob {
				return -1, false
			}
		}
	}
	if result == -1 {
		return -1, false
	}
	return result, true
}

// StableFlags returns, for each node, whether its configuration is b-stable:
// every configuration reachable from it (necessarily within this graph,
// since transitions preserve population size) has output b. This is the
// fixed-size restriction of Definition 2, and is computed by propagating
// over the component DAG in topological order (components are numbered in
// reverse topological order, so a forward scan over ids 0,1,... visits
// successors first).
func (g *Graph) StableFlags(b int) []bool {
	info := g.SCCs()
	compStable := make([]bool, info.NumComps)
	// Process components in id order: all successors of a component have
	// smaller ids, hence are already decided.
	for c := 0; c < info.NumComps; c++ {
		stable := true
		for _, v := range info.Members[c] {
			if ob, ok := g.p.OutputOf(g.Config(int(v))); !ok || ob != b {
				stable = false
				break
			}
			for _, w := range g.Succs(int(v)) {
				wc := info.Comp[w]
				if wc != int32(c) && !compStable[wc] {
					stable = false
					break
				}
			}
			if !stable {
				break
			}
		}
		compStable[c] = stable
	}
	out := make([]bool, g.Len())
	for v := range out {
		out[v] = compStable[info.Comp[v]]
	}
	return out
}

// StableConfigs returns the node indices of b-stable configurations,
// i.e. the members of SC_b among reachable configurations.
func (g *Graph) StableConfigs(b int) []int {
	flags := g.StableFlags(b)
	var out []int
	for i, f := range flags {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// FirstStable returns the index of the first (in BFS order, hence via a
// shortest path) b-stable configuration for either b, together with its
// output. ok is false if no stable configuration is reachable.
func (g *Graph) FirstStable() (idx, b int, ok bool) {
	s0 := g.StableFlags(0)
	s1 := g.StableFlags(1)
	for i := 0; i < g.Len(); i++ {
		if s0[i] {
			return i, 0, true
		}
		if s1[i] {
			return i, 1, true
		}
	}
	return 0, -1, false
}
