package reach

import (
	"errors"
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocols"
)

func TestCoverLength(t *testing.T) {
	e := protocols.Succinct(2) // merge chain 1,1→0,2; 2,2→0,4
	p := e.Protocol
	top, _ := p.StateByName("2^2")
	target := multiset.Unit(p.NumStates(), int(top))

	// From IC(4): two merges of 1s then one merge of 2s ⇒ 3 steps minimum.
	l, ok, err := CoverLength(p, p.InitialConfigN(4), target, 0)
	if err != nil {
		t.Fatalf("CoverLength: %v", err)
	}
	if !ok || l != 3 {
		t.Fatalf("cover length = %d,%t, want 3", l, ok)
	}
	// From IC(3): value 3 < 4, the top is unreachable.
	if _, ok, err := CoverLength(p, p.InitialConfigN(3), target, 0); err != nil || ok {
		t.Fatalf("IC(3) must not cover the top: %t %v", ok, err)
	}
	// Zero-length when already covering.
	start := multiset.New(p.NumStates())
	start[top] = 2
	if l, ok, _ := CoverLength(p, start, target, 0); !ok || l != 0 {
		t.Fatalf("already-covered length = %d,%t", l, ok)
	}
	// Dimension mismatch.
	if _, _, err := CoverLength(p, p.InitialConfigN(4), multiset.New(2), 0); err == nil {
		t.Fatal("want dimension error")
	}
}

// TestCoverLengthEarlyExit: the goal-directed BFS answers shallow queries
// without materializing the full graph, so a limit far below the full
// graph size is no obstacle when the target is covered early.
func TestCoverLengthEarlyExit(t *testing.T) {
	e := protocols.FlockOfBirds(6)
	p := e.Protocol
	// The full graph from IC(36) has >100k configurations; state "2" is
	// covered after a single merge.
	two, ok := p.StateByName("2")
	if !ok {
		t.Fatal("no state named 2")
	}
	target := multiset.Unit(p.NumStates(), int(two))
	l, found, err := CoverLength(p, p.InitialConfigN(36), target, 1000)
	if err != nil {
		t.Fatalf("CoverLength with small limit: %v", err)
	}
	if !found || l != 1 {
		t.Fatalf("cover length = %d,%t, want 1,true", l, found)
	}
	// An uncoverable target still explores everything, so the limit bites.
	impossible := multiset.New(p.NumStates())
	impossible[two] = 100 // only 36 agents exist
	if _, _, err := CoverLength(p, p.InitialConfigN(36), impossible, 1000); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
}

func TestCoverLengths(t *testing.T) {
	e := protocols.Succinct(2)
	p := e.Protocol
	top, _ := p.StateByName("2^2")
	in := p.InputState(0)
	targets := []multiset.Vec{
		multiset.Unit(p.NumStates(), int(top)), // 3 merges away
		multiset.Unit(p.NumStates(), int(in)),  // covered at the start
		func() multiset.Vec { // uncoverable: 5 copies of the top with 4 agents
			v := multiset.New(p.NumStates())
			v[top] = 5
			return v
		}(),
	}
	ls, err := CoverLengths(p, p.InitialConfigN(4), targets, 0)
	if err != nil {
		t.Fatalf("CoverLengths: %v", err)
	}
	if ls[0] != 3 || ls[1] != 0 || ls[2] != -1 {
		t.Fatalf("lengths = %v, want [3 0 -1]", ls)
	}
	// Dimension mismatch is rejected.
	if _, err := CoverLengths(p, p.InitialConfigN(4), []multiset.Vec{multiset.New(2)}, 0); err == nil {
		t.Fatal("want dimension error")
	}
	// No targets: nothing to do, nothing explored.
	if ls, err := CoverLengths(p, p.InitialConfigN(4), nil, 0); err != nil || len(ls) != 0 {
		t.Fatalf("empty targets: %v %v", ls, err)
	}
}

// TestMaxCoverLengthsBoth: the single-exploration both-outputs query must
// agree with two separate MaxCoverLength calls.
func TestMaxCoverLengthsBoth(t *testing.T) {
	for _, e := range []protocols.Entry{protocols.FlockOfBirds(4), protocols.Succinct(2), protocols.Parity()} {
		p := e.Protocol
		start := p.InitialConfigN(5)
		m1, m0, err := MaxCoverLengthsBothInterruptible(p, start, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		w1, err := MaxCoverLength(p, start, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		w0, err := MaxCoverLength(p, start, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if m1 != w1 || m0 != w0 {
			t.Fatalf("%s: both = (%d,%d), separate = (%d,%d)", p.Name(), m1, m0, w1, w0)
		}
	}
}

func TestCoverLengthInterrupt(t *testing.T) {
	e := protocols.FlockOfBirds(6)
	p := e.Protocol
	stop := make(chan struct{})
	close(stop)
	top, _ := p.StateByName("6")
	target := multiset.Unit(p.NumStates(), int(top))
	if _, _, err := CoverLengthInterruptible(p, p.InitialConfigN(30), target, 0, stop); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}

func TestMaxCoverLength(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	// From IC(4): the farthest 1-output state (the cap "4") needs two
	// merges then the cap transition; 0-output states are covered
	// immediately or after one step.
	m1, err := MaxCoverLength(p, p.InitialConfigN(4), 1, 0)
	if err != nil {
		t.Fatalf("MaxCoverLength: %v", err)
	}
	if m1 < 2 {
		t.Fatalf("max cover length to output-1 = %d, want ≥ 2", m1)
	}
	m0, err := MaxCoverLength(p, p.InitialConfigN(4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m0 < 1 {
		t.Fatalf("max cover length to output-0 = %d, want ≥ 1 (state 2 needs a merge)", m0)
	}
	// All measured lengths are minuscule compared to the Rackoff-style
	// bound β(n) = 2^(2(2n+1)!+1) used in Lemma 3.2 — that contrast is
	// experiment E11's point.
}
