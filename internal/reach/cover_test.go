package reach

import (
	"testing"

	"repro/internal/multiset"
	"repro/internal/protocols"
)

func TestCoverLength(t *testing.T) {
	e := protocols.Succinct(2) // merge chain 1,1→0,2; 2,2→0,4
	p := e.Protocol
	top, _ := p.StateByName("2^2")
	target := multiset.Unit(p.NumStates(), int(top))

	// From IC(4): two merges of 1s then one merge of 2s ⇒ 3 steps minimum.
	l, ok, err := CoverLength(p, p.InitialConfigN(4), target, 0)
	if err != nil {
		t.Fatalf("CoverLength: %v", err)
	}
	if !ok || l != 3 {
		t.Fatalf("cover length = %d,%t, want 3", l, ok)
	}
	// From IC(3): value 3 < 4, the top is unreachable.
	if _, ok, err := CoverLength(p, p.InitialConfigN(3), target, 0); err != nil || ok {
		t.Fatalf("IC(3) must not cover the top: %t %v", ok, err)
	}
	// Zero-length when already covering.
	start := multiset.New(p.NumStates())
	start[top] = 2
	if l, ok, _ := CoverLength(p, start, target, 0); !ok || l != 0 {
		t.Fatalf("already-covered length = %d,%t", l, ok)
	}
	// Dimension mismatch.
	if _, _, err := CoverLength(p, p.InitialConfigN(4), multiset.New(2), 0); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestMaxCoverLength(t *testing.T) {
	e := protocols.FlockOfBirds(4)
	p := e.Protocol
	// From IC(4): the farthest 1-output state (the cap "4") needs two
	// merges then the cap transition; 0-output states are covered
	// immediately or after one step.
	m1, err := MaxCoverLength(p, p.InitialConfigN(4), 1, 0)
	if err != nil {
		t.Fatalf("MaxCoverLength: %v", err)
	}
	if m1 < 2 {
		t.Fatalf("max cover length to output-1 = %d, want ≥ 2", m1)
	}
	m0, err := MaxCoverLength(p, p.InitialConfigN(4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m0 < 1 {
		t.Fatalf("max cover length to output-0 = %d, want ≥ 1 (state 2 needs a merge)", m0)
	}
	// All measured lengths are minuscule compared to the Rackoff-style
	// bound β(n) = 2^(2(2n+1)!+1) used in Lemma 3.2 — that contrast is
	// experiment E11's point.
}
