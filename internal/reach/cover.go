package reach

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// CoverLength returns the length of a shortest execution from start to a
// configuration covering target (C ≥ target), or ok = false if no covering
// configuration is reachable. This is the quantity that Rackoff's theorem
// bounds: Lemma 3.2 uses that a covering execution, when one exists, can be
// chosen of length at most β(n) = 2^(2(2n+1)!+1); measuring the true
// shortest lengths on concrete protocols (experiment E11) shows the gap.
//
// The search is breadth-first over the exact configuration graph (fixed
// population size), so the returned length is minimal. It is goal-directed:
// the BFS stops at the first level containing a covering configuration
// instead of materializing the full graph, so a query whose answer lies at
// depth d costs only the graph up to depth d (and can succeed even when the
// full graph would exceed limit).
func CoverLength(p *protocol.Protocol, start protocol.Config, target multiset.Vec, limit int) (int, bool, error) {
	return CoverLengthInterruptible(p, start, target, limit, nil)
}

// CoverLengthInterruptible is CoverLength with cooperative cancellation: it
// aborts with ErrInterrupted soon after the stop channel closes. A nil
// channel disables the checks.
func CoverLengthInterruptible(p *protocol.Protocol, start protocol.Config, target multiset.Vec, limit int, stop <-chan struct{}) (int, bool, error) {
	ls, err := CoverLengthsInterruptible(p, start, []multiset.Vec{target}, limit, stop)
	if err != nil {
		return 0, false, err
	}
	if ls[0] < 0 {
		return 0, false, nil
	}
	return ls[0], true, nil
}

// CoverLengths returns, for every target, the length of a shortest
// execution from start to a configuration covering it, or -1 if no covering
// configuration is reachable. All targets are tracked in one breadth-first
// exploration, which stops early at the first BFS level by which every
// target has been covered.
func CoverLengths(p *protocol.Protocol, start protocol.Config, targets []multiset.Vec, limit int) ([]int, error) {
	return CoverLengthsInterruptible(p, start, targets, limit, nil)
}

// CoverLengthsInterruptible is CoverLengths with cooperative cancellation:
// it aborts with ErrInterrupted soon after the stop channel closes. A nil
// channel disables the checks.
func CoverLengthsInterruptible(p *protocol.Protocol, start protocol.Config, targets []multiset.Vec, limit int, stop <-chan struct{}) ([]int, error) {
	for _, target := range targets {
		if target.Dim() != p.NumStates() {
			return nil, fmt.Errorf("reach: target dimension %d, want %d", target.Dim(), p.NumStates())
		}
	}
	lengths := make([]int, len(targets))
	remaining := 0
	for i := range lengths {
		lengths[i] = -1
		remaining++
	}
	// BFS discovers nodes in nondecreasing depth, so the first covering
	// node seen per target is at minimal depth; once every target is
	// covered the exploration stops.
	visit := func(g *Graph, node, depth int32) bool {
		c := g.Config(int(node))
		for i, target := range targets {
			if lengths[i] < 0 && target.Le(c) {
				lengths[i] = int(depth)
				remaining--
			}
		}
		return remaining > 0
	}
	if _, err := exploreCore(p, start, limit, stop, visit); err != nil {
		return nil, err
	}
	return lengths, nil
}

// MaxCoverLength returns, over all single-state targets q with output b,
// the largest shortest-covering-execution length from start (0 if no such
// state is coverable). It measures how long the witness executions in the
// stability analysis actually are. All targets are tracked in a single
// exploration.
func MaxCoverLength(p *protocol.Protocol, start protocol.Config, b int, limit int) (int, error) {
	return MaxCoverLengthInterruptible(p, start, b, limit, nil)
}

// MaxCoverLengthInterruptible is MaxCoverLength with cooperative
// cancellation: it aborts with ErrInterrupted soon after the stop channel
// closes. A nil channel disables the checks.
func MaxCoverLengthInterruptible(p *protocol.Protocol, start protocol.Config, b int, limit int, stop <-chan struct{}) (int, error) {
	targets := outputUnitTargets(p, b)
	ls, err := CoverLengthsInterruptible(p, start, targets, limit, stop)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, l := range ls {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// MaxCoverLengthsBothInterruptible computes MaxCoverLength for both outputs
// in one exploration: max1 over output-1 states and max0 over output-0
// states. This is the engine's cover kind in a single BFS.
func MaxCoverLengthsBothInterruptible(p *protocol.Protocol, start protocol.Config, limit int, stop <-chan struct{}) (max1, max0 int, err error) {
	t1 := outputUnitTargets(p, 1)
	t0 := outputUnitTargets(p, 0)
	ls, err := CoverLengthsInterruptible(p, start, append(append([]multiset.Vec{}, t1...), t0...), limit, stop)
	if err != nil {
		return 0, 0, err
	}
	for i, l := range ls {
		switch {
		case i < len(t1) && l > max1:
			max1 = l
		case i >= len(t1) && l > max0:
			max0 = l
		}
	}
	return max1, max0, nil
}

// outputUnitTargets returns the unit multisets {q} for every state q with
// output b.
func outputUnitTargets(p *protocol.Protocol, b int) []multiset.Vec {
	var out []multiset.Vec
	for q := 0; q < p.NumStates(); q++ {
		if p.Output(protocol.State(q)) == b {
			out = append(out, multiset.Unit(p.NumStates(), q))
		}
	}
	return out
}
