package reach

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// CoverLength returns the length of a shortest execution from start to a
// configuration covering target (C ≥ target), or ok = false if no covering
// configuration is reachable. This is the quantity that Rackoff's theorem
// bounds: Lemma 3.2 uses that a covering execution, when one exists, can be
// chosen of length at most β(n) = 2^(2(2n+1)!+1); measuring the true
// shortest lengths on concrete protocols (experiment E11) shows the gap.
//
// The search is breadth-first over the exact configuration graph (fixed
// population size), so the returned length is minimal.
func CoverLength(p *protocol.Protocol, start protocol.Config, target multiset.Vec, limit int) (int, bool, error) {
	return CoverLengthInterruptible(p, start, target, limit, nil)
}

// CoverLengthInterruptible is CoverLength with cooperative cancellation: it
// aborts with ErrInterrupted soon after the stop channel closes. A nil
// channel disables the checks.
func CoverLengthInterruptible(p *protocol.Protocol, start protocol.Config, target multiset.Vec, limit int, stop <-chan struct{}) (int, bool, error) {
	if target.Dim() != p.NumStates() {
		return 0, false, fmt.Errorf("reach: target dimension %d, want %d", target.Dim(), p.NumStates())
	}
	if target.Le(start) {
		return 0, true, nil
	}
	g, err := ExploreInterruptible(p, start, limit, stop)
	if err != nil {
		return 0, false, err
	}
	// BFS levels: Explore's parent pointers form a BFS tree, so the path
	// length from the tree is minimal.
	best := -1
	for i := 0; i < g.Len(); i++ {
		if !target.Le(g.Config(i)) {
			continue
		}
		if l := len(g.Path(i)); best < 0 || l < best {
			best = l
		}
	}
	if best < 0 {
		return 0, false, nil
	}
	return best, true, nil
}

// MaxCoverLength returns, over all single-state targets q with output b,
// the largest shortest-covering-execution length from start (0 if no such
// state is coverable). It measures how long the witness executions in the
// stability analysis actually are.
func MaxCoverLength(p *protocol.Protocol, start protocol.Config, b int, limit int) (int, error) {
	return MaxCoverLengthInterruptible(p, start, b, limit, nil)
}

// MaxCoverLengthInterruptible is MaxCoverLength with cooperative
// cancellation: it aborts with ErrInterrupted soon after the stop channel
// closes. A nil channel disables the checks.
func MaxCoverLengthInterruptible(p *protocol.Protocol, start protocol.Config, b int, limit int, stop <-chan struct{}) (int, error) {
	max := 0
	for q := 0; q < p.NumStates(); q++ {
		if p.Output(protocol.State(q)) != b {
			continue
		}
		l, ok, err := CoverLengthInterruptible(p, start, multiset.Unit(p.NumStates(), q), limit, stop)
		if err != nil {
			return 0, err
		}
		if ok && l > max {
			max = l
		}
	}
	return max, nil
}
