package search

import (
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols"
	"repro/internal/reach"
)

func TestEnumerateCountsOneState(t *testing.T) {
	// n=1: 1 pair, 1 result, 2 output maps.
	count := 0
	EnumerateDeterministic(1, func(p *protocol.Protocol) bool { count++; return true })
	if count != 2 {
		t.Fatalf("n=1: %d candidates, want 2", count)
	}
}

func TestEnumerateCountsTwoStates(t *testing.T) {
	// n=2: 3 pairs, 3^3 transition maps, 2^2 outputs = 108.
	count := 0
	seen := map[string]bool{}
	EnumerateDeterministic(2, func(p *protocol.Protocol) bool {
		count++
		seen[p.Name()] = true
		if !p.Deterministic() {
			t.Fatal("enumerated protocol not deterministic")
		}
		if !p.Leaderless() {
			t.Fatal("enumerated protocol not leaderless")
		}
		return true
	})
	if count != 108 {
		t.Fatalf("n=2: %d candidates, want 108", count)
	}
	if len(seen) != count {
		t.Fatalf("duplicate protocols enumerated")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	count := 0
	EnumerateDeterministic(2, func(p *protocol.Protocol) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop at %d, want 5", count)
	}
	EnumerateDeterministic(0, func(p *protocol.Protocol) bool {
		t.Fatal("n=0 should yield nothing")
		return false
	})
}

func TestBusyBeaverTwoStates(t *testing.T) {
	res := BusyBeaver(2, Options{MaxInput: 9})
	if !res.Exhaustive {
		t.Fatal("n=2 search must be exhaustive")
	}
	if res.Candidates != 108 {
		t.Fatalf("candidates = %d, want 108", res.Candidates)
	}
	// With two states the all-convert protocol computes x ≥ 2 (constantly
	// true on valid inputs); nothing with 2 states separates higher
	// thresholds within the verified range.
	if res.BestEta != 2 {
		t.Fatalf("BB(2) = %d (verified ≤ 9), want 2; witness: %v", res.BestEta, res.Best)
	}
	if res.Best == nil {
		t.Fatal("no witness protocol")
	}
	// Independently re-verify the witness.
	eta, found, err := reach.ThresholdWitness(res.Best, 9, 0)
	if err != nil || !found || eta != res.BestEta {
		t.Fatalf("witness re-verification failed: %d %t %v", eta, found, err)
	}
	if s := res.String(); !strings.Contains(s, "BB(2)") {
		t.Fatalf("String = %q", s)
	}
}

func TestBusyBeaverCandidateCap(t *testing.T) {
	res := BusyBeaver(2, Options{MaxInput: 5, MaxCandidates: 10})
	if res.Exhaustive {
		t.Fatal("capped search must not report exhaustive")
	}
	if res.Candidates != 11 { // cap detected on the 11th
		t.Fatalf("candidates = %d", res.Candidates)
	}
}

func TestMinInputToAllOne(t *testing.T) {
	// The succinct protocol reaches an all-1 configuration (all agents at
	// 2^k) exactly from inputs ≥ 2^k... in fact only multiples reach
	// all-top without leftovers? No: converters absorb leftovers, so any
	// input ≥ 2^k works; below 2^k never.
	e := protocols.Succinct(2)
	i, ok, err := MinInputToAllOne(e.Protocol, 10, 0)
	if err != nil {
		t.Fatalf("MinInputToAllOne: %v", err)
	}
	if !ok || i != 4 {
		t.Fatalf("min input = %d,%t, want 4", i, ok)
	}
	// Constant-false protocol never reaches all-1.
	e0 := protocols.Constant(false)
	_, ok, err = MinInputToAllOne(e0.Protocol, 8, 0)
	if err != nil {
		t.Fatalf("MinInputToAllOne: %v", err)
	}
	if ok {
		t.Fatal("constant(false) cannot reach an all-1 configuration")
	}
	// Multi-input protocols are rejected.
	if _, _, err := MinInputToAllOne(protocols.Majority().Protocol, 5, 0); err == nil {
		t.Fatal("want error for two-input protocol")
	}
}

func TestFTwoStates(t *testing.T) {
	res, err := F(2, Options{MaxInput: 8})
	if err != nil {
		t.Fatalf("F: %v", err)
	}
	if !res.Exhaustive || res.Candidates != 108 {
		t.Fatalf("unexpected enumeration: %+v", res)
	}
	// Some 2-state protocol requires at least input 2; none can require a
	// large input (f(2) is small), but the measurement must find at least
	// the trivial witness.
	if res.MaxMinInput < 2 {
		t.Fatalf("f(2) = %d, want ≥ 2", res.MaxMinInput)
	}
	if res.Witness == nil {
		t.Fatal("no witness")
	}
}

func TestBusyBeaverThreeStatesSampled(t *testing.T) {
	// The full 3-state space has 6^6·8 ≈ 373k candidates; sample a slice to
	// keep the test fast and check the plumbing. The experiments harness
	// runs it exhaustively.
	res := BusyBeaver(3, Options{MaxInput: 8, MaxCandidates: 20000})
	if res.Exhaustive {
		t.Fatal("sampled search must not be exhaustive")
	}
	if res.BestEta > 0 && res.Best == nil {
		t.Fatal("inconsistent result")
	}
	t.Logf("sampled 3-state search: %s", res.String())
}
