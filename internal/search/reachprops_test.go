package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/protocol"
	"repro/internal/reach"
)

// randomProtocol draws a deterministic leaderless protocol uniformly from
// the 2- or 3-state enumeration space.
func randomProtocol(rr *rand.Rand, n int) *protocol.Protocol {
	target := rr.Intn(200) // sample index within a prefix of the space
	var picked *protocol.Protocol
	i := 0
	EnumerateDeterministic(n, func(p *protocol.Protocol) bool {
		if i == target {
			picked = p
			return false
		}
		i++
		return true
	})
	if picked == nil {
		// Space smaller than target: take the last one enumerated.
		EnumerateDeterministic(n, func(p *protocol.Protocol) bool {
			picked = p
			return true
		})
	}
	return picked
}

// TestQuickRandomProtocolGraphInvariants: structural invariants of exact
// exploration hold on arbitrary protocols, not just the curated zoo:
// population size is conserved along every edge, every non-bottom SCC has an
// edge out, and b-stable flags are closed under successors.
func TestQuickRandomProtocolGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(2)
		p := randomProtocol(rr, n)
		input := int64(2 + rr.Intn(5))
		g, err := reach.Explore(p, p.InitialConfigN(input), 0)
		if err != nil {
			return false
		}
		size := g.Start().Size()
		for i := 0; i < g.Len(); i++ {
			if g.Config(i).Size() != size {
				return false
			}
			for _, w := range g.Succs(i) {
				if int(w) < 0 || int(w) >= g.Len() {
					return false
				}
			}
		}
		info := g.SCCs()
		for c := 0; c < info.NumComps; c++ {
			hasExit := false
			for _, v := range info.Members[c] {
				for _, w := range g.Succs(int(v)) {
					if info.Comp[w] != int32(c) {
						hasExit = true
					}
				}
			}
			if info.Bottom[c] == hasExit {
				return false // Bottom iff no exit
			}
		}
		for b := 0; b <= 1; b++ {
			flags := g.StableFlags(b)
			for i, ok := range flags {
				if !ok {
					continue
				}
				if ob, def := p.OutputOf(g.Config(i)); !def || ob != b {
					return false
				}
				for _, w := range g.Succs(i) {
					if !flags[w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelExploreAgreesOnRandomProtocols extends the equivalence
// test beyond the zoo.
func TestQuickParallelExploreAgreesOnRandomProtocols(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p := randomProtocol(rr, 2+rr.Intn(2))
		input := int64(2 + rr.Intn(4))
		seq, err1 := reach.Explore(p, p.InitialConfigN(input), 0)
		par, err2 := reach.ExploreParallel(p, p.InitialConfigN(input), 0, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		if seq.Len() != par.Len() {
			return false
		}
		b1, ok1 := seq.FairOutput()
		b2, ok2 := par.FairOutput()
		return b1 == b2 && ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
