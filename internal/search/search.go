// Package search explores the space of small population protocols
// exhaustively, the experimental counterpart of the paper's busy beaver
// function (Definition 1): BB(n) is the largest η such that some leaderless
// protocol with n states computes x ≥ η.
//
// The search enumerates every deterministic leaderless protocol with n
// states and a single input variable (input state fixed to q0 — justified
// up to state renaming), verifies threshold behaviour exactly for all
// inputs up to a bound using the reach package, and reports the best
// threshold found. Verification up to a finite input bound makes the result
// an *empirical lower-bound table*: a reported protocol provably behaves as
// x ≥ η on every input ≤ MaxInput (sound for those sizes; the bound is part
// of the result).
//
// The package also measures the Section 4.1 quantity f(n): the largest,
// over n-state protocols, of the minimal input whose initial configuration
// can reach an all-output-1 configuration — the quantity that is
// 2^O(n) for leaderless protocols (Balasubramanian et al. [10]) but grows
// non-primitively-recursively with leaders.
package search

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/reach"
)

// Options configures a search.
type Options struct {
	// MaxInput is the verification bound per candidate (default 10).
	MaxInput int64
	// Limit bounds each configuration graph (default reach's default).
	Limit int
	// MaxCandidates stops enumeration early after this many candidates
	// (0 = unlimited, i.e. exhaustive).
	MaxCandidates int
}

// BBResult reports an empirical busy beaver search.
type BBResult struct {
	States     int
	MaxInput   int64
	Candidates int   // protocols enumerated
	Converging int   // protocols whose fair output is defined on all tested inputs
	BestEta    int64 // largest verified threshold (0 if none found)
	Best       *protocol.Protocol
	Exhaustive bool // whether the whole space was enumerated
}

// String renders the result.
func (r BBResult) String() string {
	name := "none"
	if r.Best != nil {
		name = r.Best.Name()
	}
	return fmt.Sprintf("BB(%d) ≥ %d (verified ≤ %d; %d candidates, %d converging, exhaustive=%t, witness %s)",
		r.States, r.BestEta, r.MaxInput, r.Candidates, r.Converging, r.Exhaustive, name)
}

// EnumerateDeterministic yields every deterministic leaderless protocol
// with n states q0..q(n−1), input variable x mapped to q0, all 2^n output
// assignments and all transition functions mapping each unordered state
// pair to an unordered result pair. It stops early when yield returns
// false. The number of candidates is (n(n+1)/2)^(n(n+1)/2) · 2^n.
func EnumerateDeterministic(n int, yield func(*protocol.Protocol) bool) {
	if n < 1 {
		return
	}
	type pair struct{ a, b protocol.State }
	var pairs []pair
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			pairs = append(pairs, pair{protocol.State(a), protocol.State(b)})
		}
	}
	np := len(pairs)
	assign := make([]int, np) // pair index → result pair index
	outputs := make([]int, n)

	var build func() bool
	build = func() bool {
		b := protocol.NewBuilder(fmt.Sprintf("enum-%d%v%v", n, outputs, assign))
		for q := 0; q < n; q++ {
			b.AddState(fmt.Sprintf("q%d", q), outputs[q])
		}
		for i, res := range assign {
			b.AddTransition(pairs[i].a, pairs[i].b, pairs[res].a, pairs[res].b)
		}
		b.AddInput("x", 0)
		p, err := b.Build()
		if err != nil {
			// Unreachable: the enumeration is complete by construction.
			panic(err)
		}
		return yield(p)
	}

	var recOutputs func(i int) bool
	var recAssign func(i int) bool
	recAssign = func(i int) bool {
		if i == np {
			return build()
		}
		for r := 0; r < np; r++ {
			assign[i] = r
			if !recAssign(i + 1) {
				return false
			}
		}
		return true
	}
	recOutputs = func(i int) bool {
		if i == n {
			return recAssign(0)
		}
		for o := 0; o <= 1; o++ {
			outputs[i] = o
			if !recOutputs(i + 1) {
				return false
			}
		}
		return true
	}
	recOutputs(0)
}

// BusyBeaver runs the empirical busy beaver search for n-state protocols.
func BusyBeaver(n int, opts Options) BBResult {
	maxInput := opts.MaxInput
	if maxInput == 0 {
		maxInput = 10
	}
	res := BBResult{States: n, MaxInput: maxInput, Exhaustive: true}
	EnumerateDeterministic(n, func(p *protocol.Protocol) bool {
		res.Candidates++
		if opts.MaxCandidates > 0 && res.Candidates > opts.MaxCandidates {
			res.Exhaustive = false
			return false
		}
		eta, found, err := reach.ThresholdWitness(p, maxInput, opts.Limit)
		if err != nil {
			// Not a (converging, monotone) threshold protocol.
			return true
		}
		res.Converging++
		if !found {
			// All tested inputs reject: behaves as x ≥ η for some η >
			// maxInput as far as we can see; not a verified witness.
			return true
		}
		if eta > res.BestEta {
			res.BestEta = eta
			res.Best = p
		}
		return true
	})
	return res
}

// FResult reports the Section 4.1 measurement.
type FResult struct {
	States     int
	MaxInput   int64
	Candidates int
	// MaxMinInput is f(n) restricted to inputs ≤ MaxInput: the largest
	// minimal input reaching an all-1 configuration.
	MaxMinInput int64
	Witness     *protocol.Protocol
	Exhaustive  bool
}

// MinInputToAllOne returns the smallest input i ≤ maxInput such that IC(i)
// can reach a configuration with all agents in output-1 states.
func MinInputToAllOne(p *protocol.Protocol, maxInput int64, limit int) (int64, bool, error) {
	if p.NumInputs() != 1 {
		return 0, false, fmt.Errorf("search: MinInputToAllOne needs a single input variable")
	}
	for i := int64(2); i <= maxInput; i++ {
		g, err := reach.Explore(p, p.InitialConfigN(i), limit)
		if err != nil {
			return 0, false, err
		}
		found := false
		for k := 0; k < g.Len() && !found; k++ {
			if b, ok := p.OutputOf(g.Config(k)); ok && b == 1 {
				found = true
			}
		}
		if found {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// F measures f(n) over the enumerated protocol space, restricted to inputs
// ≤ opts.MaxInput.
func F(n int, opts Options) (FResult, error) {
	maxInput := opts.MaxInput
	if maxInput == 0 {
		maxInput = 10
	}
	res := FResult{States: n, MaxInput: maxInput, Exhaustive: true}
	var firstErr error
	EnumerateDeterministic(n, func(p *protocol.Protocol) bool {
		res.Candidates++
		if opts.MaxCandidates > 0 && res.Candidates > opts.MaxCandidates {
			res.Exhaustive = false
			return false
		}
		i, ok, err := MinInputToAllOne(p, maxInput, opts.Limit)
		if err != nil {
			firstErr = err
			return false
		}
		if ok && i > res.MaxMinInput {
			res.MaxMinInput = i
			res.Witness = p
		}
		return true
	})
	return res, firstErr
}
