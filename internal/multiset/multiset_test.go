package multiset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndUnit(t *testing.T) {
	v := New(4)
	if v.Dim() != 4 || !v.IsZero() {
		t.Fatalf("New(4) = %v, want zero vector of dim 4", v)
	}
	u := Unit(4, 2)
	if u.Size() != 1 || u[2] != 1 {
		t.Fatalf("Unit(4,2) = %v", u)
	}
	p := Pair(3, 1, 1)
	if p[1] != 2 || p.Size() != 2 {
		t.Fatalf("Pair(3,1,1) = %v", p)
	}
	q := Pair(3, 0, 2)
	if q[0] != 1 || q[2] != 1 || q.Size() != 2 {
		t.Fatalf("Pair(3,0,2) = %v", q)
	}
}

func TestSizeNorms(t *testing.T) {
	tests := []struct {
		v                    Vec
		size, norm1, normInf int64
	}{
		{Vec{}, 0, 0, 0},
		{Vec{0, 0}, 0, 0, 0},
		{Vec{1, 2, 3}, 6, 6, 3},
		{Vec{-1, 2, -3}, -2, 6, 3},
		{Vec{5}, 5, 5, 5},
		{Vec{-7, 0}, -7, 7, 7},
	}
	for _, tc := range tests {
		if got := tc.v.Size(); got != tc.size {
			t.Errorf("Size(%v) = %d, want %d", tc.v, got, tc.size)
		}
		if got := tc.v.Norm1(); got != tc.norm1 {
			t.Errorf("Norm1(%v) = %d, want %d", tc.v, got, tc.norm1)
		}
		if got := tc.v.NormInf(); got != tc.normInf {
			t.Errorf("NormInf(%v) = %d, want %d", tc.v, got, tc.normInf)
		}
	}
}

func TestSupport(t *testing.T) {
	v := Vec{0, 3, 0, -2, 1}
	got := v.Support()
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if v.SupportSize() != 3 {
		t.Fatalf("SupportSize = %d, want 3", v.SupportSize())
	}
	if New(3).Support() != nil {
		t.Fatalf("Support of zero vector should be nil")
	}
}

func TestOrdering(t *testing.T) {
	tests := []struct {
		u, v   Vec
		le, lt bool
	}{
		{Vec{1, 2}, Vec{1, 2}, true, false},
		{Vec{1, 2}, Vec{2, 2}, true, true},
		{Vec{1, 2}, Vec{1, 3}, true, true},
		{Vec{2, 1}, Vec{1, 2}, false, false},
		{Vec{1, 2}, Vec{2, 1}, false, false},
		{Vec{0, 0}, Vec{0, 0}, true, false},
		{Vec{1}, Vec{1, 0}, false, false}, // different dimensions: incomparable
	}
	for _, tc := range tests {
		if got := tc.u.Le(tc.v); got != tc.le {
			t.Errorf("%v.Le(%v) = %t, want %t", tc.u, tc.v, got, tc.le)
		}
		if got := tc.u.Lt(tc.v); got != tc.lt {
			t.Errorf("%v.Lt(%v) = %t, want %t", tc.u, tc.v, got, tc.lt)
		}
	}
}

func TestArithmetic(t *testing.T) {
	u := Vec{1, 2, 3}
	v := Vec{4, 0, -1}
	sum := u.Add(v)
	if !sum.Equal(Vec{5, 2, 2}) {
		t.Fatalf("Add = %v", sum)
	}
	diff := u.Sub(v)
	if !diff.Equal(Vec{-3, 2, 4}) {
		t.Fatalf("Sub = %v", diff)
	}
	// Inputs must be unchanged (no aliasing).
	if !u.Equal(Vec{1, 2, 3}) || !v.Equal(Vec{4, 0, -1}) {
		t.Fatalf("inputs mutated: u=%v v=%v", u, v)
	}
	if got := u.Scale(3); !got.Equal(Vec{3, 6, 9}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := u.AddScaled(2, v); !got.Equal(Vec{9, 2, 1}) {
		t.Fatalf("AddScaled = %v", got)
	}
	if got := u.Max(v); !got.Equal(Vec{4, 2, 3}) {
		t.Fatalf("Max = %v", got)
	}
	if got := u.Min(v); !got.Equal(Vec{1, 0, -1}) {
		t.Fatalf("Min = %v", got)
	}
	if got := v.Clip(); !got.Equal(Vec{4, 0, 0}) {
		t.Fatalf("Clip = %v", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add with mismatched dimensions should panic")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestSumOverRestrict(t *testing.T) {
	v := Vec{5, 1, 2, 7}
	if got := v.SumOver([]int{0, 3}); got != 12 {
		t.Fatalf("SumOver = %d, want 12", got)
	}
	s := map[int]bool{1: true, 2: true}
	r := v.RestrictedTo(s)
	if !r.Equal(Vec{0, 1, 2, 0}) {
		t.Fatalf("RestrictedTo = %v", r)
	}
	if v.SupportedBy(s) {
		t.Fatalf("SupportedBy should be false: support includes 0 and 3")
	}
	if !r.SupportedBy(s) {
		t.Fatalf("restriction must be supported by s")
	}
	if !New(4).SupportedBy(map[int]bool{}) {
		t.Fatalf("zero vector is supported by the empty set")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	vs := []Vec{{}, {0}, {1, 2, 3}, {-5, 0, 7}, {1 << 40, -(1 << 40)}}
	for _, v := range vs {
		got, err := ParseKey(v.Key(), v.Dim())
		if err != nil {
			t.Fatalf("ParseKey(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	if _, err := ParseKey(Vec{1, 2}.Key(), 3); err == nil {
		t.Fatalf("ParseKey with wrong dimension should error")
	}
	if _, err := ParseKey("\xff", 1); err == nil {
		t.Fatalf("ParseKey with corrupt bytes should error")
	}
}

func TestKeyInjective(t *testing.T) {
	// Keys of distinct vectors of the same dimension must differ.
	seen := map[string]Vec{}
	for a := int64(-3); a <= 3; a++ {
		for b := int64(-3); b <= 3; b++ {
			v := Vec{a, b}
			k := v.Key()
			if prev, ok := seen[k]; ok && !prev.Equal(v) {
				t.Fatalf("key collision: %v and %v", prev, v)
			}
			seen[k] = v
		}
	}
}

func TestFormat(t *testing.T) {
	v := Vec{1, 0, 2}
	if got := v.Format([]string{"a", "b", "c"}); got != "⟅a, c:2⟆" {
		t.Errorf("Format = %q", got)
	}
	if got := New(2).String(); got != "⟅⟆" {
		t.Errorf("empty String = %q", got)
	}
	if got := (Vec{0, 3}).String(); got != "⟅q1:3⟆" {
		t.Errorf("String = %q", got)
	}
}

func randVec(r *rand.Rand, d int, lo, hi int64) Vec {
	v := make(Vec, d)
	for i := range v {
		v[i] = lo + r.Int63n(hi-lo+1)
	}
	return v
}

func TestQuickArithmeticLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 300}
	// Commutativity and associativity of Add; Sub inverts Add; Le is preserved
	// under adding a common vector (monotonicity, the property the paper uses
	// pervasively).
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(6)
		u, v, w := randVec(rr, d, -20, 20), randVec(rr, d, -20, 20), randVec(rr, d, -20, 20)
		if !u.Add(v).Equal(v.Add(u)) {
			return false
		}
		if !u.Add(v).Add(w).Equal(u.Add(v.Add(w))) {
			return false
		}
		if !u.Add(v).Sub(v).Equal(u) {
			return false
		}
		if u.Le(v) != u.Add(w).Le(v.Add(w)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestQuickNormsAndOrder(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(6)
		u, v := randVec(rr, d, 0, 15), randVec(rr, d, 0, 15)
		// Triangle inequality for ‖·‖₁ and ‖·‖∞.
		if u.Add(v).Norm1() > u.Norm1()+v.Norm1() {
			return false
		}
		if u.Add(v).NormInf() > u.NormInf()+v.NormInf() {
			return false
		}
		// For natural vectors, Size = Norm1 and Le implies Size ordering.
		if u.Size() != u.Norm1() {
			return false
		}
		if u.Le(v) && u.Size() > v.Size() {
			return false
		}
		// Max dominates both; Min is dominated by both.
		m, n := u.Max(v), u.Min(v)
		return u.Le(m) && v.Le(m) && n.Le(u) && n.Le(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(8)
		v := randVec(rr, d, -1000, 1000)
		got, err := ParseKey(v.Key(), d)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
