package multiset

// This file implements the order-theoretic utilities around Dickson's lemma
// (Lemma 4.3 of the paper): every infinite sequence of vectors of the same
// dimension contains an infinite ≤-ordered subsequence. Finite sequences
// without a dominating pair are called bad (antichains under ≤ extended with
// repetition); sequences containing i < j with v_i ≤ v_j are good.

// FirstGoodPair scans seq and returns the first pair of indices i < j with
// seq[i] ≤ seq[j] (the witness that seq is a good sequence). It returns
// ok = false if seq is a bad sequence, i.e. no such pair exists.
func FirstGoodPair(seq []Vec) (i, j int, ok bool) {
	for jj := 1; jj < len(seq); jj++ {
		for ii := 0; ii < jj; ii++ {
			if seq[ii].Le(seq[jj]) {
				return ii, jj, true
			}
		}
	}
	return 0, 0, false
}

// IsBad reports whether seq is a bad sequence: no i < j has seq[i] ≤ seq[j].
func IsBad(seq []Vec) bool {
	_, _, ok := FirstGoodPair(seq)
	return !ok
}

// LongestOrderedSubsequence returns the indices of a maximum-length
// subsequence i₀ < i₁ < ... with seq[i₀] ≤ seq[i₁] ≤ ... (the ordered
// subsequence whose existence Dickson's lemma guarantees for infinite
// sequences). Runs the classic O(n²) longest-increasing-subsequence dynamic
// program with ≤ as the order.
func LongestOrderedSubsequence(seq []Vec) []int {
	if len(seq) == 0 {
		return nil
	}
	best := make([]int, len(seq)) // best[i]: length of longest chain ending at i
	prev := make([]int, len(seq))
	for i := range seq {
		best[i], prev[i] = 1, -1
		for j := 0; j < i; j++ {
			if seq[j].Le(seq[i]) && best[j]+1 > best[i] {
				best[i] = best[j] + 1
				prev[i] = j
			}
		}
	}
	end := 0
	for i := range best {
		if best[i] > best[end] {
			end = i
		}
	}
	chain := make([]int, 0, best[end])
	for i := end; i >= 0; i = prev[i] {
		chain = append(chain, i)
		if prev[i] < 0 {
			break
		}
	}
	// Reverse into ascending index order.
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	return chain
}

// Minimal returns the ≤-minimal elements of vs, with duplicates collapsed.
// The result is a fresh slice; the Vecs themselves are shared with the input.
// Minimal bases of upward-closed sets (Section 3) are maintained with this.
func Minimal(vs []Vec) []Vec {
	var out []Vec
	for _, v := range vs {
		dominated := false
		for _, m := range out {
			if m.Le(v) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Remove elements of out strictly dominating v.
		kept := out[:0]
		for _, m := range out {
			if !v.Le(m) {
				kept = append(kept, m)
			}
		}
		out = append(kept, v)
	}
	return out
}

// DominatesAny reports whether some element of basis is ≤ v, i.e. whether v
// belongs to the upward closure of basis.
func DominatesAny(v Vec, basis []Vec) bool {
	for _, m := range basis {
		if m.Le(v) {
			return true
		}
	}
	return false
}

// Maximal returns the ≤-maximal elements of vs, with duplicates collapsed.
func Maximal(vs []Vec) []Vec {
	var out []Vec
	for _, v := range vs {
		dominated := false
		for _, m := range out {
			if v.Le(m) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		kept := out[:0]
		for _, m := range out {
			if !m.Le(v) {
				kept = append(kept, m)
			}
		}
		out = append(kept, v)
	}
	return out
}
