// Package multiset implements multisets over ℕ^d and integer vectors over ℤ^d
// as used throughout the paper (Section 2.1): configurations of population
// protocols are multisets of states, transition displacements are integer
// vectors, and the componentwise order ≤ (with its strict variant ≨) is the
// well-quasi-order underlying Dickson's lemma.
//
// Values are stored densely as []int64 indexed by coordinate. The zero-length
// vector is a valid empty multiset. Operations that return a new vector never
// alias their inputs; operations suffixed InPlace mutate the receiver.
package multiset

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Vec is a dense integer vector of fixed dimension. A Vec with all
// coordinates ≥ 0 represents a multiset (an element of ℕ^d); general Vecs
// represent elements of ℤ^d such as transition displacements.
type Vec []int64

// New returns the zero vector of dimension d.
func New(d int) Vec {
	return make(Vec, d)
}

// FromCounts copies counts into a fresh Vec.
func FromCounts(counts []int64) Vec {
	v := make(Vec, len(counts))
	copy(v, counts)
	return v
}

// Unit returns the vector of dimension d with a single 1 at coordinate i,
// i.e. the one-element multiset {i}.
func Unit(d, i int) Vec {
	v := make(Vec, d)
	v[i] = 1
	return v
}

// Pair returns the multiset {i, j} of dimension d (i and j may be equal).
func Pair(d, i, j int) Vec {
	v := make(Vec, d)
	v[i]++
	v[j]++
	return v
}

// Dim returns the dimension of v.
func (v Vec) Dim() int { return len(v) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Size returns Σᵢ v(i), written |v| in the paper. For multisets this is the
// total number of elements (agents).
func (v Vec) Size() int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns ‖v‖₁ = Σᵢ |v(i)|.
func (v Vec) Norm1() int64 {
	var s int64
	for _, x := range v {
		if x < 0 {
			s -= x
		} else {
			s += x
		}
	}
	return s
}

// NormInf returns ‖v‖∞ = maxᵢ |v(i)|. The norm of the empty vector is 0.
func (v Vec) NormInf() int64 {
	var m int64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// IsZero reports whether every coordinate is 0.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// IsNatural reports whether v ∈ ℕ^d, i.e. every coordinate is ≥ 0.
func (v Vec) IsNatural() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// Support returns the set ⟦v⟧ = {i : v(i) ≠ 0} as a sorted slice of
// coordinates.
func (v Vec) Support() []int {
	var s []int
	for i, x := range v {
		if x != 0 {
			s = append(s, i)
		}
	}
	return s
}

// SupportSize returns |⟦v⟧|, the number of non-zero coordinates.
func (v Vec) SupportSize() int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return n
}

// Equal reports whether u and v are identical vectors of the same dimension.
func (v Vec) Equal(u Vec) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range v {
		if x != u[i] {
			return false
		}
	}
	return true
}

// Le reports whether v ≤ u componentwise. Vectors of different dimensions are
// incomparable.
func (v Vec) Le(u Vec) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range v {
		if x > u[i] {
			return false
		}
	}
	return true
}

// Lt reports whether v ≨ u, i.e. v ≤ u and v ≠ u.
func (v Vec) Lt(u Vec) bool {
	return v.Le(u) && !v.Equal(u)
}

// Add returns v + u in a fresh vector. Panics if dimensions differ.
func (v Vec) Add(u Vec) Vec {
	w := v.Clone()
	w.AddInPlace(u)
	return w
}

// AddInPlace sets v ← v + u. Panics if dimensions differ.
func (v Vec) AddInPlace(u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("multiset: dimension mismatch %d != %d", len(v), len(u)))
	}
	for i, x := range u {
		v[i] += x
	}
}

// Sub returns v − u in a fresh vector. Panics if dimensions differ.
func (v Vec) Sub(u Vec) Vec {
	w := v.Clone()
	w.SubInPlace(u)
	return w
}

// SubInPlace sets v ← v − u. Panics if dimensions differ.
func (v Vec) SubInPlace(u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("multiset: dimension mismatch %d != %d", len(v), len(u)))
	}
	for i, x := range u {
		v[i] -= x
	}
}

// Scale returns λ·v in a fresh vector.
func (v Vec) Scale(lambda int64) Vec {
	w := make(Vec, len(v))
	for i, x := range v {
		w[i] = lambda * x
	}
	return w
}

// AddScaled returns v + λ·u in a fresh vector. Panics if dimensions differ.
func (v Vec) AddScaled(lambda int64, u Vec) Vec {
	if len(v) != len(u) {
		panic(fmt.Sprintf("multiset: dimension mismatch %d != %d", len(v), len(u)))
	}
	w := v.Clone()
	for i, x := range u {
		w[i] += lambda * x
	}
	return w
}

// Max returns the componentwise maximum of v and u. Panics if dimensions
// differ.
func (v Vec) Max(u Vec) Vec {
	if len(v) != len(u) {
		panic(fmt.Sprintf("multiset: dimension mismatch %d != %d", len(v), len(u)))
	}
	w := v.Clone()
	for i, x := range u {
		if x > w[i] {
			w[i] = x
		}
	}
	return w
}

// Min returns the componentwise minimum of v and u. Panics if dimensions
// differ.
func (v Vec) Min(u Vec) Vec {
	if len(v) != len(u) {
		panic(fmt.Sprintf("multiset: dimension mismatch %d != %d", len(v), len(u)))
	}
	w := v.Clone()
	for i, x := range u {
		if x < w[i] {
			w[i] = x
		}
	}
	return w
}

// Clip returns the componentwise maximum of v and 0, i.e. v with negative
// coordinates replaced by 0.
func (v Vec) Clip() Vec {
	w := v.Clone()
	for i, x := range w {
		if x < 0 {
			w[i] = 0
		}
	}
	return w
}

// SumOver returns Σ_{i∈coords} v(i), written v(B') in the paper.
func (v Vec) SumOver(coords []int) int64 {
	var s int64
	for _, i := range coords {
		s += v[i]
	}
	return s
}

// RestrictedTo returns the vector that agrees with v on coords and is 0
// elsewhere.
func (v Vec) RestrictedTo(coords map[int]bool) Vec {
	w := make(Vec, len(v))
	for i := range v {
		if coords[i] {
			w[i] = v[i]
		}
	}
	return w
}

// SupportedBy reports whether ⟦v⟧ ⊆ coords, i.e. v is 0 outside coords. For a
// stable-set ideal (B, S) this is the "0-concentrated in S" condition of
// Section 5.4 when applied to a configuration.
func (v Vec) SupportedBy(coords map[int]bool) bool {
	for i, x := range v {
		if x != 0 && !coords[i] {
			return false
		}
	}
	return true
}

// Key returns a compact encoding of v usable as a map key. Two vectors have
// equal keys iff they are Equal.
func (v Vec) Key() string {
	buf := make([]byte, 0, len(v)*2+binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	for _, x := range v {
		n := binary.PutVarint(tmp[:], x)
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// ParseKey decodes a key produced by Key for a vector of dimension d.
func ParseKey(key string, d int) (Vec, error) {
	v := make(Vec, 0, d)
	b := []byte(key)
	for len(b) > 0 {
		x, n := binary.Varint(b)
		if n <= 0 {
			return nil, fmt.Errorf("multiset: corrupt key")
		}
		v = append(v, x)
		b = b[n:]
	}
	if len(v) != d {
		return nil, fmt.Errorf("multiset: key has dimension %d, want %d", len(v), d)
	}
	return v, nil
}

// String renders v in the paper's set-like notation, e.g. "⟅a:2, c:1⟆" for
// indices printed as numbers. Use Format for named coordinates.
func (v Vec) String() string {
	return v.Format(nil)
}

// Format renders v using names[i] for coordinate i; nil names fall back to
// numeric indices. Zero coordinates are omitted; the empty multiset renders
// as "⟅⟆".
func (v Vec) Format(names []string) string {
	var b strings.Builder
	b.WriteString("⟅")
	first := true
	for i, x := range v {
		if x == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		if names != nil && i < len(names) {
			b.WriteString(names[i])
		} else {
			fmt.Fprintf(&b, "q%d", i)
		}
		if x != 1 {
			fmt.Fprintf(&b, ":%d", x)
		}
	}
	b.WriteString("⟆")
	return b.String()
}
