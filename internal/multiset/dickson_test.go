package multiset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFirstGoodPair(t *testing.T) {
	tests := []struct {
		name string
		seq  []Vec
		i, j int
		ok   bool
	}{
		{"empty", nil, 0, 0, false},
		{"single", []Vec{{1, 1}}, 0, 0, false},
		{"ordered", []Vec{{1, 0}, {1, 1}}, 0, 1, true},
		{"equal is good", []Vec{{2, 2}, {2, 2}}, 0, 1, true},
		{"antichain", []Vec{{0, 2}, {1, 1}, {2, 0}}, 0, 0, false},
		{"late pair", []Vec{{0, 3}, {3, 0}, {1, 2}, {2, 3}}, 0, 3, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			i, j, ok := FirstGoodPair(tc.seq)
			if ok != tc.ok || (ok && (i != tc.i || j != tc.j)) {
				t.Fatalf("FirstGoodPair = (%d,%d,%t), want (%d,%d,%t)", i, j, ok, tc.i, tc.j, tc.ok)
			}
			if IsBad(tc.seq) != !tc.ok {
				t.Fatalf("IsBad inconsistent with FirstGoodPair")
			}
		})
	}
}

func TestLongestOrderedSubsequence(t *testing.T) {
	seq := []Vec{{0, 3}, {1, 1}, {3, 0}, {1, 2}, {2, 2}, {0, 1}}
	idx := LongestOrderedSubsequence(seq)
	// Chain {1,1} ≤ {1,2} ≤ {2,2} has length 3 and is maximal.
	if len(idx) != 3 {
		t.Fatalf("chain length = %d (%v), want 3", len(idx), idx)
	}
	for k := 1; k < len(idx); k++ {
		if idx[k-1] >= idx[k] {
			t.Fatalf("indices not increasing: %v", idx)
		}
		if !seq[idx[k-1]].Le(seq[idx[k]]) {
			t.Fatalf("not a chain at %d: %v", k, idx)
		}
	}
	if LongestOrderedSubsequence(nil) != nil {
		t.Fatalf("empty sequence should give nil")
	}
	if got := LongestOrderedSubsequence([]Vec{{5}}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton = %v", got)
	}
}

func TestMinimalMaximal(t *testing.T) {
	vs := []Vec{{2, 2}, {1, 3}, {3, 1}, {2, 2}, {1, 1}, {4, 4}}
	min := Minimal(vs)
	if len(min) != 1 || !min[0].Equal(Vec{1, 1}) {
		t.Fatalf("Minimal = %v, want [{1,1}]", min)
	}
	max := Maximal(vs)
	if len(max) != 1 || !max[0].Equal(Vec{4, 4}) {
		t.Fatalf("Maximal = %v, want [{4,4}]", max)
	}

	anti := []Vec{{0, 2}, {1, 1}, {2, 0}}
	if got := Minimal(anti); len(got) != 3 {
		t.Fatalf("Minimal of antichain = %v, want all 3", got)
	}
	if got := Maximal(anti); len(got) != 3 {
		t.Fatalf("Maximal of antichain = %v, want all 3", got)
	}
	// Duplicates collapse.
	if got := Minimal([]Vec{{1, 1}, {1, 1}}); len(got) != 1 {
		t.Fatalf("duplicates should collapse: %v", got)
	}
	if got := Minimal(nil); got != nil {
		t.Fatalf("Minimal(nil) = %v", got)
	}
}

func TestDominatesAny(t *testing.T) {
	basis := []Vec{{2, 0}, {0, 3}}
	tests := []struct {
		v    Vec
		want bool
	}{
		{Vec{2, 0}, true},
		{Vec{5, 1}, true},
		{Vec{1, 3}, true},
		{Vec{1, 2}, false},
		{Vec{0, 0}, false},
	}
	for _, tc := range tests {
		if got := DominatesAny(tc.v, basis); got != tc.want {
			t.Errorf("DominatesAny(%v) = %t, want %t", tc.v, got, tc.want)
		}
	}
	if DominatesAny(Vec{1}, nil) {
		t.Errorf("empty basis dominates nothing")
	}
}

// Property: Minimal returns an antichain that generates the same upward
// closure as the input.
func TestQuickMinimalAntichainAndClosure(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(4)
		n := rr.Intn(12)
		vs := make([]Vec, n)
		for i := range vs {
			vs[i] = randVec(rr, d, 0, 6)
		}
		min := Minimal(vs)
		// Antichain: no element ≤ another distinct element.
		for i := range min {
			for j := range min {
				if i != j && min[i].Le(min[j]) {
					return false
				}
			}
		}
		// Same upward closure: every input is dominated by some minimal
		// element, and every minimal element is an input.
		for _, v := range vs {
			if !DominatesAny(v, min) {
				return false
			}
		}
		for _, m := range min {
			found := false
			for _, v := range vs {
				if v.Equal(m) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (Dickson's lemma, finite form): sufficiently long sequences of
// small vectors must be good.
func TestQuickLongBoundedSequencesAreGood(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(3)
		// With coordinates in {0,1}, any sequence longer than the number of
		// distinct antichain arrangements must contain a good pair; 2^d + 1
		// pigeonholes a repeat, and repeats are good pairs.
		n := 1<<d + 1
		seq := make([]Vec, n)
		for i := range seq {
			seq[i] = randVec(rr, d, 0, 1)
		}
		return !IsBad(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
