package ideal

import (
	"fmt"
	"strings"

	"repro/internal/multiset"
)

// Ideal is a downward-closed "box" in ℕ^d: coordinate i is bounded by
// caps[i], or unbounded when caps[i] == Omega. The paper's basis element
// (B, S) corresponds to the ideal with caps[i] = B(i) off S and ω on S.
type Ideal struct {
	caps []int64
}

// NewIdeal returns an ideal with the given caps (Omega for ω coordinates).
func NewIdeal(caps []int64) Ideal {
	out := make([]int64, len(caps))
	copy(out, caps)
	return Ideal{caps: out}
}

// FullIdeal returns ℕ^d (all coordinates ω).
func FullIdeal(d int) Ideal {
	caps := make([]int64, d)
	for i := range caps {
		caps[i] = Omega
	}
	return Ideal{caps: caps}
}

// Dim returns the dimension.
func (id Ideal) Dim() int { return len(id.caps) }

// Cap returns the cap of coordinate i (Omega if unbounded).
func (id Ideal) Cap(i int) int64 { return id.caps[i] }

// Contains reports whether v belongs to the ideal.
func (id Ideal) Contains(v multiset.Vec) bool {
	if v.Dim() != len(id.caps) {
		return false
	}
	for i, c := range id.caps {
		if c != Omega && v[i] > c {
			return false
		}
	}
	return true
}

// Subsumes reports whether other ⊆ id.
func (id Ideal) Subsumes(other Ideal) bool {
	for i, c := range id.caps {
		if c == Omega {
			continue
		}
		if other.caps[i] == Omega || other.caps[i] > c {
			return false
		}
	}
	return true
}

// Intersect returns the coordinatewise minimum of caps.
func (id Ideal) Intersect(other Ideal) Ideal {
	out := make([]int64, len(id.caps))
	for i := range out {
		a, b := id.caps[i], other.caps[i]
		switch {
		case a == Omega:
			out[i] = b
		case b == Omega:
			out[i] = a
		case a < b:
			out[i] = a
		default:
			out[i] = b
		}
	}
	return Ideal{caps: out}
}

// B returns the paper's B component: the vector of finite caps (0 on ω
// coordinates).
func (id Ideal) B() multiset.Vec {
	b := multiset.New(len(id.caps))
	for i, c := range id.caps {
		if c != Omega {
			b[i] = c
		}
	}
	return b
}

// S returns the paper's S component: the set of ω coordinates, in the map
// representation used by the pump certificate JSON format.
func (id Ideal) S() map[int]bool {
	s := make(map[int]bool)
	for i, c := range id.caps {
		if c == Omega {
			s[i] = true
		}
	}
	return s
}

// SBits returns the paper's S component as a packed bitset — the
// representation stable.BasisElement keeps on its membership hot path.
func (id Ideal) SBits() Bits {
	s := NewBits(len(id.caps))
	for i, c := range id.caps {
		if c == Omega {
			s.Set(i)
		}
	}
	return s
}

// Norm returns ‖(B,S)‖∞ = ‖B‖∞, the norm of the basis element (Section 3).
func (id Ideal) Norm() int64 {
	var n int64
	for _, c := range id.caps {
		if c != Omega && c > n {
			n = c
		}
	}
	return n
}

// String renders the ideal, e.g. "[2, ω, 0]".
func (id Ideal) String() string {
	parts := make([]string, len(id.caps))
	for i, c := range id.caps {
		if c == Omega {
			parts[i] = "ω"
		} else {
			parts[i] = fmt.Sprintf("%d", c)
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// DownSet is a downward-closed subset of ℕ^d represented as a finite union
// of ideals, kept irredundant (no ideal subsumes another).
//
// Subsumption scans during Add are pruned by a per-ideal folded ω-mask:
// id ⊆ have needs every ω coordinate of id to be ω in have, so
// ωmask(id) &^ ωmask(have) ≠ 0 refutes subsumption in one word before any
// cap is compared. The pruning changes no decision — the kept ideals and
// their order are exactly those of the unpruned seed Add — so the
// decompositions both complementation paths (ComplementUp and the retained
// NaiveComplementUp) produce stay bit-identical.
type DownSet struct {
	d      int
	ideals []Ideal
	omegas []uint64 // parallel to ideals: folded ω-coordinate masks
}

// omegaMask folds the ω coordinates of an ideal into one word (bit i mod
// 64 for each ω coordinate i).
func omegaMask(id Ideal) uint64 {
	var m uint64
	for i, c := range id.caps {
		if c == Omega {
			m |= 1 << (uint(i) & 63)
		}
	}
	return m
}

// NewDownSet returns the union of the given ideals.
func NewDownSet(d int, ideals ...Ideal) *DownSet {
	ds := &DownSet{d: d}
	ds.Add(ideals...)
	return ds
}

// RestoreDownSet rebuilds a DownSet verbatim from a previously computed
// irredundant decomposition — one obtained from Ideals() — skipping the
// subsumption scans Add pays. The irredundant decomposition of a
// downward-closed set is canonical (box ideals are irreducible, so the
// decomposition is exactly the set of maximal ideals), but the slice order
// is construction history; restoring verbatim preserves it, so every
// accessor iterates identically to the original. The caller vouches the
// input came from a DownSet of dimension d: feeding a redundant or
// foreign-dimension slice corrupts the set, which is why the dimension at
// least is checked.
func RestoreDownSet(d int, ideals []Ideal) (*DownSet, error) {
	ds := &DownSet{
		d:      d,
		ideals: make([]Ideal, len(ideals)),
		omegas: make([]uint64, len(ideals)),
	}
	for k, id := range ideals {
		if id.Dim() != d {
			return nil, fmt.Errorf("ideal: restore: ideal %d has dimension %d, want %d", k, id.Dim(), d)
		}
		ds.ideals[k] = NewIdeal(id.caps)
		ds.omegas[k] = omegaMask(ds.ideals[k])
	}
	return ds, nil
}

// Dim returns the dimension.
func (ds *DownSet) Dim() int { return ds.d }

// IsEmpty reports whether the set is empty.
func (ds *DownSet) IsEmpty() bool { return len(ds.ideals) == 0 }

// Contains reports whether v belongs to the set.
func (ds *DownSet) Contains(v multiset.Vec) bool {
	for _, id := range ds.ideals {
		if id.Contains(v) {
			return true
		}
	}
	return false
}

// Add unions ideals into the set, maintaining irredundancy.
func (ds *DownSet) Add(ideals ...Ideal) {
	for _, id := range ideals {
		if id.Dim() != ds.d {
			panic(fmt.Sprintf("ideal: ideal dimension %d, want %d", id.Dim(), ds.d))
		}
		om := omegaMask(id)
		sub := false
		for k, have := range ds.ideals {
			// have ⊇ id needs ω(id) ⊆ ω(have).
			if om&^ds.omegas[k] == 0 && have.Subsumes(id) {
				sub = true
				break
			}
		}
		if sub {
			continue
		}
		kept := ds.ideals[:0]
		keptOmegas := ds.omegas[:0]
		for k, have := range ds.ideals {
			// id ⊇ have needs ω(have) ⊆ ω(id).
			if ds.omegas[k]&^om == 0 && id.Subsumes(have) {
				continue
			}
			kept = append(kept, have)
			keptOmegas = append(keptOmegas, ds.omegas[k])
		}
		ds.ideals = append(kept, id)
		ds.omegas = append(keptOmegas, om)
	}
}

// Ideals returns a copy of the ideal decomposition.
func (ds *DownSet) Ideals() []Ideal {
	out := make([]Ideal, len(ds.ideals))
	copy(out, ds.ideals)
	return out
}

// Size returns the number of ideals in the decomposition.
func (ds *DownSet) Size() int { return len(ds.ideals) }

// Norm returns the maximal basis-element norm over the decomposition,
// the quantity bounded by the small basis constant β in Lemma 3.2.
func (ds *DownSet) Norm() int64 {
	var n int64
	for _, id := range ds.ideals {
		if k := id.Norm(); k > n {
			n = k
		}
	}
	return n
}

// Union returns the union of ds and other.
func (ds *DownSet) Union(other *DownSet) *DownSet {
	out := NewDownSet(ds.d, ds.ideals...)
	out.Add(other.ideals...)
	return out
}

// String renders the decomposition.
func (ds *DownSet) String() string {
	parts := make([]string, len(ds.ideals))
	for i, id := range ds.ideals {
		parts[i] = id.String()
	}
	return "↓(" + strings.Join(parts, " ∪ ") + ")"
}

// ComplementUp computes the downward-closed complement of an upward-closed
// set: ℕ^d ∖ ↑{m₁,...,m_k} = ∩_j ∪_{i : m_j(i) > 0} {v : v_i ≤ m_j(i) − 1},
// expanded into an irredundant union of ideals.
//
// An irredundant union of ideals is canonical: box ideals are irreducible
// (an ideal contained in a finite union is contained in one member — look
// at its corner), so the irredundant decomposition of a downward-closed
// set is exactly its set of maximal ideals, whatever order it was built
// in. That licenses the pass structure here, which differs from the seed's
// (retained as NaiveComplementUp) but produces the same decomposition:
// per minimal element m, ideals that already avoid ↑m (some cap below m on
// ⟦m⟧) pass through untouched — they were pairwise irredundant and a
// shrunk clone can never subsume an untouched ideal (it would have had to
// subsume its parent) — and only the clones of the remaining ideals pay
// subsumption scans.
func ComplementUp(u *UpSet) *DownSet {
	d := u.Dim()
	ds := NewDownSet(d, FullIdeal(d))
	support := make([]int, 0, d)
	var changed []Ideal
	for _, mid := range u.ids {
		m := u.storedAt(mid)
		support = support[:0]
		for i, x := range m {
			if x > 0 {
				support = append(support, i)
			}
		}
		next := &DownSet{d: d}
		changed = changed[:0]
		for k, id := range ds.ideals {
			avoids := false
			for _, i := range support {
				if id.caps[i] != Omega && id.caps[i] <= m[i]-1 {
					avoids = true
					break
				}
			}
			if avoids {
				next.ideals = append(next.ideals, id)
				next.omegas = append(next.omegas, ds.omegas[k])
			} else {
				changed = append(changed, id)
			}
		}
		// A minimal element m = 0 has empty support: ↑m = ℕ^d, complement
		// empty, nothing survives (no clones are generated).
		protected := len(next.ideals)
		for _, id := range changed {
			for _, i := range support {
				// Here caps[i] is ω or > m[i]−1, so the clone strictly
				// shrinks coordinate i.
				clone := NewIdeal(id.caps)
				clone.caps[i] = m[i] - 1
				next.addClone(clone, protected)
			}
		}
		ds = next
	}
	return ds
}

// addClone inserts a shrunk clone during a ComplementUp pass: ideals below
// index protected are untouched originals that no clone can subsume, so
// the removal scan starts at protected; the subsumed-by scan still covers
// everything.
func (ds *DownSet) addClone(id Ideal, protected int) {
	om := omegaMask(id)
	for k, have := range ds.ideals {
		if om&^ds.omegas[k] == 0 && have.Subsumes(id) {
			return
		}
	}
	kept := ds.ideals[:protected]
	keptOmegas := ds.omegas[:protected]
	for k := protected; k < len(ds.ideals); k++ {
		if ds.omegas[k]&^om == 0 && id.Subsumes(ds.ideals[k]) {
			continue
		}
		kept = append(kept, ds.ideals[k])
		keptOmegas = append(keptOmegas, ds.omegas[k])
	}
	ds.ideals = append(kept, id)
	ds.omegas = append(keptOmegas, om)
}

// ComplementDown computes the upward-closed complement of a downward-closed
// set: the complement of one ideal with finite caps c_i on coordinates i ∈ F
// is ∪_{i∈F} ↑((c_i+1)·e_i); the complement of the union is the intersection
// of these upward-closed sets.
func ComplementDown(ds *DownSet) *UpSet {
	d := ds.d
	// Complement of the empty set is everything: ↑{0}.
	out := NewUpSet(d, multiset.New(d))
	for _, id := range ds.ideals {
		var gens []multiset.Vec
		for i, c := range id.caps {
			if c == Omega {
				continue
			}
			g := multiset.New(d)
			g[i] = c + 1
			gens = append(gens, g)
		}
		// An all-ω ideal is ℕ^d: its complement is empty.
		out = out.Intersect(NewUpSet(d, gens...))
	}
	return out
}
