package ideal

import (
	"math/rand"
	"testing"
)

// randWords draws a coordinate slice with small values, biased toward ties
// so the equality and domination scans exercise their late-exit paths.
func randWords(rng *rand.Rand, n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(rng.Intn(4))
	}
	return w
}

// TestLeWordsMatchesRef pins the unrolled 4-wide domination scan to the
// word-at-a-time reference on every length around the unroll boundaries,
// including pairs built to differ only in the final word of a quad.
func TestLeWordsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 19; n++ {
		for trial := 0; trial < 400; trial++ {
			a, b := randWords(rng, n), randWords(rng, n)
			if trial%3 == 0 {
				copy(b, a) // force the all-equal slow path
				if n > 0 && trial%6 == 0 {
					b[rng.Intn(n)]++ // strict domination at one coordinate
				}
			}
			if got, want := leWords(a, b), leWordsRef(a, b); got != want {
				t.Fatalf("leWords(%v, %v) = %t, ref %t", a, b, got, want)
			}
		}
	}
}

// TestEqWordsMatchesRef pins the unrolled equality scan the same way,
// including the length-mismatch early exit.
func TestEqWordsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n <= 19; n++ {
		for trial := 0; trial < 400; trial++ {
			a, b := randWords(rng, n), randWords(rng, n)
			if trial%2 == 0 {
				copy(b, a)
				if n > 0 && trial%4 == 0 {
					b[rng.Intn(n)] ^= 1 // single-coordinate flip
				}
			}
			if got, want := eqWords(a, b), eqWordsRef(a, b); got != want {
				t.Fatalf("eqWords(%v, %v) = %t, ref %t", a, b, got, want)
			}
			if got, want := eqWords(a, b[:max(0, n-1)]), eqWordsRef(a, b[:max(0, n-1)]); got != want {
				t.Fatalf("eqWords length mismatch = %t, ref %t", got, want)
			}
		}
	}
}

// FuzzWordScans cross-checks both unrolled comparators against their
// references on arbitrary byte-derived coordinate pairs.
func FuzzWordScans(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 2, 3, 4})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{9})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 2
		a := make([]int64, n)
		b := make([]int64, n)
		for i := 0; i < n; i++ {
			a[i] = int64(data[i] % 16)
			b[i] = int64(data[n+i] % 16)
		}
		if got, want := leWords(a, b), leWordsRef(a, b); got != want {
			t.Fatalf("leWords(%v, %v) = %t, ref %t", a, b, got, want)
		}
		if got, want := eqWords(a, b), eqWordsRef(a, b); got != want {
			t.Fatalf("eqWords(%v, %v) = %t, ref %t", a, b, got, want)
		}
	})
}

// benchWordPairs builds pairs where a ≤ b holds, so the scan runs to
// completion — the worst case and the common case inside a fixpoint, where
// most Contains probes walk deep into the element before deciding.
func benchWordPairs(n, count int) [][2][]int64 {
	rng := rand.New(rand.NewSource(42))
	pairs := make([][2][]int64, count)
	for i := range pairs {
		a := randWords(rng, n)
		b := make([]int64, n)
		for j := range b {
			b[j] = a[j] + int64(rng.Intn(2))
		}
		pairs[i] = [2][]int64{a, b}
	}
	return pairs
}

// BenchmarkLeWords pins the unrolled comparator against the reference on
// the dimensions the stable/realise fixpoints actually run at (flock ~η
// states, binary thresholds ~2·log η states). Run both sides with
// -bench 'LeWords' to confirm the unroll still pays before touching it.
func BenchmarkLeWords(b *testing.B) {
	for _, n := range []int{6, 12, 16, 34} {
		pairs := benchWordPairs(n, 64)
		b.Run(sizeName("unrolled", n), func(b *testing.B) {
			sink := false
			for i := 0; i < b.N; i++ {
				p := pairs[i&63]
				sink = leWords(p[0], p[1])
			}
			_ = sink
		})
		b.Run(sizeName("ref", n), func(b *testing.B) {
			sink := false
			for i := 0; i < b.N; i++ {
				p := pairs[i&63]
				sink = leWordsRef(p[0], p[1])
			}
			_ = sink
		})
	}
}

func sizeName(kind string, n int) string {
	return kind + "/dim=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
