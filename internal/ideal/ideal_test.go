package ideal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/multiset"
)

func TestUpSetBasics(t *testing.T) {
	u := NewUpSet(2)
	if !u.IsEmpty() || u.Contains(multiset.Vec{0, 0}) {
		t.Fatal("fresh UpSet must be empty")
	}
	if grew := u.Add(multiset.Vec{2, 1}); !grew {
		t.Fatal("adding to empty set should grow it")
	}
	if !u.Contains(multiset.Vec{2, 1}) || !u.Contains(multiset.Vec{5, 5}) {
		t.Fatal("upward closure violated")
	}
	if u.Contains(multiset.Vec{1, 1}) || u.Contains(multiset.Vec{2, 0}) {
		t.Fatal("below the generator")
	}
	// Adding a dominated element does not grow the set.
	if grew := u.Add(multiset.Vec{3, 3}); grew {
		t.Fatal("dominated generator should not grow the set")
	}
	// Adding a smaller element replaces the generator.
	if grew := u.Add(multiset.Vec{1, 0}); !grew {
		t.Fatal("smaller generator should grow the set")
	}
	if u.Size() != 1 {
		t.Fatalf("basis size = %d, want 1 (minimized)", u.Size())
	}
	if u.Norm() != 1 {
		t.Fatalf("Norm = %d, want 1", u.Norm())
	}
}

func TestUpSetUnionIntersect(t *testing.T) {
	a := NewUpSet(2, multiset.Vec{2, 0})
	b := NewUpSet(2, multiset.Vec{0, 3})
	un := a.Union(b)
	if !un.Contains(multiset.Vec{2, 0}) || !un.Contains(multiset.Vec{0, 3}) {
		t.Fatal("union must contain both generators")
	}
	in := a.Intersect(b)
	if !in.Contains(multiset.Vec{2, 3}) {
		t.Fatal("intersection must contain the max")
	}
	if in.Contains(multiset.Vec{2, 2}) || in.Contains(multiset.Vec{1, 3}) {
		t.Fatal("intersection too large")
	}
	// Intersection with the empty set is empty.
	empty := NewUpSet(2)
	if !a.Intersect(empty).IsEmpty() {
		t.Fatal("intersection with empty set must be empty")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone must be equal")
	}
	if a.Equal(b) {
		t.Fatal("different sets must not be equal")
	}
}

func TestIdealBasics(t *testing.T) {
	id := NewIdeal([]int64{2, Omega, 0})
	tests := []struct {
		v    multiset.Vec
		want bool
	}{
		{multiset.Vec{0, 0, 0}, true},
		{multiset.Vec{2, 100, 0}, true},
		{multiset.Vec{3, 0, 0}, false},
		{multiset.Vec{0, 0, 1}, false},
		{multiset.Vec{0, 0}, false}, // wrong dimension
	}
	for _, tc := range tests {
		if got := id.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%v) = %t, want %t", tc.v, got, tc.want)
		}
	}
	if id.Norm() != 2 {
		t.Errorf("Norm = %d, want 2", id.Norm())
	}
	if got := id.String(); got != "[2, ω, 0]" {
		t.Errorf("String = %q", got)
	}
	b := id.B()
	if !b.Equal(multiset.Vec{2, 0, 0}) {
		t.Errorf("B = %v", b)
	}
	s := id.S()
	if len(s) != 1 || !s[1] {
		t.Errorf("S = %v", s)
	}
}

func TestIdealSubsumesIntersect(t *testing.T) {
	big := NewIdeal([]int64{Omega, 5})
	small := NewIdeal([]int64{3, 2})
	if !big.Subsumes(small) {
		t.Fatal("big should subsume small")
	}
	if small.Subsumes(big) {
		t.Fatal("small should not subsume big")
	}
	in := big.Intersect(small)
	if in.Cap(0) != 3 || in.Cap(1) != 2 {
		t.Fatalf("Intersect = %v", in)
	}
	full := FullIdeal(2)
	if !full.Subsumes(big) || !full.Subsumes(small) {
		t.Fatal("full ideal subsumes everything")
	}
}

func TestDownSetAddIrredundant(t *testing.T) {
	ds := NewDownSet(2)
	ds.Add(NewIdeal([]int64{1, 1}))
	ds.Add(NewIdeal([]int64{Omega, 0}))
	ds.Add(NewIdeal([]int64{0, 0})) // subsumed by both
	if ds.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (irredundant)", ds.Size())
	}
	ds.Add(NewIdeal([]int64{Omega, 1})) // subsumes {1,1}? no: [1,1] ⊆ [ω,1]; also [ω,0] ⊆ [ω,1]
	if ds.Size() != 1 {
		t.Fatalf("Size = %d, want 1 after adding dominating ideal: %s", ds.Size(), ds)
	}
	if ds.Norm() != 1 {
		t.Fatalf("Norm = %d", ds.Norm())
	}
}

func TestComplementUpKnown(t *testing.T) {
	// Complement of ↑{(2,0), (0,3)} in ℕ² is {v0 ≤ 1 and v1 ≤ 2}.
	u := NewUpSet(2, multiset.Vec{2, 0}, multiset.Vec{0, 3})
	ds := ComplementUp(u)
	if ds.Size() != 1 {
		t.Fatalf("decomposition size = %d (%s), want 1", ds.Size(), ds)
	}
	id := ds.Ideals()[0]
	if id.Cap(0) != 1 || id.Cap(1) != 2 {
		t.Fatalf("complement = %s, want [1, 2]", id)
	}
	// Complement of the empty up-set is everything.
	all := ComplementUp(NewUpSet(2))
	if all.Size() != 1 || all.Ideals()[0].Cap(0) != Omega {
		t.Fatalf("complement of empty = %s", all)
	}
	// Complement of ↑{0} (= everything) is empty.
	none := ComplementUp(NewUpSet(2, multiset.New(2)))
	if !none.IsEmpty() {
		t.Fatalf("complement of full = %s", none)
	}
}

func TestComplementDownKnown(t *testing.T) {
	// Complement of ↓[1, ω] is ↑{(2,0)}.
	ds := NewDownSet(2, NewIdeal([]int64{1, Omega}))
	u := ComplementDown(ds)
	if u.Size() != 1 {
		t.Fatalf("basis size = %d (%s)", u.Size(), u)
	}
	if !u.Contains(multiset.Vec{2, 0}) || u.Contains(multiset.Vec{1, 99}) {
		t.Fatalf("wrong complement: %s", u)
	}
	// Complement of the empty down-set is everything.
	all := ComplementDown(NewDownSet(2))
	if !all.Contains(multiset.New(2)) {
		t.Fatal("complement of empty down-set must contain 0")
	}
	// Complement of ℕ^d is empty.
	none := ComplementDown(NewDownSet(2, FullIdeal(2)))
	if !none.IsEmpty() {
		t.Fatalf("complement of full = %s", none)
	}
}

// randomUpSet builds an upward-closed set from a few random generators.
func randomUpSet(rr *rand.Rand, d int) *UpSet {
	n := 1 + rr.Intn(4)
	gens := make([]multiset.Vec, n)
	for i := range gens {
		g := multiset.New(d)
		for j := range g {
			g[j] = int64(rr.Intn(4))
		}
		gens[i] = g
	}
	return NewUpSet(d, gens...)
}

// TestQuickComplementDuality: v ∈ U xor v ∈ complement(U), and double
// complement is the identity, checked pointwise on a box.
func TestQuickComplementDuality(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(3)
		u := randomUpSet(rr, d)
		ds := ComplementUp(u)
		uu := ComplementDown(ds)
		// Pointwise check on the box {0..5}^d.
		var rec func(i int, v multiset.Vec) bool
		rec = func(i int, v multiset.Vec) bool {
			if i == d {
				inU := u.Contains(v)
				inDS := ds.Contains(v)
				if inU == inDS {
					return false
				}
				if uu.Contains(v) != inU {
					return false
				}
				return true
			}
			for x := int64(0); x <= 5; x++ {
				v[i] = x
				if !rec(i+1, v) {
					return false
				}
			}
			v[i] = 0
			return true
		}
		if !rec(0, multiset.New(d)) {
			return false
		}
		return u.Equal(uu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectUnionSemantics checks set operations pointwise.
func TestQuickIntersectUnionSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(3)
		a, b := randomUpSet(rr, d), randomUpSet(rr, d)
		un := a.Union(b)
		in := a.Intersect(b)
		v := multiset.New(d)
		for trial := 0; trial < 100; trial++ {
			for j := range v {
				v[j] = int64(rr.Intn(7))
			}
			if un.Contains(v) != (a.Contains(v) || b.Contains(v)) {
				return false
			}
			if in.Contains(v) != (a.Contains(v) && b.Contains(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickDownSetDownwardClosed: membership is downward closed.
func TestQuickDownSetDownwardClosed(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(3)
		ds := ComplementUp(randomUpSet(rr, d))
		v := multiset.New(d)
		for trial := 0; trial < 60; trial++ {
			for j := range v {
				v[j] = int64(rr.Intn(6))
			}
			if !ds.Contains(v) {
				continue
			}
			w := v.Clone()
			for j := range w {
				if w[j] > 0 && rr.Intn(2) == 0 {
					w[j]--
				}
			}
			if !ds.Contains(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
