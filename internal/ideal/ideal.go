// Package ideal implements upward-closed and downward-closed subsets of ℕ^d
// with finite symbolic representations, the order-theoretic backbone of
// Section 3 of the paper:
//
//   - an upward-closed set is represented by its finite antichain of minimal
//     elements (well-defined by Dickson's lemma);
//   - a downward-closed set is represented as a finite union of ideals; an
//     Ideal fixes for each coordinate either a finite cap c (v_i ≤ c) or ω
//     (unbounded). An ideal with caps B on the coordinates outside S and ω
//     exactly on S is the downward closure of the paper's basis element
//     (B, S); the paper's exact-form base {B' + ℕ^S : B' ≤ B off S} is
//     recovered by enumerating the finite coordinates, which is how the
//     (k+2)^n count in Lemma 3.2 arises.
//
// Complementation maps between the two representations exactly, giving the
// duality used to compute stable sets: SC_b is the complement of the
// upward-closed set of configurations that can cover a ¬b state.
package ideal

import (
	"fmt"
	"strings"

	"repro/internal/multiset"
)

// Omega is the cap value denoting an unbounded (ω) coordinate of an Ideal.
const Omega = int64(-1)

// UpSet is an upward-closed subset of ℕ^d represented by its minimal
// elements.
type UpSet struct {
	d   int
	min []multiset.Vec
}

// NewUpSet returns the upward closure of the given generators (all of
// dimension d; the empty generator list gives the empty set).
func NewUpSet(d int, gens ...multiset.Vec) *UpSet {
	u := &UpSet{d: d}
	u.Add(gens...)
	return u
}

// Dim returns the dimension d.
func (u *UpSet) Dim() int { return u.d }

// IsEmpty reports whether the set is empty.
func (u *UpSet) IsEmpty() bool { return len(u.min) == 0 }

// Contains reports whether v belongs to the set.
func (u *UpSet) Contains(v multiset.Vec) bool {
	return multiset.DominatesAny(v, u.min)
}

// Add unions the upward closures of the generators into the set and reports
// whether the set strictly grew.
func (u *UpSet) Add(gens ...multiset.Vec) bool {
	grew := false
	for _, g := range gens {
		if g.Dim() != u.d {
			panic(fmt.Sprintf("ideal: generator dimension %d, want %d", g.Dim(), u.d))
		}
		if u.Contains(g) {
			continue
		}
		grew = true
		kept := u.min[:0]
		for _, m := range u.min {
			if !g.Le(m) {
				kept = append(kept, m)
			}
		}
		u.min = append(kept, g.Clone())
	}
	return grew
}

// MinBasis returns a copy of the antichain of minimal elements.
func (u *UpSet) MinBasis() []multiset.Vec {
	out := make([]multiset.Vec, len(u.min))
	for i, m := range u.min {
		out[i] = m.Clone()
	}
	return out
}

// Size returns the number of minimal elements.
func (u *UpSet) Size() int { return len(u.min) }

// Norm returns the maximal ‖m‖∞ over minimal elements (0 for the empty set).
func (u *UpSet) Norm() int64 {
	var n int64
	for _, m := range u.min {
		if k := m.NormInf(); k > n {
			n = k
		}
	}
	return n
}

// Clone returns a deep copy.
func (u *UpSet) Clone() *UpSet {
	return NewUpSet(u.d, u.min...)
}

// Union returns the union of u and v.
func (u *UpSet) Union(v *UpSet) *UpSet {
	out := u.Clone()
	out.Add(v.min...)
	return out
}

// Intersect returns the intersection of u and v: its minimal elements are
// the minimized pairwise componentwise maxima of the two bases.
func (u *UpSet) Intersect(v *UpSet) *UpSet {
	if u.d != v.d {
		panic(fmt.Sprintf("ideal: dimension mismatch %d vs %d", u.d, v.d))
	}
	var gens []multiset.Vec
	for _, a := range u.min {
		for _, b := range v.min {
			gens = append(gens, a.Max(b))
		}
	}
	return NewUpSet(u.d, multiset.Minimal(gens)...)
}

// Equal reports whether u and v denote the same set (antichain equality).
func (u *UpSet) Equal(v *UpSet) bool {
	if u.d != v.d || len(u.min) != len(v.min) {
		return false
	}
	for _, m := range u.min {
		if !v.Contains(m) {
			return false
		}
	}
	for _, m := range v.min {
		if !u.Contains(m) {
			return false
		}
	}
	return true
}

// String renders the minimal basis.
func (u *UpSet) String() string {
	parts := make([]string, len(u.min))
	for i, m := range u.min {
		parts[i] = m.String()
	}
	return "↑{" + strings.Join(parts, ", ") + "}"
}
