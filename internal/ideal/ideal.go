// Package ideal implements upward-closed and downward-closed subsets of ℕ^d
// with finite symbolic representations, the order-theoretic backbone of
// Section 3 of the paper:
//
//   - an upward-closed set is represented by its finite antichain of minimal
//     elements (well-defined by Dickson's lemma);
//   - a downward-closed set is represented as a finite union of ideals; an
//     Ideal fixes for each coordinate either a finite cap c (v_i ≤ c) or ω
//     (unbounded). An ideal with caps B on the coordinates outside S and ω
//     exactly on S is the downward closure of the paper's basis element
//     (B, S); the paper's exact-form base {B' + ℕ^S : B' ≤ B off S} is
//     recovered by enumerating the finite coordinates, which is how the
//     (k+2)^n count in Lemma 3.2 arises.
//
// Complementation maps between the two representations exactly, giving the
// duality used to compute stable sets: SC_b is the complement of the
// upward-closed set of configurations that can cover a ¬b state.
//
// UpSet is the antichain workhorse of the backward-coverability fixpoint in
// internal/stable, so it is built for throughput: minimal elements live in
// one flat arena (antichain.go), exact duplicates are rejected through a
// raw-coordinate hash index, and domination scans are pruned by per-element
// signatures. The pre-arena implementation is retained verbatim as
// NaiveUpSet (naive.go) for differential tests and benchmarks.
package ideal

import (
	"fmt"
	"strings"

	"repro/internal/multiset"
)

// Omega is the cap value denoting an unbounded (ω) coordinate of an Ideal.
const Omega = int64(-1)

// UpSet is an upward-closed subset of ℕ^d represented by its minimal
// elements, stored in a flat arena (see antichain.go).
type UpSet struct {
	d      int
	arena  []int64 // append-only element storage: id i at [i*d : (i+1)*d]
	stored int     // elements ever stored (live + removed)
	ids    []int32 // current antichain, in insertion order
	sigs   []sig   // parallel to ids
	live   []bool  // per stored id: still a minimal element?
	index  acIndex
}

// NewUpSet returns the upward closure of the given generators (all of
// dimension d; the empty generator list gives the empty set).
func NewUpSet(d int, gens ...multiset.Vec) *UpSet {
	u := &UpSet{d: d}
	u.Add(gens...)
	return u
}

// RestoreUpSet rebuilds an UpSet verbatim from a stored minimal antichain
// — one previously obtained from MinBasis() — skipping the domination
// scans Insert pays: elements of an antichain are pairwise incomparable by
// construction, so the scans cannot reject or evict anything. Arena order
// is the input order, so a basis stored in canonical order restores to an
// UpSet indistinguishable from CanonicalUpSet's output. The caller vouches
// the input is an antichain; only dimensions are checked (a dominated or
// duplicate element would silently corrupt the set).
func RestoreUpSet(d int, basis []multiset.Vec) (*UpSet, error) {
	u := &UpSet{
		d:      d,
		arena:  make([]int64, 0, len(basis)*d),
		stored: len(basis),
		ids:    make([]int32, len(basis)),
		sigs:   make([]sig, len(basis)),
		live:   make([]bool, len(basis)),
	}
	for k, m := range basis {
		if m.Dim() != d {
			return nil, fmt.Errorf("ideal: restore element %d has dimension %d, want %d", k, m.Dim(), d)
		}
		u.arena = append(u.arena, m...)
		u.ids[k] = int32(k)
		u.live[k] = true
		h := hashWords(m)
		mask, norm := signatureOf(m)
		u.sigs[k] = sig{support: mask, norm: norm, hash: h}
		u.index.add(int32(k), h)
	}
	return u, nil
}

// Dim returns the dimension d.
func (u *UpSet) Dim() int { return u.d }

// IsEmpty reports whether the set is empty.
func (u *UpSet) IsEmpty() bool { return len(u.ids) == 0 }

// storedAt returns stored element id as a raw view into the arena. Valid
// for removed elements too: the arena is append-only.
func (u *UpSet) storedAt(id int32) []int64 {
	o := int(id) * u.d
	return u.arena[o : o+u.d : o+u.d]
}

// At returns a read-only view of stored element id (as returned by
// Insert). The view stays valid and unchanged for the lifetime of the set,
// even after the element is removed from the antichain; callers must not
// modify it.
func (u *UpSet) At(id int) multiset.Vec { return multiset.Vec(u.storedAt(int32(id))) }

// Alive reports whether stored element id is still a minimal element of
// the set.
func (u *UpSet) Alive(id int) bool { return u.live[id] }

// Stored returns the number of elements ever stored in the arena, alive or
// not: valid ids are exactly [0, Stored()). Iterating Stored() ids and
// filtering by Alive enumerates the current antichain in arena order.
func (u *UpSet) Stored() int { return u.stored }

// Contains reports whether v belongs to the set.
func (u *UpSet) Contains(v multiset.Vec) bool {
	if len(v) != u.d {
		return false
	}
	vmask, vnorm := signatureOf(v)
	return u.dominatedSig(v, vmask, vnorm)
}

// dominatedSig reports whether some minimal element is ≤ v, pruning by
// signature before touching coordinates.
func (u *UpSet) dominatedSig(v []int64, vmask uint64, vnorm int64) bool {
	for k, id := range u.ids {
		s := &u.sigs[k]
		if s.support&^vmask != 0 || s.norm > vnorm {
			continue
		}
		if leWords(u.storedAt(id), v) {
			return true
		}
	}
	return false
}

// Insert unions the upward closure of one generator into the set. It
// returns the generator's storage id (usable with At and Alive) and
// whether the set strictly grew; id is -1 when it did not.
func (u *UpSet) Insert(g multiset.Vec) (id int, grew bool) {
	if g.Dim() != u.d {
		panic(fmt.Sprintf("ideal: generator dimension %d, want %d", g.Dim(), u.d))
	}
	h := hashWords(g)
	// Exact duplicate: either still minimal, or removed by a dominator —
	// in both cases the set cannot grow.
	if u.index.lookup(u, g, h) {
		return -1, false
	}
	gmask, gnorm := signatureOf(g)
	if u.dominatedSig(g, gmask, gnorm) {
		return -1, false
	}
	// Drop elements dominated by g. g ≤ m needs support(g) ⊆ support(m)
	// and norm(g) ≤ norm(m); both are one-word rejections.
	keptIDs := u.ids[:0]
	keptSigs := u.sigs[:0]
	for k, mid := range u.ids {
		s := u.sigs[k]
		if gmask&^s.support == 0 && gnorm <= s.norm && leWords(g, u.storedAt(mid)) {
			u.live[mid] = false
			continue
		}
		keptIDs = append(keptIDs, mid)
		keptSigs = append(keptSigs, s)
	}
	u.ids, u.sigs = keptIDs, keptSigs

	nid := int32(u.stored)
	u.arena = append(u.arena, g...)
	u.stored++
	u.live = append(u.live, true)
	u.index.add(nid, h)
	u.ids = append(u.ids, nid)
	u.sigs = append(u.sigs, sig{support: gmask, norm: gnorm, hash: h})
	return int(nid), true
}

// Add unions the upward closures of the generators into the set and reports
// whether the set strictly grew.
func (u *UpSet) Add(gens ...multiset.Vec) bool {
	grew := false
	for _, g := range gens {
		if _, ok := u.Insert(g); ok {
			grew = true
		}
	}
	return grew
}

// MinBasis returns a copy of the antichain of minimal elements, in
// insertion order.
func (u *UpSet) MinBasis() []multiset.Vec {
	out := make([]multiset.Vec, len(u.ids))
	for k, id := range u.ids {
		out[k] = multiset.Vec(u.storedAt(id)).Clone()
	}
	return out
}

// Size returns the number of minimal elements.
func (u *UpSet) Size() int { return len(u.ids) }

// Norm returns the maximal ‖m‖∞ over minimal elements (0 for the empty
// set).
func (u *UpSet) Norm() int64 {
	var n int64
	for k := range u.sigs {
		if u.sigs[k].norm > n {
			n = u.sigs[k].norm
		}
	}
	return n
}

// Clone returns a deep copy. The antichain is already minimal, so the copy
// is a flat arena compaction — no re-minimization through Add (the naive
// core's O(n²) Clone) and no rehashing (signatures cache the hashes).
func (u *UpSet) Clone() *UpSet {
	n := len(u.ids)
	out := &UpSet{
		d:      u.d,
		arena:  make([]int64, 0, n*u.d),
		stored: n,
		ids:    make([]int32, n),
		sigs:   make([]sig, n),
		live:   make([]bool, n),
	}
	copy(out.sigs, u.sigs)
	for k, id := range u.ids {
		out.arena = append(out.arena, u.storedAt(id)...)
		out.ids[k] = int32(k)
		out.live[k] = true
		out.index.add(int32(k), u.sigs[k].hash)
	}
	return out
}

// Union returns the union of u and v. u's antichain is copied directly
// (Clone); only v's elements go through domination checks.
func (u *UpSet) Union(v *UpSet) *UpSet {
	out := u.Clone()
	for _, id := range v.ids {
		out.Insert(multiset.Vec(v.storedAt(id)))
	}
	return out
}

// Intersect returns the intersection of u and v: its minimal elements are
// the minimized pairwise componentwise maxima of the two bases.
func (u *UpSet) Intersect(v *UpSet) *UpSet {
	if u.d != v.d {
		panic(fmt.Sprintf("ideal: dimension mismatch %d vs %d", u.d, v.d))
	}
	var gens []multiset.Vec
	for _, a := range u.ids {
		av := multiset.Vec(u.storedAt(a))
		for _, b := range v.ids {
			gens = append(gens, av.Max(multiset.Vec(v.storedAt(b))))
		}
	}
	return NewUpSet(u.d, multiset.Minimal(gens)...)
}

// Equal reports whether u and v denote the same set (antichain equality).
func (u *UpSet) Equal(v *UpSet) bool {
	if u.d != v.d || len(u.ids) != len(v.ids) {
		return false
	}
	for _, id := range u.ids {
		if !v.Contains(multiset.Vec(u.storedAt(id))) {
			return false
		}
	}
	for _, id := range v.ids {
		if !u.Contains(multiset.Vec(v.storedAt(id))) {
			return false
		}
	}
	return true
}

// String renders the minimal basis.
func (u *UpSet) String() string {
	parts := make([]string, len(u.ids))
	for k, id := range u.ids {
		parts[k] = multiset.Vec(u.storedAt(id)).String()
	}
	return "↑{" + strings.Join(parts, ", ") + "}"
}
