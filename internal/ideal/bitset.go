package ideal

import "math/bits"

// Bits is a coordinate set over {0, …, d−1} packed into uint64 words: the
// paper's S component of a basis element (B, S), stored so that membership
// tests on the stable-set hot paths (BasisElement.Contains, ideal lookup
// during decomposition) are a shift and a mask instead of a map probe.
// The zero value is the empty set of capacity 0; NewBits sizes the words
// for a dimension.
type Bits []uint64

// NewBits returns an empty set with capacity for coordinates 0 … d−1.
func NewBits(d int) Bits {
	return make(Bits, (d+63)/64)
}

// Test reports whether coordinate i is in the set. Out-of-capacity
// coordinates are absent.
func (b Bits) Test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Set inserts coordinate i (which must be within capacity).
func (b Bits) Set(i int) {
	b[i>>6] |= 1 << (uint(i) & 63)
}

// Count returns |S|.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the coordinates of the set in increasing order.
func (b Bits) Members() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b {
		for w != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Equal reports whether two sets have the same members (capacities may
// differ; trailing zero words are insignificant).
func (b Bits) Equal(c Bits) bool {
	long, short := b, c
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ToMap converts to the map representation used by the pump certificate
// JSON format.
func (b Bits) ToMap() map[int]bool {
	m := make(map[int]bool, b.Count())
	for _, i := range b.Members() {
		m[i] = true
	}
	return m
}

// BitsFromMap builds a set of capacity d from a map representation; keys
// outside [0, d) are ignored.
func BitsFromMap(d int, m map[int]bool) Bits {
	b := NewBits(d)
	for i, ok := range m {
		if ok && i >= 0 && i < d {
			b.Set(i)
		}
	}
	return b
}
