package ideal

import (
	"testing"

	"repro/internal/multiset"
)

// FuzzAntichain drives the arena-backed antichain against a brute-force
// map-based oracle (the style of internal/reach's FuzzNodeIndex): the
// oracle keeps every generator ever added in a map keyed by the
// serialization format, answers Contains by scanning for a dominator, and
// derives the minimal basis by pairwise comparison. Every Add growth
// report, every Contains probe, and the final minimal basis must agree.
func FuzzAntichain(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3}, uint8(4))
	f.Add([]byte{5, 0, 0, 5, 1, 1, 2, 2, 3, 3}, uint8(2))
	f.Add([]byte{7, 7, 7, 0, 0, 0}, uint8(3))
	f.Add([]byte{1}, uint8(1))
	f.Add([]byte{}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, dimRaw uint8) {
		dim := int(dimRaw%5) + 1
		u := NewUpSet(dim)
		oracle := make(map[string]multiset.Vec)
		oracleContains := func(v multiset.Vec) bool {
			for _, g := range oracle {
				if g.Le(v) {
					return true
				}
			}
			return false
		}
		for off := 0; off+dim <= len(data); off += dim {
			v := make(multiset.Vec, dim)
			for i := 0; i < dim; i++ {
				v[i] = int64(data[off+i] % 8)
			}
			if got, want := u.Contains(v), oracleContains(v); got != want {
				t.Fatalf("Contains(%v) = %t, oracle %t", v, got, want)
			}
			grew := u.Add(v)
			if want := !oracleContains(v); grew != want {
				t.Fatalf("Add(%v) grew = %t, oracle %t", v, grew, want)
			}
			oracle[v.Key()] = v
		}
		// Oracle minimal basis: generators not strictly dominated by a
		// distinct generator (equal generators share one map key).
		var minimal []multiset.Vec
		for _, g := range oracle {
			dominated := false
			for _, h := range oracle {
				if !h.Equal(g) && h.Le(g) {
					dominated = true
					break
				}
			}
			if !dominated {
				minimal = append(minimal, g)
			}
		}
		if u.Size() != len(minimal) {
			t.Fatalf("Size = %d, oracle %d", u.Size(), len(minimal))
		}
		if !equalKeyLists(sortedKeys(u.MinBasis()), sortedKeys(minimal)) {
			t.Fatalf("minimal basis %v, oracle %v", u.MinBasis(), minimal)
		}
		// Every oracle-minimal element must be contained; bumping any
		// single coordinate must stay contained (upward closure).
		for _, g := range minimal {
			if !u.Contains(g) {
				t.Fatalf("minimal element %v not contained", g)
			}
			w := g.Clone()
			for i := range w {
				w[i]++
				if !u.Contains(w) {
					t.Fatalf("upward closure violated at %v", w)
				}
				w[i]--
			}
		}
	})
}
