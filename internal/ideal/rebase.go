package ideal

import (
	"fmt"
	"sort"

	"repro/internal/multiset"
)

// This file is the antichain rebase/import layer of the incremental
// family-parametric analysis: adjacent members of a protocol family
// (flock:6 and flock:7, binary:103 and binary:104) share most of their
// backward-coverability bases, but live in different dimensions with
// permuted coordinates. RebaseBasis transports a basis through an explicit
// coordinate mapping, and SortBasis / CanonicalUpSet fix one canonical
// element order so that warm-started and from-scratch fixpoints are not
// just set-equal but byte-identical in every durable encoding.

// RebaseBasis transports basis elements from an old coordinate space into a
// new one of dimension newDim through mapping: mapping[i] is the new index
// of old coordinate i, or -1 when the coordinate has no counterpart. An
// element with a positive count on an unmapped coordinate is dropped (its
// agents have nowhere to go); the survivors are re-minimized, because a
// mapping that merges or drops coordinates can introduce dominations the
// old antichain did not have. The result is the minimal basis of the
// transported set, in input order of first survivors.
func RebaseBasis(basis []multiset.Vec, mapping []int, newDim int) []multiset.Vec {
	rebased := make([]multiset.Vec, 0, len(basis))
	for _, m := range basis {
		if len(m) != len(mapping) {
			panic(fmt.Sprintf("ideal: rebase element dimension %d, mapping has %d", len(m), len(mapping)))
		}
		out := make(multiset.Vec, newDim)
		ok := true
		for i, v := range m {
			if v == 0 {
				continue
			}
			j := mapping[i]
			if j < 0 || j >= newDim {
				ok = false
				break
			}
			out[j] += v
		}
		if ok {
			rebased = append(rebased, out)
		}
	}
	return multiset.Minimal(rebased)
}

// Less is the canonical total order on equal-dimension vectors:
// lexicographic on coordinates. It is the order SortBasis and
// CanonicalUpSet normalize to.
func Less(a, b multiset.Vec) bool {
	for i, x := range a {
		if x != b[i] {
			return x < b[i]
		}
	}
	return false
}

// SortBasis sorts a basis in place into the canonical (lexicographic)
// element order and returns it.
func SortBasis(basis []multiset.Vec) []multiset.Vec {
	sort.Slice(basis, func(i, j int) bool { return Less(basis[i], basis[j]) })
	return basis
}

// CanonicalUpSet rebuilds an UpSet with its antichain in canonical order:
// the same set, with arena ids assigned in SortBasis order. Two UpSets
// denoting the same set have identical MinBasis slices after
// canonicalization, whatever insertion histories produced them — this is
// what lets a warm-started fixpoint emit artifacts byte-identical to a
// from-scratch one.
func CanonicalUpSet(u *UpSet) *UpSet {
	basis := SortBasis(u.MinBasis())
	out := &UpSet{d: u.d}
	for _, m := range basis {
		// The input is an antichain, so every insert extends the arena and
		// none evicts: arena order == canonical order.
		out.Insert(m)
	}
	return out
}
