package ideal

// This file retains the pre-arena antichain implementation verbatim — one
// freshly allocated multiset.Vec per minimal element, O(n·d) linear
// domination scans in Add/Contains, Clone re-minimizing through Add — as a
// differential-testing reference and as the "before" side of the
// BenchmarkStableAnalyze* comparisons (the same role naive_test.go plays in
// internal/reach and reference_test.go in internal/sim). NaiveComplementUp
// is the matching seed complementation, reading the naive element slice
// directly. Production code must use UpSet; nothing outside tests and
// benchmarks should construct a NaiveUpSet.

import (
	"fmt"
	"strings"

	"repro/internal/multiset"
)

// NaiveUpSet is the retained reference implementation of an upward-closed
// subset of ℕ^d represented by its minimal elements.
type NaiveUpSet struct {
	d   int
	min []multiset.Vec
}

// NewNaiveUpSet returns the upward closure of the given generators (all of
// dimension d; the empty generator list gives the empty set).
func NewNaiveUpSet(d int, gens ...multiset.Vec) *NaiveUpSet {
	u := &NaiveUpSet{d: d}
	u.Add(gens...)
	return u
}

// Dim returns the dimension d.
func (u *NaiveUpSet) Dim() int { return u.d }

// IsEmpty reports whether the set is empty.
func (u *NaiveUpSet) IsEmpty() bool { return len(u.min) == 0 }

// Contains reports whether v belongs to the set.
func (u *NaiveUpSet) Contains(v multiset.Vec) bool {
	return multiset.DominatesAny(v, u.min)
}

// Add unions the upward closures of the generators into the set and reports
// whether the set strictly grew.
func (u *NaiveUpSet) Add(gens ...multiset.Vec) bool {
	grew := false
	for _, g := range gens {
		if g.Dim() != u.d {
			panic(fmt.Sprintf("ideal: generator dimension %d, want %d", g.Dim(), u.d))
		}
		if u.Contains(g) {
			continue
		}
		grew = true
		kept := u.min[:0]
		for _, m := range u.min {
			if !g.Le(m) {
				kept = append(kept, m)
			}
		}
		u.min = append(kept, g.Clone())
	}
	return grew
}

// MinBasis returns a copy of the antichain of minimal elements.
func (u *NaiveUpSet) MinBasis() []multiset.Vec {
	out := make([]multiset.Vec, len(u.min))
	for i, m := range u.min {
		out[i] = m.Clone()
	}
	return out
}

// Size returns the number of minimal elements.
func (u *NaiveUpSet) Size() int { return len(u.min) }

// Norm returns the maximal ‖m‖∞ over minimal elements (0 for the empty set).
func (u *NaiveUpSet) Norm() int64 {
	var n int64
	for _, m := range u.min {
		if k := m.NormInf(); k > n {
			n = k
		}
	}
	return n
}

// Clone returns a deep copy (re-minimizing through Add, as the seed did).
func (u *NaiveUpSet) Clone() *NaiveUpSet {
	return NewNaiveUpSet(u.d, u.min...)
}

// String renders the minimal basis.
func (u *NaiveUpSet) String() string {
	parts := make([]string, len(u.min))
	for i, m := range u.min {
		parts[i] = m.String()
	}
	return "↑{" + strings.Join(parts, ", ") + "}"
}

// NaiveComplementUp is the retained seed complementation: the
// downward-closed complement of a naive upward-closed set, expanded into an
// irredundant union of ideals exactly as ComplementUp does for the arena
// core.
func NaiveComplementUp(u *NaiveUpSet) *DownSet {
	ds := NewDownSet(u.Dim(), FullIdeal(u.Dim()))
	for _, m := range u.min {
		next := NewDownSet(u.Dim())
		for _, id := range ds.ideals {
			for i := 0; i < u.Dim(); i++ {
				if m[i] <= 0 {
					continue
				}
				if id.caps[i] != Omega && id.caps[i] <= m[i]-1 {
					// Already below the required cap: the ideal avoids ↑m.
					next.Add(id)
					break
				}
				clone := NewIdeal(id.caps)
				clone.caps[i] = m[i] - 1
				next.Add(clone)
			}
			// A minimal element m = 0 makes ↑m = ℕ^d: complement empty,
			// nothing survives.
		}
		ds = next
	}
	return ds
}
