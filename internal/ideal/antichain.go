package ideal

// This file implements the storage layer of the antichain core behind
// UpSet: minimal elements live back to back in one flat []int64 arena
// (dimension-strided views, append-only, so views handed out never
// dangle), an open-addressing index over the raw coordinates (shared
// wordhash hasher) rejects exact duplicates in O(1) without materializing
// string keys, and a per-element signature — folded support bitmask plus
// positive ∞-norm — prunes domination scans before any coordinate is
// touched. The companion naive.go retains the pre-arena implementation
// verbatim for differential tests and benchmarks.

import "repro/internal/wordhash"

// sig is the domination-pruning signature of a minimal element m ∈ ℕ^d:
//
//   - support: bit (i mod 64) is set iff m(i) > 0. m ≤ v forces every
//     positive coordinate of m to be positive in v, so
//     support(m) &^ support(v) ≠ 0 refutes m ≤ v without touching the
//     arena (folding at 64 keeps the test one word for any d).
//   - norm: max over positive coordinates (‖m‖∞ on ℕ^d). m ≤ v forces
//     norm(m) ≤ norm(v), the second one-word refutation.
//   - hash: the element's raw-coordinate hash, cached so Clone and index
//     growth never rehash.
type sig struct {
	support uint64
	norm    int64
	hash    uint64
}

// signatureOf computes the support mask and positive ∞-norm of v.
func signatureOf(v []int64) (support uint64, norm int64) {
	for i, x := range v {
		if x > 0 {
			support |= 1 << (uint(i) & 63)
			if x > norm {
				norm = x
			}
		}
	}
	return support, norm
}

// leWords reports a ≤ b componentwise for equal-length raw slices. The
// scan is unrolled 4-wide: domination checks are the inner loop of every
// Insert and Contains, and the bounds-check-free quad with a single OR'd
// early exit keeps the comparator ahead of the word-at-a-time loop
// (leWordsRef, pinned by BenchmarkLeWords) on the basis dimensions the
// fixpoints actually run at.
func leWords(a, b []int64) bool {
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aq := a[i : i+4 : i+4]
		bq := b[i : i+4 : i+4]
		if aq[0] > bq[0] || aq[1] > bq[1] || aq[2] > bq[2] || aq[3] > bq[3] {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// leWordsRef is the retained word-at-a-time comparator — the before side of
// BenchmarkLeWords and the oracle of the unrolled scan's equivalence tests.
func leWordsRef(a, b []int64) bool {
	for i, x := range a {
		if x > b[i] {
			return false
		}
	}
	return true
}

// acIndex is the exact-duplicate index: open addressing with linear
// probing over stored element ids, keyed by the raw-coordinate hash. Ids
// of elements later removed from the antichain stay in the table — a stale
// hit is still a correct "do not add" answer, because a removed element is
// dominated by whatever removed it, so the set cannot grow by re-adding
// it.
type acIndex struct {
	slots  []int32 // element id + 1; 0 = empty
	hashes []uint64
	used   int
}

// lookup reports whether an element with coordinates c (hash h) is stored.
func (ix *acIndex) lookup(u *UpSet, c []int64, h uint64) bool {
	if len(ix.slots) == 0 {
		return false
	}
	mask := uint64(len(ix.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		id := ix.slots[i]
		if id == 0 {
			return false
		}
		if ix.hashes[i] == h && eqWords(u.storedAt(id-1), c) {
			return true
		}
	}
}

// add records stored element id under hash h. The element must not be in
// the index.
func (ix *acIndex) add(id int32, h uint64) {
	if (ix.used+1)*4 > len(ix.slots)*3 {
		ix.grow()
	}
	ix.insert(id, h)
}

func (ix *acIndex) insert(id int32, h uint64) {
	mask := uint64(len(ix.slots) - 1)
	i := h & mask
	for ix.slots[i] != 0 {
		i = (i + 1) & mask
	}
	ix.slots[i] = id + 1
	ix.hashes[i] = h
	ix.used++
}

// grow doubles the table (min 64 slots) and reinserts from the cached
// hashes; the arena is not consulted.
func (ix *acIndex) grow() {
	newCap := 64
	if len(ix.slots) > 0 {
		newCap = len(ix.slots) * 2
	}
	oldSlots, oldHashes := ix.slots, ix.hashes
	ix.slots = make([]int32, newCap)
	ix.hashes = make([]uint64, newCap)
	ix.used = 0
	for i, id := range oldSlots {
		if id != 0 {
			ix.insert(id-1, oldHashes[i])
		}
	}
}

// eqWords reports a == b componentwise, unrolled 4-wide like leWords (it
// sits on the duplicate-index probe path of every Insert).
func eqWords(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aq := a[i : i+4 : i+4]
		bq := b[i : i+4 : i+4]
		if aq[0] != bq[0] || aq[1] != bq[1] || aq[2] != bq[2] || aq[3] != bq[3] {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eqWordsRef is the retained word-at-a-time equality scan, kept as the
// oracle and before side of the unrolled comparator's tests and benchmark.
func eqWordsRef(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// hashWords hashes the coordinates of an element with the shared
// raw-coordinate hasher (FNV-1a + avalanche; see wordhash).
func hashWords(w []int64) uint64 { return wordhash.Sum(w) }
