package ideal

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/multiset"
)

// sortedKeys renders an antichain as a canonically sorted key list, the
// element-for-element comparison format of the differential tests.
func sortedKeys(basis []multiset.Vec) []string {
	keys := make([]string, len(basis))
	for i, m := range basis {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func equalKeyLists(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialUpSetVsNaive drives the arena-backed antichain and the
// retained naive core through identical generator streams: every Add must
// report the same growth, every Contains probe must agree, and the minimal
// bases must be equal element for element (after canonical sorting — both
// cores keep insertion order, but removals make the orders diverge).
func TestDifferentialUpSetVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(6)
		u := NewUpSet(d)
		n := NewNaiveUpSet(d)
		g := multiset.New(d)
		for op := 0; op < 300; op++ {
			for i := range g {
				g[i] = int64(rng.Intn(5))
			}
			if rng.Intn(3) == 0 {
				if got, want := u.Contains(g), n.Contains(g); got != want {
					t.Fatalf("trial %d op %d: Contains(%v) = %t, naive %t", trial, op, g, got, want)
				}
				continue
			}
			grewU := u.Add(g.Clone())
			grewN := n.Add(g.Clone())
			if grewU != grewN {
				t.Fatalf("trial %d op %d: Add(%v) grew = %t, naive %t", trial, op, g, grewU, grewN)
			}
			if u.Size() != n.Size() {
				t.Fatalf("trial %d op %d: size %d, naive %d", trial, op, u.Size(), n.Size())
			}
		}
		if u.Norm() != n.Norm() {
			t.Fatalf("trial %d: norm %d, naive %d", trial, u.Norm(), n.Norm())
		}
		if !equalKeyLists(sortedKeys(u.MinBasis()), sortedKeys(n.MinBasis())) {
			t.Fatalf("trial %d: bases differ:\n  arena %v\n  naive %v", trial, u.MinBasis(), n.MinBasis())
		}
		// Clone and Union must preserve the antichain exactly.
		c := u.Clone()
		if !equalKeyLists(sortedKeys(c.MinBasis()), sortedKeys(u.MinBasis())) || !c.Equal(u) {
			t.Fatalf("trial %d: clone differs", trial)
		}
		other := randomUpSet(rng, d)
		un := u.Union(other)
		nn := NewNaiveUpSet(d, n.MinBasis()...)
		nn.Add(other.MinBasis()...)
		if !equalKeyLists(sortedKeys(un.MinBasis()), sortedKeys(nn.MinBasis())) {
			t.Fatalf("trial %d: union differs", trial)
		}
		// The complements must agree too (ComplementUp reads the arena,
		// NaiveComplementUp the naive slice).
		cd := ComplementUp(u)
		nd := NaiveComplementUp(n)
		probe := multiset.New(d)
		for p := 0; p < 200; p++ {
			for i := range probe {
				probe[i] = int64(rng.Intn(6))
			}
			if cd.Contains(probe) != nd.Contains(probe) {
				t.Fatalf("trial %d: complement membership differs at %v", trial, probe)
			}
		}
	}
}

// TestInsertAliveAt pins the storage contract the stable fixpoint's
// frontier relies on: Insert returns a stable id, At views never change,
// and Alive flips exactly when a dominator removes the element.
func TestInsertAliveAt(t *testing.T) {
	u := NewUpSet(2)
	id1, grew := u.Insert(multiset.Vec{3, 1})
	if !grew || id1 < 0 {
		t.Fatalf("Insert = %d,%t", id1, grew)
	}
	if !u.Alive(id1) || !u.At(id1).Equal(multiset.Vec{3, 1}) {
		t.Fatal("fresh element must be alive and readable")
	}
	// A duplicate must not grow and must not return a new id.
	if id, grew := u.Insert(multiset.Vec{3, 1}); grew || id != -1 {
		t.Fatalf("duplicate Insert = %d,%t", id, grew)
	}
	// A dominator removes id1 but its view stays valid.
	id2, grew := u.Insert(multiset.Vec{1, 0})
	if !grew {
		t.Fatal("dominator must grow the set")
	}
	if u.Alive(id1) {
		t.Fatal("dominated element must not stay alive")
	}
	if !u.At(id1).Equal(multiset.Vec{3, 1}) {
		t.Fatal("views of removed elements must stay valid")
	}
	if !u.Alive(id2) || u.Size() != 1 {
		t.Fatalf("size = %d, want 1", u.Size())
	}
	// Re-adding the removed (still dominated) element must not grow.
	if _, grew := u.Insert(multiset.Vec{3, 1}); grew {
		t.Fatal("stale index hit must reject the re-add")
	}
}

func TestBits(t *testing.T) {
	b := NewBits(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
	want := []int{0, 63, 64, 129}
	got := b.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v", got)
		}
	}
	m := b.ToMap()
	if len(m) != 4 || !m[63] || m[1] {
		t.Fatalf("ToMap = %v", m)
	}
	if !BitsFromMap(130, m).Equal(b) {
		t.Fatal("FromMap(ToMap) must round-trip")
	}
	// Equal ignores capacity differences.
	c := NewBits(64)
	c.Set(0)
	c.Set(63)
	d := NewBits(200)
	d.Set(0)
	d.Set(63)
	if !c.Equal(d) || !d.Equal(c) {
		t.Fatal("Equal must ignore trailing zero words")
	}
	d.Set(190)
	if c.Equal(d) || d.Equal(c) {
		t.Fatal("differing sets must not be Equal")
	}
}
