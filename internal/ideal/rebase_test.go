package ideal

import (
	"reflect"
	"testing"

	"repro/internal/multiset"
)

func TestRebaseBasisKnown(t *testing.T) {
	basis := []multiset.Vec{
		{2, 0, 1},
		{0, 3, 0},
		{1, 1, 1},
	}
	// Coordinate 2 is dropped; 0 and 1 swap.
	got := RebaseBasis(basis, []int{1, 0, -1}, 2)
	// {2,0,1} and {1,1,1} touch the dropped coordinate → gone. {0,3,0}
	// becomes {3,0}.
	want := []multiset.Vec{{3, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RebaseBasis = %v, want %v", got, want)
	}
}

func TestRebaseBasisMergeReminimizes(t *testing.T) {
	basis := []multiset.Vec{
		{1, 2}, // incomparable with {2, 1} ...
		{2, 1},
	}
	// ... until both coordinates merge into one: 3 and 3, equal → one
	// survivor.
	got := RebaseBasis(basis, []int{0, 0}, 1)
	want := []multiset.Vec{{3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RebaseBasis merge = %v, want %v", got, want)
	}
}

// rebaseOracle is the naive transport: per element, move counts through the
// mapping (drop on unmapped positive coordinate), then minimize by pairwise
// domination scan. No arena, no dedup index, no signatures.
func rebaseOracle(basis []multiset.Vec, mapping []int, newDim int) []multiset.Vec {
	var moved []multiset.Vec
	for _, m := range basis {
		out := make(multiset.Vec, newDim)
		ok := true
		for i, v := range m {
			if v == 0 {
				continue
			}
			if j := mapping[i]; j >= 0 && j < newDim {
				out[j] += v
			} else {
				ok = false
				break
			}
		}
		if ok {
			moved = append(moved, out)
		}
	}
	var minimal []multiset.Vec
	for i, m := range moved {
		dominated := false
		for j, o := range moved {
			if i == j {
				continue
			}
			if o.Le(m) && !m.Le(o) {
				dominated = true
				break
			}
			// Equal elements: keep only the first occurrence.
			if o.Le(m) && m.Le(o) && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			minimal = append(minimal, m)
		}
	}
	return minimal
}

// FuzzRebaseBasis drives RebaseBasis against the naive oracle on
// byte-derived bases and mappings: the minimal transported sets must be
// identical (as canonically sorted sequences), and re-rebasing through the
// identity mapping must be a fixpoint.
func FuzzRebaseBasis(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{0, 1}, uint8(2), uint8(2))
	f.Add([]byte{0, 0, 7, 7}, []byte{1, 0}, uint8(2), uint8(2))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, []byte{0, 0, 1, 255}, uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, mapRaw []byte, dimRaw, newDimRaw uint8) {
		dim := int(dimRaw%5) + 1
		newDim := int(newDimRaw % 5) // 0 is legal: everything positive drops
		mapping := make([]int, dim)
		for i := range mapping {
			if i < len(mapRaw) {
				// Map into the new space, or -1 for "no counterpart".
				m := int(mapRaw[i] % uint8(newDim+2))
				if m > newDim {
					m = -1
				}
				mapping[i] = m
			} else {
				mapping[i] = -1
			}
		}
		var basis []multiset.Vec
		for off := 0; off+dim <= len(data); off += dim {
			v := make(multiset.Vec, dim)
			for i := 0; i < dim; i++ {
				v[i] = int64(data[off+i] % 6)
			}
			basis = append(basis, v)
		}

		got := SortBasis(RebaseBasis(basis, mapping, newDim))
		want := SortBasis(rebaseOracle(basis, mapping, newDim))
		if len(got) != len(want) {
			t.Fatalf("rebase size %d, oracle %d (mapping %v → dim %d)\n got %v\nwant %v",
				len(got), len(want), mapping, newDim, got, want)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("rebase[%d] = %v, oracle %v", i, got[i], want[i])
			}
		}

		// Identity transport of an already-minimal basis is a fixpoint.
		ident := make([]int, newDim)
		for i := range ident {
			ident[i] = i
		}
		again := SortBasis(RebaseBasis(got, ident, newDim))
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("identity rebase moved: %v → %v", got, again)
		}
	})
}
