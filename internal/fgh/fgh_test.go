package fgh

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/multiset"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestFastGrowingLowLevels(t *testing.T) {
	tests := []struct {
		k    int
		x    int64
		want int64
	}{
		{0, 0, 1}, {0, 7, 8},
		{1, 0, 1}, {1, 3, 7}, {1, 10, 21},
		{2, 0, 1}, {2, 1, 7}, {2, 2, 23}, {2, 3, 63}, {2, 4, 159},
		{3, 0, 1},
		// F_3(1) = F_2(F_2(1)) = F_2(7) = 8·2^8 − 1 = 2047.
		{3, 1, 2047},
	}
	for _, tc := range tests {
		got, err := FastGrowing(tc.k, bi(tc.x))
		if err != nil {
			t.Fatalf("F_%d(%d): %v", tc.k, tc.x, err)
		}
		if got.Cmp(bi(tc.want)) != 0 {
			t.Errorf("F_%d(%d) = %s, want %d", tc.k, tc.x, got, tc.want)
		}
	}
}

func TestFastGrowingRecurrence(t *testing.T) {
	// F_{k+1}(x) = F_k^{x+1}(x) checked explicitly for small values. The
	// ranges are chosen so both sides stay representable (F_3(2) already
	// needs ~4·10^8 bits).
	maxX := map[int]int64{0: 4, 1: 4, 2: 1}
	for k := 0; k <= 2; k++ {
		for x := int64(0); x <= maxX[k]; x++ {
			want := bi(x)
			for i := int64(0); i <= x; i++ {
				var err error
				want, err = FastGrowing(k, want)
				if err != nil {
					t.Fatalf("F_%d iterate: %v", k, err)
				}
			}
			got, err := FastGrowing(k+1, bi(x))
			if err != nil {
				t.Fatalf("F_%d(%d): %v", k+1, x, err)
			}
			if got.Cmp(want) != 0 {
				t.Errorf("F_%d(%d) = %s, want %s", k+1, x, got, want)
			}
		}
	}
}

func TestFastGrowingGuards(t *testing.T) {
	if _, err := FastGrowing(-1, bi(0)); err == nil {
		t.Error("negative level must error")
	}
	if _, err := FastGrowing(1, bi(-2)); err == nil {
		t.Error("negative argument must error")
	}
	// F_3(10) is a tower far beyond representation.
	if _, err := FastGrowing(3, bi(10)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("F_3(10) should be too large, got %v", err)
	}
	// F_4 of anything ≥ 2 blows up.
	if _, err := FastGrowing(4, bi(3)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("F_4(3) should be too large, got %v", err)
	}
}

func TestAckermannValues(t *testing.T) {
	tests := []struct {
		m, n, want int64
	}{
		{0, 0, 1}, {0, 5, 6},
		{1, 0, 2}, {1, 7, 9},
		{2, 0, 3}, {2, 4, 11},
		{3, 0, 5}, {3, 3, 61}, {3, 4, 125},
		{4, 0, 13},    // 2↑↑3 − 3 = 16 − 3
		{4, 1, 65533}, // 2↑↑4 − 3
	}
	for _, tc := range tests {
		got, err := Ackermann(tc.m, tc.n)
		if err != nil {
			t.Fatalf("A(%d,%d): %v", tc.m, tc.n, err)
		}
		if got.Cmp(bi(tc.want)) != 0 {
			t.Errorf("A(%d,%d) = %s, want %d", tc.m, tc.n, got, tc.want)
		}
	}
	// A(4,2) = 2^65536 − 3 is representable and has 65536 bits.
	a42, err := Ackermann(4, 2)
	if err != nil {
		t.Fatalf("A(4,2): %v", err)
	}
	if a42.BitLen() != 65536 {
		t.Errorf("A(4,2) has %d bits, want 65536", a42.BitLen())
	}
	// Recurrence spot check: A(m+1, n+1) = A(m, A(m+1, n)).
	for m := int64(0); m <= 2; m++ {
		for n := int64(0); n <= 3; n++ {
			inner, err := Ackermann(m+1, n)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Ackermann(m, inner.Int64())
			if err != nil {
				t.Fatal(err)
			}
			got, err := Ackermann(m+1, n+1)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Errorf("A(%d,%d) = %s violates recurrence (want %s)", m+1, n+1, got, want)
			}
		}
	}
}

func TestAckermannGuards(t *testing.T) {
	if _, err := Ackermann(-1, 0); err == nil {
		t.Error("negative m must error")
	}
	if _, err := Ackermann(4, 3); !errors.Is(err, ErrTooLarge) {
		t.Errorf("A(4,3) should be too large, got %v", err)
	}
	if _, err := Ackermann(5, 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("A(5,1) should be too large, got %v", err)
	}
	// A(5,0) = A(4,1) is fine.
	v, err := Ackermann(5, 0)
	if err != nil || v.Cmp(bi(65533)) != 0 {
		t.Errorf("A(5,0) = %v, %v; want 65533", v, err)
	}
}

func TestInverseAckermann(t *testing.T) {
	tests := []struct {
		n    int64
		want int64
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {61, 3}, {62, 4},
	}
	for _, tc := range tests {
		if got := InverseAckermann(bi(tc.n)); got != tc.want {
			t.Errorf("α(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// Anything of astronomical-but-representable size has α = 4, since
	// A(4,4) = 2↑↑7 − 3 dwarfs every representable integer.
	huge := new(big.Int).Lsh(bi(1), 1000000)
	if got := InverseAckermann(huge); got != 4 {
		t.Errorf("α(2^1000000) = %d, want 4", got)
	}
}

func TestLongestControlledBadDim1(t *testing.T) {
	// In dimension 1 the longest controlled bad sequence is δ, δ−1, ..., 0:
	// length δ+1.
	for delta := int64(0); delta <= 4; delta++ {
		seq, exact := LongestControlledBad(1, delta, 2_000_000)
		if !exact {
			t.Fatalf("δ=%d: search not exhaustive", delta)
		}
		if int64(len(seq)) != delta+1 {
			t.Errorf("δ=%d: length %d, want %d", delta, len(seq), delta+1)
		}
		if !IsControlledBad(seq, delta) {
			t.Errorf("δ=%d: witness invalid", delta)
		}
	}
}

func TestLongestControlledBadDim2(t *testing.T) {
	// Exact small values in dimension 2; primarily we verify the witness
	// and that length grows with δ.
	prev := 0
	for delta := int64(0); delta <= 2; delta++ {
		budget := 200_000
		if delta == 2 {
			budget = 1_200_000
		}
		seq, exact := LongestControlledBad(2, delta, budget)
		if !exact {
			t.Skipf("δ=%d: budget exhausted", delta)
		}
		if !IsControlledBad(seq, delta) {
			t.Fatalf("δ=%d: witness invalid: %v", delta, seq)
		}
		if len(seq) <= prev {
			t.Fatalf("length must grow with δ: %d then %d", prev, len(seq))
		}
		prev = len(seq)
	}
	// δ=0 in dim 2: v_0 = (0,0) dominates everything, so placing it ends
	// the sequence; the best start avoids it... but control forces
	// ‖v_0‖ ≤ 0, i.e. v_0 = 0. Length is exactly 1.
	seq, exact := LongestControlledBad(2, 0, 100000)
	if exact && len(seq) != 1 {
		t.Errorf("dim 2, δ=0: length %d, want 1", len(seq))
	}
}

func TestIsControlledBad(t *testing.T) {
	good := []multiset.Vec{{1, 0}, {0, 2}, {0, 1}, {0, 0}}
	if !IsControlledBad(good, 1) {
		t.Error("valid sequence rejected")
	}
	// Control violation: first element too large.
	if IsControlledBad([]multiset.Vec{{5, 0}}, 1) {
		t.Error("control violation accepted")
	}
	// Badness violation: ordered pair.
	if IsControlledBad([]multiset.Vec{{0, 1}, {0, 2}}, 5) {
		t.Error("good pair accepted as bad")
	}
	if !IsControlledBad(nil, 0) {
		t.Error("empty sequence is bad")
	}
}

func TestLongestControlledBadDegenerate(t *testing.T) {
	seq, exact := LongestControlledBad(0, 3, 1000)
	if !exact || seq != nil {
		t.Error("dimension 0 has no sequences")
	}
}
