// Package fgh implements the fragments of the Fast-Growing Hierarchy and
// Ackermann-function machinery that Section 4 of the paper builds on: the
// functions F_k at finite levels (on exact big integers, with guards against
// non-representable values), the Ackermann function and its inverse, and
// exact maximal lengths of controlled bad sequences — the combinatorial
// quantity behind Lemma 4.4 (Figueira et al. [19]).
//
// The paper's Theorem 4.5 bound F_{ℓ,ϑ(n)} lives at level F_ω; no value of
// such a function at a non-trivial argument is representable, which is
// precisely the paper's point (Section 4.1): the general bound is
// astronomically far from the leaderless triple-exponential bound. This
// package makes the low levels tangible and the growth gap measurable.
package fgh

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/multiset"
)

// ErrTooLarge is returned when a requested value would not be representable
// (more than ~16 million bits).
var ErrTooLarge = errors.New("fgh: value too large to represent")

// maxBits caps representable results.
const maxBits = 1 << 24

var one = big.NewInt(1)

// describe renders an integer compactly for error messages: huge arguments
// are summarised by bit length instead of printed in full.
func describe(x *big.Int) string {
	if x.BitLen() <= 64 {
		return x.String()
	}
	return fmt.Sprintf("<%d-bit number>", x.BitLen())
}

// FastGrowing returns F_k(x) of the Fast-Growing Hierarchy:
//
//	F_0(x)   = x + 1
//	F_{k+1}(x) = F_k^{x+1}(x)   (x+1–fold iteration)
//
// Closed forms are used for k ≤ 2 (F_1(x) = 2x+1, F_2(x) = (x+1)·2^(x+1) − 1);
// higher levels iterate explicitly and return ErrTooLarge when the result
// would exceed the representable range.
func FastGrowing(k int, x *big.Int) (*big.Int, error) {
	if k < 0 {
		return nil, fmt.Errorf("fgh: negative level %d", k)
	}
	if x.Sign() < 0 {
		return nil, fmt.Errorf("fgh: negative argument %s", x)
	}
	switch k {
	case 0:
		return new(big.Int).Add(x, one), nil
	case 1:
		// 2x + 1.
		out := new(big.Int).Lsh(x, 1)
		return out.Add(out, one), nil
	case 2:
		// (x+1)·2^(x+1) − 1.
		if !x.IsInt64() || x.Int64() > maxBits {
			return nil, fmt.Errorf("%w: F_2(%s)", ErrTooLarge, describe(x))
		}
		xp1 := new(big.Int).Add(x, one)
		out := new(big.Int).Lsh(xp1, uint(x.Int64()+1))
		return out.Sub(out, one), nil
	default:
		// F_k(x) = F_{k-1}^{x+1}(x).
		if !x.IsInt64() {
			return nil, fmt.Errorf("%w: F_%d(%s)", ErrTooLarge, k, describe(x))
		}
		n := x.Int64()
		cur := new(big.Int).Set(x)
		for i := int64(0); i <= n; i++ {
			next, err := FastGrowing(k-1, cur)
			if err != nil {
				return nil, err
			}
			if next.BitLen() > maxBits {
				return nil, fmt.Errorf("%w: F_%d(%s)", ErrTooLarge, k, x)
			}
			cur = next
		}
		return cur, nil
	}
}

// Ackermann returns the two-argument Ackermann function A(m,n) using the
// standard recursion A(0,n) = n+1, A(m+1,0) = A(m,1),
// A(m+1,n+1) = A(m, A(m+1,n)), via closed forms:
//
//	A(1,n) = n+2,  A(2,n) = 2n+3,  A(3,n) = 2^(n+3) − 3,
//	A(4,n) = 2↑↑(n+3) − 3.
//
// Values beyond the representable range return ErrTooLarge.
func Ackermann(m, n int64) (*big.Int, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("fgh: negative Ackermann argument (%d,%d)", m, n)
	}
	switch m {
	case 0:
		return big.NewInt(n + 1), nil
	case 1:
		return big.NewInt(n + 2), nil
	case 2:
		return big.NewInt(2*n + 3), nil
	case 3:
		if n+3 > 62 {
			// Still representable as big.Int for larger n, just not via
			// int64 shifts; handle up to maxBits.
			if n+3 > maxBits {
				return nil, fmt.Errorf("%w: A(3,%d)", ErrTooLarge, n)
			}
		}
		out := new(big.Int).Lsh(one, uint(n+3))
		return out.Sub(out, big.NewInt(3)), nil
	case 4:
		// 2↑↑(n+3) − 3: tower of height n+3.
		tower := big.NewInt(1)
		for i := int64(0); i < n+3; i++ {
			if !tower.IsInt64() || tower.Int64() > maxBits {
				return nil, fmt.Errorf("%w: A(4,%d)", ErrTooLarge, n)
			}
			tower = new(big.Int).Lsh(one, uint(tower.Int64()))
		}
		return tower.Sub(tower, big.NewInt(3)), nil
	default:
		if n == 0 {
			return Ackermann(m-1, 1)
		}
		return nil, fmt.Errorf("%w: A(%d,%d)", ErrTooLarge, m, n)
	}
}

// InverseAckermann returns α(n): the smallest k with A(k,k) ≥ n. For every
// input that fits in memory the answer is at most 4 — A(4,4) = 2↑↑7 − 3 has
// about 2^(2^65536) bits, far beyond any representable big.Int — which is
// the sense in which an Ω(α(η)) lower bound is "roughly speaking" constant
// and yet unbounded.
func InverseAckermann(n *big.Int) int64 {
	thresholds := []int64{1, 3, 7, 61} // A(0,0), A(1,1), A(2,2), A(3,3)
	for k, v := range thresholds {
		if n.Cmp(big.NewInt(v)) <= 0 {
			return int64(k)
		}
	}
	return 4
}

// LongestControlledBad searches for the longest bad sequence v_0, v_1, ...
// of vectors in ℕ^d under the control ‖v_i‖∞ ≤ i + delta: no earlier
// element may be ≤ a later one (Lemma 4.4's combinatorial core). It returns
// the longest sequence found and whether the search was exhaustive within
// the node budget (exact = true) — for small d and delta the returned
// length is the exact maximum.
func LongestControlledBad(d int, delta int64, budget int) (seq []multiset.Vec, exact bool) {
	if d <= 0 {
		return nil, true
	}
	var (
		best      []multiset.Vec
		cur       []multiset.Vec
		nodes     int
		exhausted = true
	)
	var rec func(step int64)
	rec = func(step int64) {
		if len(cur) > len(best) {
			best = append([]multiset.Vec(nil), cur...)
		}
		if nodes >= budget {
			exhausted = false
			return
		}
		bound := step + delta
		// Enumerate candidates v ∈ {0..bound}^d not dominating-forbidden:
		// v is allowed iff no earlier u ≤ v.
		v := multiset.New(d)
		var enum func(i int)
		enum = func(i int) {
			if nodes >= budget {
				exhausted = false
				return
			}
			if i == d {
				for _, u := range cur {
					if u.Le(v) {
						return
					}
				}
				nodes++
				cur = append(cur, v.Clone())
				rec(step + 1)
				cur = cur[:len(cur)-1]
				return
			}
			for x := int64(0); x <= bound; x++ {
				v[i] = x
				enum(i + 1)
			}
			v[i] = 0
		}
		enum(0)
	}
	rec(0)
	return best, exhausted
}

// IsControlledBad verifies that seq is a bad sequence obeying the control
// ‖v_i‖∞ ≤ i + delta.
func IsControlledBad(seq []multiset.Vec, delta int64) bool {
	for i, v := range seq {
		if v.NormInf() > int64(i)+delta {
			return false
		}
	}
	return multiset.IsBad(seq)
}
