// Package faultinject is the deterministic fault-injection harness behind
// the durability layer: named failpoints compiled into the journal, the
// artifact store and the cluster client answer "should this operation fail
// now?" according to an explicitly configured schedule.
//
// The harness is off by default and costs one atomic load per failpoint
// when disabled. It turns on in exactly two ways:
//
//   - the PP_FAULTS environment variable, read once at process start, so
//     real ppserve/ppsweep processes can run crash drills without a
//     recompile ("env-gated"); or
//   - Configure, called programmatically by tests.
//
// A schedule is a semicolon-separated list of failpoint clauses:
//
//	journal.append=at:3          fail exactly the 3rd call
//	store.read=after:2           fail every call after the 2nd
//	store.write=every:5          fail every 5th call
//	worker.response=prob:0.2:7   fail with probability 0.2, seed 7
//
// Schedules are deterministic: at/after/every count calls atomically, and
// prob draws from a per-failpoint SplitMix64 stream seeded by the clause,
// so the same schedule fails the same calls in every run. The failpoint
// catalog (the names wired into the codebase) is listed in Catalog and
// documented in docs/operations.md.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected failure wraps, so callers and
// tests can distinguish injected faults from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Failpoint names wired into the codebase — the catalog.
const (
	// PointJournalAppend fails sweep-journal record appends (the write).
	PointJournalAppend = "journal.append"
	// PointJournalSync fails the fsync following a journal append.
	PointJournalSync = "journal.sync"
	// PointStoreRead makes an artifact-store read behave as a corrupt
	// entry: the entry is deleted and the lookup misses.
	PointStoreRead = "store.read"
	// PointStoreWrite fails artifact-store writes.
	PointStoreWrite = "store.write"
	// PointStoreDelete fails the artifact-store GC's eviction deletes (the
	// entry stays on disk and stays tracked; the GC retries next pass).
	PointStoreDelete = "store.delete"
	// PointWorkerResponse fails the coordinator's handling of a worker's
	// sweep-range response (as if the stream broke mid-flight).
	PointWorkerResponse = "worker.response"
	// PointHeartbeat fails the worker agent's heartbeat call.
	PointHeartbeat = "cluster.heartbeat"
)

// Catalog lists every failpoint name the codebase hits.
var Catalog = []string{
	PointJournalAppend,
	PointJournalSync,
	PointStoreRead,
	PointStoreWrite,
	PointStoreDelete,
	PointWorkerResponse,
	PointHeartbeat,
}

type mode uint8

const (
	modeAt mode = iota + 1
	modeAfter
	modeEvery
	modeProb
)

// point is one configured failpoint schedule.
type point struct {
	mode  mode
	n     uint64  // at/after/every operand
	p     float64 // prob operand
	calls atomic.Uint64
	fired atomic.Uint64
	// rng is the per-point SplitMix64 state of prob schedules; advanced
	// under mu so concurrent hits draw a deterministic stream.
	mu  sync.Mutex
	rng uint64
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  map[string]*point
)

func init() {
	if spec := os.Getenv("PP_FAULTS"); spec != "" {
		if err := Configure(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring PP_FAULTS: %v\n", err)
		}
	}
}

// Configure replaces the active schedule. The empty string disables every
// failpoint. Unknown failpoint names and malformed clauses are rejected as
// a whole — a typo must not silently disarm a crash drill.
func Configure(spec string) error {
	next := make(map[string]*point)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, sched, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("faultinject: clause %q is not name=schedule", clause)
		}
		name = strings.TrimSpace(name)
		if !known(name) {
			return fmt.Errorf("faultinject: unknown failpoint %q (catalog: %s)", name, strings.Join(Catalog, ", "))
		}
		pt, err := parseSchedule(strings.TrimSpace(sched))
		if err != nil {
			return fmt.Errorf("faultinject: failpoint %q: %w", name, err)
		}
		next[name] = pt
	}
	mu.Lock()
	points = next
	mu.Unlock()
	enabled.Store(len(next) > 0)
	return nil
}

// Disable turns every failpoint off (tests' deferred cleanup).
func Disable() { _ = Configure("") }

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return enabled.Load() }

func known(name string) bool {
	for _, n := range Catalog {
		if n == name {
			return true
		}
	}
	return false
}

// parseSchedule parses "at:N", "after:N", "every:N" or "prob:P[:SEED]".
func parseSchedule(s string) (*point, error) {
	kind, rest, _ := strings.Cut(s, ":")
	switch kind {
	case "at", "after", "every":
		n, err := strconv.ParseUint(rest, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("schedule %q needs a positive count", s)
		}
		m := map[string]mode{"at": modeAt, "after": modeAfter, "every": modeEvery}[kind]
		return &point{mode: m, n: n}, nil
	case "prob":
		pStr, seedStr, hasSeed := strings.Cut(rest, ":")
		p, err := strconv.ParseFloat(pStr, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("schedule %q needs a probability in [0, 1]", s)
		}
		var seed uint64 = 1
		if hasSeed {
			if seed, err = strconv.ParseUint(seedStr, 10, 64); err != nil {
				return nil, fmt.Errorf("schedule %q: bad seed", s)
			}
		}
		return &point{mode: modeProb, p: p, rng: seed}, nil
	default:
		return nil, fmt.Errorf("schedule %q is not at:N, after:N, every:N or prob:P[:SEED]", s)
	}
}

// Hit consults the schedule of a failpoint. It returns nil when the
// failpoint is unarmed or the schedule does not fire on this call, and an
// ErrInjected-wrapping error when it does. The call counter advances on
// every armed call, firing or not, so schedules are positional.
func Hit(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	pt := points[name]
	mu.Unlock()
	if pt == nil {
		return nil
	}
	call := pt.calls.Add(1)
	fire := false
	switch pt.mode {
	case modeAt:
		fire = call == pt.n
	case modeAfter:
		fire = call > pt.n
	case modeEvery:
		fire = call%pt.n == 0
	case modeProb:
		pt.mu.Lock()
		// SplitMix64: deterministic per-point stream.
		pt.rng += 0x9e3779b97f4a7c15
		z := pt.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		pt.mu.Unlock()
		fire = float64(z>>11)/(1<<53) < pt.p
	}
	if !fire {
		return nil
	}
	pt.fired.Add(1)
	return fmt.Errorf("%w: %s (call %d)", ErrInjected, name, call)
}

// Counts reports how many times a failpoint was consulted and how many
// times it fired since the last Configure.
func Counts(name string) (calls, fired uint64) {
	mu.Lock()
	pt := points[name]
	mu.Unlock()
	if pt == nil {
		return 0, 0
	}
	return pt.calls.Load(), pt.fired.Load()
}
