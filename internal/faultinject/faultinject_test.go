package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("enabled with empty schedule")
	}
	if err := Hit(PointJournalAppend); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
}

func TestAtSchedule(t *testing.T) {
	if err := Configure(PointStoreWrite + "=at:3"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := Hit(PointStoreWrite)
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: want injected fault, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("call %d: want nil, got %v", i, err)
		}
	}
	if calls, fired := Counts(PointStoreWrite); calls != 5 || fired != 1 {
		t.Fatalf("Counts = %d, %d; want 5, 1", calls, fired)
	}
}

func TestAfterAndEverySchedules(t *testing.T) {
	if err := Configure(PointJournalAppend + "=after:2; " + PointStoreRead + "=every:2"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var afterFails, everyFails int
	for i := 1; i <= 6; i++ {
		if Hit(PointJournalAppend) != nil {
			afterFails++
		}
		if Hit(PointStoreRead) != nil {
			everyFails++
		}
	}
	if afterFails != 4 {
		t.Fatalf("after:2 fired %d times in 6 calls, want 4", afterFails)
	}
	if everyFails != 3 {
		t.Fatalf("every:2 fired %d times in 6 calls, want 3", everyFails)
	}
}

// prob schedules must be deterministic: the same seed fires the same calls.
func TestProbDeterministic(t *testing.T) {
	run := func() []bool {
		if err := Configure(PointWorkerResponse + "=prob:0.5:42"); err != nil {
			t.Fatal(err)
		}
		outcomes := make([]bool, 64)
		for i := range outcomes {
			outcomes[i] = Hit(PointWorkerResponse) != nil
		}
		return outcomes
	}
	a, b := run(), run()
	Disable()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run 1 fired=%v, run 2 fired=%v", i+1, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob:0.5 fired %d/%d times — degenerate stream", fired, len(a))
	}
}

func TestConfigureRejectsBadSpecs(t *testing.T) {
	defer Disable()
	for _, spec := range []string{
		"nope=at:1",                  // unknown failpoint
		PointStoreRead + "=at:0",     // zero count
		PointStoreRead + "=sometime", // unknown mode
		PointStoreRead + ":at:1",     // missing =
		PointStoreRead + "=prob:1.5", // probability out of range
	} {
		if err := Configure(spec); err == nil {
			t.Errorf("Configure(%q) accepted", spec)
		}
	}
	// A rejected Configure must not leave stale state armed.
	if err := Configure(PointStoreRead + "=at:1"); err != nil {
		t.Fatal(err)
	}
	if err := Configure("nope=at:1"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestConcurrentHits(t *testing.T) {
	if err := Configure(PointHeartbeat + "=every:10"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Hit(PointHeartbeat)
			}
		}()
	}
	wg.Wait()
	if calls, fired := Counts(PointHeartbeat); calls != 800 || fired != 80 {
		t.Fatalf("Counts = %d, %d; want 800, 80", calls, fired)
	}
}
