package realise

import (
	"fmt"
	"sort"

	"repro/internal/dioph"
	"repro/internal/multiset"
	"repro/internal/protocol"
)

// This file is the realisability leg of the incremental family-parametric
// analysis: BasisWarm computes the same generating basis Basis does, but
// carries the neighbor's basis elements into the Contejean–Devie search as
// seed solutions. Unlike the stable antichain — whose elements sit on the
// family's shifting threshold boundary and mostly die with the parameter —
// realisability bases live in transition space, where adjacent family
// members share most of their transitions, so most neighbor elements remap
// to genuine solutions of the new system and the seeded search prunes
// against them from its very first frontier.

// WarmStats reports what a warm basis solve did with the neighbor's basis.
type WarmStats struct {
	// Mapped counts neighbor elements whose every transition has a
	// counterpart in the new protocol (matched by state-name quadruple).
	Mapped int
	// Unmapped counts neighbor elements touching a transition the new
	// protocol does not have.
	Unmapped int
	// Seeds is the seed-level accounting of the underlying solver,
	// including how many mapped elements survived validation against the
	// new system and how many search nodes the seeded solve examined.
	Seeds dioph.SeedStats
}

// transitionKey identifies a transition by the state names it touches, the
// representation that stays meaningful across family members with
// different state counts. Pre and post pairs are order-normalized by name.
type transitionKey struct {
	p, q, p2, q2 string
}

func keyOf(pr *protocol.Protocol, t protocol.Transition) transitionKey {
	a, b := pr.StateName(t.P), pr.StateName(t.Q)
	if a > b {
		a, b = b, a
	}
	c, d := pr.StateName(t.P2), pr.StateName(t.Q2)
	if c > d {
		c, d = d, c
	}
	return transitionKey{a, b, c, d}
}

// TransitionMapping matches the transitions of an old protocol to a new one
// by state-name quadruple: mapping[t] is the new transition index of old
// transition t, or -1 when no new transition connects the same named
// states. ok is false when either side has duplicate quadruples (the match
// would be ambiguous).
func TransitionMapping(old, new_ *protocol.Protocol) (mapping []int, ok bool) {
	newIdx := make(map[transitionKey]int, new_.NumTransitions())
	for t := 0; t < new_.NumTransitions(); t++ {
		k := keyOf(new_, new_.Transition(t))
		if _, dup := newIdx[k]; dup {
			return nil, false
		}
		newIdx[k] = t
	}
	seen := make(map[transitionKey]bool, old.NumTransitions())
	mapping = make([]int, old.NumTransitions())
	for t := 0; t < old.NumTransitions(); t++ {
		k := keyOf(old, old.Transition(t))
		if seen[k] {
			return nil, false
		}
		seen[k] = true
		if j, found := newIdx[k]; found {
			mapping[t] = j
		} else {
			mapping[t] = -1
		}
	}
	return mapping, true
}

// Basis computes a generating basis of the potentially realisable multisets:
// every potentially realisable π (restricted to non-identity transitions) is
// a sum of a multiset of returned elements. The basis is returned in
// canonical order (sorted by transition-index profile), so two solves of
// the same system — cold, warm, any seed — yield identical slices.
func Basis(p *protocol.Protocol, opts dioph.Options) ([]TransitionMultiset, error) {
	out, _, err := BasisWarm(p, opts, WarmSeed{})
	return out, err
}

// WarmSeed names the neighbor a BasisWarm call extends.
type WarmSeed struct {
	// Prev is the family neighbor whose basis seeds the search; nil means a
	// cold solve.
	Prev *protocol.Protocol
	// PrevBasis is the neighbor's generating basis, as returned by Basis.
	PrevBasis []TransitionMultiset
}

// BasisWarm computes exactly Basis(p, opts) — identical elements in the
// identical canonical order — seeding the Diophantine search with the
// neighbor's basis elements transported through the transition mapping.
// Elements touching transitions the new protocol lacks, and elements that
// remap to non-solutions of the new system, are discarded before the
// search; they cost one validation each and nothing more.
func BasisWarm(p *protocol.Protocol, opts dioph.Options, seed WarmSeed) ([]TransitionMultiset, *WarmStats, error) {
	a, cols, err := System(p)
	if err != nil {
		return nil, nil, err
	}
	// colOf inverts cols: protocol transition index -> system column.
	colOf := make(map[int]int, len(cols))
	for j, t := range cols {
		colOf[t] = j
	}
	stats := &WarmStats{}
	var seeds []multiset.Vec
	if seed.Prev != nil && len(seed.PrevBasis) > 0 {
		mapping, ok := TransitionMapping(seed.Prev, p)
		if ok {
			for _, pi := range seed.PrevBasis {
				y, ok := remapSeed(pi, mapping, colOf, len(cols))
				if !ok {
					stats.Unmapped++
					continue
				}
				stats.Mapped++
				seeds = append(seeds, y)
			}
		} else {
			stats.Unmapped = len(seed.PrevBasis)
		}
	}
	gens, seedStats, err := dioph.GeneratorsIneqSeeded(a, len(cols), opts, seeds)
	if err != nil {
		return nil, nil, fmt.Errorf("realise: solving Definition 4 system: %w", err)
	}
	stats.Seeds = *seedStats
	sortGenerators(gens)
	out := make([]TransitionMultiset, 0, len(gens))
	for _, g := range gens {
		pi := make(TransitionMultiset)
		for j, n := range g {
			if n != 0 {
				pi[cols[j]] = n
			}
		}
		out = append(out, pi)
	}
	return out, stats, nil
}

// remapSeed transports a neighbor basis element into the new system's
// column space. It fails when a used transition is unmapped or maps to an
// identity transition of the new protocol (no column).
func remapSeed(pi TransitionMultiset, mapping []int, colOf map[int]int, v int) (multiset.Vec, bool) {
	y := make(multiset.Vec, v)
	for t, n := range pi {
		if n == 0 {
			continue
		}
		if t < 0 || t >= len(mapping) || mapping[t] < 0 {
			return nil, false
		}
		j, ok := colOf[mapping[t]]
		if !ok {
			return nil, false
		}
		y[j] += n
	}
	return y, true
}

// sortGenerators orders generator vectors lexicographically by coordinate —
// the canonical basis order every solve normalizes to.
func sortGenerators(gens []multiset.Vec) {
	sort.Slice(gens, func(i, j int) bool {
		a, b := gens[i], gens[j]
		for k, x := range a {
			if x != b[k] {
				return x < b[k]
			}
		}
		return false
	})
}
