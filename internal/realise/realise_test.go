package realise

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/dioph"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

func TestSystemShape(t *testing.T) {
	e := protocols.FlockOfBirds(3)
	p := e.Protocol
	a, cols, err := System(p)
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	if len(a) != p.NumStates()-1 {
		t.Fatalf("rows = %d, want |Q|-1 = %d", len(a), p.NumStates()-1)
	}
	for _, tIdx := range cols {
		if p.Displacement(tIdx).IsZero() {
			t.Fatal("identity transition in columns")
		}
	}
	for _, row := range a {
		if len(row) != len(cols) {
			t.Fatal("ragged system")
		}
	}
}

func TestSystemRejectsLeadersAndMultiInput(t *testing.T) {
	if _, _, err := System(protocols.LeaderFlock(2).Protocol); !errors.Is(err, ErrNotLeaderless) {
		t.Fatalf("want ErrNotLeaderless, got %v", err)
	}
	if _, _, err := System(protocols.Majority().Protocol); !errors.Is(err, ErrMultiInput) {
		t.Fatalf("want ErrMultiInput, got %v", err)
	}
}

func TestBasisElementsAreRealisable(t *testing.T) {
	for name, e := range map[string]protocols.Entry{
		"flock(3)":    protocols.FlockOfBirds(3),
		"succinct(2)": protocols.Succinct(2),
		"binary(5)":   protocols.BinaryThreshold(5),
		"parity":      protocols.Parity(),
	} {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := e.Protocol
			basis, err := Basis(p, dioph.Options{})
			if err != nil {
				t.Fatalf("Basis: %v", err)
			}
			if len(basis) == 0 {
				t.Fatal("empty basis: at least one realisable multiset exists for these protocols")
			}
			a, _, err := System(p)
			if err != nil {
				t.Fatal(err)
			}
			bound := dioph.SlackPottierBound(a)
			for _, pi := range basis {
				ok, err := IsPotentiallyRealisable(p, pi)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("basis element %v not potentially realisable", pi)
				}
				// Pottier bound on ‖π‖₁ = |π| (Theorem 5.6 via slacks).
				if big.NewInt(pi.Size()).Cmp(bound) > 0 {
					t.Fatalf("basis element size %d exceeds Pottier bound %s", pi.Size(), bound)
				}
				// Witness is a valid configuration.
				i, c := Witness(p, pi)
				if i < 0 || !c.IsNatural() {
					t.Fatalf("bad witness i=%d c=%v", i, c)
				}
				// C = IC(i) + Δπ.
				want := p.InitialConfigN(i).Add(pi.Displacement(p))
				if !c.Equal(want) {
					t.Fatalf("witness C = %v, want %v", c, want)
				}
			}
		})
	}
}

func TestSuccinctMergeChainRealisable(t *testing.T) {
	// For P'_2 the full merge cascade 2·(1,1↦0,2) + (2,2↦0,4) is
	// potentially realisable with witness input 4.
	e := protocols.Succinct(2)
	p := e.Protocol
	one, _ := p.StateByName("2^0")
	two, _ := p.StateByName("2^1")
	four, _ := p.StateByName("2^2")
	zero, _ := p.StateByName("0")
	find := func(a, b, c, d protocol.State) int {
		for i := 0; i < p.NumTransitions(); i++ {
			tr := p.Transition(i)
			want := protocol.Transition{P: a, Q: b, P2: c, Q2: d}
			if tr == normalize(want) {
				return i
			}
		}
		t.Fatalf("transition not found")
		return -1
	}
	m1 := find(one, one, zero, two)
	m2 := find(two, two, zero, four)
	pi := TransitionMultiset{m1: 2, m2: 1}
	ok, err := IsPotentiallyRealisable(p, pi)
	if err != nil || !ok {
		t.Fatalf("merge cascade should be realisable: %v %v", ok, err)
	}
	i, c := Witness(p, pi)
	if i != 4 {
		t.Fatalf("witness input = %d, want 4", i)
	}
	if c[zero] != 3 || c[four] != 1 || c[one] != 0 || c[two] != 0 {
		t.Fatalf("witness C = %s", p.FormatConfig(c))
	}
	// Incomplete cascade (one merge of 2s without enough 1-merges) is not.
	bad := TransitionMultiset{m2: 1}
	ok, err = IsPotentiallyRealisable(p, bad)
	if err != nil || ok {
		t.Fatalf("2,2 merge alone consumes 2-agents that were never produced: %v %v", ok, err)
	}
}

func TestTransitionMultisetOps(t *testing.T) {
	pi := TransitionMultiset{1: 2, 3: 1}
	rho := TransitionMultiset{1: 1, 4: 5}
	sum := pi.Add(rho)
	if sum.Size() != 9 || sum[1] != 3 || sum[4] != 5 {
		t.Fatalf("Add = %v", sum)
	}
	if pi.Size() != 3 {
		t.Fatalf("Size = %d", pi.Size())
	}
	var empty TransitionMultiset
	if empty.Size() != 0 {
		t.Fatal("empty size")
	}
}

func normalize(tr protocol.Transition) protocol.Transition {
	if tr.P > tr.Q {
		tr.P, tr.Q = tr.Q, tr.P
	}
	if tr.P2 > tr.Q2 {
		tr.P2, tr.Q2 = tr.Q2, tr.P2
	}
	return tr
}
