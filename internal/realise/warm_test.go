package realise

import (
	"reflect"
	"testing"

	"repro/internal/dioph"
	"repro/internal/protocol"
	"repro/internal/protocols"
)

func member(t *testing.T, ctor func(int64) protocols.Entry, eta int64) *protocol.Protocol {
	t.Helper()
	return ctor(eta).Protocol
}

// rampDifferential walks a family ramp asserting BasisWarm at each step is
// element-for-element identical to the cold Basis — the canonical order
// makes reflect.DeepEqual the whole equality story — and that on these
// structurally-overlapping families the warm solve actually imported
// something.
func rampDifferential(t *testing.T, name string, ctor func(int64) protocols.Entry, from, to int64) {
	t.Helper()
	opts := dioph.Options{}
	prev := member(t, ctor, from)
	prevBasis, err := Basis(prev, opts)
	if err != nil {
		t.Fatalf("%s:%d cold: %v", name, from, err)
	}
	for eta := from + 1; eta <= to; eta++ {
		p := member(t, ctor, eta)
		cold, err := Basis(p, opts)
		if err != nil {
			t.Fatalf("%s:%d cold: %v", name, eta, err)
		}
		warm, stats, err := BasisWarm(p, opts, WarmSeed{Prev: prev, PrevBasis: prevBasis})
		if err != nil {
			t.Fatalf("%s:%d warm: %v", name, eta, err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("%s:%d warm basis differs from cold\nwarm: %v\ncold: %v", name, eta, warm, cold)
		}
		if stats.Mapped == 0 {
			t.Errorf("%s:%d warm solve mapped no neighbor elements", name, eta)
		}
		if stats.Seeds.Accepted == 0 {
			t.Errorf("%s:%d no neighbor element survived validation", name, eta)
		}
		prev, prevBasis = p, cold
	}
}

func TestBasisWarmFlockRamp(t *testing.T) {
	rampDifferential(t, "flock", protocols.FlockOfBirds, 3, 7)
}

func TestBasisWarmBinaryRamp(t *testing.T) {
	rampDifferential(t, "binary", protocols.BinaryThreshold, 3, 8)
}

// TestBasisWarmUnrelatedSeed: a seed from a structurally different protocol
// must not corrupt the result — unmappable elements are dropped, the basis
// still equals cold.
func TestBasisWarmUnrelatedSeed(t *testing.T) {
	opts := dioph.Options{}
	donor := member(t, protocols.BinaryThreshold, 5)
	donorBasis, err := Basis(donor, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := member(t, protocols.FlockOfBirds, 5)
	cold, err := Basis(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, stats, err := BasisWarm(p, opts, WarmSeed{Prev: donor, PrevBasis: donorBasis})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("unrelated seed changed the basis\nwarm: %v\ncold: %v", warm, cold)
	}
	if stats.Mapped+stats.Unmapped != len(donorBasis) {
		t.Errorf("mapped %d + unmapped %d ≠ donor basis %d", stats.Mapped, stats.Unmapped, len(donorBasis))
	}
}

// TestBasisWarmNilSeed: WarmSeed{} is a cold solve with zero stats.
func TestBasisWarmNilSeed(t *testing.T) {
	p := member(t, protocols.FlockOfBirds, 4)
	cold, err := Basis(p, dioph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, stats, err := BasisWarm(p, dioph.Options{}, WarmSeed{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("nil seed differs from cold")
	}
	if stats.Mapped != 0 || stats.Unmapped != 0 {
		t.Errorf("nil seed reported mapping stats: %+v", stats)
	}
}

// TestTransitionMappingFlockNeighbors: adjacent flock members share all
// transitions on their common states, matched by name quadruple; the
// mapping is injective on its mapped range.
func TestTransitionMappingFlockNeighbors(t *testing.T) {
	old := member(t, protocols.FlockOfBirds, 5)
	new_ := member(t, protocols.FlockOfBirds, 6)
	mapping, ok := TransitionMapping(old, new_)
	if !ok {
		t.Fatal("flock neighbors should map unambiguously")
	}
	if len(mapping) != old.NumTransitions() {
		t.Fatalf("mapping length %d, want %d", len(mapping), old.NumTransitions())
	}
	mapped := 0
	seen := make(map[int]bool)
	for _, j := range mapping {
		if j < 0 {
			continue
		}
		mapped++
		if j >= new_.NumTransitions() {
			t.Fatalf("mapping target %d out of range", j)
		}
		if seen[j] {
			t.Fatalf("mapping target %d hit twice", j)
		}
		seen[j] = true
	}
	if mapped == 0 {
		t.Fatal("no transition mapped between adjacent flock members")
	}
}

// TestTransitionMappingSelfIsIdentity: a protocol maps onto itself
// completely.
func TestTransitionMappingSelfIsIdentity(t *testing.T) {
	p := member(t, protocols.BinaryThreshold, 6)
	mapping, ok := TransitionMapping(p, p)
	if !ok {
		t.Fatal("self-mapping ambiguous")
	}
	for i, j := range mapping {
		if i != j {
			t.Fatalf("self mapping[%d] = %d", i, j)
		}
	}
}
