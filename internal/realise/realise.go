// Package realise implements the potentially realisable multisets of
// transitions of Section 5.1/5.4 of the paper. A multiset π ∈ ℕ^T is
// potentially realisable (Definition 4) if IC(i) ==π⇒ C for some input i and
// configuration C, where ==π⇒ is the displacement-only step relation
// C ==π⇒ C + Δπ. For a leaderless protocol with single input variable x
// this holds iff
//
//	Σ_t π(t)·Δt(q) ≥ 0   for every q ∈ Q∖{x},
//
// a homogeneous system of |Q|−1 Diophantine inequalities over ℕ^T whose
// generating basis, by Pottier's theorem, consists of multisets of small
// ‖·‖₁ (Corollary 5.7, the Pottier constant ξ).
package realise

import (
	"errors"
	"fmt"

	"repro/internal/multiset"
	"repro/internal/protocol"
)

// Errors reported by System and Basis.
var (
	ErrNotLeaderless = errors.New("realise: potential realisability requires a leaderless protocol")
	ErrMultiInput    = errors.New("realise: potential realisability requires a single input variable")
)

// TransitionMultiset is a sparse multiset over transition indices.
type TransitionMultiset map[int]int64

// Size returns |π| = Σ_t π(t).
func (pi TransitionMultiset) Size() int64 {
	var s int64
	for _, n := range pi {
		s += n
	}
	return s
}

// Add returns π + ρ.
func (pi TransitionMultiset) Add(rho TransitionMultiset) TransitionMultiset {
	out := make(TransitionMultiset, len(pi)+len(rho))
	for t, n := range pi {
		out[t] = n
	}
	for t, n := range rho {
		out[t] += n
	}
	return out
}

// Displacement returns Δπ = Σ_t π(t)·Δt.
func (pi TransitionMultiset) Displacement(p *protocol.Protocol) multiset.Vec {
	return p.ParikhDisplacement(map[int]int64(pi))
}

// System builds the inequality system of Definition 4 for a leaderless
// single-input protocol: one row per state q ≠ I(x), one column per
// non-identity transition (identity transitions have Δt = 0; they are
// solutions of every homogeneous system and are omitted from the basis).
// cols[j] is the protocol transition index of column j.
func System(p *protocol.Protocol) (a [][]int64, cols []int, err error) {
	if !p.Leaderless() {
		return nil, nil, ErrNotLeaderless
	}
	if p.NumInputs() != 1 {
		return nil, nil, ErrMultiInput
	}
	x := int(p.InputState(0))
	for t := 0; t < p.NumTransitions(); t++ {
		if !p.Displacement(t).IsZero() {
			cols = append(cols, t)
		}
	}
	for q := 0; q < p.NumStates(); q++ {
		if q == x {
			continue
		}
		row := make([]int64, len(cols))
		for j, t := range cols {
			row[j] = p.Displacement(t)[q]
		}
		a = append(a, row)
	}
	return a, cols, nil
}

// IsPotentiallyRealisable checks Definition 4 directly for a leaderless
// single-input protocol: Δπ(q) ≥ 0 for all q ≠ I(x).
func IsPotentiallyRealisable(p *protocol.Protocol, pi TransitionMultiset) (bool, error) {
	if !p.Leaderless() {
		return false, ErrNotLeaderless
	}
	if p.NumInputs() != 1 {
		return false, ErrMultiInput
	}
	d := pi.Displacement(p)
	x := int(p.InputState(0))
	for q, v := range d {
		if q != x && v < 0 {
			return false, nil
		}
	}
	return true, nil
}

// Witness returns the smallest input i with IC(i) ==π⇒ C ≥ 0 and that C:
// i = max(0, −Δπ(x)) and C = i·x + Δπ. The caller must have checked
// potential realisability; Witness panics on a negative coordinate outside
// x.
func Witness(p *protocol.Protocol, pi TransitionMultiset) (i int64, c multiset.Vec) {
	d := pi.Displacement(p)
	x := int(p.InputState(0))
	if d[x] < 0 {
		i = -d[x]
	}
	c = d.Clone()
	c[x] += i
	if !c.IsNatural() {
		panic(fmt.Sprintf("realise: multiset not potentially realisable: Δπ = %v", d))
	}
	return i, c
}
