// Package wordhash is the repository's shared raw-coordinate hasher:
// FNV-1a over int64 words, finalized with the Murmur3 avalanche so that
// low-entropy inputs (small counts in few coordinates) still spread over
// all 64 bits. The reachability core's node index and the Diophantine
// solver's candidate-dedup set both key their open-addressing tables with
// it — one implementation, so the mixing can only ever change in one
// place.
package wordhash

// Sum hashes the int64 words of a vector.
func Sum(w []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range w {
		h ^= uint64(x)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
