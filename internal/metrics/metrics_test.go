package metrics_test

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/metrics/testutil"
)

func TestCounterAndGauge(t *testing.T) {
	c := metrics.NewCounter(metrics.Opts{Namespace: "t", Name: "hits_total", Help: "hits"})
	c.Inc()
	c.Add(2.5)
	if got := testutil.ToFloat64(c); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Add must panic")
			}
		}()
		c.Add(-1)
	}()

	g := metrics.NewGauge(metrics.Opts{Namespace: "t", Name: "depth", Help: "depth"})
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := testutil.ToFloat64(g); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}

	gf := metrics.NewGaugeFunc(metrics.Opts{Namespace: "t", Name: "live"}, func() float64 { return 42 })
	if got := testutil.ToFloat64(gf); got != 42 {
		t.Errorf("gauge func = %v, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := metrics.NewCounter(metrics.Opts{Name: "n_total"})
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent counter = %v, want 8000", got)
	}
}

func TestVecChildrenAndExposition(t *testing.T) {
	cv := metrics.NewCounterVec(metrics.Opts{Namespace: "t", Name: "req_total", Help: "requests"},
		[]string{"kind", "status"})
	cv.WithLabelValues("simulate", "ok").Add(3)
	cv.WithLabelValues("verify", "error").Inc()
	cv.WithLabelValues("simulate", "ok").Inc() // same child again

	want := `
		# HELP t_req_total requests
		# TYPE t_req_total counter
		t_req_total{kind="simulate",status="ok"} 4
		t_req_total{kind="verify",status="error"} 1
	`
	if err := testutil.CollectAndCompare(cv, strings.NewReader(want)); err != nil {
		t.Error(err)
	}
	if got := testutil.ToFloat64(cv.WithLabelValues("verify", "error")); got != 1 {
		t.Errorf("child value = %v, want 1", got)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong label-value count must panic")
			}
		}()
		cv.WithLabelValues("only-one")
	}()
}

func TestHistogram(t *testing.T) {
	h := metrics.NewHistogram(metrics.Opts{Namespace: "t", Name: "lat_seconds", Help: "latency"},
		[]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	want := `
		# HELP t_lat_seconds latency
		# TYPE t_lat_seconds histogram
		t_lat_seconds_bucket{le="0.1"} 1
		t_lat_seconds_bucket{le="1"} 3
		t_lat_seconds_bucket{le="10"} 4
		t_lat_seconds_bucket{le="+Inf"} 5
		t_lat_seconds_sum 56.05
		t_lat_seconds_count 5
	`
	if err := testutil.CollectAndCompare(h, strings.NewReader(want)); err != nil {
		t.Error(err)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
}

func TestRegistryGatherSortedAndDuplicatePanic(t *testing.T) {
	reg := metrics.NewRegistry()
	b := metrics.NewCounter(metrics.Opts{Name: "bbb_total"})
	a := metrics.NewGauge(metrics.Opts{Name: "aaa"})
	reg.MustRegister(b, a)
	fams := reg.Gather()
	if len(fams) != 2 || fams[0].Name != "aaa" || fams[1].Name != "bbb_total" {
		t.Errorf("gather not sorted by name: %+v", fams)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate family name must panic")
			}
		}()
		reg.MustRegister(metrics.NewCounter(metrics.Opts{Name: "aaa"}))
	}()
}

func TestHandlerServesExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	c := metrics.NewCounter(metrics.Opts{Namespace: "t", Name: "served_total", Help: "served"})
	c.Add(7)
	reg.MustRegister(c)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	vals, err := testutil.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if vals["t_served_total"] != 7 {
		t.Errorf("scraped t_served_total = %v, want 7", vals["t_served_total"])
	}
}

func TestGatherAndCompareFiltersNames(t *testing.T) {
	reg := metrics.NewRegistry()
	keep := metrics.NewCounter(metrics.Opts{Name: "keep_total", Help: "kept"})
	noise := metrics.NewCounter(metrics.Opts{Name: "noise_total"})
	keep.Inc()
	noise.Add(99)
	reg.MustRegister(keep, noise)
	want := `
		# HELP keep_total kept
		# TYPE keep_total counter
		keep_total 1
	`
	if err := testutil.GatherAndCompare(reg, strings.NewReader(want), "keep_total"); err != nil {
		t.Error(err)
	}
	if err := testutil.GatherAndCompare(reg, strings.NewReader(want)); err == nil {
		t.Error("unfiltered gather must not match the filtered expectation")
	}
}

func TestLabelEscaping(t *testing.T) {
	cv := metrics.NewCounterVec(metrics.Opts{Name: "esc_total"}, []string{"p"})
	cv.WithLabelValues(`a"b\c` + "\n").Inc()
	want := `
		# HELP esc_total
		# TYPE esc_total counter
		esc_total{p="a\"b\\c\n"} 1
	`
	if err := testutil.CollectAndCompare(cv, strings.NewReader(want)); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := metrics.NewHistogram(metrics.Opts{Namespace: "t", Name: "q_seconds", Help: "q"},
		[]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Four observations in (1, 2]: the median interpolates inside that
	// bucket — rank 2 of 4 observations lands halfway through it.
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("median = %v, want 1.5", got)
	}
	// Observations past the largest finite bound clamp to it.
	for i := 0; i < 40; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("p99 with overflow mass = %v, want clamp to 4", got)
	}
}

func TestHistogramVecQuantileMergesChildren(t *testing.T) {
	hv := metrics.NewHistogramVec(metrics.Opts{Namespace: "t", Name: "qv_seconds", Help: "q"},
		[]float64{1, 2, 4}, []string{"kind"})
	if got := hv.Quantile(0.5); got != 0 {
		t.Errorf("empty vec quantile = %v, want 0", got)
	}
	// Two observations per child, all inside (1, 2]: the merged median
	// sits mid-bucket regardless of which child each lands in.
	hv.WithLabelValues("a").Observe(1.5)
	hv.WithLabelValues("a").Observe(1.5)
	hv.WithLabelValues("b").Observe(1.5)
	hv.WithLabelValues("b").Observe(1.5)
	if got := hv.Quantile(0.5); got != 1.5 {
		t.Errorf("merged median = %v, want 1.5", got)
	}
}
